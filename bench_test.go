// Benchmarks regenerating every table and figure of the paper's evaluation,
// one group per artifact:
//
//	BenchmarkFigure2*   — the four Section 3.2 queries, baseline vs MODIN
//	BenchmarkFigure8*   — the two pivot plans (hash vs sorted-streaming+T)
//	BenchmarkFigure7*   — the usage-study extraction pipeline
//	BenchmarkTable1*    — one bench per algebra operator
//	BenchmarkTable2*    — pandas-call rewrites through the public API
//	BenchmarkE8/E9/E10* — the DESIGN.md ablations (schema induction,
//	                      transpose strategy, evaluation modes, partitioning)
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/df"
	"repro/internal/algebra"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/notebooks"
	"repro/internal/optimizer"
	"repro/internal/partition"
	"repro/internal/posindex"
	"repro/internal/pycalls"
	"repro/internal/schema"
	"repro/internal/session"
	"repro/internal/sketch"
	"repro/internal/sparse"
	"repro/internal/types"
	"repro/internal/vector"
	"repro/internal/workload"
)

// benchRows is the default dataset size for the per-operator benches.
const benchRows = 50_000

var (
	benchTaxi  = algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(benchRows)))
	benchSales = workload.Sales(2000, 12, 11)
)

func engines() map[string]algebra.Engine {
	return map[string]algebra.Engine{
		"baseline": eager.New(),
		"modin":    modin.New(),
	}
}

func runPlan(b *testing.B, e algebra.Engine, plan algebra.Node) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2: the four Section 3.2 queries ------------------------------

func benchmarkFigure2(b *testing.B, q experiments.Figure2Query) {
	for name, e := range engines() {
		plan, err := experiments.Figure2Plan(q, benchTaxi)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
}

func BenchmarkFigure2Map(b *testing.B)      { benchmarkFigure2(b, experiments.QueryMap) }
func BenchmarkFigure2GroupByN(b *testing.B) { benchmarkFigure2(b, experiments.QueryGroupByN) }
func BenchmarkFigure2GroupBy1(b *testing.B) { benchmarkFigure2(b, experiments.QueryGroupBy1) }

func BenchmarkFigure2Transpose(b *testing.B) {
	// Transpose at a reduced size: the physical baseline is quadratic in
	// attention at bench scale.
	small := algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(5_000)))
	for name, e := range engines() {
		plan, err := experiments.Figure2Plan(experiments.QueryTranspose, small)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
}

// --- Pipelined operator chain (the compile→schedule fusion path) ----------

// pcNotNull is the structured passenger_count filter used across the
// pipelined benches: it runs through the typed kernels, with the opaque
// predicate kept as the documented fallback.
func pcNotNull() *algebra.Selection {
	w := expr.WhereNotNull("passenger_count")
	return &algebra.Selection{Where: w, Pred: w.Predicate(), Desc: "pc notnull"}
}

// pipelinedChainPlan is a realistic filter→map→groupby session statement:
// under the physical layer the filter and map fuse into one task per band
// (no inter-operator gather), and only the groupby is a barrier.
func pipelinedChainPlan(src *core.DataFrame) algebra.Node {
	sel := pcNotNull()
	sel.Input = &algebra.Source{DF: src, Name: "taxi"}
	return &algebra.GroupBy{
		Input: &algebra.Map{
			Input: sel,
			Fn:    algebra.FillNAFn(types.FloatValue(0)),
		},
		Spec: expr.GroupBySpec{
			Keys: []string{"vendor_id"},
			Aggs: []expr.AggSpec{
				{Col: "total_amount", Agg: expr.AggSum, As: "revenue"},
				{Col: "fare_amount", Agg: expr.AggMean, As: "avg_fare"},
			},
		},
	}
}

// BenchmarkPipelinedFilterMapGroupBy measures the multi-operator chain on
// both engines: the MODIN number reflects fused per-band tasks feeding the
// groupby shuffle directly, versus the baseline's full materialization
// between every operator.
func BenchmarkPipelinedFilterMapGroupBy(b *testing.B) {
	plan := pipelinedChainPlan(benchTaxi)
	for name, e := range engines() {
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
}

// BenchmarkPipelinedFusedChainOnly isolates the embarrassingly-parallel
// prefix (filter→map, no barrier at all under MODIN).
func BenchmarkPipelinedFusedChainOnly(b *testing.B) {
	sel := pcNotNull()
	sel.Input = &algebra.Source{DF: benchTaxi, Name: "taxi"}
	plan := &algebra.Map{
		Input: sel,
		Fn:    algebra.IsNullFn(),
	}
	for name, e := range engines() {
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
}

// BenchmarkPipelinedFirstBandLatency measures the time until the FIRST
// result band of a filter→map chain is available for inspection. The
// pre-refactor engine ran a gather per operator, so nothing was consumable
// until every band of every operator finished; the compile→schedule
// pipeline hands back a deferred frame whose band 0 resolves after
// roughly 1/bands of the total work — the Section 6.1.2 first-glance
// latency, now measured at the engine layer.
func BenchmarkPipelinedFirstBandLatency(b *testing.B) {
	pool := exec.NewPool(1)
	defer pool.Close()
	e := modin.New(modin.WithPool(pool), modin.WithBands(4))
	sel := pcNotNull()
	sel.Input = &algebra.Source{DF: benchTaxi, Name: "taxi"}
	plan := &algebra.Map{
		Input: sel,
		Fn:    algebra.IsNullFn(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := e.ExecutePartitioned(plan)
		if err != nil {
			b.Fatal(err)
		}
		<-pf.BlockFuture(0, 0).Done() // first band consumable here
		b.StopTimer()
		if _, err := pf.ToFrame(); err != nil { // drain off-timer
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// benchmarkShuffleFirstBand measures the time until the FIRST output band
// of a shuffle-fed fused chain is consumable. Under the gather exchange
// nothing downstream could start until the whole repartition finished; the
// two-phase shuffle emits one future per output band, so the downstream
// fused kernel over band 0 lands while the other buckets' merges are still
// running — the off-timer drain below is the remainder of the shuffle.
func benchmarkShuffleFirstBand(b *testing.B, plan algebra.Node) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := modin.New(modin.WithPool(pool), modin.WithBands(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := e.ExecutePartitioned(plan)
		if err != nil {
			b.Fatal(err)
		}
		<-pf.BlockFuture(0, 0).Done() // first shuffled band consumable here
		b.StopTimer()
		if _, err := pf.ToFrame(); err != nil { // drain the rest off-timer
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkPipelinedFirstBandLatencyGroupBy: filter→groupby→map, timed to
// the first group band. The map is fused downstream of the shuffle, so its
// band-0 task runs as soon as bucket 0's merge lands.
func BenchmarkPipelinedFirstBandLatencyGroupBy(b *testing.B) {
	benchmarkShuffleFirstBand(b, &algebra.Map{
		Input: pipelinedChainPlan(benchTaxi),
		Fn:    algebra.IsNullFn(),
	})
}

// BenchmarkPipelinedFirstBandLatencySort: sort→map, timed to the first
// range bucket.
func BenchmarkPipelinedFirstBandLatencySort(b *testing.B) {
	benchmarkShuffleFirstBand(b, &algebra.Map{
		Input: &algebra.Sort{
			Input: &algebra.Source{DF: benchTaxi, Name: "taxi"},
			Order: expr.SortOrder{{Col: "fare_amount"}},
		},
		Fn: algebra.IsNullFn(),
	})
}

// --- Out-of-core streaming scans -------------------------------------------

// taxiCSV renders a taxi frame of the given size as CSV text, the shared
// input for the streaming scan benches.
func taxiCSV(rows int) string {
	var sb strings.Builder
	if err := workload.Taxi(workload.DefaultTaxiOptions(rows)).WriteCSV(&sb); err != nil {
		panic(err)
	}
	return sb.String()
}

// streamScanQuery is the filter→groupby pipeline both scan strategies run.
func streamScanQuery(q *df.Query) *df.Query {
	return q.Where(df.NotNull("passenger_count")).GroupBy("vendor_id").Sum("total_amount")
}

// BenchmarkStreamingScan compares the morsel-driven scan against parsing
// the whole text up front, over the same bytes and the same filter→groupby
// pipeline, so the delta is the scheduling strategy alone. The first-band
// sub-benches time ExecutePartitioned until band 0 of a streamed scan
// resolves, at two input sizes: the two numbers must stay in the same range
// — first-band latency depends on the band size, never the file size.
func BenchmarkStreamingScan(b *testing.B) {
	text := taxiCSV(40_000)
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := streamScanQuery(df.ScanCSVString(text).WithScanBandRows(4096)).Collect()
			if err != nil || out.Len() == 0 {
				b.Fatal(out, err)
			}
		}
	})
	b.Run("whole-read", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := df.ReadCSVString(text)
			if err != nil {
				b.Fatal(err)
			}
			out, err := streamScanQuery(d.Lazy()).Collect()
			if err != nil || out.Len() == 0 {
				b.Fatal(out, err)
			}
		}
	})
	for _, rows := range []int{20_000, 80_000} {
		text := taxiCSV(rows)
		b.Run(fmt.Sprintf("first-band/%drows", rows), func(b *testing.B) {
			pool := exec.NewPool(2)
			defer pool.Close()
			e := modin.New(modin.WithPool(pool), modin.WithBands(4))
			scan := &algebra.Scan{
				Name: "bench",
				Open: func() (io.ReadCloser, error) {
					return io.NopCloser(strings.NewReader(text)), nil
				},
				SizeHint: int64(len(text)),
				BandRows: 4096,
			}
			sel := pcNotNull()
			sel.Input = scan
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pf, err := e.ExecutePartitioned(sel)
				if err != nil {
					b.Fatal(err)
				}
				<-pf.BlockFuture(0, 0).Done() // first parsed+filtered band here
				b.StopTimer()
				if _, err := pf.ToFrame(); err != nil { // drain the rest off-timer
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFusedFilterChain stacks three selective filters. Under MODIN the
// chain fuses into one task per band that passes a narrowing selection-
// vector view from filter to filter and materializes once at stage exit;
// the baseline materializes after every filter. The gap shows up in
// allocated bytes/op (several× fewer under MODIN); benchdiff gates both
// engines' numbers against the checked-in baseline in CI.
func BenchmarkFusedFilterChain(b *testing.B) {
	wheres := []*expr.Where{
		expr.WhereNotNull("passenger_count"),
		expr.WhereEquals("vendor_id", types.String("CMT")),
		expr.WhereCompare("total_amount", vector.CmpGt, types.FloatValue(10)),
	}
	var plan algebra.Node = &algebra.Source{DF: benchTaxi, Name: "taxi"}
	for _, w := range wheres {
		plan = &algebra.Selection{Input: plan, Where: w, Pred: w.Predicate(), Desc: w.Describe()}
	}
	for name, e := range engines() {
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
}

// --- Distributed vs local pipeline -----------------------------------------

// BenchmarkClusterPipeline runs the streamed filter→groupby pipeline on
// the in-process engine and on 2- and 4-worker clusters (in-process
// workers: blocks cross the full columnar wire protocol without the
// process-spawn noise). Each distributed iteration pays plan extraction,
// band shipping, the stats/partition/merge round trips, and result-block
// decode — the numbers in BENCH_CLUSTER.json are the protocol's overhead
// on a dataset small enough that local wins; the benchdiff -require gate
// only insists the benchmarks keep running, it does not expect distributed
// to beat local at this size. The bench fails if any iteration silently
// fell back to the local engine — then it would not be measuring the wire.
func BenchmarkClusterPipeline(b *testing.B) {
	text := taxiCSV(40_000)
	run := func(b *testing.B, q *df.Query) {
		out, err := streamScanQuery(q.WithScanBandRows(4096)).Collect()
		if err != nil || out.Len() == 0 {
			b.Fatal(out, err)
		}
	}
	b.Run("local", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, df.ScanCSVString(text))
		}
	})
	for _, workers := range []int{2, 4} {
		// Not "workers-2": benchdiff parse strips a trailing -N as the
		// GOMAXPROCS suffix and would merge the two worker counts.
		b.Run(fmt.Sprintf("%d-workers", workers), func(b *testing.B) {
			sched, ws, err := cluster.StartInProcess(workers)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, w := range ws {
					w.Close()
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(b, df.ScanCSVString(text).WithEngine(sched))
			}
			b.StopTimer()
			if st := sched.ClusterStats(); st.Distributed != int64(b.N) || st.Fallback > 0 || st.LocalReruns > 0 {
				b.Fatalf("not all iterations ran distributed: %+v over %d iterations", st, b.N)
			}
		})
	}
}

// --- Lazy query builder vs eager method chain ------------------------------

// BenchmarkLazyChainVsEager runs the same filter→map→select→groupby
// pipeline over the 50k-row taxi frame two ways: the eager method chain
// (one optimize+compile+schedule+gather round trip per method call, with
// the intermediate re-partitioned between steps) and the lazy builder (one
// optimized plan, one compile→schedule for the whole chain, filter and map
// fused into one task per band feeding the groupby shuffle directly). The
// lazy path must hold strictly fewer allocs/op — it is gated next to the
// Pipelined* benchmarks in CI.
func BenchmarkLazyChainVsEager(b *testing.B) {
	aggs := []df.AggSpec{
		{Col: "total_amount", Agg: "sum", As: "revenue"},
		{Col: "fare_amount", Agg: "mean", As: "avg_fare"},
	}
	cols := []string{"vendor_id", "total_amount", "fare_amount"}
	data := df.FromFrame(benchTaxi)
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step, err := data.Where(df.NotNull("passenger_count"))
			if err != nil {
				b.Fatal(err)
			}
			step, err = step.FillNA(df.Float(0))
			if err != nil {
				b.Fatal(err)
			}
			step, err = step.Select(cols...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := step.GroupBy("vendor_id").Agg(aggs...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := data.Lazy().
				Where(df.NotNull("passenger_count")).
				FillNA(df.Float(0)).
				Select(cols...).
				GroupBy("vendor_id").Agg(aggs...).
				Collect()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 8: pivot plan comparison --------------------------------------

func BenchmarkFigure8PivotPlans(b *testing.B) {
	original, optimized, err := experiments.Figure8Plans(benchSales)
	if err != nil {
		b.Fatal(err)
	}
	e := eager.New()
	b.Run("planA-hash-month", func(b *testing.B) { runPlan(b, e, original) })
	b.Run("planB-sorted-year-transpose", func(b *testing.B) { runPlan(b, e, optimized) })
}

// --- Figure 7: usage-study pipeline ---------------------------------------

func BenchmarkFigure7Extraction(b *testing.B) {
	nbs := notebooks.Generate(notebooks.DefaultOptions(200))
	vocab := pycalls.PandasVocabulary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := pycalls.NewCounts()
		for _, nb := range nbs {
			counts.AddFile(pycalls.Extract(nb.Source), vocab)
		}
		if counts.Total["read_csv"] == 0 {
			b.Fatal("extraction produced nothing")
		}
	}
}

// --- Table 1: one bench per algebra operator ------------------------------

func operatorPlans() map[string]algebra.Node {
	src := &algebra.Source{DF: benchTaxi, Name: "taxi"}
	right := &algebra.Source{DF: core.MustFromRecords(
		[]string{"vendor_id", "region"},
		[][]any{{"CMT", "east"}, {"VTS", "west"}, {"DDS", "south"}},
	)}
	selWhere := expr.WhereNotNull("passenger_count")
	return map[string]algebra.Node{
		"Selection": &algebra.Selection{Input: src, Where: selWhere, Pred: selWhere.Predicate(), Desc: "pc notnull"},
		"Projection": &algebra.Projection{Input: src, Cols: []string{
			"vendor_id", "fare_amount"}},
		"Union":          &algebra.Union{Left: src, Right: src},
		"Difference":     &algebra.Difference{Left: src, Right: &algebra.Source{DF: benchTaxi.SliceRows(0, benchRows/2)}},
		"Join":           &algebra.Join{Left: src, Right: right, Kind: expr.JoinInner, On: []string{"vendor_id"}},
		"DropDuplicates": &algebra.DropDuplicates{Input: src, Subset: []string{"vendor_id", "passenger_count"}},
		"GroupBy": &algebra.GroupBy{Input: src, Spec: expr.GroupBySpec{
			Keys: []string{"vendor_id"},
			Aggs: []expr.AggSpec{{Col: "total_amount", Agg: expr.AggMean, As: "avg"}},
		}},
		"Sort":   &algebra.Sort{Input: src, Order: expr.SortOrder{{Col: "fare_amount"}}},
		"Rename": &algebra.Rename{Input: src, Mapping: map[string]string{"vendor_id": "vendor"}},
		"Window": &algebra.Window{Input: src, Spec: expr.WindowSpec{
			Kind: expr.WindowRolling, Size: 16, Agg: expr.AggMean, Cols: []string{"fare_amount"}}},
		"Map":        &algebra.Map{Input: src, Fn: algebra.IsNullFn()},
		"ToLabels":   &algebra.ToLabels{Input: src, Col: "pickup_datetime"},
		"FromLabels": &algebra.FromLabels{Input: src, Label: "rowid"},
		"Limit":      &algebra.Limit{Input: src, N: 32},
	}
}

func BenchmarkTable1Operators(b *testing.B) {
	e := eager.New()
	for name, plan := range operatorPlans() {
		b.Run(name, func(b *testing.B) { runPlan(b, e, plan) })
	}
	// Transpose separately at reduced size (quadratic rendering cost).
	small := &algebra.Source{DF: benchTaxi.SliceRows(0, 4_000)}
	b.Run("Transpose", func(b *testing.B) {
		runPlan(b, e, &algebra.Transpose{Input: small})
	})
}

// --- Table 2: pandas rewrites through the public API ----------------------

func BenchmarkTable2PandasRewrites(b *testing.B) {
	data := df.FromFrame(benchTaxi).WithEngine(df.NewBaselineEngine())
	cases := map[string]func() error{
		"fillna": func() error { _, err := data.FillNA(df.Float(0)); return err },
		"isnull": func() error { _, err := data.IsNA(); return err },
		"set_index+reset_index": func() error {
			idx, err := data.SetIndex("pickup_datetime")
			if err != nil {
				return err
			}
			_, err = idx.ResetIndex("pickup_datetime")
			return err
		},
		"groupby-sum": func() error {
			_, err := data.GroupBy("vendor_id").Sum("total_amount")
			return err
		},
		"agg-mean-max": func() error { _, err := data.Agg("mean", "max"); return err },
		"sort_values":  func() error { _, err := data.SortValues("fare_amount"); return err },
	}
	for name, fn := range cases {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: schema induction placement ---------------------------------------

func BenchmarkE8SchemaInduction(b *testing.B) {
	wide := workload.WideUntyped(20_000, 12, 99)
	pred := expr.Predicate(func(r expr.Row) bool { return r.Position()%10 == 0 })
	e := eager.New()

	b.Run("induce-then-filter", func(b *testing.B) {
		plan := &algebra.Selection{
			Input: &algebra.Induce{Input: &algebra.Source{DF: wide}},
			Pred:  pred, Desc: "1-in-10",
		}
		runPlan(b, e, plan)
	})
	b.Run("filter-then-induce", func(b *testing.B) {
		plan := &algebra.Induce{Input: &algebra.Selection{
			Input: &algebra.Source{DF: wide}, Pred: pred, Desc: "1-in-10",
		}}
		runPlan(b, e, plan)
	})
	b.Run("cached-reinduction", func(b *testing.B) {
		cache := schema.NewCache()
		shared := wide.WithCache(cache)
		algebra.InduceFrame(shared) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algebra.InduceFrame(shared.SliceRows(0, wide.NRows()).WithCache(cache))
		}
	})
}

// --- E9: transpose strategy ------------------------------------------------

func BenchmarkE9Transpose(b *testing.B) {
	m := workload.Matrix(2_000, 50, 5)
	b.Run("physical-single-thread", func(b *testing.B) {
		runPlan(b, eager.New(), &algebra.Transpose{Input: &algebra.Source{DF: m}})
	})
	b.Run("parallel-block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pf := partition.New(m, partition.Blocks, 8)
			if _, err := pf.Transpose(exec.Default, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("double-transpose-unoptimized", func(b *testing.B) {
		plan := &algebra.Transpose{Input: &algebra.Transpose{Input: &algebra.Source{DF: m}}}
		runPlan(b, eager.New(), plan)
	})
	b.Run("double-transpose-optimized", func(b *testing.B) {
		plan := &algebra.Transpose{Input: &algebra.Transpose{Input: &algebra.Source{DF: m}}}
		opt, _ := optimizer.Optimize(plan, optimizer.Default())
		runPlan(b, eager.New(), opt)
	})
}

// --- E10: evaluation modes ---------------------------------------------------

func BenchmarkE10EvaluationModes(b *testing.B) {
	frame := algebra.InduceFrame(workload.Taxi(workload.DefaultTaxiOptions(30_000)))
	cardWhere := expr.WhereEquals("payment_type", types.CategoryValue("card"))
	build := func(in algebra.Node) algebra.Node {
		return &algebra.Selection{
			Input: in,
			Where: cardWhere,
			Pred:  cardWhere.Predicate(),
			Desc:  "card",
		}
	}
	for _, mode := range []session.Mode{session.Eager, session.Lazy, session.Opportunistic} {
		b.Run("head-latency-"+mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := session.New(modin.New(), mode, nil)
				h := s.Bind("taxi", frame).Apply("card", build)
				if mode == session.Opportunistic {
					s.ThinkTime()
				}
				if _, err := h.Head(5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Partitioning-scheme ablation -------------------------------------------

func BenchmarkPartitioningSchemes(b *testing.B) {
	m := workload.Matrix(20_000, 16, 5)
	for _, scheme := range []partition.Scheme{partition.Rows, partition.Cols, partition.Blocks} {
		b.Run("elementwise-map-"+scheme.String(), func(b *testing.B) {
			pf := partition.New(m, scheme, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := pf.MapBlocks(exec.Default, func(blk *core.DataFrame) (*core.DataFrame, error) {
					return algebra.MapFrame(blk, algebra.IsNullFn())
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sorted vs hash group-by (the Figure 8 ingredient, isolated) ------------

func BenchmarkSortedVsHashGroupBy(b *testing.B) {
	spec := expr.GroupBySpec{
		Keys: []string{"Year"},
		Aggs: []expr.AggSpec{{Col: "Sales", Agg: expr.AggSum, As: "total"}},
	}
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.GroupByFrame(benchSales, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	sorted := spec
	sorted.Sorted = true
	b.Run("sorted-streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.GroupByFrame(benchSales, sorted); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ingest & induction ------------------------------------------------------

func BenchmarkCSVIngestLazyVsEager(b *testing.B) {
	var buf string
	{
		raw := workload.Taxi(workload.TaxiOptions{Rows: 10_000, Seed: 3, NullFraction: 0.05, Raw: true})
		sb := &stringsBuilder{}
		if err := raw.WriteCSV(sb); err != nil {
			b.Fatal(err)
		}
		buf = sb.String()
	}
	b.Run("lazy-typing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadCSVString(buf, core.DefaultCSVOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eager-typing", func(b *testing.B) {
		opts := core.DefaultCSVOptions()
		opts.InduceNow = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadCSVString(buf, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// stringsBuilder adapts strings.Builder without importing strings at top
// level twice.
type stringsBuilder struct{ data []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

func (s *stringsBuilder) String() string { return string(s.data) }

// Keep time imported for duration-typed table constants used above.
var _ = time.Nanosecond

// BenchmarkSimulatedFigure2 runs the multi-worker projection once per
// iteration at small scale, keeping the simulator honest under -bench.
func BenchmarkSimulatedFigure2(b *testing.B) {
	cfg := experiments.SimConfig{Rows: 5_000, Bands: 8, WorkerCounts: []int{1, 4, 16}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSimulatedFigure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5PivotAPI measures the public-API pivot on the Figure 5
// schema at scale.
func BenchmarkFigure5PivotAPI(b *testing.B) {
	data := df.FromFrame(benchSales).WithEngine(df.NewBaselineEngine())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := data.Pivot("Year", "Month", "Sales"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Probes measures the feature-matrix probe suite.
func BenchmarkTable3Probes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable3(modin.New(), eager.New())
		if !res.Support["TRANSPOSE"]["modin"] {
			b.Fatal("probe failed")
		}
	}
}

// fmt retained for error formatting in closures above.
var _ = fmt.Sprintf

// BenchmarkSparseTranspose contrasts the Section 5.2.1 sparse key-value
// representation's O(1) logical transpose against the dense physical one.
func BenchmarkSparseTranspose(b *testing.B) {
	m := workload.Matrix(2_000, 50, 5)
	sp := sparse.FromDense(m)
	b.Run("sparse-logical", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !sp.Transpose().Transposed() {
				b.Fatal("flag should flip")
			}
		}
	})
	b.Run("dense-physical", func(b *testing.B) {
		runPlan(b, eager.New(), &algebra.Transpose{Input: &algebra.Source{DF: m}})
	})
	// The price of the sparse layout: row reconstruction is a lookup per
	// column (the MAP access pattern).
	b.Run("sparse-row-reconstruction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < 100; r++ {
				if len(sp.Row(r)) != 50 {
					b.Fatal("row wrong")
				}
			}
		}
	})
	b.Run("dense-row-access", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < 100; r++ {
				if len(m.Row(r)) != 50 {
					b.Fatal("row wrong")
				}
			}
		}
	})
}

// BenchmarkPositionalIndex contrasts O(log n) treap edits against O(n)
// slice splicing for maintaining positional notation under point edits
// (Section 5.2.1).
func BenchmarkPositionalIndex(b *testing.B) {
	const n = 50_000
	b.Run("treap-front-insert", func(b *testing.B) {
		ix := posindex.New[int]()
		for i := 0; i < n; i++ {
			ix.Append(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ix.Insert(0, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slice-front-insert", func(b *testing.B) {
		s := make([]int, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s = append(s, 0)
			copy(s[1:], s)
			s[0] = i
		}
	})
}

// BenchmarkHLLSketch measures the distinct-value estimator over a taxi
// column (the Section 5.2.3 arity estimation primitive).
func BenchmarkHLLSketch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sketch.EstimateArity(benchTaxi, "passenger_count"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Vectorized kernels vs boxed paths --------------------------------------

// BenchmarkVectorizedFilter contrasts the two SELECTION implementations on
// the same predicate: the boxed path materializes a row view and a
// types.Value per inspected cell; the kernel path compares the column's
// storage slice against the operand directly.
func BenchmarkVectorizedFilter(b *testing.B) {
	w := expr.WhereEquals("payment_type", types.CategoryValue("card"))
	pred := w.Predicate()
	b.Run("boxed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if algebra.SelectRows(benchTaxi, pred).NRows() == 0 {
				b.Fatal("empty selection")
			}
		}
	})
	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := algebra.SelectWhere(benchTaxi, w)
			if err != nil {
				b.Fatal(err)
			}
			if out.NRows() == 0 {
				b.Fatal("empty selection")
			}
		}
	})
}

// --- Stats-driven physical planning ----------------------------------------

// shuffledJoinFrames builds natively-typed join inputs big enough that the
// planner's build-side estimate crosses the broadcast limit: the shuffled
// strategy builds each right row into exactly one bucket table, while the
// broadcast plan rebuilds the full right-side table once per probe band.
func shuffledJoinFrames(probeRows, buildRows, keys int) (left, right *core.DataFrame) {
	lk := make([]int64, probeRows)
	lv := make([]float64, probeRows)
	for i := range lk {
		lk[i] = int64((i * 2654435761) % keys)
		lv[i] = float64(i%97) + 0.5
	}
	rk := make([]int64, buildRows)
	rv := make([]int64, buildRows)
	for i := range rk {
		rk[i] = int64((i * 40503) % keys)
		rv[i] = int64(i)
	}
	left, err := core.Build(
		[]vector.Vector{vector.NewInt(lk, nil), vector.NewFloat(lv, nil)},
		vector.Range(0, probeRows),
		[]types.Value{types.String("k"), types.String("lv")}, nil, nil)
	if err != nil {
		panic(err)
	}
	right, err = core.Build(
		[]vector.Vector{vector.NewInt(rk, nil), vector.NewInt(rv, nil)},
		vector.Range(0, buildRows),
		[]types.Value{types.String("k"), types.String("rv")}, nil, nil)
	if err != nil {
		panic(err)
	}
	return left, right
}

// BenchmarkShuffledJoin contrasts the two physical join strategies on the
// same large-build inner join. The "shuffle" arm is what the stats-driven
// planner picks (build estimate above the broadcast limit); "broadcast" is
// the zero-stats fallback plan. The shuffle arm's recorded baseline must
// stay ≥1.5× faster — both arms are gated in CI.
func BenchmarkShuffledJoin(b *testing.B) {
	left, right := shuffledJoinFrames(60_000, 400_000, 250_000)
	plan := &algebra.Join{
		Left:  &algebra.Source{DF: left},
		Right: &algebra.Source{DF: right},
		Kind:  expr.JoinInner,
		On:    []string{"k"},
	}
	b.Run("shuffle", func(b *testing.B) {
		e := modin.New(modin.WithBands(4))
		runPlan(b, e, plan)
	})
	b.Run("broadcast", func(b *testing.B) {
		e := modin.New(modin.WithBands(4), modin.WithoutStats())
		runPlan(b, e, plan)
	})
}

// BenchmarkDictGroupBy contrasts group-by aggregation over a dictionary-
// coded key: the dict arm indexes typed accumulator arrays by category code
// (no hash probes, no boxed accumulators); the hash arm is the generic
// path. The dict arm's recorded allocs/op baseline must stay ≥5× lower.
func BenchmarkDictGroupBy(b *testing.B) {
	rows, cats := 300_000, 2_000
	dict := make([]string, cats)
	for c := range dict {
		dict[c] = fmt.Sprintf("cat-%04d", c)
	}
	codes := make([]int32, rows)
	vals := make([]float64, rows)
	var nulls []bool
	for i := range codes {
		codes[i] = int32((i * 7919) % cats)
		vals[i] = float64(i%101) + 0.25
		if i%53 == 0 {
			if nulls == nil {
				nulls = make([]bool, rows)
			}
			nulls[i] = true
		}
	}
	frame, err := core.Build(
		[]vector.Vector{vector.NewDict(codes, dict, nil), vector.NewFloat(vals, nulls)},
		vector.Range(0, rows),
		[]types.Value{types.String("k"), types.String("v")}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	spec := expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{
			{Col: "v", Agg: expr.AggSum, As: "total"},
			{Col: "v", Agg: expr.AggMean, As: "avg"},
			{Col: "v", Agg: expr.AggMin, As: "lo"},
			{Col: "v", Agg: expr.AggCount, As: "n"},
		},
	}
	b.Run("dict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.GroupByFrame(frame, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		restore := algebra.SetDictGroupForTesting(false)
		defer restore()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.GroupByFrame(frame, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashGroupByKeys contrasts group-key identity computation: the
// boxed path renders every row's key tuple to a string (the pre-kernel
// routing representation — one rendered string and 1-2 allocations per
// row); the kernel path bulk-hashes the typed key columns and keeps one
// boxed exemplar per distinct group.
func BenchmarkHashGroupByKeys(b *testing.B) {
	keys := []string{"vendor_id", "passenger_count"}
	cols := make([]vector.Vector, len(keys))
	for k, name := range keys {
		cols[k] = benchTaxi.TypedCol(benchTaxi.ColIndex(name))
	}
	b.Run("boxed-string-keys", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			distinct := make(map[string]struct{})
			for r := 0; r < benchTaxi.NRows(); r++ {
				sb.Reset()
				for _, c := range cols {
					sb.WriteString(c.Value(r).Key())
					sb.WriteByte('\x1f')
				}
				distinct[sb.String()] = struct{}{}
			}
			if len(distinct) == 0 {
				b.Fatal("no keys")
			}
		}
	})
	b.Run("hash-kernels", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := algebra.SummarizeGroupKeys(benchTaxi, keys)
			if err != nil {
				b.Fatal(err)
			}
			if len(s.Hashes) == 0 {
				b.Fatal("no keys")
			}
		}
	})
}

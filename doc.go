// Package repro is a Go reproduction of "Towards Scalable Dataframe
// Systems" (Petersohn et al., VLDB 2020): the formal dataframe data model
// and algebra, a MODIN-style partition-parallel engine with a pandas-profile
// baseline, and a harness regenerating every table and figure in the
// paper's evaluation. The public API lives in repro/df; the root package
// only anchors the module-level benchmark suite (bench_test.go).
package repro

// Package repro is a Go reproduction of "Towards Scalable Dataframe
// Systems" (Petersohn et al., VLDB 2020): the formal dataframe data model
// and algebra, a MODIN-style partition-parallel engine with a pandas-profile
// baseline, and a harness regenerating every table and figure in the
// paper's evaluation. The public API lives in repro/df; the root package
// only anchors the module-level benchmark suite (bench_test.go).
//
// Execution architecture: the public surface (repro/df) builds logical
// plans through one code path — the lazy Query builder ((*DataFrame).Lazy,
// ScanCSV*), of which the eager methods are one-step sugar. A terminal verb
// (Collect/CollectAsync/Explain/Count/First) runs the accumulated plan
// through the optimizer's rewrite rules (internal/optimizer: MAP fusion,
// projection pushdown below Map/Selection/Sort/Rename, transpose and
// induction placement, sorted-groupby, limit-sort→TOPK) exactly once, then
// hands the optimized plan to an engine:
//
//	df.Query ──optimizer.Optimize──▶ algebra.Node ──compile──▶ physical DAG ──schedule──▶ exec.Pool
//	                                       ▲
//	            internal/stats sketches ───┘ (per-column stats steer the compile step's
//	                                          broadcast-vs-shuffle and cut decisions)
//
// Logical plans (internal/algebra) are either evaluated bottom-up by the
// single-threaded baseline (internal/eager) or compiled into a physical
// stage DAG (internal/physical) by the MODIN engine (internal/modin) — embarrassingly-parallel operator chains fuse
// into one task per partition band; the hot repartition points (GROUPBY,
// SORT, inner/left JOIN) lower to two-phase shuffles
// (summarize→plan→partition→merge; groupby partitions route from their
// band's own summary without waiting for the plan) emitting one
// independent future per output band; shape-opaque operators keep
// gather-exchange barriers — and
// scheduled asynchronously on the task-parallel execution layer
// (internal/exec). Partitioned frames (internal/partition) hold
// future-valued blocks, so results stay deferred until gathered; the
// session layer (internal/session) exploits this for the paper's
// opportunistic evaluation regime.
//
// Out-of-core streaming: the ScanCSV* sources lower to morsel-driven
// leaf stages (physical.StreamSource) instead of materialized frames. A
// producer goroutine parses the input band-by-band under a bounded
// parse-ahead window (the first band synchronously, so first-band
// latency is independent of input size), each band runs the stage's
// fused kernel chain as its own task and resolves a promise-backed block
// future. Groupby shuffles route incrementally: each band partitions
// from its own key summary the moment it parses (bucket = stable key
// hash, identical in every band), the global plan — exact
// first-appearance group order, heavy-bucket flags — gates only the
// merges, and routed pieces carry a rank column that a restore exchange
// folds back into exact single-node row order. Single-consumer scan
// bands are released as soon as a shuffle has routed them, and on such
// scans the producer holds its parse-ahead window against band RELEASE
// (routed, and past the budget spilled) rather than task completion, so
// slow routing stalls the parser instead of accumulating bands.
// Routed-but-unmerged shuffle pieces past modin.WithShuffleSpillBudget
// spill through internal/storage and re-resolve lazily inside the merge
// task that consumes them; cancellation routes through
// modin.Engine.ReleaseSpill so no spill files outlive a failed query.
// Stacked SELECTIONs inside a fused chain narrow one shared selection
// vector and coalesce once at stage exit. Resident memory is therefore
// bounded by window x band size + distinct keys + spill budget, not
// input size — with or without a filter; cmd/streamsmoke gates both
// shapes end-to-end in CI by streaming a file several times GOMEMLIMIT
// through filter->groupby and a pass-through groupby while sampling
// peak HeapAlloc. Scan open/parse failures are sticky query errors
// wrapping df.ErrScanSource.
//
// Serving: one step above the session sits the multi-tenant server
// (internal/server, cmd/dfserver), which exposes the minimal session
// surface (df.SessionAPI: Bind/Query/ThinkTime/Close) 1:1 over JSON/HTTP
// and multiplexes many concurrent users over shared engines:
//
//	wire ops ──BuildQuery──▶ df.Query ──Optimize──▶ optimizer.Fingerprint ──▶ PlanCache
//	                                                     │ hit: cached result │ miss: compile+run
//	                         tenant admission (budget → spill → queue → ErrBudgetExceeded)
//
// Post-optimizer plans are canonicalized (names stripped, sources as
// positional placeholders, literals kept) so fingerprint-equal queries from
// different sessions share compiled physical DAGs and — when base-frame
// versions match — materialized results; per-tenant cell budgets are
// enforced by admission control backed by the session spill machinery
// (internal/storage), and a think-time scheduler drains idle sessions'
// opportunistic DAGs before admitting new heavy work. Failures classify
// via the typed sentinels (df.ErrBudgetExceeded, df.ErrSessionClosed,
// df.ErrUnknownColumn, ...) with errors.Is. cmd/dfreplay replays a
// notebook-corpus-derived multi-user trace against the server and reports
// p50/p99 latency and cache hit rate (BENCH_REPLAY.json).
//
// Distributed execution: internal/cluster moves the engine across process
// boundaries. cmd/dfworker processes execute fused stages and shuffle
// phases shipped over a length-prefixed columnar wire format serialized
// straight from internal/vector typed storage, and a coordinator-side
// cluster.Scheduler implements the same engine surface df binds locally —
// plans whose operators cannot cross a process boundary (opaque Go
// closures, joins, windows) fall back to an embedded in-process engine
// — each fallback's reason is tallied in cluster Stats and reported by
// Query.Explain — and remote application errors re-run locally so
// callers always see the local results and error chains. Band tasks are assigned round-robin;
// shuffle merges are placed on the worker holding the most bytes of their
// bucket; a dead worker's bands are re-submitted as deterministic lineage
// (scan byte ranges + stage descriptors) to the survivors under a retry
// budget. The df layer selects the backend from the environment
// (DF_CLUSTER_WORKERS=n for in-process workers, DF_CLUSTER_ADDRS=a,b for
// external dfworker processes), so the whole suite runs both ways.
//
// Vectorized kernels: the operator inner loops run on typed bulk kernels
// (internal/vector) rather than boxing cells into types.Value or rendering
// them to string keys. Row identity in GROUPBY, JOIN, DROP-DUPLICATES,
// DIFFERENCE and the shuffle routing plan is a 64-bit hash over the typed
// key columns (vector.HashRows) with typed-equality verification on
// collisions; SORT/TOPK compare storage slices via vector.CompareRows; and
// structured SELECTION predicates (expr.Where, built by df.Where) execute
// through the typed filter kernels (vector.Filter*). Opaque func(Row) bool
// predicates keep the row-at-a-time path, and expr.Where.Predicate() is the
// transparent fallback wherever only a predicate is understood — the
// kernels change nothing about ordered-dataframe semantics (group
// first-appearance order, stable sort ties, nested join order).
//
// Statistics-driven strategy: the MODIN engine collects per-column
// statistics (counts, nulls, min/max, HyperLogLog distinct sketches —
// internal/sketch, internal/stats) bulk-wise from typed storage at scan
// boundaries, memoized per base frame and mergeable across partitions.
// optimizer.Estimator reads them through the SourceStats interface, and
// the compile step uses the estimates to pick physical strategies: joins
// whose build side exceeds the broadcast limit become key-shuffled hash
// joins, dictionary-coded group keys aggregate directly on int32 codes
// with typed accumulators, and skewed groupby shuffles weigh their cuts
// by per-key row volume (isolating Zipf-head keys in their own buckets).
// Query.Explain appends the chosen strategies with the estimates that
// drove them; modin.WithoutStats() restores the zero-stats plans
// (broadcast joins, even cuts) exactly.
//
// Scheduler instrumentation: each run's physical.Scheduler exposes Stats
// counters — FusedTasks/FusedStages for fused chains,
// ExchangeTasks/ExchangeStages for gather barriers, and the shuffle-phase
// counters ShuffleStages, ShuffleSummaryTasks, ShufflePlanTasks,
// ShufflePartitionTasks (one per input band), ShuffleMergeTasks (one per
// OUTPUT band; each backs its own block future) and ShuffleFallbacks
// (shuffles over shape-opaque inputs degraded to a single coordinating
// task). modin.Engine.Stats() aggregates the same counters across runs.
// See README.md for the full map.
package repro

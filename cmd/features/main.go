// Command features regenerates Table 3: the dataframe feature matrix. Our
// two engines are probed by executing each feature's defining operation;
// the pandas, R, Spark and Dask columns reproduce the published table.
package main

import (
	"fmt"

	"repro/internal/eager"
	"repro/internal/experiments"
	"repro/internal/modin"
)

func main() {
	res := experiments.RunTable3(modin.New(), eager.New())
	fmt.Print(experiments.FormatTable3(res))
	fmt.Println("\nour engines are probed live (a mark means the operation executed with its defining")
	fmt.Println("property intact); pandas/R/Spark/Dask columns are the paper's published values.")
}

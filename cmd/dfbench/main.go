// Command dfbench regenerates Figure 2 of "Towards Scalable Dataframe
// Systems": the map, groupby(n), groupby(1) and transpose microbenchmarks
// over a size sweep of the synthetic taxi dataset, run on both the
// pandas-profile baseline and the MODIN engine, reporting run times,
// speedups, and the baseline's transpose DNFs.
//
// Usage:
//
//	dfbench [-rows 20000,50000,100000,200000] [-repeats 3]
//	        [-query map|groupby(n)|groupby(1)|transpose|all]
//	        [-transpose-budget cells]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		rowsFlag    = flag.String("rows", "20000,50000,100000,200000", "comma-separated row counts to sweep")
		repeats     = flag.Int("repeats", 3, "runs per cell (best is reported)")
		queryFlag   = flag.String("query", "all", "query to run: map, groupby(n), groupby(1), transpose, or all")
		budgetFlag  = flag.Int("transpose-budget", 9*60_000, "baseline transpose cell budget (0 = unlimited)")
		summaryFlag = flag.Bool("summary", true, "print the paper-shape summary after the table")
		simulate    = flag.Bool("simulate", true, "also project multi-worker speedups by scheduling the measured per-partition tasks")
		simRows     = flag.Int("simulate-rows", 100_000, "row count for the worker-count projection")
	)
	flag.Parse()

	cfg := experiments.Figure2Config{
		Repeats:                 *repeats,
		BaselineTransposeBudget: *budgetFlag,
	}
	for _, part := range strings.Split(*rowsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "dfbench: bad row count %q\n", part)
			os.Exit(2)
		}
		cfg.RowCounts = append(cfg.RowCounts, n)
	}
	if *queryFlag != "all" {
		q := experiments.Figure2Query(*queryFlag)
		valid := false
		for _, known := range experiments.Figure2Queries {
			if q == known {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "dfbench: unknown query %q\n", *queryFlag)
			os.Exit(2)
		}
		cfg.Queries = []experiments.Figure2Query{q}
	}

	results, err := experiments.RunFigure2(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure2(results))

	if *summaryFlag {
		fmt.Println()
		fmt.Println("shape check against the paper (Section 3.2):")
		best := map[experiments.Figure2Query]float64{}
		dnf := false
		for _, r := range results {
			if r.Speedup > best[r.Query] {
				best[r.Query] = r.Speedup
			}
			if r.Query == experiments.QueryTranspose && r.BaselineDNF {
				dnf = true
			}
		}
		fmt.Printf("  max speedup — map: %.1fx, groupby(n): %.1fx, groupby(1): %.1fx\n",
			best[experiments.QueryMap], best[experiments.QueryGroupByN], best[experiments.QueryGroupBy1])
		fmt.Printf("  paper (128 cores): map 12x, groupby(n) 19x, groupby(1) 30x — expect proportionally less on fewer cores\n")
		if dnf {
			fmt.Println("  baseline transpose DNF above its budget while MODIN completed every size ✓ (paper: pandas fails beyond ~6 GB)")
		}
	}

	if *simulate {
		fmt.Println()
		simCfg := experiments.DefaultSimConfig(*simRows)
		simResults, err := experiments.RunSimulatedFigure2(simCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfbench: simulate: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatSimulated(simResults, simCfg.WorkerCounts))
		fmt.Println("projection: the real per-partition tasks are executed and timed; only their overlap on W")
		fmt.Println("workers is simulated (LPT scheduling). Compare W=128 to the paper's 12x/19x/30x on 128 cores.")
	}
}

// Command benchdiff serializes `go test -bench` output to JSON and compares
// two result files, failing on regressions past a threshold. It is the
// benchmark-regression gate of the CI pipeline:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=3x -count=3 . | benchdiff parse -o BENCH_PR.json
//	benchdiff compare -baseline BENCH_BASELINE.json -current BENCH_PR.json \
//	    -match Pipelined -threshold 1.25 -alloc-threshold 1.25
//
// parse keeps the FASTEST ns/op (and, when the run used -benchmem, the
// LOWEST allocs/op) across repeated counts of each benchmark (robust to
// scheduling noise) and strips the trailing GOMAXPROCS suffix so results
// compare across machines with different core counts; -keep-cpu retains
// the suffix so a `-cpu 1,4` run records one entry per parallelism level.
// compare exits non-zero when any benchmark selected by -match slowed
// down by more than the time threshold ratio, or allocated more than the
// alloc threshold ratio over baseline (alloc gating applies only where
// both files carry allocation counts). -require lists comma-separated
// regexps that must each match at least one current benchmark name, so a
// renamed or silently-skipped benchmark fails the gate even when the
// baseline predates it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated timing.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"` // fastest across samples
	Samples int     `json:"samples"`
	// AllocsPerOp is the lowest allocs/op across samples; nil when the run
	// did not report allocations (no -benchmem). Omitted from JSON when
	// absent, so pre-benchmem baselines stay readable.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// File is the serialized benchmark run.
type File struct {
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9.]+) allocs/op)?`)

// cpuSuffix is the -N GOMAXPROCS suffix Go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		runParse(os.Args[2:])
	case "compare":
		runCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchdiff parse [-o out.json] [-keep-cpu]          (bench output on stdin)
  benchdiff compare -baseline a.json -current b.json [-threshold 1.25] [-match regexp] [-require re,re]`)
	os.Exit(2)
}

func runParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	keepCPU := fs.Bool("keep-cpu", false, "keep the -N GOMAXPROCS suffix (one entry per -cpu level)")
	fs.Parse(args)

	results, err := parseBench(os.Stdin, *keepCPU)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	data, err := json.MarshalIndent(File{Benchmarks: results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBench scans `go test -bench` output, aggregating repeated counts of
// one benchmark to the fastest observation.
func parseBench(r io.Reader, keepCPU bool) ([]Result, error) {
	best := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		if !keepCPU {
			name = cpuSuffix.ReplaceAllString(name, "")
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var allocs *float64
		if m[3] != "" {
			if a, err := strconv.ParseFloat(m[3], 64); err == nil {
				allocs = &a
			}
		}
		if b, ok := best[name]; ok {
			b.Samples++
			if ns < b.NsPerOp {
				b.NsPerOp = ns
			}
			if allocs != nil && (b.AllocsPerOp == nil || *allocs < *b.AllocsPerOp) {
				b.AllocsPerOp = allocs
			}
		} else {
			best[name] = &Result{Name: name, NsPerOp: ns, Samples: 1, AllocsPerOp: allocs}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Result, len(names))
	for i, n := range names {
		out[i] = *best[n]
	}
	return out, nil
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baselinePath := fs.String("baseline", "", "baseline JSON (required)")
	currentPath := fs.String("current", "", "current JSON (required)")
	threshold := fs.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	allocThreshold := fs.Float64("alloc-threshold", 1.25, "fail when current/baseline allocs/op exceeds this ratio (where both record allocations)")
	match := fs.String("match", ".", "regexp selecting which benchmarks gate the comparison")
	require := fs.String("require", "", "comma-separated regexps that must each match a current benchmark")
	fs.Parse(args)
	if *baselinePath == "" || *currentPath == "" {
		usage()
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fatal(fmt.Errorf("bad -match: %w", err))
	}
	var required []*regexp.Regexp
	if *require != "" {
		for _, pat := range strings.Split(*require, ",") {
			rq, err := regexp.Compile(pat)
			if err != nil {
				fatal(fmt.Errorf("bad -require %q: %w", pat, err))
			}
			required = append(required, rq)
		}
	}
	baseline, err := loadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}

	var regressions, compared, missing int
	fmt.Printf("%-60s %14s %14s %8s %10s\n", "benchmark", "baseline", "current", "ratio", "allocs")
	for _, b := range baseline.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		cur, ok := current[b.Name]
		if !ok {
			missing++
			fmt.Printf("%-60s %14s %14s %8s %10s\n", b.Name, fmtNs(b.NsPerOp), "MISSING", "-", "-")
			continue
		}
		compared++
		ratio := cur.NsPerOp / b.NsPerOp
		timeReg := ratio > *threshold
		// Allocation gate: only where both runs used -benchmem. The +1
		// smoothing keeps zero-alloc baselines comparable (0→0 is 1.00x,
		// 0→1 is 2.00x).
		allocCol := "-"
		allocReg := false
		if b.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			allocRatio := (*cur.AllocsPerOp + 1) / (*b.AllocsPerOp + 1)
			allocCol = fmt.Sprintf("%.2fx", allocRatio)
			allocReg = allocRatio > *allocThreshold
		}
		marker := ""
		switch {
		case timeReg && allocReg:
			marker = "  << TIME+ALLOC REGRESSION"
		case timeReg:
			marker = "  << REGRESSION"
		case allocReg:
			marker = "  << ALLOC REGRESSION"
		}
		if timeReg || allocReg {
			regressions++
		}
		fmt.Printf("%-60s %14s %14s %7.2fx %10s%s\n", b.Name, fmtNs(b.NsPerOp), fmtNs(cur.NsPerOp), ratio, allocCol, marker)
	}
	fmt.Printf("\ncompared %d benchmark(s), %d missing, time threshold %.2fx, alloc threshold %.2fx\n", compared, missing, *threshold, *allocThreshold)
	// Presence gate: each -require pattern must match at least one CURRENT
	// benchmark. This catches a new benchmark that never ran (crash, rename,
	// bad -bench filter) even when the baseline predates it.
	for _, rq := range required {
		found := false
		for name := range current {
			if rq.MatchString(name) {
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("required benchmark %q missing from current results", rq))
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q in both files", *match))
	}
	if missing > 0 {
		// A gated benchmark that produced no current result is itself a
		// failure: a crashed or renamed benchmark must not pass silently.
		fatal(fmt.Errorf("%d gated benchmark(s) missing from current results", missing))
	}
	if regressions > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed past %.2fx", regressions, *threshold))
	}
	fmt.Println("benchdiff: OK")
}

func load(path string) (map[string]Result, error) {
	f, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Result, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// loadFile keeps the slice form for the comparison's stable iteration.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

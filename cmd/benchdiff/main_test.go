package main

import (
	"strings"
	"testing"
)

func TestParseBenchAggregatesAndStripsCPUSuffix(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkPipelinedFusedChainOnly/modin-8   3   5000000 ns/op   12 B/op   1 allocs/op
BenchmarkPipelinedFusedChainOnly/modin-8   3   4000000 ns/op   12 B/op   1 allocs/op
BenchmarkPipelinedFusedChainOnly/modin-8   3   6000000 ns/op   12 B/op   1 allocs/op
BenchmarkOther-8                           1   1234.5 ns/op
PASS
`
	results, err := parseBench(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(results))
	}
	// Sorted by name: BenchmarkOther first.
	if results[0].Name != "BenchmarkOther" || results[0].NsPerOp != 1234.5 {
		t.Errorf("result 0 = %+v", results[0])
	}
	got := results[1]
	if got.Name != "BenchmarkPipelinedFusedChainOnly/modin" {
		t.Errorf("CPU suffix should be stripped, got %q", got.Name)
	}
	if got.Samples != 3 || got.NsPerOp != 4000000 {
		t.Errorf("aggregation wrong: %+v (want fastest of 3 samples)", got)
	}
	if got.AllocsPerOp == nil || *got.AllocsPerOp != 1 {
		t.Errorf("allocs/op should parse from -benchmem output: %+v", got)
	}
	if results[0].AllocsPerOp != nil {
		t.Errorf("benchmark without -benchmem columns must carry no alloc count: %+v", results[0])
	}
}

func TestParseBenchKeepsLowestAllocs(t *testing.T) {
	out := `BenchmarkX-8   3   5000 ns/op   128 B/op   7 allocs/op
BenchmarkX-8   3   6000 ns/op   96 B/op   5 allocs/op
`
	results, err := parseBench(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(results))
	}
	r := results[0]
	if r.NsPerOp != 5000 {
		t.Errorf("ns/op = %v, want fastest 5000", r.NsPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 5 {
		t.Errorf("allocs/op = %v, want lowest 5", r.AllocsPerOp)
	}
}

func TestParseBenchIgnoresNonBenchLines(t *testing.T) {
	results, err := parseBench(strings.NewReader("PASS\nok repro 1.2s\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(results))
	}
}

func TestParseBenchKeepCPUSuffix(t *testing.T) {
	out := `BenchmarkShuffledJoin/shuffle     3   5000 ns/op
BenchmarkShuffledJoin/shuffle-4   3   7000 ns/op
`
	results, err := parseBench(strings.NewReader(out), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("keep-cpu must record one entry per -cpu level, got %d", len(results))
	}
	if results[0].Name != "BenchmarkShuffledJoin/shuffle" || results[1].Name != "BenchmarkShuffledJoin/shuffle-4" {
		t.Errorf("names = %q, %q", results[0].Name, results[1].Name)
	}
	// Without keep-cpu the same input folds to one entry (fastest wins).
	folded, err := parseBench(strings.NewReader(out), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) != 1 || folded[0].NsPerOp != 5000 {
		t.Errorf("folded = %+v, want one entry at 5000 ns/op", folded)
	}
}

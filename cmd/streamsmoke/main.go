// Command streamsmoke is the bounded-memory acceptance harness for
// out-of-core streaming execution: it writes a synthetic taxi-scale CSV
// several times larger than the configured memory ceiling (streamingly, so
// generation itself stays flat), computes the expected aggregates on the
// fly, then runs the streamed filter→groupby pipeline through the public
// df API and requires (1) the results to match the running truth and
// (2) the observed peak heap to stay under the ceiling.
//
// GOMEMLIMIT is a soft limit — the Go runtime works harder near it but
// never refuses an allocation — so the harness samples runtime.MemStats
// itself and fails when peak HeapAlloc exceeds -maxheap. CI runs this with
// GOMEMLIMIT a small fraction of the generated file size; see the
// stream-smoke job in .github/workflows/ci.yml.
//
// With -cluster the same pipeline runs distributed across external dfworker
// processes instead (the cluster-smoke CI job): the harness requires the
// aggregates to match ground truth AND the query to have actually executed
// on the cluster, not via fallback. -kill-pid additionally SIGKILLs one
// worker right after the band phase, requiring the coordinator to finish by
// re-submitting the lost bands' lineage to the survivors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/df"
	"repro/internal/cluster"
)

func main() {
	rows := flag.Int("rows", 2_000_000, "generated CSV rows")
	band := flag.Int("band", 8192, "scan band rows (morsel size)")
	spill := flag.Int("spill", 500_000, "shuffle spill budget in cells (0 = off)")
	maxheap := flag.Int64("maxheap", 0, "fail if peak HeapAlloc exceeds this many bytes (0 = report only)")
	mod := flag.Int("mod", 1000, "filter selectivity: one row in mod survives (<= 0: pass-through, no filter at all)")
	file := flag.String("file", "", "write the CSV here and keep it, instead of a removed temp file")
	addrs := flag.String("cluster", "", "comma-separated dfworker addresses: run the pipeline distributed")
	killPid := flag.Int("kill-pid", 0, "with -cluster: SIGKILL this worker pid after the band phase and require lineage re-submission")
	flag.Parse()

	if err := run(*rows, *band, *spill, *maxheap, *mod, *file, *addrs, *killPid); err != nil {
		fmt.Fprintln(os.Stderr, "streamsmoke:", err)
		os.Exit(1)
	}
}

var payments = []string{"card", "cash", "dispute", "no charge"}

// generate streams the synthetic dataset to path with O(1) memory and
// returns the ground-truth per-payment tip sums and counts over the rows
// the pipeline's filter keeps (tag == "pick", tip non-null). mod <= 0 is
// the pass-through shape: no filter runs, so truth accumulates over EVERY
// row — the worst case for shuffle memory, since each parsed band routes
// all of its rows instead of a sliver.
func generate(path string, rows, mod int) (sums map[string]float64, counts map[string]int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	rng := rand.New(rand.NewSource(2020))

	sums = make(map[string]float64)
	counts = make(map[string]int64)
	fmt.Fprintln(w, "vendor_id,payment_type,fare_amount,tip_amount,tag")
	for i := 0; i < rows; i++ {
		vendor := []string{"CMT", "VTS", "DDS"}[rng.Intn(3)]
		payment := payments[rng.Intn(len(payments))]
		fare := 2.5 + rng.Float64()*50
		tip := ""
		tipVal := 0.0
		if rng.Intn(13) != 0 { // ~8% null tips
			tipVal = math.Round(rng.Float64()*2000) / 100
			tip = fmt.Sprintf("%.2f", tipVal)
		}
		tag := "skip"
		if mod <= 0 || i%mod == 0 {
			tag = "pick"
			if tip != "" {
				sums[payment] += tipVal
				counts[payment]++
			}
		}
		fmt.Fprintf(w, "%s,%s,%.2f,%s,%s\n", vendor, payment, fare, tip, tag)
	}
	return sums, counts, w.Flush()
}

// watchHeap samples HeapAlloc until stop is closed and reports the peak.
func watchHeap(stop <-chan struct{}) <-chan uint64 {
	out := make(chan uint64, 1)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				out <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return out
}

// connectCluster dials the workers and, when killPid is set, arms a hook
// that kills that worker process the moment the band phase completes — the
// worst time to lose a worker: its band results are routed but unmerged.
func connectCluster(addrs string, killPid int) (*cluster.Scheduler, error) {
	sched, err := cluster.Connect(strings.Split(addrs, ","))
	if err != nil {
		return nil, err
	}
	if killPid > 0 {
		var once sync.Once
		sched.OnPhase = func(phase string) {
			if phase != "bands" {
				return
			}
			once.Do(func() {
				p, err := os.FindProcess(killPid)
				if err == nil {
					err = p.Kill()
				}
				fmt.Printf("killed worker pid %d after band phase (err=%v)\n", killPid, err)
			})
		}
	}
	return sched, nil
}

// checkClusterStats gates the distributed pass: the query must have run on
// the cluster (not fallen back, not re-run locally), and a kill pass must
// have survived it through lineage re-submission.
func checkClusterStats(st cluster.Stats, killPid int) error {
	fmt.Printf("cluster stats: distributed=%d fallback=%d reruns=%d resubmitted-bands=%d dead-workers=%d\n",
		st.Distributed, st.Fallback, st.LocalReruns, st.ResubmittedBands, st.DeadWorkers)
	if st.Distributed == 0 {
		return fmt.Errorf("pipeline did not run distributed (fallback=%d reruns=%d)", st.Fallback, st.LocalReruns)
	}
	if st.LocalReruns > 0 {
		return fmt.Errorf("pipeline re-ran locally %d times instead of recovering on the cluster", st.LocalReruns)
	}
	if killPid > 0 {
		if st.ResubmittedBands == 0 {
			return fmt.Errorf("worker killed but no band lineage was re-submitted")
		}
		if st.DeadWorkers == 0 {
			return fmt.Errorf("worker killed but never marked dead")
		}
	}
	return nil
}

func run(rows, band, spill int, maxheap int64, mod int, file, addrs string, killPid int) error {
	path := file
	if path == "" {
		tmp, err := os.CreateTemp("", "streamsmoke-*.csv")
		if err != nil {
			return err
		}
		path = tmp.Name()
		tmp.Close()
		defer os.Remove(path)
	}

	genStart := time.Now()
	sums, counts, err := generate(path, rows, mod)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	fmt.Printf("generated %d rows in %v\n", rows, time.Since(genStart).Round(time.Millisecond))
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %s (%.1f MB), band=%d rows, spill budget=%d cells\n",
		path, float64(info.Size())/1e6, band, spill)
	if lim := os.Getenv("GOMEMLIMIT"); lim != "" {
		fmt.Printf("GOMEMLIMIT=%s\n", lim)
	}

	var sched *cluster.Scheduler
	if addrs != "" {
		var err error
		if sched, err = connectCluster(addrs, killPid); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		// Spilling is a local-engine concern; distributed shuffle state
		// lives on the workers.
		spill = 0
		fmt.Printf("distributed across %s\n", addrs)
	}

	stop := make(chan struct{})
	peakCh := watchHeap(stop)

	start := time.Now()
	q := df.ScanCSVFile(path).WithScanBandRows(band)
	if sched != nil {
		q = q.WithEngine(sched)
	}
	if spill > 0 {
		q = q.WithSpillBudget(spill)
	}
	shape := "filter→groupby"
	if mod > 0 {
		q = q.Where(df.Eq("tag", df.Str("pick")))
	} else {
		// Pass-through: every parsed band routes all of its rows, so this
		// shape only stays bounded if bands partition (and spill) the moment
		// they parse instead of accumulating behind a routing barrier.
		shape = "pass-through groupby"
	}
	out, err := q.
		GroupBy("payment_type").
		Agg(
			df.AggSpec{Col: "tip_amount", Agg: "sum", As: "tip_sum"},
			df.AggSpec{Col: "tip_amount", Agg: "count", As: "tip_count"},
		).
		Collect()
	elapsed := time.Since(start)
	close(stop)
	peak := <-peakCh
	if err != nil {
		return fmt.Errorf("streamed pipeline: %w", err)
	}
	fmt.Printf("streamed %s in %v, peak HeapAlloc %.1f MB\n",
		shape, elapsed.Round(time.Millisecond), float64(peak)/1e6)

	if err := check(out, sums, counts); err != nil {
		return err
	}
	fmt.Println("aggregates match the generation-time ground truth")

	if sched != nil {
		if err := checkClusterStats(sched.ClusterStats(), killPid); err != nil {
			return err
		}
	}

	if maxheap > 0 && int64(peak) > maxheap {
		return fmt.Errorf("peak HeapAlloc %d exceeds ceiling %d", peak, maxheap)
	}
	if maxheap > 0 {
		fmt.Printf("peak within ceiling (%.1f / %.1f MB)\n", float64(peak)/1e6, float64(maxheap)/1e6)
	}
	return nil
}

// check compares the collected group aggregates to the running truth.
func check(out *df.DataFrame, sums map[string]float64, counts map[string]int64) error {
	keys, err := out.ColValues("payment_type")
	if err != nil {
		return err
	}
	gotSums, err := out.ColValues("tip_sum")
	if err != nil {
		return err
	}
	gotCounts, err := out.ColValues("tip_count")
	if err != nil {
		return err
	}
	if len(keys) != len(sums) {
		return fmt.Errorf("got %d groups, want %d", len(keys), len(sums))
	}
	for i, k := range keys {
		name := k.String()
		wantSum, ok := sums[name]
		if !ok {
			return fmt.Errorf("unexpected group %q", name)
		}
		if got := gotCounts[i].Int(); got != counts[name] {
			return fmt.Errorf("group %q count = %d, want %d", name, got, counts[name])
		}
		got := gotSums[i].Float()
		if math.Abs(got-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
			return fmt.Errorf("group %q sum = %v, want %v", name, got, wantSum)
		}
	}
	return nil
}

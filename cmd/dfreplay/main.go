// dfreplay replays a simulated multi-user notebook workload against the
// dataframe server and reports latency percentiles and cache effectiveness.
//
// The trace is derived from the notebook-corpus call mix (internal/notebooks,
// the Figure 7 ranking): sessions issue filter/head-heavy statement streams
// with groupby, sort and column ops mixed in at corpus proportions, and —
// as in real notebook fleets — many users run the same handful of query
// shapes over the same shared datasets, which is exactly what the plan
// cache exploits. Literals are drawn from a small per-shape set so repeats
// occur across sessions without every query being identical.
//
// Default mode runs in process: the full trace twice (cache on, then cache
// off on a fresh server) and writes the comparison to BENCH_REPLAY.json.
// With -addr it drives a running dfserver over HTTP instead (CI smoke).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/df"
	"repro/internal/server"
	"repro/internal/workload"
)

// shapeWeights mirrors the corpus call mix (internal/notebooks callMix),
// collapsed onto the server's wire ops: loc→where, head/tail→limit,
// mean/sum/max→groupby aggregates, groupby→size, sort_values→sort,
// drop→drop.
var shapes = []struct {
	name   string
	weight float64
	make   func(r *rand.Rand) []server.OpSpec
}{
	{"filter-head", 92, func(r *rand.Rand) []server.OpSpec { // head after a loc filter
		return []server.OpSpec{
			whereTotal(r),
			{Op: "head", N: 5 + r.Intn(3)*5},
		}
	}},
	{"filter", 70, func(r *rand.Rand) []server.OpSpec { // bare loc
		return []server.OpSpec{whereTotal(r)}
	}},
	{"mean", 58, func(r *rand.Rand) []server.OpSpec { // col mean via groupby
		return []server.OpSpec{
			{Op: "groupby", By: []string{"payment_type"},
				Aggs: []server.AggSpec{{Col: "total_amount", Agg: "mean", As: "avg_total"}}},
		}
	}},
	{"groupby-size", 52, func(r *rand.Rand) []server.OpSpec {
		return []server.OpSpec{
			{Op: "groupby", By: []string{"vendor_id"},
				Aggs: []server.AggSpec{{Col: "", Agg: "size", As: "trips"}}},
		}
	}},
	{"drop", 46, func(r *rand.Rand) []server.OpSpec {
		return []server.OpSpec{
			{Op: "drop", Cols: []string{"store_and_fwd_flag"}},
			{Op: "head", N: 10},
		}
	}},
	{"agg-sort", 38, func(r *rand.Rand) []server.OpSpec { // merge-like heavy shape
		return []server.OpSpec{
			whereTotal(r),
			{Op: "groupby", By: []string{"vendor_id", "payment_type"},
				Aggs: []server.AggSpec{{Col: "tip_amount", Agg: "mean", As: "avg_tip"}}},
			{Op: "sort", Keys: []server.SortKeySpec{{Col: "avg_tip", Desc: true}}},
		}
	}},
	{"sort-head", 20, func(r *rand.Rand) []server.OpSpec {
		return []server.OpSpec{
			{Op: "sort", Keys: []server.SortKeySpec{{Col: "trip_distance", Desc: true}}},
			{Op: "head", N: 10},
		}
	}},
	{"tail", 9, func(r *rand.Rand) []server.OpSpec {
		return []server.OpSpec{{Op: "tail", N: 5}}
	}},
}

// whereTotal draws the filter literal from a small set, so sessions repeat
// each other's predicates at dashboard-like rates.
func whereTotal(r *rand.Rand) server.OpSpec {
	cutoffs := []string{"10", "20", "30", "40"}
	return server.OpSpec{Op: "where", Col: "total_amount", Cmp: ">",
		Value: json.RawMessage(cutoffs[r.Intn(len(cutoffs))])}
}

type traceQuery struct {
	session int
	tenant  string
	spec    server.QuerySpec
}

// buildTrace pre-generates the full workload deterministically.
func buildTrace(sessions, perSession, tenants int, seed int64) []traceQuery {
	r := rand.New(rand.NewSource(seed))
	total := 0.0
	for _, s := range shapes {
		total += s.weight
	}
	var trace []traceQuery
	for s := 0; s < sessions; s++ {
		tenant := fmt.Sprintf("team-%d", s%tenants)
		for q := 0; q < perSession; q++ {
			pick := r.Float64() * total
			for _, shape := range shapes {
				if pick < shape.weight {
					trace = append(trace, traceQuery{
						session: s,
						tenant:  tenant,
						spec:    server.QuerySpec{Name: shape.name, Dataset: "taxi", Ops: shape.make(r)},
					})
					break
				}
				pick -= shape.weight
			}
		}
	}
	return trace
}

type runStats struct {
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	Queries   int     `json:"queries"`
	HitRate   float64 `json:"hit_rate"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// replay runs the trace against an in-process server with the given cache
// setting, one goroutine per simulated concurrent user.
func replay(trace []traceQuery, sessions, rows, budget, workers int, cacheOff bool) runStats {
	s := server.New(server.Config{
		CacheOff:          cacheOff,
		TenantBudgetCells: budget,
	})
	defer s.Shutdown()
	s.Start()
	s.RegisterDataset("taxi", df.FromFrame(workload.Taxi(workload.DefaultTaxiOptions(rows))))

	bynum := make(map[int]string, sessions)
	for _, q := range trace {
		if _, ok := bynum[q.session]; !ok {
			bynum[q.session] = s.OpenSession(q.tenant, df.ModeEager)
		}
	}

	latencies := make([]float64, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				q := trace[i]
				t0 := time.Now()
				if _, err := s.RunQuery(bynum[q.session], q.spec); err != nil {
					log.Fatalf("replay query %d (%s): %v", i, q.spec.Name, err)
				}
				latencies[i] = float64(time.Since(t0).Microseconds())
			}
		}()
	}
	for i := range trace {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	stats := s.Stats()
	sort.Float64s(latencies)
	return runStats{
		P50Us:     percentile(latencies, 0.50),
		P99Us:     percentile(latencies, 0.99),
		Queries:   len(trace),
		HitRate:   stats.Cache.HitRate(),
		Hits:      stats.Cache.Hits,
		Misses:    stats.Cache.Misses,
		ElapsedMs: float64(elapsed.Milliseconds()),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// smoke drives a running dfserver over HTTP: a short trace, then asserts
// the server reports cache hits.
func smoke(addr string, trace []traceQuery) error {
	base := "http://" + addr
	post := func(path string, body any, out any) error {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s: %d %s", path, resp.StatusCode, e["error"])
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}
	if err := post("/datasets", map[string]any{"name": "taxi", "taxi_rows": 5000}, nil); err != nil {
		return err
	}
	ids := make(map[int]string)
	for _, q := range trace {
		id, ok := ids[q.session]
		if !ok {
			var sess struct {
				ID string `json:"id"`
			}
			if err := post("/sessions", map[string]string{"tenant": q.tenant, "mode": "eager"}, &sess); err != nil {
				return err
			}
			id, ids[q.session] = sess.ID, sess.ID
		}
		var res server.QueryResult
		if err := post("/sessions/"+id+"/query", q.spec, &res); err != nil {
			return err
		}
	}
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats server.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("smoke: %d queries, %d cache hits (rate %.2f)\n",
		stats.Queries, stats.Cache.Hits, stats.Cache.HitRate())
	if stats.Cache.Hits == 0 {
		return fmt.Errorf("smoke: no cache hits recorded")
	}
	return nil
}

func main() {
	sessions := flag.Int("sessions", 1000, "simulated user sessions")
	perSession := flag.Int("queries", 6, "queries per session")
	tenants := flag.Int("tenants", 40, "tenant count (sessions spread round-robin)")
	rows := flag.Int("rows", 20000, "taxi dataset rows")
	budget := flag.Int("budget", 0, "per-tenant budget in cells (0: unlimited)")
	workers := flag.Int("workers", 32, "concurrent replay workers")
	seed := flag.Int64("seed", 1, "trace seed")
	out := flag.String("out", "BENCH_REPLAY.json", "output JSON path")
	check := flag.Bool("check", false, "exit nonzero unless hit rate > 0.5 and p50 speedup >= 2x")
	addr := flag.String("addr", "", "smoke mode: drive a running dfserver at this address instead")
	flag.Parse()

	if *addr != "" {
		trace := buildTrace(*sessions, *perSession, *tenants, *seed)
		if err := smoke(*addr, trace); err != nil {
			log.Fatal(err)
		}
		return
	}

	trace := buildTrace(*sessions, *perSession, *tenants, *seed)
	fmt.Printf("replaying %d queries from %d sessions over %d tenants (%d workers)\n",
		len(trace), *sessions, *tenants, *workers)

	on := replay(trace, *sessions, *rows, *budget, *workers, false)
	fmt.Printf("cache on : p50=%.0fµs p99=%.0fµs hit-rate=%.2f (%d hits / %d misses) wall=%.0fms\n",
		on.P50Us, on.P99Us, on.HitRate, on.Hits, on.Misses, on.ElapsedMs)
	off := replay(trace, *sessions, *rows, *budget, *workers, true)
	fmt.Printf("cache off: p50=%.0fµs p99=%.0fµs wall=%.0fms\n", off.P50Us, off.P99Us, off.ElapsedMs)

	speedup := 0.0
	if on.P50Us > 0 {
		speedup = off.P50Us / on.P50Us
	}
	fmt.Printf("p50 speedup: %.1fx\n", speedup)

	report := map[string]any{
		"bench":       "dfreplay",
		"sessions":    *sessions,
		"tenants":     *tenants,
		"queries":     len(trace),
		"rows":        *rows,
		"cache_on":    on,
		"cache_off":   off,
		"p50_speedup": speedup,
	}
	buf, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		if on.HitRate <= 0.5 {
			log.Fatalf("check failed: hit rate %.2f <= 0.5", on.HitRate)
		}
		if speedup < 2 {
			log.Fatalf("check failed: p50 speedup %.1fx < 2x", speedup)
		}
		fmt.Println("check passed: hit rate > 0.5, p50 speedup >= 2x")
	}
}

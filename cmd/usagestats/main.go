// Command usagestats regenerates Figure 7 / Section 4.6: the pandas usage
// study. It synthesizes a notebook corpus with the paper's call-frequency
// profile, extracts method invocations with the pycalls scanner, and prints
// the ranked frequency tables (total occurrences, per-file occurrences, and
// same-line co-occurrences).
//
// Usage:
//
//	usagestats [-notebooks 2000] [-top 25]
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	var (
		corpusSize = flag.Int("notebooks", 2000, "number of notebooks to synthesize")
		top        = flag.Int("top", 25, "show the top-N functions")
	)
	flag.Parse()

	res := experiments.RunFigure7(*corpusSize)
	if *top > 0 && len(res.ByTotal) > *top {
		res.ByTotal = res.ByTotal[:*top]
		res.ByFiles = res.ByFiles[:*top]
	}
	fmt.Print(experiments.FormatFigure7(res))
	fmt.Println("\nshape check against the paper: data-ingest and inspection functions (read_csv, head,")
	fmt.Println("plot, shape, loc) dominate; statistical tails like kurtosis are rare; ~40% of notebooks")
	fmt.Println("use pandas; chained same-line invocations (e.g. dropna+describe) are common.")
}

// Command pivotbench regenerates the Figure 8 plan comparison: pivoting the
// SALES table around "Month" via (a) the direct hash-group-by plan versus
// (b) the rewrite that pivots over the sorted "Year" column with a
// streaming group-by and transposes the result. It also prints the logical
// plans (Figures 6 and 8) and the optimizer's Explain trace for the
// rewrite rules involved.
//
// Usage:
//
//	pivotbench [-years 500,2000,8000] [-months 12] [-repeats 3] [-plans]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	var (
		yearsFlag = flag.String("years", "500,2000,8000", "comma-separated year counts (group counts) to sweep")
		months    = flag.Int("months", 12, "months per year (columns of the wide result)")
		repeats   = flag.Int("repeats", 3, "runs per plan (best is reported)")
		showPlans = flag.Bool("plans", true, "print the logical plans")
	)
	flag.Parse()

	var years []int
	for _, part := range strings.Split(*yearsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "pivotbench: bad year count %q\n", part)
			os.Exit(2)
		}
		years = append(years, n)
	}

	if *showPlans {
		sales := workload.Sales(3, *months, 11)
		original, optimized, err := experiments.Figure8Plans(sales)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pivotbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("plan (a) — pivot around Month (Figure 8a):")
		fmt.Print(algebra.Render(original))
		fmt.Println("plan (b) — pivot around sorted Year, then TRANSPOSE (Figure 8b):")
		fmt.Print(algebra.Render(optimized))
		fmt.Println("optimizer trace for a double-transpose plan:")
		fmt.Print(optimizer.Explain(
			&algebra.Transpose{Input: &algebra.Transpose{Input: &algebra.Source{DF: sales, Name: "sales"}}},
			optimizer.Default()))
		fmt.Println()
	}

	results, err := experiments.RunFigure8(years, *months, *repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pivotbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFigure8(results))
	fmt.Println("\nshape check: plan (b) should win and widen its lead as the year count (group count) grows,")
	fmt.Println("because the streaming group-by avoids hashing — the sorted-column advantage of Section 5.2.2.")
}

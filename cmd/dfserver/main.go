// dfserver serves the multi-tenant dataframe API over HTTP: sessions,
// datasets, cached queries, budgets. See internal/server for the protocol
// and README's "Serving" section for a quickstart.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/df"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8700", "listen address")
	cacheCells := flag.Int("cache-cells", 4<<20, "plan cache result ceiling in cells (negative: unlimited)")
	cacheOff := flag.Bool("cache-off", false, "disable the query-plan cache")
	budget := flag.Int("budget", 0, "per-tenant memory budget in cells (0: unlimited)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max queue time for over-budget queries")
	idleAfter := flag.Duration("idle-after", 50*time.Millisecond, "idle threshold for think-time draining")
	taxiRows := flag.Int("taxi", 0, "preload a synthetic 'taxi' dataset with this many rows")
	rate := flag.Float64("rate", 0, "per-tenant sustained queries/sec (0: unlimited)")
	burst := flag.Int("burst", 0, "per-tenant burst size (0: derived from -rate)")
	flag.Parse()

	s := server.New(server.Config{
		CacheMaxCells:     *cacheCells,
		CacheOff:          *cacheOff,
		TenantBudgetCells: *budget,
		QueueWait:         *queueWait,
		IdleAfter:         *idleAfter,
		RatePerSec:        *rate,
		RateBurst:         *burst,
	})
	if *taxiRows > 0 {
		s.RegisterDataset("taxi", df.FromFrame(workload.Taxi(workload.DefaultTaxiOptions(*taxiRows))))
		fmt.Printf("dataset taxi: %d rows\n", *taxiRows)
	}
	s.Start()
	defer s.Shutdown()

	fmt.Printf("dfserver listening on %s (cache-off=%v budget=%d)\n", *addr, *cacheOff, *budget)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}

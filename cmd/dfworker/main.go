// Command dfworker runs one distributed-execution worker process: it
// listens for a coordinator (internal/cluster.Scheduler, or any df program
// run with DF_CLUSTER_ADDRS), executes shipped stage plans and shuffle
// phases, and serves routed pieces to peer workers.
//
// Usage:
//
//	dfworker -addr 127.0.0.1:7070
//
// The worker prints its bound address on stdout ("listening <addr>") once
// ready — with -addr :0 the kernel picks the port, so launch scripts can
// scrape it. The process runs until killed; losing a worker mid-query is
// survivable, the coordinator re-submits the lost bands' lineage to the
// survivors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks one)")
	flag.Parse()

	w, err := cluster.NewWorker(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("listening %s\n", w.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	w.Close()
}

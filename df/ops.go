package df

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Table 2 of the paper maps pandas operators onto the algebra; the methods
// in this file are those rewrites, executable. Each is one-step sugar over
// the lazy Query builder (query.go) — the single code path for node
// construction — collecting immediately to keep the pandas feel.

// Filter implements boolean-predicate SELECTION, like df[df.col == x], with
// an opaque Go predicate evaluated row at a time. When the condition is a
// column comparison, prefer Where — it compiles to the typed filter kernels
// and never materializes row views.
func (d *DataFrame) Filter(desc string, pred func(Row) bool) (*DataFrame, error) {
	return d.Lazy().Filter(desc, pred).Collect()
}

// Cond is one column comparison of a structured filter; build with Eq, Ne,
// Lt, Le, Gt, Ge, NotNull and IsNull.
type Cond struct{ term expr.WhereTerm }

// Eq selects rows where col equals v (a null v selects null cells).
func Eq(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpEq, Operand: v}}
}

// Ne selects rows where col is non-null and differs from v.
func Ne(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpNe, Operand: v}}
}

// Lt selects rows where col is non-null and orders before v.
func Lt(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpLt, Operand: v}}
}

// Le selects rows where col is non-null and orders at or before v.
func Le(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpLe, Operand: v}}
}

// Gt selects rows where col is non-null and orders after v.
func Gt(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpGt, Operand: v}}
}

// Ge selects rows where col is non-null and orders at or after v.
func Ge(col string, v Value) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpGe, Operand: v}}
}

// NotNull selects rows where col is non-null.
func NotNull(col string) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpNe, Operand: types.Null()}}
}

// IsNull selects rows where col is null.
func IsNull(col string) Cond {
	return Cond{expr.WhereTerm{Col: col, Op: vector.CmpEq, Operand: types.Null()}}
}

// Where implements structured SELECTION: the conjunction of the given
// conditions, compiled to the typed filter kernels (no per-row boxing).
// Zero conditions keep every row.
func (d *DataFrame) Where(conds ...Cond) (*DataFrame, error) {
	return d.Lazy().Where(conds...).Collect()
}

// Row is the row view handed to user predicates and row functions.
type Row struct{ inner expr.Row }

// Value returns the parsed cell at column position j.
func (r Row) Value(j int) Value { return r.inner.Value(j) }

// ByName returns the cell under the named column.
func (r Row) ByName(name string) Value { return r.inner.ByName(name) }

// NCols returns the row's arity.
func (r Row) NCols() int { return r.inner.NCols() }

// ColName returns column j's label.
func (r Row) ColName(j int) string { return r.inner.ColName(j) }

// Label returns the row's label.
func (r Row) Label() Value { return r.inner.Label() }

// Select implements PROJECTION: keep the named columns in order.
func (d *DataFrame) Select(cols ...string) (*DataFrame, error) {
	return d.Lazy().Select(cols...).Collect()
}

// Drop removes the named columns, like pandas drop(columns=...).
func (d *DataFrame) Drop(cols ...string) (*DataFrame, error) {
	return d.Lazy().Drop(cols...).Collect()
}

// Rename relabels columns per the mapping.
func (d *DataFrame) Rename(mapping map[string]string) (*DataFrame, error) {
	return d.Lazy().Rename(mapping).Collect()
}

// Concat appends other below this frame: the ordered UNION, like
// pandas.concat / append.
func (d *DataFrame) Concat(other *DataFrame) (*DataFrame, error) {
	return d.Lazy().Concat(other.Lazy()).Collect()
}

// Except returns rows not present in other: the ordered DIFFERENCE.
func (d *DataFrame) Except(other *DataFrame) (*DataFrame, error) {
	return d.Lazy().Except(other.Lazy()).Collect()
}

// DropDuplicates removes duplicate rows (over the given columns; none means
// all), keeping first occurrences.
func (d *DataFrame) DropDuplicates(subset ...string) (*DataFrame, error) {
	return d.Lazy().DropDuplicates(subset...).Collect()
}

// SortValues orders rows by the given columns ascending, like
// pandas sort_values.
func (d *DataFrame) SortValues(cols ...string) (*DataFrame, error) {
	return d.Lazy().SortValues(cols...).Collect()
}

// SortValuesBy orders rows with explicit per-key direction.
func (d *DataFrame) SortValuesBy(order []SortKey) (*DataFrame, error) {
	return d.Lazy().SortValuesBy(order).Collect()
}

// SortKey is one sort key with direction.
type SortKey struct {
	Col  string
	Desc bool
}

// SortIndex orders rows by the row labels, like pandas sort_index.
func (d *DataFrame) SortIndex() (*DataFrame, error) {
	return d.Lazy().SortIndex().Collect()
}

// T is the matrix-like TRANSPOSE (step C2 of Figure 1): rows become columns
// and labels swap axes; the new schema is re-induced lazily.
func (d *DataFrame) T() (*DataFrame, error) {
	return d.Lazy().T().Collect()
}

// TWithSchema transposes with a declared output schema, skipping induction
// (the TRANSPOSE(df, myschema) form of Section 5.1.2). Domain names are
// those of Dtypes: "int", "float", "bool", "object", "category",
// "datetime".
func (d *DataFrame) TWithSchema(domains []string) (*DataFrame, error) {
	doms := make([]types.Domain, len(domains))
	for i, name := range domains {
		dom, ok := types.ParseDomain(name)
		if !ok {
			return nil, fmt.Errorf("df: unknown domain %q", name)
		}
		doms[i] = dom
	}
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.Transpose{Input: in, Schema: doms}
	})
}

// ApplyMap applies fn to every cell: the elementwise MAP (pandas applymap /
// transform).
func (d *DataFrame) ApplyMap(name string, fn func(Value) Value) (*DataFrame, error) {
	return d.Lazy().ApplyMap(name, fn).Collect()
}

// Apply applies fn to every row, producing the named output columns: the
// general MAP of the algebra (pandas apply(axis=1)).
func (d *DataFrame) Apply(name string, outCols []string, fn func(Row) []Value) (*DataFrame, error) {
	return d.Lazy().Apply(name, outCols, fn).Collect()
}

// MapCol transforms one column with fn, leaving the rest unchanged (step C3
// of Figure 1: products["Wireless Charging"].map(...)).
func (d *DataFrame) MapCol(col string, name string, fn func(Value) Value) (*DataFrame, error) {
	return d.Lazy().MapCol(col, name, fn).Collect()
}

// IsNA replaces every cell with whether it is null (pandas isna/isnull).
func (d *DataFrame) IsNA() (*DataFrame, error) {
	return d.Lazy().IsNA().Collect()
}

// FillNA replaces nulls with the given value (pandas fillna).
func (d *DataFrame) FillNA(v Value) (*DataFrame, error) {
	return d.Lazy().FillNA(v).Collect()
}

// DropNA removes rows containing any null (pandas dropna). With unique
// column labels the filter compiles to one structured NotNull conjunction
// over every column (the kernel path); duplicated labels fall back to the
// positional row predicate, which Where's by-name terms cannot express.
func (d *DataFrame) DropNA() (*DataFrame, error) {
	return d.Lazy().DropNA().Collect()
}

// SetIndex implements TOLABELS: promote a data column to the row labels
// (pandas set_index).
func (d *DataFrame) SetIndex(col string) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.ToLabels{Input: in, Col: col}
	})
}

// ResetIndex implements FROMLABELS: demote the row labels into a data
// column at position 0 and restore positional labels (pandas reset_index).
func (d *DataFrame) ResetIndex(name string) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.FromLabels{Input: in, Label: name}
	})
}

// Merge equi-joins on the named columns with inner semantics (pandas
// merge(on=...)).
func (d *DataFrame) Merge(other *DataFrame, on ...string) (*DataFrame, error) {
	return d.Lazy().Merge(other.Lazy(), on...).Collect()
}

// MergeKind equi-joins with explicit join kind: "inner", "left", "right",
// "outer".
func (d *DataFrame) MergeKind(other *DataFrame, kind string, on ...string) (*DataFrame, error) {
	return d.Lazy().MergeKind(other.Lazy(), kind, on...).Collect()
}

// MergeOnIndex joins on the row labels, as in step A2 of Figure 1
// (merge(left_index=True, right_index=True)).
func (d *DataFrame) MergeOnIndex(other *DataFrame) (*DataFrame, error) {
	return d.Lazy().MergeOnIndex(other.Lazy()).Collect()
}

// CrossJoin returns the ordered cross product.
func (d *DataFrame) CrossJoin(other *DataFrame) (*DataFrame, error) {
	return d.Lazy().CrossJoin(other.Lazy()).Collect()
}

// GetDummies one-hot encodes every non-numeric column (pandas get_dummies;
// step A1 of Figure 1).
func (d *DataFrame) GetDummies() (*DataFrame, error) {
	out, err := algebra.GetDummies(d.frame)
	if err != nil {
		return nil, err
	}
	return wrap(out, d.engine), nil
}

// Cov computes the covariance matrix over numeric columns (step A3 of
// Figure 1).
func (d *DataFrame) Cov() (*DataFrame, error) {
	out, err := algebra.Cov(d.frame)
	if err != nil {
		return nil, err
	}
	return wrap(out, d.engine), nil
}

// Pivot reshapes around pivotCol: its distinct values become column labels,
// indexCol's distinct values become rows, and valueCol fills the cells —
// the four-operator plan of Figure 6.
func (d *DataFrame) Pivot(pivotCol, indexCol, valueCol string) (*DataFrame, error) {
	indexValues, err := algebra.DistinctValues(d.frame, indexCol)
	if err != nil {
		return nil, err
	}
	plan := algebra.PivotPlan(&algebra.Source{DF: d.frame}, pivotCol, indexCol, valueCol, indexValues, false)
	out, err := d.engine.Execute(plan)
	if err != nil {
		return nil, err
	}
	return wrap(out, d.engine), nil
}

// Agg computes the named aggregates ("mean", "sum", "min", "max", "count",
// "std", "var", "median", "kurtosis", "nunique") for every numeric column,
// one result row per aggregate — the pandas agg(['f1','f2']) rewrite of
// Section 4.4.
func (d *DataFrame) Agg(funcs ...string) (*DataFrame, error) {
	kinds := make([]expr.AggKind, len(funcs))
	for i, f := range funcs {
		k, ok := expr.ParseAgg(f)
		if !ok {
			return nil, fmt.Errorf("df: unknown aggregate %q", f)
		}
		kinds[i] = k
	}
	out, err := algebra.AggAll(d.frame, kinds, nil)
	if err != nil {
		return nil, err
	}
	return wrap(out, d.engine), nil
}

// Describe summarizes numeric columns with count/mean/std/min/max.
func (d *DataFrame) Describe() (*DataFrame, error) {
	return d.Agg("count", "mean", "std", "min", "max")
}

// ReindexLike reorders rows and columns to match the reference frame
// (pandas reindex_like).
func (d *DataFrame) ReindexLike(reference *DataFrame) (*DataFrame, error) {
	out, err := algebra.ReindexLike(d.frame, reference.frame)
	if err != nil {
		return nil, err
	}
	return wrap(out, d.engine), nil
}

// Kurtosis computes per-column excess kurtosis over numeric columns.
func (d *DataFrame) Kurtosis() (*DataFrame, error) {
	return d.Agg("kurtosis")
}

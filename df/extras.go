package df

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/algebra"
	"repro/internal/dferrors"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/sketch"
	"repro/internal/types"
	"repro/internal/vector"
)

// This file carries the longer tail of the pandas API surface (Section 4.6
// shows astype, unique, value_counts-style usage is common), each still a
// rewrite into the algebra or a documented metadata operation.

// AsType casts the named column to the given domain ("int", "float",
// "bool", "object", "category", "datetime"), like pandas astype.
// Unparseable cells become null.
func (d *DataFrame) AsType(col, domain string) (*DataFrame, error) {
	dom, ok := types.ParseDomain(domain)
	if !ok || !dom.Valid() {
		return nil, fmt.Errorf("df: unknown domain %q", domain)
	}
	j := d.frame.ColIndex(col)
	if j < 0 {
		return nil, fmt.Errorf("df: no %w %q", dferrors.ErrUnknownColumn, col)
	}
	parsed := schema.Parse(d.frame.Col(j), dom)
	frame, err := d.frame.WithColumn(j, parsed, dom)
	if err != nil {
		return nil, err
	}
	return wrap(frame, d.engine), nil
}

// Unique returns the distinct non-null values of the column in
// first-appearance order (pandas unique).
func (d *DataFrame) Unique(col string) ([]Value, error) {
	return algebra.DistinctValues(d.frame, col)
}

// NUnique counts the distinct non-null values of the column exactly
// (pandas nunique).
func (d *DataFrame) NUnique(col string) (int, error) {
	vals, err := algebra.DistinctValues(d.frame, col)
	if err != nil {
		return 0, err
	}
	return len(vals), nil
}

// EstimateDistinct estimates the column's distinct-value count with a
// HyperLogLog sketch — the constant-space arity estimator of Section 5.2.3,
// usable on intermediates where exact counting is too expensive.
func (d *DataFrame) EstimateDistinct(col string) (float64, error) {
	return sketch.EstimateArity(d.frame, col)
}

// ValueCounts returns a frame of (value, count) for the column, most
// frequent first (pandas value_counts). Nulls are excluded.
func (d *DataFrame) ValueCounts(col string) (*DataFrame, error) {
	grouped, err := d.run(func(in algebra.Node) algebra.Node {
		return &algebra.GroupBy{Input: in, Spec: expr.GroupBySpec{
			Keys: []string{col},
			Aggs: []expr.AggSpec{{Col: col, Agg: expr.AggCount, As: "count"}},
		}}
	})
	if err != nil {
		return nil, err
	}
	nonNull, err := grouped.Filter("non-null value", func(r Row) bool {
		return !r.ByName(col).IsNull()
	})
	if err != nil {
		return nil, err
	}
	return nonNull.SortValuesBy([]SortKey{{Col: "count", Desc: true}})
}

// NLargest returns the n rows with the largest values of the column,
// descending — executed with the TOPK physical operator, not a full sort.
func (d *DataFrame) NLargest(n int, col string) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.TopK{Input: in, Order: expr.SortOrder{{Col: col, Desc: true}}, N: n}
	})
}

// NSmallest returns the n rows with the smallest values of the column,
// ascending, via TOPK.
func (d *DataFrame) NSmallest(n int, col string) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.TopK{Input: in, Order: expr.SortOrder{{Col: col}}, N: n}
	})
}

// Sample returns n rows drawn without replacement using the given seed, in
// input order (pandas sample(random_state=...)). Sampling is a row
// shuffle: schema induction is untouched (Section 5.1.1).
func (d *DataFrame) Sample(n int, seed int64) (*DataFrame, error) {
	total := d.frame.NRows()
	if n < 0 || n > total {
		return nil, fmt.Errorf("df: sample of %d from %d rows", n, total)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(total)[:n]
	// Keep input order for the chosen rows.
	chosen := make([]bool, total)
	for _, p := range perm {
		chosen[p] = true
	}
	idx := make([]int, 0, n)
	for i := 0; i < total; i++ {
		if chosen[i] {
			idx = append(idx, i)
		}
	}
	return wrap(d.frame.TakeRows(idx), d.engine), nil
}

// StrUpper upper-cases every string cell (pandas str.upper).
func (d *DataFrame) StrUpper() (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.Map{Input: in, Fn: algebra.StrUpperFn()}
	})
}

// StrLower lower-cases every string cell (pandas str.lower).
func (d *DataFrame) StrLower() (*DataFrame, error) {
	return d.ApplyMap("str.lower", func(v Value) Value {
		if v.IsNull() || (v.Domain() != types.Object && v.Domain() != types.Category) {
			return v
		}
		return Str(strings.ToLower(v.Str()))
	})
}

// StrContains filters rows whose column value contains the substring
// (pandas str.contains as a boolean mask + selection).
func (d *DataFrame) StrContains(col, substr string) (*DataFrame, error) {
	return d.Filter(fmt.Sprintf("%s contains %q", col, substr), func(r Row) bool {
		v := r.ByName(col)
		return !v.IsNull() && strings.Contains(v.Str(), substr)
	})
}

// WithColumn appends (or replaces) a column computed from each row, like
// pandas df["new"] = df.apply(...).
func (d *DataFrame) WithColumn(name string, fn func(Row) Value) (*DataFrame, error) {
	vals := make([]types.Value, 0, d.frame.NRows())
	rowAdapter, err := d.Apply("compute-"+name, []string{name}, func(r Row) []Value {
		return []Value{fn(r)}
	})
	if err != nil {
		return nil, err
	}
	col, err := rowAdapter.ColValues(name)
	if err != nil {
		return nil, err
	}
	vals = append(vals, col...)
	vec := vector.FromValues(columnDomain(vals), vals)
	if j := d.frame.ColIndex(name); j >= 0 {
		frame, err := d.frame.WithColumn(j, vec, types.Unspecified)
		if err != nil {
			return nil, err
		}
		return wrap(frame, d.engine), nil
	}
	frame, err := d.frame.AppendColumn(types.String(name), vec, types.Unspecified)
	if err != nil {
		return nil, err
	}
	return wrap(frame, d.engine), nil
}

// columnDomain picks the narrowest domain covering the values.
func columnDomain(vals []types.Value) types.Domain {
	dom := types.Unspecified
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		d := v.Domain()
		switch {
		case dom == types.Unspecified:
			dom = d
		case dom == d:
		case dom == types.Int && d == types.Float, dom == types.Float && d == types.Int:
			dom = types.Float
		default:
			return types.Object
		}
	}
	if dom == types.Unspecified {
		return types.Object
	}
	return dom
}

// Sum computes per-column sums over numeric columns as a 1-row frame.
func (d *DataFrame) Sum() (*DataFrame, error) { return d.Agg("sum") }

// Mean computes per-column means over numeric columns as a 1-row frame.
func (d *DataFrame) Mean() (*DataFrame, error) { return d.Agg("mean") }

// Max computes per-column maxima over numeric columns as a 1-row frame.
func (d *DataFrame) Max() (*DataFrame, error) { return d.Agg("max") }

// Min computes per-column minima over numeric columns as a 1-row frame.
func (d *DataFrame) Min() (*DataFrame, error) { return d.Agg("min") }

// Count counts non-null cells per numeric column as a 1-row frame.
func (d *DataFrame) Count() (*DataFrame, error) { return d.Agg("count") }

package df

import "testing"

func whereSample(t *testing.T) *DataFrame {
	t.Helper()
	d, err := New(
		[]string{"dept", "salary", "years"},
		[][]any{
			{"eng", 100.0, 5},
			{"ops", 80.0, nil},
			{"eng", 120.0, 2},
			{nil, 90.0, 7},
			{"sales", 70.0, 1},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWhereCompilesToKernels(t *testing.T) {
	d := whereSample(t)

	eng, err := d.Where(Eq("dept", Str("eng")))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 2 {
		t.Errorf("eng rows = %d, want 2", eng.Len())
	}

	// Conjunction: eng AND salary > 110.
	rich, err := d.Where(Eq("dept", Str("eng")), Gt("salary", Float(110)))
	if err != nil {
		t.Fatal(err)
	}
	if rich.Len() != 1 {
		t.Fatalf("eng/salary>110 rows = %d, want 1", rich.Len())
	}
	if v, err := rich.Iloc(0, 1); err != nil || v.Float() != 120 {
		t.Errorf("surviving salary = %v (%v), want 120", v, err)
	}

	// Null handling: comparisons never match null cells; NotNull/IsNull
	// select by null-ness.
	tenured, err := d.Where(Ge("years", Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tenured.Len() != 4 {
		t.Errorf("years>=1 should skip the null cell: %d rows", tenured.Len())
	}
	noDept, err := d.Where(IsNull("dept"))
	if err != nil {
		t.Fatal(err)
	}
	if noDept.Len() != 1 {
		t.Errorf("IsNull(dept) rows = %d, want 1", noDept.Len())
	}
	all, err := d.Where()
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != d.Len() {
		t.Error("zero conditions must keep every row")
	}

	// Where must agree with the equivalent opaque Filter.
	viaFilter, err := d.Filter("dept==eng", func(r Row) bool {
		v := r.ByName("dept")
		return !v.IsNull() && v.Str() == "eng"
	})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Equal(viaFilter) {
		t.Error("Where and Filter disagree")
	}
}

func TestDropNAStructured(t *testing.T) {
	d := whereSample(t)
	clean, err := d.DropNA()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Len() != 3 {
		t.Errorf("DropNA rows = %d, want 3", clean.Len())
	}
}

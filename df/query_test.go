package df

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/types"
)

func queryFrame(t *testing.T) *DataFrame {
	t.Helper()
	names := []string{"a", "b", "c"}
	records := make([][]any, 0, 60)
	for i := 0; i < 60; i++ {
		var c any = fmt.Sprintf("g%d", i%7)
		if i%11 == 0 {
			c = nil
		}
		records = append(records, []any{int64(i % 17), float64(i%13) + 0.5, c})
	}
	d, err := New(names, records)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLazyCollectMatchesEagerChain(t *testing.T) {
	d := queryFrame(t)
	eager, err := d.Where(Gt("a", Int(3)))
	if err != nil {
		t.Fatal(err)
	}
	eager, err = eager.Select("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	eager, err = eager.SortValues("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := d.Lazy().Where(Gt("a", Int(3))).Select("a", "b").SortValues("a", "b").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !eager.Equal(lazy) {
		t.Fatalf("lazy result differs:\neager:\n%s\nlazy:\n%s", eager, lazy)
	}
}

// TestExplainGoldenFusionChain locks in the full Explain rendering of a
// filter→map→map→select chain: the maps fuse, and the projection sinks
// through the fused map AND the structured selection all the way to the
// source.
func TestExplainGoldenFusionChain(t *testing.T) {
	d := MustNew(
		[]string{"a", "b", "c"},
		[][]any{
			{int64(3), 1.5, "x"},
			{int64(1), 2.5, "y"},
			{int64(2), 0.5, "x"},
			{int64(4), 4.5, "z"},
		},
	)
	got := d.Lazy().
		Where(Gt("a", Int(1))).
		ApplyMap("inc", func(v Value) Value { return v }).
		ApplyMap("dbl", func(v Value) Value { return v }).
		Select("a", "b").
		Explain()
	want := `before:
PROJECTION(a, b)
  MAP(dbl)
    MAP(inc)
      SELECTION(a > 1)
        SOURCE(df, 4x3)
after:
MAP(inc∘dbl)
  SELECTION(a > 1)
    PROJECTION(a, b)
      SOURCE(df, 4x3)
rules fired: map-fusion, push-projection-through-map, push-projection-through-selection
physical strategy:
(no repartition points)
`
	if d.EngineName() == "cluster" {
		// Map closures cannot cross a process boundary; the env-switched
		// cluster harness explains why the plan stays local.
		want += "cluster: local fallback (opaque closure)\n"
	}
	if got != want {
		t.Errorf("explain drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenPushdownChain locks in the filter→select→sort→groupby
// chain of the issue: projection pushdown below the selection fires, and
// the groupby recognizes its sorted input.
func TestExplainGoldenPushdownChain(t *testing.T) {
	d := MustNew(
		[]string{"a", "b", "c"},
		[][]any{
			{int64(3), 1.5, "x"},
			{int64(1), 2.5, "y"},
			{int64(2), 0.5, "x"},
			{int64(4), 4.5, "z"},
		},
	)
	got := d.Lazy().
		Where(Gt("a", Int(1))).
		Select("a", "b").
		SortValues("a").
		GroupBy("a").Sum("b").
		Explain()
	want := `before:
GROUPBY(keys=[a], aggs=[sum(b)])
  SORT(a)
    PROJECTION(a, b)
      SELECTION(a > 1)
        SOURCE(df, 4x3)
after:
GROUPBY(keys=[a], aggs=[sum(b)])
  SORT(a)
    SELECTION(a > 1)
      PROJECTION(a, b)
        SOURCE(df, 4x3)
rules fired: push-projection-through-selection, sorted-groupby
physical strategy:
GROUPBY strategy=hash-shuffle (groups≈1)
`
	if d.EngineName() == "cluster" {
		// sort→groupby is two shuffles; the shippable family carries at
		// most one, so the cluster harness reports the fallback reason.
		want += "cluster: local fallback (double-shuffle)\n"
	}
	if got != want {
		t.Errorf("explain drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// queryOps is the operator pool for the lazy-vs-eager equivalence property
// test: every op is schema-preserving over the a/b/c test frame, so random
// chains compose without column bookkeeping.
type queryOp struct {
	name  string
	eager func(*DataFrame) (*DataFrame, error)
	lazy  func(*Query) *Query
}

func queryOps() []queryOp {
	inc := func(v Value) Value {
		if v.Domain() == types.Int && !v.IsNull() {
			return Int(v.Int() + 1)
		}
		return v
	}
	return []queryOp{
		{
			name:  "where-gt-a",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.Where(Gt("a", Int(5))) },
			lazy:  func(q *Query) *Query { return q.Where(Gt("a", Int(5))) },
		},
		{
			name: "filter-opaque-b",
			eager: func(d *DataFrame) (*DataFrame, error) {
				return d.Filter("b<9", func(r Row) bool { return !r.ByName("b").IsNull() && r.ByName("b").Float() < 9 })
			},
			lazy: func(q *Query) *Query {
				return q.Filter("b<9", func(r Row) bool { return !r.ByName("b").IsNull() && r.ByName("b").Float() < 9 })
			},
		},
		{
			name:  "sort-b",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.SortValues("b") },
			lazy:  func(q *Query) *Query { return q.SortValues("b") },
		},
		{
			name: "sort-desc-a-b",
			eager: func(d *DataFrame) (*DataFrame, error) {
				return d.SortValuesBy([]SortKey{{Col: "a", Desc: true}, {Col: "b"}})
			},
			lazy: func(q *Query) *Query { return q.SortValuesBy([]SortKey{{Col: "a", Desc: true}, {Col: "b"}}) },
		},
		{
			name:  "dropdup-c",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.DropDuplicates("c") },
			lazy:  func(q *Query) *Query { return q.DropDuplicates("c") },
		},
		{
			name:  "applymap-inc",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.ApplyMap("inc", inc) },
			lazy:  func(q *Query) *Query { return q.ApplyMap("inc", inc) },
		},
		{
			name:  "mapcol-b",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.MapCol("b", "neg", negFloat) },
			lazy:  func(q *Query) *Query { return q.MapCol("b", "neg", negFloat) },
		},
		{
			name:  "fillna",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.FillNA(Str("-")) },
			lazy:  func(q *Query) *Query { return q.FillNA(Str("-")) },
		},
		{
			name:  "head-40",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.Head(40), nil },
			lazy:  func(q *Query) *Query { return q.Head(40) },
		},
		{
			name:  "tail-25",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.Tail(25), nil },
			lazy:  func(q *Query) *Query { return q.Tail(25) },
		},
		{
			name:  "dropna",
			eager: func(d *DataFrame) (*DataFrame, error) { return d.DropNA() },
			lazy:  func(q *Query) *Query { return q.DropNA() },
		},
	}
}

func negFloat(v Value) Value {
	if v.Domain() == types.Float && !v.IsNull() {
		return Float(-v.Float())
	}
	return v
}

// TestLazyEagerEquivalenceProperty runs random operator chains through the
// eager method path and the lazy builder on both engines and requires all
// four results to agree — the optimizer and the one-pass collect must be
// invisible to semantics.
func TestLazyEagerEquivalenceProperty(t *testing.T) {
	ops := queryOps()
	rng := rand.New(rand.NewSource(41))
	base := queryFrame(t)
	engines := map[string]Engine{
		"baseline": NewBaselineEngine(),
		"modin":    NewModinEngine(),
	}
	for chain := 0; chain < 10; chain++ {
		n := 3 + rng.Intn(4)
		picked := make([]queryOp, n)
		names := make([]string, n)
		for i := range picked {
			picked[i] = ops[rng.Intn(len(ops))]
			names[i] = picked[i].name
		}
		label := strings.Join(names, "→")

		var results []*DataFrame
		var labels []string
		for engName, eng := range engines {
			d := base.WithEngine(eng)
			eager := d
			var err error
			for _, op := range picked {
				eager, err = op.eager(eager)
				if err != nil {
					t.Fatalf("chain %s eager on %s: %v", label, engName, err)
				}
			}
			q := d.Lazy()
			for _, op := range picked {
				q = op.lazy(q)
			}
			lazy, err := q.Collect()
			if err != nil {
				t.Fatalf("chain %s lazy on %s: %v", label, engName, err)
			}
			results = append(results, eager, lazy)
			labels = append(labels, engName+"/eager", engName+"/lazy")
		}
		for i := 1; i < len(results); i++ {
			if !results[0].Equal(results[i]) {
				t.Fatalf("chain %s: %s differs from %s:\n%s\nvs\n%s",
					label, labels[0], labels[i], results[0], results[i])
			}
		}
	}
}

func TestQueryCountAndFirstFastPaths(t *testing.T) {
	d := queryFrame(t)

	// A bare source answers from metadata.
	if n, err := d.Lazy().Count(); err != nil || n != 60 {
		t.Fatalf("Count() = %d, %v; want 60", n, err)
	}
	// Sorts and elementwise maps prune away.
	if n, err := d.Lazy().SortValues("a").FillNA(Str("-")).Count(); err != nil || n != 60 {
		t.Fatalf("pruned Count() = %d, %v; want 60", n, err)
	}
	// A sort on an unknown column must keep erroring, not be pruned.
	if _, err := d.Lazy().SortValues("ghost").Count(); err == nil {
		t.Error("count over invalid sort should fail")
	}
	// Filters still execute.
	filtered, err := d.Where(Gt("a", Int(5)))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.Lazy().Where(Gt("a", Int(5))).Count(); err != nil || n != filtered.Len() {
		t.Fatalf("filtered Count() = %d, %v; want %d", n, err, filtered.Len())
	}

	first, err := d.Lazy().SortValuesBy([]SortKey{{Col: "b", Desc: true}}).First()
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := d.SortValuesBy([]SortKey{{Col: "b", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(sorted.Head(1)) {
		t.Errorf("First() differs from sorted head:\n%s\nvs\n%s", first, sorted.Head(1))
	}
}

func TestQueryCollectAsync(t *testing.T) {
	d := queryFrame(t)
	for _, eng := range []Engine{NewModinEngine(), NewBaselineEngine()} {
		q := d.WithEngine(eng).Lazy().Where(Gt("a", Int(3))).Select("a", "b")
		want, err := q.Collect()
		if err != nil {
			t.Fatal(err)
		}
		fut := q.CollectAsync()
		<-fut.Done()
		got, err := fut.Wait()
		if err != nil {
			t.Fatalf("async on %s: %v", eng.Name(), err)
		}
		if !want.Equal(got) {
			t.Errorf("async result differs on %s", eng.Name())
		}
	}
}

func TestQueryStickyErrors(t *testing.T) {
	d := queryFrame(t)
	q := d.Lazy().Drop("ghost").SortValues("a")
	if q.Err() == nil {
		t.Fatal("drop of unknown column should stick")
	}
	if _, err := q.Collect(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("sticky error should surface at Collect, got %v", err)
	}
	if _, err := q.Count(); err == nil {
		t.Error("sticky error should surface at Count")
	}
	if _, err := q.CollectAsync().Wait(); err == nil {
		t.Error("sticky error should surface at CollectAsync")
	}
	if !strings.Contains(q.Explain(), "ghost") {
		t.Error("Explain should render the sticky error")
	}

	if _, err := ScanCSVFile("/nonexistent/taxi.csv").Select("a").Collect(); err == nil {
		t.Error("scan of missing file should surface at Collect")
	}

	if q := d.Lazy().GroupBy("a").Agg(AggSpec{Col: "b", Agg: "psychic"}); q.Err() == nil {
		t.Error("unknown aggregate should stick")
	}
	if q := d.Lazy().MergeKind(d.Lazy(), "sideways", "a"); q.Err() == nil {
		t.Error("unknown join kind should stick")
	}
	if q := d.Lazy().MapCol("ghost", "x", func(v Value) Value { return v }); q.Err() == nil {
		t.Error("mapcol of unknown column should stick")
	}
	// After a schema-opaque operator, MapCol must refuse rather than
	// silently pass rows through at execution time.
	if q := d.Lazy().T().MapCol("a", "x", func(v Value) Value { return v }); q.Err() == nil {
		t.Error("mapcol after transpose should stick (schema unknown)")
	}
}

// TestDropAndRenameWithDuplicateLabels pins the duplicate-label behaviour
// of the builder against the eager path: a rename that shadows an existing
// label yields duplicate columns, Drop removes every occurrence, and
// Select resolves to the first occurrence on both paths.
func TestDropAndRenameWithDuplicateLabels(t *testing.T) {
	d := queryFrame(t) // columns a, b, c
	kept, err := d.Lazy().Rename(map[string]string{"b": "a"}).Drop("a").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if cols := kept.Columns(); len(cols) != 1 || cols[0] != "c" {
		t.Errorf("drop must remove every duplicate occurrence, got %v", cols)
	}

	lazy, err := d.Lazy().Rename(map[string]string{"b": "a"}).Select("a").Collect()
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := d.Rename(map[string]string{"b": "a"})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := renamed.Select("a")
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Equal(eager) {
		t.Errorf("shadowed select differs between lazy and eager:\n%s\nvs\n%s", lazy, eager)
	}
}

// TestChainedErrorNamesOperator pins the bugfix-sweep behaviour: a failure
// deep inside a collected chain names the operator that failed on both
// engines instead of surfacing a bare kernel error.
func TestChainedErrorNamesOperator(t *testing.T) {
	d := queryFrame(t)
	for _, eng := range []Engine{NewBaselineEngine(), NewModinEngine()} {
		_, err := d.WithEngine(eng).Lazy().
			Where(Gt("a", Int(3))).
			Select("a", "nope").
			SortValues("a").
			Collect()
		if err == nil {
			t.Fatalf("%s: projection of unknown column should fail", eng.Name())
		}
		if !strings.Contains(err.Error(), "PROJECTION(a, nope)") {
			t.Errorf("%s: error should name the failing operator, got: %v", eng.Name(), err)
		}
		_, err = d.WithEngine(eng).Lazy().GroupBy("ghost").Sum("b").Collect()
		if err == nil {
			t.Fatalf("%s: groupby on unknown key should fail", eng.Name())
		}
		if !strings.Contains(err.Error(), "GROUPBY(keys=[ghost]") {
			t.Errorf("%s: error should carry the groupby description, got: %v", eng.Name(), err)
		}
	}
}

func TestScanCSVSources(t *testing.T) {
	const csv = "a,b\n3,x\n1,y\n2,x\n"
	got, err := ScanCSVString(csv).Where(Ne("b", Str("y"))).SortValues("a").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d, want 2", got.Len())
	}
	v, err := got.Iloc(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 2 {
		t.Errorf("first sorted row = %v, want 2", v)
	}
	got2, err := ScanCSV(strings.NewReader(csv)).Select("b").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if cols := got2.Columns(); len(cols) != 1 || cols[0] != "b" {
		t.Errorf("columns = %v", cols)
	}
}

func TestTypedSessionModes(t *testing.T) {
	for _, mode := range []Mode{ModeEager, ModeLazy, ModeOpportunistic} {
		s := NewSession(NewModinEngine(), mode)
		h := s.Bind("t", queryFrame(t))
		out, err := h.Collect()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if out.Len() != 60 {
			t.Errorf("mode %v: rows = %d", mode, out.Len())
		}
	}

	if m, err := ParseMode("lazy"); err != nil || m != ModeLazy {
		t.Errorf("ParseMode(lazy) = %v, %v", m, err)
	}
	_, err := ParseMode("psychic")
	var unknown *UnknownModeError
	if !errors.As(err, &unknown) || unknown.Mode != "psychic" {
		t.Errorf("ParseMode should report *UnknownModeError, got %v", err)
	}
	if !errors.Is(err, ErrUnknownMode) {
		t.Errorf("ParseMode failure should match ErrUnknownMode, got %v", err)
	}
}

// TestSessionAcceptsQueryPlans threads a builder plan through each session
// regime and continues a handle through the fluent builder.
func TestSessionAcceptsQueryPlans(t *testing.T) {
	d := queryFrame(t)
	want, err := d.Lazy().Where(Gt("a", Int(5))).Select("a", "b").Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeEager, ModeLazy, ModeOpportunistic} {
		s := NewSession(NewModinEngine(), mode)
		h, err := s.Query("narrow", d.Lazy().Where(Gt("a", Int(5))).Select("a", "b"))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		got, err := h.Collect()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !want.Equal(got) {
			t.Errorf("mode %v: session result differs", mode)
		}

		// Continue the statement through the builder.
		h2, err := s.Query("top", h.Lazy().SortValuesBy([]SortKey{{Col: "b", Desc: true}}).Head(3))
		if err != nil {
			t.Fatal(err)
		}
		top, err := h2.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if top.Len() != 3 {
			t.Errorf("mode %v: head rows = %d", mode, top.Len())
		}

		// Sticky builder errors surface when issuing the statement.
		if _, err := s.Query("bad", d.Lazy().Drop("ghost")); err == nil {
			t.Errorf("mode %v: sticky error should surface at Query", mode)
		}
	}
}

// TestConcatSchemaInference pins OutputColumns over UNION: the union
// appends right-only labels, and every schema consumer (Drop, DropNA, the
// rename pushdown guard) must see the combined set.
func TestConcatSchemaInference(t *testing.T) {
	left := MustNew([]string{"k"}, [][]any{{int64(1)}, {int64(2)}})
	right := MustNew([]string{"v"}, [][]any{{int64(8)}, {int64(9)}})

	// Drop of a right-only column must resolve, matching eager Concat+Drop.
	lazyDrop, err := left.Lazy().Concat(right.Lazy()).Drop("v").Collect()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := left.Concat(right)
	if err != nil {
		t.Fatal(err)
	}
	eagerDrop, err := cat.Drop("v")
	if err != nil {
		t.Fatal(err)
	}
	if !lazyDrop.Equal(eagerDrop) {
		t.Errorf("concat+drop differs:\n%s\nvs\n%s", lazyDrop, eagerDrop)
	}

	// DropNA must conjoin over BOTH sides' columns (union rows carry nulls
	// in the non-shared columns).
	lazyNA, err := left.Lazy().Concat(right.Lazy()).DropNA().Collect()
	if err != nil {
		t.Fatal(err)
	}
	eagerNA, err := cat.DropNA()
	if err != nil {
		t.Fatal(err)
	}
	if !lazyNA.Equal(eagerNA) || lazyNA.Len() != 0 {
		t.Errorf("concat+dropna differs: lazy %d rows vs eager %d", lazyNA.Len(), eagerNA.Len())
	}

	// The rename pushdown guard must see the union's v column: renaming it
	// to k creates duplicate labels, so the rewrite declines and the lazy
	// result matches eager first-occurrence resolution.
	lazySel, err := left.Lazy().Concat(right.Lazy()).
		Rename(map[string]string{"v": "k"}).Select("k").Collect()
	if err != nil {
		t.Fatal(err)
	}
	ren, err := cat.Rename(map[string]string{"v": "k"})
	if err != nil {
		t.Fatal(err)
	}
	eagerSel, err := ren.Select("k")
	if err != nil {
		t.Fatal(err)
	}
	if !lazySel.Equal(eagerSel) {
		t.Errorf("shadowed select over union differs:\n%s\nvs\n%s", lazySel, eagerSel)
	}
}

// TestGroupedFrameStatementStyle pins the mutating builder semantics of the
// eager GroupedFrame: AsIndex as a standalone statement must affect the
// later aggregate.
func TestGroupedFrameStatementStyle(t *testing.T) {
	d := queryFrame(t)
	g := d.GroupBy("c")
	g.AsIndex()
	out, err := g.Sum("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range out.Columns() {
		if col == "c" {
			t.Errorf("AsIndex statement ignored: keys still a data column, cols = %v", out.Columns())
		}
	}
}

// TestQueryForking checks immutability: two continuations of one prefix do
// not disturb each other.
func TestQueryForking(t *testing.T) {
	d := queryFrame(t)
	base := d.Lazy().Where(Gt("a", Int(5)))
	left, err := base.Select("a").Collect()
	if err != nil {
		t.Fatal(err)
	}
	right, err := base.Select("b").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if cols := left.Columns(); len(cols) != 1 || cols[0] != "a" {
		t.Errorf("left fork columns = %v", cols)
	}
	if cols := right.Columns(); len(cols) != 1 || cols[0] != "b" {
		t.Errorf("right fork columns = %v", cols)
	}
}

func TestQueryBinaryOps(t *testing.T) {
	d := queryFrame(t)
	both, err := d.Lazy().Head(10).Concat(d.Lazy().Tail(5)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if both.Len() != 15 {
		t.Errorf("concat rows = %d, want 15", both.Len())
	}
	rest, err := d.Lazy().Except(d.Lazy().Head(10)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rest.Len() >= 60 {
		t.Errorf("except rows = %d, want < 60", rest.Len())
	}

	left := MustNew([]string{"k", "v"}, [][]any{{"a", int64(1)}, {"b", int64(2)}})
	right := MustNew([]string{"k", "w"}, [][]any{{"a", int64(10)}, {"c", int64(30)}})
	joined, err := left.Lazy().Merge(right.Lazy(), "k").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 1 {
		t.Errorf("merge rows = %d, want 1", joined.Len())
	}
}

package df

import "repro/internal/dferrors"

// Typed sentinel errors for the query/session surface. Every layer that
// produces one of these failures wraps the sentinel, so callers — the
// dfserver handlers in particular — classify errors with errors.Is instead
// of string matching, while the human-readable, plan-annotated messages
// (e.g. `algebra: projection of unknown column "nope"`) stay intact as the
// wrapping text.
var (
	// ErrUnknownColumn: a projection, sort, group key, rename, drop or
	// window referenced a column the frame does not have.
	ErrUnknownColumn = dferrors.ErrUnknownColumn

	// ErrUnknownAggregate: an aggregate name was not recognized.
	ErrUnknownAggregate = dferrors.ErrUnknownAggregate

	// ErrUnknownJoinKind: a join-kind name was not recognized.
	ErrUnknownJoinKind = dferrors.ErrUnknownJoinKind

	// ErrUnknownMode: a session-mode name was not recognized (see
	// ParseMode; *UnknownModeError carries the offending name).
	ErrUnknownMode = dferrors.ErrUnknownMode

	// ErrSessionClosed: a statement or result request reached a closed
	// session.
	ErrSessionClosed = dferrors.ErrSessionClosed

	// ErrBudgetExceeded: admission control rejected (or timed out queueing)
	// a query that would push its tenant over the memory budget.
	ErrBudgetExceeded = dferrors.ErrBudgetExceeded

	// ErrScanSource: a streaming scan's source could not be opened or
	// parsed (missing file, malformed header); the message carries the
	// path.
	ErrScanSource = dferrors.ErrScanSource

	// ErrRateLimited: a tenant's request-rate token bucket rejected a
	// query; the server answers 429 with a Retry-After hint.
	ErrRateLimited = dferrors.ErrRateLimited
)

package df

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
)

// The WINDOW operator surfaces here through the pandas-style entry points:
// Shift, Diff, the cumulative functions, and Rolling. Because dataframes
// are inherently ordered, none of these need an ORDER BY (Section 4.3).

// Shift moves rows down by offset (up when negative), null-filling, over
// the named columns (all when none given).
func (d *DataFrame) Shift(offset int, cols ...string) (*DataFrame, error) {
	spec := expr.WindowSpec{Kind: expr.WindowShift, Offset: offset}
	if offset < 0 {
		spec.Offset = -offset
		spec.Reverse = true
	}
	if len(cols) > 0 {
		spec.Cols = cols
	}
	return d.window(spec)
}

// Diff subtracts the value offset rows earlier, over numeric columns.
func (d *DataFrame) Diff(offset int, cols ...string) (*DataFrame, error) {
	spec := expr.WindowSpec{Kind: expr.WindowDiff, Offset: offset}
	if len(cols) > 0 {
		spec.Cols = cols
	}
	return d.window(spec)
}

// CumSum computes the running sum (pandas cumsum).
func (d *DataFrame) CumSum(cols ...string) (*DataFrame, error) {
	return d.expanding(expr.AggSum, cols)
}

// CumMax computes the running maximum (pandas cummax).
func (d *DataFrame) CumMax(cols ...string) (*DataFrame, error) {
	return d.expanding(expr.AggMax, cols)
}

// CumMin computes the running minimum (pandas cummin).
func (d *DataFrame) CumMin(cols ...string) (*DataFrame, error) {
	return d.expanding(expr.AggMin, cols)
}

func (d *DataFrame) expanding(agg expr.AggKind, cols []string) (*DataFrame, error) {
	spec := expr.WindowSpec{Kind: expr.WindowExpanding, Agg: agg}
	if len(cols) > 0 {
		spec.Cols = cols
	}
	return d.window(spec)
}

// Rolling starts a fixed-size trailing window over the named columns (all
// when none given).
func (d *DataFrame) Rolling(size int, cols ...string) *RollingFrame {
	return &RollingFrame{df: d, size: size, cols: cols}
}

// RollingFrame is a pending rolling-window aggregation.
type RollingFrame struct {
	df   *DataFrame
	size int
	cols []string
}

// Mean aggregates each window by mean.
func (r *RollingFrame) Mean() (*DataFrame, error) { return r.agg(expr.AggMean) }

// Sum aggregates each window by sum.
func (r *RollingFrame) Sum() (*DataFrame, error) { return r.agg(expr.AggSum) }

// Max aggregates each window by max.
func (r *RollingFrame) Max() (*DataFrame, error) { return r.agg(expr.AggMax) }

// Min aggregates each window by min.
func (r *RollingFrame) Min() (*DataFrame, error) { return r.agg(expr.AggMin) }

func (r *RollingFrame) agg(kind expr.AggKind) (*DataFrame, error) {
	if r.size <= 0 {
		return nil, fmt.Errorf("df: rolling window size must be positive, got %d", r.size)
	}
	spec := expr.WindowSpec{Kind: expr.WindowRolling, Size: r.size, Agg: kind}
	if len(r.cols) > 0 {
		spec.Cols = r.cols
	}
	return r.df.window(spec)
}

func (d *DataFrame) window(spec expr.WindowSpec) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.Window{Input: in, Spec: spec}
	})
}

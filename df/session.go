package df

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/dferrors"
	"repro/internal/session"
)

// Session exposes the interactive evaluation regimes of Section 6: eager
// (pandas-style), lazy, and opportunistic (background computation during
// think time), with head/tail-prioritized inspection and reuse of
// materialized intermediates.
//
// The session surface is deliberately minimal so a server can multiplex it
// 1:1 over a network API (see SessionAPI): statements enter through Bind
// (sources) and Query (typed builder plans), results leave through Handle's
// Collect/Head/Tail, and lifecycle is Close. Everything else — modes,
// budgets, spilling — is configuration.
type Session struct {
	inner *session.Session
}

// SessionAPI is the minimal multiplexable session surface: the subset of
// *Session a multi-tenant server exposes 1:1 over the wire. Everything in
// it is serializable — plans arrive as typed Query builders (no opaque
// closures), results leave as materialized frames. *Session implements it;
// code that should stay servable can take a SessionAPI to be sure it never
// grows a dependency on process-local state.
type SessionAPI interface {
	// Bind introduces a dataframe into the session under a name.
	Bind(name string, d *DataFrame) *Handle
	// Query issues a lazy builder plan as one statement.
	Query(name string, q *Query) (*Handle, error)
	// ThinkTime drains background work, modelling a user pause.
	ThinkTime()
	// Close ends the session; subsequent statements fail with
	// ErrSessionClosed.
	Close() error
}

var _ SessionAPI = (*Session)(nil)

// Mode selects a session's evaluation regime; use the ModeEager, ModeLazy
// and ModeOpportunistic constants.
type Mode = session.Mode

const (
	// ModeEager evaluates every statement fully before returning control:
	// the pandas behaviour.
	ModeEager = session.Eager
	// ModeLazy defers all computation until a result is requested.
	ModeLazy = session.Lazy
	// ModeOpportunistic returns control immediately and evaluates in the
	// background during think time.
	ModeOpportunistic = session.Opportunistic
)

// UnknownModeError is the sentinel error type reported for an unrecognized
// session-mode name; match the type with errors.As, or the condition with
// errors.Is(err, ErrUnknownMode).
type UnknownModeError struct {
	// Mode is the unrecognized name.
	Mode string
}

// Error renders the failure.
func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("df: %v %q", dferrors.ErrUnknownMode, e.Mode)
}

// Unwrap ties the typed error to the ErrUnknownMode sentinel.
func (e *UnknownModeError) Unwrap() error { return dferrors.ErrUnknownMode }

// ParseMode resolves a mode name ("eager", "lazy", "opportunistic") to its
// typed constant, reporting *UnknownModeError otherwise. It is the only
// string entry point to modes: sessions themselves are constructed with the
// typed constants.
func ParseMode(mode string) (Mode, error) {
	switch mode {
	case "eager":
		return ModeEager, nil
	case "lazy":
		return ModeLazy, nil
	case "opportunistic":
		return ModeOpportunistic, nil
	}
	return 0, &UnknownModeError{Mode: mode}
}

// NewSession starts a session on the engine under the typed mode: one of
// ModeEager, ModeLazy, ModeOpportunistic. String input (a config file, an
// API request) goes through ParseMode first.
func NewSession(engine Engine, mode Mode) *Session {
	return &Session{inner: session.New(engine, mode, nil)}
}

// Close ends the session: subsequent statements and result requests fail
// with ErrSessionClosed, and materialized intermediates (including any
// spilled to disk) are released. Closing twice is a no-op.
func (s *Session) Close() error { return s.inner.Close() }

// EnableSpillingBudget caps the session's in-memory materialized results at
// maxCells cells (one cell per value): beyond the budget, the coldest
// resolved results spill to a session-owned disk store and reload
// transparently on reuse. Call before issuing statements.
func (s *Session) EnableSpillingBudget(maxCells int) error {
	return s.inner.EnableSpillingBudget(maxCells)
}

// MemoryCells reports the session's accountable memory in cells: resident
// materialized results plus transient spill-store residency. Per-tenant
// admission control sums this across sessions.
func (s *Session) MemoryCells() int { return s.inner.MemoryCells() }

// SpillToFit spills cold resolved results (oldest first) until at most
// maxCells cells remain resident, reporting how many results moved to disk.
func (s *Session) SpillToFit(maxCells int) int { return s.inner.SpillToFit(maxCells) }

// PendingBackground counts in-flight background materializations — the
// opportunistic DAGs a think-time scheduler drains for idle sessions.
func (s *Session) PendingBackground() int { return s.inner.PendingBackground() }

// LastActive returns the time of the session's last statement or
// inspection (zero before any activity), for idle detection.
func (s *Session) LastActive() time.Time { return s.inner.LastActive() }

// Bind introduces a dataframe into the session.
func (s *Session) Bind(name string, d *DataFrame) *Handle {
	return &Handle{s: s, inner: s.inner.Bind(name, d.frame)}
}

// Query issues a lazy builder plan as one session statement: the plan is
// run through the optimizer's rewrite rules first, then evaluated under the
// session's regime — immediately (eager), on request (lazy), or in the
// background (opportunistic). Sticky builder errors surface here.
func (s *Session) Query(name string, q *Query) (*Handle, error) {
	plan, err := q.optimized()
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, inner: s.inner.Statement(name, plan)}, nil
}

// ThinkTime models the user pausing: background work drains.
func (s *Session) ThinkTime() { s.inner.ThinkTime() }

// Stats reports session activity counters: statements issued, full and
// partial (head/tail-only) evaluations, reuse hits, and background tasks.
func (s *Session) Stats() (statements, full, partial, reuse, background int64) {
	st := &s.inner.Stats
	return st.Statements.Load(), st.FullEvaluations.Load(), st.PartialEvaluations.Load(),
		st.ReuseHits.Load(), st.BackgroundTasks.Load()
}

// Handle is a statement's result: an eventually-computed dataframe.
type Handle struct {
	s     *Session
	inner *session.Handle
}

// Apply issues a new statement composing on this handle's plan. The build
// function receives the current logical plan and returns the extended one;
// plan nodes come from the algebra surfaced via the method helpers below.
//
// Deprecated: Apply takes an opaque Go function, which a server cannot
// multiplex (it cannot cross the wire, be fingerprinted for the plan cache,
// or be admission-controlled by cost). Continue a statement through the
// typed builder instead: s.Query(name, h.Lazy().Select(...).Where(...)).
func (h *Handle) Apply(name string, build func(algebra.Node) algebra.Node) *Handle {
	return &Handle{s: h.s, inner: h.inner.Apply(name, build)}
}

// Lazy returns the handle's plan as a Query on the session's engine, so a
// statement can continue through the fluent builder:
//
//	next, err := s.Query("narrow", h.Lazy().Select("a", "b").Head(10))
func (h *Handle) Lazy() *Query {
	return &Query{plan: h.inner.Plan(), engine: h.s.inner.Engine()}
}

// Collect materializes the full result.
func (h *Handle) Collect() (*DataFrame, error) {
	out, err := h.inner.Collect()
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Head returns the ordered k-prefix, computing only the prefix when the
// full result is not yet materialized (Section 6.1.2).
func (h *Handle) Head(k int) (*DataFrame, error) {
	out, err := h.inner.Head(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Tail returns the ordered k-suffix with the same prioritization.
func (h *Handle) Tail(k int) (*DataFrame, error) {
	out, err := h.inner.Tail(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Ready reports whether the full result is already materialized.
func (h *Handle) Ready() bool { return h.inner.Ready() }

// Wait blocks until background materialization (if any) completes.
func (h *Handle) Wait() { h.inner.Wait() }

// Plan returns the handle's logical plan for inspection (algebra.Render).
func (h *Handle) Plan() algebra.Node { return h.inner.Plan() }

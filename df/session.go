package df

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/session"
)

// Session exposes the interactive evaluation regimes of Section 6: eager
// (pandas-style), lazy, and opportunistic (background computation during
// think time), with head/tail-prioritized inspection and reuse of
// materialized intermediates.
type Session struct {
	inner *session.Session
}

// Mode selects a session's evaluation regime; use the ModeEager, ModeLazy
// and ModeOpportunistic constants.
type Mode = session.Mode

const (
	// ModeEager evaluates every statement fully before returning control:
	// the pandas behaviour.
	ModeEager = session.Eager
	// ModeLazy defers all computation until a result is requested.
	ModeLazy = session.Lazy
	// ModeOpportunistic returns control immediately and evaluates in the
	// background during think time.
	ModeOpportunistic = session.Opportunistic
)

// UnknownModeError is the sentinel error type reported for an unrecognized
// session-mode name; match it with errors.As.
type UnknownModeError struct {
	// Mode is the unrecognized name.
	Mode string
}

// Error renders the failure.
func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("df: unknown session mode %q", e.Mode)
}

// ParseMode resolves a mode name ("eager", "lazy", "opportunistic") to its
// typed constant, reporting *UnknownModeError otherwise.
func ParseMode(mode string) (Mode, error) {
	switch mode {
	case "eager":
		return ModeEager, nil
	case "lazy":
		return ModeLazy, nil
	case "opportunistic":
		return ModeOpportunistic, nil
	}
	return 0, &UnknownModeError{Mode: mode}
}

// NewSessionMode starts a session on the engine under the typed mode.
func NewSessionMode(engine Engine, mode Mode) *Session {
	return &Session{inner: session.New(engine, mode, nil)}
}

// NewSession starts a session on the engine under the named mode: "eager",
// "lazy" or "opportunistic". Unknown names report *UnknownModeError.
//
// Deprecated: use NewSessionMode with the typed ModeEager, ModeLazy or
// ModeOpportunistic constants; the string form is kept as a shim.
func NewSession(engine Engine, mode string) (*Session, error) {
	m, err := ParseMode(mode)
	if err != nil {
		return nil, err
	}
	return NewSessionMode(engine, m), nil
}

// Bind introduces a dataframe into the session.
func (s *Session) Bind(name string, d *DataFrame) *Handle {
	return &Handle{s: s, inner: s.inner.Bind(name, d.frame)}
}

// Query issues a lazy builder plan as one session statement: the plan is
// run through the optimizer's rewrite rules first, then evaluated under the
// session's regime — immediately (eager), on request (lazy), or in the
// background (opportunistic). Sticky builder errors surface here.
func (s *Session) Query(name string, q *Query) (*Handle, error) {
	plan, err := q.optimized()
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, inner: s.inner.Statement(name, plan)}, nil
}

// ThinkTime models the user pausing: background work drains.
func (s *Session) ThinkTime() { s.inner.ThinkTime() }

// Stats reports session activity counters: statements issued, full and
// partial (head/tail-only) evaluations, reuse hits, and background tasks.
func (s *Session) Stats() (statements, full, partial, reuse, background int64) {
	st := &s.inner.Stats
	return st.Statements.Load(), st.FullEvaluations.Load(), st.PartialEvaluations.Load(),
		st.ReuseHits.Load(), st.BackgroundTasks.Load()
}

// Handle is a statement's result: an eventually-computed dataframe.
type Handle struct {
	s     *Session
	inner *session.Handle
}

// Apply issues a new statement composing on this handle's plan. The build
// function receives the current logical plan and returns the extended one;
// plan nodes come from the algebra surfaced via the method helpers below.
func (h *Handle) Apply(name string, build func(algebra.Node) algebra.Node) *Handle {
	return &Handle{s: h.s, inner: h.inner.Apply(name, build)}
}

// Lazy returns the handle's plan as a Query on the session's engine, so a
// statement can continue through the fluent builder:
//
//	next, err := s.Query("narrow", h.Lazy().Select("a", "b").Head(10))
func (h *Handle) Lazy() *Query {
	return &Query{plan: h.inner.Plan(), engine: h.s.inner.Engine()}
}

// Collect materializes the full result.
func (h *Handle) Collect() (*DataFrame, error) {
	out, err := h.inner.Collect()
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Head returns the ordered k-prefix, computing only the prefix when the
// full result is not yet materialized (Section 6.1.2).
func (h *Handle) Head(k int) (*DataFrame, error) {
	out, err := h.inner.Head(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Tail returns the ordered k-suffix with the same prioritization.
func (h *Handle) Tail(k int) (*DataFrame, error) {
	out, err := h.inner.Tail(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Ready reports whether the full result is already materialized.
func (h *Handle) Ready() bool { return h.inner.Ready() }

// Wait blocks until background materialization (if any) completes.
func (h *Handle) Wait() { h.inner.Wait() }

// Plan returns the handle's logical plan for inspection (algebra.Render).
func (h *Handle) Plan() algebra.Node { return h.inner.Plan() }

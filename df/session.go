package df

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/session"
)

// Session exposes the interactive evaluation regimes of Section 6: eager
// (pandas-style), lazy, and opportunistic (background computation during
// think time), with head/tail-prioritized inspection and reuse of
// materialized intermediates.
type Session struct {
	inner *session.Session
}

// NewSession starts a session on the engine under the named mode: "eager",
// "lazy" or "opportunistic".
func NewSession(engine Engine, mode string) (*Session, error) {
	var m session.Mode
	switch mode {
	case "eager":
		m = session.Eager
	case "lazy":
		m = session.Lazy
	case "opportunistic":
		m = session.Opportunistic
	default:
		return nil, fmt.Errorf("df: unknown session mode %q", mode)
	}
	return &Session{inner: session.New(engine, m, nil)}, nil
}

// Bind introduces a dataframe into the session.
func (s *Session) Bind(name string, d *DataFrame) *Handle {
	return &Handle{inner: s.inner.Bind(name, d.frame)}
}

// ThinkTime models the user pausing: background work drains.
func (s *Session) ThinkTime() { s.inner.ThinkTime() }

// Stats reports session activity counters: statements issued, full and
// partial (head/tail-only) evaluations, reuse hits, and background tasks.
func (s *Session) Stats() (statements, full, partial, reuse, background int64) {
	st := &s.inner.Stats
	return st.Statements.Load(), st.FullEvaluations.Load(), st.PartialEvaluations.Load(),
		st.ReuseHits.Load(), st.BackgroundTasks.Load()
}

// Handle is a statement's result: an eventually-computed dataframe.
type Handle struct {
	inner *session.Handle
}

// Apply issues a new statement composing on this handle's plan. The build
// function receives the current logical plan and returns the extended one;
// plan nodes come from the algebra surfaced via the method helpers below.
func (h *Handle) Apply(name string, build func(algebra.Node) algebra.Node) *Handle {
	return &Handle{inner: h.inner.Apply(name, build)}
}

// Collect materializes the full result.
func (h *Handle) Collect() (*DataFrame, error) {
	out, err := h.inner.Collect()
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Head returns the ordered k-prefix, computing only the prefix when the
// full result is not yet materialized (Section 6.1.2).
func (h *Handle) Head(k int) (*DataFrame, error) {
	out, err := h.inner.Head(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Tail returns the ordered k-suffix with the same prioritization.
func (h *Handle) Tail(k int) (*DataFrame, error) {
	out, err := h.inner.Tail(k)
	if err != nil {
		return nil, err
	}
	return FromFrame(out), nil
}

// Ready reports whether the full result is already materialized.
func (h *Handle) Ready() bool { return h.inner.Ready() }

// Wait blocks until background materialization (if any) completes.
func (h *Handle) Wait() { h.inner.Wait() }

// Plan returns the handle's logical plan for inspection (algebra.Render).
func (h *Handle) Plan() algebra.Node { return h.inner.Plan() }

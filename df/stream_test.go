package df

import (
	"encoding/csv"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// streamCSV renders a deterministic multi-band dataset as CSV text.
func streamCSV(rows int) string {
	var b strings.Builder
	b.WriteString("id,dept,val\n")
	depts := []string{"eng", "ops", "sales"}
	for i := 0; i < rows; i++ {
		val := ""
		if i%11 != 0 {
			val = fmt.Sprintf("%d", i%17)
		}
		fmt.Fprintf(&b, "%d,%s,%s\n", i, depts[i%3], val)
	}
	return b.String()
}

// inMemory parses the same text whole, for equality baselines.
func inMemory(t *testing.T, text string) *Query {
	t.Helper()
	d, err := ReadCSVString(text)
	if err != nil {
		t.Fatal(err)
	}
	return d.Lazy()
}

func mustCollect(t *testing.T, q *Query) *DataFrame {
	t.Helper()
	out, err := q.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamedPipelinesMatchInMemory runs filter, groupby and sort
// pipelines through small-band streaming scans and requires byte-equality
// with the whole-text read — the user-facing face of the tentpole.
func TestStreamedPipelinesMatchInMemory(t *testing.T) {
	text := streamCSV(300)
	pipelines := map[string]func(*Query) *Query{
		"identity": func(q *Query) *Query { return q },
		"filter":   func(q *Query) *Query { return q.Where(Eq("dept", Str("eng"))) },
		"filter-chain": func(q *Query) *Query {
			return q.Where(NotNull("val")).Where(Eq("dept", Str("ops")))
		},
		"filter-groupby": func(q *Query) *Query {
			return q.Where(Eq("dept", Str("eng"))).GroupBy("dept").Sum("val")
		},
		"sort": func(q *Query) *Query { return q.SortValues("dept", "id") },
	}
	for name, build := range pipelines {
		t.Run(name, func(t *testing.T) {
			want := mustCollect(t, build(inMemory(t, text)))
			got := mustCollect(t, build(ScanCSVString(text).WithScanBandRows(32)))
			if !want.Equal(got) {
				t.Errorf("streamed %s differs from in-memory:\n%s\nvs\n%s", name, got, want)
			}
		})
	}
}

// TestScanCSVFileStreams round-trips through a real file, twice — Open
// must rewind by reopening, so a streamed query stays re-collectable.
func TestScanCSVFileStreams(t *testing.T) {
	text := streamCSV(200)
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	q := ScanCSVFile(path).WithScanBandRows(32).Where(NotNull("val"))
	want := mustCollect(t, inMemory(t, text).Where(NotNull("val")))
	first := mustCollect(t, q)
	second := mustCollect(t, q)
	if !want.Equal(first) || !first.Equal(second) {
		t.Error("file scan differs between runs or from in-memory read")
	}

	n, err := q.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != first.Len() {
		t.Errorf("Count = %d, want %d", n, first.Len())
	}
}

// TestScanCSVFileMissingWrapsSentinel: open failures are sticky, typed and
// carry the path.
func TestScanCSVFileMissingWrapsSentinel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.csv")
	q := ScanCSVFile(path).Where(NotNull("val"))
	_, err := q.Collect()
	if err == nil {
		t.Fatal("expected an error for a missing file")
	}
	if !errors.Is(err, ErrScanSource) {
		t.Errorf("error does not wrap ErrScanSource: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not carry the path: %v", err)
	}
	if _, err := q.Count(); !errors.Is(err, ErrScanSource) {
		t.Errorf("Count should surface the same sticky error, got %v", err)
	}
}

// TestScanCSVReaderErrors: a failing reader surfaces as a sticky typed
// error too.
func TestScanCSVReaderErrors(t *testing.T) {
	_, err := ScanCSV(failingReader{}).Collect()
	if !errors.Is(err, ErrScanSource) {
		t.Errorf("reader failure should wrap ErrScanSource, got %v", err)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("disk on fire") }

// TestWithScanBandRowsValidation covers both misuse shapes: a non-positive
// band size, and a plan with no streaming scan to configure.
func TestWithScanBandRowsValidation(t *testing.T) {
	if _, err := ScanCSVString("a\n1\n").WithScanBandRows(0).Collect(); err == nil {
		t.Error("WithScanBandRows(0) should fail")
	}
	d, err := ReadCSVString("a\n1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lazy().WithScanBandRows(8).Collect(); err == nil {
		t.Error("WithScanBandRows on a scan-free plan should fail")
	}
}

// TestWithSpillBudgetMatchesAndCleansUp: a one-cell budget pushes every
// routed piece to disk, the result stays byte-equal, and the terminal verb
// releases the spill files.
func TestWithSpillBudgetMatchesAndCleansUp(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // isolate dfstore-* counting

	text := streamCSV(300)
	build := func(q *Query) *Query {
		return q.Where(NotNull("val")).GroupBy("dept").Sum("val")
	}
	want := mustCollect(t, build(inMemory(t, text)))
	got := mustCollect(t, build(ScanCSVString(text).WithScanBandRows(32).WithSpillBudget(1)))
	if !want.Equal(got) {
		t.Errorf("spilled pipeline differs:\n%s\nvs\n%s", got, want)
	}
	dirs, err := filepath.Glob(filepath.Join(os.TempDir(), "dfstore-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 0 {
		t.Errorf("spill dirs left behind after Collect: %v", dirs)
	}
}

// TestSpillCancelledMidMergeLeavesNoFiles: the leak regression for
// cancellation. A one-cell budget spills every routed piece, then the
// merge phase fails (sum over a string column) and cancels the run while
// partition stragglers may still be admitting pieces. ReleaseSpill must
// quiesce those stragglers before closing the store, so no dfstore-* spill
// directory survives the failed Collect.
func TestSpillCancelledMidMergeLeavesNoFiles(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // isolate dfstore-* counting

	text := streamCSV(300)
	_, err := ScanCSVString(text).WithScanBandRows(16).WithSpillBudget(1).
		GroupBy("dept").Sum("id").Select("bogus").Collect()
	if err == nil {
		t.Fatal("expected the pipeline to fail")
	}
	_, err = ScanCSVString(text).WithScanBandRows(16).WithSpillBudget(1).
		GroupBy("dept").Sum("nonexistent").Collect()
	if err == nil {
		t.Fatal("expected sum over a missing column to fail mid-merge")
	}
	dirs, globErr := filepath.Glob(filepath.Join(os.TempDir(), "dfstore-*"))
	if globErr != nil {
		t.Fatal(globErr)
	}
	if len(dirs) != 0 {
		t.Errorf("spill dirs leaked after cancelled runs: %v", dirs)
	}
}

// TestWithSpillBudgetAsync: CollectAsync releases the spill store once the
// in-flight DAG resolves.
func TestWithSpillBudgetAsync(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())

	text := streamCSV(200)
	fut := ScanCSVString(text).WithScanBandRows(32).WithSpillBudget(1).
		GroupBy("dept").Sum("val").CollectAsync()
	out, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty async result")
	}
	// The release goroutine runs just after the future resolves.
	deadline := 100
	for ; deadline > 0; deadline-- {
		dirs, _ := filepath.Glob(filepath.Join(os.TempDir(), "dfstore-*"))
		if len(dirs) == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if deadline == 0 {
		t.Error("async spill store never released")
	}
}

// adversarialGroupCSV renders rows through encoding/csv so quoted fields
// are exact. Keys draw from a pool that includes embedded newlines, commas
// and quotes (so morsel edges land inside quoted fields), plus the empty
// string (null key); runs of nullRun consecutive null-key rows make entire
// small bands keyless. Values go null every seventh row.
func adversarialGroupCSV(t *testing.T, rows, nullRun int, rng *rand.Rand) string {
	t.Helper()
	keys := []string{"plain", "nl\nkey", "q\"uote", "comma,key", "nl\ntail\n"}
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write([]string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for i := 0; i < rows; i++ {
		k := ""
		if nulls > 0 {
			nulls--
		} else if nullRun > 0 && rng.Intn(12) == 0 {
			nulls = nullRun - 1
		} else {
			k = keys[rng.Intn(len(keys))]
		}
		v := ""
		if i%7 != 0 {
			v = fmt.Sprintf("%d", rng.Intn(50))
		}
		if err := w.Write([]string{k, v}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestStreamedGroupByAdversarialBands is the eager-vs-streamed groupby
// property check over adversarial band boundaries: quoted newlines sitting
// at morsel edges, whole bands of null keys, a single-band input, and an
// empty (header-only) file, each at several morsel sizes and with the
// spill budget forcing every routed piece to disk. The streamed result —
// incremental hash routing, rank-repaired merge order — must be
// cell-identical to the whole-text eager read. Under DF_CLUSTER_WORKERS
// the same assertions run against the distributed backend (file scans
// ship; the eager baseline stays local).
func TestStreamedGroupByAdversarialBands(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	inputs := map[string]string{
		"quoted-newlines": adversarialGroupCSV(t, 220, 0, rng),
		"null-key-runs":   adversarialGroupCSV(t, 260, 24, rng),
		"single-band":     adversarialGroupCSV(t, 5, 0, rng),
		"empty":           "k,v\n",
	}
	agg := func(q *Query) *Query {
		return q.GroupBy("k").Agg(
			AggSpec{Col: "v", Agg: "sum", As: "v_sum"},
			AggSpec{Col: "v", Agg: "count", As: "v_count"},
		)
	}
	for name, text := range inputs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "adv.csv")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			want := mustCollect(t, agg(inMemory(t, text)))
			for _, bandRows := range []int{1, 7, 16, 64} {
				got := mustCollect(t, agg(ScanCSVFile(path).WithScanBandRows(bandRows)))
				if !want.Equal(got) {
					t.Fatalf("band rows=%d: streamed groupby differs:\n%s\nvs\n%s", bandRows, got, want)
				}
				spilled := mustCollect(t, agg(ScanCSVFile(path).WithScanBandRows(bandRows).WithSpillBudget(1)))
				if !want.Equal(spilled) {
					t.Fatalf("band rows=%d: spilled streamed groupby differs:\n%s\nvs\n%s", bandRows, spilled, want)
				}
			}
		})
	}
}

// TestStreamedExplainShowsStreamStage: the physical strategy rendering
// names the streamed scan and its morsel size.
func TestStreamedExplainShowsStreamStage(t *testing.T) {
	out := ScanCSVString(streamCSV(50)).WithScanBandRows(16).Where(NotNull("val")).Explain()
	if !strings.Contains(out, "SCAN strategy=stream (band rows=16") {
		t.Errorf("explain lacks the stream strategy line:\n%s", out)
	}
}

package df

import (
	"strings"
	"testing"
)

func sample(t *testing.T) *DataFrame {
	t.Helper()
	return MustNew(
		[]string{"name", "dept", "salary", "bonus"},
		[][]any{
			{"ann", "eng", 100, 10.0},
			{"bob", "ops", 80, nil},
			{"cat", "eng", 120, 12.0},
			{"dan", "ops", 90, 9.0},
		},
	)
}

func TestNewAndShape(t *testing.T) {
	d := sample(t)
	r, c := d.Shape()
	if r != 4 || c != 4 {
		t.Fatalf("shape = %dx%d", r, c)
	}
	if d.Len() != 4 {
		t.Error("Len wrong")
	}
	if got := d.Columns(); got[0] != "name" || len(got) != 4 {
		t.Error("Columns wrong")
	}
	// The env-switched harness (DF_CLUSTER_WORKERS/ADDRS) swaps the default
	// engine for the distributed coordinator; both are valid defaults.
	if name := d.EngineName(); name != "modin" && name != "cluster" {
		t.Errorf("default engine = %s", name)
	}
}

func TestBothEnginesExposed(t *testing.T) {
	d := sample(t).WithEngine(NewBaselineEngine())
	if d.EngineName() != "pandas-baseline" {
		t.Error("baseline engine name wrong")
	}
	out, err := d.Select("name")
	if err != nil || out.Len() != 4 {
		t.Error("baseline select wrong")
	}
	if NewModinEngine().Name() != "modin" {
		t.Error("modin engine name wrong")
	}
}

func TestDtypesLazyInduction(t *testing.T) {
	d, err := ReadCSVString("a,b,c\n1,x,2.5\n2,y,3.5\n")
	if err != nil {
		t.Fatal(err)
	}
	dt := d.Dtypes()
	if dt["a"] != "int" || dt["b"] != "object" || dt["c"] != "float" {
		t.Errorf("dtypes = %v", dt)
	}
}

func TestHeadTail(t *testing.T) {
	d := sample(t)
	if h := d.Head(2); h.Len() != 2 {
		t.Error("head wrong")
	}
	tl := d.Tail(1)
	v, err := tl.Iloc(0, 0)
	if err != nil || v.Str() != "dan" {
		t.Error("tail wrong")
	}
}

func TestIlocAndPointUpdate(t *testing.T) {
	d := sample(t)
	v, err := d.Iloc(2, 2)
	if err != nil || v.Int() != 120 {
		t.Fatalf("iloc = %v, %v", v, err)
	}
	// Step C1 of Figure 1: fix an anomalous value in place.
	if err := d.SetIloc(2, 2, Int(125)); err != nil {
		t.Fatal(err)
	}
	v, _ = d.Iloc(2, 2)
	if v.Int() != 125 {
		t.Errorf("after update = %v", v)
	}
	if _, err := d.Iloc(9, 0); err == nil {
		t.Error("out of range iloc should fail")
	}
	if err := d.SetIloc(9, 0, NA()); err == nil {
		t.Error("out of range set should fail")
	}
}

func TestLoc(t *testing.T) {
	d := sample(t)
	row, err := d.Loc(Int(2))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := row.Iloc(0, 0)
	if v.Str() != "cat" {
		t.Error("loc wrong")
	}
	if _, err := d.Loc(Str("missing")); err == nil {
		t.Error("missing label should fail")
	}
}

func TestFilterSelectDrop(t *testing.T) {
	d := sample(t)
	eng, err := d.Filter("dept==eng", func(r Row) bool { return r.ByName("dept").Str() == "eng" })
	if err != nil || eng.Len() != 2 {
		t.Fatalf("filter: %v len=%d", err, eng.Len())
	}
	sel, err := d.Select("salary", "name")
	if err != nil || sel.Columns()[0] != "salary" {
		t.Error("select wrong")
	}
	dropped, err := d.Drop("bonus", "dept")
	if err != nil || len(dropped.Columns()) != 2 {
		t.Error("drop wrong")
	}
	if _, err := d.Drop("nope"); err == nil {
		t.Error("dropping unknown column should fail")
	}
}

func TestSortAndRename(t *testing.T) {
	d := sample(t)
	sorted, err := d.SortValues("salary")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sorted.Iloc(0, 0)
	if v.Str() != "bob" {
		t.Error("sort wrong")
	}
	desc, err := d.SortValuesBy([]SortKey{{Col: "salary", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ = desc.Iloc(0, 0)
	if v.Str() != "cat" {
		t.Error("desc sort wrong")
	}
	back, err := desc.SortIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Error("sort_index should restore original order")
	}
	ren, err := d.Rename(map[string]string{"dept": "team"})
	if err != nil || ren.Columns()[1] != "team" {
		t.Error("rename wrong")
	}
}

func TestConcatExceptDropDuplicates(t *testing.T) {
	d := sample(t)
	cat, err := d.Concat(d)
	if err != nil || cat.Len() != 8 {
		t.Fatal("concat wrong")
	}
	dd, err := cat.DropDuplicates()
	if err != nil || dd.Len() != 4 {
		t.Errorf("dropduplicates wrong: %d", dd.Len())
	}
	ex, err := d.Except(d.Head(1))
	if err != nil || ex.Len() != 3 {
		t.Error("except wrong")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	d := sample(t)
	tr, err := d.T()
	if err != nil {
		t.Fatal(err)
	}
	r, c := tr.Shape()
	if r != 4 || c != 4 {
		t.Fatalf("transposed shape = %dx%d", r, c)
	}
	back, err := tr.T()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Errorf("T∘T should be identity:\n%s\nvs\n%s", d, back)
	}
}

func TestTWithSchema(t *testing.T) {
	d := MustNew([]string{"a", "b"}, [][]any{{"1", "2"}})
	tr, err := d.TWithSchema([]string{"int"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tr.Iloc(0, 0)
	if v.Int() != 1 {
		t.Error("declared schema should parse")
	}
	if _, err := d.TWithSchema([]string{"nonsense"}); err == nil {
		t.Error("bad domain name should fail")
	}
}

func TestApplyMapAndApply(t *testing.T) {
	d := sample(t)
	up, err := d.ApplyMap("upper", func(v Value) Value {
		if v.Domain().String() == "object" && !v.IsNull() {
			return Str(strings.ToUpper(v.Str()))
		}
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := up.Iloc(0, 0)
	if v.Str() != "ANN" {
		t.Error("applymap wrong")
	}

	totals, err := d.Apply("total-comp", []string{"total"}, func(r Row) []Value {
		s := float64(r.ByName("salary").Int())
		if b := r.ByName("bonus"); !b.IsNull() {
			s += b.Float()
		}
		return []Value{Float(s)}
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ = totals.Iloc(0, 0)
	if v.Float() != 110 {
		t.Errorf("apply total = %v", v)
	}
}

func TestMapCol(t *testing.T) {
	// Step C3 of Figure 1: yes/no to binary.
	d := MustNew([]string{"product", "Wireless Charging"}, [][]any{
		{"iPhone 11", "Yes"}, {"iPhone 8", "No"},
	})
	out, err := d.MapCol("Wireless Charging", "yes-to-1", func(v Value) Value {
		if v.Str() == "Yes" {
			return Int(1)
		}
		return Int(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Iloc(0, 1)
	if v.Int() != 1 {
		t.Error("mapcol wrong")
	}
	v, _ = out.Iloc(0, 0)
	if v.Str() != "iPhone 11" {
		t.Error("other columns should pass through")
	}
	if _, err := d.MapCol("ghost", "x", func(v Value) Value { return v }); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestNAHelpers(t *testing.T) {
	d := sample(t)
	isna, err := d.IsNA()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := isna.Iloc(1, 3)
	if !v.Bool() {
		t.Error("isna wrong")
	}
	filled, err := d.FillNA(Float(0))
	if err != nil {
		t.Fatal(err)
	}
	v, _ = filled.Iloc(1, 3)
	if v.Float() != 0 {
		t.Error("fillna wrong")
	}
	clean, err := d.DropNA()
	if err != nil || clean.Len() != 3 {
		t.Error("dropna wrong")
	}
}

func TestSetResetIndex(t *testing.T) {
	d := sample(t)
	idx, err := d.SetIndex("name")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Columns()) != 3 {
		t.Error("set_index should remove the column")
	}
	back, err := idx.ResetIndex("name")
	if err != nil {
		t.Fatal(err)
	}
	if back.Columns()[0] != "name" || !back.Equal(d) {
		t.Error("reset_index should restore")
	}
}

func TestMergeVariants(t *testing.T) {
	people := sample(t)
	heads := MustNew([]string{"dept", "head"}, [][]any{{"eng", "grace"}, {"ops", "ada"}})
	joined, err := people.Merge(heads, "dept")
	if err != nil || joined.Len() != 4 {
		t.Fatalf("merge: %v", err)
	}
	v, _ := joined.Iloc(0, 4)
	if v.Str() != "grace" {
		t.Error("merge values wrong")
	}

	left, err := people.MergeKind(heads.Head(1), "left", "dept")
	if err != nil || left.Len() != 4 {
		t.Error("left merge wrong")
	}
	if _, err := people.MergeKind(heads, "sideways", "dept"); err == nil {
		t.Error("bad kind should fail")
	}

	cross, err := people.CrossJoin(heads)
	if err != nil || cross.Len() != 8 {
		t.Error("cross join wrong")
	}

	// Index join, as in step A2 of Figure 1.
	a, _ := people.SetIndex("name")
	b, _ := people.SetIndex("name")
	onIdx, err := a.MergeOnIndex(b)
	if err != nil || onIdx.Len() != 4 {
		t.Errorf("index merge: %v", err)
	}
}

func TestGroupByBuilder(t *testing.T) {
	d := sample(t)
	sum, err := d.GroupBy("dept").Sum("salary")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Len() != 2 {
		t.Fatalf("groups = %d", sum.Len())
	}
	v, _ := sum.Iloc(0, 1)
	if v.Float() != 220 {
		t.Errorf("eng sum = %v", v)
	}

	multi, err := d.GroupBy("dept").Agg(
		AggSpec{Col: "salary", Agg: "mean", As: "avg"},
		AggSpec{Col: "salary", Agg: "count"},
	)
	if err != nil || len(multi.Columns()) != 3 {
		t.Fatalf("agg: %v", err)
	}
	if _, err := d.GroupBy("dept").Agg(AggSpec{Col: "salary", Agg: "bogus"}); err == nil {
		t.Error("unknown aggregate should fail")
	}

	idx, err := d.GroupBy("dept").AsIndex().Mean("salary")
	if err != nil || len(idx.Columns()) != 1 {
		t.Error("AsIndex should move keys to labels")
	}

	sorted, err := d.SortValues("dept")
	if err != nil {
		t.Fatal(err)
	}
	viaSorted, err := sorted.GroupBy("dept").Sorted().Sum("salary")
	if err != nil {
		t.Fatal(err)
	}
	viaHash, err := sorted.GroupBy("dept").Sum("salary")
	if err != nil {
		t.Fatal(err)
	}
	if !viaSorted.Equal(viaHash) {
		t.Error("sorted streaming groupby should match hash groupby")
	}

	size, err := d.GroupBy("dept").Size()
	if err != nil {
		t.Fatal(err)
	}
	v, _ = size.Iloc(0, 1)
	if v.Int() != 2 {
		t.Error("size wrong")
	}
	for _, f := range []func(string) (*DataFrame, error){
		d.GroupBy("dept").Count, d.GroupBy("dept").Min, d.GroupBy("dept").Max,
	} {
		if _, err := f("salary"); err != nil {
			t.Errorf("builder agg failed: %v", err)
		}
	}
}

func TestWindowHelpers(t *testing.T) {
	d := MustNew([]string{"v"}, [][]any{{1}, {3}, {6}, {10}})
	sh, err := d.Shift(1)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sh.Iloc(1, 0)
	if v.Int() != 1 {
		t.Error("shift wrong")
	}
	up, err := d.Shift(-1)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = up.Iloc(0, 0)
	if v.Int() != 3 {
		t.Error("negative shift wrong")
	}
	di, err := d.Diff(1)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = di.Iloc(3, 0)
	if v.Float() != 4 {
		t.Error("diff wrong")
	}
	cs, err := d.CumSum()
	if err != nil {
		t.Fatal(err)
	}
	v, _ = cs.Iloc(3, 0)
	if v.Float() != 20 {
		t.Error("cumsum wrong")
	}
	if _, err := d.CumMax(); err != nil {
		t.Error(err)
	}
	if _, err := d.CumMin(); err != nil {
		t.Error(err)
	}
	rm, err := d.Rolling(2).Mean()
	if err != nil {
		t.Fatal(err)
	}
	v, _ = rm.Iloc(1, 0)
	if v.Float() != 2 {
		t.Error("rolling mean wrong")
	}
	for _, f := range []func() (*DataFrame, error){
		d.Rolling(2).Sum, d.Rolling(2).Max, d.Rolling(2).Min,
	} {
		if _, err := f(); err != nil {
			t.Error(err)
		}
	}
	if _, err := d.Rolling(0).Mean(); err == nil {
		t.Error("zero window should fail")
	}
}

func TestGetDummiesAndCov(t *testing.T) {
	d := MustNew([]string{"color", "x", "y"}, [][]any{
		{"red", 1.0, 2.0}, {"blue", 2.0, 4.0}, {"red", 3.0, 6.0},
	})
	oneHot, err := d.GetDummies()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range oneHot.Columns() {
		if c == "color_red" {
			found = true
		}
	}
	if !found {
		t.Errorf("dummies columns = %v", oneHot.Columns())
	}
	cov, err := d.Cov()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := cov.Iloc(0, 1)
	if v.Float() != 2 {
		t.Errorf("cov(x,y) = %v", v)
	}
}

func TestPivotAPI(t *testing.T) {
	d := MustNew([]string{"Year", "Month", "Sales"}, [][]any{
		{2001, "Jan", 100}, {2001, "Feb", 110},
		{2002, "Jan", 150}, {2002, "Feb", 200},
	})
	wide, err := d.Pivot("Year", "Month", "Sales")
	if err != nil {
		t.Fatal(err)
	}
	r, c := wide.Shape()
	if r != 2 || c != 2 {
		t.Fatalf("pivot shape = %dx%d\n%s", r, c, wide)
	}
	v, _ := wide.Iloc(1, 1)
	if v.Int() != 200 {
		t.Errorf("pivot cell = %v", v)
	}
}

func TestAggAndDescribe(t *testing.T) {
	d := sample(t)
	agg, err := d.Agg("mean", "max")
	if err != nil || agg.Len() != 2 {
		t.Fatalf("agg: %v", err)
	}
	if _, err := d.Agg("frobnicate"); err == nil {
		t.Error("unknown agg should fail")
	}
	desc, err := d.Describe()
	if err != nil || desc.Len() != 5 {
		t.Error("describe wrong")
	}
	kurt, err := d.Kurtosis()
	if err != nil || kurt.Len() != 1 {
		t.Error("kurtosis wrong")
	}
}

func TestReindexLikeAPI(t *testing.T) {
	d := sample(t)
	ref, err := d.SortValuesBy([]SortKey{{Col: "salary", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.ReindexLike(ref)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.Iloc(0, 0)
	if v.Str() != "cat" {
		t.Error("reindex order wrong")
	}
}

func TestColHelpers(t *testing.T) {
	d := sample(t)
	col, err := d.Col("salary")
	if err != nil || len(col.Columns()) != 1 {
		t.Error("Col wrong")
	}
	vals, err := d.ColValues("salary")
	if err != nil || len(vals) != 4 || vals[2].Int() != 120 {
		t.Error("ColValues wrong")
	}
	if _, err := d.ColValues("nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestRenderShowsData(t *testing.T) {
	d := sample(t)
	out := d.String()
	if !strings.Contains(out, "ann") || !strings.Contains(out, "salary") {
		t.Errorf("render missing data:\n%s", out)
	}
}

package df

import (
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/modin"
)

// Env-switched backend selection: the whole df surface acquires its default
// engine through newEngine, so one environment variable runs any df program
// — and the full df test suite — on the distributed backend instead of the
// in-process one, with cell-identical results:
//
//	DF_CLUSTER_WORKERS=n   start n in-process dfworkers and coordinate them
//	DF_CLUSTER_ADDRS=a,b   coordinate already-running dfworker processes
//
// Unset (or on startup failure) the default remains the in-process MODIN
// engine. The cluster scheduler is a process-wide singleton: workers are
// started (or dialed) once, on first use.

var (
	clusterOnce sync.Once
	clusterEng  Engine
)

// newEngine returns the process's default engine.
func newEngine() Engine {
	clusterOnce.Do(func() {
		if v := os.Getenv("DF_CLUSTER_WORKERS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				if s, _, err := cluster.StartInProcess(n); err == nil {
					clusterEng = s
				}
			}
			return
		}
		if v := os.Getenv("DF_CLUSTER_ADDRS"); v != "" {
			addrs := strings.Split(v, ",")
			if s, err := cluster.Connect(addrs); err == nil {
				clusterEng = s
			}
		}
	})
	if clusterEng != nil {
		return clusterEng
	}
	return modin.New()
}

// NewClusterEngine returns an engine coordinating the dfworker processes at
// addrs; plans outside the distributable subset run on an embedded local
// engine with identical results.
func NewClusterEngine(addrs []string) (Engine, error) { return cluster.Connect(addrs) }

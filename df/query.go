package df

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/optimizer"
	"repro/internal/types"
)

// Query is a lazy, chainable query plan: the rewrite-into-an-algebra API the
// paper argues for (Section 4.4). Each method appends one operator to a
// logical algebra.Node tree without executing anything; the terminal verbs —
// Collect, CollectAsync, Explain, Count, First — run the accumulated plan
// through the optimizer's rewrite rules and then through ONE
// compile→schedule pass on the bound engine. A filter→map chain therefore
// fuses into one task per partition band end-to-end, instead of
// materializing (and re-partitioning) at every method boundary the way the
// eager DataFrame methods do.
//
// Queries are immutable: every method returns a new Query sharing the
// receiver's prefix, so a plan can fork into multiple continuations.
// Construction errors (an unknown column in Drop, a bad aggregate name) are
// sticky: they ride the chain and surface at the terminal verb, keeping the
// builder fluent.
type Query struct {
	plan   algebra.Node
	engine Engine
	err    error
}

// Lazy starts a query over the dataframe: subsequent method calls build a
// plan and nothing executes until Collect (or another terminal verb).
func (d *DataFrame) Lazy() *Query {
	return &Query{plan: &algebra.Source{DF: d.frame}, engine: d.engine}
}

// ScanCSV starts a lazy query over CSV input with a header row; columns stay
// untyped (Σ*) until first operated on, per the paper's lazy schema
// induction. The reader is drained once up front (it is not replayable);
// parsing happens morsel-by-morsel at execution on the MODIN engine, so a
// fused filter chain consumes band 0 while band N is still being parsed.
// Read errors are sticky and surface at the terminal verb.
func ScanCSV(r io.Reader) *Query {
	data, err := io.ReadAll(r)
	if err != nil {
		return &Query{engine: newEngine(), err: scanErr("", err)}
	}
	return scanBytes(data)
}

// ScanCSVString starts a lazy query over CSV text, parsed morsel-by-morsel
// at execution.
func ScanCSVString(s string) *Query { return scanBytes([]byte(s)) }

// ScanCSVFile starts a lazy query over a CSV file. The file is parsed
// morsel-by-morsel at execution — a file much larger than memory streams
// through a fused filter→groupby chain under a fixed ceiling (see
// WithScanBandRows and WithSpillBudget) instead of being materialized.
// Open and header-parse errors are sticky, wrap ErrScanSource, and carry
// the file path.
func ScanCSVFile(path string) *Query {
	info, err := os.Stat(path)
	if err != nil {
		return &Query{engine: newEngine(), err: scanErr(path, err)}
	}
	return scanQuery(&algebra.Scan{
		Name: "csv",
		Path: path,
		Open: func() (io.ReadCloser, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, scanErr(path, err)
			}
			return f, nil
		},
		Options:  core.DefaultCSVOptions(),
		SizeHint: info.Size(),
	}, path)
}

func scanBytes(data []byte) *Query {
	return scanQuery(&algebra.Scan{
		Name: "csv",
		Data: data,
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		Options:  core.DefaultCSVOptions(),
		SizeHint: int64(len(data)),
	}, "")
}

// scanQuery probes the scan's header once at build time: open/parse errors
// become sticky query errors (wrapping ErrScanSource), and the probed
// column names power static schema inference (Drop, MapCol, DropNA).
func scanQuery(scan *algebra.Scan, path string) *Query {
	cur, err := scan.Cursor()
	if err != nil {
		return &Query{engine: newEngine(), err: scanErr(path, err)}
	}
	scan.Columns = cur.Columns()
	cur.Close()
	return &Query{plan: scan, engine: newEngine()}
}

// scanErr wraps a scan open/parse failure with the ErrScanSource sentinel
// and, when known, the source path.
func scanErr(path string, err error) error {
	if path == "" {
		return fmt.Errorf("df: scan csv: %w: %w", dferrors.ErrScanSource, err)
	}
	return fmt.Errorf("df: scan csv %q: %w: %w", path, dferrors.ErrScanSource, err)
}

// WithScanBandRows sets the morsel size (rows per parsed band) of every
// streaming scan in the plan. Smaller bands lower the peak memory of a
// streamed pipeline and the first-band latency; larger bands amortize
// per-band overhead. n must be positive, and the plan must contain a
// streaming scan (a Lazy() query over an in-memory frame has none).
func (q *Query) WithScanBandRows(n int) *Query {
	if q.err != nil {
		return q
	}
	if n <= 0 {
		return q.fail(fmt.Errorf("df: scan band rows must be positive, got %d", n))
	}
	plan, found := rewriteScans(q.plan, func(s *algebra.Scan) *algebra.Scan {
		c := *s
		c.BandRows = n
		return &c
	})
	if !found {
		return q.fail(fmt.Errorf("df: WithScanBandRows: plan has no streaming scan"))
	}
	return &Query{plan: plan, engine: q.engine}
}

// WithSpillBudget binds the query to a MODIN engine whose shuffle merges
// spill to disk past the given resident-cell budget: a GROUPBY/SORT/JOIN
// over a streamed scan degrades to disk instead of exceeding memory. The
// spill files are removed when the terminal verb finishes.
func (q *Query) WithSpillBudget(cells int) *Query {
	if q.err != nil {
		return q
	}
	return &Query{plan: q.plan, engine: modin.New(modin.WithShuffleSpillBudget(cells))}
}

// rewriteScans rebuilds the plan with fn applied to every Scan leaf,
// reporting whether any was found.
func rewriteScans(n algebra.Node, fn func(*algebra.Scan) *algebra.Scan) (algebra.Node, bool) {
	if s, ok := n.(*algebra.Scan); ok {
		return fn(s), true
	}
	kids := n.Children()
	if len(kids) == 0 {
		return n, false
	}
	found := false
	newKids := make([]algebra.Node, len(kids))
	for i, k := range kids {
		nk, f := rewriteScans(k, fn)
		newKids[i] = nk
		found = found || f
	}
	if !found {
		return n, false
	}
	return optimizer.WithChildren(n, newKids), true
}

// WithEngine rebinds the query to a different engine.
func (q *Query) WithEngine(e Engine) *Query {
	return &Query{plan: q.plan, engine: e, err: q.err}
}

// Plan exposes the accumulated (pre-optimization) logical plan.
func (q *Query) Plan() algebra.Node { return q.plan }

// Err returns the sticky construction error, if any.
func (q *Query) Err() error { return q.err }

// with extends the plan by one operator.
func (q *Query) with(node algebra.Node) *Query {
	if q.err != nil {
		return q
	}
	return &Query{plan: node, engine: q.engine}
}

// apply extends the plan with a caller-built operator (the session layer and
// DataFrame.run compose through this, keeping node construction in one
// place).
func (q *Query) apply(build func(algebra.Node) algebra.Node) *Query {
	if q.err != nil {
		return q
	}
	return q.with(build(q.plan))
}

// fail returns a query carrying a sticky error.
func (q *Query) fail(err error) *Query {
	if q.err != nil {
		return q
	}
	return &Query{plan: q.plan, engine: q.engine, err: err}
}

// --- chainable operators --------------------------------------------------

// Select appends PROJECTION: keep the named columns in order.
func (q *Query) Select(cols ...string) *Query {
	return q.with(&algebra.Projection{Input: q.plan, Cols: cols})
}

// Where appends structured SELECTION: the conjunction of the conditions,
// compiled to the typed filter kernels at execution. Zero conditions keep
// every row.
func (q *Query) Where(conds ...Cond) *Query {
	w := whereOf(conds)
	return q.with(&algebra.Selection{Input: q.plan, Where: w, Pred: w.Predicate(), Desc: w.Describe()})
}

// Filter appends SELECTION with an opaque row predicate. Prefer Where for
// column comparisons — structured conditions run through the typed kernels
// and stay visible to the optimizer.
func (q *Query) Filter(desc string, pred func(Row) bool) *Query {
	return q.with(&algebra.Selection{
		Input: q.plan,
		Pred:  func(r expr.Row) bool { return pred(Row{r}) },
		Desc:  desc,
	})
}

// Drop appends a PROJECTION of every column except the named ones. The
// surviving columns are resolved against the plan's statically-inferred
// schema, so Drop needs the chain's column labels to be derivable (they are
// for every builder method except opaque transposes and joins).
func (q *Query) Drop(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	names := columnsOf(q.plan)
	if names == nil {
		return q.fail(fmt.Errorf("df: drop needs a statically-known schema; %s does not expose one", q.plan.Describe()))
	}
	dropSet := make(map[string]bool, len(cols))
	for _, c := range cols {
		dropSet[c] = true
	}
	found := make(map[string]bool, len(cols))
	keep := make([]string, 0, len(names))
	for _, name := range names {
		if dropSet[name] {
			// Every occurrence of a dropped label goes, matching eager
			// drop on duplicate-label frames.
			found[name] = true
			continue
		}
		keep = append(keep, name)
	}
	for _, c := range cols {
		if !found[c] {
			return q.fail(fmt.Errorf("df: drop of %w %q", dferrors.ErrUnknownColumn, c))
		}
	}
	return q.Select(keep...)
}

// Rename appends RENAME: relabel columns per the mapping.
func (q *Query) Rename(mapping map[string]string) *Query {
	return q.with(&algebra.Rename{Input: q.plan, Mapping: mapping})
}

// SortValues appends SORT over the given columns ascending.
func (q *Query) SortValues(cols ...string) *Query {
	order := make(expr.SortOrder, len(cols))
	for i, c := range cols {
		order[i] = expr.SortKey{Col: c}
	}
	return q.with(&algebra.Sort{Input: q.plan, Order: order})
}

// SortValuesBy appends SORT with explicit per-key direction.
func (q *Query) SortValuesBy(order []SortKey) *Query {
	o := make(expr.SortOrder, len(order))
	for i, k := range order {
		o[i] = expr.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return q.with(&algebra.Sort{Input: q.plan, Order: o})
}

// SortIndex appends SORT by the row labels.
func (q *Query) SortIndex() *Query {
	return q.with(&algebra.Sort{Input: q.plan, ByLabels: true})
}

// DropDuplicates appends duplicate-row removal (over the given columns;
// none means all), keeping first occurrences.
func (q *Query) DropDuplicates(subset ...string) *Query {
	return q.with(&algebra.DropDuplicates{Input: q.plan, Subset: subset})
}

// Concat appends other's rows below this query's: the ordered UNION.
func (q *Query) Concat(other *Query) *Query {
	if q.err == nil && other.err != nil {
		return q.fail(other.err)
	}
	return q.with(&algebra.Union{Left: q.plan, Right: other.plan})
}

// Except appends the ordered DIFFERENCE: rows of this query not present in
// other, preserving this query's order.
func (q *Query) Except(other *Query) *Query {
	if q.err == nil && other.err != nil {
		return q.fail(other.err)
	}
	return q.with(&algebra.Difference{Left: q.plan, Right: other.plan})
}

// Merge appends an inner equi-JOIN on the named columns.
func (q *Query) Merge(other *Query, on ...string) *Query {
	return q.merge(other, expr.JoinInner, on, false)
}

// MergeKind appends an equi-JOIN with explicit kind: "inner", "left",
// "right", "outer".
func (q *Query) MergeKind(other *Query, kind string, on ...string) *Query {
	k, err := parseJoinKind(kind)
	if err != nil {
		return q.fail(err)
	}
	return q.merge(other, k, on, false)
}

// MergeOnIndex appends an inner JOIN on the row labels.
func (q *Query) MergeOnIndex(other *Query) *Query {
	return q.merge(other, expr.JoinInner, nil, true)
}

// CrossJoin appends the ordered cross product.
func (q *Query) CrossJoin(other *Query) *Query {
	return q.merge(other, expr.JoinCross, nil, false)
}

func (q *Query) merge(other *Query, kind expr.JoinKind, on []string, onLabels bool) *Query {
	if q.err == nil && other.err != nil {
		return q.fail(other.err)
	}
	return q.with(&algebra.Join{
		Left:     q.plan,
		Right:    other.plan,
		Kind:     kind,
		On:       on,
		OnLabels: onLabels,
	})
}

// ApplyMap appends the elementwise MAP: fn over every cell.
func (q *Query) ApplyMap(name string, fn func(Value) Value) *Query {
	return q.with(&algebra.Map{Input: q.plan, Fn: expr.MapFn{Name: name, Elementwise: fn}})
}

// Apply appends the general MAP: fn over every row, producing the named
// output columns.
func (q *Query) Apply(name string, outCols []string, fn func(Row) []Value) *Query {
	labels := make([]types.Value, len(outCols))
	for i, c := range outCols {
		labels[i] = types.String(c)
	}
	return q.with(&algebra.Map{Input: q.plan, Fn: expr.MapFn{
		Name:    name,
		OutCols: labels,
		Fn:      func(r expr.Row) []types.Value { return fn(Row{r}) },
	}})
}

// MapCol appends a MAP transforming one column, leaving the rest unchanged.
// The column is validated against the chain's statically-inferred schema —
// an unknown column is a (sticky) build-time error, and like Drop the
// schema must be derivable (a row MAP cannot report a missing column at
// execution time, and silently passing rows through would hide the bug).
func (q *Query) MapCol(col string, name string, fn func(Value) Value) *Query {
	if q.err != nil {
		return q
	}
	names := columnsOf(q.plan)
	if names == nil {
		return q.fail(fmt.Errorf("df: mapcol needs a statically-known schema; %s does not expose one", q.plan.Describe()))
	}
	// Resolve the first occurrence once at build time: the schema is
	// exact, and no optimizer rule reorders columns below a row MAP.
	target := -1
	for k, n := range names {
		if n == col {
			target = k
			break
		}
	}
	if target < 0 {
		return q.fail(fmt.Errorf("df: no %w %q", dferrors.ErrUnknownColumn, col))
	}
	return q.with(&algebra.Map{Input: q.plan, Fn: expr.MapFn{
		Name: name,
		Fn: func(r expr.Row) []types.Value {
			out := make([]types.Value, r.NCols())
			for k := 0; k < r.NCols(); k++ {
				out[k] = r.Value(k)
			}
			out[target] = fn(out[target])
			return out
		},
	}})
}

// IsNA appends the MAP replacing every cell with whether it is null.
func (q *Query) IsNA() *Query {
	return q.with(&algebra.Map{Input: q.plan, Fn: algebra.IsNullFn()})
}

// FillNA appends the MAP replacing nulls with the given value.
func (q *Query) FillNA(v Value) *Query {
	return q.with(&algebra.Map{Input: q.plan, Fn: algebra.FillNAFn(v)})
}

// DropNA appends a SELECTION removing rows containing any null. With a
// statically-known schema of unique labels the filter is one structured
// NotNull conjunction over every column (the kernel path); otherwise it
// falls back to the positional row predicate.
func (q *Query) DropNA() *Query {
	if q.err != nil {
		return q
	}
	names := columnsOf(q.plan)
	if names != nil && uniqueStrings(names) {
		w := &expr.Where{Terms: make([]expr.WhereTerm, len(names))}
		for i, n := range names {
			w.Terms[i] = NotNull(n).term
		}
		return q.with(&algebra.Selection{Input: q.plan, Where: w, Pred: w.Predicate(), Desc: "no nulls"})
	}
	return q.with(&algebra.Selection{
		Input: q.plan,
		Desc:  "no nulls",
		Pred: func(r expr.Row) bool {
			for j := 0; j < r.NCols(); j++ {
				if r.Value(j).IsNull() {
					return false
				}
			}
			return true
		},
	})
}

// T appends the matrix-like TRANSPOSE.
func (q *Query) T() *Query {
	return q.with(&algebra.Transpose{Input: q.plan})
}

// Head appends LIMIT: keep the ordered n-prefix.
func (q *Query) Head(n int) *Query {
	return q.with(&algebra.Limit{Input: q.plan, N: n})
}

// Tail appends LIMIT: keep the ordered n-suffix.
func (q *Query) Tail(n int) *Query {
	return q.with(&algebra.Limit{Input: q.plan, N: -n})
}

// GroupBy starts a grouped aggregation on the query; the returned builder's
// aggregate verbs append one GROUPBY node.
func (q *Query) GroupBy(keys ...string) *QueryGroupBy {
	return &QueryGroupBy{q: q, keys: keys}
}

// QueryGroupBy is a pending grouped aggregation on a lazy query.
type QueryGroupBy struct {
	q       *Query
	keys    []string
	asIndex bool
	sorted  bool
}

// AsIndex elevates the group keys to row labels (pandas groupby default).
func (g *QueryGroupBy) AsIndex() *QueryGroupBy {
	return &QueryGroupBy{q: g.q, keys: g.keys, asIndex: true, sorted: g.sorted}
}

// Sorted declares the input already ordered by the keys, switching the
// engine to a streaming group-by (the Figure 8(b) rewrite).
func (g *QueryGroupBy) Sorted() *QueryGroupBy {
	return &QueryGroupBy{q: g.q, keys: g.keys, asIndex: g.asIndex, sorted: true}
}

// Agg appends GROUPBY computing the named aggregates; each spec is
// (column, aggregate, output name).
func (g *QueryGroupBy) Agg(specs ...AggSpec) *Query {
	aggs, err := parseAggSpecs(specs)
	if err != nil {
		return g.q.fail(err)
	}
	return g.agg(aggs)
}

// Count counts non-null values of col per group.
func (g *QueryGroupBy) Count(col string) *Query {
	return g.agg([]expr.AggSpec{{Col: col, Agg: expr.AggCount, As: col + "_count"}})
}

// Size counts rows per group, nulls included.
func (g *QueryGroupBy) Size() *Query {
	return g.agg([]expr.AggSpec{{Agg: expr.AggSize, As: "size"}})
}

// Sum sums col per group.
func (g *QueryGroupBy) Sum(col string) *Query {
	return g.agg([]expr.AggSpec{{Col: col, Agg: expr.AggSum, As: col + "_sum"}})
}

// Mean averages col per group.
func (g *QueryGroupBy) Mean(col string) *Query {
	return g.agg([]expr.AggSpec{{Col: col, Agg: expr.AggMean, As: col + "_mean"}})
}

// Min takes the per-group minimum of col.
func (g *QueryGroupBy) Min(col string) *Query {
	return g.agg([]expr.AggSpec{{Col: col, Agg: expr.AggMin, As: col + "_min"}})
}

// Max takes the per-group maximum of col.
func (g *QueryGroupBy) Max(col string) *Query {
	return g.agg([]expr.AggSpec{{Col: col, Agg: expr.AggMax, As: col + "_max"}})
}

func (g *QueryGroupBy) agg(aggs []expr.AggSpec) *Query {
	return g.q.with(&algebra.GroupBy{Input: g.q.plan, Spec: expr.GroupBySpec{
		Keys:     g.keys,
		Aggs:     aggs,
		AsLabels: g.asIndex,
		Sorted:   g.sorted,
	}})
}

// --- terminal verbs -------------------------------------------------------

// optimized runs the accumulated plan through the default rewrite rules.
func (q *Query) optimized() (algebra.Node, error) {
	if q.err != nil {
		return nil, q.err
	}
	plan, _ := optimizer.Optimize(q.plan, optimizer.Default())
	return plan, nil
}

// spillReleaser matches engines (MODIN with WithSpillBudget) holding
// per-run spill files that should be freed once a terminal verb finishes.
type spillReleaser interface{ ReleaseSpill() error }

// releaseSpill frees the engine's shuffle spill files, if it keeps any.
// The store is re-created lazily, so a query may be collected again.
func (q *Query) releaseSpill() {
	if sr, ok := q.engine.(spillReleaser); ok {
		sr.ReleaseSpill()
	}
}

// Collect optimizes the plan and executes it in one compile→schedule pass,
// materializing the result.
func (q *Query) Collect() (*DataFrame, error) {
	plan, err := q.optimized()
	if err != nil {
		return nil, err
	}
	defer q.releaseSpill()
	out, err := q.engine.Execute(plan)
	if err != nil {
		return nil, err
	}
	return wrap(out, q.engine), nil
}

// asyncEngine matches engines (MODIN) that schedule a plan's task DAG and
// hand back a future without blocking; see session.AsyncEngine.
type asyncEngine interface {
	ExecuteAsync(algebra.Node) *exec.Future
}

// CollectAsync optimizes the plan, schedules it, and returns immediately
// with a future of the result. On an async engine (MODIN) the plan's task
// DAG is already in flight when this returns; other engines evaluate on a
// background goroutine.
func (q *Query) CollectAsync() *Future {
	plan, err := q.optimized()
	if err != nil {
		return &Future{inner: exec.Failed(err), engine: q.engine}
	}
	if ae, ok := q.engine.(asyncEngine); ok {
		inner := ae.ExecuteAsync(plan)
		if _, ok := q.engine.(spillReleaser); ok {
			go func() {
				inner.Wait()
				q.releaseSpill()
			}()
		}
		return &Future{inner: inner, engine: q.engine}
	}
	fut, resolve := exec.NewPromise()
	go func() { resolve(q.engine.Execute(plan)) }()
	return &Future{inner: fut, engine: q.engine}
}

// physicalDescriber matches engines (MODIN) that expose their physical
// strategy decisions — broadcast vs key-shuffled joins, dictionary vs hash
// groupby — for a logical plan.
type physicalDescriber interface {
	DescribePhysical(algebra.Node) string
}

// Explain renders the plan before and after optimization, naming the
// rewrite rules that fired; on engines with a physical planner it appends
// the statistics-driven strategy chosen for each repartition point.
func (q *Query) Explain() string {
	if q.err != nil {
		return "error: " + q.err.Error() + "\n"
	}
	out := optimizer.Explain(q.plan, optimizer.Default())
	if d, ok := q.engine.(physicalDescriber); ok {
		if plan, err := q.optimized(); err == nil {
			out += "physical strategy:\n" + d.DescribePhysical(plan)
		}
	}
	return out
}

// Count returns the result's row count. Operators that cannot change the
// row count — sorts over statically-valid keys, elementwise maps — are
// pruned from the optimized plan first, so counting a sorted or
// null-filled frame never pays for the sort or the map; a plan pruned all
// the way to its source answers from metadata without executing at all.
func (q *Query) Count() (int, error) {
	if q.err != nil {
		return 0, q.err
	}
	plan, err := q.optimized()
	if err != nil {
		return 0, err
	}
	plan = pruneForCount(plan)
	if src, ok := plan.(*algebra.Source); ok {
		return src.DF.NRows(), nil
	}
	defer q.releaseSpill()
	out, err := q.engine.Execute(plan)
	if err != nil {
		return 0, err
	}
	return out.NRows(), nil
}

// First returns the result's first row as a 1-row dataframe, computing only
// the ordered 1-prefix: under MODIN the LIMIT touches boundary partitions
// only, and a trailing sort rewrites to TOPK(1).
func (q *Query) First() (*DataFrame, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.Head(1).Collect()
}

// pruneForCount strips row-count-preserving operators off the plan root:
// label sorts, data sorts whose keys are statically known to exist (an
// invalid key must keep erroring), and label-preserving elementwise maps.
func pruneForCount(plan algebra.Node) algebra.Node {
	for {
		switch n := plan.(type) {
		case *algebra.Sort:
			if !n.ByLabels {
				names := columnsOf(n.Input)
				if names == nil {
					return plan
				}
				for _, key := range n.Order {
					if !containsString(names, key.Col) {
						return plan
					}
				}
			}
			plan = n.Input
		case *algebra.Map:
			if n.Fn.Elementwise == nil || n.Fn.OutCols != nil {
				return plan
			}
			plan = n.Input
		default:
			return plan
		}
	}
}

// Future is an asynchronously-collected query result.
type Future struct {
	inner  *exec.Future
	engine Engine
}

// Wait blocks until the result is available.
func (f *Future) Wait() (*DataFrame, error) {
	v, err := f.inner.Wait()
	if err != nil {
		return nil, err
	}
	return wrap(v.(*core.DataFrame), f.engine), nil
}

// Ready reports whether the result is already available.
func (f *Future) Ready() bool { return f.inner.Ready() }

// Done returns a channel closed when the result lands.
func (f *Future) Done() <-chan struct{} { return f.inner.Done() }

// --- static schema inference ----------------------------------------------

// columnsOf infers the plan's output column labels without executing it
// (nil when not statically derivable); see algebra.OutputColumns. The
// builder uses it to resolve Drop and validate MapCol early.
func columnsOf(n algebra.Node) []string { return algebra.OutputColumns(n) }

// --- shared construction helpers ------------------------------------------

// whereOf builds the structured conjunction from public conditions.
func whereOf(conds []Cond) *expr.Where {
	w := &expr.Where{Terms: make([]expr.WhereTerm, len(conds))}
	for i, c := range conds {
		w.Terms[i] = c.term
	}
	return w
}

// parseAggSpecs resolves public aggregate specs to expression specs.
func parseAggSpecs(specs []AggSpec) ([]expr.AggSpec, error) {
	aggs := make([]expr.AggSpec, len(specs))
	for i, s := range specs {
		kind, ok := expr.ParseAgg(s.Agg)
		if !ok {
			return nil, fmt.Errorf("df: %w %q", dferrors.ErrUnknownAggregate, s.Agg)
		}
		aggs[i] = expr.AggSpec{Col: s.Col, Agg: kind, As: s.As}
	}
	return aggs, nil
}

// parseJoinKind resolves a public join-kind name.
func parseJoinKind(kind string) (expr.JoinKind, error) {
	switch kind {
	case "inner":
		return expr.JoinInner, nil
	case "left":
		return expr.JoinLeft, nil
	case "right":
		return expr.JoinRight, nil
	case "outer":
		return expr.JoinOuter, nil
	}
	return 0, fmt.Errorf("df: %w %q", dferrors.ErrUnknownJoinKind, kind)
}

func containsString(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func uniqueStrings(names []string) bool {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// Package df is the public dataframe API: a pandas-flavoured surface over
// the dataframe algebra of Petersohn et al. (VLDB 2020). Every method
// rewrites into one or more of the 14 algebra operators (Section 4.3) and
// executes on a pluggable engine — the single-threaded baseline (pandas'
// execution profile) or the partition-parallel MODIN engine.
//
// The method surface is eager, like pandas: each call materializes its
// result. Every method is one-step sugar over the lazy Query builder
// ((*DataFrame).Lazy and the ScanCSV* sources), which accumulates a
// multi-operator plan, runs the optimizer's rewrite rules, and executes one
// compile→schedule pass per Collect — so chains written lazily fuse
// end-to-end instead of materializing at each step. The interactive
// evaluation regimes of Section 6 are available through the Session type,
// which accepts Query plans directly.
package df

import (
	"fmt"
	"io"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/eager"
	"repro/internal/modin"
	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/vector"
)

// Engine executes dataframe-algebra plans; see NewBaselineEngine and
// NewModinEngine.
type Engine = algebra.Engine

// NewBaselineEngine returns the single-threaded, eagerly-materializing
// engine with pandas' execution profile.
func NewBaselineEngine() Engine { return eager.New() }

// NewModinEngine returns the partition-parallel MODIN engine.
func NewModinEngine() Engine { return modin.New() }

// Value is a dataframe cell value; construct with Str, Int, Float, Bool and
// NA.
type Value = types.Value

// Str returns a string cell value.
func Str(s string) Value { return types.String(s) }

// Int returns an integer cell value.
func Int(i int64) Value { return types.IntValue(i) }

// Float returns a float cell value.
func Float(f float64) Value { return types.FloatValue(f) }

// Bool returns a boolean cell value.
func Bool(b bool) Value { return types.BoolValue(b) }

// NA returns the null cell value.
func NA() Value { return types.Null() }

// DataFrame is an ordered, labelled, lazily-typed table: the public face of
// the data model in Section 4.2.
type DataFrame struct {
	frame  *core.DataFrame
	engine Engine
}

// New builds a dataframe from column names and row-oriented records of Go
// values (nil is null). The default engine is MODIN.
func New(names []string, records [][]any) (*DataFrame, error) {
	frame, err := core.FromRecords(names, records)
	if err != nil {
		return nil, err
	}
	return wrap(frame, newEngine()), nil
}

// MustNew is New, panicking on error.
func MustNew(names []string, records [][]any) *DataFrame {
	d, err := New(names, records)
	if err != nil {
		panic(err)
	}
	return d
}

// ReadCSV ingests CSV with a header row; columns stay untyped (Σ*) until
// first operated on, per the paper's lazy schema induction.
func ReadCSV(r io.Reader) (*DataFrame, error) {
	frame, err := core.ReadCSV(r, core.DefaultCSVOptions())
	if err != nil {
		return nil, err
	}
	return wrap(frame.WithCache(schema.NewCache()), newEngine()), nil
}

// ReadCSVString ingests CSV text.
func ReadCSVString(s string) (*DataFrame, error) {
	frame, err := core.ReadCSVString(s, core.DefaultCSVOptions())
	if err != nil {
		return nil, err
	}
	return wrap(frame.WithCache(schema.NewCache()), newEngine()), nil
}

// ReadCSVFile ingests a CSV file.
func ReadCSVFile(path string) (*DataFrame, error) {
	frame, err := core.ReadCSVFile(path, core.DefaultCSVOptions())
	if err != nil {
		return nil, err
	}
	return wrap(frame.WithCache(schema.NewCache()), newEngine()), nil
}

func wrap(frame *core.DataFrame, engine Engine) *DataFrame {
	return &DataFrame{frame: frame, engine: engine}
}

// WithEngine returns the dataframe bound to a different engine.
func (d *DataFrame) WithEngine(e Engine) *DataFrame { return wrap(d.frame, e) }

// EngineName reports which engine the dataframe executes on.
func (d *DataFrame) EngineName() string { return d.engine.Name() }

// Frame exposes the underlying data-model frame for interoperation with the
// algebra and engines.
func (d *DataFrame) Frame() *core.DataFrame { return d.frame }

// FromFrame wraps a core frame with the MODIN engine, for callers composing
// algebra plans directly.
func FromFrame(frame *core.DataFrame) *DataFrame { return wrap(frame, newEngine()) }

// run executes a one-operator plan over this frame: eager sugar over the
// lazy builder, so every method — eager or chained — constructs nodes and
// collects through the same Query path.
func (d *DataFrame) run(build func(algebra.Node) algebra.Node) (*DataFrame, error) {
	return d.Lazy().apply(build).Collect()
}

// Shape returns (rows, columns).
func (d *DataFrame) Shape() (int, int) { return d.frame.NRows(), d.frame.NCols() }

// Len returns the row count.
func (d *DataFrame) Len() int { return d.frame.NRows() }

// Columns returns the column labels.
func (d *DataFrame) Columns() []string { return d.frame.ColNames() }

// Dtypes returns each column's (induced) domain name, like pandas' dtypes.
func (d *DataFrame) Dtypes() map[string]string {
	out := make(map[string]string, d.frame.NCols())
	for j := 0; j < d.frame.NCols(); j++ {
		out[d.frame.ColName(j)] = d.frame.Domain(j).String()
	}
	return out
}

// String renders the tabular prefix/suffix view.
func (d *DataFrame) String() string { return d.frame.String() }

// Render renders with explicit options.
func (d *DataFrame) Render(opts core.RenderOptions) string { return d.frame.Render(opts) }

// Equal reports whether two dataframes agree on shape, labels and values.
func (d *DataFrame) Equal(o *DataFrame) bool { return d.frame.Equal(o.frame) }

// Head returns the first n rows.
func (d *DataFrame) Head(n int) *DataFrame {
	return wrap(algebra.LimitFrame(d.frame, n), d.engine)
}

// Tail returns the last n rows.
func (d *DataFrame) Tail(n int) *DataFrame {
	return wrap(algebra.LimitFrame(d.frame, -n), d.engine)
}

// Iloc returns the cell at row i, column j (positional notation).
func (d *DataFrame) Iloc(i, j int) (Value, error) {
	if i < 0 || i >= d.frame.NRows() || j < 0 || j >= d.frame.NCols() {
		return Value{}, fmt.Errorf("df: iloc (%d,%d) out of range %dx%d", i, j, d.frame.NRows(), d.frame.NCols())
	}
	return d.frame.Value(i, j), nil
}

// SetIloc performs an ordered point update (step C1 of the paper's Figure 1
// workflow): the cell at (i, j) is replaced. A new frame is produced; the
// receiver is updated in place to match pandas' mutating feel.
func (d *DataFrame) SetIloc(i, j int, v Value) error {
	if i < 0 || i >= d.frame.NRows() || j < 0 || j >= d.frame.NCols() {
		return fmt.Errorf("df: iloc (%d,%d) out of range %dx%d", i, j, d.frame.NRows(), d.frame.NCols())
	}
	col := d.frame.Col(j)
	vals := vector.Values(col)
	vals[i] = v
	dom := col.Domain()
	if v.Domain() != dom && !v.IsNull() {
		dom = types.Object
	}
	newCol := vector.FromValues(dom, vals)
	frame, err := d.frame.WithColumn(j, newCol, types.Unspecified)
	if err != nil {
		return err
	}
	d.frame = frame
	return nil
}

// Loc returns the first row whose label equals the given value, as a 1-row
// dataframe (named notation on the row axis).
func (d *DataFrame) Loc(label Value) (*DataFrame, error) {
	labels := d.frame.RowLabels()
	for i := 0; i < labels.Len(); i++ {
		if labels.Value(i).Equal(label) {
			return wrap(d.frame.SliceRows(i, i+1), d.engine), nil
		}
	}
	return nil, fmt.Errorf("df: no row labelled %v", label)
}

// Col returns the named column as a single-column dataframe.
func (d *DataFrame) Col(name string) (*DataFrame, error) {
	return d.run(func(in algebra.Node) algebra.Node {
		return &algebra.Projection{Input: in, Cols: []string{name}}
	})
}

// ColValues returns the named column's parsed values.
func (d *DataFrame) ColValues(name string) ([]Value, error) {
	j := d.frame.ColIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("df: no %w %q", dferrors.ErrUnknownColumn, name)
	}
	return vector.Values(d.frame.TypedCol(j)), nil
}

package df

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
)

func sessionFilter(in algebra.Node) algebra.Node {
	return &algebra.Selection{
		Input: in,
		Pred: func(r expr.Row) bool {
			return r.ByName("dept").Str() == "eng"
		},
		Desc: "dept == eng",
	}
}

func TestSessionModes(t *testing.T) {
	for _, mode := range []string{"eager", "lazy", "opportunistic"} {
		t.Run(mode, func(t *testing.T) {
			s, err := NewSession(NewModinEngine(), mode)
			if err != nil {
				t.Fatal(err)
			}
			h := s.Bind("people", sample(t)).Apply("eng", sessionFilter)
			out, err := h.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() != 2 {
				t.Errorf("rows = %d", out.Len())
			}
			head, err := h.Head(1)
			if err != nil || head.Len() != 1 {
				t.Errorf("head: %v", err)
			}
			tail, err := h.Tail(1)
			if err != nil || tail.Len() != 1 {
				t.Errorf("tail: %v", err)
			}
			v, _ := tail.Iloc(0, 0)
			if v.Str() != "cat" {
				t.Errorf("tail row = %v", v)
			}
		})
	}
	if _, err := NewSession(NewModinEngine(), "psychic"); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestSessionStatsAndPlan(t *testing.T) {
	s, err := NewSession(NewBaselineEngine(), "lazy")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Bind("people", sample(t)).Apply("eng", sessionFilter)
	statements, full, partial, _, background := s.Stats()
	if statements != 2 || full != 0 || background != 0 {
		t.Errorf("lazy pre-collect stats: stmts=%d full=%d bg=%d", statements, full, background)
	}
	if _, err := h.Head(1); err != nil {
		t.Fatal(err)
	}
	_, _, partial, _, _ = s.Stats()
	if partial != 1 {
		t.Errorf("head should count as partial eval, got %d", partial)
	}
	if algebra.CountNodes(h.Plan()) != 2 {
		t.Error("plan should have two nodes")
	}
	if h.Ready() {
		t.Error("lazy handle should not be materialized before collect")
	}
	if _, err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if !h.Ready() {
		t.Error("collect should materialize")
	}
	h.Wait() // no-op once ready
	s.ThinkTime()
}

package df

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
)

func sessionFilter(in algebra.Node) algebra.Node {
	return &algebra.Selection{
		Input: in,
		Pred: func(r expr.Row) bool {
			return r.ByName("dept").Str() == "eng"
		},
		Desc: "dept == eng",
	}
}

func TestSessionModes(t *testing.T) {
	for _, name := range []string{"eager", "lazy", "opportunistic"} {
		t.Run(name, func(t *testing.T) {
			mode, err := ParseMode(name)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSession(NewModinEngine(), mode)
			h := s.Bind("people", sample(t)).Apply("eng", sessionFilter)
			out, err := h.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() != 2 {
				t.Errorf("rows = %d", out.Len())
			}
			head, err := h.Head(1)
			if err != nil || head.Len() != 1 {
				t.Errorf("head: %v", err)
			}
			tail, err := h.Tail(1)
			if err != nil || tail.Len() != 1 {
				t.Errorf("tail: %v", err)
			}
			v, _ := tail.Iloc(0, 0)
			if v.Str() != "cat" {
				t.Errorf("tail row = %v", v)
			}
		})
	}
	if _, err := ParseMode("psychic"); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("unknown mode should report ErrUnknownMode, got %v", err)
	}
}

func TestSessionStatsAndPlan(t *testing.T) {
	s := NewSession(NewBaselineEngine(), ModeLazy)
	h := s.Bind("people", sample(t)).Apply("eng", sessionFilter)
	statements, full, partial, _, background := s.Stats()
	if statements != 2 || full != 0 || background != 0 {
		t.Errorf("lazy pre-collect stats: stmts=%d full=%d bg=%d", statements, full, background)
	}
	if _, err := h.Head(1); err != nil {
		t.Fatal(err)
	}
	_, _, partial, _, _ = s.Stats()
	if partial != 1 {
		t.Errorf("head should count as partial eval, got %d", partial)
	}
	if algebra.CountNodes(h.Plan()) != 2 {
		t.Error("plan should have two nodes")
	}
	if h.Ready() {
		t.Error("lazy handle should not be materialized before collect")
	}
	if _, err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if !h.Ready() {
		t.Error("collect should materialize")
	}
	h.Wait() // no-op once ready
	s.ThinkTime()
}

func TestSessionClose(t *testing.T) {
	s := NewSession(NewModinEngine(), ModeLazy)
	h := s.Bind("people", sample(t))
	if _, err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
	h2 := s.Bind("late", sample(t))
	if _, err := h2.Collect(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("statement after close should report ErrSessionClosed, got %v", err)
	}
	if err := s.EnableSpillingBudget(100); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("EnableSpillingBudget after close should report ErrSessionClosed, got %v", err)
	}
}

func TestSessionSpillBudget(t *testing.T) {
	s := NewSession(NewModinEngine(), ModeEager)
	if err := s.EnableSpillingBudget(1); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Bind("people", sample(t))
	if _, err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	h2 := s.Bind("more", sample(t))
	if _, err := h2.Collect(); err != nil {
		t.Fatal(err)
	}
	// With a one-cell ceiling every resolved result beyond the newest must
	// have spilled, yet both stay readable through transparent reload.
	if got, err := h.Collect(); err != nil || got.Len() != sample(t).Len() {
		t.Fatalf("reload after spill: %v (len %d)", err, got.Len())
	}
	if cells := s.MemoryCells(); cells <= 0 {
		t.Errorf("MemoryCells = %d, want > 0", cells)
	}
	if s.LastActive().IsZero() {
		t.Error("LastActive should be set after statements")
	}
}

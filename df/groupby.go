package df

// GroupBy starts a grouped aggregation, pandas-style:
//
//	out, err := d.GroupBy("dept").Sum("salary")
//
// Unlike SQL, GROUPBY admits independent use; with AsIndex the grouping
// values are elevated to the row labels via an implicit TOLABELS, matching
// pandas' default. GroupedFrame is the eager face of the lazy
// Query.GroupBy builder: each aggregate verb builds the same GROUPBY node
// and collects immediately.
func (d *DataFrame) GroupBy(keys ...string) *GroupedFrame {
	return &GroupedFrame{inner: d.Lazy().GroupBy(keys...)}
}

// GroupedFrame is a pending grouped aggregation.
type GroupedFrame struct {
	inner *QueryGroupBy
}

// AsIndex elevates the group keys to row labels (pandas groupby default).
// Like the pre-builder API it mutates the receiver (statement style), and
// returns it for chaining.
func (g *GroupedFrame) AsIndex() *GroupedFrame {
	g.inner = g.inner.AsIndex()
	return g
}

// Sorted declares the input already ordered by the keys, switching the
// engine to a streaming group-by (the Figure 8(b) rewrite). Mutates the
// receiver and returns it for chaining.
func (g *GroupedFrame) Sorted() *GroupedFrame {
	g.inner = g.inner.Sorted()
	return g
}

// Agg computes named aggregates over named columns; each spec is
// (column, aggregate, output name).
func (g *GroupedFrame) Agg(specs ...AggSpec) (*DataFrame, error) {
	return g.inner.Agg(specs...).Collect()
}

// AggSpec names one aggregate in GroupedFrame.Agg and QueryGroupBy.Agg.
type AggSpec struct {
	// Col is the aggregated column.
	Col string
	// Agg is the aggregate name ("sum", "mean", "count", "size", "min",
	// "max", "std", "var", "median", "first", "last", "nunique",
	// "kurtosis").
	Agg string
	// As optionally names the output column.
	As string
}

// Count counts non-null values of col per group.
func (g *GroupedFrame) Count(col string) (*DataFrame, error) {
	return g.inner.Count(col).Collect()
}

// Size counts rows per group, nulls included.
func (g *GroupedFrame) Size() (*DataFrame, error) {
	return g.inner.Size().Collect()
}

// Sum sums col per group.
func (g *GroupedFrame) Sum(col string) (*DataFrame, error) {
	return g.inner.Sum(col).Collect()
}

// Mean averages col per group.
func (g *GroupedFrame) Mean(col string) (*DataFrame, error) {
	return g.inner.Mean(col).Collect()
}

// Min takes the per-group minimum of col.
func (g *GroupedFrame) Min(col string) (*DataFrame, error) {
	return g.inner.Min(col).Collect()
}

// Max takes the per-group maximum of col.
func (g *GroupedFrame) Max(col string) (*DataFrame, error) {
	return g.inner.Max(col).Collect()
}

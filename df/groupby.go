package df

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
)

// GroupBy starts a grouped aggregation, pandas-style:
//
//	out, err := d.GroupBy("dept").Sum("salary")
//
// Unlike SQL, GROUPBY admits independent use; with AsIndex the grouping
// values are elevated to the row labels via an implicit TOLABELS, matching
// pandas' default.
func (d *DataFrame) GroupBy(keys ...string) *GroupedFrame {
	return &GroupedFrame{df: d, keys: keys}
}

// GroupedFrame is a pending grouped aggregation.
type GroupedFrame struct {
	df      *DataFrame
	keys    []string
	asIndex bool
	sorted  bool
}

// AsIndex elevates the group keys to row labels (pandas groupby default).
func (g *GroupedFrame) AsIndex() *GroupedFrame {
	g.asIndex = true
	return g
}

// Sorted declares the input already ordered by the keys, switching the
// engine to a streaming group-by (the Figure 8(b) rewrite).
func (g *GroupedFrame) Sorted() *GroupedFrame {
	g.sorted = true
	return g
}

// Agg computes named aggregates over named columns; each spec is
// (column, aggregate, output name).
func (g *GroupedFrame) Agg(specs ...AggSpec) (*DataFrame, error) {
	aggs := make([]expr.AggSpec, len(specs))
	for i, s := range specs {
		kind, ok := expr.ParseAgg(s.Agg)
		if !ok {
			return nil, fmt.Errorf("df: unknown aggregate %q", s.Agg)
		}
		aggs[i] = expr.AggSpec{Col: s.Col, Agg: kind, As: s.As}
	}
	return g.run(aggs)
}

// AggSpec names one aggregate in GroupedFrame.Agg.
type AggSpec struct {
	// Col is the aggregated column.
	Col string
	// Agg is the aggregate name ("sum", "mean", "count", "size", "min",
	// "max", "std", "var", "median", "first", "last", "nunique",
	// "kurtosis").
	Agg string
	// As optionally names the output column.
	As string
}

// Count counts non-null values of col per group.
func (g *GroupedFrame) Count(col string) (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Col: col, Agg: expr.AggCount, As: col + "_count"}})
}

// Size counts rows per group, nulls included.
func (g *GroupedFrame) Size() (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Agg: expr.AggSize, As: "size"}})
}

// Sum sums col per group.
func (g *GroupedFrame) Sum(col string) (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Col: col, Agg: expr.AggSum, As: col + "_sum"}})
}

// Mean averages col per group.
func (g *GroupedFrame) Mean(col string) (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Col: col, Agg: expr.AggMean, As: col + "_mean"}})
}

// Min takes the per-group minimum of col.
func (g *GroupedFrame) Min(col string) (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Col: col, Agg: expr.AggMin, As: col + "_min"}})
}

// Max takes the per-group maximum of col.
func (g *GroupedFrame) Max(col string) (*DataFrame, error) {
	return g.run([]expr.AggSpec{{Col: col, Agg: expr.AggMax, As: col + "_max"}})
}

func (g *GroupedFrame) run(aggs []expr.AggSpec) (*DataFrame, error) {
	return g.df.run(func(in algebra.Node) algebra.Node {
		return &algebra.GroupBy{Input: in, Spec: expr.GroupBySpec{
			Keys:     g.keys,
			Aggs:     aggs,
			AsLabels: g.asIndex,
			Sorted:   g.sorted,
		}}
	})
}

package df

import (
	"testing"
)

func extrasSample(t *testing.T) *DataFrame {
	t.Helper()
	return MustNew(
		[]string{"name", "team", "score"},
		[][]any{
			{"Ann", "red", 10},
			{"Bob", "blue", 40},
			{"Cat", "red", 30},
			{"Dan", "red", 20},
			{"Eve", "blue", 50},
		},
	)
}

func TestAsType(t *testing.T) {
	d := MustNew([]string{"raw"}, [][]any{{"1"}, {"2"}, {"junk"}})
	cast, err := d.AsType("raw", "int")
	if err != nil {
		t.Fatal(err)
	}
	if cast.Dtypes()["raw"] != "int" {
		t.Error("dtype not cast")
	}
	v, _ := cast.Iloc(0, 0)
	if v.Int() != 1 {
		t.Error("cast value wrong")
	}
	v, _ = cast.Iloc(2, 0)
	if !v.IsNull() {
		t.Error("unparseable should become null")
	}
	if _, err := d.AsType("raw", "vibes"); err == nil {
		t.Error("bad domain should fail")
	}
	if _, err := d.AsType("ghost", "int"); err == nil {
		t.Error("bad column should fail")
	}
}

func TestUniqueAndNUnique(t *testing.T) {
	d := extrasSample(t)
	u, err := d.Unique("team")
	if err != nil || len(u) != 2 || u[0].Str() != "red" {
		t.Errorf("unique = %v, %v", u, err)
	}
	n, err := d.NUnique("team")
	if err != nil || n != 2 {
		t.Error("nunique wrong")
	}
	est, err := d.EstimateDistinct("team")
	if err != nil || est < 1.5 || est > 2.5 {
		t.Errorf("estimated distinct = %v, %v", est, err)
	}
}

func TestValueCounts(t *testing.T) {
	d := extrasSample(t)
	vc, err := d.ValueCounts("team")
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() != 2 {
		t.Fatalf("value counts rows = %d", vc.Len())
	}
	v, _ := vc.Iloc(0, 0)
	c, _ := vc.Iloc(0, 1)
	if v.Str() != "red" || c.Int() != 3 {
		t.Errorf("top value = %v (%v)", v, c)
	}
}

func TestNLargestNSmallest(t *testing.T) {
	d := extrasSample(t)
	top, err := d.NLargest(2, "score")
	if err != nil || top.Len() != 2 {
		t.Fatal(err)
	}
	v, _ := top.Iloc(0, 0)
	if v.Str() != "Eve" {
		t.Errorf("nlargest order wrong:\n%s", top)
	}
	bottom, err := d.NSmallest(2, "score")
	if err != nil {
		t.Fatal(err)
	}
	v, _ = bottom.Iloc(0, 0)
	if v.Str() != "Ann" {
		t.Errorf("nsmallest order wrong:\n%s", bottom)
	}
}

func TestSampleDeterministicSubset(t *testing.T) {
	d := extrasSample(t)
	a, err := d.Sample(3, 7)
	if err != nil || a.Len() != 3 {
		t.Fatal(err)
	}
	b, err := d.Sample(3, 7)
	if err != nil || !a.Equal(b) {
		t.Error("same seed should reproduce the sample")
	}
	// Sample preserves input order among chosen rows.
	prev := int64(-1)
	for i := 0; i < a.Len(); i++ {
		lab := a.Frame().RowLabels().Value(i).Int()
		if lab <= prev {
			t.Error("sample should preserve order")
		}
		prev = lab
	}
	if _, err := d.Sample(99, 1); err == nil {
		t.Error("oversized sample should fail")
	}
}

func TestStrHelpers(t *testing.T) {
	d := MustNew([]string{"s"}, [][]any{{"Hello"}, {"world"}, {nil}})
	up, err := d.StrUpper()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := up.Iloc(0, 0)
	if v.Str() != "HELLO" {
		t.Error("upper wrong")
	}
	low, err := d.StrLower()
	if err != nil {
		t.Fatal(err)
	}
	v, _ = low.Iloc(0, 0)
	if v.Str() != "hello" {
		t.Error("lower wrong")
	}
	has, err := d.StrContains("s", "orl")
	if err != nil || has.Len() != 1 {
		t.Error("contains wrong")
	}
}

func TestWithColumn(t *testing.T) {
	d := extrasSample(t)
	out, err := d.WithColumn("double", func(r Row) Value {
		return Int(r.ByName("score").Int() * 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Columns()) != 4 {
		t.Fatalf("columns = %v", out.Columns())
	}
	v, _ := out.Iloc(1, 3)
	if v.Int() != 80 {
		t.Errorf("computed column wrong: %v", v)
	}
	// Replacing an existing column keeps arity.
	repl, err := out.WithColumn("double", func(r Row) Value { return Int(0) })
	if err != nil || len(repl.Columns()) != 4 {
		t.Error("replace should keep arity")
	}
	v, _ = repl.Iloc(1, 3)
	if v.Int() != 0 {
		t.Error("replace value wrong")
	}
}

func TestFrameAggs(t *testing.T) {
	d := extrasSample(t)
	for name, f := range map[string]func() (*DataFrame, error){
		"sum": d.Sum, "mean": d.Mean, "max": d.Max, "min": d.Min, "count": d.Count,
	} {
		out, err := f()
		if err != nil || out.Len() != 1 {
			t.Errorf("%s: %v", name, err)
		}
	}
	sum, _ := d.Sum()
	v, _ := sum.Iloc(0, 0)
	if v.Float() != 150 {
		t.Errorf("sum = %v", v)
	}
}

// Package partition implements MODIN's flexible partitioning layer (Section
// 3.1): a dataframe decomposed into a grid of blocks under row-based,
// column-based, or block-based partitioning, with cheap movement between
// schemes and the communication-free block transpose of Section 3.1
// ("Supporting billions of columns").
//
// Blocks are held behind exec.Future handles, so a Frame may be *deferred*:
// its blocks still being computed by the task DAG of the physical layer
// (internal/physical). Materialized frames simply hold already-resolved
// futures; accessors that need block data resolve lazily, so a deferred
// frame is only waited on at gather/render time.
package partition

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/vector"
)

// Scheme selects how a dataframe is split into partitions.
type Scheme int

const (
	// Rows partitions into horizontal bands (each partition holds a
	// contiguous run of full rows).
	Rows Scheme = iota
	// Cols partitions into vertical bands (full columns).
	Cols
	// Blocks partitions into a 2-D grid of row×column blocks, the layout
	// that makes TRANSPOSE communication-free.
	Blocks
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Rows:
		return "rows"
	case Cols:
		return "cols"
	case Blocks:
		return "blocks"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Frame is a dataframe decomposed into a grid of blocks. grid[r][c] holds
// the future of the block at row-band r and column-band c; every block in a
// row band shares row labels, and every block in a column band shares
// column labels. Blocks are plain core dataframes, so all algebra kernels
// apply per block.
type Frame struct {
	grid [][]*exec.Future // each resolves to *core.DataFrame
	// stats optionally summarizes the whole frame (all bands together):
	// collected at scan boundaries, merged at exchanges, consumed by the
	// physical planner's strategy decisions. Nil means "no statistics" —
	// every consumer must degrade to its zero-stats fallback.
	stats *stats.Table
	// transient marks a single-consumer frame (a streaming scan's bands):
	// the one stage that reads a block may ReleaseBand it afterwards so the
	// band's cells do not stay resident for the life of the query.
	transient bool
	// Release notification: relCh[r] closes when band r is released, and
	// releasing records that the consumer promised to release EVERY routed
	// band. Together they let the producer of a streamed frame hold its
	// parse-ahead window against band release (parsed AND routed AND
	// spilled) instead of mere band resolution — without the stronger
	// signal, a consumer slower than the parser accumulates resolved bands
	// without bound.
	relMu     sync.Mutex
	relCh     map[int]chan struct{}
	releasing bool
}

// MarkTransient flags the frame as single-consumer: its blocks may be
// released (ReleaseBand) by the one stage that consumes them. Returns f for
// chaining.
func (f *Frame) MarkTransient() *Frame {
	f.transient = true
	return f
}

// Transient reports whether the frame's blocks may be released after their
// single consumer has read them.
func (f *Frame) Transient() bool { return f.transient }

// ReleaseBand drops the resolved block values of row band r (exec.Future
// Forget), freeing the band's cells once its consumer is done with them.
// Errors are retained so late waiters still observe failure. Only
// meaningful on transient frames; callers promise no later task reads the
// band.
func (f *Frame) ReleaseBand(r int) {
	for _, fut := range f.grid[r] {
		fut.Forget()
	}
	f.relMu.Lock()
	ch := f.relChLocked(r)
	select {
	case <-ch:
	default:
		close(ch)
	}
	f.relMu.Unlock()
}

// MarkReleasing records the consumer's promise to ReleaseBand every band it
// routes. The stream producer keys its backpressure signal off this: only a
// consumer that releases can be waited on without deadlock.
func (f *Frame) MarkReleasing() {
	f.relMu.Lock()
	f.releasing = true
	f.relMu.Unlock()
}

// Releasing reports whether a consumer has promised to release every band.
func (f *Frame) Releasing() bool {
	f.relMu.Lock()
	defer f.relMu.Unlock()
	return f.releasing
}

// BandReleased returns a channel closed when band r is released. Wait on it
// only when Releasing() — otherwise no release may ever come.
func (f *Frame) BandReleased(r int) <-chan struct{} {
	f.relMu.Lock()
	defer f.relMu.Unlock()
	return f.relChLocked(r)
}

func (f *Frame) relChLocked(r int) chan struct{} {
	if f.relCh == nil {
		f.relCh = make(map[int]chan struct{})
	}
	ch, ok := f.relCh[r]
	if !ok {
		ch = make(chan struct{})
		f.relCh[r] = ch
	}
	return ch
}

// Stats returns the frame's statistics table, or nil when none were
// collected.
func (f *Frame) Stats() *stats.Table { return f.stats }

// SetStats attaches a statistics table describing the whole frame and
// returns f for chaining.
func (f *Frame) SetStats(t *stats.Table) *Frame {
	f.stats = t
	return f
}

// MergeStats combines the statistics of two frames meeting at an exchange:
// the union's table when both sides carry one, nil otherwise (a one-sided
// table would misstate the union).
func MergeStats(a, b *Frame) *stats.Table {
	if a.stats == nil || b.stats == nil {
		return nil
	}
	merged := a.stats.Clone()
	if err := merged.Merge(b.stats); err != nil {
		return nil
	}
	return merged
}

// New partitions df under the given scheme, splitting so that roughly
// targetBands partitions exist along each partitioned axis (typically the
// worker count).
func New(df *core.DataFrame, scheme Scheme, targetBands int) *Frame {
	if targetBands <= 0 {
		targetBands = 1
	}
	rowBands, colBands := 1, 1
	switch scheme {
	case Rows:
		rowBands = bandCount(df.NRows(), targetBands)
	case Cols:
		colBands = bandCount(df.NCols(), targetBands)
	case Blocks:
		rowBands = bandCount(df.NRows(), targetBands)
		colBands = bandCount(df.NCols(), targetBands)
	}
	rowCuts := cuts(df.NRows(), rowBands)
	colCuts := cuts(df.NCols(), colBands)

	grid := make([][]*exec.Future, len(rowCuts)-1)
	for r := range grid {
		band := df.SliceRows(rowCuts[r], rowCuts[r+1])
		grid[r] = make([]*exec.Future, len(colCuts)-1)
		for c := range grid[r] {
			idx := make([]int, 0, colCuts[c+1]-colCuts[c])
			for j := colCuts[c]; j < colCuts[c+1]; j++ {
				idx = append(idx, j)
			}
			grid[r][c] = exec.Resolved(band.SelectCols(idx))
		}
	}
	return &Frame{grid: grid}
}

// FromGrid wraps an existing materialized block grid. Every row band must
// have the same number of column bands, blocks in a row band the same row
// count, and blocks in a column band the same column count.
func FromGrid(grid [][]*core.DataFrame) (*Frame, error) {
	if len(grid) == 0 {
		return &Frame{grid: [][]*exec.Future{{exec.Resolved(core.Empty())}}}, nil
	}
	width := len(grid[0])
	out := make([][]*exec.Future, len(grid))
	for r, band := range grid {
		if len(band) != width {
			return nil, fmt.Errorf("partition: row band %d has %d blocks, want %d", r, len(band), width)
		}
		out[r] = make([]*exec.Future, width)
		for c, blk := range band {
			if blk.NRows() != band[0].NRows() {
				return nil, fmt.Errorf("partition: block (%d,%d) has %d rows, band has %d", r, c, blk.NRows(), band[0].NRows())
			}
			if blk.NCols() != grid[0][c].NCols() {
				return nil, fmt.Errorf("partition: block (%d,%d) has %d cols, column band has %d", r, c, blk.NCols(), grid[0][c].NCols())
			}
			out[r][c] = exec.Resolved(blk)
		}
	}
	return &Frame{grid: out}, nil
}

// Deferred wraps a grid of in-flight block futures (each resolving to a
// *core.DataFrame). Shape invariants cannot be checked until the blocks
// exist; Resolve (or any gathering accessor) validates and surfaces task
// errors.
func Deferred(grid [][]*exec.Future) (*Frame, error) {
	if len(grid) == 0 {
		return &Frame{grid: [][]*exec.Future{{exec.Resolved(core.Empty())}}}, nil
	}
	width := len(grid[0])
	for r, band := range grid {
		if len(band) != width {
			return nil, fmt.Errorf("partition: row band %d has %d blocks, want %d", r, len(band), width)
		}
	}
	return &Frame{grid: grid}, nil
}

func bandCount(n, target int) int {
	if n <= 0 {
		return 1
	}
	if target > n {
		target = n
	}
	if target < 1 {
		target = 1
	}
	return target
}

// cuts returns band boundaries splitting n items into bands roughly-equal
// parts.
func cuts(n, bands int) []int {
	out := make([]int, bands+1)
	for i := 0; i <= bands; i++ {
		out[i] = i * n / bands
	}
	return out
}

// RowBands returns the number of row bands.
func (f *Frame) RowBands() int { return len(f.grid) }

// ColBands returns the number of column bands.
func (f *Frame) ColBands() int {
	if len(f.grid) == 0 {
		return 0
	}
	return len(f.grid[0])
}

// BlockFuture returns the future handle of the block at (r, c) without
// resolving it. The physical scheduler chains downstream task dependencies
// on these handles.
func (f *Frame) BlockFuture(r, c int) *exec.Future { return f.grid[r][c] }

// BlockErr resolves the block at row band r, column band c, waiting if the
// block is still being computed.
func (f *Frame) BlockErr(r, c int) (*core.DataFrame, error) {
	v, err := f.grid[r][c].Wait()
	if err != nil {
		return nil, err
	}
	df, ok := v.(*core.DataFrame)
	if !ok || df == nil {
		return nil, fmt.Errorf("partition: block (%d,%d) task returned %T, want *core.DataFrame", r, c, v)
	}
	return df, nil
}

// Block resolves the block at (r, c), waiting if needed; a failed block
// resolves to an empty frame (use BlockErr to observe task errors).
func (f *Frame) Block(r, c int) *core.DataFrame {
	df, err := f.BlockErr(r, c)
	if err != nil {
		return core.Empty()
	}
	return df
}

// Ready reports whether every block has finished computing.
func (f *Frame) Ready() bool {
	for _, band := range f.grid {
		for _, fut := range band {
			if !fut.Ready() {
				return false
			}
		}
	}
	return true
}

// Resolve waits for every block and validates the frame's shape invariants,
// returning the first task or shape error. After a nil return, all block
// accessors are non-blocking.
func (f *Frame) Resolve() error {
	for r := range f.grid {
		for c := range f.grid[r] {
			blk, err := f.BlockErr(r, c)
			if err != nil {
				return err
			}
			first, err := f.BlockErr(r, 0)
			if err != nil {
				return err
			}
			if blk.NRows() != first.NRows() {
				return fmt.Errorf("partition: block (%d,%d) has %d rows, band has %d", r, c, blk.NRows(), first.NRows())
			}
			top, err := f.BlockErr(0, c)
			if err != nil {
				return err
			}
			if blk.NCols() != top.NCols() {
				return fmt.Errorf("partition: block (%d,%d) has %d cols, column band has %d", r, c, blk.NCols(), top.NCols())
			}
		}
	}
	return nil
}

// NRows returns the total row count, resolving the first column of blocks.
// Like Block, this is a display-path accessor: a failed block counts as
// empty. Use Resolve (or ToFrame) first when task errors must surface.
func (f *Frame) NRows() int {
	n := 0
	for r := range f.grid {
		n += f.Block(r, 0).NRows()
	}
	return n
}

// NCols returns the total column count, resolving the first row of blocks,
// with the same failed-block degradation as NRows.
func (f *Frame) NCols() int {
	if len(f.grid) == 0 {
		return 0
	}
	n := 0
	for c := range f.grid[0] {
		n += f.Block(0, c).NCols()
	}
	return n
}

// HStack combines frames holding the same rows into one wider frame: column
// vectors, labels, and domains concatenate; row labels come from the first.
func HStack(frames ...*core.DataFrame) (*core.DataFrame, error) {
	if len(frames) == 0 {
		return core.Empty(), nil
	}
	if len(frames) == 1 {
		return frames[0], nil
	}
	var cols []vector.Vector
	var labels []types.Value
	var doms []types.Domain
	for _, fr := range frames {
		if fr.NRows() != frames[0].NRows() {
			return nil, fmt.Errorf("partition: hstack row mismatch: %d vs %d", fr.NRows(), frames[0].NRows())
		}
		cols = append(cols, fr.Columns()...)
		labels = append(labels, fr.ColLabels()...)
		doms = append(doms, fr.Domains()...)
	}
	return core.Build(cols, frames[0].RowLabels(), labels, doms, frames[0].Cache())
}

// RowBand gathers row band r into a single full-width frame, resolving its
// blocks.
func (f *Frame) RowBand(r int) (*core.DataFrame, error) {
	blocks := make([]*core.DataFrame, len(f.grid[r]))
	for c := range f.grid[r] {
		blk, err := f.BlockErr(r, c)
		if err != nil {
			return nil, err
		}
		blocks[c] = blk
	}
	return HStack(blocks...)
}

// ToFrame gathers every block back into one dataframe in order, waiting for
// any still-computing blocks. Bands stack positionally: gathering never
// realigns columns by label, so transposed frames with numeric or duplicate
// labels reassemble exactly.
func (f *Frame) ToFrame() (*core.DataFrame, error) {
	bands := make([]*core.DataFrame, f.RowBands())
	for r := range f.grid {
		b, err := f.RowBand(r)
		if err != nil {
			return nil, err
		}
		bands[r] = b
	}
	return algebra.VStackFrames(bands...)
}

// MapBlocks applies fn to every block in parallel and waits for all,
// producing a materialized frame with the same grid shape. fn must be
// shape-compatible within bands (same row count across a row band, same
// column count across a column band). See MapBlocksAsync for the
// non-blocking variant.
func (f *Frame) MapBlocks(pool *exec.Pool, fn func(*core.DataFrame) (*core.DataFrame, error)) (*Frame, error) {
	rb, cb := f.RowBands(), f.ColBands()
	out := make([][]*core.DataFrame, rb)
	for r := range out {
		out[r] = make([]*core.DataFrame, cb)
	}
	err := pool.ForEach(rb*cb, func(i int) error {
		r, c := i/cb, i%cb
		in, err := f.BlockErr(r, c)
		if err != nil {
			return err
		}
		blk, err := fn(in)
		if err != nil {
			return err
		}
		out[r][c] = blk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return FromGrid(out)
}

// MapBlocksAsync schedules fn over every block as one task per block,
// chained on the block's future, and returns the deferred result frame
// immediately. Errors surface when the result is resolved; a failing block
// cancels the group's remaining tasks.
func (f *Frame) MapBlocksAsync(pool *exec.Pool, g *exec.Group, fn func(*core.DataFrame) (*core.DataFrame, error)) *Frame {
	rb, cb := f.RowBands(), f.ColBands()
	out := make([][]*exec.Future, rb)
	for r := range out {
		out[r] = make([]*exec.Future, cb)
		for c := range out[r] {
			r, c := r, c
			in := f.grid[r][c]
			out[r][c] = pool.SubmitIn(g, func() (any, error) {
				blk, err := f.BlockErr(r, c)
				if err != nil {
					return nil, err
				}
				return fn(blk)
			}, in)
		}
	}
	return &Frame{grid: out}
}

// MapRowBands gathers each row band to full width, applies fn to the bands
// in parallel, and waits for all. Band results may change row counts
// (selection) but must agree on columns. The result is row-partitioned.
func (f *Frame) MapRowBands(pool *exec.Pool, fn func(band *core.DataFrame) (*core.DataFrame, error)) (*Frame, error) {
	rb := f.RowBands()
	out := make([][]*core.DataFrame, rb)
	err := pool.ForEach(rb, func(r int) error {
		band, err := f.RowBand(r)
		if err != nil {
			return err
		}
		res, err := fn(band)
		if err != nil {
			return err
		}
		out[r] = []*core.DataFrame{res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := 1; r < rb; r++ {
		if out[r][0].NCols() != out[0][0].NCols() {
			return nil, fmt.Errorf("partition: row-band map changed arity: band %d has %d cols, band 0 has %d", r, out[r][0].NCols(), out[0][0].NCols())
		}
	}
	return FromGrid(out)
}

// Transpose performs MODIN's communication-free transpose (Section 3.1):
// each block is transposed independently in parallel, and the grid metadata
// swaps block coordinates. No data moves between partitions.
func (f *Frame) Transpose(pool *exec.Pool, declared []types.Domain) (*Frame, error) {
	rb, cb := f.RowBands(), f.ColBands()
	out := make([][]*core.DataFrame, cb)
	for c := range out {
		out[c] = make([]*core.DataFrame, rb)
	}
	err := pool.ForEach(rb*cb, func(i int) error {
		r, c := i/cb, i%cb
		blk, err := f.BlockErr(r, c)
		if err != nil {
			return err
		}
		t, err := algebra.TransposeFrame(blk, nil)
		if err != nil {
			return err
		}
		out[c][r] = t // metadata swap: block (r,c) lands at (c,r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pf, err := FromGrid(out)
	if err != nil {
		return nil, err
	}
	if declared != nil {
		// A declared schema applies to the gathered result's columns;
		// blocks keep lazily-induced domains and the declaration is
		// honored on gather by the caller.
		return pf, nil
	}
	return pf, nil
}

// Repartition re-splits the gathered frame under a new scheme.
func (f *Frame) Repartition(scheme Scheme, targetBands int) (*Frame, error) {
	df, err := f.ToFrame()
	if err != nil {
		return nil, err
	}
	return New(df, scheme, targetBands), nil
}

// SplitRows routes df's rows into buckets per the selection vector assign
// (assign[i] names row i's bucket), preserving input order within each
// bucket. Bucket frames are zero-copy views over df's column storage
// (vector.TakeView): the shuffle partition phase routes rows between bands
// without copying cells — only the per-bucket index vectors are allocated.
// Buckets receiving no rows come back as empty frames that keep df's
// columns, so downstream merges see a uniform arity.
func SplitRows(df *core.DataFrame, assign []int, buckets int) ([]*core.DataFrame, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("partition: split into %d buckets", buckets)
	}
	if len(assign) != df.NRows() {
		return nil, fmt.Errorf("partition: %d bucket assignments for %d rows", len(assign), df.NRows())
	}
	counts := make([]int, buckets)
	for i, b := range assign {
		if b < 0 || b >= buckets {
			return nil, fmt.Errorf("partition: row %d assigned to bucket %d of %d", i, b, buckets)
		}
		counts[b]++
	}
	idx := make([][]int, buckets)
	backing := make([]int, len(assign))
	for b := range idx {
		idx[b] = backing[:0:counts[b]]
		backing = backing[counts[b]:]
	}
	for i, b := range assign {
		idx[b] = append(idx[b], i)
	}
	domains := append([]types.Domain(nil), df.Domains()...)
	out := make([]*core.DataFrame, buckets)
	for b := range out {
		cols := make([]vector.Vector, df.NCols())
		for j := range cols {
			cols[j] = vector.TakeView(df.Col(j), idx[b])
		}
		f, err := core.Build(cols, vector.TakeView(df.RowLabels(), idx[b]),
			df.ColLabels(), append([]types.Domain(nil), domains...), df.Cache())
		if err != nil {
			return nil, err
		}
		out[b] = f
	}
	return out, nil
}

// EnsureSingleColBand returns a frame whose row bands are full width,
// hstacking column bands when needed (used before row-wise UDFs).
func (f *Frame) EnsureSingleColBand() (*Frame, error) {
	if f.ColBands() <= 1 {
		return f, nil
	}
	out := make([][]*core.DataFrame, f.RowBands())
	for r := range f.grid {
		band, err := f.RowBand(r)
		if err != nil {
			return nil, err
		}
		out[r] = []*core.DataFrame{band}
	}
	return FromGrid(out)
}

// Package partition implements MODIN's flexible partitioning layer (Section
// 3.1): a dataframe decomposed into a grid of blocks under row-based,
// column-based, or block-based partitioning, with cheap movement between
// schemes and the communication-free block transpose of Section 3.1
// ("Supporting billions of columns").
package partition

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/types"
	"repro/internal/vector"
)

// Scheme selects how a dataframe is split into partitions.
type Scheme int

const (
	// Rows partitions into horizontal bands (each partition holds a
	// contiguous run of full rows).
	Rows Scheme = iota
	// Cols partitions into vertical bands (full columns).
	Cols
	// Blocks partitions into a 2-D grid of row×column blocks, the layout
	// that makes TRANSPOSE communication-free.
	Blocks
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Rows:
		return "rows"
	case Cols:
		return "cols"
	case Blocks:
		return "blocks"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Frame is a dataframe decomposed into a grid of blocks. grid[r][c] holds
// the block at row-band r and column-band c; every block in a row band
// shares row labels, and every block in a column band shares column labels.
// Blocks are plain core dataframes, so all algebra kernels apply per block.
type Frame struct {
	grid [][]*core.DataFrame
}

// New partitions df under the given scheme, splitting so that roughly
// targetBands partitions exist along each partitioned axis (typically the
// worker count).
func New(df *core.DataFrame, scheme Scheme, targetBands int) *Frame {
	if targetBands <= 0 {
		targetBands = 1
	}
	rowBands, colBands := 1, 1
	switch scheme {
	case Rows:
		rowBands = bandCount(df.NRows(), targetBands)
	case Cols:
		colBands = bandCount(df.NCols(), targetBands)
	case Blocks:
		rowBands = bandCount(df.NRows(), targetBands)
		colBands = bandCount(df.NCols(), targetBands)
	}
	rowCuts := cuts(df.NRows(), rowBands)
	colCuts := cuts(df.NCols(), colBands)

	grid := make([][]*core.DataFrame, len(rowCuts)-1)
	for r := range grid {
		band := df.SliceRows(rowCuts[r], rowCuts[r+1])
		grid[r] = make([]*core.DataFrame, len(colCuts)-1)
		for c := range grid[r] {
			idx := make([]int, 0, colCuts[c+1]-colCuts[c])
			for j := colCuts[c]; j < colCuts[c+1]; j++ {
				idx = append(idx, j)
			}
			grid[r][c] = band.SelectCols(idx)
		}
	}
	return &Frame{grid: grid}
}

// FromGrid wraps an existing block grid. Every row band must have the same
// number of column bands, blocks in a row band the same row count, and
// blocks in a column band the same column count.
func FromGrid(grid [][]*core.DataFrame) (*Frame, error) {
	if len(grid) == 0 {
		return &Frame{grid: [][]*core.DataFrame{{core.Empty()}}}, nil
	}
	width := len(grid[0])
	for r, band := range grid {
		if len(band) != width {
			return nil, fmt.Errorf("partition: row band %d has %d blocks, want %d", r, len(band), width)
		}
		for c, blk := range band {
			if blk.NRows() != band[0].NRows() {
				return nil, fmt.Errorf("partition: block (%d,%d) has %d rows, band has %d", r, c, blk.NRows(), band[0].NRows())
			}
			if blk.NCols() != grid[0][c].NCols() {
				return nil, fmt.Errorf("partition: block (%d,%d) has %d cols, column band has %d", r, c, blk.NCols(), grid[0][c].NCols())
			}
		}
	}
	return &Frame{grid: grid}, nil
}

func bandCount(n, target int) int {
	if n <= 0 {
		return 1
	}
	if target > n {
		target = n
	}
	if target < 1 {
		target = 1
	}
	return target
}

// cuts returns band boundaries splitting n items into bands roughly-equal
// parts.
func cuts(n, bands int) []int {
	out := make([]int, bands+1)
	for i := 0; i <= bands; i++ {
		out[i] = i * n / bands
	}
	return out
}

// RowBands returns the number of row bands.
func (f *Frame) RowBands() int { return len(f.grid) }

// ColBands returns the number of column bands.
func (f *Frame) ColBands() int {
	if len(f.grid) == 0 {
		return 0
	}
	return len(f.grid[0])
}

// Block returns the block at row band r, column band c.
func (f *Frame) Block(r, c int) *core.DataFrame { return f.grid[r][c] }

// NRows returns the total row count.
func (f *Frame) NRows() int {
	n := 0
	for r := range f.grid {
		n += f.grid[r][0].NRows()
	}
	return n
}

// NCols returns the total column count.
func (f *Frame) NCols() int {
	if len(f.grid) == 0 {
		return 0
	}
	n := 0
	for _, blk := range f.grid[0] {
		n += blk.NCols()
	}
	return n
}

// HStack combines frames holding the same rows into one wider frame: column
// vectors, labels, and domains concatenate; row labels come from the first.
func HStack(frames ...*core.DataFrame) (*core.DataFrame, error) {
	if len(frames) == 0 {
		return core.Empty(), nil
	}
	if len(frames) == 1 {
		return frames[0], nil
	}
	var cols []vector.Vector
	var labels []types.Value
	var doms []types.Domain
	for _, fr := range frames {
		if fr.NRows() != frames[0].NRows() {
			return nil, fmt.Errorf("partition: hstack row mismatch: %d vs %d", fr.NRows(), frames[0].NRows())
		}
		cols = append(cols, fr.Columns()...)
		labels = append(labels, fr.ColLabels()...)
		doms = append(doms, fr.Domains()...)
	}
	return core.Build(cols, frames[0].RowLabels(), labels, doms, frames[0].Cache())
}

// RowBand gathers row band r into a single full-width frame.
func (f *Frame) RowBand(r int) (*core.DataFrame, error) { return HStack(f.grid[r]...) }

// ToFrame gathers every block back into one dataframe in order. Bands stack
// positionally: gathering never realigns columns by label, so transposed
// frames with numeric or duplicate labels reassemble exactly.
func (f *Frame) ToFrame() (*core.DataFrame, error) {
	bands := make([]*core.DataFrame, f.RowBands())
	for r := range f.grid {
		b, err := f.RowBand(r)
		if err != nil {
			return nil, err
		}
		bands[r] = b
	}
	return algebra.VStackFrames(bands...)
}

// MapBlocks applies fn to every block in parallel, producing a new frame
// with the same grid shape. fn must be shape-compatible within bands (same
// row count across a row band, same column count across a column band).
func (f *Frame) MapBlocks(pool *exec.Pool, fn func(*core.DataFrame) (*core.DataFrame, error)) (*Frame, error) {
	rb, cb := f.RowBands(), f.ColBands()
	out := make([][]*core.DataFrame, rb)
	for r := range out {
		out[r] = make([]*core.DataFrame, cb)
	}
	err := pool.ForEach(rb*cb, func(i int) error {
		r, c := i/cb, i%cb
		blk, err := fn(f.grid[r][c])
		if err != nil {
			return err
		}
		out[r][c] = blk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return FromGrid(out)
}

// MapRowBands gathers each row band to full width and applies fn to the
// bands in parallel. Band results may change row counts (selection) but
// must agree on columns. The result is row-partitioned.
func (f *Frame) MapRowBands(pool *exec.Pool, fn func(band *core.DataFrame) (*core.DataFrame, error)) (*Frame, error) {
	rb := f.RowBands()
	out := make([][]*core.DataFrame, rb)
	err := pool.ForEach(rb, func(r int) error {
		band, err := f.RowBand(r)
		if err != nil {
			return err
		}
		res, err := fn(band)
		if err != nil {
			return err
		}
		out[r] = []*core.DataFrame{res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := 1; r < rb; r++ {
		if out[r][0].NCols() != out[0][0].NCols() {
			return nil, fmt.Errorf("partition: row-band map changed arity: band %d has %d cols, band 0 has %d", r, out[r][0].NCols(), out[0][0].NCols())
		}
	}
	return FromGrid(out)
}

// Transpose performs MODIN's communication-free transpose (Section 3.1):
// each block is transposed independently in parallel, and the grid metadata
// swaps block coordinates. No data moves between partitions.
func (f *Frame) Transpose(pool *exec.Pool, declared []types.Domain) (*Frame, error) {
	rb, cb := f.RowBands(), f.ColBands()
	out := make([][]*core.DataFrame, cb)
	for c := range out {
		out[c] = make([]*core.DataFrame, rb)
	}
	err := pool.ForEach(rb*cb, func(i int) error {
		r, c := i/cb, i%cb
		t, err := algebra.TransposeFrame(f.grid[r][c], nil)
		if err != nil {
			return err
		}
		out[c][r] = t // metadata swap: block (r,c) lands at (c,r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pf, err := FromGrid(out)
	if err != nil {
		return nil, err
	}
	if declared != nil {
		// A declared schema applies to the gathered result's columns;
		// blocks keep lazily-induced domains and the declaration is
		// honored on gather by the caller.
		return pf, nil
	}
	return pf, nil
}

// Repartition re-splits the gathered frame under a new scheme.
func (f *Frame) Repartition(scheme Scheme, targetBands int) (*Frame, error) {
	df, err := f.ToFrame()
	if err != nil {
		return nil, err
	}
	return New(df, scheme, targetBands), nil
}

// EnsureSingleColBand returns a frame whose row bands are full width,
// hstacking column bands when needed (used before row-wise UDFs).
func (f *Frame) EnsureSingleColBand() (*Frame, error) {
	if f.ColBands() <= 1 {
		return f, nil
	}
	out := make([][]*core.DataFrame, f.RowBands())
	for r := range f.grid {
		band, err := f.RowBand(r)
		if err != nil {
			return nil, err
		}
		out[r] = []*core.DataFrame{band}
	}
	return FromGrid(out)
}

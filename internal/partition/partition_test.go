package partition

import (
	"testing"

	"fmt"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"

	"repro/internal/types"
	"repro/internal/vector"
)

func frame(t *testing.T, rows, cols int) *core.DataFrame {
	t.Helper()
	names := make([]string, cols)
	records := make([][]any, rows)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	for i := range records {
		rec := make([]any, cols)
		for j := range rec {
			rec[j] = i*cols + j
		}
		records[i] = rec
	}
	return core.MustFromRecords(names, records)
}

func TestSchemes(t *testing.T) {
	df := frame(t, 20, 6)
	rows := New(df, Rows, 4)
	if rows.RowBands() != 4 || rows.ColBands() != 1 {
		t.Errorf("rows scheme = %dx%d bands", rows.RowBands(), rows.ColBands())
	}
	cols := New(df, Cols, 3)
	if cols.RowBands() != 1 || cols.ColBands() != 3 {
		t.Errorf("cols scheme = %dx%d bands", cols.RowBands(), cols.ColBands())
	}
	blocks := New(df, Blocks, 3)
	if blocks.RowBands() != 3 || blocks.ColBands() != 3 {
		t.Errorf("blocks scheme = %dx%d bands", blocks.RowBands(), blocks.ColBands())
	}
	if rows.NRows() != 20 || rows.NCols() != 6 {
		t.Error("shape wrong")
	}
	for _, s := range []Scheme{Rows, Cols, Blocks, Scheme(9)} {
		if s.String() == "" {
			t.Error("scheme name empty")
		}
	}
}

func TestGatherRoundTrip(t *testing.T) {
	df := frame(t, 33, 5)
	for _, scheme := range []Scheme{Rows, Cols, Blocks} {
		pf := New(df, scheme, 4)
		back, err := pf.ToFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(df) {
			t.Errorf("scheme %v round trip failed", scheme)
		}
	}
}

func TestMoreBandsThanRowsClamps(t *testing.T) {
	df := frame(t, 2, 2)
	pf := New(df, Rows, 16)
	if pf.RowBands() > 2 {
		t.Errorf("bands = %d for 2 rows", pf.RowBands())
	}
	back, err := pf.ToFrame()
	if err != nil || !back.Equal(df) {
		t.Error("tiny frame round trip failed")
	}
}

func TestMapBlocks(t *testing.T) {
	df := frame(t, 16, 4)
	pf := New(df, Blocks, 2)
	pool := exec.NewPool(2)
	defer pool.Close()
	out, err := pf.MapBlocks(pool, func(blk *core.DataFrame) (*core.DataFrame, error) {
		return algebra.MapFrame(blk, algebra.IsNullFn())
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 16 || got.Value(0, 0).Bool() {
		t.Error("mapblocks wrong")
	}
}

func TestMapRowBandsSelection(t *testing.T) {
	df := frame(t, 30, 3)
	pf := New(df, Rows, 5)
	pool := exec.NewPool(4)
	defer pool.Close()
	out, err := pf.MapRowBands(pool, func(band *core.DataFrame) (*core.DataFrame, error) {
		return algebra.SelectRows(band, func(r expr.Row) bool { return r.Value(0).Int()%2 == 0 }), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 15 {
		t.Errorf("rows = %d", got.NRows())
	}
}

func TestBlockTransposeMatchesKernel(t *testing.T) {
	df := frame(t, 12, 7)
	pool := exec.NewPool(4)
	defer pool.Close()
	pf := New(df, Blocks, 3)
	tp, err := pf.Transpose(pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("block transpose != kernel transpose:\n%s\nvs\n%s", got, want)
	}
	// Grid shape swaps.
	if tp.RowBands() != pf.ColBands() || tp.ColBands() != pf.RowBands() {
		t.Error("grid metadata should swap")
	}
}

func TestHStackMismatch(t *testing.T) {
	a := frame(t, 3, 2)
	b := frame(t, 4, 2)
	if _, err := HStack(a, b); err == nil {
		t.Error("row mismatch should fail")
	}
	single, err := HStack(a)
	if err != nil || single != a {
		t.Error("single hstack should pass through")
	}
	empty, err := HStack()
	if err != nil || empty.NRows() != 0 {
		t.Error("empty hstack wrong")
	}
}

func TestFromGridValidation(t *testing.T) {
	a := frame(t, 3, 2)
	if _, err := FromGrid([][]*core.DataFrame{{a}, {a, a}}); err == nil {
		t.Error("ragged grid should fail")
	}
	if _, err := FromGrid([][]*core.DataFrame{{a, frame(t, 4, 2)}}); err == nil {
		t.Error("row-count mismatch in band should fail")
	}
	empty, err := FromGrid(nil)
	if err != nil || empty.NRows() != 0 {
		t.Error("empty grid should wrap Empty frame")
	}
}

func TestRepartitionAndEnsureSingle(t *testing.T) {
	df := frame(t, 24, 6)
	pf := New(df, Blocks, 3)
	rows, err := pf.Repartition(Rows, 4)
	if err != nil || rows.ColBands() != 1 || rows.RowBands() != 4 {
		t.Error("repartition wrong")
	}
	single, err := pf.EnsureSingleColBand()
	if err != nil || single.ColBands() != 1 {
		t.Error("ensure single col band wrong")
	}
	got, err := single.ToFrame()
	if err != nil || !got.Equal(df) {
		t.Error("ensure single round trip failed")
	}
	// Already single: identity.
	same, err := single.EnsureSingleColBand()
	if err != nil || same != single {
		t.Error("already-single should pass through")
	}
}

func TestRowBandLabelsPreserved(t *testing.T) {
	df := frame(t, 10, 2)
	labels := make([]types.Value, 10)
	for i := range labels {
		labels[i] = types.String(fmt.Sprintf("L%d", i))
	}
	relabeled, err := df.WithRowLabels(vector.FromValues(types.Object, labels))
	if err != nil {
		t.Fatal(err)
	}
	pf := New(relabeled, Rows, 3)
	back, err := pf.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if back.RowLabels().Value(9).Str() != "L9" {
		t.Error("labels should survive partitioning")
	}
}

package partition

import (
	"testing"

	"fmt"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"

	"repro/internal/types"
	"repro/internal/vector"
)

func frame(t *testing.T, rows, cols int) *core.DataFrame {
	t.Helper()
	names := make([]string, cols)
	records := make([][]any, rows)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	for i := range records {
		rec := make([]any, cols)
		for j := range rec {
			rec[j] = i*cols + j
		}
		records[i] = rec
	}
	return core.MustFromRecords(names, records)
}

func TestSchemes(t *testing.T) {
	df := frame(t, 20, 6)
	rows := New(df, Rows, 4)
	if rows.RowBands() != 4 || rows.ColBands() != 1 {
		t.Errorf("rows scheme = %dx%d bands", rows.RowBands(), rows.ColBands())
	}
	cols := New(df, Cols, 3)
	if cols.RowBands() != 1 || cols.ColBands() != 3 {
		t.Errorf("cols scheme = %dx%d bands", cols.RowBands(), cols.ColBands())
	}
	blocks := New(df, Blocks, 3)
	if blocks.RowBands() != 3 || blocks.ColBands() != 3 {
		t.Errorf("blocks scheme = %dx%d bands", blocks.RowBands(), blocks.ColBands())
	}
	if rows.NRows() != 20 || rows.NCols() != 6 {
		t.Error("shape wrong")
	}
	for _, s := range []Scheme{Rows, Cols, Blocks, Scheme(9)} {
		if s.String() == "" {
			t.Error("scheme name empty")
		}
	}
}

func TestGatherRoundTrip(t *testing.T) {
	df := frame(t, 33, 5)
	for _, scheme := range []Scheme{Rows, Cols, Blocks} {
		pf := New(df, scheme, 4)
		back, err := pf.ToFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(df) {
			t.Errorf("scheme %v round trip failed", scheme)
		}
	}
}

func TestMoreBandsThanRowsClamps(t *testing.T) {
	df := frame(t, 2, 2)
	pf := New(df, Rows, 16)
	if pf.RowBands() > 2 {
		t.Errorf("bands = %d for 2 rows", pf.RowBands())
	}
	back, err := pf.ToFrame()
	if err != nil || !back.Equal(df) {
		t.Error("tiny frame round trip failed")
	}
}

func TestMapBlocks(t *testing.T) {
	df := frame(t, 16, 4)
	pf := New(df, Blocks, 2)
	pool := exec.NewPool(2)
	defer pool.Close()
	out, err := pf.MapBlocks(pool, func(blk *core.DataFrame) (*core.DataFrame, error) {
		return algebra.MapFrame(blk, algebra.IsNullFn())
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 16 || got.Value(0, 0).Bool() {
		t.Error("mapblocks wrong")
	}
}

func TestMapRowBandsSelection(t *testing.T) {
	df := frame(t, 30, 3)
	pf := New(df, Rows, 5)
	pool := exec.NewPool(4)
	defer pool.Close()
	out, err := pf.MapRowBands(pool, func(band *core.DataFrame) (*core.DataFrame, error) {
		return algebra.SelectRows(band, func(r expr.Row) bool { return r.Value(0).Int()%2 == 0 }), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 15 {
		t.Errorf("rows = %d", got.NRows())
	}
}

func TestBlockTransposeMatchesKernel(t *testing.T) {
	df := frame(t, 12, 7)
	pool := exec.NewPool(4)
	defer pool.Close()
	pf := New(df, Blocks, 3)
	tp, err := pf.Transpose(pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("block transpose != kernel transpose:\n%s\nvs\n%s", got, want)
	}
	// Grid shape swaps.
	if tp.RowBands() != pf.ColBands() || tp.ColBands() != pf.RowBands() {
		t.Error("grid metadata should swap")
	}
}

func TestHStackMismatch(t *testing.T) {
	a := frame(t, 3, 2)
	b := frame(t, 4, 2)
	if _, err := HStack(a, b); err == nil {
		t.Error("row mismatch should fail")
	}
	single, err := HStack(a)
	if err != nil || single != a {
		t.Error("single hstack should pass through")
	}
	empty, err := HStack()
	if err != nil || empty.NRows() != 0 {
		t.Error("empty hstack wrong")
	}
}

func TestFromGridValidation(t *testing.T) {
	a := frame(t, 3, 2)
	if _, err := FromGrid([][]*core.DataFrame{{a}, {a, a}}); err == nil {
		t.Error("ragged grid should fail")
	}
	if _, err := FromGrid([][]*core.DataFrame{{a, frame(t, 4, 2)}}); err == nil {
		t.Error("row-count mismatch in band should fail")
	}
	empty, err := FromGrid(nil)
	if err != nil || empty.NRows() != 0 {
		t.Error("empty grid should wrap Empty frame")
	}
}

func TestRepartitionAndEnsureSingle(t *testing.T) {
	df := frame(t, 24, 6)
	pf := New(df, Blocks, 3)
	rows, err := pf.Repartition(Rows, 4)
	if err != nil || rows.ColBands() != 1 || rows.RowBands() != 4 {
		t.Error("repartition wrong")
	}
	single, err := pf.EnsureSingleColBand()
	if err != nil || single.ColBands() != 1 {
		t.Error("ensure single col band wrong")
	}
	got, err := single.ToFrame()
	if err != nil || !got.Equal(df) {
		t.Error("ensure single round trip failed")
	}
	// Already single: identity.
	same, err := single.EnsureSingleColBand()
	if err != nil || same != single {
		t.Error("already-single should pass through")
	}
}

func TestEmptyFrameAllSchemes(t *testing.T) {
	empty := core.Empty()
	for _, scheme := range []Scheme{Rows, Cols, Blocks} {
		pf := New(empty, scheme, 4)
		if pf.RowBands() != 1 || pf.ColBands() != 1 {
			t.Errorf("scheme %v: empty frame should be a single band, got %dx%d", scheme, pf.RowBands(), pf.ColBands())
		}
		back, err := pf.ToFrame()
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		if back.NRows() != 0 || back.NCols() != 0 {
			t.Errorf("scheme %v: empty round trip = %dx%d", scheme, back.NRows(), back.NCols())
		}
	}
}

func TestSingleRowAndSingleColumn(t *testing.T) {
	row := frame(t, 1, 5)
	col := frame(t, 7, 1)
	for _, scheme := range []Scheme{Rows, Cols, Blocks} {
		for _, df := range []*core.DataFrame{row, col} {
			pf := New(df, scheme, 8)
			if pf.RowBands() > df.NRows() || pf.ColBands() > df.NCols() {
				t.Errorf("scheme %v: bands %dx%d exceed shape %dx%d",
					scheme, pf.RowBands(), pf.ColBands(), df.NRows(), df.NCols())
			}
			back, err := pf.ToFrame()
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(df) {
				t.Errorf("scheme %v: single-row/col round trip failed", scheme)
			}
		}
	}
}

func TestSchemeMovementRoundTrips(t *testing.T) {
	df := frame(t, 18, 6)
	// Rows → Cols → Blocks → Rows: every repartition preserves content.
	pf := New(df, Rows, 3)
	for _, step := range []struct {
		scheme Scheme
		bands  int
	}{{Cols, 3}, {Blocks, 2}, {Rows, 4}, {Blocks, 3}, {Cols, 2}, {Rows, 1}} {
		var err error
		pf, err = pf.Repartition(step.scheme, step.bands)
		if err != nil {
			t.Fatalf("repartition to %v: %v", step.scheme, err)
		}
		back, err := pf.ToFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(df) {
			t.Fatalf("content changed after moving to %v", step.scheme)
		}
	}
}

func TestDeferredFrameResolvesLazily(t *testing.T) {
	df := frame(t, 12, 3)
	pool := exec.NewPool(2)
	defer pool.Close()
	materialized := New(df, Rows, 3)
	gate := make(chan struct{})
	grid := make([][]*exec.Future, 3)
	for r := range grid {
		r := r
		grid[r] = []*exec.Future{pool.Submit(func() (any, error) {
			<-gate
			return materialized.Block(r, 0), nil
		})}
	}
	pf, err := Deferred(grid)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Ready() {
		t.Error("gated frame should not be ready")
	}
	if pf.RowBands() != 3 || pf.ColBands() != 1 {
		t.Error("deferred shape wrong")
	}
	close(gate)
	if err := pf.Resolve(); err != nil {
		t.Fatal(err)
	}
	if !pf.Ready() {
		t.Error("resolved frame should be ready")
	}
	back, err := pf.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(df) {
		t.Error("deferred round trip failed")
	}
}

func TestDeferredFrameErrorSurfacesAtResolve(t *testing.T) {
	df := frame(t, 8, 2)
	blk := New(df, Rows, 2)
	grid := [][]*exec.Future{
		{exec.Resolved(blk.Block(0, 0))},
		{exec.Failed(fmt.Errorf("block task died"))},
	}
	pf, err := Deferred(grid)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Resolve(); err == nil {
		t.Error("failed block should surface at Resolve")
	}
	if _, err := pf.ToFrame(); err == nil {
		t.Error("failed block should surface at ToFrame")
	}
	if _, err := pf.BlockErr(1, 0); err == nil {
		t.Error("BlockErr should report the task error")
	}
	if got := pf.Block(1, 0); got.NRows() != 0 {
		t.Error("Block on failed future should degrade to empty")
	}
}

func TestDeferredRaggedGridRejected(t *testing.T) {
	a := exec.Resolved(frame(t, 2, 2))
	if _, err := Deferred([][]*exec.Future{{a}, {a, a}}); err == nil {
		t.Error("ragged deferred grid should fail")
	}
	empty, err := Deferred(nil)
	if err != nil || empty.NRows() != 0 {
		t.Error("empty deferred grid should wrap Empty frame")
	}
}

func TestDeferredShapeMismatchCaughtAtResolve(t *testing.T) {
	// Blocks that disagree on row count within a band pass construction
	// (futures are opaque) but must fail validation at Resolve.
	grid := [][]*exec.Future{{
		exec.Resolved(frame(t, 3, 1)),
		exec.Resolved(frame(t, 4, 1)),
	}}
	pf, err := Deferred(grid)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Resolve(); err == nil {
		t.Error("row-count mismatch should fail Resolve")
	}
}

func TestMapBlocksAsyncPipelines(t *testing.T) {
	df := frame(t, 16, 4)
	pool := exec.NewPool(2)
	defer pool.Close()
	pf := New(df, Blocks, 2)
	g := exec.NewGroup()
	// Two chained async maps: no block waits for its sibling between the
	// two stages.
	step1 := pf.MapBlocksAsync(pool, g, func(blk *core.DataFrame) (*core.DataFrame, error) {
		return algebra.MapFrame(blk, algebra.IsNullFn())
	})
	step2 := step1.MapBlocksAsync(pool, g, func(blk *core.DataFrame) (*core.DataFrame, error) {
		return algebra.MapFrame(blk, algebra.IsNullFn())
	})
	got, err := step2.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 16 || got.Value(0, 0).Bool() {
		t.Error("chained async maps wrong")
	}
}

func TestMapBlocksAsyncErrorCancelsGroup(t *testing.T) {
	df := frame(t, 8, 2)
	pool := exec.NewPool(2)
	defer pool.Close()
	pf := New(df, Rows, 2)
	g := exec.NewGroup()
	out := pf.MapBlocksAsync(pool, g, func(blk *core.DataFrame) (*core.DataFrame, error) {
		return nil, fmt.Errorf("block failure")
	})
	if _, err := out.ToFrame(); err == nil {
		t.Error("async map error should surface at gather")
	}
	if g.Err() == nil {
		t.Error("async map error should cancel the group")
	}
}

func TestRowBandLabelsPreserved(t *testing.T) {
	df := frame(t, 10, 2)
	labels := make([]types.Value, 10)
	for i := range labels {
		labels[i] = types.String(fmt.Sprintf("L%d", i))
	}
	relabeled, err := df.WithRowLabels(vector.FromValues(types.Object, labels))
	if err != nil {
		t.Fatal(err)
	}
	pf := New(relabeled, Rows, 3)
	back, err := pf.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if back.RowLabels().Value(9).Str() != "L9" {
		t.Error("labels should survive partitioning")
	}
}

// TestSplitRowsRoutesAndPreservesOrder: SplitRows is the shuffle's routing
// primitive — rows land in their assigned bucket, in input order, with
// labels travelling alongside, and empty buckets keep the frame's arity.
func TestSplitRowsRoutesAndPreservesOrder(t *testing.T) {
	df := frame(t, 12, 3)
	assign := make([]int, 12)
	for i := range assign {
		assign[i] = i % 3
	}
	buckets, err := SplitRows(df, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	for b := 0; b < 3; b++ {
		blk := buckets[b]
		if blk.NRows() != 4 || blk.NCols() != 3 {
			t.Fatalf("bucket %d shape = %dx%d", b, blk.NRows(), blk.NCols())
		}
		for i := 0; i < blk.NRows(); i++ {
			wantRow := b + 3*i // input order within the bucket
			if got := blk.Value(i, 0).Int(); got != int64(wantRow*3) {
				t.Errorf("bucket %d row %d = %d, want %d", b, i, got, wantRow*3)
			}
			if got := blk.RowLabels().Value(i).Int(); got != int64(wantRow) {
				t.Errorf("bucket %d label %d = %d, want %d", b, i, got, wantRow)
			}
		}
	}
	// Bucket 3 received nothing but still matches the frame's arity.
	if buckets[3].NRows() != 0 || buckets[3].NCols() != 3 {
		t.Errorf("empty bucket shape = %dx%d", buckets[3].NRows(), buckets[3].NCols())
	}
}

// TestSplitRowsViewsShareStorage: the bucket frames are views — no cell
// copies — yet behave like real frames under slicing and gathering.
func TestSplitRowsViewsShareStorage(t *testing.T) {
	df := frame(t, 10, 2)
	assign := make([]int, 10)
	for i := range assign {
		assign[i] = i / 5
	}
	buckets, err := SplitRows(df, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	// VStacking the buckets in order reproduces the original rows.
	back, err := algebra.VStackFrames(buckets[0], buckets[1])
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(df) {
		t.Error("split+vstack should round-trip")
	}
	// Views slice and take like any vector.
	sliced := buckets[1].SliceRows(1, 3)
	if sliced.Value(0, 0).Int() != df.Value(6, 0).Int() {
		t.Error("view slice wrong")
	}
	taken := buckets[1].TakeRows([]int{2, 0})
	if taken.Value(0, 0).Int() != df.Value(7, 0).Int() {
		t.Error("view take wrong")
	}
}

// TestSplitRowsValidation: bad assignments error instead of corrupting the
// grid.
func TestSplitRowsValidation(t *testing.T) {
	df := frame(t, 4, 1)
	if _, err := SplitRows(df, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := SplitRows(df, []int{0, 0, 0, 5}, 2); err == nil {
		t.Error("out-of-range bucket should error")
	}
	if _, err := SplitRows(df, nil, 0); err == nil {
		t.Error("zero buckets should error")
	}
}

// TestSplitRowsViewInducesDomains: a view over a raw (Σ*) column still
// induces its domain correctly — the shuffle must not detype raw frames.
func TestSplitRowsViewInducesDomains(t *testing.T) {
	raw := core.MustFromRecords([]string{"n"}, [][]any{{"1"}, {"2"}, {"3"}, {"4"}})
	buckets, err := SplitRows(raw, []int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b, blk := range buckets {
		if d := blk.Domain(0); d != types.Int {
			t.Errorf("bucket %d induced %v, want int", b, d)
		}
		if blk.Value(1, 0).Int() != int64(b+3) {
			t.Errorf("bucket %d typed value wrong", b)
		}
	}
}

package partition

import (
	"errors"
	"testing"

	"repro/internal/exec"
)

func TestTransientFlag(t *testing.T) {
	f := New(frame(t, 20, 2), Rows, 4)
	if f.Transient() {
		t.Error("frames are not transient by default")
	}
	if got := f.MarkTransient(); got != f || !f.Transient() {
		t.Error("MarkTransient should flag and return the frame")
	}
}

func TestReleaseBandDropsBlockValues(t *testing.T) {
	f := New(frame(t, 20, 2), Rows, 4).MarkTransient()
	if err := f.Resolve(); err != nil {
		t.Fatal(err)
	}
	if f.Block(1, 0) == nil {
		t.Fatal("band 1 should hold a block before release")
	}
	f.ReleaseBand(1)
	if v, err := f.BlockFuture(1, 0).Wait(); v != nil || err != nil {
		t.Errorf("released band still holds val=%v err=%v", v, err)
	}
	// Other bands stay resident.
	if f.Block(0, 0) == nil || f.Block(2, 0) == nil {
		t.Error("ReleaseBand must only drop the named band")
	}
}

func TestReleaseBandKeepsPendingAndErrors(t *testing.T) {
	pending, resolve := exec.NewPromise()
	failed := exec.Failed(errors.New("boom"))
	f, err := Deferred([][]*exec.Future{{pending}, {failed}})
	if err != nil {
		t.Fatal(err)
	}
	f.MarkTransient()
	f.ReleaseBand(0) // pending: no-op
	f.ReleaseBand(1) // failed: error retained
	resolve("x", nil)
	if v, _ := f.BlockFuture(0, 0).Wait(); v != "x" {
		t.Errorf("pending band lost its value: %v", v)
	}
	if _, err := f.BlockFuture(1, 0).Wait(); err == nil {
		t.Error("released band lost its error")
	}
}

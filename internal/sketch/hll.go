// Package sketch implements the HyperLogLog distinct-value estimator the
// paper points at for the two-dimensional size-estimation problem of
// Section 5.2.3: operators like pivot and get_dummies have output *arity*
// proportional to a column's distinct-value count, so the planner needs
// cheap cardinality sketches over intermediate results, not just base
// tables.
package sketch

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"

	"repro/internal/core"
)

// HLL is a HyperLogLog sketch with 2^precision registers. The zero value is
// unusable; construct with New.
type HLL struct {
	precision uint8
	registers []uint8
}

// New returns a sketch with 2^precision registers; precision must be in
// [4, 16]. Standard error is ~1.04/sqrt(2^precision) (≈1.6% at p=12).
func New(precision uint8) (*HLL, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("sketch: precision %d out of range [4, 16]", precision)
	}
	return &HLL{precision: precision, registers: make([]uint8, 1<<precision)}, nil
}

// MustNew is New, panicking on error.
func MustNew(precision uint8) *HLL {
	h, err := New(precision)
	if err != nil {
		panic(err)
	}
	return h
}

// Add observes one value (by its canonical key string).
func (h *HLL) Add(key string) {
	f := fnv.New64a()
	f.Write([]byte(key))
	// FNV's high bits avalanche poorly on short keys; finalize with
	// splitmix64 so the register index (top bits) is well dispersed.
	h.AddHash(mix64(f.Sum64()))
}

// AddHash observes one value by a pre-mixed 64-bit hash, e.g. a bulk row
// hash from internal/vector. The hash must already be well dispersed; no
// further mixing is applied, so the same value must always present the same
// hash (true of the vector kernels, which are seed-deterministic).
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // ensure termination
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Clone returns an independent copy of the sketch (Merge mutates in place,
// so shared summaries must clone before folding).
func (h *HLL) Clone() *HLL {
	return &HLL{precision: h.precision, registers: append([]uint8(nil), h.registers...)}
}

// Merge combines another sketch of the same precision (register-wise max):
// the union-cardinality property that lets partitions sketch independently.
func (h *HLL) Merge(o *HLL) error {
	if o.precision != h.precision {
		return fmt.Errorf("sketch: merge precision mismatch %d vs %d", h.precision, o.precision)
	}
	for i, r := range o.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Estimate returns the estimated distinct count.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Small-range correction (linear counting).
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// SketchColumn builds a sketch over one dataframe column's values (typed
// through the column's induced domain). It is the per-partition sketching
// primitive: partitions sketch locally and Merge.
func SketchColumn(df *core.DataFrame, col string, precision uint8) (*HLL, error) {
	j := df.ColIndex(col)
	if j < 0 {
		return nil, fmt.Errorf("sketch: unknown column %q", col)
	}
	h, err := New(precision)
	if err != nil {
		return nil, err
	}
	v := df.TypedCol(j)
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			continue
		}
		h.Add(v.Value(i).Key())
	}
	return h, nil
}

// EstimateArity estimates the output arity of a pivot or one-hot encoding
// over the column: its distinct-value count, the Section 5.2.3 quantity.
func EstimateArity(df *core.DataFrame, col string) (float64, error) {
	h, err := SketchColumn(df, col, 12)
	if err != nil {
		return 0, err
	}
	return h.Estimate(), nil
}

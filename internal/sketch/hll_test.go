package sketch

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

func TestPrecisionBounds(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("precision 3 should fail")
	}
	if _, err := New(17); err == nil {
		t.Error("precision 17 should fail")
	}
	if _, err := New(12); err != nil {
		t.Error("precision 12 should work")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1_000, 10_000, 100_000} {
		h := MustNew(12)
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("value-%d", i))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f > 5%%", n, est, relErr)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	h := MustNew(12)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 200; i++ {
			h.Add(fmt.Sprintf("v%d", i))
		}
	}
	est := h.Estimate()
	if est < 180 || est > 220 {
		t.Errorf("estimate of 200 distinct (x50 reps) = %.0f", est)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, whole := MustNew(12), MustNew(12), MustNew(12)
	for i := 0; i < 5_000; i++ {
		key := fmt.Sprintf("k%d", i)
		whole.Add(key)
		if i%2 == 0 {
			a.Add(key)
		} else {
			b.Add(key)
		}
		if i%10 == 0 { // overlap
			a.Add(key)
			b.Add(key)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Estimate()-whole.Estimate()) > 1e-9 {
		t.Errorf("merged estimate %.1f != whole %.1f", a.Estimate(), whole.Estimate())
	}
	other := MustNew(10)
	if err := a.Merge(other); err == nil {
		t.Error("precision mismatch should fail")
	}
}

func TestSketchColumnAndArity(t *testing.T) {
	n := 5000
	records := make([][]any, n)
	for i := range records {
		var v any = fmt.Sprintf("cat-%d", i%37)
		if i%100 == 0 {
			v = nil
		}
		records[i] = []any{v, i}
	}
	df := core.MustFromRecords([]string{"cat", "id"}, records)
	est, err := EstimateArity(df, "cat")
	if err != nil {
		t.Fatal(err)
	}
	if est < 33 || est > 41 {
		t.Errorf("arity estimate of 37 categories = %.1f", est)
	}
	idEst, err := EstimateArity(df, "id")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idEst-float64(n))/float64(n) > 0.05 {
		t.Errorf("arity estimate of %d ids = %.1f", n, idEst)
	}
	if _, err := EstimateArity(df, "ghost"); err == nil {
		t.Error("unknown column should fail")
	}
}

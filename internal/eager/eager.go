// Package eager is the baseline engine: a single-threaded, eagerly
// materializing executor of the dataframe algebra, standing in for pandas
// in the paper's comparisons (Section 3.2). Every operator runs to
// completion on one goroutine before the next starts, every intermediate is
// fully materialized, and TRANSPOSE is always physical — exactly the
// execution profile whose scalability the paper critiques.
//
// A configurable materialization budget reproduces pandas' failure mode on
// large transposes ("pandas is unable to run transpose beyond 6 GB"): when
// an operator would materialize more cells than the budget allows, execution
// fails with ErrBudgetExceeded instead of completing.
package eager

import (
	"errors"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
)

// ErrBudgetExceeded reports that an operator needed to materialize more
// cells than the engine's budget permits; it models the baseline's
// memory-exhaustion failures.
var ErrBudgetExceeded = errors.New("eager: materialization budget exceeded")

// Engine executes algebra plans single-threaded and eagerly.
type Engine struct {
	// CellBudget bounds the number of cells any single operator may
	// materialize; zero means unlimited. TransposeCellBudget, when
	// nonzero, overrides it for TRANSPOSE (the operator with the worst
	// constant factor in row-major baselines).
	CellBudget          int
	TransposeCellBudget int
}

// New returns an unbounded baseline engine.
func New() *Engine { return &Engine{} }

// Name identifies the engine.
func (e *Engine) Name() string { return "pandas-baseline" }

// wrapNode annotates a kernel failure with the failing operator's
// description, so a chained plan's error names where in the chain it arose
// instead of surfacing a bare kernel message. Child errors pass through
// already annotated, so each failure carries exactly one operator prefix.
func wrapNode(n algebra.Node, out *core.DataFrame, err error) (*core.DataFrame, error) {
	if err != nil {
		return nil, fmt.Errorf("%s: %w", n.Describe(), err)
	}
	return out, nil
}

// Execute evaluates the plan bottom-up, materializing every intermediate.
func (e *Engine) Execute(n algebra.Node) (*core.DataFrame, error) {
	switch node := n.(type) {
	case *algebra.Source:
		return node.DF, nil

	case *algebra.Scan:
		// The eager baseline has no streaming: read the scan whole.
		out, err := node.ReadAll()
		return wrapNode(node, out, err)

	case *algebra.Selection:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		if node.Where != nil {
			out, err := algebra.SelectWhere(in, node.Where)
			return wrapNode(node, out, err)
		}
		return algebra.SelectRows(in, node.Pred), nil

	case *algebra.Projection:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.Project(in, node.Cols)
		return wrapNode(node, out, err)

	case *algebra.Union:
		left, right, err := e.executeBinary(node.Left, node.Right)
		if err != nil {
			return nil, err
		}
		out, err := algebra.UnionFrames(left, right)
		return wrapNode(node, out, err)

	case *algebra.Difference:
		left, right, err := e.executeBinary(node.Left, node.Right)
		if err != nil {
			return nil, err
		}
		out, err := algebra.DifferenceFrames(left, right)
		return wrapNode(node, out, err)

	case *algebra.Join:
		left, right, err := e.executeBinary(node.Left, node.Right)
		if err != nil {
			return nil, err
		}
		if node.Kind == expr.JoinCross {
			if err := e.checkBudget(left.NRows()*right.NRows(), left.NCols()+right.NCols(), false); err != nil {
				return nil, err
			}
		}
		out, err := algebra.JoinFrames(left, right, node.Kind, node.On, node.OnLabels)
		return wrapNode(node, out, err)

	case *algebra.DropDuplicates:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.DropDuplicatesFrame(in, node.Subset)
		return wrapNode(node, out, err)

	case *algebra.GroupBy:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.GroupByFrame(in, node.Spec)
		return wrapNode(node, out, err)

	case *algebra.Sort:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.SortFrame(in, node.Order, node.ByLabels)
		return wrapNode(node, out, err)

	case *algebra.Rename:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.RenameFrame(in, node.Mapping)
		return wrapNode(node, out, err)

	case *algebra.Window:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.WindowFrame(in, node.Spec)
		return wrapNode(node, out, err)

	case *algebra.Transpose:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		if err := e.checkBudget(in.NRows(), in.NCols(), true); err != nil {
			return nil, fmt.Errorf("transpose of %dx%d: %w", in.NRows(), in.NCols(), err)
		}
		out, err := algebra.TransposeFrame(in, node.Schema)
		return wrapNode(node, out, err)

	case *algebra.Map:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.MapFrame(in, node.Fn)
		return wrapNode(node, out, err)

	case *algebra.ToLabels:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.ToLabelsFrame(in, node.Col)
		return wrapNode(node, out, err)

	case *algebra.FromLabels:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.FromLabelsFrame(in, node.Label)
		return wrapNode(node, out, err)

	case *algebra.Induce:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.InduceFrame(in), nil

	case *algebra.TopK:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.TopKFrame(in, node.Order, node.N)
		return wrapNode(node, out, err)

	case *algebra.Limit:
		in, err := e.Execute(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.LimitFrame(in, node.N), nil

	default:
		return nil, fmt.Errorf("eager: unknown plan node %T", n)
	}
}

// executeBinary evaluates both inputs sequentially (the baseline has no
// parallelism to exploit).
func (e *Engine) executeBinary(l, r algebra.Node) (*core.DataFrame, *core.DataFrame, error) {
	left, err := e.Execute(l)
	if err != nil {
		return nil, nil, err
	}
	right, err := e.Execute(r)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func (e *Engine) checkBudget(rows, cols int, transpose bool) error {
	budget := e.CellBudget
	if transpose && e.TransposeCellBudget != 0 {
		budget = e.TransposeCellBudget
	}
	if budget <= 0 {
		return nil
	}
	if rows*cols > budget {
		return fmt.Errorf("%w: %d cells over budget %d", ErrBudgetExceeded, rows*cols, budget)
	}
	return nil
}

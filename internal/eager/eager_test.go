package eager

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
)

func frame(t *testing.T, rows int) *core.DataFrame {
	t.Helper()
	records := make([][]any, rows)
	for i := range records {
		records[i] = []any{i, i % 5}
	}
	return core.MustFromRecords([]string{"a", "b"}, records)
}

func TestNameAndSource(t *testing.T) {
	e := New()
	if e.Name() != "pandas-baseline" {
		t.Error("name wrong")
	}
	df := frame(t, 3)
	out, err := e.Execute(&algebra.Source{DF: df})
	if err != nil || out != df {
		t.Error("source should pass through")
	}
}

func TestUnknownNode(t *testing.T) {
	if _, err := New().Execute(nil); err == nil {
		t.Error("nil plan should error")
	}
}

func TestTransposeBudget(t *testing.T) {
	df := frame(t, 100) // 200 cells
	plan := &algebra.Transpose{Input: &algebra.Source{DF: df}}

	if _, err := New().Execute(plan); err != nil {
		t.Fatalf("unbounded engine should transpose: %v", err)
	}
	limited := &Engine{TransposeCellBudget: 150}
	_, err := limited.Execute(plan)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	// The general budget applies when no transpose-specific one is set.
	general := &Engine{CellBudget: 150}
	if _, err := general.Execute(plan); !errors.Is(err, ErrBudgetExceeded) {
		t.Error("general budget should gate transpose too")
	}
	// A transpose-specific budget overrides the general one.
	both := &Engine{CellBudget: 10, TransposeCellBudget: 1000}
	if _, err := both.Execute(plan); err != nil {
		t.Errorf("specific budget should win: %v", err)
	}
}

func TestCrossProductBudget(t *testing.T) {
	df := frame(t, 50)
	plan := &algebra.Join{
		Left:  &algebra.Source{DF: df},
		Right: &algebra.Source{DF: df},
		Kind:  expr.JoinCross,
	}
	limited := &Engine{CellBudget: 1000} // 2500 pairs × 4 cols ≫ budget
	if _, err := limited.Execute(plan); !errors.Is(err, ErrBudgetExceeded) {
		t.Error("cross product should exceed budget")
	}
	if _, err := New().Execute(plan); err != nil {
		t.Errorf("unbounded cross product: %v", err)
	}
}

func TestErrorPropagatesThroughPlan(t *testing.T) {
	df := frame(t, 10)
	// A projection of a missing column deep in the plan surfaces at the
	// top.
	plan := &algebra.Sort{
		Input: &algebra.Projection{Input: &algebra.Source{DF: df}, Cols: []string{"ghost"}},
		Order: expr.SortOrder{{Col: "a"}},
	}
	if _, err := New().Execute(plan); err == nil {
		t.Error("inner error should propagate")
	}
	// Binary nodes propagate from either side.
	bad := &algebra.Union{
		Left:  &algebra.Source{DF: df},
		Right: &algebra.Projection{Input: &algebra.Source{DF: df}, Cols: []string{"ghost"}},
	}
	if _, err := New().Execute(bad); err == nil {
		t.Error("right-side error should propagate")
	}
}

func TestEagerFullPipeline(t *testing.T) {
	df := frame(t, 40)
	plan := &algebra.Limit{
		Input: &algebra.Sort{
			Input: &algebra.GroupBy{
				Input: &algebra.Source{DF: df},
				Spec: expr.GroupBySpec{
					Keys: []string{"b"},
					Aggs: []expr.AggSpec{{Col: "a", Agg: expr.AggSum, As: "total"}},
				},
			},
			Order: expr.SortOrder{{Col: "total", Desc: true}},
		},
		N: 2,
	}
	out, err := New().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 2 {
		t.Fatalf("rows = %d", out.NRows())
	}
	// b=4 sums rows 4,9,...,39: 8 values averaging 21.5 → 172 (largest).
	if out.Value(0, out.ColIndex("total")).Float() != 172 {
		t.Errorf("top group = %v\n%s", out.Value(0, 1), out)
	}
}

package optimizer

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/types"
)

func selection(in algebra.Node, w *expr.Where) *algebra.Selection {
	return &algebra.Selection{Input: in, Where: w, Pred: w.Predicate(), Desc: w.Describe()}
}

// TestFuseSelections checks that stacked structured filters collapse into
// one Selection carrying the conjunction of all terms — the rewrite behind
// single-pass selection-vector chaining.
func TestFuseSelections(t *testing.T) {
	plan := selection(
		selection(
			selection(source(t), expr.WhereNotNull("v")),
			expr.WhereEquals("k", types.String("b")),
		),
		expr.WhereNotNull("k"),
	)
	runBoth(t, plan, "fuse-selections")

	opt, _ := Optimize(plan, Default())
	sel, ok := opt.(*algebra.Selection)
	if !ok {
		t.Fatalf("optimized plan is %T, want one *algebra.Selection", opt)
	}
	if _, ok := sel.Input.(*algebra.Source); !ok {
		t.Fatalf("fused selection should sit directly on the source, got:\n%s", algebra.Render(opt))
	}
	if got := len(sel.Where.Terms); got != 3 {
		t.Errorf("fused terms = %d, want 3", got)
	}
}

// TestFuseSelectionsSkipsOpaquePredicates: a selection with only an opaque
// Pred (no Where conjunction) has no fusion form and must stay put.
func TestFuseSelectionsSkipsOpaquePredicates(t *testing.T) {
	opaque := &algebra.Selection{
		Input: selection(source(t), expr.WhereNotNull("v")),
		Pred:  expr.ColEquals("k", types.String("b")),
		Desc:  "opaque",
	}
	if _, fired := (FuseSelections{}).Apply(opaque); fired {
		t.Error("fuse-selections must not fire on an opaque predicate")
	}
}

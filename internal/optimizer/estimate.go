package optimizer

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
)

// Estimate is the two-dimensional size estimate of Section 5.2.3: dataframe
// plans need both cardinality (#rows) and arity (#columns), because
// operators like TRANSPOSE, pivot and get_dummies move size between the two
// axes.
type Estimate struct {
	Rows float64
	Cols float64
}

// Cells returns the estimated cell count, the unit of the cost model.
func (e Estimate) Cells() float64 { return e.Rows * e.Cols }

// Default planner constants, used whenever no statistics reach a decision;
// deliberately simple, the zero-stats fallback the physical planner degrades
// to when collection is disabled.
const (
	selectionSelectivity = 0.5
	distinctFraction     = 0.1 // distinct keys per input row for GROUPBY arity/cardinality guesses
)

// SourceStats is how an Estimator reads collected statistics: the engine's
// sketch cache implements it over base frames. KeyNDV returns the estimated
// distinct count of the row tuples over cols, and false when no sketch for
// that frame/key is available — every estimate then falls back to the
// constants above, so a stats-less engine plans exactly as before.
type SourceStats interface {
	KeyNDV(df *core.DataFrame, cols []string) (float64, bool)
}

// Estimator computes output-shape estimates, consulting collected
// statistics where they sharpen a decision. The zero Estimator (nil Stats)
// is the pure constant-based model.
type Estimator struct {
	Stats SourceStats
}

// EstimateNode computes the output shape estimate for every operator with
// the zero-stats constant model. Statistics-aware callers use an Estimator.
func EstimateNode(n algebra.Node) Estimate {
	return (Estimator{}).EstimateNode(n)
}

// EstimateNode computes the output shape estimate for every operator.
func (e Estimator) EstimateNode(n algebra.Node) Estimate {
	switch node := n.(type) {
	case *algebra.Source:
		return Estimate{Rows: float64(node.DF.NRows()), Cols: float64(node.DF.NCols())}
	case *algebra.Selection:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Rows * selectionSelectivity, Cols: in.Cols}
	case *algebra.Projection:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: float64(len(node.Cols))}
	case *algebra.Union:
		l, r := e.EstimateNode(node.Left), e.EstimateNode(node.Right)
		return Estimate{Rows: l.Rows + r.Rows, Cols: math.Max(l.Cols, r.Cols)}
	case *algebra.Difference:
		l := e.EstimateNode(node.Left)
		return Estimate{Rows: l.Rows * selectionSelectivity, Cols: l.Cols}
	case *algebra.Join:
		l, r := e.EstimateNode(node.Left), e.EstimateNode(node.Right)
		if node.Kind == expr.JoinCross {
			return Estimate{Rows: l.Rows * r.Rows, Cols: l.Cols + r.Cols}
		}
		rows := math.Max(l.Rows, r.Rows)
		if !node.OnLabels && len(node.On) > 0 {
			// With key sketches on both sides the classic equi-join
			// estimate applies: |L|·|R| / max(ndv(L), ndv(R)).
			lNDV, lok := e.KeyNDV(node.Left, node.On)
			rNDV, rok := e.KeyNDV(node.Right, node.On)
			if lok && rok {
				if d := math.Max(lNDV, rNDV); d >= 1 {
					rows = l.Rows * r.Rows / d
				}
			}
		}
		return Estimate{Rows: rows, Cols: l.Cols + r.Cols - float64(len(node.On))}
	case *algebra.DropDuplicates:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Rows * selectionSelectivity, Cols: in.Cols}
	case *algebra.GroupBy:
		in := e.EstimateNode(node.Input)
		groups := math.Max(1, in.Rows*distinctFraction)
		if ndv, ok := e.KeyNDV(node.Input, node.Spec.Keys); ok {
			// A grouped output has exactly one row per distinct key; the
			// sketch estimate replaces the distinctFraction guess, capped
			// by the (possibly filtered) input cardinality.
			groups = math.Max(1, math.Min(ndv, in.Rows))
		}
		cols := float64(len(node.Spec.Keys) + len(node.Spec.Aggs))
		if node.Spec.AsLabels {
			cols = float64(len(node.Spec.Aggs))
		}
		return Estimate{Rows: groups, Cols: cols}
	case *algebra.Sort, *algebra.Rename, *algebra.Window, *algebra.Induce:
		return e.EstimateNode(n.Children()[0])
	case *algebra.Transpose:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Cols, Cols: in.Rows} // axes swap exactly
	case *algebra.Map:
		in := e.EstimateNode(node.Input)
		if node.Fn.OutCols != nil {
			return Estimate{Rows: in.Rows, Cols: float64(len(node.Fn.OutCols))}
		}
		return in
	case *algebra.ToLabels:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: in.Cols - 1}
	case *algebra.FromLabels:
		in := e.EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: in.Cols + 1}
	case *algebra.Limit:
		in := e.EstimateNode(node.Input)
		k := float64(node.N)
		if k < 0 {
			k = -k
		}
		return Estimate{Rows: math.Min(in.Rows, k), Cols: in.Cols}
	case *algebra.TopK:
		in := e.EstimateNode(node.Input)
		k := float64(node.N)
		if k < 0 {
			k = -k
		}
		return Estimate{Rows: math.Min(in.Rows, k), Cols: in.Cols}
	}
	return Estimate{}
}

// KeyNDV estimates the distinct count of the key columns of n's output by
// walking down to a base frame whose sketch the stats provider holds. Only
// operators that pass key columns through unchanged are traversed —
// Selection, Sort, Limit/TopK and Induce preserve key identity (a filter can
// only lower the distinct count, so the sketch stays a sound upper estimate,
// which the callers cap by estimated rows); anything else gives up.
func (e Estimator) KeyNDV(n algebra.Node, cols []string) (float64, bool) {
	if e.Stats == nil || len(cols) == 0 {
		return 0, false
	}
	for {
		switch node := n.(type) {
		case *algebra.Source:
			return e.Stats.KeyNDV(node.DF, cols)
		case *algebra.Selection:
			n = node.Input
		case *algebra.Sort:
			n = node.Input
		case *algebra.Limit:
			n = node.Input
		case *algebra.TopK:
			n = node.Input
		case *algebra.Induce:
			n = node.Input
		case *algebra.Projection:
			for _, c := range cols {
				found := false
				for _, pc := range node.Cols {
					if pc == c {
						found = true
						break
					}
				}
				if !found {
					return 0, false
				}
			}
			n = node.Input
		default:
			return 0, false
		}
	}
}

package optimizer

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/expr"
)

// Estimate is the two-dimensional size estimate of Section 5.2.3: dataframe
// plans need both cardinality (#rows) and arity (#columns), because
// operators like TRANSPOSE, pivot and get_dummies move size between the two
// axes.
type Estimate struct {
	Rows float64
	Cols float64
}

// Cells returns the estimated cell count, the unit of the cost model.
func (e Estimate) Cells() float64 { return e.Rows * e.Cols }

// Default planner constants; deliberately simple, as the paper's agenda
// treats better estimation (sketches over intermediate results) as open
// work.
const (
	selectionSelectivity = 0.5
	distinctFraction     = 0.1 // distinct keys per input row for GROUPBY arity/cardinality guesses
)

// EstimateNode computes the output shape estimate for every operator.
func EstimateNode(n algebra.Node) Estimate {
	switch node := n.(type) {
	case *algebra.Source:
		return Estimate{Rows: float64(node.DF.NRows()), Cols: float64(node.DF.NCols())}
	case *algebra.Selection:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Rows * selectionSelectivity, Cols: in.Cols}
	case *algebra.Projection:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: float64(len(node.Cols))}
	case *algebra.Union:
		l, r := EstimateNode(node.Left), EstimateNode(node.Right)
		return Estimate{Rows: l.Rows + r.Rows, Cols: math.Max(l.Cols, r.Cols)}
	case *algebra.Difference:
		l := EstimateNode(node.Left)
		return Estimate{Rows: l.Rows * selectionSelectivity, Cols: l.Cols}
	case *algebra.Join:
		l, r := EstimateNode(node.Left), EstimateNode(node.Right)
		if node.Kind == expr.JoinCross {
			return Estimate{Rows: l.Rows * r.Rows, Cols: l.Cols + r.Cols}
		}
		return Estimate{Rows: math.Max(l.Rows, r.Rows), Cols: l.Cols + r.Cols - float64(len(node.On))}
	case *algebra.DropDuplicates:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Rows * selectionSelectivity, Cols: in.Cols}
	case *algebra.GroupBy:
		in := EstimateNode(node.Input)
		groups := math.Max(1, in.Rows*distinctFraction)
		cols := float64(len(node.Spec.Keys) + len(node.Spec.Aggs))
		if node.Spec.AsLabels {
			cols = float64(len(node.Spec.Aggs))
		}
		return Estimate{Rows: groups, Cols: cols}
	case *algebra.Sort, *algebra.Rename, *algebra.Window, *algebra.Induce:
		return EstimateNode(n.Children()[0])
	case *algebra.Transpose:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Cols, Cols: in.Rows} // axes swap exactly
	case *algebra.Map:
		in := EstimateNode(node.Input)
		if node.Fn.OutCols != nil {
			return Estimate{Rows: in.Rows, Cols: float64(len(node.Fn.OutCols))}
		}
		return in
	case *algebra.ToLabels:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: in.Cols - 1}
	case *algebra.FromLabels:
		in := EstimateNode(node.Input)
		return Estimate{Rows: in.Rows, Cols: in.Cols + 1}
	case *algebra.Limit:
		in := EstimateNode(node.Input)
		k := float64(node.N)
		if k < 0 {
			k = -k
		}
		return Estimate{Rows: math.Min(in.Rows, k), Cols: in.Cols}
	case *algebra.TopK:
		in := EstimateNode(node.Input)
		k := float64(node.N)
		if k < 0 {
			k = -k
		}
		return Estimate{Rows: math.Min(in.Rows, k), Cols: in.Cols}
	}
	return Estimate{}
}

// PlanCost sums estimated cells produced across the plan: a crude but
// monotone cost model sufficient to rank rewrites like the two pivot plans
// of Figure 8.
func PlanCost(n algebra.Node) float64 {
	cost := EstimateNode(n).Cells()
	// TRANSPOSE pays for a physical reorganization of its input; sorted
	// GROUPBY avoids the hashing constant. Weight those so plan choice
	// reflects the paper's discussion.
	switch node := n.(type) {
	case *algebra.Transpose:
		cost += EstimateNode(node.Input).Cells()
	case *algebra.GroupBy:
		if !node.Spec.Sorted {
			cost += EstimateNode(node.Input).Rows // hash-table build
		}
	case *algebra.Sort:
		in := EstimateNode(node.Input)
		cost += in.Rows * math.Log2(math.Max(2, in.Rows))
	}
	for _, c := range n.Children() {
		cost += PlanCost(c)
	}
	return cost
}

package optimizer

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

func fpKey(t *testing.T, n algebra.Node) string {
	t.Helper()
	key, _, ok := Fingerprint(n)
	if !ok {
		t.Fatalf("plan should be cacheable:\n%s", algebra.Render(n))
	}
	return key
}

func selGt(src algebra.Node, col string, v int64) algebra.Node {
	return &algebra.Selection{
		Input: src,
		Where: expr.WhereCompare(col, vector.CmpGt, types.IntValue(v)),
		Desc:  "test",
	}
}

// Renamed-but-identical plans MUST share a fingerprint: statement and
// source names are user-chosen and canonicalized away.
func TestFingerprintIgnoresNames(t *testing.T) {
	df := source(t).DF
	a := selGt(&algebra.Source{DF: df, Name: "alice_frame"}, "v", 2)
	b := selGt(&algebra.Source{DF: df, Name: "bobs-copy"}, "v", 2)
	ka, sa, _ := Fingerprint(a)
	kb, sb, _ := Fingerprint(b)
	if ka != fpKey(t, a) || ka != kb {
		t.Errorf("renamed-identical plans should share keys:\n%q\n%q", ka, kb)
	}
	if len(sa) != 1 || len(sb) != 1 || sa[0] != sb[0] {
		t.Errorf("sources should be the shared frame")
	}
	if SourceVersion(sa) != SourceVersion(sb) {
		t.Error("same frame pointer should give the same source version")
	}
}

// Distinct plans must NOT share fingerprints: literals, operators, columns,
// operator parameters and column-list boundaries all separate keys.
func TestFingerprintCollisions(t *testing.T) {
	src := source(t)
	base := fpKey(t, selGt(src, "v", 2))
	distinct := []algebra.Node{
		selGt(src, "v", 3), // different literal
		selGt(src, "k", 2), // different column
		&algebra.Selection{Input: src, Where: expr.WhereEquals("v", types.IntValue(2))}, // different op
		&algebra.Selection{Input: src, Where: expr.WhereEquals("v", types.String("2"))}, // same rendering, different domain
		&algebra.Limit{Input: selGt(src, "v", 2), N: 5},                                 // extra operator
	}
	seen := map[string]int{base: -1}
	for i, plan := range distinct {
		key, _, ok := Fingerprint(plan)
		if !ok {
			t.Fatalf("plan %d should be cacheable", i)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("plans %d and %d collide on %q", prev, i, key)
		}
		seen[key] = i
	}

	// Column-list boundaries: PROJECTION("a,b") vs PROJECTION("a","b").
	p1 := fpKey(t, &algebra.Projection{Input: src, Cols: []string{"a,b"}})
	p2 := fpKey(t, &algebra.Projection{Input: src, Cols: []string{"a", "b"}})
	if p1 == p2 {
		t.Errorf("column-list boundary collision: %q", p1)
	}
}

// Tree shape must be part of the key: with flat pre-order rendering,
// JOIN(SEL(a), b) and JOIN(a, SEL(b)) could collide.
func TestFingerprintTreeShape(t *testing.T) {
	a, b := source(t), source(t)
	left := &algebra.Join{Left: selGt(a, "v", 2), Right: b, On: []string{"k"}}
	right := &algebra.Join{Left: a, Right: selGt(b, "v", 2), On: []string{"k"}}
	if fpKey(t, left) == fpKey(t, right) {
		t.Error("selection side should distinguish join fingerprints")
	}
}

// Rename maps canonicalize independent of map iteration order.
func TestFingerprintRenameDeterministic(t *testing.T) {
	src := source(t)
	mk := func() algebra.Node {
		return &algebra.Rename{Input: src, Mapping: map[string]string{
			"a": "x", "b": "y", "c": "z", "d": "w", "e": "u",
		}}
	}
	want := fpKey(t, mk())
	for i := 0; i < 20; i++ {
		if got := fpKey(t, mk()); got != want {
			t.Fatalf("rename fingerprint unstable: %q vs %q", got, want)
		}
	}
}

// Self-joins reuse the placeholder; distinct frames get distinct ones.
func TestFingerprintSourcePlaceholders(t *testing.T) {
	df := source(t).DF
	selfJoin := &algebra.Join{
		Left:  &algebra.Source{DF: df, Name: "l"},
		Right: &algebra.Source{DF: df, Name: "r"},
		On:    []string{"k"},
	}
	_, sources, ok := Fingerprint(selfJoin)
	if !ok || len(sources) != 1 {
		t.Fatalf("self-join should collapse to one source, got %d", len(sources))
	}

	other := source(t).DF // same content, different frame
	twoFrames := &algebra.Join{
		Left:  &algebra.Source{DF: df, Name: "l"},
		Right: &algebra.Source{DF: other, Name: "r"},
		On:    []string{"k"},
	}
	_, sources2, _ := Fingerprint(twoFrames)
	if len(sources2) != 2 {
		t.Fatalf("distinct frames should stay distinct sources, got %d", len(sources2))
	}
	if SourceVersion(sources) == SourceVersion(sources2) {
		t.Error("different source sets should version differently")
	}
}

// Rebinding a base frame changes the source version, so cached results
// cannot be served stale.
func TestFingerprintRebindChangesVersion(t *testing.T) {
	old := source(t).DF
	rebound := core.MustFromRecords(
		[]string{"k", "v"},
		[][]any{{"z", 9}},
	)
	kOld, sOld, _ := Fingerprint(selGt(&algebra.Source{DF: old, Name: "t"}, "v", 2))
	kNew, sNew, _ := Fingerprint(selGt(&algebra.Source{DF: rebound, Name: "t"}, "v", 2))
	if kOld != kNew {
		t.Error("rebind should keep the plan fingerprint (shape unchanged)")
	}
	if SourceVersion(sOld) == SourceVersion(sNew) {
		t.Error("rebind must change the source version")
	}
}

// Opaque closures cannot be fingerprinted.
func TestFingerprintRejectsOpaquePlans(t *testing.T) {
	src := source(t)
	opaque := []algebra.Node{
		&algebra.Selection{Input: src, Pred: func(expr.Row) bool { return true }, Desc: "opaque"},
		&algebra.Map{Input: src, Fn: expr.MapFn{Name: "udf", Fn: func(expr.Row) []types.Value { return nil }}},
	}
	for i, plan := range opaque {
		if _, _, ok := Fingerprint(plan); ok {
			t.Errorf("plan %d carries a closure and must not be cacheable", i)
		}
	}
}

// Package optimizer implements the logical rewrite rules the paper's
// research agenda calls for: transpose pull-up and double-transpose
// elimination (Section 5.2.2), schema-induction deferral and elision
// (Section 5.1.1), MAP fusion (Section 5.1.3), projection pushdown, and the
// sorted-column group-by rewrite behind the pivot plans of Figure 8.
package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/types"
)

// Rule is one rewrite: Apply returns the rewritten node and whether it
// fired. Rules match on the root of the subtree they are given; Optimize
// applies them everywhere bottom-up.
type Rule interface {
	Name() string
	Apply(algebra.Node) (algebra.Node, bool)
}

// Optimize rewrites the plan to fixpoint (bounded by a generous pass limit)
// and reports the names of the rules that fired, in order.
func Optimize(n algebra.Node, rules []Rule) (algebra.Node, []string) {
	var fired []string
	for pass := 0; pass < 32; pass++ {
		var changed bool
		n, changed = rewriteBottomUp(n, rules, &fired)
		if !changed {
			break
		}
	}
	return n, fired
}

// Default returns the standard rule set, in application order.
func Default() []Rule {
	return []Rule{
		DoubleTranspose{},
		TransposePullUp{},
		FuseSelections{},
		FuseMaps{},
		ElideInduceAfterDeclaredMap{},
		CollapseInduce{},
		DeferInduce{},
		PushProjectionThroughMap{},
		PushProjectionThroughSelection{},
		PushProjectionThroughSort{},
		PushProjectionThroughRename{},
		CollapseProjections{},
		SortedGroupBy{},
		LimitSortToTopK{},
	}
}

func rewriteBottomUp(n algebra.Node, rules []Rule, fired *[]string) (algebra.Node, bool) {
	changed := false
	// Rebuild children first.
	children := n.Children()
	newChildren := make([]algebra.Node, len(children))
	for i, c := range children {
		nc, ch := rewriteBottomUp(c, rules, fired)
		newChildren[i] = nc
		changed = changed || ch
	}
	if changed {
		n = WithChildren(n, newChildren)
	}
	for _, r := range rules {
		if out, ok := r.Apply(n); ok {
			*fired = append(*fired, r.Name())
			return out, true
		}
	}
	return n, changed
}

// WithChildren clones the node with new inputs, preserving all other
// configuration. Node values are small structs, so cloning is cheap.
func WithChildren(n algebra.Node, kids []algebra.Node) algebra.Node {
	switch node := n.(type) {
	case *algebra.Source:
		return node
	case *algebra.Scan:
		return node
	case *algebra.Selection:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Projection:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Union:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.Difference:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.Join:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.DropDuplicates:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.GroupBy:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Sort:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Rename:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Window:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Transpose:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Map:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.ToLabels:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.FromLabels:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Induce:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Limit:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.TopK:
		c := *node
		c.Input = kids[0]
		return &c
	}
	panic(fmt.Sprintf("optimizer: unknown node %T", n))
}

// DoubleTranspose eliminates TRANSPOSE∘TRANSPOSE. Sound when the inner
// transpose declares no schema: T of T restores data, labels, and the
// lazily-induced schema (the Python-style Object coercion of Section 4.3
// guarantees S recovers the original Dn).
type DoubleTranspose struct{}

// Name identifies the rule.
func (DoubleTranspose) Name() string { return "double-transpose-elimination" }

// Apply rewrites T(T(x)) → x.
func (DoubleTranspose) Apply(n algebra.Node) (algebra.Node, bool) {
	outer, ok := n.(*algebra.Transpose)
	if !ok || outer.Schema != nil {
		return n, false
	}
	inner, ok := outer.Input.(*algebra.Transpose)
	if !ok || inner.Schema != nil {
		return n, false
	}
	return inner.Input, true
}

// TransposePullUp hoists TRANSPOSE above elementwise MAPs: MAP_e(T(x)) →
// T(MAP_e(x)). Elementwise functions commute with axis exchange, and
// pulling the transpose up lets it cancel against another transpose or be
// deferred past more of the plan (the "transpose pull-up" of Section 5.2.2).
type TransposePullUp struct{}

// Name identifies the rule.
func (TransposePullUp) Name() string { return "transpose-pull-up" }

// Apply rewrites MAP_e(T(x)) → T(MAP_e(x)).
func (TransposePullUp) Apply(n algebra.Node) (algebra.Node, bool) {
	m, ok := n.(*algebra.Map)
	if !ok || m.Fn.Elementwise == nil || m.Fn.OutCols != nil {
		return n, false
	}
	t, ok := m.Input.(*algebra.Transpose)
	if !ok || t.Schema != nil {
		return n, false
	}
	// Elementwise output domains apply per cell, not per axis, so they
	// survive the exchange.
	inner := &algebra.Map{Input: t.Input, Fn: m.Fn}
	return &algebra.Transpose{Input: inner}, true
}

// FuseSelections merges adjacent structured SELECTIONs into one node:
// SELECT_w2(SELECT_w1(x)) → SELECT_{w1∧w2}(x). The typed filter kernel
// narrows one shared selection vector term by term, so the fused node runs
// every predicate in a single pass with no intermediate row materialization
// — the selection-vector analog of MAP fusion. Only Where-bearing
// selections qualify: opaque predicates have no conjunction form.
type FuseSelections struct{}

// Name identifies the rule.
func (FuseSelections) Name() string { return "fuse-selections" }

// Apply rewrites SELECT_w2(SELECT_w1(x)) → SELECT_{w1∧w2}(x).
func (FuseSelections) Apply(n algebra.Node) (algebra.Node, bool) {
	outer, ok := n.(*algebra.Selection)
	if !ok || outer.Where == nil {
		return n, false
	}
	inner, ok := outer.Input.(*algebra.Selection)
	if !ok || inner.Where == nil {
		return n, false
	}
	terms := make([]expr.WhereTerm, 0, len(inner.Where.Terms)+len(outer.Where.Terms))
	terms = append(terms, inner.Where.Terms...)
	terms = append(terms, outer.Where.Terms...)
	merged := &expr.Where{Terms: terms}
	return &algebra.Selection{
		Input: inner.Input,
		Where: merged,
		Pred:  merged.Predicate(),
		Desc:  merged.Describe(),
	}, true
}

// FuseMaps combines adjacent elementwise MAPs into one pass:
// MAP_f(MAP_g(x)) → MAP_{f∘g}(x), the operator-fusion opportunity of
// Section 5.1.3.
type FuseMaps struct{}

// Name identifies the rule.
func (FuseMaps) Name() string { return "map-fusion" }

// Apply rewrites MAP_f(MAP_g(x)) → MAP_{f∘g}(x).
func (FuseMaps) Apply(n algebra.Node) (algebra.Node, bool) {
	outer, ok := n.(*algebra.Map)
	if !ok || outer.Fn.Elementwise == nil {
		return n, false
	}
	inner, ok := outer.Input.(*algebra.Map)
	if !ok || inner.Fn.Elementwise == nil {
		return n, false
	}
	f, g := outer.Fn.Elementwise, inner.Fn.Elementwise
	fused := expr.MapFn{
		Name:        inner.Fn.Name + "∘" + outer.Fn.Name,
		OutCols:     outer.Fn.OutCols,
		OutDoms:     outer.Fn.OutDoms,
		Elementwise: func(v types.Value) types.Value { return f(g(v)) },
	}
	if fused.OutCols == nil {
		fused.OutCols = inner.Fn.OutCols
	}
	return &algebra.Map{Input: inner.Input, Fn: fused}, true
}

// ElideInduceAfterDeclaredMap removes INDUCE above a MAP whose output
// domains are fully declared: there is nothing left to induce (the UDF-
// with-known-output-type rewrite of Section 5.1.1).
type ElideInduceAfterDeclaredMap struct{}

// Name identifies the rule.
func (ElideInduceAfterDeclaredMap) Name() string { return "elide-induce-declared-map" }

// Apply rewrites INDUCE(MAP_declared(x)) → MAP_declared(x).
func (ElideInduceAfterDeclaredMap) Apply(n algebra.Node) (algebra.Node, bool) {
	ind, ok := n.(*algebra.Induce)
	if !ok {
		return n, false
	}
	m, ok := ind.Input.(*algebra.Map)
	if !ok || m.Fn.OutDoms == nil {
		return n, false
	}
	return m, true
}

// CollapseInduce merges consecutive INDUCE nodes: the second is a no-op.
type CollapseInduce struct{}

// Name identifies the rule.
func (CollapseInduce) Name() string { return "collapse-induce" }

// Apply rewrites INDUCE(INDUCE(x)) → INDUCE(x).
func (CollapseInduce) Apply(n algebra.Node) (algebra.Node, bool) {
	outer, ok := n.(*algebra.Induce)
	if !ok {
		return n, false
	}
	if _, ok := outer.Input.(*algebra.Induce); !ok {
		return n, false
	}
	return outer.Input, true
}

// DeferInduce pushes INDUCE above row-eliminating operators:
// op(INDUCE(x)) → INDUCE(op(x)) for SELECTION and LIMIT, which only shuffle
// or drop rows and never consult column domains through their own
// machinery. Parsing work is then spent only on surviving rows (Section
// 5.1.1: "if certain columns are not operated on, inferring their type can
// be deferred").
type DeferInduce struct{}

// Name identifies the rule.
func (DeferInduce) Name() string { return "defer-induce" }

// Apply rewrites SELECTION(INDUCE(x)) → INDUCE(SELECTION(x)), and the same
// for LIMIT.
func (DeferInduce) Apply(n algebra.Node) (algebra.Node, bool) {
	switch node := n.(type) {
	case *algebra.Selection:
		if ind, ok := node.Input.(*algebra.Induce); ok {
			c := *node
			c.Input = ind.Input
			return &algebra.Induce{Input: &c}, true
		}
	case *algebra.Limit:
		if ind, ok := node.Input.(*algebra.Induce); ok {
			c := *node
			c.Input = ind.Input
			return &algebra.Induce{Input: &c}, true
		}
	}
	return n, false
}

// PushProjectionThroughMap moves PROJECTION below label-preserving
// elementwise MAPs so the map touches fewer columns:
// PROJECT(MAP_e(x)) → MAP_e(PROJECT(x)).
type PushProjectionThroughMap struct{}

// Name identifies the rule.
func (PushProjectionThroughMap) Name() string { return "push-projection-through-map" }

// Apply rewrites PROJECT(MAP_e(x)) → MAP_e(PROJECT(x)).
func (PushProjectionThroughMap) Apply(n algebra.Node) (algebra.Node, bool) {
	p, ok := n.(*algebra.Projection)
	if !ok {
		return n, false
	}
	m, ok := p.Input.(*algebra.Map)
	if !ok || m.Fn.Elementwise == nil || m.Fn.OutCols != nil {
		return n, false
	}
	inner := &algebra.Projection{Input: m.Input, Cols: p.Cols}
	return &algebra.Map{Input: inner, Fn: m.Fn}, true
}

// PushProjectionThroughSelection moves PROJECTION below a structured
// SELECTION whose predicate only reads projected columns:
// PROJECT(SELECT_w(x)) → SELECT_w(PROJECT(x)). The selection then filters
// narrow rows instead of full-width ones. Opaque predicates may read any
// column (including by position), so only Where-bearing selections qualify,
// and every Where term's column must survive the projection.
type PushProjectionThroughSelection struct{}

// Name identifies the rule.
func (PushProjectionThroughSelection) Name() string { return "push-projection-through-selection" }

// Apply rewrites PROJECT(SELECT_w(x)) → SELECT_w(PROJECT(x)).
func (PushProjectionThroughSelection) Apply(n algebra.Node) (algebra.Node, bool) {
	p, ok := n.(*algebra.Projection)
	if !ok {
		return n, false
	}
	sel, ok := p.Input.(*algebra.Selection)
	if !ok || sel.Where == nil {
		return n, false
	}
	kept := make(map[string]bool, len(p.Cols))
	for _, c := range p.Cols {
		kept[c] = true
	}
	for _, term := range sel.Where.Terms {
		if !kept[term.Col] {
			return n, false
		}
	}
	c := *sel
	c.Input = &algebra.Projection{Input: sel.Input, Cols: p.Cols}
	return &c, true
}

// PushProjectionThroughSort moves PROJECTION below a SORT whose keys all
// survive the projection: PROJECT(SORT(x, keys)) → SORT(PROJECT(x), keys).
// Projection preserves row order, so sorting narrow rows is equivalent.
type PushProjectionThroughSort struct{}

// Name identifies the rule.
func (PushProjectionThroughSort) Name() string { return "push-projection-through-sort" }

// Apply rewrites PROJECT(SORT(x, keys)) → SORT(PROJECT(x), keys).
func (PushProjectionThroughSort) Apply(n algebra.Node) (algebra.Node, bool) {
	p, ok := n.(*algebra.Projection)
	if !ok {
		return n, false
	}
	s, ok := p.Input.(*algebra.Sort)
	if !ok || s.ByLabels {
		return n, false
	}
	kept := make(map[string]bool, len(p.Cols))
	for _, c := range p.Cols {
		kept[c] = true
	}
	for _, key := range s.Order {
		if !kept[key.Col] {
			return n, false
		}
	}
	c := *s
	c.Input = &algebra.Projection{Input: s.Input, Cols: p.Cols}
	return &c, true
}

// PushProjectionThroughRename moves PROJECTION below RENAME, translating
// the projected labels back to their pre-rename names:
// PROJECT(RENAME(x, m)) → RENAME'(PROJECT'(x)). The rename then touches
// only surviving columns. The rule declines when the mapping collapses two
// sources onto one target (inversion is ambiguous), when a projected label
// was renamed *away* (the projection must keep erroring), or when the
// statically-inferred post-rename labels are unknown or contain duplicates
// (by-name projection resolves to the FIRST occurrence, which inversion
// cannot reproduce — e.g. renaming v→k beside an existing k). Mapping
// entries whose targets the projection drops are discarded unvalidated: a
// rename of a nonexistent column that the query never reads stops being an
// error, like a resolved catalog would treat it.
type PushProjectionThroughRename struct{}

// Name identifies the rule.
func (PushProjectionThroughRename) Name() string { return "push-projection-through-rename" }

// Apply rewrites PROJECT(RENAME(x, m)) → RENAME'(PROJECT'(x)).
func (PushProjectionThroughRename) Apply(n algebra.Node) (algebra.Node, bool) {
	p, ok := n.(*algebra.Projection)
	if !ok {
		return n, false
	}
	r, ok := p.Input.(*algebra.Rename)
	if !ok {
		return n, false
	}
	// Inversion is only faithful when every post-rename label is unique:
	// with duplicates, the projection picks the first occurrence, which may
	// be an untouched column shadowed by a rename target.
	post := algebra.OutputColumns(r)
	if post == nil {
		return n, false
	}
	seen := make(map[string]bool, len(post))
	for _, name := range post {
		if seen[name] {
			return n, false
		}
		seen[name] = true
	}
	inverse := make(map[string]string, len(r.Mapping))
	for from, to := range r.Mapping {
		if _, dup := inverse[to]; dup {
			return n, false
		}
		inverse[to] = from
	}
	sources := make([]string, len(p.Cols))
	narrowed := make(map[string]string)
	for i, col := range p.Cols {
		from, renamed := inverse[col]
		if !renamed {
			if _, away := r.Mapping[col]; away {
				// col was renamed to something else: projecting it above
				// the rename fails, so the plan must keep failing.
				return n, false
			}
			from = col
		}
		sources[i] = from
		if from != col {
			narrowed[from] = col
		}
	}
	inner := &algebra.Projection{Input: r.Input, Cols: sources}
	if len(narrowed) == 0 {
		return inner, true
	}
	return &algebra.Rename{Input: inner, Mapping: narrowed}, true
}

// CollapseProjections merges stacked projections into the outer one:
// PROJECT_a(PROJECT_b(x)) → PROJECT_a(x), sound when every outer column is
// produced by the inner projection (otherwise the inner projection's error
// must be preserved).
type CollapseProjections struct{}

// Name identifies the rule.
func (CollapseProjections) Name() string { return "collapse-projections" }

// Apply rewrites PROJECT_a(PROJECT_b(x)) → PROJECT_a(x) when a ⊆ b.
func (CollapseProjections) Apply(n algebra.Node) (algebra.Node, bool) {
	outer, ok := n.(*algebra.Projection)
	if !ok {
		return n, false
	}
	inner, ok := outer.Input.(*algebra.Projection)
	if !ok {
		return n, false
	}
	produced := make(map[string]bool, len(inner.Cols))
	for _, c := range inner.Cols {
		produced[c] = true
	}
	for _, c := range outer.Cols {
		if !produced[c] {
			return n, false
		}
	}
	return &algebra.Projection{Input: inner.Input, Cols: outer.Cols}, true
}

// SortedGroupBy marks a GROUPBY whose input is explicitly sorted by a
// prefix of the grouping keys, switching the engine from hashing to the
// streaming run-detection used by the Figure 8(b) pivot rewrite.
type SortedGroupBy struct{}

// Name identifies the rule.
func (SortedGroupBy) Name() string { return "sorted-groupby" }

// Apply sets Sorted on GROUPBY(SORT(x, keys...)) when the sort keys begin
// with the grouping keys (ascending).
func (SortedGroupBy) Apply(n algebra.Node) (algebra.Node, bool) {
	g, ok := n.(*algebra.GroupBy)
	if !ok || g.Spec.Sorted || len(g.Spec.Keys) == 0 {
		return n, false
	}
	s, ok := g.Input.(*algebra.Sort)
	if !ok || s.ByLabels || len(s.Order) < len(g.Spec.Keys) {
		return n, false
	}
	for i, key := range g.Spec.Keys {
		if s.Order[i].Col != key || s.Order[i].Desc {
			return n, false
		}
	}
	c := *g
	c.Spec.Sorted = true
	return &c, true
}

// LimitSortToTopK fuses LIMIT(SORT(x)) into the TOPK physical operator:
// when the user inspects only the head or tail of a sorted result (the
// dominant inspection pattern of Section 6.1.2), a bounded heap replaces
// the full blocking sort — O(n log k) instead of O(n log n), and
// partition-parallel under MODIN.
type LimitSortToTopK struct{}

// Name identifies the rule.
func (LimitSortToTopK) Name() string { return "limit-sort-to-topk" }

// Apply rewrites LIMIT(SORT(x, order), n) → TOPK(x, order, n).
func (LimitSortToTopK) Apply(n algebra.Node) (algebra.Node, bool) {
	lim, ok := n.(*algebra.Limit)
	if !ok {
		return n, false
	}
	s, ok := lim.Input.(*algebra.Sort)
	if !ok || s.ByLabels || len(s.Order) == 0 {
		return n, false
	}
	return &algebra.TopK{Input: s.Input, Order: s.Order, N: lim.N}, true
}

// Explain renders the plan before and after optimization with the fired
// rules, for debugging and documentation.
func Explain(n algebra.Node, rules []Rule) string {
	var b strings.Builder
	b.WriteString("before:\n")
	b.WriteString(algebra.Render(n))
	out, fired := Optimize(n, rules)
	b.WriteString("after:\n")
	b.WriteString(algebra.Render(out))
	b.WriteString("rules fired: ")
	if len(fired) == 0 {
		b.WriteString("(none)")
	} else {
		b.WriteString(strings.Join(fired, ", "))
	}
	b.WriteByte('\n')
	return b.String()
}

package optimizer

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/types"
)

// Plan fingerprinting for the server's query-plan cache: two plans get the
// same fingerprint exactly when they compute the same result from the same
// source frames. The canonical rendering keeps operator shapes and literal
// constants but strips every name the user chose — statement names never
// reach the plan, and source frames appear as positional placeholders $0,
// $1, ... in first-reference order (the same *core.DataFrame referenced
// twice reuses its placeholder, so self-joins fingerprint correctly). Thus
// Alice's `SELECTION(x > 3)` over a frame and Bob's identical query over
// the same shared frame collide — which is the point — while a different
// literal, operator, or column keeps them apart.
//
// Plans carrying opaque Go closures (a Selection with only a Pred, any Map)
// are not fingerprintable: closures have no canonical form and two
// distinct functions could render alike. Fingerprint reports ok=false and
// such plans bypass the cache.

// Fingerprint canonicalizes the plan. It returns the cache key, the source
// frames in placeholder order ($0 is sources[0], ...), and whether the plan
// is cacheable at all.
func Fingerprint(n algebra.Node) (key string, sources []*core.DataFrame, ok bool) {
	fp := &fingerprinter{index: make(map[*core.DataFrame]int), ok: true}
	fp.walk(n)
	if !fp.ok {
		return "", nil, false
	}
	return fp.b.String(), fp.sources, true
}

type fingerprinter struct {
	b       strings.Builder
	index   map[*core.DataFrame]int
	sources []*core.DataFrame
	ok      bool
}

func (fp *fingerprinter) walk(n algebra.Node) {
	if !fp.ok {
		return
	}
	fp.node(n)
	if !fp.ok {
		return
	}
	children := n.Children()
	fp.b.WriteByte('[')
	for _, c := range children {
		fp.walk(c)
	}
	fp.b.WriteByte(']')
}

// node emits one operator's canonical line. Each case must include every
// field that affects the result and nothing that doesn't.
func (fp *fingerprinter) node(n algebra.Node) {
	switch node := n.(type) {
	case *algebra.Source:
		i, seen := fp.index[node.DF]
		if !seen {
			i = len(fp.sources)
			fp.index[node.DF] = i
			fp.sources = append(fp.sources, node.DF)
		}
		fmt.Fprintf(&fp.b, "$%d;", i)
	case *algebra.Selection:
		if node.Where == nil {
			fp.ok = false // opaque predicate: no canonical form
			return
		}
		fp.b.WriteString("sel(")
		for _, t := range node.Where.Terms {
			fmt.Fprintf(&fp.b, "%s %v %s,", quote(t.Col), t.Op, literal(t.Operand))
		}
		fp.b.WriteString(");")
	case *algebra.Projection:
		fp.b.WriteString("proj(")
		fp.cols(node.Cols)
		fp.b.WriteString(");")
	case *algebra.Union:
		fp.b.WriteString("union;")
	case *algebra.Difference:
		fp.b.WriteString("diff;")
	case *algebra.Join:
		fmt.Fprintf(&fp.b, "join(%d,labels=%t,", int(node.Kind), node.OnLabels)
		fp.cols(node.On)
		fp.b.WriteString(");")
	case *algebra.DropDuplicates:
		fp.b.WriteString("dedup(")
		fp.cols(node.Subset)
		fp.b.WriteString(");")
	case *algebra.GroupBy:
		fmt.Fprintf(&fp.b, "group(aslabels=%t,sorted=%t,", node.Spec.AsLabels, node.Spec.Sorted)
		fp.cols(node.Spec.Keys)
		for _, a := range node.Spec.Aggs {
			// The output name is part of the result's schema, so As
			// (via OutName) stays in the key.
			fmt.Fprintf(&fp.b, "%d(%s)as %s,", int(a.Agg), quote(a.Col), quote(a.OutName()))
		}
		fp.b.WriteString(");")
	case *algebra.Sort:
		fmt.Fprintf(&fp.b, "sort(labels=%t", node.ByLabels)
		for _, k := range node.Order {
			fmt.Fprintf(&fp.b, ",%s desc=%t", quote(k.Col), k.Desc)
		}
		fp.b.WriteString(");")
	case *algebra.TopK:
		fmt.Fprintf(&fp.b, "topk(%d", node.N)
		for _, k := range node.Order {
			fmt.Fprintf(&fp.b, ",%s desc=%t", quote(k.Col), k.Desc)
		}
		fp.b.WriteString(");")
	case *algebra.Rename:
		// Map iteration order is random; sort for a canonical form. The
		// new names are part of the output schema and stay in the key.
		froms := make([]string, 0, len(node.Mapping))
		for from := range node.Mapping {
			froms = append(froms, from)
		}
		sort.Strings(froms)
		fp.b.WriteString("rename(")
		for _, from := range froms {
			fmt.Fprintf(&fp.b, "%s>%s,", quote(from), quote(node.Mapping[from]))
		}
		fp.b.WriteString(");")
	case *algebra.Window:
		s := node.Spec
		fmt.Fprintf(&fp.b, "window(%d,size=%d,off=%d,agg=%d,min=%d,rev=%t,",
			int(s.Kind), s.Size, s.Offset, int(s.Agg), s.MinPeriods, s.Reverse)
		fp.cols(s.Cols)
		fp.b.WriteString(");")
	case *algebra.Transpose:
		fp.b.WriteString("transpose(")
		for _, d := range node.Schema {
			fmt.Fprintf(&fp.b, "%d,", int(d))
		}
		fp.b.WriteString(");")
	case *algebra.ToLabels:
		fmt.Fprintf(&fp.b, "tolabels(%s);", quote(node.Col))
	case *algebra.FromLabels:
		fmt.Fprintf(&fp.b, "fromlabels(%s);", quote(node.Label))
	case *algebra.Induce:
		fp.b.WriteString("induce;")
	case *algebra.Limit:
		fmt.Fprintf(&fp.b, "limit(%d);", node.N)
	default:
		// *algebra.Map and any operator added later: without an explicit
		// canonical form here, refuse to cache rather than risk collision.
		fp.ok = false
	}
}

// cols emits a delimited column list; quoting keeps ("a,b") and ("a","b")
// apart.
func (fp *fingerprinter) cols(cols []string) {
	for _, c := range cols {
		fp.b.WriteString(quote(c))
		fp.b.WriteByte(',')
	}
}

func quote(s string) string { return strconv.Quote(s) }

// literal renders a constant with its domain, so Int(1) and String("1")
// cannot collide.
func literal(v types.Value) string {
	if v.IsNull() {
		return "null"
	}
	return fmt.Sprintf("%d:%s", int(v.Domain()), strconv.Quote(v.String()))
}

// SourceVersion summarizes the identity of a plan's bound sources: two
// fingerprint-equal plans share materialized results only when their
// sources are version-identical too. Frames are immutable in this system —
// a rebind produces a new *core.DataFrame — so pointer identity is exactly
// version identity, and a rebound base frame silently misses instead of
// serving stale rows.
func SourceVersion(sources []*core.DataFrame) string {
	var b strings.Builder
	for _, df := range sources {
		fmt.Fprintf(&b, "%p;", df)
	}
	return b.String()
}

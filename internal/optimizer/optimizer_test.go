package optimizer

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/types"
)

func source(t *testing.T) *algebra.Source {
	t.Helper()
	return &algebra.Source{DF: core.MustFromRecords(
		[]string{"k", "v"},
		[][]any{{"b", 1}, {"a", 2}, {"b", 3}, {"a", 4}},
	), Name: "t"}
}

// runBoth executes the plan before and after optimization and requires the
// same result — the soundness property every rule must satisfy.
func runBoth(t *testing.T, plan algebra.Node, wantRules ...string) *core.DataFrame {
	t.Helper()
	engine := eager.New()
	before, err := engine.Execute(plan)
	if err != nil {
		t.Fatalf("before: %v", err)
	}
	opt, fired := Optimize(plan, Default())
	after, err := engine.Execute(opt)
	if err != nil {
		t.Fatalf("after: %v", err)
	}
	if !before.Equal(after) {
		t.Fatalf("rewrite changed semantics:\nbefore:\n%s\nafter:\n%s\nplan:\n%s", before, after, algebra.Render(opt))
	}
	for _, want := range wantRules {
		found := false
		for _, f := range fired {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("rule %q did not fire; fired = %v", want, fired)
		}
	}
	return after
}

func TestDoubleTransposeElimination(t *testing.T) {
	plan := &algebra.Transpose{Input: &algebra.Transpose{Input: source(t)}}
	runBoth(t, plan, "double-transpose-elimination")
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.Source); !ok {
		t.Errorf("T∘T should reduce to the source, got:\n%s", algebra.Render(opt))
	}
}

func TestDoubleTransposeKeepsDeclaredSchema(t *testing.T) {
	plan := &algebra.Transpose{Input: &algebra.Transpose{
		Input:  source(t),
		Schema: []types.Domain{types.Object, types.Object, types.Object, types.Object},
	}}
	_, fired := Optimize(plan, Default())
	for _, f := range fired {
		if f == "double-transpose-elimination" {
			t.Error("declared inner schema must block elimination")
		}
	}
}

func TestTransposePullUpEnablesCancellation(t *testing.T) {
	// T(MAP_e(T(x))) — the columnwise-operation idiom of Section 5.2.2 —
	// should collapse to MAP_e(x): no physical transpose at all.
	inner := &algebra.Map{
		Input: &algebra.Transpose{Input: source(t)},
		Fn:    algebra.FillNAFn(types.String("-")),
	}
	plan := &algebra.Transpose{Input: inner}
	runBoth(t, plan, "transpose-pull-up", "double-transpose-elimination")
	opt, _ := Optimize(plan, Default())
	if strings.Contains(algebra.Render(opt), "TRANSPOSE") {
		t.Errorf("both transposes should be gone:\n%s", algebra.Render(opt))
	}
}

func TestFuseMaps(t *testing.T) {
	plan := &algebra.Map{
		Input: &algebra.Map{Input: source(t), Fn: algebra.FillNAFn(types.IntValue(0))},
		Fn:    algebra.StrUpperFn(),
	}
	runBoth(t, plan, "map-fusion")
	opt, _ := Optimize(plan, Default())
	if algebra.CountNodes(opt) != 2 {
		t.Errorf("fused plan should be MAP(SOURCE):\n%s", algebra.Render(opt))
	}
}

func TestInduceRules(t *testing.T) {
	// INDUCE over a declared-output MAP is elided.
	plan := &algebra.Induce{Input: &algebra.Map{Input: source(t), Fn: algebra.IsNullFn()}}
	runBoth(t, plan, "elide-induce-declared-map")

	// INDUCE(INDUCE(x)) collapses.
	plan2 := &algebra.Induce{Input: &algebra.Induce{Input: source(t)}}
	runBoth(t, plan2, "collapse-induce")

	// SELECTION(INDUCE(x)) defers induction past the filter.
	plan3 := &algebra.Selection{
		Input: &algebra.Induce{Input: source(t)},
		Pred:  expr.ColEquals("k", types.String("a")),
		Desc:  "k==a",
	}
	runBoth(t, plan3, "defer-induce")
	opt, _ := Optimize(plan3, Default())
	if _, ok := opt.(*algebra.Induce); !ok {
		t.Errorf("induce should be outermost:\n%s", algebra.Render(opt))
	}
}

func TestPushProjectionThroughMap(t *testing.T) {
	plan := &algebra.Projection{
		Input: &algebra.Map{Input: source(t), Fn: algebra.FillNAFn(types.IntValue(0))},
		Cols:  []string{"v"},
	}
	runBoth(t, plan, "push-projection-through-map")
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.Map); !ok {
		t.Errorf("map should be outermost:\n%s", algebra.Render(opt))
	}
}

func TestPushProjectionThroughSelection(t *testing.T) {
	w := expr.WhereNotNull("v")
	plan := &algebra.Projection{
		Input: &algebra.Selection{Input: source(t), Where: w, Pred: w.Predicate(), Desc: "v notnull"},
		Cols:  []string{"v"},
	}
	runBoth(t, plan, "push-projection-through-selection")
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.Selection); !ok {
		t.Errorf("selection should be outermost:\n%s", algebra.Render(opt))
	}

	// A predicate reading a dropped column blocks the push.
	wk := expr.WhereNotNull("k")
	blocked := &algebra.Projection{
		Input: &algebra.Selection{Input: source(t), Where: wk, Pred: wk.Predicate(), Desc: "k notnull"},
		Cols:  []string{"v"},
	}
	opt2, fired := Optimize(blocked, Default())
	for _, f := range fired {
		if f == "push-projection-through-selection" {
			t.Errorf("predicate over dropped column must block the push:\n%s", algebra.Render(opt2))
		}
	}

	// Opaque predicates may read anything: never pushed.
	opaque := &algebra.Projection{
		Input: &algebra.Selection{Input: source(t), Pred: expr.ColNotNull("v"), Desc: "opaque"},
		Cols:  []string{"v"},
	}
	if _, fired := Optimize(opaque, Default()); len(fired) != 0 {
		t.Errorf("opaque selection must not move, fired = %v", fired)
	}
}

func TestPushProjectionThroughSort(t *testing.T) {
	plan := &algebra.Projection{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "v", Desc: true}}},
		Cols:  []string{"v"},
	}
	runBoth(t, plan, "push-projection-through-sort")
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.Sort); !ok {
		t.Errorf("sort should be outermost:\n%s", algebra.Render(opt))
	}

	// Sorting by a dropped key blocks the push.
	blocked := &algebra.Projection{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "k"}}},
		Cols:  []string{"v"},
	}
	if _, fired := Optimize(blocked, Default()); len(fired) != 0 {
		t.Errorf("sort key outside the projection must block, fired = %v", fired)
	}

	// Label sorts do not consume data columns but establish order from
	// metadata; the push is still sound only for data-column sorts here.
	byLabels := &algebra.Projection{
		Input: &algebra.Sort{Input: source(t), ByLabels: true},
		Cols:  []string{"v"},
	}
	if _, fired := Optimize(byLabels, Default()); len(fired) != 0 {
		t.Errorf("label sorts must not move, fired = %v", fired)
	}
}

func TestPushProjectionThroughRename(t *testing.T) {
	plan := &algebra.Projection{
		Input: &algebra.Rename{Input: source(t), Mapping: map[string]string{"v": "value", "k": "key"}},
		Cols:  []string{"value"},
	}
	runBoth(t, plan, "push-projection-through-rename")
	opt, _ := Optimize(plan, Default())
	r, ok := opt.(*algebra.Rename)
	if !ok {
		t.Fatalf("rename should be outermost:\n%s", algebra.Render(opt))
	}
	if len(r.Mapping) != 1 || r.Mapping["v"] != "value" {
		t.Errorf("rename should narrow to the surviving column, got %v", r.Mapping)
	}

	// Identity-surviving projection: the rename disappears entirely.
	ident := &algebra.Projection{
		Input: &algebra.Rename{Input: source(t), Mapping: map[string]string{"k": "key"}},
		Cols:  []string{"v"},
	}
	runBoth(t, ident, "push-projection-through-rename")
	opt2, _ := Optimize(ident, Default())
	if _, ok := opt2.(*algebra.Projection); !ok {
		t.Errorf("no surviving rename expected:\n%s", algebra.Render(opt2))
	}

	// Projecting a renamed-away label must keep erroring: no push.
	away := &algebra.Projection{
		Input: &algebra.Rename{Input: source(t), Mapping: map[string]string{"v": "value"}},
		Cols:  []string{"v"},
	}
	if _, fired := Optimize(away, Default()); len(fired) != 0 {
		t.Errorf("renamed-away projection must not move, fired = %v", fired)
	}

	// A rename target shadowing an existing label creates duplicate
	// post-rename labels: the projection resolves to the FIRST occurrence
	// (the untouched k), which inversion cannot reproduce — the rule must
	// decline, and the optimized plan must return identical data.
	shadow := &algebra.Projection{
		Input: &algebra.Rename{Input: source(t), Mapping: map[string]string{"v": "k"}},
		Cols:  []string{"k"},
	}
	runBoth(t, shadow)
	if _, fired := Optimize(shadow, Default()); len(fired) != 0 {
		t.Errorf("shadowing rename must not move, fired = %v", fired)
	}
}

func TestCollapseProjections(t *testing.T) {
	plan := &algebra.Projection{
		Input: &algebra.Projection{Input: source(t), Cols: []string{"k", "v"}},
		Cols:  []string{"v"},
	}
	runBoth(t, plan, "collapse-projections")
	opt, _ := Optimize(plan, Default())
	if algebra.CountNodes(opt) != 2 {
		t.Errorf("stacked projections should collapse:\n%s", algebra.Render(opt))
	}

	// The outer projection referencing a column the inner dropped must keep
	// failing, so the collapse declines.
	blocked := &algebra.Projection{
		Input: &algebra.Projection{Input: source(t), Cols: []string{"v"}},
		Cols:  []string{"k"},
	}
	if _, fired := Optimize(blocked, Default()); len(fired) != 0 {
		t.Errorf("collapse must preserve the inner projection's error, fired = %v", fired)
	}
}

func TestSortedGroupBy(t *testing.T) {
	plan := &algebra.GroupBy{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "k"}}},
		Spec: expr.GroupBySpec{
			Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
		},
	}
	runBoth(t, plan, "sorted-groupby")
	opt, _ := Optimize(plan, Default())
	if !opt.(*algebra.GroupBy).Spec.Sorted {
		t.Error("groupby should be marked sorted")
	}

	// Descending sort must not mark sorted.
	plan2 := &algebra.GroupBy{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "k", Desc: true}}},
		Spec:  plan.Spec,
	}
	opt2, _ := Optimize(plan2, Default())
	if opt2.(*algebra.GroupBy).Spec.Sorted {
		t.Error("descending sort must not enable streaming groupby")
	}
}

func TestOptimizeReachesFixpoint(t *testing.T) {
	// A deep tower of transposes reduces fully.
	var plan algebra.Node = source(t)
	for i := 0; i < 8; i++ {
		plan = &algebra.Transpose{Input: plan}
	}
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.Source); !ok {
		t.Errorf("8 transposes should cancel:\n%s", algebra.Render(opt))
	}
}

func TestEstimates(t *testing.T) {
	src := source(t) // 4x2
	if e := EstimateNode(src); e.Rows != 4 || e.Cols != 2 {
		t.Errorf("source estimate = %+v", e)
	}
	tr := &algebra.Transpose{Input: src}
	if e := EstimateNode(tr); e.Rows != 2 || e.Cols != 4 {
		t.Errorf("transpose estimate = %+v (axes must swap exactly)", e)
	}
	sel := &algebra.Selection{Input: src, Pred: expr.ColNotNull("k"), Desc: "x"}
	if e := EstimateNode(sel); e.Rows != 2 {
		t.Errorf("selection estimate = %+v", e)
	}
	join := &algebra.Join{Left: src, Right: src, Kind: expr.JoinCross}
	if e := EstimateNode(join); e.Rows != 16 || e.Cols != 4 {
		t.Errorf("cross estimate = %+v", e)
	}
	lim := &algebra.Limit{Input: src, N: -2}
	if e := EstimateNode(lim); e.Rows != 2 {
		t.Errorf("limit estimate = %+v", e)
	}
	if EstimateNode(&algebra.FromLabels{Input: src, Label: "x"}).Cols != 3 {
		t.Error("fromlabels estimate wrong")
	}
	if EstimateNode(&algebra.ToLabels{Input: src, Col: "k"}).Cols != 1 {
		t.Error("tolabels estimate wrong")
	}
	gb := &algebra.GroupBy{Input: src, Spec: expr.GroupBySpec{Keys: []string{"k"}, Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}}}}
	if e := EstimateNode(gb); e.Cols != 2 {
		t.Errorf("groupby estimate = %+v", e)
	}
}

// fixedStats is a SourceStats stub returning one NDV for every key lookup.
type fixedStats struct{ ndv float64 }

func (f fixedStats) KeyNDV(df *core.DataFrame, cols []string) (float64, bool) {
	return f.ndv, true
}

func TestEstimatorUsesKeySketches(t *testing.T) {
	src := source(t) // 4x2, key column "k" with 2 distinct values
	est := Estimator{Stats: fixedStats{ndv: 2}}

	gb := &algebra.GroupBy{Input: src, Spec: expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}},
	}}
	if e := est.EstimateNode(gb); e.Rows != 2 {
		t.Errorf("groupby rows with key sketch = %v, want 2", e.Rows)
	}
	// Without stats the distinctFraction guess applies unchanged.
	if e := EstimateNode(gb); e.Rows != 1 {
		t.Errorf("zero-stats groupby rows = %v, want 1", e.Rows)
	}
	// The sketch walks through key-preserving operators but is capped by
	// the estimated input cardinality.
	capped := &algebra.GroupBy{Input: &algebra.Limit{Input: src, N: 1}, Spec: gb.Spec}
	if e := est.EstimateNode(capped); e.Rows != 1 {
		t.Errorf("groupby rows through limit = %v, want 1", e.Rows)
	}
	// Equi-join cardinality: |L|*|R| / max ndv.
	join := &algebra.Join{Left: src, Right: src, Kind: expr.JoinInner, On: []string{"k"}}
	if e := est.EstimateNode(join); e.Rows != 8 {
		t.Errorf("join rows with key sketches = %v, want 8", e.Rows)
	}
	if e := EstimateNode(join); e.Rows != 4 {
		t.Errorf("zero-stats join rows = %v, want 4", e.Rows)
	}
	// A non-key-preserving input (the join itself) gives up on sketches.
	if _, ok := est.KeyNDV(join, []string{"k"}); ok {
		t.Error("KeyNDV should not claim estimates through a join")
	}
}

func TestExplainRendering(t *testing.T) {
	plan := &algebra.Transpose{Input: &algebra.Transpose{Input: source(t)}}
	out := Explain(plan, Default())
	if !strings.Contains(out, "before:") || !strings.Contains(out, "after:") ||
		!strings.Contains(out, "double-transpose-elimination") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestLimitSortToTopK(t *testing.T) {
	plan := &algebra.Limit{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "v", Desc: true}}},
		N:     2,
	}
	runBoth(t, plan, "limit-sort-to-topk")
	opt, _ := Optimize(plan, Default())
	if _, ok := opt.(*algebra.TopK); !ok {
		t.Errorf("plan should fuse to TOPK:\n%s", algebra.Render(opt))
	}
	if e := EstimateNode(opt); e.Rows != 2 {
		t.Errorf("topk estimate = %+v", e)
	}
	// Label sorts and suffix limits behave too.
	tail := &algebra.Limit{
		Input: &algebra.Sort{Input: source(t), Order: expr.SortOrder{{Col: "v"}}},
		N:     -2,
	}
	runBoth(t, tail, "limit-sort-to-topk")
	byLabels := &algebra.Limit{Input: &algebra.Sort{Input: source(t), ByLabels: true}, N: 2}
	if _, fired := Optimize(byLabels, Default()); len(fired) != 0 {
		t.Error("label sorts must not fuse")
	}
}

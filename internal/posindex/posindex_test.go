package posindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSequence(t *testing.T) {
	ix := New[int]()
	if ix.Len() != 0 {
		t.Fatal("empty index should have length 0")
	}
	for i := 0; i < 10; i++ {
		ix.Append(i * 10)
	}
	if ix.Len() != 10 {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < 10; i++ {
		v, err := ix.At(i)
		if err != nil || v != i*10 {
			t.Errorf("At(%d) = %d, %v", i, v, err)
		}
	}
}

func TestInsertShiftsPositions(t *testing.T) {
	ix := FromSlice([]string{"a", "b", "d"})
	if err := ix.Insert(2, "c"); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	got := ix.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v", got)
		}
	}
	// Head and tail inserts.
	ix.Insert(0, "start")
	ix.Insert(ix.Len(), "end")
	got = ix.Values()
	if got[0] != "start" || got[len(got)-1] != "end" {
		t.Errorf("boundary inserts wrong: %v", got)
	}
}

func TestDeleteShiftsPositions(t *testing.T) {
	ix := FromSlice([]int{0, 1, 2, 3, 4})
	v, err := ix.Delete(2)
	if err != nil || v != 2 {
		t.Fatalf("delete = %d, %v", v, err)
	}
	got := ix.Values()
	want := []int{0, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after delete: %v", got)
		}
	}
}

func TestSetAndSlice(t *testing.T) {
	ix := FromSlice([]int{1, 2, 3, 4, 5})
	if err := ix.Set(2, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.At(2); v != 99 {
		t.Error("set failed")
	}
	s, err := ix.Slice(1, 4)
	if err != nil || len(s) != 3 || s[0] != 2 || s[1] != 99 || s[2] != 4 {
		t.Errorf("slice = %v, %v", s, err)
	}
	if _, err := ix.Slice(3, 2); err == nil {
		t.Error("bad slice should fail")
	}
}

func TestOutOfRange(t *testing.T) {
	ix := FromSlice([]int{1})
	if _, err := ix.At(1); err == nil {
		t.Error("At out of range should fail")
	}
	if _, err := ix.Delete(-1); err == nil {
		t.Error("Delete out of range should fail")
	}
	if err := ix.Insert(5, 0); err == nil {
		t.Error("Insert out of range should fail")
	}
	if err := ix.Set(9, 0); err == nil {
		t.Error("Set out of range should fail")
	}
}

// TestMatchesSliceReference drives the index and a plain slice with the same
// random edit script and requires identical sequences throughout.
func TestMatchesSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := New[int]()
	var ref []int
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(ref) == 0: // insert
			pos := rng.Intn(len(ref) + 1)
			v := rng.Int()
			if err := ix.Insert(pos, v); err != nil {
				t.Fatal(err)
			}
			ref = append(ref[:pos], append([]int{v}, ref[pos:]...)...)
		case op == 1: // delete
			pos := rng.Intn(len(ref))
			got, err := ix.Delete(pos)
			if err != nil || got != ref[pos] {
				t.Fatalf("delete mismatch at step %d", step)
			}
			ref = append(ref[:pos], ref[pos+1:]...)
		case op == 2: // read
			pos := rng.Intn(len(ref))
			got, err := ix.At(pos)
			if err != nil || got != ref[pos] {
				t.Fatalf("read mismatch at step %d: %d vs %d", step, got, ref[pos])
			}
		default: // set
			pos := rng.Intn(len(ref))
			v := rng.Int()
			if err := ix.Set(pos, v); err != nil {
				t.Fatal(err)
			}
			ref[pos] = v
		}
		if ix.Len() != len(ref) {
			t.Fatalf("length diverged at step %d", step)
		}
	}
	got := ix.Values()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("final sequence mismatch at %d", i)
		}
	}
}

func TestFromSliceRoundTripProperty(t *testing.T) {
	prop := func(vals []int64) bool {
		ix := FromSlice(vals)
		got := ix.Values()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalanced(t *testing.T) {
	// 100k sequential appends should still give logarithmic access: probe
	// indirectly by checking the structure handles a large sequence fast
	// enough for the test timeout, and positions stay correct.
	ix := New[int]()
	const n = 100_000
	for i := 0; i < n; i++ {
		ix.Append(i)
	}
	for _, pos := range []int{0, 1, n / 2, n - 1} {
		if v, err := ix.At(pos); err != nil || v != pos {
			t.Fatalf("At(%d) = %d, %v", pos, v, err)
		}
	}
	// Insert at the front of a large index (the O(n) case for slices).
	if err := ix.Insert(0, -1); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.At(0); v != -1 {
		t.Error("front insert wrong")
	}
	if v, _ := ix.At(n); v != n-1 {
		t.Error("shifted tail wrong")
	}
}

// Package posindex implements the positional index of Section 5.2.1: an
// order-statistic structure giving O(log n) ordered access (select by
// position) in the presence of edits (insert/delete of rows), the mechanism
// the paper cites ([25], Bendre et al.) for decoupling a dataframe's logical
// order from its physical layout. A dataframe system keeps one of these per
// axis so that "the i'th row" stays meaningful while rows are added and
// removed without O(n) renumbering.
//
// The implementation is a treap (randomized balanced BST) augmented with
// subtree sizes; positions are implicit (rank within the tree), so an
// insertion shifts every following position in O(log n).
package posindex

import (
	"fmt"
)

// Index is an ordered sequence of payloads supporting positional access,
// insertion and deletion in O(log n). The zero value is an empty index.
type Index[T any] struct {
	root *node[T]
	rng  uint64
}

type node[T any] struct {
	left, right *node[T]
	size        int
	prio        uint64
	val         T
}

func size[T any](n *node[T]) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node[T]) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// New returns an empty index.
func New[T any]() *Index[T] { return &Index[T]{rng: 0x9e3779b97f4a7c15} }

// nextPrio is a splitmix64 step: deterministic, well-mixed priorities keep
// the treap balanced with reproducible structure.
func (ix *Index[T]) nextPrio() uint64 {
	ix.rng += 0x9e3779b97f4a7c15
	z := ix.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of entries.
func (ix *Index[T]) Len() int { return size(ix.root) }

// split divides t into positions [0, k) and [k, n).
func split[T any](t *node[T], k int) (left, right *node[T]) {
	if t == nil {
		return nil, nil
	}
	if size(t.left) >= k {
		l, r := split(t.left, k)
		t.left = r
		t.update()
		return l, t
	}
	l, r := split(t.right, k-size(t.left)-1)
	t.right = l
	t.update()
	return t, r
}

// merge joins two treaps where every position of l precedes every position
// of r.
func merge[T any](l, r *node[T]) *node[T] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Insert places v at position pos, shifting later positions up by one.
func (ix *Index[T]) Insert(pos int, v T) error {
	if pos < 0 || pos > ix.Len() {
		return fmt.Errorf("posindex: insert at %d out of range [0, %d]", pos, ix.Len())
	}
	n := &node[T]{size: 1, prio: ix.nextPrio(), val: v}
	l, r := split(ix.root, pos)
	ix.root = merge(merge(l, n), r)
	return nil
}

// Append places v after the last position.
func (ix *Index[T]) Append(v T) { _ = ix.Insert(ix.Len(), v) }

// At returns the payload at position pos.
func (ix *Index[T]) At(pos int) (T, error) {
	var zero T
	if pos < 0 || pos >= ix.Len() {
		return zero, fmt.Errorf("posindex: position %d out of range [0, %d)", pos, ix.Len())
	}
	n := ix.root
	for {
		ls := size(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			return n.val, nil
		default:
			pos -= ls + 1
			n = n.right
		}
	}
}

// Delete removes the entry at position pos, shifting later positions down
// by one, and returns its payload.
func (ix *Index[T]) Delete(pos int) (T, error) {
	var zero T
	if pos < 0 || pos >= ix.Len() {
		return zero, fmt.Errorf("posindex: delete at %d out of range [0, %d)", pos, ix.Len())
	}
	l, rest := split(ix.root, pos)
	mid, r := split(rest, 1)
	ix.root = merge(l, r)
	return mid.val, nil
}

// Set replaces the payload at position pos.
func (ix *Index[T]) Set(pos int, v T) error {
	if pos < 0 || pos >= ix.Len() {
		return fmt.Errorf("posindex: set at %d out of range [0, %d)", pos, ix.Len())
	}
	n := ix.root
	for {
		ls := size(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			n.val = v
			return nil
		default:
			pos -= ls + 1
			n = n.right
		}
	}
}

// Slice materializes positions [lo, hi) in order.
func (ix *Index[T]) Slice(lo, hi int) ([]T, error) {
	if lo < 0 || hi > ix.Len() || lo > hi {
		return nil, fmt.Errorf("posindex: slice [%d:%d) out of range for length %d", lo, hi, ix.Len())
	}
	out := make([]T, 0, hi-lo)
	var walk func(n *node[T], offset int)
	walk = func(n *node[T], offset int) {
		if n == nil {
			return
		}
		ls := size(n.left)
		nodePos := offset + ls
		if lo < nodePos { // left subtree overlaps
			walk(n.left, offset)
		}
		if nodePos >= lo && nodePos < hi {
			out = append(out, n.val)
		}
		if hi > nodePos+1 {
			walk(n.right, nodePos+1)
		}
	}
	walk(ix.root, 0)
	return out, nil
}

// Values materializes the whole sequence in order.
func (ix *Index[T]) Values() []T {
	out, _ := ix.Slice(0, ix.Len())
	return out
}

// FromSlice builds an index over the given payloads in order.
func FromSlice[T any](vals []T) *Index[T] {
	ix := New[T]()
	for _, v := range vals {
		ix.Append(v)
	}
	return ix
}

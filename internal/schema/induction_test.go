package schema

import (
	"fmt"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

func TestInduceStrings(t *testing.T) {
	cases := []struct {
		data []string
		want types.Domain
	}{
		{[]string{"1", "2", "3"}, types.Int},
		{[]string{"1", "2.5", "3"}, types.Float},
		{[]string{"true", "false", "NA"}, types.Bool},
		{[]string{"2020-01-01", "2021-06-02"}, types.Datetime},
		{[]string{"hello", "world"}, types.Object},
		{[]string{"1", "two"}, types.Object},
		{[]string{"", "NA", "null"}, types.Object}, // all-null induces Object
		{[]string{}, types.Object},
		{[]string{"0", "1"}, types.Int}, // 0/1 induce int, not bool (pandas semantics)
	}
	for _, c := range cases {
		if got := InduceStrings(c.data); got != c.want {
			t.Errorf("InduceStrings(%v) = %v, want %v", c.data, got, c.want)
		}
	}
}

func TestInduceCategory(t *testing.T) {
	// Low-cardinality strings induce Category: 200 rows, 2 values.
	data := make([]string, 200)
	for i := range data {
		if i%2 == 0 {
			data[i] = "red"
		} else {
			data[i] = "blue"
		}
	}
	if got := InduceStrings(data); got != types.Category {
		t.Errorf("low-cardinality = %v, want category", got)
	}
	// High-cardinality strings stay Object.
	for i := range data {
		data[i] = fmt.Sprintf("value-%d", i)
	}
	if got := InduceStrings(data); got != types.Object {
		t.Errorf("high-cardinality = %v, want object", got)
	}
}

func TestInduceTypedVectorIsIdentity(t *testing.T) {
	v := vector.NewInt([]int64{1, 2}, nil)
	if got := Induce(v); got != types.Int {
		t.Errorf("Induce(typed) = %v", got)
	}
}

func TestInduceSample(t *testing.T) {
	data := make([]string, 100)
	for i := range data {
		data[i] = fmt.Sprintf("%d", i+2) // distinct ints (not bool literals)
	}
	data[99] = "tail-string-99" // beyond the sample
	v := vector.NewObjectFromStrings(data)
	if got := InduceSample(v, 50); got != types.Int {
		t.Errorf("sampled induction = %v, want int (sample misses the tail)", got)
	}
	if got := Induce(v); got != types.Object {
		t.Errorf("full induction = %v, want object (high cardinality, mixed)", got)
	}
}

func TestParse(t *testing.T) {
	v := vector.NewObjectFromStrings([]string{"1", "NA", "3", "junk"})
	p := Parse(v, types.Int)
	if p.Domain() != types.Int {
		t.Fatalf("parsed domain = %v", p.Domain())
	}
	if p.Value(0).Int() != 1 || p.Value(2).Int() != 3 {
		t.Error("parsed values wrong")
	}
	if !p.IsNull(1) || !p.IsNull(3) {
		t.Error("null and unparseable should both be null")
	}
	// Parsing into the same domain returns the input unchanged.
	if Parse(p, types.Int) != p {
		t.Error("same-domain parse should be identity")
	}
}

func TestParseNonObjectRerenders(t *testing.T) {
	v := vector.NewInt([]int64{1, 0}, nil)
	p := Parse(v, types.Bool)
	if p.Domain() != types.Bool || !p.Value(0).Bool() || p.Value(1).Bool() {
		t.Errorf("int→bool parse wrong: %v %v", p.Value(0), p.Value(1))
	}
}

func TestInduceAndParse(t *testing.T) {
	d, p := InduceAndParse(vector.NewObjectFromStrings([]string{"1.5", "2.5"}))
	if d != types.Float || p.Value(1).Float() != 2.5 {
		t.Errorf("InduceAndParse = %v, %v", d, p.Value(1))
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	c := NewCache()
	v := vector.NewObjectFromStrings([]string{"1", "2"})
	if c.Induce(v) != types.Int {
		t.Fatal("induction wrong")
	}
	c.Induce(v)
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
	p1 := c.Parse(v, types.Int)
	p2 := c.Parse(v, types.Int)
	if p1 != p2 {
		t.Error("cached parse should return the identical vector")
	}
	c.Invalidate()
	p3 := c.Parse(v, types.Int)
	if p3 == p1 {
		t.Error("invalidate should drop cached parses")
	}
	// Typed vectors bypass the cache entirely.
	if c.Induce(p1) != types.Int {
		t.Error("typed induce")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	v := vector.NewObjectFromStrings([]string{"1", "2", "3"})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for k := 0; k < 100; k++ {
				if c.Induce(v) != types.Int {
					t.Error("concurrent induce wrong")
					return
				}
				c.Parse(v, types.Int)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// Package schema implements the schema-induction function S of Definition
// 4.1: given a column of raw Σ* strings, S assigns the most specific domain
// in Dom that describes it. It also implements the deferral and caching
// machinery of Section 5.1 ("Flexible Schemas, Dynamic Typing"): induction
// results can be cached per column and reused across statements.
package schema

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/vector"
)

// Induce is the schema-induction function S : Σ*ᵐ → Dom. It scans the raw
// strings of an Object vector and returns the most specific domain that
// every non-null entry parses into, using the preference order
// bool < int < float < datetime < category < object. An all-null column
// induces Object, the default uninterpreted domain.
func Induce(v vector.Vector) types.Domain {
	obj, ok := v.(*vector.Object)
	if !ok {
		if v.Domain() != types.Object {
			// Already typed: the vector's own domain is its schema.
			return v.Domain()
		}
		// An Object-domain vector without raw storage (a selection-vector
		// view over a raw column): induce over the rendered non-null
		// entries.
		var data []string
		for i := 0; i < v.Len(); i++ {
			if !v.IsNull(i) {
				data = append(data, v.Value(i).String())
			}
		}
		return InduceStrings(data)
	}
	// All-null columns induce Object without attempting a single parse; the
	// null count reads straight off the vector's mask (vector.NullCount's
	// direct path), not a per-entry interface scan.
	if obj.NullCount() == obj.Len() {
		return types.Object
	}
	return InduceStrings(obj.RawData())
}

// InduceStrings is Induce over a raw string slice.
func InduceStrings(data []string) types.Domain {
	canBool, canInt, canFloat, canDatetime := true, true, true, true
	nonNull := 0
	distinct := make(map[string]struct{})
	const distinctCap = 4096
	for _, s := range data {
		if types.IsNullLiteral(s) {
			continue
		}
		nonNull++
		if canBool && !types.Bool.CanParse(s) {
			canBool = false
		}
		if canInt && !types.Int.CanParse(s) {
			canInt = false
		}
		if canFloat && !types.Float.CanParse(s) {
			canFloat = false
		}
		if canDatetime && !types.Datetime.CanParse(s) {
			canDatetime = false
		}
		if len(distinct) < distinctCap {
			distinct[s] = struct{}{}
		}
	}
	if nonNull == 0 {
		return types.Object
	}
	switch {
	case canBool:
		return types.Bool
	case canInt:
		return types.Int
	case canFloat:
		return types.Float
	case canDatetime:
		return types.Datetime
	}
	// A low-cardinality string column induces Category: many distinct rows
	// sharing few values is the dictionary-encoding sweet spot.
	if nonNull >= 16 && len(distinct) < distinctCap && len(distinct)*10 <= nonNull {
		return types.Category
	}
	return types.Object
}

// InduceSample induces a domain from a prefix sample of at most sampleSize
// entries. Sampled induction can be wrong (Section 5.1.1 notes the
// filtering/sampling caveat); callers that need certainty must use Induce.
func InduceSample(v vector.Vector, sampleSize int) types.Domain {
	obj, ok := v.(*vector.Object)
	if !ok {
		return v.Domain()
	}
	data := obj.RawData()
	if sampleSize > 0 && len(data) > sampleSize {
		data = data[:sampleSize]
	}
	return InduceStrings(data)
}

// Parse applies the parsing function p_d of the induced (or declared)
// domain to every entry, yielding a typed vector. Entries that fail to
// parse become nulls, matching the paper's treatment of parse errors as the
// distinguished null rather than hard failures during exploration.
func Parse(v vector.Vector, d types.Domain) vector.Vector {
	if v.Domain() == d {
		return v
	}
	obj, ok := v.(*vector.Object)
	if !ok {
		// Re-render through Σ* then parse: TRANSPOSE of heterogeneous
		// data goes through this path.
		b := vector.NewBuilder(d, v.Len())
		for i := 0; i < v.Len(); i++ {
			b.Append(v.Value(i))
		}
		return b.Build()
	}
	b := vector.NewBuilder(d, obj.Len())
	for i, s := range obj.RawData() {
		if obj.IsNull(i) {
			b.AppendNull()
			continue
		}
		b.AppendString(s)
	}
	return b.Build()
}

// InduceAndParse runs S then p over a column in one pass, returning both the
// induced domain and the typed vector.
func InduceAndParse(v vector.Vector) (types.Domain, vector.Vector) {
	d := Induce(v)
	return d, Parse(v, d)
}

// Cache memoizes induction and parse results per column identity (Section
// 5.1.2, "Reusing Type Information"). Columns are identified by the pointer
// identity of their vector, which is stable because vectors are immutable.
type Cache struct {
	mu      sync.Mutex
	domains map[vector.Vector]types.Domain
	parsed  map[vector.Vector]vector.Vector

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty induction cache.
func NewCache() *Cache {
	return &Cache{
		domains: make(map[vector.Vector]types.Domain),
		parsed:  make(map[vector.Vector]vector.Vector),
	}
}

// Induce returns the cached domain for v, inducing and caching on miss.
func (c *Cache) Induce(v vector.Vector) types.Domain {
	if v.Domain() != types.Object && v.Domain() != types.Unspecified {
		return v.Domain()
	}
	c.mu.Lock()
	d, ok := c.domains[v]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.misses.Add(1)
	d = Induce(v)
	c.mu.Lock()
	c.domains[v] = d
	c.mu.Unlock()
	return d
}

// Parse returns the cached typed form of v under domain d, parsing and
// caching on miss. Only the induced-domain parse is cached; parses into
// other domains bypass the cache.
func (c *Cache) Parse(v vector.Vector, d types.Domain) vector.Vector {
	if v.Domain() == d {
		return v
	}
	c.mu.Lock()
	p, ok := c.parsed[v]
	c.mu.Unlock()
	if ok && p.Domain() == d {
		c.hits.Add(1)
		return p
	}
	c.misses.Add(1)
	p = Parse(v, d)
	c.mu.Lock()
	c.parsed[v] = p
	c.mu.Unlock()
	return p
}

// Stats returns the cache hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Invalidate drops all cached results (used when a session's memory budget
// forces metadata eviction).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domains = make(map[vector.Vector]types.Domain)
	c.parsed = make(map[vector.Vector]vector.Vector)
}

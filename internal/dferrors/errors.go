// Package dferrors holds the typed sentinel errors of the query/session
// surface. They live below both the public df package and the internal
// engine layers so that the layer *producing* a failure can wrap the
// sentinel (fmt.Errorf("...%w...", ErrUnknownColumn)) while the public API
// re-exports the same values (df.ErrUnknownColumn) — callers and the server
// map failures to behaviour with errors.Is instead of string matching, and
// the existing Describe()-annotated messages stay intact as the wrapping
// text.
package dferrors

import "errors"

var (
	// ErrUnknownColumn reports a reference to a column the frame does not
	// have: projections, sorts, group keys, renames, drops, window inputs.
	ErrUnknownColumn = errors.New("unknown column")

	// ErrUnknownAggregate reports an unrecognized aggregate name.
	ErrUnknownAggregate = errors.New("unknown aggregate")

	// ErrUnknownJoinKind reports an unrecognized join-kind name.
	ErrUnknownJoinKind = errors.New("unknown join kind")

	// ErrUnknownMode reports an unrecognized session-mode name.
	ErrUnknownMode = errors.New("unknown session mode")

	// ErrSessionClosed reports a statement issued against a closed session.
	ErrSessionClosed = errors.New("session closed")

	// ErrBudgetExceeded reports a query rejected (or timed out queueing) by
	// a tenant's memory-budget admission control.
	ErrBudgetExceeded = errors.New("tenant memory budget exceeded")

	// ErrScanSource reports a streaming scan whose source could not be
	// opened or parsed: a missing or unreadable file, a malformed header.
	// The wrapping text carries the source path.
	ErrScanSource = errors.New("scan source failed")

	// ErrRateLimited reports a query rejected by a tenant's request-rate
	// token bucket. The server maps it to HTTP 429 and the wrapping
	// *server.RateLimitError carries the Retry-After hint.
	ErrRateLimited = errors.New("tenant rate limit exceeded")
)

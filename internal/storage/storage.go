// Package storage implements MODIN's storage layer (Section 3.3): an
// in-memory partition store with spillover to persistent storage, so
// intermediate dataframes can exceed main-memory limits without failing —
// unlike the baseline, which simply errors. To maintain pandas semantics,
// spilled partitions are freed when the session ends (Close).
package storage

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vector"
)

// ErrNotFound reports a key with no stored frame.
var ErrNotFound = errors.New("storage: frame not found")

// Store keeps dataframes under string keys, holding up to MemoryBudget
// cells in memory and spilling the least-recently-used frames to disk
// beyond that.
type Store struct {
	mu sync.Mutex

	budget   int // max resident cells; <=0 means unlimited
	dir      string
	entries  map[string]*entry
	lru      []string // keys, least recently used first
	resident int

	spills, loads int
	seq           int // monotonic spill-file counter (names never collide)
}

type entry struct {
	frame *core.DataFrame // nil when spilled
	cells int
	path  string // spill file, when on disk
}

// New returns a store with the given resident-cell budget; spill files live
// in a fresh temporary directory.
func New(budget int) (*Store, error) {
	dir, err := os.MkdirTemp("", "dfstore-*")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill dir: %w", err)
	}
	return &Store{budget: budget, dir: dir, entries: make(map[string]*entry)}, nil
}

// Put stores df under key, spilling older frames if the budget is exceeded.
func (s *Store) Put(key string, df *core.DataFrame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.evictEntryLocked(key, old)
	}
	cells := df.NRows()*df.NCols() + 1
	s.entries[key] = &entry{frame: df, cells: cells}
	s.resident += cells
	s.touchLocked(key)
	return s.enforceBudgetLocked(key)
}

// Get retrieves the frame stored under key, loading it from disk if it was
// spilled.
func (s *Store) Get(key string) (*core.DataFrame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if e.frame == nil {
		df, err := readFrame(e.path)
		if err != nil {
			return nil, fmt.Errorf("storage: load spilled %q: %w", key, err)
		}
		e.frame = df
		s.resident += e.cells
		s.loads++
		if err := s.enforceBudgetLocked(key); err != nil {
			return nil, err
		}
	}
	s.touchLocked(key)
	return e.frame, nil
}

// Contains reports whether key is stored (resident or spilled).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Release forces the frame under key to disk immediately, regardless of
// the budget: spill-to-free-memory callers (session budget enforcement)
// want the resident cells back now, not at the next budget check.
func (s *Store) Release(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.frame == nil {
		return nil
	}
	if e.path == "" {
		s.seq++
		path := filepath.Join(s.dir, fmt.Sprintf("%x.gob", s.seq))
		if err := writeFrame(path, e.frame); err != nil {
			return fmt.Errorf("storage: release %q: %w", key, err)
		}
		e.path = path
	}
	e.frame = nil
	s.resident -= e.cells
	s.spills++
	return nil
}

// Delete removes the frame under key, including any spill file.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.evictEntryLocked(key, e)
		delete(s.entries, key)
	}
}

// Stats reports resident cell count and spill/load totals.
func (s *Store) Stats() (residentCells, spills, loads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident, s.spills, s.loads
}

// Close removes every spill file; stored frames become unreachable. It
// mirrors the session-scoped lifetime of MODIN's persistent partitions.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*entry)
	s.lru = nil
	s.resident = 0
	return os.RemoveAll(s.dir)
}

func (s *Store) touchLocked(key string) {
	for i, k := range s.lru {
		if k == key {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	s.lru = append(s.lru, key)
}

func (s *Store) evictEntryLocked(key string, e *entry) {
	if e.frame != nil {
		s.resident -= e.cells
		e.frame = nil
	}
	if e.path != "" {
		os.Remove(e.path)
		e.path = ""
	}
	for i, k := range s.lru {
		if k == key {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
}

// enforceBudgetLocked spills least-recently-used resident frames (other
// than keep) until the budget holds.
func (s *Store) enforceBudgetLocked(keep string) error {
	if s.budget <= 0 {
		return nil
	}
	for s.resident > s.budget {
		victim := ""
		for _, k := range s.lru {
			if k != keep && s.entries[k].frame != nil {
				victim = k
				break
			}
		}
		if victim == "" {
			return nil // nothing else to spill; allow overshoot
		}
		e := s.entries[victim]
		if e.path == "" {
			s.seq++
			path := filepath.Join(s.dir, fmt.Sprintf("%x.gob", s.seq))
			if err := writeFrame(path, e.frame); err != nil {
				return fmt.Errorf("storage: spill %q: %w", victim, err)
			}
			e.path = path
		}
		e.frame = nil
		s.resident -= e.cells
		s.spills++
	}
	return nil
}

// frameDisk is the gob-serializable form of a dataframe: everything goes
// through the Σ* rendering, with domains recorded so the typed form is
// recovered on load.
type frameDisk struct {
	ColNames  []string
	Domains   []int
	RowLabels []string
	LabelDom  int
	Cells     [][]string // column-major
	Nulls     [][]bool
	LabelNull []bool
}

func writeFrame(path string, df *core.DataFrame) error {
	d := frameDisk{
		ColNames: df.ColNames(),
		Domains:  make([]int, df.NCols()),
		Cells:    make([][]string, df.NCols()),
		Nulls:    make([][]bool, df.NCols()),
	}
	for j := 0; j < df.NCols(); j++ {
		d.Domains[j] = int(df.DeclaredDomain(j))
		col := df.Col(j)
		cells := make([]string, col.Len())
		nulls := make([]bool, col.Len())
		for i := 0; i < col.Len(); i++ {
			v := col.Value(i)
			nulls[i] = v.IsNull()
			if !v.IsNull() {
				cells[i] = v.String()
			}
		}
		d.Cells[j] = cells
		d.Nulls[j] = nulls
	}
	labels := df.RowLabels()
	d.LabelDom = int(labels.Domain())
	d.RowLabels = make([]string, labels.Len())
	d.LabelNull = make([]bool, labels.Len())
	for i := 0; i < labels.Len(); i++ {
		v := labels.Value(i)
		d.LabelNull[i] = v.IsNull()
		if !v.IsNull() {
			d.RowLabels[i] = v.String()
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(&d)
}

func readFrame(path string) (*core.DataFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d frameDisk
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return nil, err
	}
	cols := make([]vector.Vector, len(d.ColNames))
	doms := make([]types.Domain, len(d.ColNames))
	labels := make([]types.Value, len(d.ColNames))
	for j := range cols {
		doms[j] = types.Domain(d.Domains[j])
		labels[j] = types.String(d.ColNames[j])
		dom := doms[j]
		if !dom.Valid() {
			dom = types.Object
		}
		b := vector.NewBuilder(dom, len(d.Cells[j]))
		for i, cell := range d.Cells[j] {
			switch {
			case d.Nulls[j][i]:
				b.AppendNull()
			case dom == types.Object:
				// The null mask is authoritative: a literal "NA"
				// string cell must stay a string.
				b.Append(types.String(cell))
			default:
				b.AppendString(cell)
			}
		}
		cols[j] = b.Build()
	}
	lb := vector.NewBuilder(types.Domain(d.LabelDom), len(d.RowLabels))
	for i, cell := range d.RowLabels {
		if d.LabelNull[i] {
			lb.AppendNull()
		} else {
			lb.AppendString(cell)
		}
	}
	return core.Build(cols, lb.Build(), labels, doms, nil)
}

package storage

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func frame(t *testing.T, rows int) *core.DataFrame {
	t.Helper()
	records := make([][]any, rows)
	for i := range records {
		var v any = float64(i) * 1.5
		if i%7 == 0 {
			v = nil
		}
		records[i] = []any{i, "name-" + string(rune('a'+i%26)), v}
	}
	return core.MustFromRecords([]string{"id", "name", "score"}, records)
}

func newStore(t *testing.T, budget int) *Store {
	t.Helper()
	s, err := New(budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t, 0)
	df := frame(t, 20)
	if err := s.Put("a", df); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(df) {
		t.Error("round trip mismatch")
	}
	if !s.Contains("a") || s.Contains("b") {
		t.Error("contains wrong")
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore(t, 0)
	if _, err := s.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestSpillAndReload(t *testing.T) {
	s := newStore(t, 100) // tiny budget: ~1.5 frames of 20x3
	a, b, c := frame(t, 20), frame(t, 20), frame(t, 20)
	if err := s.Put("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", b); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", c); err != nil {
		t.Fatal(err)
	}
	_, spills, _ := s.Stats()
	if spills == 0 {
		t.Fatal("expected spills under tiny budget")
	}
	// The spilled frame reloads from disk with identical content.
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Errorf("spilled frame corrupted:\n%s\nvs\n%s", got, a)
	}
	_, _, loads := s.Stats()
	if loads == 0 {
		t.Error("expected a disk load")
	}
	// Resident usage respects the budget (keep-frame overshoot aside).
	resident, _, _ := s.Stats()
	if resident > 2*100 {
		t.Errorf("resident = %d cells, budget 100", resident)
	}
}

func TestLRUSpillsOldest(t *testing.T) {
	s := newStore(t, 100)
	s.Put("old", frame(t, 20))
	s.Put("new", frame(t, 20))
	// "old" is least recently used and should have spilled; "new" should
	// be resident.
	if _, err := s.Get("new"); err != nil {
		t.Fatal(err)
	}
	_, spills, loads := s.Stats()
	if spills != 1 {
		t.Errorf("spills = %d", spills)
	}
	if loads != 0 {
		t.Errorf("getting the resident frame should not load, loads = %d", loads)
	}
}

func TestDeleteAndOverwrite(t *testing.T) {
	s := newStore(t, 0)
	s.Put("k", frame(t, 5))
	s.Delete("k")
	if s.Contains("k") {
		t.Error("delete failed")
	}
	s.Delete("k") // idempotent
	s.Put("k", frame(t, 5))
	s.Put("k", frame(t, 10)) // overwrite
	got, err := s.Get("k")
	if err != nil || got.NRows() != 10 {
		t.Error("overwrite wrong")
	}
}

func TestCloseDropsEverything(t *testing.T) {
	s, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", frame(t, 5))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Contains("k") {
		t.Error("close should drop entries")
	}
}

func TestTypedDomainsSurviveSpill(t *testing.T) {
	s := newStore(t, 1) // everything spills
	df := frame(t, 30)
	// Force induction so declared domains exist before spilling.
	for j := 0; j < df.NCols(); j++ {
		df.Domain(j)
	}
	s.Put("typed", df)
	s.Put("evict", frame(t, 30)) // pushes "typed" out
	got, err := s.Get("typed")
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain(0).String() != "int" || got.Domain(2).String() != "float" {
		t.Errorf("domains after reload: %v %v", got.Domain(0), got.Domain(2))
	}
	if !got.Equal(df) {
		t.Error("typed reload mismatch")
	}
}

func TestNullMaskAuthoritativeOverLiterals(t *testing.T) {
	// An Object cell holding the literal string "NA" must survive a
	// spill as a string, not become null.
	df := core.MustFromRecords([]string{"s"}, [][]any{{"NA"}, {nil}, {"x"}})
	s := newStore(t, 1)
	s.Put("tricky", df)
	s.Put("evict", frame(t, 50))
	got, err := s.Get("tricky")
	if err != nil {
		t.Fatal(err)
	}
	if got.Value(0, 0).IsNull() || got.Value(0, 0).Str() != "NA" {
		t.Errorf("literal NA string corrupted: %#v", got.Value(0, 0))
	}
	if !got.Value(1, 0).IsNull() {
		t.Error("true null lost")
	}
}

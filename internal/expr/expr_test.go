package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func feed(k AggKind, vals ...types.Value) types.Value {
	a := NewAccumulator(k)
	for _, v := range vals {
		a.Add(v)
	}
	return a.Result()
}

func ints(xs ...int64) []types.Value {
	out := make([]types.Value, len(xs))
	for i, x := range xs {
		out[i] = types.IntValue(x)
	}
	return out
}

func TestAggregatesBasic(t *testing.T) {
	vals := append(ints(4, 2, 8), types.Null())
	if feed(AggCount, vals...).Int() != 3 {
		t.Error("count should skip nulls")
	}
	if feed(AggSize, vals...).Int() != 4 {
		t.Error("size should include nulls")
	}
	if feed(AggSum, vals...).Float() != 14 {
		t.Error("sum wrong")
	}
	if feed(AggMean, vals...).Float() != 14.0/3 {
		t.Error("mean wrong")
	}
	if feed(AggMin, vals...).Int() != 2 || feed(AggMax, vals...).Int() != 8 {
		t.Error("min/max wrong")
	}
	if feed(AggFirst, vals...).Int() != 4 || feed(AggLast, vals...).Int() != 8 {
		t.Error("first/last wrong")
	}
	if feed(AggCountDistinct, ints(1, 1, 2, 2, 3)...).Int() != 3 {
		t.Error("nunique wrong")
	}
}

func TestAggregatesEmpty(t *testing.T) {
	for _, k := range []AggKind{AggMean, AggMin, AggMax, AggFirst, AggLast, AggStd, AggVar, AggMedian, AggKurtosis} {
		if !feed(k).IsNull() {
			t.Errorf("%v over empty input should be null", k)
		}
	}
	if feed(AggCount).Int() != 0 || feed(AggSum).Float() != 0 {
		t.Error("count/sum over empty wrong")
	}
}

func TestVarianceAndStd(t *testing.T) {
	vals := ints(2, 4, 4, 4, 5, 5, 7, 9)
	v := feed(AggVar, vals...).Float()
	want := 32.0 / 7 // sample variance
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("var = %v, want %v", v, want)
	}
	sd := feed(AggStd, vals...).Float()
	if math.Abs(sd-math.Sqrt(want)) > 1e-9 {
		t.Errorf("std = %v", sd)
	}
	if !feed(AggStd, ints(5)...).IsNull() {
		t.Error("std of one value should be null")
	}
}

func TestMedian(t *testing.T) {
	if feed(AggMedian, ints(5, 1, 3)...).Float() != 3 {
		t.Error("odd median wrong")
	}
	if feed(AggMedian, ints(1, 2, 3, 4)...).Float() != 2.5 {
		t.Error("even median wrong")
	}
}

func TestKurtosisMatchesPandasConvention(t *testing.T) {
	// A normal-ish symmetric sample has small excess kurtosis; a uniform
	// {1..n} sample has negative excess kurtosis (platykurtic), and the
	// pandas adjusted estimator for {1,2,3,4,5} is exactly -1.2.
	got := feed(AggKurtosis, ints(1, 2, 3, 4, 5)...).Float()
	if math.Abs(got-(-1.2)) > 1e-9 {
		t.Errorf("kurtosis = %v, want -1.2", got)
	}
	if !feed(AggKurtosis, ints(1, 2, 3)...).IsNull() {
		t.Error("kurtosis needs at least 4 values")
	}
}

func TestMergeEqualsSingleScanProperty(t *testing.T) {
	// For every mergeable aggregate, splitting the stream and merging
	// partials must equal one scan — the property MODIN's parallel
	// GROUPBY depends on.
	kinds := []AggKind{AggCount, AggSize, AggSum, AggMean, AggMin, AggMax, AggFirst, AggLast, AggStd, AggVar, AggCountDistinct, AggMedian}
	prop := func(raw []int16, splitRaw uint8) bool {
		vals := make([]types.Value, len(raw))
		for i, x := range raw {
			if x%13 == 0 {
				vals[i] = types.Null()
			} else {
				vals[i] = types.IntValue(int64(x % 50))
			}
		}
		split := 0
		if len(vals) > 0 {
			split = int(splitRaw) % (len(vals) + 1)
		}
		for _, k := range kinds {
			whole := NewAccumulator(k)
			for _, v := range vals {
				whole.Add(v)
			}
			left, right := NewAccumulator(k), NewAccumulator(k)
			for _, v := range vals[:split] {
				left.Add(v)
			}
			for _, v := range vals[split:] {
				right.Add(v)
			}
			left.Merge(right)
			a, b := whole.Result(), left.Result()
			if a.IsNull() != b.IsNull() {
				return false
			}
			if !a.IsNull() && math.Abs(a.Float()-b.Float()) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKurtosisMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]types.Value, 200)
	for i := range vals {
		vals[i] = types.FloatValue(rng.NormFloat64() * 10)
	}
	whole := NewAccumulator(AggKurtosis)
	left, right := NewAccumulator(AggKurtosis), NewAccumulator(AggKurtosis)
	for i, v := range vals {
		whole.Add(v)
		if i < 77 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(right)
	if math.Abs(whole.Result().Float()-left.Result().Float()) > 1e-6 {
		t.Errorf("kurtosis merge mismatch: %v vs %v", whole.Result(), left.Result())
	}
}

func TestAggNamesRoundTrip(t *testing.T) {
	for _, k := range []AggKind{AggCount, AggSize, AggSum, AggMean, AggMin, AggMax, AggFirst, AggLast, AggStd, AggVar, AggMedian, AggKurtosis, AggCountDistinct, AggCollect} {
		got, ok := ParseAgg(k.String())
		if !ok || got != k {
			t.Errorf("ParseAgg(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseAgg("nope"); ok {
		t.Error("unknown agg accepted")
	}
	if AggKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestAggSpecOutName(t *testing.T) {
	if (AggSpec{Col: "x", Agg: AggSum}).OutName() != "x_sum" {
		t.Error("derived name wrong")
	}
	if (AggSpec{Col: "x", Agg: AggSum, As: "total"}).OutName() != "total" {
		t.Error("explicit name wrong")
	}
	if (AggSpec{Agg: AggSize}).OutName() != "size" {
		t.Error("column-less name wrong")
	}
}

func TestPredicateCombinators(t *testing.T) {
	yes := Predicate(func(Row) bool { return true })
	no := Predicate(func(Row) bool { return false })
	if !And(yes, yes)(nil) || And(yes, no)(nil) {
		t.Error("And wrong")
	}
	if !Or(no, yes)(nil) || Or(no, no)(nil) {
		t.Error("Or wrong")
	}
	if Not(yes)(nil) {
		t.Error("Not wrong")
	}
}

func TestMapFnValidate(t *testing.T) {
	if (MapFn{Name: "none"}).Validate() == nil {
		t.Error("no function should be invalid")
	}
	two := MapFn{
		Name:        "two",
		Fn:          func(Row) []types.Value { return nil },
		Elementwise: func(v types.Value) types.Value { return v },
	}
	if two.Validate() == nil {
		t.Error("two functions should be invalid")
	}
	one := MapFn{Name: "ok", Elementwise: func(v types.Value) types.Value { return v }}
	if one.Validate() != nil {
		t.Error("single function should validate")
	}
}

func TestDecomposable(t *testing.T) {
	if !AggSum.Decomposable() || !AggMean.Decomposable() {
		t.Error("sum/mean decomposable")
	}
	if AggCollect.Decomposable() || AggMedian.Decomposable() {
		t.Error("collect/median are not (cheaply) decomposable")
	}
}

func TestJoinKindNames(t *testing.T) {
	names := map[JoinKind]string{
		JoinInner: "inner", JoinLeft: "left", JoinRight: "right",
		JoinOuter: "outer", JoinCross: "cross",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

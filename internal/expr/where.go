package expr

import (
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// Where is the structured SELECTION predicate: a conjunction of
// column-op-constant terms. Unlike the opaque Predicate func, a Where
// exposes its shape, so engines can run it through the typed filter kernels
// in internal/vector — no types.Value is constructed per cell. Predicates
// that cannot be expressed this way (arbitrary Go code over the row) keep
// using Predicate; every consumer of Where falls back to the equivalent
// opaque predicate via Predicate() when it must.
//
// Term semantics per cell (identical in the kernels and the fallback):
//
//   - null operand: CmpEq selects null cells, CmpNe selects non-null cells
//     (these spell IsNull / NotNull), ordering operators select nothing.
//   - null cell, non-null operand: never selected.
//   - both non-null: CmpEq/CmpNe use types.Value.Equal; orderings use
//     types.Value.Compare.
type Where struct {
	// Terms are ANDed; zero terms select every row (the vacuous
	// conjunction, matching And() over zero predicates).
	Terms []WhereTerm
}

// WhereTerm is one column-op-constant comparison.
type WhereTerm struct {
	// Col is the tested column's label; a missing column reads as null
	// (mirroring Row.ByName).
	Col string
	// Op is the comparison operator.
	Op vector.CmpOp
	// Operand is the constant; a null operand turns CmpEq/CmpNe into
	// null-ness tests.
	Operand types.Value
}

// WhereCompare builds a single-term Where: col op operand.
func WhereCompare(col string, op vector.CmpOp, operand types.Value) *Where {
	return &Where{Terms: []WhereTerm{{Col: col, Op: op, Operand: operand}}}
}

// WhereEquals selects rows where col equals v (null v selects null cells).
func WhereEquals(col string, v types.Value) *Where {
	return WhereCompare(col, vector.CmpEq, v)
}

// WhereNotNull selects rows where col is non-null.
func WhereNotNull(col string) *Where {
	return WhereCompare(col, vector.CmpNe, types.Null())
}

// WhereIsNull selects rows where col is null.
func WhereIsNull(col string) *Where {
	return WhereCompare(col, vector.CmpEq, types.Null())
}

// WhereAnd concatenates the conjunctions of the given Wheres (nil inputs are
// skipped; zero inputs yield the match-everything conjunction).
func WhereAnd(ws ...*Where) *Where {
	out := &Where{}
	for _, w := range ws {
		if w != nil {
			out.Terms = append(out.Terms, w.Terms...)
		}
	}
	return out
}

// And returns w extended with one more term.
func (w *Where) And(col string, op vector.CmpOp, operand types.Value) *Where {
	terms := make([]WhereTerm, 0, len(w.Terms)+1)
	terms = append(terms, w.Terms...)
	terms = append(terms, WhereTerm{Col: col, Op: op, Operand: operand})
	return &Where{Terms: terms}
}

// Match evaluates one term against a cell value.
func (t WhereTerm) Match(v types.Value) bool {
	if t.Operand.IsNull() {
		switch t.Op {
		case vector.CmpEq:
			return v.IsNull()
		case vector.CmpNe:
			return !v.IsNull()
		default:
			return false
		}
	}
	if v.IsNull() {
		return false
	}
	switch t.Op {
	case vector.CmpEq:
		return v.Equal(t.Operand)
	case vector.CmpNe:
		return !v.Equal(t.Operand)
	default:
		return t.Op.Accept(v.Compare(t.Operand))
	}
}

// Predicate returns the opaque row predicate equivalent to w: the
// transparent fallback for engines and tools that only understand
// func(Row) bool.
func (w *Where) Predicate() Predicate {
	terms := w.Terms
	return func(r Row) bool {
		for _, t := range terms {
			if !t.Match(r.ByName(t.Col)) {
				return false
			}
		}
		return true
	}
}

// Describe renders the conjunction for plan printing.
func (w *Where) Describe() string {
	if len(w.Terms) == 0 {
		return "true"
	}
	var b strings.Builder
	for i, t := range w.Terms {
		if i > 0 {
			b.WriteString(" && ")
		}
		b.WriteString(t.Col)
		switch {
		case t.Operand.IsNull() && t.Op == vector.CmpEq:
			b.WriteString(" is null")
		case t.Operand.IsNull() && t.Op == vector.CmpNe:
			b.WriteString(" not null")
		default:
			b.WriteString(" " + t.Op.String() + " " + t.Operand.String())
		}
	}
	return b.String()
}

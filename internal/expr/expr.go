// Package expr defines the user-defined-function surface of the dataframe
// algebra: row views, selection predicates, MAP functions, sort keys, window
// specifications and aggregate kinds. These are the "subscripts" of the
// algebra operators in Table 1 of the paper.
package expr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/types"
)

// Row is a read-only view of one dataframe row handed to predicates and MAP
// functions. Per Section 4.3, MAP receives the entire row so a generic
// function can reason across columns without enumerating them.
type Row interface {
	// NCols returns the row's arity.
	NCols() int
	// Value returns the parsed cell at column j.
	Value(j int) types.Value
	// ColName returns column j's label rendered as a string.
	ColName(j int) string
	// ByName returns the cell under the named column (null if absent).
	ByName(name string) types.Value
	// Label returns the row's label from Rm.
	Label() types.Value
	// Position returns the row's position (positional notation).
	Position() int
}

// Predicate decides whether a row survives a SELECTION.
type Predicate func(Row) bool

// And composes predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(r Row) bool {
		for _, p := range ps {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or composes predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(r Row) bool {
		for _, p := range ps {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate { return func(r Row) bool { return !p(r) } }

// ColEquals selects rows where the named column equals v.
func ColEquals(name string, v types.Value) Predicate {
	return func(r Row) bool { return r.ByName(name).Equal(v) }
}

// ColNotNull selects rows where the named column is non-null.
func ColNotNull(name string) Predicate {
	return func(r Row) bool { return !r.ByName(name).IsNull() }
}

// MapFn is the function argument of the MAP operator: applied uniformly to
// every row, producing an output row of fixed arity n'. Output column labels
// (and optionally domains, enabling the schema-induction-skipping rewrite of
// Section 5.1.1) describe the result schema; when OutCols is nil the output
// keeps the input schema and Fn must preserve arity.
type MapFn struct {
	// Name identifies the function in plan renderings.
	Name string
	// OutCols is the output column labels; nil keeps the input's labels.
	OutCols []types.Value
	// OutDoms optionally declares output domains, letting engines skip
	// schema induction on the result.
	OutDoms []types.Domain
	// Fn transforms a full row. Exactly one of Fn, Elementwise, GroupFn
	// must be set.
	Fn func(Row) []types.Value
	// Elementwise transforms each cell independently (pandas transform /
	// applymap); engines may run it columnar without materializing rows.
	Elementwise func(types.Value) types.Value
	// GroupFn flattens a composite (collect) cell into an output row; it
	// is the "flatten" MAP of the pivot plan in Figure 6. It receives the
	// row (whose composite columns hold collected sub-frames).
	GroupFn func(Row) []types.Value
}

// Validate checks that exactly one function variant is set.
func (m MapFn) Validate() error {
	n := 0
	if m.Fn != nil {
		n++
	}
	if m.Elementwise != nil {
		n++
	}
	if m.GroupFn != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("expr: MapFn %q must set exactly one of Fn, Elementwise, GroupFn (got %d)", m.Name, n)
	}
	return nil
}

// SortKey orders rows by one column.
type SortKey struct {
	// Col is the column label to sort by.
	Col string
	// Desc reverses the order.
	Desc bool
}

// SortOrder is a multi-key lexicographic ordering.
type SortOrder []SortKey

// AggKind enumerates the aggregate functions available to GROUPBY and
// WINDOW. Unlike relational algebra, aggregation may produce composite
// values (Collect).
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota // count of non-null values
	AggSize                 // count of rows including nulls
	AggSum
	AggMean
	AggMin
	AggMax
	AggFirst
	AggLast
	AggStd
	AggVar
	AggMedian
	AggKurtosis
	AggCountDistinct
	AggCollect // composite: the group's sub-dataframe column
)

var aggNames = map[AggKind]string{
	AggCount:         "count",
	AggSize:          "size",
	AggSum:           "sum",
	AggMean:          "mean",
	AggMin:           "min",
	AggMax:           "max",
	AggFirst:         "first",
	AggLast:          "last",
	AggStd:           "std",
	AggVar:           "var",
	AggMedian:        "median",
	AggKurtosis:      "kurtosis",
	AggCountDistinct: "nunique",
	AggCollect:       "collect",
}

// String returns the pandas-style name of the aggregate.
func (k AggKind) String() string {
	if s, ok := aggNames[k]; ok {
		return s
	}
	return fmt.Sprintf("agg(%d)", int(k))
}

// ParseAgg maps a pandas-style aggregate name to its kind.
func ParseAgg(name string) (AggKind, bool) {
	for k, s := range aggNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}

// Decomposable reports whether the aggregate can be computed as partial
// per-partition states merged associatively — the property the MODIN engine
// exploits for parallel GROUPBY.
func (k AggKind) Decomposable() bool {
	switch k {
	case AggCount, AggSize, AggSum, AggMin, AggMax, AggFirst, AggLast, AggMean, AggStd, AggVar:
		return true
	default:
		return false
	}
}

// Accumulator computes one aggregate over a stream of values.
type Accumulator struct {
	kind     AggKind
	count    int64 // non-null
	size     int64
	sum      float64
	sumSq    float64
	sum3     float64
	sum4     float64
	min, max types.Value
	first    types.Value
	last     types.Value
	hasFirst bool
	distinct map[string]struct{}
	values   []types.Value // median, kurtosis fallback, collect ordering
}

// NewAccumulator returns an accumulator for kind k.
func NewAccumulator(k AggKind) *Accumulator {
	a := &Accumulator{kind: k}
	if k == AggCountDistinct {
		a.distinct = make(map[string]struct{})
	}
	return a
}

// Add feeds one value.
func (a *Accumulator) Add(v types.Value) {
	a.size++
	if v.IsNull() {
		return
	}
	if !a.hasFirst {
		a.first = v
		a.hasFirst = true
	}
	a.last = v
	a.count++
	switch a.kind {
	case AggSum, AggMean:
		a.sum += v.Float()
	case AggStd, AggVar:
		f := v.Float()
		a.sum += f
		a.sumSq += f * f
	case AggKurtosis:
		f := v.Float()
		a.sum += f
		a.sumSq += f * f
		a.sum3 += f * f * f
		a.sum4 += f * f * f * f
	case AggMin:
		if a.min.IsNull() && a.count == 1 {
			a.min = v
		} else if v.Less(a.min) {
			a.min = v
		}
	case AggMax:
		if a.max.IsNull() && a.count == 1 {
			a.max = v
		} else if a.max.Less(v) {
			a.max = v
		}
	case AggCountDistinct:
		a.distinct[v.Key()] = struct{}{}
	case AggMedian:
		a.values = append(a.values, v)
	}
}

// AddCounts bulk-records size rows of which nonNull are non-null, without
// feeding individual values. It is the vectorized fast path for AggCount
// and AggSize accumulators, whose results depend only on these counters
// (derived from the column length and its null count); feeding other kinds
// through it would corrupt their state.
func (a *Accumulator) AddCounts(size, nonNull int64) {
	a.size += size
	a.count += nonNull
}

// Merge combines another accumulator of the same kind into a (partial
// aggregation for decomposable kinds).
func (a *Accumulator) Merge(b *Accumulator) {
	a.size += b.size
	if b.count == 0 {
		return
	}
	if !a.hasFirst {
		a.first = b.first
		a.hasFirst = true
	}
	a.last = b.last
	prevCount := a.count
	a.count += b.count
	switch a.kind {
	case AggSum, AggMean:
		a.sum += b.sum
	case AggStd, AggVar, AggKurtosis:
		a.sum += b.sum
		a.sumSq += b.sumSq
		a.sum3 += b.sum3
		a.sum4 += b.sum4
	case AggMin:
		if prevCount == 0 || b.min.Less(a.min) {
			a.min = b.min
		}
	case AggMax:
		if prevCount == 0 || a.max.Less(b.max) {
			a.max = b.max
		}
	case AggCountDistinct:
		for k := range b.distinct {
			a.distinct[k] = struct{}{}
		}
	case AggMedian:
		a.values = append(a.values, b.values...)
	}
}

// Result finalizes the aggregate value.
func (a *Accumulator) Result() types.Value {
	switch a.kind {
	case AggCount:
		return types.IntValue(a.count)
	case AggSize:
		return types.IntValue(a.size)
	case AggSum:
		return types.FloatValue(a.sum)
	case AggMean:
		if a.count == 0 {
			return types.NullValue(types.Float)
		}
		return types.FloatValue(a.sum / float64(a.count))
	case AggMin:
		if a.count == 0 {
			return types.Null()
		}
		return a.min
	case AggMax:
		if a.count == 0 {
			return types.Null()
		}
		return a.max
	case AggFirst:
		if !a.hasFirst {
			return types.Null()
		}
		return a.first
	case AggLast:
		if !a.hasFirst {
			return types.Null()
		}
		return a.last
	case AggVar, AggStd:
		if a.count < 2 {
			return types.NullValue(types.Float)
		}
		n := float64(a.count)
		variance := (a.sumSq - a.sum*a.sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		if a.kind == AggVar {
			return types.FloatValue(variance)
		}
		return types.FloatValue(math.Sqrt(variance))
	case AggKurtosis:
		return a.kurtosis()
	case AggCountDistinct:
		return types.IntValue(int64(len(a.distinct)))
	case AggMedian:
		if len(a.values) == 0 {
			return types.NullValue(types.Float)
		}
		vals := append([]types.Value(nil), a.values...)
		sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			return types.FloatValue(vals[mid].Float())
		}
		return types.FloatValue((vals[mid-1].Float() + vals[mid].Float()) / 2)
	}
	return types.Null()
}

// kurtosis computes the sample excess kurtosis with the same bias
// adjustment pandas uses (Fisher's definition, G2).
func (a *Accumulator) kurtosis() types.Value {
	n := float64(a.count)
	if a.count < 4 {
		return types.NullValue(types.Float)
	}
	mean := a.sum / n
	m2 := a.sumSq/n - mean*mean
	if m2 <= 0 {
		return types.NullValue(types.Float)
	}
	m4 := a.sum4/n - 4*mean*a.sum3/n + 6*mean*mean*a.sumSq/n - 3*mean*mean*mean*mean
	g2 := m4/(m2*m2) - 3
	adj := ((n+1)*g2 + 6) * (n - 1) / ((n - 2) * (n - 3))
	return types.FloatValue(adj)
}

// AggSpec names one aggregate over one column in a GROUPBY.
type AggSpec struct {
	// Col is the aggregated column label; empty means the whole row
	// (valid for AggSize and AggCollect).
	Col string
	// Agg is the aggregate kind.
	Agg AggKind
	// As is the output column label; empty derives "col_agg".
	As string
}

// OutName returns the output column label for the spec.
func (s AggSpec) OutName() string {
	if s.As != "" {
		return s.As
	}
	if s.Col == "" {
		return s.Agg.String()
	}
	return s.Col + "_" + s.Agg.String()
}

// GroupBySpec configures the GROUPBY operator. Unlike SQL, GROUPBY admits
// independent use: with AsLabels set the grouping values are elevated to row
// labels via an implicit TOLABELS, matching pandas groupby semantics.
type GroupBySpec struct {
	// Keys are the grouping column labels.
	Keys []string
	// Aggs are the aggregates to compute per group.
	Aggs []AggSpec
	// AsLabels elevates the key values to the result's row labels.
	AsLabels bool
	// Sorted declares that the input is already sorted by Keys, letting
	// engines use a streaming group-by instead of hashing — the property
	// the Figure 8(b) pivot rewrite exploits.
	Sorted bool
}

// WindowKind enumerates WINDOW operator variants.
type WindowKind int

// Window kinds. Because dataframes are inherently ordered, none of these
// require an ORDER BY clause (Section 4.3, "Window").
const (
	// WindowRolling aggregates a fixed-size trailing window.
	WindowRolling WindowKind = iota
	// WindowExpanding aggregates the full prefix (cumsum, cummax, ...).
	WindowExpanding
	// WindowShift moves values down (positive offset) or up (negative),
	// filling with nulls.
	WindowShift
	// WindowDiff subtracts the value offset rows earlier.
	WindowDiff
)

// WindowSpec configures the WINDOW operator.
type WindowSpec struct {
	// Kind selects the window variant.
	Kind WindowKind
	// Size is the trailing window length for WindowRolling.
	Size int
	// Offset is the lag for WindowShift/WindowDiff (default 1).
	Offset int
	// Agg is the aggregate for rolling/expanding windows.
	Agg AggKind
	// MinPeriods is the minimum observations required to emit a non-null
	// (default: Size for rolling, 1 for expanding).
	MinPeriods int
	// Cols restricts the windowed columns; nil means every column (with
	// non-numeric columns passed through for shift, skipped for
	// numeric aggregates).
	Cols []string
	// Reverse applies the window in the upward direction, per the
	// paper's note that WINDOW slides in either direction.
	Reverse bool
}

// JoinKind enumerates join variants.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinOuter
	JoinCross
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "inner"
	case JoinLeft:
		return "left"
	case JoinRight:
		return "right"
	case JoinOuter:
		return "outer"
	case JoinCross:
		return "cross"
	}
	return fmt.Sprintf("join(%d)", int(k))
}

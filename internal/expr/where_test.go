package expr

import (
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// fakeRow implements Row over a name→value map (absent names read null,
// like dataframe rows).
type fakeRow map[string]types.Value

func (r fakeRow) NCols() int { return len(r) }
func (r fakeRow) Value(j int) types.Value {
	panic("positional access not used")
}
func (r fakeRow) ColName(j int) string { panic("not used") }
func (r fakeRow) ByName(name string) types.Value {
	if v, ok := r[name]; ok {
		return v
	}
	return types.Null()
}
func (r fakeRow) Label() types.Value { return types.Null() }
func (r fakeRow) Position() int      { return 0 }

// TestAndOrZeroPredicates locks the boundary behavior the structured
// predicate layer mirrors: the empty conjunction accepts every row and the
// empty disjunction rejects every row.
func TestAndOrZeroPredicates(t *testing.T) {
	row := fakeRow{"a": types.IntValue(1)}
	if !And()(row) {
		t.Error("And() over zero predicates must accept (vacuous truth)")
	}
	if Or()(row) {
		t.Error("Or() over zero predicates must reject")
	}
	// One- and two-predicate forms still compose as expected.
	yes := Predicate(func(Row) bool { return true })
	no := Predicate(func(Row) bool { return false })
	if And(yes, no)(row) || !And(yes, yes)(row) {
		t.Error("And composition wrong")
	}
	if !Or(no, yes)(row) || Or(no, no)(row) {
		t.Error("Or composition wrong")
	}
}

func TestWhereZeroTermsAcceptsEverything(t *testing.T) {
	w := WhereAnd()
	if len(w.Terms) != 0 {
		t.Fatal("WhereAnd() should have no terms")
	}
	if !w.Predicate()(fakeRow{}) {
		t.Error("zero-term Where must accept every row, like And()")
	}
}

func TestWhereTermSemantics(t *testing.T) {
	five := types.IntValue(5)
	cases := []struct {
		name string
		term WhereTerm
		cell types.Value
		want bool
	}{
		{"eq match", WhereTerm{"c", vector.CmpEq, five}, types.IntValue(5), true},
		{"eq cross-domain", WhereTerm{"c", vector.CmpEq, five}, types.FloatValue(5), true},
		{"eq miss", WhereTerm{"c", vector.CmpEq, five}, types.IntValue(4), false},
		{"eq null cell", WhereTerm{"c", vector.CmpEq, five}, types.Null(), false},
		{"eq null operand selects nulls", WhereTerm{"c", vector.CmpEq, types.Null()}, types.Null(), true},
		{"eq null operand rejects non-null", WhereTerm{"c", vector.CmpEq, types.Null()}, five, false},
		{"ne null operand selects non-null", WhereTerm{"c", vector.CmpNe, types.Null()}, five, true},
		{"ne null operand rejects nulls", WhereTerm{"c", vector.CmpNe, types.Null()}, types.Null(), false},
		{"ne excludes null cells", WhereTerm{"c", vector.CmpNe, five}, types.Null(), false},
		{"lt", WhereTerm{"c", vector.CmpLt, five}, types.IntValue(4), true},
		{"lt null cell never matches", WhereTerm{"c", vector.CmpLt, five}, types.Null(), false},
		{"lt null operand never matches", WhereTerm{"c", vector.CmpLt, types.Null()}, types.IntValue(4), false},
		{"ge", WhereTerm{"c", vector.CmpGe, five}, types.IntValue(5), true},
	}
	for _, c := range cases {
		if got := c.term.Match(c.cell); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
		// The opaque fallback must agree with term-level matching.
		w := &Where{Terms: []WhereTerm{c.term}}
		if got := w.Predicate()(fakeRow{"c": c.cell}); got != c.want {
			t.Errorf("%s: Predicate fallback = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWhereConjunctionAndDescribe(t *testing.T) {
	w := WhereNotNull("a").And("b", vector.CmpGt, types.IntValue(3))
	row := func(a, b types.Value) fakeRow { return fakeRow{"a": a, "b": b} }
	if !w.Predicate()(row(types.IntValue(1), types.IntValue(4))) {
		t.Error("both terms hold: should accept")
	}
	if w.Predicate()(row(types.Null(), types.IntValue(4))) {
		t.Error("first term fails: should reject")
	}
	if w.Predicate()(row(types.IntValue(1), types.IntValue(3))) {
		t.Error("second term fails: should reject")
	}
	// Missing column reads as null.
	if w.Predicate()(fakeRow{"b": types.IntValue(4)}) {
		t.Error("missing column must read as null")
	}
	if got := w.Describe(); got != "a not null && b > 3" {
		t.Errorf("Describe = %q", got)
	}
	if got := WhereAnd().Describe(); got != "true" {
		t.Errorf("empty Describe = %q", got)
	}
}

package modin

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/vector"
)

// DescribePhysical renders the engine's physical strategy decisions for a
// logical plan, one line per repartition point in execution (post) order:
// which join runs key-shuffled vs broadcast and on what estimates, and
// which groupby can take the dictionary code path. The df layer appends
// this to Query.Explain when the session engine is MODIN.
func (e *Engine) DescribePhysical(n algebra.Node) string {
	var b strings.Builder
	if !e.statsOn {
		b.WriteString("statistics: off (zero-stats fallbacks: broadcast joins, even shuffle cuts)\n")
	}
	e.describeNode(n, &b)
	if b.Len() == 0 {
		b.WriteString("(no repartition points)\n")
	}
	return b.String()
}

func (e *Engine) describeNode(n algebra.Node, b *strings.Builder) {
	for _, c := range n.Children() {
		e.describeNode(c, b)
	}
	switch node := n.(type) {
	case *algebra.Join:
		if node.Kind != expr.JoinInner && node.Kind != expr.JoinLeft {
			fmt.Fprintf(b, "JOIN strategy=gather-exchange\n")
			return
		}
		choice := e.chooseJoinStrategy(node)
		strategy := "broadcast"
		if choice.shuffled {
			strategy = "shuffle"
		}
		fmt.Fprintf(b, "JOIN strategy=%s (build≈%s rows", strategy, approx(choice.buildRows))
		if choice.buildNDV > 0 {
			fmt.Fprintf(b, ", ndv≈%s", approx(choice.buildNDV))
		}
		b.WriteString(")\n")
	case *algebra.GroupBy:
		est := optimizer.Estimator{Stats: e}
		if algebra.DictGroupSupported(node.Spec) && e.dictKeyed(node.Input, node.Spec.Keys[0]) {
			fmt.Fprintf(b, "GROUPBY strategy=dict-codes (groups≈%s)\n", approx(est.EstimateNode(node).Rows))
			return
		}
		fmt.Fprintf(b, "GROUPBY strategy=hash-shuffle (groups≈%s)\n", approx(est.EstimateNode(node).Rows))
	case *algebra.Scan:
		rows := node.BandRows
		if rows <= 0 {
			rows = physical.DefaultStreamBandRows
		}
		fmt.Fprintf(b, "SCAN strategy=stream (band rows=%d", rows)
		if node.SizeHint > 0 {
			fmt.Fprintf(b, ", ≈%s bytes", approx(float64(node.SizeHint)))
		}
		b.WriteString(")\n")
	}
}

// dictKeyed reports whether the groupby key column reaches the plan from a
// base frame with dictionary-coded storage — the precondition for the
// typed code-indexed aggregation path.
func (e *Engine) dictKeyed(n algebra.Node, key string) bool {
	for {
		switch node := n.(type) {
		case *algebra.Source:
			j := node.DF.ColIndex(key)
			if j < 0 {
				return false
			}
			_, _, _, _, ok := vector.DictData(node.DF.TypedCol(j))
			return ok
		case *algebra.Selection:
			n = node.Input
		case *algebra.Sort:
			n = node.Input
		case *algebra.Limit:
			n = node.Input
		case *algebra.Projection:
			n = node.Input
		default:
			return false
		}
	}
}

// approx renders a planner estimate at sketch precision: 1234567 → "1.2M",
// 800000 → "800k", 42 → "42".
func approx(x float64) string {
	switch {
	case x >= 1e6:
		s := strconv.FormatFloat(x/1e6, 'f', 1, 64)
		return strings.TrimSuffix(s, ".0") + "M"
	case x >= 1e3:
		return strconv.FormatFloat(x/1e3, 'f', 0, 64) + "k"
	default:
		return strconv.FormatFloat(x, 'f', 0, 64)
	}
}

// Package modin implements the MODIN engine of Section 3: parallel
// execution of dataframe-algebra plans over row/column/block partitions,
// scheduled on the task-parallel execution layer (internal/exec), with a
// communication-free block transpose and partial-aggregation GROUPBY.
//
// Execution is compile-then-schedule: logical plans are lowered into a
// physical stage DAG (compile.go), where chains of embarrassingly-parallel
// operators fuse into one task per band, the hot repartition points
// (groupby, sort, inner/left join) become two-phase shuffles with one
// independent future per output band (shuffle.go, sort.go), and
// shape-opaque operators (transpose, window, union, ...) keep the gather
// exchange barrier; the physical scheduler then drains the DAG
// asynchronously on the worker pool, handing back deferred partition frames
// and futures (internal/physical).
package modin

import (
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// Stats aggregates physical-scheduler activity across an engine's runs.
// Each run's own counts are reachable through Schedule's scheduler; these
// totals let long-lived sessions observe how much of their work streams
// through shuffles versus falls back to gather exchanges.
type Stats struct {
	// Runs counts scheduled plan executions.
	Runs atomic.Int64
	// FusedTasks and ExchangeTasks mirror the physical scheduler counters.
	FusedTasks    atomic.Int64
	ExchangeTasks atomic.Int64
	// ShuffleStages, ShufflePartitionTasks and ShuffleMergeTasks count the
	// streaming repartition work; ShuffleFallbacks counts shuffles that
	// degraded to one coordinating task over a shape-opaque input.
	ShuffleStages         atomic.Int64
	ShufflePartitionTasks atomic.Int64
	ShuffleMergeTasks     atomic.Int64
	ShuffleFallbacks      atomic.Int64
	// StreamStages counts morsel-driven scan stages scheduled, StreamBands
	// the bands their grids were sized to, and StreamReleasedBands how many
	// input bands a downstream shuffle released after routing them.
	// SpilledPieces counts routed shuffle pieces written to disk under the
	// engine's spill budget.
	StreamStages        atomic.Int64
	StreamBands         atomic.Int64
	StreamReleasedBands atomic.Int64
	SpilledPieces       atomic.Int64
}

func (s *Stats) add(run *physical.Stats) {
	s.Runs.Add(1)
	s.FusedTasks.Add(run.FusedTasks.Load())
	s.ExchangeTasks.Add(run.ExchangeTasks.Load())
	s.ShuffleStages.Add(run.ShuffleStages.Load())
	s.ShufflePartitionTasks.Add(run.ShufflePartitionTasks.Load())
	s.ShuffleMergeTasks.Add(run.ShuffleMergeTasks.Load())
	s.ShuffleFallbacks.Add(run.ShuffleFallbacks.Load())
	s.StreamStages.Add(run.StreamStages.Load())
	s.StreamBands.Add(run.StreamBands.Load())
	// StreamReleasedBands is deliberately absent: releases happen at task
	// time, after the wiring-time snapshot — the scheduler mirrors them into
	// the cumulative counter via OnBandRelease as they land.
}

// defaultBroadcastLimit is the build-side row estimate above which an
// inner/left equi-join switches from the broadcast probe to the key-shuffled
// hash join. Below it, rebuilding a small hash table per band is cheaper
// than routing both inputs and restoring the probe order.
const defaultBroadcastLimit = 65536

// Engine executes algebra plans in parallel over partitions.
type Engine struct {
	pool  *exec.Pool
	bands int
	stats Stats

	// Statistics-driven physical planning (see stats.go): statsOn gates
	// collection AND every stats-driven strategy, so a stats-less engine
	// plans exactly as the pre-stats engine did.
	statsOn        bool
	broadcastLimit int
	statsMu        sync.Mutex
	statsCache     map[*core.DataFrame]*stats.Table

	// Out-of-core shuffle state (spill.go): routed-but-unmerged shuffle
	// pieces are accounted against spillBudget resident cells; pieces past
	// it spill through spillStore (lazily created, freed by ReleaseSpill).
	// spillGroups tracks the cancellation groups of runs scheduled while the
	// budget is on, so ReleaseSpill can quiesce their straggler tasks before
	// closing the store (a cancelled run's partition tasks would otherwise
	// lazily re-create it and leak their spill files).
	spillBudget   int
	spillMu       sync.Mutex
	spillStore    *storage.Store
	spillResident int
	spillSeq      int64
	spillGroups   []*exec.Group
}

// Option configures the engine.
type Option func(*Engine)

// WithPool uses the given worker pool instead of the shared default.
func WithPool(p *exec.Pool) Option { return func(e *Engine) { e.pool = p } }

// WithBands overrides the target partition count per axis (default: the
// pool's worker count).
func WithBands(n int) Option { return func(e *Engine) { e.bands = n } }

// WithoutStats disables statistics collection and every stats-driven
// physical decision: joins always broadcast, shuffle buckets cut evenly —
// exactly the zero-stats plans.
func WithoutStats() Option { return func(e *Engine) { e.statsOn = false } }

// WithBroadcastLimit overrides the build-side row estimate above which
// inner/left equi-joins shuffle by key instead of broadcasting (default
// 65536). Tests force it low to exercise the shuffled path on small data.
func WithBroadcastLimit(n int) Option { return func(e *Engine) { e.broadcastLimit = n } }

// WithShuffleSpillBudget bounds the cells held by routed-but-not-yet-merged
// shuffle pieces: pieces admitted past the budget spill to disk through
// internal/storage and are re-read lazily when their merge runs. Together
// with the band release this keeps GROUPBY/SORT/JOIN over a streamed input
// within a fixed memory ceiling instead of failing. 0 (the default)
// disables spilling.
func WithShuffleSpillBudget(cells int) Option { return func(e *Engine) { e.spillBudget = cells } }

// New returns a MODIN engine backed by the shared default pool.
func New(opts ...Option) *Engine {
	e := &Engine{
		pool:           exec.Default,
		statsOn:        true,
		broadcastLimit: defaultBroadcastLimit,
		statsCache:     make(map[*core.DataFrame]*stats.Table),
	}
	for _, o := range opts {
		o(e)
	}
	if e.bands <= 0 {
		e.bands = e.pool.Workers()
	}
	return e
}

// Name identifies the engine.
func (e *Engine) Name() string { return "modin" }

// Pool exposes the execution pool (the session layer schedules background
// work on it).
func (e *Engine) Pool() *exec.Pool { return e.pool }

// Stats exposes the engine's cumulative scheduler counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Schedule compiles the plan and launches its task DAG, returning the root
// handle and the run's scheduler (whose Stats expose per-run fused,
// exchange and shuffle task counts). The run's tasks are already in flight
// when Schedule returns; the handle resolves as they land.
func (e *Engine) Schedule(n algebra.Node) (*physical.Result, *physical.Scheduler, error) {
	_, res, sched, err := e.schedule(n)
	return res, sched, err
}

// Execute evaluates the plan and gathers the result into one dataframe.
// The gather runs on the calling goroutine (no extra task) since Execute is
// synchronous anyway.
func (e *Engine) Execute(n algebra.Node) (*core.DataFrame, error) {
	_, res, _, err := e.schedule(n)
	if err != nil {
		return nil, err
	}
	pf, err := res.Frame()
	if err != nil {
		return nil, err
	}
	return pf.ToFrame()
}

// ExecuteAsync compiles the plan, schedules its task DAG, and returns a
// future of the gathered result without waiting for any task — the handle
// the opportunistic session regime passes back to users (Section 6.1.1).
func (e *Engine) ExecuteAsync(n algebra.Node) *exec.Future {
	_, res, sched, err := e.schedule(n)
	if err != nil {
		return exec.Failed(err)
	}
	return sched.Gather(res)
}

// ExecuteCompiled runs an already-compiled physical plan on a fresh
// scheduler and gathers the result. Compiled DAGs hold no per-run state
// (the scheduler owns the memo), so a cached *physical.Node — the server's
// plan cache in particular — can be re-executed any number of times,
// concurrently, without recompiling. Per-run task counts still accumulate
// into the engine's cumulative stats.
func (e *Engine) ExecuteCompiled(plan *physical.Node) (*core.DataFrame, error) {
	sched := physical.NewScheduler(e.pool)
	sched.OnBandRelease = func() { e.stats.StreamReleasedBands.Add(1) }
	e.trackSpillRun(sched)
	res, err := sched.Run(plan)
	if err != nil {
		return nil, err
	}
	e.stats.add(&sched.Stats)
	pf, err := res.Frame()
	if err != nil {
		return nil, err
	}
	return pf.ToFrame()
}

// ExecutePartitioned evaluates the plan, leaving the result partitioned so
// downstream operators (or head/tail views) can consume blocks lazily. The
// returned frame may be deferred (blocks still computing) when the plan's
// root is a fused or shuffle stage — shuffle output bands resolve
// independently as their merges land; root gather exchanges are waited for
// so the result's band structure is real. Task errors in deferred blocks
// surface at gather time — Resolve, ToFrame, or BlockErr — not from this
// call.
func (e *Engine) ExecutePartitioned(n algebra.Node) (*partition.Frame, error) {
	_, res, _, err := e.schedule(n)
	if err != nil {
		return nil, err
	}
	return res.Frame()
}

// schedule compiles the plan and launches its task DAG, returning the
// physical plan, the root handle, and the scheduler (for stats).
func (e *Engine) schedule(n algebra.Node) (*physical.Node, *physical.Result, *physical.Scheduler, error) {
	plan, err := e.Compile(n)
	if err != nil {
		return nil, nil, nil, err
	}
	sched := physical.NewScheduler(e.pool)
	sched.OnBandRelease = func() { e.stats.StreamReleasedBands.Add(1) }
	e.trackSpillRun(sched)
	res, err := sched.Run(plan)
	if err != nil {
		return nil, nil, nil, err
	}
	// Wiring-time counters are final once Run returns, so they snapshot
	// here even though the tasks themselves still run; band releases are
	// task-time and arrive through OnBandRelease instead.
	e.stats.add(&sched.Stats)
	return plan, res, sched, nil
}

// --- exchange implementations --------------------------------------------
//
// Each exchange receives its inputs as (possibly just-materialized)
// partition frames; the physical scheduler guarantees every input block
// exists before Run is called.

// gather resolves a frame into one dataframe (inputs to whole-frame
// kernels).
func gather(in *partition.Frame) (*core.DataFrame, error) { return in.ToFrame() }

// rePartition splits a kernel result back into row bands.
func (e *Engine) rePartition(df *core.DataFrame) *partition.Frame {
	return partition.New(df, partition.Rows, e.bands)
}

// executeWindow parallelizes direction-agnostic bounded windows (shift,
// diff, rolling) with boundary-row exchange between bands; unbounded
// (expanding) windows gather.
func (e *Engine) executeWindow(spec expr.WindowSpec, in *partition.Frame) (*partition.Frame, error) {
	boundary := 0
	switch spec.Kind {
	case expr.WindowShift, expr.WindowDiff:
		boundary = spec.Offset
		if boundary == 0 {
			boundary = 1
		}
		if boundary < 0 {
			boundary = -boundary
		}
	case expr.WindowRolling:
		boundary = spec.Size - 1
	case expr.WindowExpanding:
		df, err := gather(in)
		if err != nil {
			return nil, err
		}
		out, err := algebra.WindowFrame(df, spec)
		if err != nil {
			return nil, err
		}
		return e.rePartition(out), nil
	}

	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	rb := full.RowBands()
	bands := make([]*core.DataFrame, rb)
	for r := 0; r < rb; r++ {
		b, err := full.RowBand(r)
		if err != nil {
			return nil, err
		}
		bands[r] = b
	}
	results, err := exec.MapParallel(e.pool, rb, func(r int) (*core.DataFrame, error) {
		band := bands[r]
		lead := 0
		if !spec.Reverse && r > 0 && boundary > 0 {
			// Prepend the tail of the previous band.
			prev := bands[r-1]
			take := boundary
			if take > prev.NRows() {
				take = prev.NRows()
			}
			ext, err := algebra.VStackFrames(prev.SliceRows(prev.NRows()-take, prev.NRows()), band)
			if err != nil {
				return nil, err
			}
			band, lead = ext, take
		}
		trail := 0
		if spec.Reverse && r < rb-1 && boundary > 0 {
			next := bands[r+1]
			take := boundary
			if take > next.NRows() {
				take = next.NRows()
			}
			ext, err := algebra.VStackFrames(band, next.SliceRows(0, take))
			if err != nil {
				return nil, err
			}
			band, trail = ext, take
		}
		out, err := algebra.WindowFrame(band, spec)
		if err != nil {
			return nil, err
		}
		return out.SliceRows(lead, out.NRows()-trail), nil
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]*core.DataFrame, rb)
	for r := range results {
		grid[r] = []*core.DataFrame{results[r]}
	}
	return partition.FromGrid(grid)
}

// executeJoinGather handles the join kinds the shuffle path does not cover
// (outer joins, whose row order mixes both inputs): gather both sides and
// join whole.
func (e *Engine) executeJoinGather(node *algebra.Join, left, right *partition.Frame) (*partition.Frame, error) {
	rightDF, err := gather(right)
	if err != nil {
		return nil, err
	}
	leftDF, err := gather(left)
	if err != nil {
		return nil, err
	}
	out, err := algebra.JoinFrames(leftDF, rightDF, node.Kind, node.On, node.OnLabels)
	if err != nil {
		return nil, err
	}
	return e.rePartition(out), nil
}

// executeTranspose repartitions to a block grid and transposes blocks in
// place (Section 3.1's communication-free transpose).
func (e *Engine) executeTranspose(schema []types.Domain, in *partition.Frame) (*partition.Frame, error) {
	blocks, err := in.Repartition(partition.Blocks, e.bands)
	if err != nil {
		return nil, err
	}
	return blocks.Transpose(e.pool, schema)
}

// limitPartitioned takes the prefix (n>0) or suffix (n<0) touching only the
// bands that contribute rows.
func (e *Engine) limitPartitioned(in *partition.Frame, n int) (*partition.Frame, error) {
	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	var picked []*core.DataFrame
	if n >= 0 {
		remaining := n
		for r := 0; r < full.RowBands() && remaining > 0; r++ {
			band, err := full.RowBand(r)
			if err != nil {
				return nil, err
			}
			take := remaining
			if take > band.NRows() {
				take = band.NRows()
			}
			picked = append(picked, band.SliceRows(0, take))
			remaining -= take
		}
	} else {
		remaining := -n
		var rev []*core.DataFrame
		for r := full.RowBands() - 1; r >= 0 && remaining > 0; r-- {
			band, err := full.RowBand(r)
			if err != nil {
				return nil, err
			}
			take := remaining
			if take > band.NRows() {
				take = band.NRows()
			}
			rev = append(rev, band.SliceRows(band.NRows()-take, band.NRows()))
			remaining -= take
		}
		for i := len(rev) - 1; i >= 0; i-- {
			picked = append(picked, rev[i])
		}
	}
	if len(picked) == 0 {
		picked = []*core.DataFrame{core.Empty()}
	}
	grid := make([][]*core.DataFrame, len(picked))
	for r := range picked {
		grid[r] = []*core.DataFrame{picked[r]}
	}
	return partition.FromGrid(grid)
}

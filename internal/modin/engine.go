// Package modin implements the MODIN engine of Section 3: parallel
// execution of dataframe-algebra plans over row/column/block partitions,
// scheduled on the task-parallel execution layer (internal/exec), with a
// communication-free block transpose and partial-aggregation GROUPBY.
//
// The engine picks a partitioning scheme per operator (Section 3.1):
// embarrassingly parallel row-wise operators run on row bands, elementwise
// MAPs run per block, and TRANSPOSE runs on a block grid.
package modin

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/vector"
)

// Engine executes algebra plans in parallel over partitions.
type Engine struct {
	pool  *exec.Pool
	bands int
}

// Option configures the engine.
type Option func(*Engine)

// WithPool uses the given worker pool instead of the shared default.
func WithPool(p *exec.Pool) Option { return func(e *Engine) { e.pool = p } }

// WithBands overrides the target partition count per axis (default: the
// pool's worker count).
func WithBands(n int) Option { return func(e *Engine) { e.bands = n } }

// New returns a MODIN engine backed by the shared default pool.
func New(opts ...Option) *Engine {
	e := &Engine{pool: exec.Default}
	for _, o := range opts {
		o(e)
	}
	if e.bands <= 0 {
		e.bands = e.pool.Workers()
	}
	return e
}

// Name identifies the engine.
func (e *Engine) Name() string { return "modin" }

// Pool exposes the execution pool (the session layer schedules background
// work on it).
func (e *Engine) Pool() *exec.Pool { return e.pool }

// Execute evaluates the plan and gathers the result into one dataframe.
func (e *Engine) Execute(n algebra.Node) (*core.DataFrame, error) {
	pf, err := e.executePartitioned(n)
	if err != nil {
		return nil, err
	}
	return pf.ToFrame()
}

// ExecutePartitioned evaluates the plan, leaving the result partitioned so
// downstream operators (or head/tail views) can consume blocks lazily.
func (e *Engine) ExecutePartitioned(n algebra.Node) (*partition.Frame, error) {
	return e.executePartitioned(n)
}

func (e *Engine) executePartitioned(n algebra.Node) (*partition.Frame, error) {
	switch node := n.(type) {
	case *algebra.Source:
		return partition.New(node.DF, partition.Rows, e.bands), nil

	case *algebra.Selection:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		return in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.SelectRows(band, node.Pred), nil
		})

	case *algebra.Projection:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		return in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.Project(band, node.Cols)
		})

	case *algebra.Map:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		if node.Fn.Elementwise != nil {
			// Elementwise MAPs are partitioning-agnostic: run per
			// block under whatever scheme the input already has.
			return in.MapBlocks(e.pool, func(blk *core.DataFrame) (*core.DataFrame, error) {
				return algebra.MapFrame(blk, node.Fn)
			})
		}
		// Row UDFs need whole rows: ensure full-width bands.
		full, err := in.EnsureSingleColBand()
		if err != nil {
			return nil, err
		}
		return full.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.MapFrame(band, node.Fn)
		})

	case *algebra.GroupBy:
		return e.executeGroupBy(node)

	case *algebra.Transpose:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		blocks, err := in.Repartition(partition.Blocks, e.bands)
		if err != nil {
			return nil, err
		}
		return blocks.Transpose(e.pool, node.Schema)

	case *algebra.Window:
		return e.executeWindow(node)

	case *algebra.Rename:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		return in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.RenameFrame(band, node.Mapping)
		})

	case *algebra.ToLabels:
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		return in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.ToLabelsFrame(band, node.Col)
		})

	case *algebra.FromLabels:
		// FROMLABELS resets row labels to global positional notation,
		// which spans partitions; run on the gathered frame.
		in, err := e.gather(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.FromLabelsFrame(in, node.Label)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil

	case *algebra.Union:
		left, err := e.gather(node.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.gather(node.Right)
		if err != nil {
			return nil, err
		}
		out, err := algebra.UnionFrames(left, right)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil

	case *algebra.Difference:
		left, err := e.gather(node.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.gather(node.Right)
		if err != nil {
			return nil, err
		}
		out, err := algebra.DifferenceFrames(left, right)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil

	case *algebra.Join:
		return e.executeJoin(node)

	case *algebra.DropDuplicates:
		in, err := e.gather(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.DropDuplicatesFrame(in, node.Subset)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil

	case *algebra.Sort:
		return e.executeSort(node)

	case *algebra.TopK:
		// Per-band top-k in parallel, then a final top-k over the
		// surviving candidates: each band keeps at most |k| rows, so the
		// final pass touches k×bands rows instead of the full input.
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		candidates, err := in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.TopKFrame(band, node.Order, node.N)
		})
		if err != nil {
			return nil, err
		}
		gathered, err := candidates.ToFrame()
		if err != nil {
			return nil, err
		}
		out, err := algebra.TopKFrame(gathered, node.Order, node.N)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil

	case *algebra.Induce:
		// Induction over blocks would mis-type columns that only full
		// data determines; gather first.
		in, err := e.gather(node.Input)
		if err != nil {
			return nil, err
		}
		return partition.New(algebra.InduceFrame(in), partition.Rows, e.bands), nil

	case *algebra.Limit:
		// Prefix/suffix views only need the boundary partitions
		// (Section 6.1.2): untouched bands are never gathered.
		in, err := e.executePartitioned(node.Input)
		if err != nil {
			return nil, err
		}
		return e.limitPartitioned(in, node.N)

	default:
		return nil, fmt.Errorf("modin: unknown plan node %T", n)
	}
}

func (e *Engine) gather(n algebra.Node) (*core.DataFrame, error) {
	pf, err := e.executePartitioned(n)
	if err != nil {
		return nil, err
	}
	return pf.ToFrame()
}

// executeGroupBy computes partial aggregations per row band in parallel and
// merges them in band order, preserving first-appearance group order.
func (e *Engine) executeGroupBy(node *algebra.GroupBy) (*partition.Frame, error) {
	in, err := e.executePartitioned(node.Input)
	if err != nil {
		return nil, err
	}
	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	spec := node.Spec
	spec.Sorted = false // hashing per band; sortedness is a single-node optimization
	partials, err := exec.MapParallel(e.pool, full.RowBands(), func(r int) (*algebra.GroupPartial, error) {
		band, err := full.RowBand(r)
		if err != nil {
			return nil, err
		}
		g := algebra.NewGroupPartial(spec)
		if err := g.AddFrame(band); err != nil {
			return nil, err
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	merged := partials[0]
	for _, p := range partials[1:] {
		merged.Merge(p)
	}
	out, err := merged.Finalize()
	if err != nil {
		return nil, err
	}
	return partition.New(out, partition.Rows, e.bands), nil
}

// executeWindow parallelizes direction-agnostic bounded windows (shift,
// diff, rolling) with boundary-row exchange between bands; unbounded
// (expanding) windows gather.
func (e *Engine) executeWindow(node *algebra.Window) (*partition.Frame, error) {
	spec := node.Spec
	boundary := 0
	switch spec.Kind {
	case expr.WindowShift, expr.WindowDiff:
		boundary = spec.Offset
		if boundary == 0 {
			boundary = 1
		}
		if boundary < 0 {
			boundary = -boundary
		}
	case expr.WindowRolling:
		boundary = spec.Size - 1
	case expr.WindowExpanding:
		in, err := e.gather(node.Input)
		if err != nil {
			return nil, err
		}
		out, err := algebra.WindowFrame(in, spec)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil
	}

	in, err := e.executePartitioned(node.Input)
	if err != nil {
		return nil, err
	}
	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	rb := full.RowBands()
	bands := make([]*core.DataFrame, rb)
	for r := 0; r < rb; r++ {
		b, err := full.RowBand(r)
		if err != nil {
			return nil, err
		}
		bands[r] = b
	}
	results, err := exec.MapParallel(e.pool, rb, func(r int) (*core.DataFrame, error) {
		band := bands[r]
		lead := 0
		if !spec.Reverse && r > 0 && boundary > 0 {
			// Prepend the tail of the previous band.
			prev := bands[r-1]
			take := boundary
			if take > prev.NRows() {
				take = prev.NRows()
			}
			ext, err := algebra.VStackFrames(prev.SliceRows(prev.NRows()-take, prev.NRows()), band)
			if err != nil {
				return nil, err
			}
			band, lead = ext, take
		}
		trail := 0
		if spec.Reverse && r < rb-1 && boundary > 0 {
			next := bands[r+1]
			take := boundary
			if take > next.NRows() {
				take = next.NRows()
			}
			ext, err := algebra.VStackFrames(band, next.SliceRows(0, take))
			if err != nil {
				return nil, err
			}
			band, trail = ext, take
		}
		out, err := algebra.WindowFrame(band, spec)
		if err != nil {
			return nil, err
		}
		return out.SliceRows(lead, out.NRows()-trail), nil
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]*core.DataFrame, rb)
	for r := range results {
		grid[r] = []*core.DataFrame{results[r]}
	}
	return partition.FromGrid(grid)
}

// executeJoin builds the hash side once and probes left row bands in
// parallel.
func (e *Engine) executeJoin(node *algebra.Join) (*partition.Frame, error) {
	right, err := e.gather(node.Right)
	if err != nil {
		return nil, err
	}
	if node.Kind == expr.JoinInner || node.Kind == expr.JoinLeft {
		// Parallel probe: left order is preserved band-by-band, so
		// concatenating band results reproduces the ordered join.
		in, err := e.executePartitioned(node.Left)
		if err != nil {
			return nil, err
		}
		probed, err := in.MapRowBands(e.pool, func(band *core.DataFrame) (*core.DataFrame, error) {
			return algebra.JoinFrames(band, right, node.Kind, node.On, node.OnLabels)
		})
		if err != nil {
			return nil, err
		}
		if node.OnLabels {
			return probed, nil
		}
		// Data-column joins reset row labels positionally; per-band
		// numbering must be replaced by a global sequence.
		out, err := probed.ToFrame()
		if err != nil {
			return nil, err
		}
		out, err = out.WithRowLabels(vector.Range(0, out.NRows()))
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil
	}
	left, err := e.gather(node.Left)
	if err != nil {
		return nil, err
	}
	out, err := algebra.JoinFrames(left, right, node.Kind, node.On, node.OnLabels)
	if err != nil {
		return nil, err
	}
	return partition.New(out, partition.Rows, e.bands), nil
}

// limitPartitioned takes the prefix (n>0) or suffix (n<0) touching only the
// bands that contribute rows.
func (e *Engine) limitPartitioned(in *partition.Frame, n int) (*partition.Frame, error) {
	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	var picked []*core.DataFrame
	if n >= 0 {
		remaining := n
		for r := 0; r < full.RowBands() && remaining > 0; r++ {
			band, err := full.RowBand(r)
			if err != nil {
				return nil, err
			}
			take := remaining
			if take > band.NRows() {
				take = band.NRows()
			}
			picked = append(picked, band.SliceRows(0, take))
			remaining -= take
		}
	} else {
		remaining := -n
		var rev []*core.DataFrame
		for r := full.RowBands() - 1; r >= 0 && remaining > 0; r-- {
			band, err := full.RowBand(r)
			if err != nil {
				return nil, err
			}
			take := remaining
			if take > band.NRows() {
				take = band.NRows()
			}
			rev = append(rev, band.SliceRows(band.NRows()-take, band.NRows()))
			remaining -= take
		}
		for i := len(rev) - 1; i >= 0; i-- {
			picked = append(picked, rev[i])
		}
	}
	if len(picked) == 0 {
		picked = []*core.DataFrame{core.Empty()}
	}
	grid := make([][]*core.DataFrame, len(picked))
	for r := range picked {
		grid[r] = []*core.DataFrame{picked[r]}
	}
	return partition.FromGrid(grid)
}

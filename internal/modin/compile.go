package modin

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/schema"
)

// Compile lowers a logical plan into a physical stage DAG (Section 3.3's
// decoupling of the algebra from the execution layer):
//
//   - Embarrassingly-parallel unary operators (SELECTION, PROJECTION, MAP,
//     RENAME, TOLABELS, and TOPK's per-band pass) become kernels, and
//     consecutive kernels over a single-use input fuse into ONE stage —
//     one task per band, no inter-operator barrier.
//   - The hot repartition points (GROUPBY, SORT, inner/left JOIN) become
//     shuffle stages: a two-phase partition→route→merge lowering where each
//     output band is its own future, so downstream fused stages start as
//     soon as the band that feeds them lands (shuffle.go, sort.go).
//   - Shape-opaque repartition points (TRANSPOSE, WINDOW, UNION,
//     DIFFERENCE, outer JOIN, ...) stay exchange stages: explicit DAG
//     dependencies on every input block, one coordinating task.
//
// Shared sub-plans (a statement referencing an earlier handle twice)
// compile to shared physical nodes, scheduled once; fusion never crosses a
// shared edge, so no kernel runs twice.
func (e *Engine) Compile(n algebra.Node) (*physical.Node, error) {
	c := &compiler{
		e:    e,
		uses: make(map[algebra.Node]int),
		memo: make(map[algebra.Node]*physical.Node),
	}
	if n == nil {
		return nil, fmt.Errorf("modin: nil plan")
	}
	countUses(n, c.uses)
	return c.compile(n)
}

// countUses tallies how many parents reference each sub-plan; fusion onto a
// stage is only legal when its algebra node has exactly one consumer.
func countUses(n algebra.Node, uses map[algebra.Node]int) {
	uses[n]++
	if uses[n] > 1 {
		return // children already counted via the first visit
	}
	for _, child := range n.Children() {
		countUses(child, uses)
	}
}

type compiler struct {
	e    *Engine
	uses map[algebra.Node]int
	memo map[algebra.Node]*physical.Node
}

func (c *compiler) compile(n algebra.Node) (*physical.Node, error) {
	if p, ok := c.memo[n]; ok {
		return p, nil
	}
	p, err := c.lower(n)
	if err != nil {
		return nil, err
	}
	c.memo[n] = p
	return p, nil
}

// cachedCursor attaches a fresh schema cache to every parsed band, so the
// band's fused kernel chain memoizes lazy type induction the same way a
// whole-frame scan did.
type cachedCursor struct{ *core.CSVCursor }

func (c cachedCursor) NextBand(maxRows int) (*core.DataFrame, error) {
	df, err := c.CSVCursor.NextBand(maxRows)
	if err != nil {
		return df, err
	}
	return df.WithCache(schema.NewCache()), nil
}

// describeErr wraps a kernel or exchange failure with the logical
// operator's description, so a deep chain's error names the operator that
// failed (the physical layer only adds the kernel's short name).
func describeErr(desc string, err error) error {
	return fmt.Errorf("%s: %w", desc, err)
}

// fuse appends a kernel implementing node n to the compiled input,
// extending the input's fused stage in place when it is a fused stage with
// a single consumer, and opening a new fused stage otherwise. The kernel's
// failures are annotated with n's description.
func (c *compiler) fuse(n algebra.Node, input algebra.Node, k physical.Kernel) (*physical.Node, error) {
	in, err := c.compile(input)
	if err != nil {
		return nil, err
	}
	desc, fn := n.Describe(), k.Fn
	k.Fn = func(b *core.DataFrame) (*core.DataFrame, error) {
		out, err := fn(b)
		if err != nil {
			return nil, describeErr(desc, err)
		}
		return out, nil
	}
	if in.Stream != nil && c.uses[input] == 1 {
		// Kernels over a single-use streamed scan fuse INTO the stream
		// stage: each band runs scan→filter→... as one task the moment it
		// parses, so a selective chain discards rows morsel by morsel and
		// the raw scan output never accumulates.
		return physical.FuseStream(in, k), nil
	}
	if len(in.Kernels) > 0 && c.uses[input] == 1 {
		return in.Fuse(k), nil
	}
	return physical.NewFused(in, k), nil
}

// exchange compiles the inputs and wraps run as a barrier stage
// implementing node n; failures are annotated with n's description.
func (c *compiler) exchange(n algebra.Node, name string, run func([]*partition.Frame) (*partition.Frame, error), inputs ...algebra.Node) (*physical.Node, error) {
	compiled := make([]*physical.Node, len(inputs))
	for i, in := range inputs {
		p, err := c.compile(in)
		if err != nil {
			return nil, err
		}
		compiled[i] = p
	}
	desc := n.Describe()
	wrapped := func(in []*partition.Frame) (*partition.Frame, error) {
		out, err := run(in)
		if err != nil {
			return nil, describeErr(desc, err)
		}
		return out, nil
	}
	return physical.NewExchange(name, wrapped, compiled...), nil
}

// shuffleStage compiles the shuffled input (and whole-frame side inputs)
// and wraps sh as a two-phase shuffle stage implementing node n; every
// phase hook's failure is annotated with n's description.
func (c *compiler) shuffleStage(n algebra.Node, sh *physical.Shuffle, input algebra.Node, sides ...algebra.Node) (*physical.Node, error) {
	in, err := c.compile(input)
	if err != nil {
		return nil, err
	}
	compiled := make([]*physical.Node, len(sides))
	for i, side := range sides {
		p, err := c.compile(side)
		if err != nil {
			return nil, err
		}
		compiled[i] = p
	}
	return physical.NewShuffle(describeShuffle(n.Describe(), c.e.spillShuffle(sh)), in, compiled...), nil
}

// describeShuffle clones the shuffle with each phase hook annotating its
// failures with the logical operator's description (the physical layer
// adds only the stage's short name and phase).
func describeShuffle(desc string, sh *physical.Shuffle) *physical.Shuffle {
	wrapped := *sh
	if fn := sh.Summarize; fn != nil {
		wrapped.Summarize = func(band int, df *core.DataFrame) (any, error) {
			v, err := fn(band, df)
			if err != nil {
				return nil, describeErr(desc, err)
			}
			return v, nil
		}
	}
	if fn := sh.Plan; fn != nil {
		wrapped.Plan = func(summaries []any, sides []*partition.Frame) (any, error) {
			v, err := fn(summaries, sides)
			if err != nil {
				return nil, describeErr(desc, err)
			}
			return v, nil
		}
	}
	if fn := sh.PrefixPlan; fn != nil {
		wrapped.PrefixPlan = func(prefix []any) (any, error) {
			v, err := fn(prefix)
			if err != nil {
				return nil, describeErr(desc, err)
			}
			return v, nil
		}
	}
	if fn := sh.Partition; fn != nil {
		wrapped.Partition = func(band int, df *core.DataFrame, plan any) ([]any, error) {
			v, err := fn(band, df, plan)
			if err != nil {
				return nil, describeErr(desc, err)
			}
			return v, nil
		}
	}
	if fn := sh.Merge; fn != nil {
		wrapped.Merge = func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			out, err := fn(bucket, pieces, plan)
			if err != nil {
				return nil, describeErr(desc, err)
			}
			return out, nil
		}
	}
	return &wrapped
}

// wholeFrame adapts a gather-then-kernel operator (one that must see the
// full dataframe) into an exchange, re-partitioning its result.
func (c *compiler) wholeFrame(n algebra.Node, name string, fn func(*core.DataFrame) (*core.DataFrame, error), input algebra.Node) (*physical.Node, error) {
	e := c.e
	return c.exchange(n, name, func(in []*partition.Frame) (*partition.Frame, error) {
		df, err := gather(in[0])
		if err != nil {
			return nil, err
		}
		out, err := fn(df)
		if err != nil {
			return nil, err
		}
		return e.rePartition(out), nil
	}, input)
}

func (c *compiler) lower(n algebra.Node) (*physical.Node, error) {
	e := c.e
	switch node := n.(type) {
	case *algebra.Source:
		// Attach whatever statistics the planner collected for this base
		// frame, so exchanges downstream can merge and re-expose them.
		pf := partition.New(node.DF, partition.Rows, e.bands)
		pf.SetStats(e.cachedStats(node.DF))
		return physical.NewSource(pf), nil

	case *algebra.Scan:
		// Morsel-driven scan: bands parse incrementally on the stream
		// stage's producer, and (via fuse above) a single-use scan absorbs
		// the downstream kernel chain. SingleUse additionally lets a
		// downstream spill-aware shuffle release each band once routed.
		scan := node
		return physical.NewStreamSource(&physical.StreamSource{
			Name: scan.Describe(),
			Open: func() (physical.StreamCursor, error) {
				cur, err := scan.Cursor()
				if err != nil {
					return nil, err
				}
				return cachedCursor{cur}, nil
			},
			BandRows:  scan.BandRows,
			SizeHint:  scan.SizeHint,
			SingleUse: c.uses[node] <= 1,
		}), nil

	case *algebra.Selection:
		if node.Where != nil {
			where := node.Where
			return c.fuse(node, node.Input, physical.Kernel{
				Name: "selection",
				// View output: consecutive filters in one fused chain
				// narrow a single selection vector over shared base
				// storage; the stage exit compacts once.
				Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
					return algebra.SelectWhereView(b, where)
				},
			})
		}
		pred := node.Pred
		return c.fuse(node, node.Input, physical.Kernel{
			Name: "selection",
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.SelectRows(b, pred), nil
			},
		})

	case *algebra.Projection:
		cols := node.Cols
		return c.fuse(node, node.Input, physical.Kernel{
			Name: "projection",
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.Project(b, cols)
			},
		})

	case *algebra.Map:
		fn := node.Fn
		return c.fuse(node, node.Input, physical.Kernel{
			Name: "map(" + fn.Name + ")",
			// Elementwise MAPs are partitioning-agnostic and may run per
			// block; row UDFs need full-width bands.
			Elementwise: fn.Elementwise != nil,
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.MapFrame(b, fn)
			},
		})

	case *algebra.Rename:
		mapping := node.Mapping
		return c.fuse(node, node.Input, physical.Kernel{
			Name: "rename",
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.RenameFrame(b, mapping)
			},
		})

	case *algebra.ToLabels:
		col := node.Col
		return c.fuse(node, node.Input, physical.Kernel{
			Name: "tolabels",
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.ToLabelsFrame(b, col)
			},
		})

	case *algebra.TopK:
		// Per-band top-k fuses into the upstream chain: each band keeps at
		// most |k| rows, so the final exchange touches k×bands rows instead
		// of the full input.
		order, k := node.Order, node.N
		partial, err := c.fuse(node, node.Input, physical.Kernel{
			Name: "topk-partial",
			Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
				return algebra.TopKFrame(b, order, k)
			},
		})
		if err != nil {
			return nil, err
		}
		return physical.NewExchange("topk-merge", func(in []*partition.Frame) (*partition.Frame, error) {
			df, err := gather(in[0])
			if err != nil {
				return nil, err
			}
			out, err := algebra.TopKFrame(df, order, k)
			if err != nil {
				return nil, describeErr(node.Describe(), err)
			}
			return e.rePartition(out), nil
		}, partial), nil

	case *algebra.GroupBy:
		// Band-routed key shuffle (each band partitions from its own
		// summary, no all-band barrier) plus a restore pass that interleaves
		// the merged buckets back into global first-appearance order.
		shuffled, err := c.shuffleStage(node, e.groupByShuffle(node.Spec), node.Input)
		if err != nil {
			return nil, err
		}
		return e.groupRestoreExchange(node.Spec, node.Describe, shuffled), nil

	case *algebra.Window:
		spec := node.Spec
		return c.exchange(node, "window", func(in []*partition.Frame) (*partition.Frame, error) {
			return e.executeWindow(spec, in[0])
		}, node.Input)

	case *algebra.Sort:
		return c.shuffleStage(node, e.sortShuffle(node), node.Input)

	case *algebra.Transpose:
		schema := node.Schema
		return c.exchange(node, "transpose", func(in []*partition.Frame) (*partition.Frame, error) {
			return e.executeTranspose(schema, in[0])
		}, node.Input)

	case *algebra.Join:
		if node.Kind == expr.JoinInner || node.Kind == expr.JoinLeft {
			if c.e.chooseJoinStrategy(node).shuffled {
				// Key-shuffled hash join (join_shuffle.go): statistics say
				// the build side is too large to broadcast, so both inputs
				// shuffle by key hash, each bucket builds once and probes
				// its slice, and a restore exchange re-establishes left
				// input order.
				left, err := c.compile(node.Left)
				if err != nil {
					return nil, err
				}
				right, err := c.compile(node.Right)
				if err != nil {
					return nil, err
				}
				built := physical.NewShuffle(describeShuffle(node.Describe(), e.spillShuffle(e.joinBuildShuffle(node.On))), right)
				probe := physical.NewShuffle(describeShuffle(node.Describe(), e.spillShuffle(e.joinProbeShuffleKeyed(node))), left, built)
				return e.joinRestoreExchange(node, probe), nil
			}
			// Anchored broadcast probe: left bands pass through in order,
			// the right side is built once and broadcast; band b's join
			// lands independently of the other bands.
			probe, err := c.shuffleStage(node, e.joinProbeShuffle(node), node.Left, node.Right)
			if err != nil {
				return nil, err
			}
			if node.OnLabels {
				return probe, nil
			}
			// Data-column joins reset row labels to one global positional
			// sequence; the renumber pass is itself an anchored shuffle
			// (only band counts cross bands), so the join's output bands
			// stay independent futures.
			return physical.NewShuffle(describeShuffle(node.Describe(), e.renumberShuffle()), probe), nil
		}
		return c.exchange(node, "join", func(in []*partition.Frame) (*partition.Frame, error) {
			return e.executeJoinGather(node, in[0], in[1])
		}, node.Left, node.Right)

	case *algebra.Union:
		return c.exchange(node, "union", func(in []*partition.Frame) (*partition.Frame, error) {
			left, err := gather(in[0])
			if err != nil {
				return nil, err
			}
			right, err := gather(in[1])
			if err != nil {
				return nil, err
			}
			out, err := algebra.UnionFrames(left, right)
			if err != nil {
				return nil, err
			}
			// A union of two summarized frames is itself summarized: rows
			// add, ranges widen, sketches union (partition.MergeStats).
			return e.rePartition(out).SetStats(partition.MergeStats(in[0], in[1])), nil
		}, node.Left, node.Right)

	case *algebra.Difference:
		return c.exchange(node, "difference", func(in []*partition.Frame) (*partition.Frame, error) {
			left, err := gather(in[0])
			if err != nil {
				return nil, err
			}
			right, err := gather(in[1])
			if err != nil {
				return nil, err
			}
			out, err := algebra.DifferenceFrames(left, right)
			if err != nil {
				return nil, err
			}
			return e.rePartition(out), nil
		}, node.Left, node.Right)

	case *algebra.FromLabels:
		// FROMLABELS resets row labels to global positional notation,
		// which spans partitions; run on the gathered frame.
		label := node.Label
		return c.wholeFrame(node, "fromlabels", func(df *core.DataFrame) (*core.DataFrame, error) {
			return algebra.FromLabelsFrame(df, label)
		}, node.Input)

	case *algebra.DropDuplicates:
		subset := node.Subset
		return c.wholeFrame(node, "dropduplicates", func(df *core.DataFrame) (*core.DataFrame, error) {
			return algebra.DropDuplicatesFrame(df, subset)
		}, node.Input)

	case *algebra.Induce:
		// Induction over blocks would mis-type columns that only full
		// data determines; gather first.
		return c.wholeFrame(node, "induce", func(df *core.DataFrame) (*core.DataFrame, error) {
			return algebra.InduceFrame(df), nil
		}, node.Input)

	case *algebra.Limit:
		// Prefix/suffix views only need the boundary partitions
		// (Section 6.1.2): untouched bands are never gathered.
		k := node.N
		return c.exchange(node, "limit", func(in []*partition.Frame) (*partition.Frame, error) {
			return e.limitPartitioned(in[0], k)
		}, node.Input)

	default:
		return nil, fmt.Errorf("modin: unknown plan node %T", n)
	}
}

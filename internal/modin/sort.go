package modin

import (
	"container/heap"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// SORT lowers to a range shuffle: each band contributes a small key sample
// (summarize), the plan picks nb-1 range bounds from the pooled samples,
// each partition task stably sorts its band and slices it into per-bucket
// runs (contiguous, zero-copy), and each merge task k-way merges only the
// runs routed to its bucket. Equal keys always route to one bucket and ties
// break toward the earlier band, so the concatenated buckets reproduce the
// stable single-node sort exactly — while every output band is its own
// future.

// sortSampleTarget bounds the per-band key samples contributed to the plan.
const sortSampleTarget = 32

// sortSummary is one band's key sample.
type sortSummary struct {
	samples [][]types.Value
}

// sortPlan carries the bucket range bounds: bucket b receives keys ≤
// bounds[b]; the final bucket receives the rest.
type sortPlan struct {
	bounds [][]types.Value
}

// sortKeyVecs resolves the comparison key columns (row labels for
// label-sorts) and the per-key descending flags.
func sortKeyVecs(df *core.DataFrame, node *algebra.Sort) ([]vector.Vector, []bool, error) {
	if node.ByLabels {
		return []vector.Vector{df.RowLabels()}, []bool{false}, nil
	}
	keys := make([]vector.Vector, len(node.Order))
	desc := make([]bool, len(node.Order))
	for k, o := range node.Order {
		j := df.ColIndex(o.Col)
		if j < 0 {
			return nil, nil, fmt.Errorf("modin: sort on %w %q", dferrors.ErrUnknownColumn, o.Col)
		}
		keys[k] = df.TypedCol(j)
		desc[k] = o.Desc
	}
	return keys, desc, nil
}

// keyTuple materializes row i's comparison key (only for the small plan
// samples; the per-row paths compare typed vectors directly).
func keyTuple(keys []vector.Vector, i int) []types.Value {
	out := make([]types.Value, len(keys))
	for k := range keys {
		out[k] = keys[k].Value(i)
	}
	return out
}

// compareTuples orders two key tuples under the per-key direction flags.
func compareTuples(a, b []types.Value, desc []bool) int {
	for k := range a {
		c := a[k].Compare(b[k])
		if desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// compareRowBound orders row i of the typed key vectors against a boxed
// bound tuple, through the mixed comparison kernel — the per-row half never
// boxes.
func compareRowBound(keys []vector.Vector, i int, bound []types.Value, desc []bool) int {
	for k := range keys {
		c := vector.CompareRowValue(keys[k], i, bound[k])
		if desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// sortDesc returns the direction flags without needing a frame.
func sortDesc(node *algebra.Sort) []bool {
	if node.ByLabels {
		return []bool{false}
	}
	desc := make([]bool, len(node.Order))
	for k, o := range node.Order {
		desc[k] = o.Desc
	}
	return desc
}

func (e *Engine) sortShuffle(node *algebra.Sort) *physical.Shuffle {
	nb := e.bands
	return &physical.Shuffle{
		Name:    "sort",
		Buckets: nb,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			samples, err := SampleSortKeys(band, node)
			if err != nil {
				return nil, err
			}
			return &sortSummary{samples: samples}, nil
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			var all [][]types.Value
			for _, s := range summaries {
				all = append(all, s.(*sortSummary).samples...)
			}
			return &sortPlan{bounds: PlanSortBounds(all, nb, node)}, nil
		},
		Partition: func(_ int, df *core.DataFrame, plan any) ([]any, error) {
			// The band is sorted, so each bucket's rows are one contiguous
			// run: binary-search the first row past each bound and slice —
			// routing moves no cells (PartitionSortedBand, shared with the
			// cluster workers).
			runs, err := PartitionSortedBand(df, node, plan.(*sortPlan).bounds, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b, r := range runs {
				pieces[b] = r
			}
			return pieces, nil
		},
		Merge: func(_ int, pieces []any, _ any) (*core.DataFrame, error) {
			frames := make([]*core.DataFrame, len(pieces))
			for i, piece := range pieces {
				frames[i] = piece.(*core.DataFrame)
			}
			return MergeSortBucket(frames, node)
		},
	}
}

// mergeSortedRuns k-way merges stably-sorted runs into one frame. Ties
// resolve toward the earlier run (and the earlier row within a run), which
// reproduces the stable single-node sort when runs arrive in input-band
// order.
func mergeSortedRuns(runs []*core.DataFrame, node *algebra.Sort) (*core.DataFrame, error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	cat, err := algebra.VStackFrames(runs...)
	if err != nil {
		return nil, err
	}
	keys, desc, err := sortKeyVecs(cat, node)
	if err != nil {
		return nil, err
	}
	// less orders global positions over the concatenated runs through the
	// typed comparison kernels; ties resolve to the earlier position, which
	// is the earlier run.
	less := func(a, b int) bool {
		for k := range keys {
			c := vector.CompareRows(keys[k], a, keys[k], b)
			if desc[k] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return a < b
	}

	offsets := make([]int, len(runs)+1)
	for r, run := range runs {
		offsets[r+1] = offsets[r] + run.NRows()
	}
	mh := &mergeHeap{less: less}
	for r := range runs {
		if offsets[r] < offsets[r+1] {
			mh.items = append(mh.items, mergeCursor{pos: offsets[r], end: offsets[r+1]})
		}
	}
	heap.Init(mh)
	perm := make([]int, 0, cat.NRows())
	for mh.Len() > 0 {
		cur := mh.items[0]
		perm = append(perm, cur.pos)
		cur.pos++
		if cur.pos < cur.end {
			mh.items[0] = cur
			heap.Fix(mh, 0)
		} else {
			heap.Pop(mh)
		}
	}
	return cat.TakeRows(perm), nil
}

// mergeCursor tracks one sorted run's next global position.
type mergeCursor struct{ pos, end int }

// mergeHeap orders run cursors by their head rows.
type mergeHeap struct {
	items []mergeCursor
	less  func(a, b int) bool
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.less(h.items[i].pos, h.items[j].pos) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)         { h.items = append(h.items, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

package modin

import (
	"container/heap"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/vector"
)

// executeSort runs SORT as a parallel merge sort: each row band is stably
// sorted in parallel, then the sorted runs are k-way merged. Because bands
// preserve the input's band order and ties break toward the earlier global
// position, the result is identical to the stable single-node sort.
func (e *Engine) executeSort(node *algebra.Sort, in *partition.Frame) (*partition.Frame, error) {
	full, err := in.EnsureSingleColBand()
	if err != nil {
		return nil, err
	}
	rb := full.RowBands()
	if rb <= 1 {
		band, err := full.ToFrame()
		if err != nil {
			return nil, err
		}
		out, err := algebra.SortFrame(band, node.Order, node.ByLabels)
		if err != nil {
			return nil, err
		}
		return partition.New(out, partition.Rows, e.bands), nil
	}

	sortedBands, err := exec.MapParallel(e.pool, rb, func(r int) (*core.DataFrame, error) {
		band, err := full.RowBand(r)
		if err != nil {
			return nil, err
		}
		return algebra.SortFrame(band, node.Order, node.ByLabels)
	})
	if err != nil {
		return nil, err
	}

	cat, err := algebra.VStackFrames(sortedBands...)
	if err != nil {
		return nil, err
	}

	// Resolve the comparison keys once over the concatenated runs.
	var keys []vector.Vector
	var desc []bool
	if node.ByLabels {
		keys = []vector.Vector{cat.RowLabels()}
		desc = []bool{false}
	} else {
		for _, o := range node.Order {
			j := cat.ColIndex(o.Col)
			keys = append(keys, cat.TypedCol(j))
			desc = append(desc, o.Desc)
		}
	}
	// less orders global positions; ties resolve to the earlier position,
	// which reproduces the stable single-node sort because bands appear
	// in input order.
	less := func(a, b int) bool {
		for k := range keys {
			c := keys[k].Value(a).Compare(keys[k].Value(b))
			if desc[k] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return a < b
	}

	// K-way merge over the sorted runs.
	offsets := make([]int, rb+1)
	for r, band := range sortedBands {
		offsets[r+1] = offsets[r] + band.NRows()
	}
	mh := &mergeHeap{less: less}
	for r := 0; r < rb; r++ {
		if offsets[r] < offsets[r+1] {
			mh.items = append(mh.items, mergeCursor{pos: offsets[r], end: offsets[r+1]})
		}
	}
	heap.Init(mh)
	perm := make([]int, 0, cat.NRows())
	for mh.Len() > 0 {
		cur := mh.items[0]
		perm = append(perm, cur.pos)
		cur.pos++
		if cur.pos < cur.end {
			mh.items[0] = cur
			heap.Fix(mh, 0)
		} else {
			heap.Pop(mh)
		}
	}
	return partition.New(cat.TakeRows(perm), partition.Rows, e.bands), nil
}

// mergeCursor tracks one sorted run's next global position.
type mergeCursor struct{ pos, end int }

// mergeHeap orders run cursors by their head rows.
type mergeHeap struct {
	items []mergeCursor
	less  func(a, b int) bool
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.less(h.items[i].pos, h.items[j].pos) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)         { h.items = append(h.items, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

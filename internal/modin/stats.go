package modin

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Statistics collection for physical planning. Sketches are collected
// lazily, at the scan boundary of plans whose strategy decisions ask for
// them: the first KeyNDV call for a (frame, key) pair runs one bulk typed
// hash pass over the key columns (internal/stats) and memoizes the summary,
// so repeated queries over a session's base frames plan from cached
// sketches. Tables reached by the planner are also attached to the
// compiled source frames (compile.go), so exchanges can merge them
// downstream.

const (
	// statsRowFloor skips sketching tiny frames: any strategy decision on
	// them is below the broadcast threshold anyway.
	statsRowFloor = 1024
	// statsCacheLimit bounds the per-engine memoization map; sessions
	// cycling through many distinct frames reset rather than grow without
	// bound.
	statsCacheLimit = 64
)

// StatsEnabled reports whether statistics-driven planning is on.
func (e *Engine) StatsEnabled() bool { return e.statsOn }

// KeyNDV implements optimizer.SourceStats over the engine's sketch cache:
// the estimated distinct count of df's row tuples over cols, collected on
// first use. It reports false — sending the estimator to its zero-stats
// constants — when stats are disabled, the frame is below the sketching
// floor, or collection fails.
func (e *Engine) KeyNDV(df *core.DataFrame, cols []string) (float64, bool) {
	c := e.keyStats(df, cols)
	if c == nil {
		return 0, false
	}
	return c.DistinctEstimate(), true
}

// keyStats returns the memoized key summary, collecting it on first use.
func (e *Engine) keyStats(df *core.DataFrame, cols []string) *stats.Col {
	if !e.statsOn || len(cols) == 0 || df.NRows() < statsRowFloor {
		return nil
	}
	name := stats.KeyName(cols)
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	t := e.statsCache[df]
	if t == nil {
		if len(e.statsCache) >= statsCacheLimit {
			e.statsCache = make(map[*core.DataFrame]*stats.Table)
		}
		t = stats.New(int64(df.NRows()))
		e.statsCache[df] = t
	}
	if c, ok := t.Cols[name]; ok {
		return c
	}
	c, err := stats.CollectKey(df, cols, stats.DefaultPrecision)
	if err != nil {
		return nil
	}
	t.Cols[name] = c
	return c
}

// cachedStats returns the statistics collected so far for df (a clone, so
// carriers on partition frames cannot corrupt the cache), or nil.
func (e *Engine) cachedStats(df *core.DataFrame) *stats.Table {
	if !e.statsOn {
		return nil
	}
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if t := e.statsCache[df]; t != nil {
		return t.Clone()
	}
	return nil
}

package modin

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/session"
)

func groupByPlan(in algebra.Node) algebra.Node {
	return &algebra.GroupBy{
		Input: in,
		Spec: expr.GroupBySpec{
			Keys: []string{"dept"},
			Aggs: []expr.AggSpec{
				{Col: "val", Agg: expr.AggSum, As: "total"},
				{Col: "score", Agg: expr.AggMean, As: "avg"},
			},
		},
	}
}

func sortTestPlan(in algebra.Node) algebra.Node {
	return &algebra.Sort{Input: in, Order: expr.SortOrder{{Col: "dept"}, {Col: "id", Desc: true}}}
}

// assertAgreesWithEager runs the plan through the engine's scheduler and the
// eager baseline and requires identical results, returning the run's
// scheduler for stats assertions.
func assertAgreesWithEager(t *testing.T, e *Engine, plan algebra.Node) *physicalStats {
	t.Helper()
	res, sched, err := e.Schedule(plan)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	got, err := pf.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("shuffled result differs from eager:\neager:\n%s\nmodin:\n%s", want, got)
	}
	return &physicalStats{
		partitionTasks: sched.Stats.ShufflePartitionTasks.Load(),
		mergeTasks:     sched.Stats.ShuffleMergeTasks.Load(),
		fallbacks:      sched.Stats.ShuffleFallbacks.Load(),
	}
}

type physicalStats struct {
	partitionTasks, mergeTasks, fallbacks int64
}

// TestGroupByShuffleEmitsPerBandFutures is the engine-level acceptance
// test: a multi-band GROUPBY schedules one partition task per input band
// and MORE THAN ONE merge task (one per output band), and still matches the
// eager baseline exactly — group order, labels and all.
func TestGroupByShuffleEmitsPerBandFutures(t *testing.T) {
	e := New(WithBands(4))
	stats := assertAgreesWithEager(t, e, groupByPlan(&algebra.Source{DF: testFrame(200)}))
	if stats.partitionTasks != 4 {
		t.Errorf("partition tasks = %d, want 4", stats.partitionTasks)
	}
	if stats.mergeTasks <= 1 {
		t.Errorf("merge tasks = %d, want > 1 (one independent future per output band)", stats.mergeTasks)
	}
	if stats.fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", stats.fallbacks)
	}
}

// TestSortShuffleEmitsPerBandFutures: same acceptance property for the
// range shuffle behind SORT.
func TestSortShuffleEmitsPerBandFutures(t *testing.T) {
	e := New(WithBands(4))
	stats := assertAgreesWithEager(t, e, sortTestPlan(&algebra.Source{DF: testFrame(200)}))
	if stats.partitionTasks != 4 {
		t.Errorf("partition tasks = %d, want 4", stats.partitionTasks)
	}
	if stats.mergeTasks <= 1 {
		t.Errorf("merge tasks = %d, want > 1 (one independent future per output band)", stats.mergeTasks)
	}
}

// TestShuffleEmptyInput: a 0-row (but schema-carrying) frame flows through
// both shuffles.
func TestShuffleEmptyInput(t *testing.T) {
	empty := testFrame(100).SliceRows(0, 0)
	e := New(WithBands(4))
	assertAgreesWithEager(t, e, groupByPlan(&algebra.Source{DF: empty}))
	assertAgreesWithEager(t, e, sortTestPlan(&algebra.Source{DF: empty}))
}

// TestShuffleEmptyInputBands: a selection that empties three of the four
// bands feeds the shuffles empty bands (the summaries, partitions and
// merges must all tolerate them).
func TestShuffleEmptyInputBands(t *testing.T) {
	firstBandOnly := &algebra.Selection{
		Input: &algebra.Source{DF: testFrame(100)},
		Pred:  func(r expr.Row) bool { return r.ByName("id").Int() < 20 },
		Desc:  "first band only",
	}
	e := New(WithBands(4))
	assertAgreesWithEager(t, e, groupByPlan(firstBandOnly))
	assertAgreesWithEager(t, e, sortTestPlan(firstBandOnly))
}

// TestShuffleSkewAllRowsOneBucket: every row shares one group key (and one
// sort key), so all rows route to a single bucket; the other merges must
// produce well-formed empty bands.
func TestShuffleSkewAllRowsOneBucket(t *testing.T) {
	records := make([][]any, 80)
	for i := range records {
		records[i] = []any{"same", i % 7}
	}
	skewed := core.MustFromRecords([]string{"k", "v"}, records)
	e := New(WithBands(4))
	stats := assertAgreesWithEager(t, e, &algebra.GroupBy{
		Input: &algebra.Source{DF: skewed},
		Spec: expr.GroupBySpec{
			Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "s"}},
		},
	})
	if stats.mergeTasks != 4 {
		t.Errorf("merge tasks = %d, want 4 even under full skew", stats.mergeTasks)
	}
	assertAgreesWithEager(t, e, &algebra.Sort{
		Input: &algebra.Source{DF: skewed},
		Order: expr.SortOrder{{Col: "k"}},
	})
}

// TestShuffleSingleBandFrame: a one-band input still goes through the
// shuffle (one partition task) and fans out to the engine's bucket count.
func TestShuffleSingleBandFrame(t *testing.T) {
	e := New(WithBands(1))
	stats := assertAgreesWithEager(t, e, groupByPlan(&algebra.Source{DF: testFrame(50)}))
	if stats.partitionTasks != 1 || stats.mergeTasks != 1 {
		t.Errorf("tasks = %d partition / %d merge, want 1/1 for a single-band engine", stats.partitionTasks, stats.mergeTasks)
	}
	assertAgreesWithEager(t, e, sortTestPlan(&algebra.Source{DF: testFrame(50)}))
}

// TestShuffleWholeFrameAggregation: the groupby(1) query — no keys — is
// the extreme skew case: one group, routed to exactly one bucket.
func TestShuffleWholeFrameAggregation(t *testing.T) {
	e := New(WithBands(4))
	assertAgreesWithEager(t, e, &algebra.GroupBy{
		Input: &algebra.Source{DF: testFrame(90)},
		Spec: expr.GroupBySpec{
			Aggs: []expr.AggSpec{{Col: "val", Agg: expr.AggCount, As: "n"}},
		},
	})
}

// TestShuffleDownstreamOfExchangeFallsBack: a GROUPBY over a TRANSPOSE
// output (shape-opaque) takes the coordinated fallback and still agrees
// with eager.
func TestShuffleDownstreamOfExchangeFallsBack(t *testing.T) {
	m := make([][]any, 24)
	for i := range m {
		m[i] = []any{i, i * 2, i * 3}
	}
	df := algebra.InduceFrame(core.MustFromRecords([]string{"a", "b", "c"}, m))
	plan := &algebra.GroupBy{
		Input: &algebra.Transpose{Input: &algebra.Transpose{Input: &algebra.Source{DF: df}}},
		Spec: expr.GroupBySpec{
			Aggs: []expr.AggSpec{{Col: "a", Agg: expr.AggSum, As: "s"}},
		},
	}
	e := New(WithBands(3))
	stats := assertAgreesWithEager(t, e, plan)
	if stats.fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1 for a shuffle over an exchange output", stats.fallbacks)
	}
}

// TestEngineStatsAccumulate: the engine-level counters sum scheduler
// activity across runs.
func TestEngineStatsAccumulate(t *testing.T) {
	e := New(WithBands(4))
	src := &algebra.Source{DF: testFrame(80)}
	for i := 0; i < 2; i++ {
		if _, err := e.Execute(groupByPlan(src)); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Runs.Load(); got != 2 {
		t.Errorf("runs = %d", got)
	}
	if got := e.Stats().ShuffleStages.Load(); got != 2 {
		t.Errorf("shuffle stages = %d", got)
	}
	if got := e.Stats().ShuffleMergeTasks.Load(); got != 8 {
		t.Errorf("merge tasks = %d, want 8 (4 buckets × 2 runs)", got)
	}
}

// TestConcurrentGroupBySortSessions drives concurrent opportunistic
// sessions — GROUPBY and SORT statements interleaved on one shared engine
// and pool — through session.AsyncEngine. Run under -race this exercises
// the shuffle's cross-task sharing (plan state, routed views, stats).
func TestConcurrentGroupBySortSessions(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(4))
	// Pre-induce the shared frames: lazy domain induction memoizes on the
	// frame, and the sessions (and the final Equal checks) would otherwise
	// race on that benign write from the test's own goroutines.
	df := algebra.InduceFrame(testFrame(300))
	wantGroup, err := eager.New().Execute(groupByPlan(&algebra.Source{DF: df, Name: "shared"}))
	if err != nil {
		t.Fatal(err)
	}
	wantSort, err := eager.New().Execute(sortTestPlan(&algebra.Source{DF: df, Name: "shared"}))
	if err != nil {
		t.Fatal(err)
	}
	wantGroup = algebra.InduceFrame(wantGroup)
	wantSort = algebra.InduceFrame(wantSort)

	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := session.New(e, session.Opportunistic, pool)
			h := s.Bind("shared", df)
			gb := h.Apply("gb", groupByPlan)
			st := h.Apply("st", sortTestPlan)
			got, err := gb.Collect()
			if err != nil {
				errs <- fmt.Errorf("session %d groupby: %w", i, err)
				return
			}
			if !got.Equal(wantGroup) {
				errs <- fmt.Errorf("session %d groupby result diverged", i)
				return
			}
			got, err = st.Collect()
			if err != nil {
				errs <- fmt.Errorf("session %d sort: %w", i, err)
				return
			}
			if !got.Equal(wantSort) {
				errs <- fmt.Errorf("session %d sort result diverged", i)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

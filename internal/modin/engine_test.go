package modin

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

// testFrame builds a deterministic frame large enough to span several
// partitions.
func testFrame(rows int) *core.DataFrame {
	records := make([][]any, rows)
	for i := range records {
		var dept any = []string{"eng", "ops", "sales"}[i%3]
		var val any = i % 17
		if i%11 == 0 {
			val = nil
		}
		records[i] = []any{i, dept, val, float64(i%7) + 0.5}
	}
	return core.MustFromRecords([]string{"id", "dept", "val", "score"}, records)
}

// bothEngines runs the plan on the baseline and MODIN engines and requires
// identical results — the cross-engine equivalence property behind every
// Figure 2 comparison.
func bothEngines(t *testing.T, plan algebra.Node) *core.DataFrame {
	t.Helper()
	base, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatalf("eager: %v", err)
	}
	par, err := New(WithBands(4)).Execute(plan)
	if err != nil {
		t.Fatalf("modin: %v", err)
	}
	if !base.Equal(par) {
		t.Fatalf("engines disagree:\neager:\n%s\nmodin:\n%s", base, par)
	}
	return base
}

func TestEnginesAgreeSelection(t *testing.T) {
	df := testFrame(100)
	out := bothEngines(t, &algebra.Selection{
		Input: &algebra.Source{DF: df},
		Pred:  expr.ColEquals("dept", types.String("eng")),
		Desc:  "dept == eng",
	})
	if out.NRows() != 34 {
		t.Errorf("rows = %d", out.NRows())
	}
}

func TestEnginesAgreeProjection(t *testing.T) {
	df := testFrame(50)
	out := bothEngines(t, &algebra.Projection{Input: &algebra.Source{DF: df}, Cols: []string{"score", "id"}})
	if out.NCols() != 2 || out.ColName(0) != "score" {
		t.Error("projection wrong")
	}
}

func TestEnginesAgreeMapElementwise(t *testing.T) {
	df := testFrame(80)
	out := bothEngines(t, &algebra.Map{Input: &algebra.Source{DF: df}, Fn: algebra.IsNullFn()})
	if !out.Value(0, 2).Bool() { // id=0 row has null val
		t.Error("isnull map wrong")
	}
}

func TestEnginesAgreeMapRowFn(t *testing.T) {
	df := testFrame(60)
	fn := expr.MapFn{
		Name:    "id-plus-score",
		OutCols: []types.Value{types.String("combo")},
		Fn: func(r expr.Row) []types.Value {
			return []types.Value{types.FloatValue(float64(r.ByName("id").Int()) + r.ByName("score").Float())}
		},
	}
	out := bothEngines(t, &algebra.Map{Input: &algebra.Source{DF: df}, Fn: fn})
	if out.NCols() != 1 || out.Value(3, 0).Float() != 3+3.5 {
		t.Errorf("row map wrong: %v", out.Value(3, 0))
	}
}

func TestEnginesAgreeGroupBy(t *testing.T) {
	df := testFrame(200)
	out := bothEngines(t, &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Keys: []string{"dept"},
			Aggs: []expr.AggSpec{
				{Col: "val", Agg: expr.AggCount, As: "n"},
				{Col: "val", Agg: expr.AggSum, As: "total"},
				{Col: "score", Agg: expr.AggMean, As: "avg"},
				{Col: "val", Agg: expr.AggMin, As: "lo"},
				{Col: "val", Agg: expr.AggMax, As: "hi"},
			},
		},
	})
	if out.NRows() != 3 {
		t.Errorf("groups = %d", out.NRows())
	}
}

func TestEnginesAgreeGroupByOneGroup(t *testing.T) {
	// The groupby(1) query of Figure 2: whole-frame aggregation.
	df := testFrame(150)
	out := bothEngines(t, &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Aggs: []expr.AggSpec{{Col: "val", Agg: expr.AggCount, As: "nonnull"}},
		},
	})
	if out.NRows() != 1 {
		t.Fatalf("rows = %d", out.NRows())
	}
	if out.Value(0, 0).Int() != 150-14 { // 14 nulls at i%11==0
		t.Errorf("count = %v", out.Value(0, 0))
	}
}

func TestEnginesAgreeTranspose(t *testing.T) {
	df := testFrame(40)
	bothEngines(t, &algebra.Transpose{Input: &algebra.Source{DF: df}})
}

func TestEnginesAgreeDoubleTranspose(t *testing.T) {
	df := testFrame(30)
	out := bothEngines(t, &algebra.Transpose{Input: &algebra.Transpose{Input: &algebra.Source{DF: df}}})
	if !out.Equal(df) {
		t.Error("double transpose should recover the frame")
	}
}

func TestEnginesAgreeWindow(t *testing.T) {
	df := testFrame(90)
	for _, spec := range []expr.WindowSpec{
		{Kind: expr.WindowShift, Offset: 3, Cols: []string{"id"}},
		{Kind: expr.WindowDiff, Offset: 1, Cols: []string{"id"}},
		{Kind: expr.WindowRolling, Size: 5, Agg: expr.AggMean, Cols: []string{"score"}},
		{Kind: expr.WindowExpanding, Agg: expr.AggMax, Cols: []string{"id"}},
		{Kind: expr.WindowShift, Offset: 2, Reverse: true, Cols: []string{"id"}},
	} {
		t.Run(fmt.Sprintf("kind=%d", spec.Kind), func(t *testing.T) {
			bothEngines(t, &algebra.Window{Input: &algebra.Source{DF: df}, Spec: spec})
		})
	}
}

func TestEnginesAgreeJoin(t *testing.T) {
	left := testFrame(60)
	right := core.MustFromRecords([]string{"dept", "head"}, [][]any{
		{"eng", "grace"}, {"ops", "ada"},
	})
	for _, kind := range []expr.JoinKind{expr.JoinInner, expr.JoinLeft, expr.JoinOuter} {
		t.Run(kind.String(), func(t *testing.T) {
			bothEngines(t, &algebra.Join{
				Left:  &algebra.Source{DF: left},
				Right: &algebra.Source{DF: right},
				Kind:  kind,
				On:    []string{"dept"},
			})
		})
	}
}

func TestEnginesAgreeSortUnionDiffDropdup(t *testing.T) {
	df := testFrame(70)
	bothEngines(t, &algebra.Sort{Input: &algebra.Source{DF: df}, Order: expr.SortOrder{{Col: "dept"}, {Col: "id", Desc: true}}})
	bothEngines(t, &algebra.Union{Left: &algebra.Source{DF: df.SliceRows(0, 30)}, Right: &algebra.Source{DF: df.SliceRows(30, 70)}})
	bothEngines(t, &algebra.Difference{Left: &algebra.Source{DF: df}, Right: &algebra.Source{DF: df.SliceRows(0, 35)}})
	bothEngines(t, &algebra.DropDuplicates{Input: &algebra.Source{DF: df}, Subset: []string{"dept", "val"}})
}

func TestEnginesAgreeLabelsOps(t *testing.T) {
	df := testFrame(45)
	bothEngines(t, &algebra.ToLabels{Input: &algebra.Source{DF: df}, Col: "id"})
	bothEngines(t, &algebra.FromLabels{Input: &algebra.Source{DF: df}, Label: "rowid"})
	bothEngines(t, &algebra.Rename{Input: &algebra.Source{DF: df}, Mapping: map[string]string{"dept": "team"}})
}

func TestEnginesAgreeLimit(t *testing.T) {
	df := testFrame(100)
	head := bothEngines(t, &algebra.Limit{Input: &algebra.Source{DF: df}, N: 7})
	if head.NRows() != 7 || head.Value(0, 0).Int() != 0 {
		t.Error("head wrong")
	}
	tail := bothEngines(t, &algebra.Limit{Input: &algebra.Source{DF: df}, N: -7})
	if tail.NRows() != 7 || tail.Value(6, 0).Int() != 99 {
		t.Error("tail wrong")
	}
}

func TestEnginesAgreeComposedPipeline(t *testing.T) {
	// A multi-operator pipeline mirroring a realistic session.
	df := testFrame(120)
	plan := &algebra.GroupBy{
		Input: &algebra.Selection{
			Input: &algebra.Map{
				Input: &algebra.Source{DF: df},
				Fn:    algebra.FillNAFn(types.IntValue(-1)),
			},
			Pred: expr.ColNotNull("dept"),
			Desc: "dept not null",
		},
		Spec: expr.GroupBySpec{
			Keys: []string{"dept"},
			Aggs: []expr.AggSpec{{Col: "val", Agg: expr.AggSum, As: "s"}},
		},
	}
	bothEngines(t, plan)
}

func TestModinPartitionedLimitTouchesOnlyBoundary(t *testing.T) {
	df := testFrame(1000)
	e := New(WithBands(8))
	pf, err := e.ExecutePartitioned(&algebra.Limit{Input: &algebra.Source{DF: df}, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pf.NRows() != 5 {
		t.Errorf("limit rows = %d", pf.NRows())
	}
	if pf.RowBands() != 1 {
		t.Errorf("prefix should touch one band, got %d", pf.RowBands())
	}
}

func TestModinTransposeWideResult(t *testing.T) {
	// A tall frame becomes a wide one: 500 columns after transpose, the
	// "billions of columns" path at test scale.
	df := testFrame(500)
	e := New(WithBands(4))
	out, err := e.Execute(&algebra.Transpose{Input: &algebra.Source{DF: df}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NCols() != 500 || out.NRows() != 4 {
		t.Errorf("shape = %dx%d", out.NRows(), out.NCols())
	}
}

func TestModinUnknownNode(t *testing.T) {
	e := New()
	if _, err := e.Execute(nil); err == nil {
		t.Error("nil plan should error")
	}
}

func TestEagerBudgetFailsTranspose(t *testing.T) {
	// The pandas transpose failure mode of Figure 2: the baseline engine
	// refuses transposes above its budget while MODIN completes them.
	df := testFrame(100)
	limited := &eager.Engine{TransposeCellBudget: 100}
	_, err := limited.Execute(&algebra.Transpose{Input: &algebra.Source{DF: df}})
	if err == nil {
		t.Fatal("budgeted transpose should fail")
	}
	if _, err := New().Execute(&algebra.Transpose{Input: &algebra.Source{DF: df}}); err != nil {
		t.Fatalf("modin transpose should succeed: %v", err)
	}
}

func TestModinWithExplicitPool(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(2))
	if e.Pool() != pool {
		t.Error("pool accessor wrong")
	}
	df := testFrame(20)
	out, err := e.Execute(&algebra.Source{DF: df})
	if err != nil || !out.Equal(df) {
		t.Error("source execution should round-trip")
	}
}

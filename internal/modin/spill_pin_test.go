package modin

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/vector"
)

// mustFrame builds a single-column int frame over data.
func mustFrame(t *testing.T, data []int64) *core.DataFrame {
	t.Helper()
	df, err := core.New([]string{"v"}, []vector.Vector{vector.NewInt(data, nil)})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return df
}

// TestResidentPieceDetachesFromBand is the white-box half of the pinning
// regression: a resident piece admitted from a Slice window must not share
// storage with the band it was sliced from. Compact would leave the slice
// aliasing the band's arrays; Detach copies.
func TestResidentPieceDetachesFromBand(t *testing.T) {
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i)
	}
	band := mustFrame(t, data)
	piece := band.SliceRows(16, 32)

	e := New(WithShuffleSpillBudget(1 << 20))
	admitted, err := e.admitFrame(piece)
	if err != nil {
		t.Fatalf("admitFrame: %v", err)
	}
	rp, ok := admitted.(residentPiece)
	if !ok {
		t.Fatalf("admitted piece is %T, want residentPiece", admitted)
	}
	got := rp.df.TypedCol(0).(*vector.Int).RawData()
	if &got[0] == &data[16] {
		t.Fatal("resident piece aliases the source band's backing array")
	}
	if rp.df.NRows() != 16 {
		t.Fatalf("piece rows = %d, want 16", rp.df.NRows())
	}
	for i, v := range got {
		if v != int64(16+i) {
			t.Fatalf("piece[%d] = %d, want %d", i, v, 16+i)
		}
	}
}

// TestResidentPieceDoesNotPinBand is the HeapAlloc half: admit a tiny slice
// of a large band as a resident piece, drop the band, and require the heap
// to shrink back near its pre-band baseline. If admitFrame kept the slice
// aliased (the pre-Detach behavior), the whole 32 MB band would stay live
// behind the 16-row piece and the final HeapAlloc would sit a band above
// the baseline. Thresholds are generous (a quarter band) to stay far from
// GC noise.
func TestResidentPieceDoesNotPinBand(t *testing.T) {
	const bandRows = 1 << 22 // 32 MB of int64

	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	baseline := m.HeapAlloc

	e := New(WithShuffleSpillBudget(1 << 20))
	admitted, err := e.admitFrame(mustFrame(t, make([]int64, bandRows)).SliceRows(0, 16))
	if err != nil {
		t.Fatalf("admitFrame: %v", err)
	}
	if _, ok := admitted.(residentPiece); !ok {
		t.Fatalf("admitted piece is %T, want residentPiece", admitted)
	}
	// The band frame is now unreachable; only the admitted piece survives.
	runtime.GC()
	runtime.ReadMemStats(&m)
	const slack = bandRows * 8 / 4
	if m.HeapAlloc > baseline+slack {
		t.Fatalf("HeapAlloc %d exceeds baseline %d by more than %d bytes: band pinned by resident piece",
			m.HeapAlloc, baseline, uint64(slack))
	}
	runtime.KeepAlive(admitted)
}

package modin

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/types"
)

// scanOver renders a frame to CSV and wraps it in a re-openable Scan node,
// the in-process stand-in for a file bigger than memory.
func scanOver(t *testing.T, df *core.DataFrame, bandRows int) *algebra.Scan {
	t.Helper()
	var buf bytes.Buffer
	if err := df.WriteCSV(&buf); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	data := buf.Bytes()
	return &algebra.Scan{
		Name:    "test",
		Columns: df.ColNames(),
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		Options:  core.DefaultCSVOptions(),
		SizeHint: int64(len(data)),
		BandRows: bandRows,
	}
}

// assertEngineAgreesWithEager is bothEngines with a caller-supplied engine,
// so tests can turn on spill budgets and read stats afterwards.
func assertEngineAgreesWithEager(t *testing.T, e *Engine, plan algebra.Node) *core.DataFrame {
	t.Helper()
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatalf("eager: %v", err)
	}
	got, err := e.Execute(plan)
	if err != nil {
		t.Fatalf("modin: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("engines disagree:\neager:\n%s\nmodin:\n%s", want, got)
	}
	return got
}

// TestSpillGroupByMatchesInMemory forces every routed groupby piece through
// the disk pool (budget of one cell) and requires the merged result to be
// byte-equal to the in-memory path.
func TestSpillGroupByMatchesInMemory(t *testing.T) {
	e := New(WithBands(4), WithShuffleSpillBudget(1))
	assertEngineAgreesWithEager(t, e, groupByPlan(&algebra.Source{DF: testFrame(200)}))
	if got := e.Stats().SpilledPieces.Load(); got == 0 {
		t.Error("expected spilled pieces under a one-cell budget")
	}
}

// TestSpillSortMatchesInMemory spills sorted runs and re-resolves them at
// the k-way merge.
func TestSpillSortMatchesInMemory(t *testing.T) {
	e := New(WithBands(4), WithShuffleSpillBudget(1))
	assertEngineAgreesWithEager(t, e, sortTestPlan(&algebra.Source{DF: testFrame(150)}))
	if got := e.Stats().SpilledPieces.Load(); got == 0 {
		t.Error("expected spilled sort runs under a one-cell budget")
	}
}

// TestSpillShuffledJoinMatchesInMemory spills composite joinPieces (frame +
// ordinals) on both build and probe sides of a keyed shuffled join.
func TestSpillShuffledJoinMatchesInMemory(t *testing.T) {
	rows := 120
	lrec := make([][]any, rows)
	for i := range lrec {
		lrec[i] = []any{i % 7, i}
	}
	rrec := make([][]any, rows)
	for i := range rrec {
		rrec[i] = []any{i % 5, i * 2}
	}
	plan := &algebra.Join{
		Left:  &algebra.Source{DF: core.MustFromRecords([]string{"k", "x"}, lrec)},
		Right: &algebra.Source{DF: core.MustFromRecords([]string{"k", "y"}, rrec)},
		Kind:  expr.JoinInner,
		On:    []string{"k"},
	}
	e := New(WithBands(3), WithBroadcastLimit(50), WithShuffleSpillBudget(1))
	if !e.chooseJoinStrategy(plan).shuffled {
		t.Fatal("expected the shuffled join strategy")
	}
	assertEngineAgreesWithEager(t, e, plan)
	if got := e.Stats().SpilledPieces.Load(); got == 0 {
		t.Error("expected spilled join pieces under a one-cell budget")
	}
}

// TestSpillBudgetKeepsResidentPieces checks the other side of the budget:
// with a generous ceiling nothing is written to disk.
func TestSpillBudgetKeepsResidentPieces(t *testing.T) {
	e := New(WithBands(4), WithShuffleSpillBudget(1<<20))
	assertEngineAgreesWithEager(t, e, groupByPlan(&algebra.Source{DF: testFrame(200)}))
	if got := e.Stats().SpilledPieces.Load(); got != 0 {
		t.Errorf("spilled %d pieces under a generous budget, want 0", got)
	}
}

// TestSpillConcurrentMerges runs several spilled shuffles through one engine
// concurrently — the -race CI job turns this into the spill pool's
// thread-safety check (spill-then-re-resolve during concurrent merges).
func TestSpillConcurrentMerges(t *testing.T) {
	e := New(WithBands(4), WithShuffleSpillBudget(1))
	want, err := eager.New().Execute(groupByPlan(&algebra.Source{DF: testFrame(200)}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := e.Execute(groupByPlan(&algebra.Source{DF: testFrame(200)}))
			if err != nil {
				errs[i] = err
				return
			}
			if !want.Equal(got) {
				t.Errorf("run %d disagrees with eager", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
	if err := e.ReleaseSpill(); err != nil {
		t.Fatalf("release spill: %v", err)
	}
}

// TestStreamedScanFilterGroupBy is the engine-level tentpole check: a
// filter→groupby over a morsel-driven scan matches the whole-file read,
// streams in more than one band, and — with transient bands plus a tiny
// spill budget — releases consumed bands and spills routed pieces.
func TestStreamedScanFilterGroupBy(t *testing.T) {
	src := testFrame(400)
	plan := groupByPlan(&algebra.Selection{
		Input: scanOver(t, src, 32),
		Pred:  expr.ColEquals("dept", types.String("eng")),
		Desc:  "dept == eng",
	})
	e := New(WithBands(4), WithShuffleSpillBudget(1))
	assertEngineAgreesWithEager(t, e, plan)
	st := e.Stats()
	if st.StreamStages.Load() == 0 {
		t.Error("expected a stream stage")
	}
	if got := st.StreamBands.Load(); got < 2 {
		t.Errorf("stream bands = %d, want >= 2", got)
	}
	if st.StreamReleasedBands.Load() == 0 {
		t.Error("expected consumed scan bands to be released")
	}
	if st.SpilledPieces.Load() == 0 {
		t.Error("expected spilled pieces under a one-cell budget")
	}
}

// TestStreamedScanSort runs the order-preserving shuffle over a streamed
// scan: sort bounds are sampled from band summaries while late bands are
// still parsing.
func TestStreamedScanSort(t *testing.T) {
	plan := sortTestPlan(scanOver(t, testFrame(300), 64))
	assertEngineAgreesWithEager(t, New(WithBands(4)), plan)
}

// TestStreamedScanReusable executes the same Scan plan twice on one engine:
// Open must hand back a fresh reader each run.
func TestStreamedScanReusable(t *testing.T) {
	plan := groupByPlan(scanOver(t, testFrame(120), 32))
	e := New(WithBands(4))
	first, err := e.Execute(plan)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := e.Execute(plan)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !first.Equal(second) {
		t.Fatal("re-executed streamed scan differs")
	}
}

// TestStreamedScanEmptyAndHeaderOnly covers degenerate sources end to end.
func TestStreamedScanEmptyAndHeaderOnly(t *testing.T) {
	open := func(text string) func() (io.ReadCloser, error) {
		return func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader([]byte(text))), nil
		}
	}
	headerOnly := &algebra.Scan{
		Name:    "header-only",
		Columns: []string{"a", "b"},
		Open:    open("a,b\n"),
		Options: core.DefaultCSVOptions(),
	}
	out, err := New(WithBands(4)).Execute(headerOnly)
	if err != nil {
		t.Fatalf("header-only: %v", err)
	}
	if out.NRows() != 0 || out.NCols() != 2 {
		t.Errorf("header-only = %dx%d, want 0x2", out.NRows(), out.NCols())
	}

	empty := &algebra.Scan{
		Name:    "empty",
		Open:    open(""),
		Options: core.DefaultCSVOptions(),
	}
	out, err = New(WithBands(4)).Execute(empty)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if out.NRows() != 0 || out.NCols() != 0 {
		t.Errorf("empty = %dx%d, want 0x0", out.NRows(), out.NCols())
	}
}

// TestStreamedScanRaggedRowFails propagates a mid-stream parse error out of
// the band pipeline as a query error instead of a hang or partial result.
func TestStreamedScanRaggedRowFails(t *testing.T) {
	bad := &algebra.Scan{
		Name:    "ragged",
		Columns: []string{"a", "b"},
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader([]byte("a,b\n1,2\n3\n4,5\n"))), nil
		},
		Options:  core.DefaultCSVOptions(),
		BandRows: 1,
	}
	if _, err := New(WithBands(4)).Execute(bad); err == nil {
		t.Fatal("expected a parse error from the streamed scan")
	}
}

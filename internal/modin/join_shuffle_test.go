package modin

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/types"
)

// zipfKeys draws n keys from a Zipf distribution over [0, keys): heavy head
// keys plus a long tail, the shape that breaks even-cut shuffle planning.
func zipfKeys(n, keys int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.3, 1, uint64(keys-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// skewJoinFrames builds a probe side with Zipf-skewed keys (some null) and
// a build side with duplicate keys, both large enough to cross the test
// broadcast limit.
func skewJoinFrames(t *testing.T, probeRows, buildRows, keys int) (left, right *core.DataFrame) {
	t.Helper()
	lk := zipfKeys(probeRows, keys, 1)
	lrec := make([][]any, probeRows)
	for i := range lrec {
		var k any = int(lk[i])
		if i%37 == 0 {
			k = nil
		}
		lrec[i] = []any{i, k, float64(i%19) + 0.25}
	}
	rk := zipfKeys(buildRows, keys, 2)
	rrec := make([][]any, buildRows)
	for i := range rrec {
		var k any = int(rk[i])
		if i%41 == 0 {
			k = nil
		}
		rrec[i] = []any{k, i * 3}
	}
	return core.MustFromRecords([]string{"id", "k", "lv"}, lrec),
		core.MustFromRecords([]string{"k", "rv"}, rrec)
}

// TestShuffledJoinMatchesBroadcastAndEager drives Zipf-skewed inner and
// left joins through the key-shuffled strategy and requires its output to
// equal both the eager engine and the stats-disabled broadcast plan,
// row-for-row and label-for-label.
func TestShuffledJoinMatchesBroadcastAndEager(t *testing.T) {
	left, right := skewJoinFrames(t, 700, 600, 40)
	for _, kind := range []expr.JoinKind{expr.JoinInner, expr.JoinLeft} {
		plan := &algebra.Join{
			Left:  &algebra.Source{DF: left},
			Right: &algebra.Source{DF: right},
			Kind:  kind,
			On:    []string{"k"},
		}
		e := New(WithBands(4), WithBroadcastLimit(100))
		if !e.chooseJoinStrategy(plan).shuffled {
			t.Fatalf("kind %v: expected the shuffled strategy to fire", kind)
		}
		shuffled, err := e.Execute(plan)
		if err != nil {
			t.Fatalf("kind %v shuffled: %v", kind, err)
		}
		broadcast, err := New(WithBands(4), WithoutStats()).Execute(plan)
		if err != nil {
			t.Fatalf("kind %v broadcast: %v", kind, err)
		}
		base, err := eager.New().Execute(plan)
		if err != nil {
			t.Fatalf("kind %v eager: %v", kind, err)
		}
		if !base.Equal(shuffled) {
			t.Fatalf("kind %v: shuffled join disagrees with eager:\neager:\n%s\nshuffled:\n%s", kind, base, shuffled)
		}
		if !base.Equal(broadcast) {
			t.Fatalf("kind %v: broadcast join disagrees with eager", kind)
		}
	}
}

// TestShuffledJoinCompositeKey covers multi-column join keys through the
// shuffled path.
func TestShuffledJoinCompositeKey(t *testing.T) {
	rows := 500
	lrec := make([][]any, rows)
	for i := range lrec {
		lrec[i] = []any{i % 7, []string{"a", "b", "c"}[i%3], i}
	}
	rrec := make([][]any, rows)
	for i := range rrec {
		rrec[i] = []any{i % 5, []string{"a", "b", "c", "d"}[i%4], i * 2}
	}
	plan := &algebra.Join{
		Left:  &algebra.Source{DF: core.MustFromRecords([]string{"a", "b", "x"}, lrec)},
		Right: &algebra.Source{DF: core.MustFromRecords([]string{"a", "b", "y"}, rrec)},
		Kind:  expr.JoinInner,
		On:    []string{"a", "b"},
	}
	e := New(WithBands(3), WithBroadcastLimit(50))
	if !e.chooseJoinStrategy(plan).shuffled {
		t.Fatal("expected the shuffled strategy to fire")
	}
	got, err := e.Execute(plan)
	if err != nil {
		t.Fatalf("shuffled: %v", err)
	}
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatalf("eager: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("composite-key shuffled join disagrees with eager:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestGroupBySkewZipf runs a Zipf-skewed groupby through the skew-aware
// shuffle planning (weighted cuts + heavy-bucket parallel merges) and
// requires exact agreement with the eager engine, with statistics on and
// off.
func TestGroupBySkewZipf(t *testing.T) {
	rows := 4000
	ks := zipfKeys(rows, 500, 3)
	rec := make([][]any, rows)
	for i := range rec {
		var v any = i % 23
		if i%13 == 0 {
			v = nil
		}
		rec[i] = []any{int(ks[i]), v, float64(i%9) + 0.5}
	}
	df := core.MustFromRecords([]string{"k", "v", "s"}, rec)
	plan := &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Keys: []string{"k"},
			Aggs: []expr.AggSpec{
				{Col: "v", Agg: expr.AggCount, As: "n"},
				{Col: "v", Agg: expr.AggSum, As: "total"},
				{Col: "s", Agg: expr.AggMean, As: "avg"},
				{Col: "v", Agg: expr.AggMin, As: "lo"},
				{Col: "v", Agg: expr.AggMax, As: "hi"},
			},
		},
	}
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatalf("eager: %v", err)
	}
	for name, opts := range map[string][]Option{
		"stats-on":  {WithBands(4)},
		"stats-off": {WithBands(4), WithoutStats()},
	} {
		got, err := New(opts...).Execute(plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !want.Equal(got) {
			t.Fatalf("%s: skewed groupby disagrees with eager", name)
		}
	}
}

// TestPlanGroupRoutingSkew pins the hash-routing plan's shape: every group
// lands in exactly one bucket (hash%buckets), each bucket's rank list is
// ascending, and a hot key flags its bucket heavy so the merge chunks it
// across parallel partials.
func TestPlanGroupRoutingSkew(t *testing.T) {
	// Key 0 owns 90 of 100 rows; with 4 buckets its bucket must flag heavy.
	stats := []*GroupBandStat{{
		Hashes:    []uint64{40, 41, 42, 43, 44},
		Exemplars: [][]types.Value{{types.IntValue(0)}, {types.IntValue(1)}, {types.IntValue(2)}, {types.IntValue(3)}, {types.IntValue(4)}},
		Counts:    []int64{90, 2, 3, 2, 3},
	}}
	r := PlanGroupRouting(stats, 4, true)
	seen := 0
	for b, ranks := range r.Ranks {
		for i, g := range ranks {
			if i > 0 && ranks[i-1] >= g {
				t.Fatalf("bucket %d ranks not ascending: %v", b, ranks)
			}
		}
		seen += len(ranks)
	}
	if seen != 5 {
		t.Fatalf("routed %d groups, want 5", seen)
	}
	hot := int(40 % uint64(4))
	if !r.Heavy[hot] {
		t.Fatalf("hot key's bucket %d not flagged heavy: %v", hot, r.Heavy)
	}
	// Uniform counts flag nothing.
	uniform := []*GroupBandStat{{
		Hashes:    stats[0].Hashes,
		Exemplars: stats[0].Exemplars,
		Counts:    []int64{5, 5, 5, 5, 5},
	}}
	for _, heavy := range PlanGroupRouting(uniform, 4, true).Heavy {
		if heavy {
			t.Fatalf("uniform counts flagged a heavy bucket")
		}
	}
	// Stats off: no heavy tracking at all.
	if PlanGroupRouting(stats, 4, false).Heavy != nil {
		t.Fatal("skew-unaware plan must not allocate Heavy")
	}
}

// TestChooseJoinStrategyFallbacks pins the zero-stats and small-build
// fallbacks: every gate failure degrades to broadcast.
func TestChooseJoinStrategyFallbacks(t *testing.T) {
	left, right := skewJoinFrames(t, 300, 300, 20)
	plan := &algebra.Join{
		Left:  &algebra.Source{DF: left},
		Right: &algebra.Source{DF: right},
		Kind:  expr.JoinInner,
		On:    []string{"k"},
	}
	if New(WithBands(4), WithoutStats(), WithBroadcastLimit(10)).chooseJoinStrategy(plan).shuffled {
		t.Error("stats off must broadcast")
	}
	if New(WithBands(1), WithBroadcastLimit(10)).chooseJoinStrategy(plan).shuffled {
		t.Error("single band must broadcast")
	}
	if New(WithBands(4)).chooseJoinStrategy(plan).shuffled {
		t.Error("build under the default limit must broadcast")
	}
	lab := &algebra.Join{Left: plan.Left, Right: plan.Right, Kind: expr.JoinInner, OnLabels: true}
	if New(WithBands(4), WithBroadcastLimit(10)).chooseJoinStrategy(lab).shuffled {
		t.Error("label join must broadcast")
	}
	if c := New(WithBands(4), WithBroadcastLimit(10)).chooseJoinStrategy(plan); !c.shuffled || c.buildRows != 300 {
		t.Errorf("expected shuffled with buildRows=300, got %+v", c)
	}
}

// TestExplainPhysicalStrategy checks the strategy rendering: shuffled joins
// report build-size and NDV estimates, dict-keyed groupbys report the code
// path, and disabling stats reports the fallback.
func TestExplainPhysicalStrategy(t *testing.T) {
	rows := 2000
	rec := make([][]any, rows)
	for i := range rec {
		rec[i] = []any{int(int64(i % 700)), i}
	}
	df := core.MustFromRecords([]string{"k", "v"}, rec)
	join := &algebra.Join{
		Left:  &algebra.Source{DF: df},
		Right: &algebra.Source{DF: df},
		Kind:  expr.JoinInner,
		On:    []string{"k"},
	}
	e := New(WithBands(4), WithBroadcastLimit(1000))
	out := e.DescribePhysical(join)
	if !strings.Contains(out, "JOIN strategy=shuffle (build≈2k rows, ndv≈") {
		t.Errorf("missing shuffle strategy line:\n%s", out)
	}
	off := New(WithBands(4), WithoutStats()).DescribePhysical(join)
	if !strings.Contains(off, "JOIN strategy=broadcast") || !strings.Contains(off, "statistics: off") {
		t.Errorf("missing broadcast fallback lines:\n%s", off)
	}
	gb := &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum, As: "total"}},
		},
	}
	if out := e.DescribePhysical(gb); !strings.Contains(out, "GROUPBY strategy=hash-shuffle (groups≈") {
		t.Errorf("missing groupby strategy line:\n%s", out)
	}
}

// TestKeyNDVSketchCache exercises the engine's SourceStats implementation:
// sketches collect once per (frame, key), respect the row floor, and stay
// within a few percent of the true distinct count.
func TestKeyNDVSketchCache(t *testing.T) {
	rows, keys := 5000, 1200
	rec := make([][]any, rows)
	for i := range rec {
		rec[i] = []any{i % keys, i}
	}
	df := core.MustFromRecords([]string{"k", "v"}, rec)
	e := New(WithBands(2))
	ndv, ok := e.KeyNDV(df, []string{"k"})
	if !ok {
		t.Fatal("expected a sketch for a frame above the row floor")
	}
	if ndv < 0.9*float64(keys) || ndv > 1.1*float64(keys) {
		t.Errorf("ndv = %v, want ≈%d", ndv, keys)
	}
	if ndv2, ok2 := e.KeyNDV(df, []string{"k"}); !ok2 || ndv2 != ndv {
		t.Error("second lookup must serve the memoized sketch")
	}
	small := core.MustFromRecords([]string{"k"}, [][]any{{1}, {2}})
	if _, ok := e.KeyNDV(small, []string{"k"}); ok {
		t.Error("tiny frames must skip sketching")
	}
	if _, ok := New(WithoutStats()).KeyNDV(df, []string{"k"}); ok {
		t.Error("stats-off engines must report no sketches")
	}
}

package modin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/physical"
	"repro/internal/storage"
)

// Spill-aware shuffle merges: when an engine runs with a shuffle spill
// budget (WithShuffleSpillBudget), routed-but-not-yet-merged shuffle pieces
// are accounted against a resident-cell ceiling, and pieces past the
// ceiling are written through internal/storage and re-read lazily when
// their merge runs. Combined with Shuffle.ReleaseBands (the input band's
// block future is dropped once the band is routed), a GROUPBY/SORT/JOIN
// over a streamed input degrades to disk instead of accumulating the whole
// input in memory between the partition and merge phases.

// spillable lets composite shuffle pieces (joinPiece) expose the dataframe
// that should be accounted and spilled while their sidecar state (ordinal
// slices) stays resident.
type spillable interface {
	spillFrame() *core.DataFrame
	withSpillFrame(df *core.DataFrame) any
}

func (p joinPiece) spillFrame() *core.DataFrame { return p.df }
func (p joinPiece) withSpillFrame(df *core.DataFrame) any {
	p.df = df
	return p
}

// residentPiece is a routed piece admitted under the budget; cells is its
// accounted size, returned to the budget when the merge consumes it.
type residentPiece struct {
	df    *core.DataFrame
	cells int
}

// spilledPiece is a routed piece written through the spill store; the merge
// re-reads (and deletes) it by key.
type spilledPiece struct {
	key   string
	cells int
}

// wrappedPiece carries a spillable composite piece whose frame was admitted
// separately.
type wrappedPiece struct {
	orig  spillable
	inner any
}

// spillShuffle interposes on a partitioned shuffle's piece flow when the
// engine has a spill budget: Partition output pieces are compacted (so they
// stop pinning the input band's storage), admitted against the budget or
// spilled to disk, and Merge input pieces are resolved back — from memory
// or from the store — before the wrapped merge runs. ReleaseBands is set so
// a transient (streamed) input band is dropped the moment it is routed.
//
// Anchored shuffles (Partition == nil) pass through: their merges consume
// input bands directly, so there is no routed-piece backlog to bound.
func (e *Engine) spillShuffle(sh *physical.Shuffle) *physical.Shuffle {
	if e.spillBudget <= 0 || sh.Partition == nil {
		return sh
	}
	w := *sh
	w.ReleaseBands = true
	part, merge := sh.Partition, sh.Merge
	w.Partition = func(band int, df *core.DataFrame, plan any) ([]any, error) {
		pieces, err := part(band, df, plan)
		if err != nil {
			return nil, err
		}
		for i, p := range pieces {
			ap, err := e.admitPiece(p)
			if err != nil {
				return nil, err
			}
			pieces[i] = ap
		}
		return pieces, nil
	}
	// Band-routed (keyed) merges fold their pieces sequentially in band
	// order, so they take deferred handles and resolve each piece at
	// consumption — at most one spilled piece per merge worker is resident,
	// which is what keeps a pass-through groupby's merge phase bounded.
	// Order-sensitive merges (sort's k-way run merge) need every run at
	// once, so they keep the eager resolve.
	streamMerge := sh.BandRouting
	w.Merge = func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
		resolved := make([]any, len(pieces))
		for i, p := range pieces {
			if streamMerge {
				resolved[i] = lazyPiece{e: e, inner: p}
				continue
			}
			rp, err := e.resolvePiece(p)
			if err != nil {
				return nil, err
			}
			resolved[i] = rp
		}
		return merge(bucket, resolved, plan)
	}
	return &w
}

// lazyPiece defers one admitted piece's resolution to the merge's
// consumption point (modin.PieceSource).
type lazyPiece struct {
	e     *Engine
	inner any
}

func (p lazyPiece) Frame() (*core.DataFrame, error) {
	v, err := p.e.resolvePiece(p.inner)
	if err != nil {
		return nil, err
	}
	df, ok := v.(*core.DataFrame)
	if !ok {
		return nil, fmt.Errorf("modin: deferred piece resolved to %T, want frame", v)
	}
	return df, nil
}

// admitPiece routes one partition-phase piece through the budget. Frames
// (and spillable composites' frames) are compacted first: view pieces over
// a released band must own their cells. Unknown piece types pass through
// untouched.
func (e *Engine) admitPiece(p any) (any, error) {
	switch v := p.(type) {
	case *core.DataFrame:
		return e.admitFrame(v)
	case spillable:
		inner, err := e.admitFrame(v.spillFrame())
		if err != nil {
			return nil, err
		}
		return wrappedPiece{orig: v, inner: inner}, nil
	default:
		return p, nil
	}
}

// resolvePiece is admitPiece's inverse, run by the merge phase.
func (e *Engine) resolvePiece(p any) (any, error) {
	switch v := p.(type) {
	case residentPiece:
		e.spillMu.Lock()
		e.spillResident -= v.cells
		e.spillMu.Unlock()
		return v.df, nil
	case spilledPiece:
		e.spillMu.Lock()
		store := e.spillStore
		e.spillMu.Unlock()
		if store == nil {
			return nil, fmt.Errorf("modin: spilled piece %s has no store", v.key)
		}
		df, err := store.Get(v.key)
		if err != nil {
			return nil, err
		}
		store.Delete(v.key)
		return df, nil
	case wrappedPiece:
		df, err := e.resolvePiece(v.inner)
		if err != nil {
			return nil, err
		}
		return v.orig.withSpillFrame(df.(*core.DataFrame)), nil
	default:
		return p, nil
	}
}

// admitFrame detaches df from its source band's storage and either admits
// it under the resident budget or spills it to the engine's store. Detach
// (not Compact) matters for resident pieces: a sort shuffle's routed runs
// are Slice windows into the sorted band, and Compact leaves slices
// aliasing the band's arrays — the whole band would stay pinned until the
// last bucket merged. The spill write renders cells through the Σ*
// encoding, which severs the ties on that path by itself.
func (e *Engine) admitFrame(df *core.DataFrame) (any, error) {
	cells := df.NRows()*df.NCols() + 1
	e.spillMu.Lock()
	if e.spillResident+cells <= e.spillBudget {
		e.spillResident += cells
		e.spillMu.Unlock()
		return residentPiece{df: df.Detach(), cells: cells}, nil
	}
	store, err := e.spillStoreLocked()
	if err != nil {
		e.spillMu.Unlock()
		return nil, err
	}
	e.spillSeq++
	key := fmt.Sprintf("shuffle-%d", e.spillSeq)
	e.spillMu.Unlock()
	if err := store.Put(key, df.Compact()); err != nil {
		return nil, err
	}
	if err := store.Release(key); err != nil {
		return nil, err
	}
	e.stats.SpilledPieces.Add(1)
	return spilledPiece{key: key, cells: cells}, nil
}

// spillStoreLocked lazily opens the engine's spill store. Caller holds
// spillMu.
func (e *Engine) spillStoreLocked() (*storage.Store, error) {
	if e.spillStore != nil {
		return e.spillStore, nil
	}
	// Budget 1: the store itself keeps nothing resident — residency is
	// accounted here, the store only owns the disk files.
	st, err := storage.New(1)
	if err != nil {
		return nil, err
	}
	e.spillStore = st
	return st, nil
}

// trackSpillRun records a run's cancellation group while the spill budget
// is on, so ReleaseSpill can wait out the run's stragglers.
func (e *Engine) trackSpillRun(sched *physical.Scheduler) {
	if e.spillBudget <= 0 {
		return
	}
	e.spillMu.Lock()
	e.spillGroups = append(e.spillGroups, sched.Group())
	e.spillMu.Unlock()
}

// ReleaseSpill closes the engine's spill store, removing every spill file.
// The store is re-created lazily if the engine runs again, so callers can
// release after each collected query. Safe to call when spilling never
// engaged or is disabled.
//
// A cancelled run (a merge failed mid-shuffle, say) may still have
// partition tasks on workers when its caller observes the error and
// releases: each would admit its pieces, lazily re-creating the store and
// stranding its spill files on disk forever. ReleaseSpill therefore
// quiesces every tracked run's task group first — stragglers drain, THEN
// the store (including anything they just wrote) closes and unlinks.
func (e *Engine) ReleaseSpill() error {
	e.spillMu.Lock()
	groups := e.spillGroups
	e.spillGroups = nil
	e.spillMu.Unlock()
	for _, g := range groups {
		g.Quiesce()
	}
	e.spillMu.Lock()
	st := e.spillStore
	e.spillStore = nil
	e.spillResident = 0
	e.spillMu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}

package modin

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

func evenPred() expr.Predicate {
	return func(r expr.Row) bool { return r.ByName("id").Int()%2 == 0 }
}

// TestFilterMapChainCompilesToOneFusedStage is the acceptance test of the
// async-pipeline refactor: the engine no longer blocks between
// embarrassingly-parallel operators — a filter→map chain lowers to ONE
// fused stage scheduling exactly one task per band, not one gather per
// operator.
func TestFilterMapChainCompilesToOneFusedStage(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(4))
	df := testFrame(80)
	plan := &algebra.Map{
		Input: &algebra.Selection{
			Input: &algebra.Source{DF: df},
			Pred:  evenPred(),
			Desc:  "even ids",
		},
		Fn: algebra.IsNullFn(),
	}

	phys, err := e.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	fused, exchanges := physical.Stages(phys)
	if fused != 1 || exchanges != 0 {
		t.Fatalf("plan = %d fused, %d exchange stages, want 1/0:\n%s", fused, exchanges, physical.Render(phys))
	}

	sched := physical.NewScheduler(pool)
	res, err := sched.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sched.Gather(res).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Stats.FusedTasks.Load(); got != 4 {
		t.Errorf("scheduled %d fused tasks for a 4-band filter→map chain, want 4 (one fused task per band)", got)
	}
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.(*core.DataFrame).Equal(want) {
		t.Error("fused chain result differs from eager engine")
	}
}

func TestCompileExchangeBoundaries(t *testing.T) {
	e := New(WithBands(4))
	df := testFrame(60)
	// filter → groupby → rename: kernel, exchange, kernel.
	plan := &algebra.Rename{
		Input: &algebra.GroupBy{
			Input: &algebra.Selection{Input: &algebra.Source{DF: df}, Pred: evenPred(), Desc: "even"},
			Spec: expr.GroupBySpec{
				Keys: []string{"dept"},
				Aggs: []expr.AggSpec{{Col: "val", Agg: expr.AggSum, As: "s"}},
			},
		},
		Mapping: map[string]string{"s": "total"},
	}
	phys, err := e.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	// The groupby lowers to two repartition stages: the band-routed shuffle
	// and the rank-merge restore exchange that repairs global group order.
	fused, exchanges := physical.Stages(phys)
	if fused != 2 || exchanges != 2 {
		t.Errorf("stages = %d fused, %d repartition stages, want 2/2:\n%s", fused, exchanges, physical.Render(phys))
	}
	rendered := physical.Render(phys)
	if !strings.Contains(rendered, "SHUFFLE[groupby]") {
		t.Errorf("groupby should be a shuffle stage:\n%s", rendered)
	}
	if !strings.Contains(rendered, "EXCHANGE[groupby-restore]") {
		t.Errorf("groupby shuffle should feed the order-restore exchange:\n%s", rendered)
	}
}

func TestCompileTopKFusesPartialPass(t *testing.T) {
	e := New(WithBands(4))
	df := testFrame(100)
	plan := &algebra.TopK{
		Input: &algebra.Selection{Input: &algebra.Source{DF: df}, Pred: evenPred(), Desc: "even"},
		Order: expr.SortOrder{{Col: "score", Desc: true}},
		N:     5,
	}
	phys, err := e.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	rendered := physical.Render(phys)
	// The per-band top-k pass fuses into the selection's stage; only the
	// final merge is a barrier.
	if !strings.Contains(rendered, "FUSED[selection→topk-partial]") {
		t.Errorf("topk partial pass should fuse with upstream selection:\n%s", rendered)
	}
	out, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eager.New().Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Error("fused topk differs from eager")
	}
}

func TestCompileSharedSubplanNotFusedTwice(t *testing.T) {
	e := New(WithBands(2))
	df := testFrame(40)
	shared := &algebra.Selection{Input: &algebra.Source{DF: df}, Pred: evenPred(), Desc: "even"}
	// Both union arms extend the same sub-plan: the maps must NOT fuse into
	// the shared selection stage (that would run it per consumer) — each
	// opens its own stage over the shared one.
	plan := &algebra.Union{
		Left:  &algebra.Map{Input: shared, Fn: algebra.IsNullFn()},
		Right: &algebra.Map{Input: shared, Fn: algebra.FillNAFn(types.IntValue(0))},
	}
	phys, err := e.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	fused, exchanges := physical.Stages(phys)
	if fused != 3 || exchanges != 1 {
		t.Errorf("stages = %d fused, %d exchanges, want 3/1 (shared selection + two maps):\n%s",
			fused, exchanges, physical.Render(phys))
	}
	bothEngines(t, plan)
}

func TestExecuteAsyncReturnsUnresolvedFuture(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(2))
	df := testFrame(30)
	gate := make(chan struct{})
	slow := expr.MapFn{
		Name:    "gated",
		OutCols: []types.Value{types.String("x")},
		Fn: func(r expr.Row) []types.Value {
			<-gate
			return []types.Value{types.IntValue(int64(r.Position()))}
		},
	}
	fut := e.ExecuteAsync(&algebra.Map{Input: &algebra.Source{DF: df}, Fn: slow})
	if fut.Ready() {
		t.Fatal("future should be unresolved while the map is gated")
	}
	close(gate)
	v, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v.(*core.DataFrame).NRows() != 30 {
		t.Error("async result wrong")
	}
}

func TestExecuteAsyncCompileErrorFailsFuture(t *testing.T) {
	e := New()
	if _, err := e.ExecuteAsync(nil).Wait(); err == nil {
		t.Error("nil plan should fail the future")
	}
}

func TestExecutePartitionedFusedRootIsDeferred(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(3))
	df := testFrame(60)
	pf, err := e.ExecutePartitioned(&algebra.Selection{
		Input: &algebra.Source{DF: df}, Pred: evenPred(), Desc: "even",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pf.RowBands() != 3 {
		t.Errorf("bands = %d", pf.RowBands())
	}
	out, err := pf.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 30 {
		t.Errorf("rows = %d", out.NRows())
	}
}

func TestKernelErrorPropagatesAndCancels(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	e := New(WithPool(pool), WithBands(4))
	df := testFrame(40)
	bad := expr.MapFn{
		Name:    "boom",
		OutCols: []types.Value{types.String("x")},
		Fn: func(r expr.Row) []types.Value {
			panic("map kaboom")
		},
	}
	start := time.Now()
	if _, err := e.Execute(&algebra.Map{Input: &algebra.Source{DF: df}, Fn: bad}); err == nil {
		t.Fatal("failing map should error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("error took %v to surface", elapsed)
	}
}

package modin

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// This file lowers inner/left data-column joins to a KEY-SHUFFLED hash join
// when collected statistics say the build side is too large to broadcast:
// both inputs shuffle by join-key hash into the same buckets, each bucket
// builds its slice of the right side exactly once and probes its slice of
// the left, and a restore exchange puts the probe rows back into left input
// order. The broadcast probe (shuffle.go) rebuilds the FULL right-side table
// once per left band; the shuffled form builds each right row into exactly
// one bucket table, so total build work drops from bands× to 1× — the win
// the planner is sizing when it compares the build estimate against the
// broadcast limit.

// joinChoice is one join's physical strategy decision plus the estimates
// that drove it (Explain renders them).
type joinChoice struct {
	shuffled  bool
	buildRows float64 // estimated build-side (right) rows
	buildNDV  float64 // sketched key NDV on the build side; 0 when unknown
}

// chooseJoinStrategy picks broadcast vs key-shuffled for an inner/left
// data-column join. Shuffling needs statistics (the zero-stats fallback is
// always broadcast, preserving the engine's historical plans), at least two
// bands (one bucket would just be a slower broadcast), and a build-side
// estimate above the broadcast limit.
func (e *Engine) chooseJoinStrategy(node *algebra.Join) joinChoice {
	if node.Kind != expr.JoinInner && node.Kind != expr.JoinLeft {
		return joinChoice{}
	}
	if node.OnLabels || len(node.On) == 0 {
		return joinChoice{}
	}
	est := optimizer.Estimator{Stats: e}
	c := joinChoice{buildRows: est.EstimateNode(node.Right).Rows}
	if ndv, ok := est.KeyNDV(node.Right, node.On); ok {
		c.buildNDV = ndv
	}
	c.shuffled = e.statsOn && e.bands >= 2 && c.buildRows > float64(e.broadcastLimit)
	return c
}

// keyBuckets routes df's rows to hash buckets: bucket index lists in input
// order, one per bucket.
func keyBuckets(df *core.DataFrame, on []string, nb int) ([][]int, error) {
	hs, err := algebra.RowKeyHashes(df, on)
	if err != nil {
		return nil, err
	}
	idx := make([][]int, nb)
	for i, h := range hs {
		b := int(h % uint64(nb))
		idx[b] = append(idx[b], i)
	}
	return idx, nil
}

// joinBuildShuffle shuffles the build (right) side by join-key hash: band r
// routes each row to bucket hash%nb, and bucket b's merge stacks its pieces
// into the one frame the probe stage will build a hash table over. Pieces
// are materialized with TakeRows (not views) so the merge concatenation and
// the downstream table build stay on typed storage.
func (e *Engine) joinBuildShuffle(on []string) *physical.Shuffle {
	nb := e.bands
	return &physical.Shuffle{
		Name:    "join-build",
		Buckets: nb,
		Partition: func(_ int, df *core.DataFrame, _ any) ([]any, error) {
			idx, err := keyBuckets(df, on, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b := range pieces {
				pieces[b] = df.TakeRows(idx[b])
			}
			return pieces, nil
		},
		Merge: func(_ int, pieces []any, _ any) (*core.DataFrame, error) {
			frames := make([]*core.DataFrame, len(pieces))
			for r, p := range pieces {
				frames[r] = p.(*core.DataFrame)
			}
			return algebra.VStackFrames(frames...)
		},
	}
}

// joinProbePlan is the probe shuffle's routing state: each probe band's
// global row offset (for order-restoring ordinals) and each bucket's built
// right-side frame.
type joinProbePlan struct {
	offsets []int
	builds  []*core.DataFrame
}

// joinPiece is one band's contribution to one probe bucket: the routed rows
// plus their global left-input ordinals.
type joinPiece struct {
	df   *core.DataFrame
	ords []int64
}

// joinOrdCol carries the probe rows' left-input ordinals through the
// shuffle; the restore exchange consumes (and drops) it positionally, so a
// colliding user column name is harmless.
const joinOrdCol = "__join_ord__"

// joinProbeShuffleKeyed shuffles the probe (left) side by the same key hash
// and joins each bucket against its built right slice: BuildJoinTable once
// per bucket, typed probe in routed-row order, then the standard join
// assembly. Every output row is tagged with its left row's global ordinal
// so the restore exchange can reproduce exact left input order (and with it
// the broadcast path's output exactly).
func (e *Engine) joinProbeShuffleKeyed(node *algebra.Join) *physical.Shuffle {
	nb := e.bands
	on, kind := node.On, node.Kind
	return &physical.Shuffle{
		Name:    "join-probe",
		Buckets: nb,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return band.NRows(), nil
		},
		Plan: func(summaries []any, sides []*partition.Frame) (any, error) {
			p := &joinProbePlan{offsets: make([]int, len(summaries))}
			off := 0
			for r, s := range summaries {
				p.offsets[r] = off
				off += s.(int)
			}
			built := sides[0]
			if built.RowBands() != nb {
				return nil, fmt.Errorf("modin: join build produced %d buckets, want %d", built.RowBands(), nb)
			}
			p.builds = make([]*core.DataFrame, nb)
			for b := range p.builds {
				df, err := built.RowBand(b)
				if err != nil {
					return nil, err
				}
				p.builds[b] = df
			}
			return p, nil
		},
		Partition: func(band int, df *core.DataFrame, plan any) ([]any, error) {
			p := plan.(*joinProbePlan)
			idx, err := keyBuckets(df, on, nb)
			if err != nil {
				return nil, err
			}
			base := int64(p.offsets[band])
			pieces := make([]any, nb)
			for b := range pieces {
				ords := make([]int64, len(idx[b]))
				for k, i := range idx[b] {
					ords[k] = base + int64(i)
				}
				pieces[b] = joinPiece{df: df.TakeRows(idx[b]), ords: ords}
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			p := plan.(*joinProbePlan)
			frames := make([]*core.DataFrame, len(pieces))
			total := 0
			for r, piece := range pieces {
				jp := piece.(joinPiece)
				frames[r] = jp.df
				total += len(jp.ords)
			}
			// Bands stack in band order and each band's ordinals ascend, so
			// the bucket's concatenated ordinals are globally ascending —
			// the invariant the restore merge relies on.
			ords := make([]int64, 0, total)
			for _, piece := range pieces {
				ords = append(ords, piece.(joinPiece).ords...)
			}
			left, err := algebra.VStackFrames(frames...)
			if err != nil {
				return nil, err
			}
			table, err := algebra.BuildJoinTable(p.builds[bucket], on)
			if err != nil {
				return nil, err
			}
			leftIdx, rightIdx, err := table.Probe(left, on, kind, nil, nil)
			if err != nil {
				return nil, err
			}
			out, err := algebra.AssembleJoin(left, table.Right(), on, false, leftIdx, rightIdx)
			if err != nil {
				return nil, err
			}
			ordOut := make([]int64, len(leftIdx))
			for k, i := range leftIdx {
				ordOut[k] = ords[i]
			}
			return out.AppendColumn(types.String(joinOrdCol), vector.NewInt(ordOut, nil), types.Int)
		},
	}
}

// ordColumn reads a bucket's carried ordinal column as typed int64s.
func ordColumn(v vector.Vector) []int64 {
	if data, _, idx, ok := vector.IntData(v); ok && idx == nil {
		return data
	}
	out := make([]int64, v.Len())
	for i := range out {
		out[i] = v.Value(i).Int()
	}
	return out
}

// joinRestoreExchange puts the shuffled probe output back into left input
// order. Each bucket's rows carry ascending left ordinals, one left row's
// matches live contiguously in exactly one bucket, and ordinals are unique
// per left row — so a k-way run merge over the nb buckets reproduces the
// exact row order (and positional labels) the broadcast path would have
// produced.
func (e *Engine) joinRestoreExchange(node *algebra.Join, probe *physical.Node) *physical.Node {
	desc := node.Describe()
	run := func(in []*partition.Frame) (*partition.Frame, error) {
		f := in[0]
		nb := f.RowBands()
		bands := make([]*core.DataFrame, nb)
		ords := make([][]int64, nb)
		base := make([]int, nb) // bucket b's row offset in the stacked frame
		total := 0
		for b := 0; b < nb; b++ {
			df, err := f.RowBand(b)
			if err != nil {
				return nil, err
			}
			j := df.NCols() - 1
			ords[b] = ordColumn(df.TypedCol(j))
			bands[b] = df.DropColumn(j)
			base[b] = total
			total += df.NRows()
		}
		perm := make([]int, 0, total)
		cur := make([]int, nb)
		for len(perm) < total {
			min := -1
			for b := 0; b < nb; b++ {
				if cur[b] < len(ords[b]) && (min < 0 || ords[b][cur[b]] < ords[min][cur[min]]) {
					min = b
				}
			}
			if min < 0 {
				return nil, fmt.Errorf("modin: join restore ran out of rows at %d of %d", len(perm), total)
			}
			// Consume the whole run for this left row: its matches are
			// contiguous in this one bucket.
			o := ords[min][cur[min]]
			for cur[min] < len(ords[min]) && ords[min][cur[min]] == o {
				perm = append(perm, base[min]+cur[min])
				cur[min]++
			}
		}
		out, err := algebra.VStackFrames(bands...)
		if err != nil {
			return nil, err
		}
		out, err = out.TakeRows(perm).WithRowLabels(vector.Range(0, total))
		if err != nil {
			return nil, err
		}
		return e.rePartition(out), nil
	}
	wrapped := func(in []*partition.Frame) (*partition.Frame, error) {
		out, err := run(in)
		if err != nil {
			return nil, describeErr(desc, err)
		}
		return out, nil
	}
	return physical.NewExchange("join-restore", wrapped, probe)
}

package modin

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Exported shuffle-phase helpers: the summarize→plan→partition→merge
// protocol of the GROUPBY and SORT shuffles, factored so the in-process
// shuffles (shuffle.go, sort.go) and the cluster coordinator/worker
// (internal/cluster) run the exact same fold. The distributed backend ships
// only DATA — band statistics up to the coordinator, routing tables back
// down — and both sides call into these functions, which is what keeps a
// distributed run cell-identical to the local one.

// GroupBandStat is the coordinator-visible part of one band's group-key
// summary: per distinct key (in band first-appearance order) its 64-bit
// hash, exemplar tuple, and row count. The per-row ordinal table stays with
// the band's worker — it is O(rows), everything here is O(distinct).
type GroupBandStat struct {
	Hashes    []uint64
	Exemplars [][]types.Value
	Counts    []int64
}

// GroupStatOf extracts a band's wire-safe stat from its key summary.
func GroupStatOf(sum *algebra.GroupKeySummary) *GroupBandStat {
	counts := make([]int64, len(sum.Hashes))
	for _, d := range sum.Ordinals {
		counts[d]++
	}
	return &GroupBandStat{Hashes: sum.Hashes, Exemplars: sum.Exemplars, Counts: counts}
}

// GroupRouting is the finalize state produced by the plan fold. Rows route
// incrementally by stable key hash — bucket = hash % buckets, a pure
// function of the key, so every band assigns identically without seeing any
// other band — and the fold's job shrinks to repairing global order:
// Ranks[b] lists bucket b's groups' global first-appearance ranks in
// ascending order (folding a bucket's pieces in band order yields exactly
// these groups in exactly this rank order). Heavy flags buckets owning a
// key above the fair row share (nil when skew-aware planning is off).
type GroupRouting struct {
	Ranks [][]int64
	Heavy []bool
}

// PlanGroupRouting folds per-band key stats — in band order, reproducing
// the single-node scan's first-appearance order — into each hash bucket's
// ascending global rank list. Global ids are assigned in fold order, so a
// key's id IS its first-appearance rank; hash collisions between distinct
// keys are broken by exemplar verification. Unlike the routing fold this
// replaced, nothing here gates partitioning: bands route themselves by
// hash%buckets, and this plan only tells each merge which ranks it owns.
func PlanGroupRouting(stats []*GroupBandStat, buckets int, skewAware bool) *GroupRouting {
	fold := algebra.NewGroupKeyFold()
	for _, st := range stats {
		if st == nil {
			continue
		}
		fold.AddBand(st.Hashes, st.Exemplars, st.Counts)
	}
	r := &GroupRouting{Ranks: make([][]int64, buckets)}
	sizes := make([]int, buckets)
	for _, h := range fold.Hashes {
		sizes[int(h%uint64(buckets))]++
	}
	backing := make([]int64, len(fold.Hashes))
	for b := range r.Ranks {
		r.Ranks[b] = backing[:0:sizes[b]]
		backing = backing[sizes[b]:]
	}
	// Appending in gid order keeps each bucket's rank list ascending — the
	// invariant MergeGroupBucket validates against and the restore merge
	// relies on.
	for gid, h := range fold.Hashes {
		b := int(h % uint64(buckets))
		r.Ranks[b] = append(r.Ranks[b], int64(gid))
	}
	if skewAware {
		// Hash routing can't isolate a hot key into its own bucket the way
		// the old volume-weighted cuts did, but the stats still carry exact
		// per-key volumes: flag buckets owning a key above the fair share so
		// their merges split across parallel partial-merge chunks.
		fair := fold.Total / int64(buckets)
		for b, ranks := range r.Ranks {
			for _, g := range ranks {
				if fold.Counts[g] > fair {
					if r.Heavy == nil {
						r.Heavy = make([]bool, buckets)
					}
					r.Heavy[b] = true
					break
				}
			}
		}
	}
	return r
}

// GroupRankCol carries each merged group's global first-appearance rank out
// of a multi-bucket merge; the restore pass consumes (and drops) it
// positionally, so a colliding user column name is harmless.
const GroupRankCol = "__group_rank__"

// PieceSource defers a routed piece's materialization to the moment a
// merge consumes it. Band-routed group merges fold pieces sequentially in
// band order, so a spilled piece behind this interface is resident only
// while its rows feed the fold — the property that keeps a pass-through
// groupby's merge phase O(one piece + accumulator state) instead of
// O(bucket rows).
type PieceSource interface {
	Frame() (*core.DataFrame, error)
}

// pieceFrame materializes one merge input piece.
func pieceFrame(p any) (*core.DataFrame, error) {
	switch v := p.(type) {
	case *core.DataFrame:
		return v, nil
	case PieceSource:
		return v.Frame()
	default:
		return nil, fmt.Errorf("modin: unexpected group merge piece %T", p)
	}
}

// MergeGroupBucket folds one bucket's routed pieces (in band order) into
// its merged grouped frame, validates the group count against the plan's
// rank list, and — when other buckets exist — tags each group with its
// global rank so the restore pass can interleave buckets back into global
// first-appearance order. This is the merge phase both backends run.
func MergeGroupBucket(pool *exec.Pool, frames []*core.DataFrame, spec expr.GroupBySpec, routing *GroupRouting, bucket int) (*core.DataFrame, error) {
	pieces := make([]any, len(frames))
	for i, f := range frames {
		pieces[i] = f
	}
	return mergeGroupBucketPieces(pool, pieces, spec, routing, bucket)
}

// mergeGroupBucketPieces is MergeGroupBucket over deferred pieces: each
// element is a *core.DataFrame or a PieceSource resolved at consumption.
func mergeGroupBucketPieces(pool *exec.Pool, pieces []any, spec expr.GroupBySpec, routing *GroupRouting, bucket int) (*core.DataFrame, error) {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	heavy := routing.Heavy != nil && routing.Heavy[bucket]
	out, err := mergeGroupPieces(pool, pieces, spec, heavy)
	if err != nil {
		return nil, err
	}
	ranks := routing.Ranks[bucket]
	if out.NRows() != len(ranks) {
		return nil, fmt.Errorf("modin: groupby bucket %d produced %d groups, plan routed %d", bucket, out.NRows(), len(ranks))
	}
	if len(routing.Ranks) == 1 {
		// Single bucket: its ranks are already 0..n-1, no restore follows.
		if spec.AsLabels {
			return out, nil
		}
		return out.WithRowLabels(vector.Range(0, out.NRows()))
	}
	return out.AppendColumn(types.String(GroupRankCol), vector.NewInt(ranks, nil), types.Int)
}

// RestoreGroupOrder interleaves the merged buckets back into global
// first-appearance group order: each bucket's groups sit in ascending rank
// order (MergeGroupBucket validated them against the plan), so a k-way
// ascending-rank merge over the buckets reproduces the exact group order —
// and, with positional labels reassigned, the exact frame — the single
// barrier plan produced. asLabels keeps the buckets' key row labels (the
// AsIndex form); otherwise labels become the global positional sequence.
func RestoreGroupOrder(frames []*core.DataFrame, ranks [][]int64, asLabels bool) (*core.DataFrame, error) {
	nb := len(frames)
	bc := make([]int, 2*nb) // bucket b's stacked-row offset (bc[b]) and fold cursor (bc[nb+b])
	base, cur := bc[:nb], bc[nb:]
	total := 0
	for b, f := range frames {
		if f.NRows() != len(ranks[b]) {
			return nil, fmt.Errorf("modin: group restore bucket %d has %d groups, plan routed %d", b, f.NRows(), len(ranks[b]))
		}
		base[b] = total
		total += f.NRows()
	}
	perm := make([]int, 0, total)
	identity := true
	for len(perm) < total {
		min := -1
		for b := 0; b < nb; b++ {
			if cur[b] < len(ranks[b]) && (min < 0 || ranks[b][cur[b]] < ranks[min][cur[min]]) {
				min = b
			}
		}
		next := base[min] + cur[min]
		if next != len(perm) {
			identity = false
		}
		perm = append(perm, next)
		cur[min]++
	}
	out, err := algebra.VStackFrames(frames...)
	if err != nil {
		return nil, err
	}
	if !identity {
		out = out.TakeRows(perm)
	}
	if asLabels {
		return out, nil
	}
	return out.WithRowLabels(vector.Range(0, total))
}

// SampleSortKeys draws a band's bounded key sample for the sort plan.
func SampleSortKeys(band *core.DataFrame, node *algebra.Sort) ([][]types.Value, error) {
	keys, _, err := sortKeyVecs(band, node)
	if err != nil {
		return nil, err
	}
	n := band.NRows()
	step := n / sortSampleTarget
	if step < 1 {
		step = 1
	}
	var samples [][]types.Value
	for i := 0; i < n; i += step {
		samples = append(samples, keyTuple(keys, i))
	}
	return samples, nil
}

// PlanSortBounds pools the bands' key samples and picks buckets-1 range
// bounds: bucket b receives keys ≤ bounds[b], the final bucket the rest.
func PlanSortBounds(samples [][]types.Value, buckets int, node *algebra.Sort) [][]types.Value {
	desc := sortDesc(node)
	all := append([][]types.Value(nil), samples...)
	sort.SliceStable(all, func(i, j int) bool {
		return compareTuples(all[i], all[j], desc) < 0
	})
	var bounds [][]types.Value
	for b := 1; b < buckets && len(all) > 0; b++ {
		bounds = append(bounds, all[b*len(all)/buckets])
	}
	return bounds
}

// PartitionSortedBand stably sorts the band and slices it into one
// contiguous zero-copy run per bucket (binary-searching the first row past
// each bound) — the partition phase both backends run.
func PartitionSortedBand(df *core.DataFrame, node *algebra.Sort, bounds [][]types.Value, buckets int) ([]*core.DataFrame, error) {
	desc := sortDesc(node)
	sorted, err := algebra.SortFrame(df, node.Order, node.ByLabels)
	if err != nil {
		return nil, err
	}
	keys, _, err := sortKeyVecs(sorted, node)
	if err != nil {
		return nil, err
	}
	pieces := make([]*core.DataFrame, buckets)
	n := sorted.NRows()
	lo := 0
	for b := 0; b < buckets; b++ {
		hi := n
		if b < len(bounds) {
			bound := bounds[b]
			hi = lo + sort.Search(n-lo, func(i int) bool {
				return compareRowBound(keys, lo+i, bound, desc) > 0
			})
		}
		pieces[b] = sorted.SliceRows(lo, hi)
		lo = hi
	}
	return pieces, nil
}

// MergeSortBucket k-way merges one bucket's routed runs (in band order);
// ties resolve toward the earlier run, reproducing the stable single-node
// sort. An all-empty bucket returns the first piece so the output band
// keeps the input's arity.
func MergeSortBucket(pieces []*core.DataFrame, node *algebra.Sort) (*core.DataFrame, error) {
	runs := make([]*core.DataFrame, 0, len(pieces))
	for _, df := range pieces {
		if df.NRows() > 0 {
			runs = append(runs, df)
		}
	}
	if len(runs) == 0 {
		return pieces[0], nil
	}
	return mergeSortedRuns(runs, node)
}

package modin

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// Exported shuffle-phase helpers: the summarize→plan→partition→merge
// protocol of the GROUPBY and SORT shuffles, factored so the in-process
// shuffles (shuffle.go, sort.go) and the cluster coordinator/worker
// (internal/cluster) run the exact same fold. The distributed backend ships
// only DATA — band statistics up to the coordinator, routing tables back
// down — and both sides call into these functions, which is what keeps a
// distributed run cell-identical to the local one.

// GroupBandStat is the coordinator-visible part of one band's group-key
// summary: per distinct key (in band first-appearance order) its 64-bit
// hash, exemplar tuple, and row count. The per-row ordinal table stays with
// the band's worker — it is O(rows), everything here is O(distinct).
type GroupBandStat struct {
	Hashes    []uint64
	Exemplars [][]types.Value
	Counts    []int64
}

// GroupStatOf extracts a band's wire-safe stat from its key summary.
func GroupStatOf(sum *algebra.GroupKeySummary) *GroupBandStat {
	counts := make([]int64, len(sum.Hashes))
	for _, d := range sum.Ordinals {
		counts[d]++
	}
	return &GroupBandStat{Hashes: sum.Hashes, Exemplars: sum.Exemplars, Counts: counts}
}

// GroupRouting is the routing state produced by the plan fold: bucket b
// owns the contiguous global group-rank range [Starts[b], Starts[b+1]),
// and BucketOf[band][ordinal] routes a band's rows by their band-local
// key ordinal. Heavy flags buckets owning a key above the fair row share
// (nil when skew-aware planning is off).
type GroupRouting struct {
	Starts   []int
	BucketOf [][]int32
	Heavy    []bool
}

// PlanGroupRouting folds per-band key stats — in band order, reproducing
// the single-node scan's first-appearance order — into global group ids and
// bucket cuts. Global ids are assigned in fold order, so a key's id IS its
// first-appearance rank; hash collisions between distinct keys are broken
// by exemplar verification.
func PlanGroupRouting(stats []*GroupBandStat, buckets int, skewAware bool) *GroupRouting {
	r := &GroupRouting{BucketOf: make([][]int32, len(stats))}
	var exemplars [][]types.Value     // global id → key tuple
	index := make(map[uint64][]int32) // hash → global ids
	bandGlobal := make([][]int32, len(stats))
	for b, st := range stats {
		ids := make([]int32, len(st.Hashes))
		for d, h := range st.Hashes {
			gid := int32(-1)
			for _, cand := range index[h] {
				if algebra.KeyTuplesEqual(exemplars[cand], st.Exemplars[d]) {
					gid = cand
					break
				}
			}
			if gid < 0 {
				gid = int32(len(exemplars))
				exemplars = append(exemplars, st.Exemplars[d])
				index[h] = append(index[h], gid)
			}
			ids[d] = gid
		}
		bandGlobal[b] = ids
	}
	if skewAware {
		// Skew-aware planning: the stats carry exact per-key row volumes,
		// so cut bucket ranges by row share instead of group count, and
		// flag buckets owning a key above the fair per-bucket share — their
		// merges split across parallel partial-merge tasks.
		counts := make([]int64, len(exemplars))
		var total int64
		for b, st := range stats {
			ids := bandGlobal[b]
			for d, c := range st.Counts {
				counts[ids[d]] += c
				total += c
			}
		}
		r.Starts = weightedCuts(counts, buckets)
		fair := total / int64(buckets)
		r.Heavy = make([]bool, buckets)
		for b := 0; b < buckets; b++ {
			for g := r.Starts[b]; g < r.Starts[b+1]; g++ {
				if counts[g] > fair {
					r.Heavy[b] = true
					break
				}
			}
		}
	} else {
		r.Starts = bandCuts(len(exemplars), buckets)
	}
	// Global rank → bucket, then per band: band ordinal → bucket.
	rankBucket := make([]int32, len(exemplars))
	b := 0
	for rank := range rankBucket {
		for rank >= r.Starts[b+1] {
			b++
		}
		rankBucket[rank] = int32(b)
	}
	for band, ids := range bandGlobal {
		bb := make([]int32, len(ids))
		for d, gid := range ids {
			bb[d] = rankBucket[gid]
		}
		r.BucketOf[band] = bb
	}
	return r
}

// MergeGroupBucket folds one bucket's routed pieces (in band order) into
// its merged grouped frame, validates the group count against the routing
// plan, and assigns the bucket's global positional labels. This is the
// merge phase both backends run.
func MergeGroupBucket(pool *exec.Pool, frames []*core.DataFrame, spec expr.GroupBySpec, routing *GroupRouting, bucket int) (*core.DataFrame, error) {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	heavy := routing.Heavy != nil && routing.Heavy[bucket]
	out, err := mergeGroupPieces(pool, frames, spec, heavy)
	if err != nil {
		return nil, err
	}
	lo, hi := routing.Starts[bucket], routing.Starts[bucket+1]
	if out.NRows() != hi-lo {
		return nil, fmt.Errorf("modin: groupby bucket %d produced %d groups, plan routed %d", bucket, out.NRows(), hi-lo)
	}
	if spec.AsLabels {
		return out, nil
	}
	// Positional labels are global: bucket b's groups occupy the rank range
	// [lo, hi), so the concatenated buckets read 0..n-1.
	return out.WithRowLabels(vector.Range(int64(lo), out.NRows()))
}

// SampleSortKeys draws a band's bounded key sample for the sort plan.
func SampleSortKeys(band *core.DataFrame, node *algebra.Sort) ([][]types.Value, error) {
	keys, _, err := sortKeyVecs(band, node)
	if err != nil {
		return nil, err
	}
	n := band.NRows()
	step := n / sortSampleTarget
	if step < 1 {
		step = 1
	}
	var samples [][]types.Value
	for i := 0; i < n; i += step {
		samples = append(samples, keyTuple(keys, i))
	}
	return samples, nil
}

// PlanSortBounds pools the bands' key samples and picks buckets-1 range
// bounds: bucket b receives keys ≤ bounds[b], the final bucket the rest.
func PlanSortBounds(samples [][]types.Value, buckets int, node *algebra.Sort) [][]types.Value {
	desc := sortDesc(node)
	all := append([][]types.Value(nil), samples...)
	sort.SliceStable(all, func(i, j int) bool {
		return compareTuples(all[i], all[j], desc) < 0
	})
	var bounds [][]types.Value
	for b := 1; b < buckets && len(all) > 0; b++ {
		bounds = append(bounds, all[b*len(all)/buckets])
	}
	return bounds
}

// PartitionSortedBand stably sorts the band and slices it into one
// contiguous zero-copy run per bucket (binary-searching the first row past
// each bound) — the partition phase both backends run.
func PartitionSortedBand(df *core.DataFrame, node *algebra.Sort, bounds [][]types.Value, buckets int) ([]*core.DataFrame, error) {
	desc := sortDesc(node)
	sorted, err := algebra.SortFrame(df, node.Order, node.ByLabels)
	if err != nil {
		return nil, err
	}
	keys, _, err := sortKeyVecs(sorted, node)
	if err != nil {
		return nil, err
	}
	pieces := make([]*core.DataFrame, buckets)
	n := sorted.NRows()
	lo := 0
	for b := 0; b < buckets; b++ {
		hi := n
		if b < len(bounds) {
			bound := bounds[b]
			hi = lo + sort.Search(n-lo, func(i int) bool {
				return compareRowBound(keys, lo+i, bound, desc) > 0
			})
		}
		pieces[b] = sorted.SliceRows(lo, hi)
		lo = hi
	}
	return pieces, nil
}

// MergeSortBucket k-way merges one bucket's routed runs (in band order);
// ties resolve toward the earlier run, reproducing the stable single-node
// sort. An all-empty bucket returns the first piece so the output band
// keeps the input's arity.
func MergeSortBucket(pieces []*core.DataFrame, node *algebra.Sort) (*core.DataFrame, error) {
	runs := make([]*core.DataFrame, 0, len(pieces))
	for _, df := range pieces {
		if df.NRows() > 0 {
			runs = append(runs, df)
		}
	}
	if len(runs) == 0 {
		return pieces[0], nil
	}
	return mergeSortedRuns(runs, node)
}

package modin

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/vector"
)

// This file builds the engine's shuffle stages: the two-phase
// partition→route→merge lowerings of GROUPBY (key shuffle), JOIN (anchored
// broadcast probe + renumber), and — in sort.go — SORT (range shuffle).
// Each produces one independent output-band future per bucket, so
// downstream fused stages start as soon as the band that feeds them lands.

// bandCuts splits n items into nb roughly-equal contiguous ranges
// (mirroring the partition layer's band boundaries).
func bandCuts(n, nb int) []int {
	out := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		out[i] = i * n / nb
	}
	return out
}

// groupSummary is one band's contribution to the groupby routing plan. The
// per-row rendered keys are kept so the partition phase routes without
// re-rendering them.
type groupSummary struct {
	keys     []string // rendered group key per row
	distinct []string // the band's distinct keys in first-appearance order
}

// groupPlan is the routing state shared by every groupby partition and
// merge task: each key's bucket, each bucket's global group-rank range, and
// the per-band rendered keys carried over from the summaries.
type groupPlan struct {
	bucket   map[string]int
	starts   []int // starts[b] is the global rank of bucket b's first group
	rendered [][]string
}

// groupByShuffle lowers GROUPBY to a key shuffle. Routing hashes on the
// rendered group key, but bucket assignment follows each key's GLOBAL
// first-appearance rank (computed by the plan phase from cheap per-band key
// summaries): bucket b owns the contiguous rank range [starts[b],
// starts[b+1]), so concatenating the merged buckets in order reproduces the
// ordered-dataframe groupby exactly — same group order, same positional row
// labels — while every output band stays an independent future.
func (e *Engine) groupByShuffle(spec expr.GroupBySpec) *physical.Shuffle {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	nb := e.bands
	keys := spec.Keys
	return &physical.Shuffle{
		Name:    "groupby",
		Buckets: nb,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			rendered, err := algebra.GroupRowKeys(band, keys)
			if err != nil {
				return nil, err
			}
			seen := make(map[string]bool)
			var distinct []string
			for _, k := range rendered {
				if !seen[k] {
					seen[k] = true
					distinct = append(distinct, k)
				}
			}
			return &groupSummary{keys: rendered, distinct: distinct}, nil
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			// Folding the band orders in band order reproduces the
			// single-node scan's first-appearance order, which is what
			// keeps the shuffled result identical to the gather
			// implementation.
			p := &groupPlan{bucket: make(map[string]int), rendered: make([][]string, len(summaries))}
			var order []string
			for r, s := range summaries {
				sum := s.(*groupSummary)
				p.rendered[r] = sum.keys
				for _, k := range sum.distinct {
					if _, ok := p.bucket[k]; !ok {
						p.bucket[k] = -1 // rank-ranged below
						order = append(order, k)
					}
				}
			}
			p.starts = bandCuts(len(order), nb)
			b := 0
			for rank, k := range order {
				for rank >= p.starts[b+1] {
					b++
				}
				p.bucket[k] = b
			}
			return p, nil
		},
		Partition: func(band int, df *core.DataFrame, plan any) ([]any, error) {
			p := plan.(*groupPlan)
			rendered := p.rendered[band]
			assign := make([]int, len(rendered))
			for i, k := range rendered {
				assign[i] = p.bucket[k]
			}
			views, err := partition.SplitRows(df, assign, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b, v := range views {
				pieces[b] = v
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			p := plan.(*groupPlan)
			g := algebra.NewGroupPartial(spec)
			for _, piece := range pieces {
				if err := g.AddFrame(piece.(*core.DataFrame)); err != nil {
					return nil, err
				}
			}
			out, err := g.Finalize()
			if err != nil {
				return nil, err
			}
			lo, hi := p.starts[bucket], p.starts[bucket+1]
			if out.NRows() != hi-lo {
				return nil, fmt.Errorf("modin: groupby bucket %d produced %d groups, plan routed %d", bucket, out.NRows(), hi-lo)
			}
			if spec.AsLabels {
				return out, nil
			}
			// Positional labels are global: bucket b's groups occupy the
			// rank range [lo, hi), so the concatenated bands read 0..n-1.
			return out.WithRowLabels(vector.Range(int64(lo), out.NRows()))
		},
	}
}

// joinProbeShuffle lowers an inner/left join to an anchored shuffle: the
// probe side's bands pass through unshuffled (preserving left row order
// exactly), while the build side is resolved once by the plan task and
// broadcast to every per-band probe merge. Band b's join lands as soon as
// band b's input and the build side exist — other probe bands may still be
// computing.
func (e *Engine) joinProbeShuffle(node *algebra.Join) *physical.Shuffle {
	return &physical.Shuffle{
		Name: "join",
		Plan: func(_ []any, sides []*partition.Frame) (any, error) {
			return sides[0].ToFrame()
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			return algebra.JoinFrames(pieces[0].(*core.DataFrame), plan.(*core.DataFrame),
				node.Kind, node.On, node.OnLabels)
		},
	}
}

// renumberShuffle resets row labels to one global positional sequence. It
// is an anchored shuffle with a PREFIX plan: band b's offset is the sum of
// the row counts of bands [0, b), so band b's relabel waits only on
// earlier bands — band 0 relabels the moment its own probe lands, and a
// data-column join keeps streaming through the relabel instead of
// barriering on its slowest band.
func (e *Engine) renumberShuffle() *physical.Shuffle {
	return &physical.Shuffle{
		Name: "renumber",
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return band.NRows(), nil
		},
		PrefixPlan: func(prefix []any) (any, error) {
			off := 0
			for _, s := range prefix {
				off += s.(int)
			}
			return off, nil
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			df := pieces[0].(*core.DataFrame)
			return df.WithRowLabels(vector.Range(int64(plan.(int)), df.NRows()))
		},
	}
}

package modin

import (
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/vector"
)

// This file builds the engine's shuffle stages: the two-phase
// partition→route→merge lowerings of GROUPBY (key shuffle), JOIN (anchored
// broadcast probe + renumber), and — in sort.go — SORT (range shuffle).
// Each produces one independent output-band future per bucket, so
// downstream fused stages start as soon as the band that feeds them lands.

// bandCuts splits n items into nb roughly-equal contiguous ranges
// (mirroring the partition layer's band boundaries).
func bandCuts(n, nb int) []int {
	out := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		out[i] = i * n / nb
	}
	return out
}

// weightedCuts cuts the global group ranks into nb contiguous ranges of
// roughly equal ROW volume rather than equal group count: each bucket takes
// groups until it reaches its fair share of the remaining rows, so under
// key skew a hot key fills a bucket (nearly) by itself instead of dragging
// its whole even-count rank range into one overloaded merge.
func weightedCuts(counts []int64, nb int) []int {
	cuts := make([]int, nb+1)
	var remaining int64
	for _, c := range counts {
		remaining += c
	}
	g := 0
	for b := 0; b < nb; b++ {
		cuts[b] = g
		share := remaining / int64(nb-b)
		var acc int64
		for g < len(counts) && (acc == 0 || acc+counts[g] <= share) {
			acc += counts[g]
			g++
		}
		remaining -= acc
	}
	cuts[nb] = len(counts)
	return cuts
}

// groupPlan is the routing state shared by every groupby partition and
// merge task: the folded routing tables (distrib.go) plus the per-band row
// ordinals carried over from the summaries. Nothing here is a rendered
// key: group identity travels as small ints, with 64-bit hashes plus boxed
// exemplar tuples (one per distinct key, not per row) resolving identity
// across bands — hash collisions between distinct keys are broken by
// exemplar verification.
type groupPlan struct {
	routing  *GroupRouting
	ordinals [][]int32 // per band: row → band-ordinal
}

// groupByShuffle lowers GROUPBY to a key shuffle. Routing hashes the typed
// key columns (vector.HashRows — no per-row rendering), but bucket
// assignment follows each key's GLOBAL first-appearance rank (computed by
// the plan phase from cheap per-band key summaries): bucket b owns the
// contiguous rank range [starts[b], starts[b+1]), so concatenating the
// merged buckets in order reproduces the ordered-dataframe groupby exactly
// — same group order, same positional row labels — while every output band
// stays an independent future.
func (e *Engine) groupByShuffle(spec expr.GroupBySpec) *physical.Shuffle {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	nb := e.bands
	keys := spec.Keys
	return &physical.Shuffle{
		Name:    "groupby",
		Buckets: nb,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return algebra.SummarizeGroupKeys(band, keys)
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			// Folding the band orders in band order reproduces the
			// single-node scan's first-appearance order, which is what
			// keeps the shuffled result identical to the gather
			// implementation; the fold itself is PlanGroupRouting
			// (distrib.go), shared with the cluster coordinator.
			stats := make([]*GroupBandStat, len(summaries))
			ordinals := make([][]int32, len(summaries))
			for r, s := range summaries {
				sum := s.(*algebra.GroupKeySummary)
				stats[r] = GroupStatOf(sum)
				ordinals[r] = sum.Ordinals
			}
			return &groupPlan{routing: PlanGroupRouting(stats, nb, e.statsOn), ordinals: ordinals}, nil
		},
		Partition: func(band int, df *core.DataFrame, plan any) ([]any, error) {
			p := plan.(*groupPlan)
			ords := p.ordinals[band]
			bucketOf := p.routing.BucketOf[band]
			assign := make([]int, len(ords))
			for i, d := range ords {
				assign[i] = int(bucketOf[d])
			}
			views, err := partition.SplitRows(df, assign, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b, v := range views {
				pieces[b] = v
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			p := plan.(*groupPlan)
			frames := make([]*core.DataFrame, len(pieces))
			for r, piece := range pieces {
				frames[r] = piece.(*core.DataFrame)
			}
			return MergeGroupBucket(e.pool, frames, spec, p.routing, bucket)
		},
	}
}

// mergeGroupPieces folds one bucket's routed pieces into its grouped frame.
// Dict-coded keys short-circuit to the typed code-indexed kernel
// (algebra.DictGroupFrames — the pieces are views over band slices of one
// shared category table, so the direct-code path applies). A bucket flagged
// heavy splits its pieces into contiguous chunks, builds a group partial per
// chunk in parallel, and recombines in chunk order — GroupPartial.Merge
// appends the right side's new groups after the left's, so the chunked fold
// reproduces the sequential first-appearance group order exactly.
func mergeGroupPieces(pool *exec.Pool, frames []*core.DataFrame, spec expr.GroupBySpec, heavy bool) (*core.DataFrame, error) {
	if out, ok, err := algebra.DictGroupFrames(frames, spec); ok || err != nil {
		return out, err
	}
	if heavy && len(frames) > 1 {
		chunks := pool.Workers()
		if chunks > len(frames) {
			chunks = len(frames)
		}
		if chunks < 2 {
			chunks = 2
		}
		cuts := bandCuts(len(frames), chunks)
		partials, err := exec.MapParallel(pool, chunks, func(c int) (*algebra.GroupPartial, error) {
			g := algebra.NewGroupPartial(spec)
			for _, f := range frames[cuts[c]:cuts[c+1]] {
				if err := g.AddFrame(f); err != nil {
					return nil, err
				}
			}
			return g, nil
		})
		if err != nil {
			return nil, err
		}
		g := partials[0]
		for _, o := range partials[1:] {
			g.Merge(o)
		}
		return g.Finalize()
	}
	g := algebra.NewGroupPartial(spec)
	for _, f := range frames {
		if err := g.AddFrame(f); err != nil {
			return nil, err
		}
	}
	return g.Finalize()
}

// joinProbeShuffle lowers an inner/left join to an anchored shuffle: the
// probe side's bands pass through unshuffled (preserving left row order
// exactly), while the build side is resolved once by the plan task and
// broadcast to every per-band probe merge. Band b's join lands as soon as
// band b's input and the build side exist — other probe bands may still be
// computing.
func (e *Engine) joinProbeShuffle(node *algebra.Join) *physical.Shuffle {
	return &physical.Shuffle{
		Name: "join",
		Plan: func(_ []any, sides []*partition.Frame) (any, error) {
			return sides[0].ToFrame()
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			return algebra.JoinFrames(pieces[0].(*core.DataFrame), plan.(*core.DataFrame),
				node.Kind, node.On, node.OnLabels)
		},
	}
}

// renumberShuffle resets row labels to one global positional sequence. It
// is an anchored shuffle with a PREFIX plan: band b's offset is the sum of
// the row counts of bands [0, b), so band b's relabel waits only on
// earlier bands — band 0 relabels the moment its own probe lands, and a
// data-column join keeps streaming through the relabel instead of
// barriering on its slowest band.
func (e *Engine) renumberShuffle() *physical.Shuffle {
	return &physical.Shuffle{
		Name: "renumber",
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return band.NRows(), nil
		},
		PrefixPlan: func(prefix []any) (any, error) {
			off := 0
			for _, s := range prefix {
				off += s.(int)
			}
			return off, nil
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			df := pieces[0].(*core.DataFrame)
			return df.WithRowLabels(vector.Range(int64(plan.(int)), df.NRows()))
		},
	}
}

package modin

import (
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/vector"
)

// This file builds the engine's shuffle stages: the two-phase
// partition→route→merge lowerings of GROUPBY (key shuffle), JOIN (anchored
// broadcast probe + renumber), and — in sort.go — SORT (range shuffle).
// Each produces one independent output-band future per bucket, so
// downstream fused stages start as soon as the band that feeds them lands.

// restoreMinBandRows is the smallest restored-groupby band worth its own
// downstream task: outputs smaller than this per band stay in fewer bands.
const restoreMinBandRows = 256

// bandCuts splits n items into nb roughly-equal contiguous ranges
// (mirroring the partition layer's band boundaries).
func bandCuts(n, nb int) []int {
	out := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		out[i] = i * n / nb
	}
	return out
}

// groupByShuffle lowers GROUPBY to a band-routed key shuffle. Routing
// hashes the typed key columns (vector.HashRows — no per-row rendering) and
// assigns bucket hash%buckets — a pure function of the key, identical in
// every band — so each band partitions from its OWN summary the moment it
// parses, with no all-band barrier (physical.Shuffle.BandRouting). The
// global plan fold (PlanGroupRouting, shared with the cluster coordinator)
// runs concurrently and gates only the merges: it hands each bucket its
// groups' ascending global first-appearance ranks, which MergeGroupBucket
// validates and tags onto the merged groups for the downstream restore pass
// (groupRestoreExchange) to interleave back into exact single-node order —
// same group order, same positional row labels.
// groupBandSummary splits a band's key summary for the two consumers of
// the summarize phase: the O(rows) ordinal table (sum) feeds only the
// band's own Partition call, while the O(distinct) stat half feeds the
// global plan fold. Partition drops sum once the band is routed — without
// the split, every band's ordinals stay pinned behind the plan future
// until end-of-scan, which alone is O(input rows) of heap on a streamed
// pass-through groupby. Partition writes sum, Plan reads stat: disjoint
// fields, so the concurrent tasks don't race.
type groupBandSummary struct {
	stat GroupBandStat
	sum  *algebra.GroupKeySummary
}

func (e *Engine) groupByShuffle(spec expr.GroupBySpec) *physical.Shuffle {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	nb := e.bands
	keys := spec.Keys
	return &physical.Shuffle{
		Name:        "groupby",
		Buckets:     nb,
		BandRouting: true,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			sum, err := algebra.SummarizeGroupKeys(band, keys)
			if err != nil {
				return nil, err
			}
			counts := make([]int64, len(sum.Hashes))
			for _, d := range sum.Ordinals {
				counts[d]++
			}
			return &groupBandSummary{
				stat: GroupBandStat{Hashes: sum.Hashes, Exemplars: sum.Exemplars, Counts: counts},
				sum:  sum,
			}, nil
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			// Folding the band summaries in band order reproduces the
			// single-node scan's first-appearance order.
			stats := make([]*GroupBandStat, len(summaries))
			for r, s := range summaries {
				stats[r] = &s.(*groupBandSummary).stat
			}
			return PlanGroupRouting(stats, nb, e.statsOn), nil
		},
		Partition: func(_ int, df *core.DataFrame, plan any) ([]any, error) {
			// Band routing: plan is this band's own key summary, nothing
			// global. hash%nb routes a key identically wherever it appears.
			gs := plan.(*groupBandSummary)
			sum := gs.sum
			gs.sum = nil // free the ordinals; only stat stays live for the plan fold
			assign := make([]int, len(sum.Ordinals))
			for i, d := range sum.Ordinals {
				assign[i] = int(sum.Hashes[d] % uint64(nb))
			}
			views, err := partition.SplitRows(df, assign, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b, v := range views {
				pieces[b] = v
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			// Pieces may arrive deferred (PieceSource) under a spill budget;
			// the fold resolves each one at consumption.
			return mergeGroupBucketPieces(e.pool, pieces, spec, plan.(*GroupRouting), bucket)
		},
	}
}

// groupRestoreExchange interleaves the merged groupby buckets back into
// global first-appearance group order. Each multi-bucket merge tagged its
// groups with their global ranks (GroupRankCol, always the last column); a
// single-bucket shuffle needs no repair and passes through. The k-way rank
// merge itself is RestoreGroupOrder (distrib.go), shared with the cluster
// coordinator.
// desc is resolved lazily — the description string is only rendered when a
// restore actually fails, not on every compile.
func (e *Engine) groupRestoreExchange(spec expr.GroupBySpec, desc func() string, shuffled *physical.Node) *physical.Node {
	asLabels := spec.AsLabels
	run := func(in []*partition.Frame) (*partition.Frame, error) {
		f := in[0]
		nb := f.RowBands()
		if nb == 1 {
			// One bucket: MergeGroupBucket already produced final order and
			// labels, with no rank column to strip.
			return f, nil
		}
		frames := make([]*core.DataFrame, nb)
		ranks := make([][]int64, nb)
		for b := 0; b < nb; b++ {
			df, err := f.RowBand(b)
			if err != nil {
				return nil, err
			}
			j := df.NCols() - 1
			ranks[b] = ordColumn(df.TypedCol(j))
			frames[b] = df.DropColumn(j)
		}
		out, err := RestoreGroupOrder(frames, ranks, asLabels)
		if err != nil {
			return nil, err
		}
		// Grouped outputs are usually O(distinct keys) rows; fanning a
		// handful of groups across every band costs more than it buys.
		bands := e.bands
		if max := (out.NRows() + restoreMinBandRows - 1) / restoreMinBandRows; max < bands {
			bands = max
		}
		return partition.New(out, partition.Rows, bands), nil
	}
	wrapped := func(in []*partition.Frame) (*partition.Frame, error) {
		out, err := run(in)
		if err != nil {
			return nil, describeErr(desc(), err)
		}
		return out, nil
	}
	return physical.NewExchange("groupby-restore", wrapped, shuffled)
}

// mergeGroupPieces folds one bucket's routed pieces into its grouped frame.
// When every piece is already resident, dict-coded keys short-circuit to
// the typed code-indexed kernel (algebra.DictGroupFrames — the pieces are
// views over band slices of one shared category table, so the direct-code
// path applies); deferred (PieceSource) pieces instead resolve one at a
// time as the fold consumes them, so a spilled bucket never re-materializes
// whole. A bucket flagged heavy splits its pieces into contiguous chunks,
// builds a group partial per chunk in parallel, and recombines in chunk
// order — GroupPartial.Merge appends the right side's new groups after the
// left's, so the chunked fold reproduces the sequential first-appearance
// group order exactly.
func mergeGroupPieces(pool *exec.Pool, pieces []any, spec expr.GroupBySpec, heavy bool) (*core.DataFrame, error) {
	if frames, eager := eagerFrames(pieces); eager {
		if out, ok, err := algebra.DictGroupFrames(frames, spec); ok || err != nil {
			return out, err
		}
	}
	if heavy && len(pieces) > 1 {
		chunks := pool.Workers()
		if chunks > len(pieces) {
			chunks = len(pieces)
		}
		if chunks < 2 {
			chunks = 2
		}
		cuts := bandCuts(len(pieces), chunks)
		partials, err := exec.MapParallel(pool, chunks, func(c int) (*algebra.GroupPartial, error) {
			g := algebra.NewGroupPartial(spec)
			for _, p := range pieces[cuts[c]:cuts[c+1]] {
				f, err := pieceFrame(p)
				if err != nil {
					return nil, err
				}
				if err := g.AddFrame(f); err != nil {
					return nil, err
				}
			}
			return g, nil
		})
		if err != nil {
			return nil, err
		}
		g := partials[0]
		for _, o := range partials[1:] {
			g.Merge(o)
		}
		return g.Finalize()
	}
	g := algebra.NewGroupPartial(spec)
	for _, p := range pieces {
		f, err := pieceFrame(p)
		if err != nil {
			return nil, err
		}
		if err := g.AddFrame(f); err != nil {
			return nil, err
		}
	}
	return g.Finalize()
}

// eagerFrames unwraps pieces when every one is already a resident frame —
// the gate for whole-bucket kernels like the dict short-circuit.
func eagerFrames(pieces []any) ([]*core.DataFrame, bool) {
	frames := make([]*core.DataFrame, len(pieces))
	for i, p := range pieces {
		f, ok := p.(*core.DataFrame)
		if !ok {
			return nil, false
		}
		frames[i] = f
	}
	return frames, true
}

// joinProbeShuffle lowers an inner/left join to an anchored shuffle: the
// probe side's bands pass through unshuffled (preserving left row order
// exactly), while the build side is resolved once by the plan task and
// broadcast to every per-band probe merge. Band b's join lands as soon as
// band b's input and the build side exist — other probe bands may still be
// computing.
func (e *Engine) joinProbeShuffle(node *algebra.Join) *physical.Shuffle {
	return &physical.Shuffle{
		Name: "join",
		Plan: func(_ []any, sides []*partition.Frame) (any, error) {
			return sides[0].ToFrame()
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			return algebra.JoinFrames(pieces[0].(*core.DataFrame), plan.(*core.DataFrame),
				node.Kind, node.On, node.OnLabels)
		},
	}
}

// renumberShuffle resets row labels to one global positional sequence. It
// is an anchored shuffle with a PREFIX plan: band b's offset is the sum of
// the row counts of bands [0, b), so band b's relabel waits only on
// earlier bands — band 0 relabels the moment its own probe lands, and a
// data-column join keeps streaming through the relabel instead of
// barriering on its slowest band.
func (e *Engine) renumberShuffle() *physical.Shuffle {
	return &physical.Shuffle{
		Name: "renumber",
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return band.NRows(), nil
		},
		PrefixPlan: func(prefix []any) (any, error) {
			off := 0
			for _, s := range prefix {
				off += s.(int)
			}
			return off, nil
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			df := pieces[0].(*core.DataFrame)
			return df.WithRowLabels(vector.Range(int64(plan.(int)), df.NRows()))
		},
	}
}

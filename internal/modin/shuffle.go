package modin

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// This file builds the engine's shuffle stages: the two-phase
// partition→route→merge lowerings of GROUPBY (key shuffle), JOIN (anchored
// broadcast probe + renumber), and — in sort.go — SORT (range shuffle).
// Each produces one independent output-band future per bucket, so
// downstream fused stages start as soon as the band that feeds them lands.

// bandCuts splits n items into nb roughly-equal contiguous ranges
// (mirroring the partition layer's band boundaries).
func bandCuts(n, nb int) []int {
	out := make([]int, nb+1)
	for i := 0; i <= nb; i++ {
		out[i] = i * n / nb
	}
	return out
}

// weightedCuts cuts the global group ranks into nb contiguous ranges of
// roughly equal ROW volume rather than equal group count: each bucket takes
// groups until it reaches its fair share of the remaining rows, so under
// key skew a hot key fills a bucket (nearly) by itself instead of dragging
// its whole even-count rank range into one overloaded merge.
func weightedCuts(counts []int64, nb int) []int {
	cuts := make([]int, nb+1)
	var remaining int64
	for _, c := range counts {
		remaining += c
	}
	g := 0
	for b := 0; b < nb; b++ {
		cuts[b] = g
		share := remaining / int64(nb-b)
		var acc int64
		for g < len(counts) && (acc == 0 || acc+counts[g] <= share) {
			acc += counts[g]
			g++
		}
		remaining -= acc
	}
	cuts[nb] = len(counts)
	return cuts
}

// groupPlan is the routing state shared by every groupby partition and
// merge task: each band's ordinal→bucket table, each bucket's global
// group-rank range, and the per-band row ordinals carried over from the
// summaries. Nothing here is a rendered key: group identity travels as
// small ints, with 64-bit hashes plus boxed exemplar tuples (one per
// distinct key, not per row) resolving identity across bands — hash
// collisions between distinct keys are broken by exemplar verification.
type groupPlan struct {
	starts   []int     // starts[b] is the global rank of bucket b's first group
	buckets  [][]int   // per band: band-ordinal → bucket
	ordinals [][]int32 // per band: row → band-ordinal
	heavy    []bool    // per bucket: owns a key above the fair row share (nil when stats are off)
}

// groupByShuffle lowers GROUPBY to a key shuffle. Routing hashes the typed
// key columns (vector.HashRows — no per-row rendering), but bucket
// assignment follows each key's GLOBAL first-appearance rank (computed by
// the plan phase from cheap per-band key summaries): bucket b owns the
// contiguous rank range [starts[b], starts[b+1]), so concatenating the
// merged buckets in order reproduces the ordered-dataframe groupby exactly
// — same group order, same positional row labels — while every output band
// stays an independent future.
func (e *Engine) groupByShuffle(spec expr.GroupBySpec) *physical.Shuffle {
	spec.Sorted = false // hashing per bucket; sortedness is a single-node optimization
	nb := e.bands
	keys := spec.Keys
	return &physical.Shuffle{
		Name:    "groupby",
		Buckets: nb,
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return algebra.SummarizeGroupKeys(band, keys)
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			// Folding the band orders in band order reproduces the
			// single-node scan's first-appearance order, which is what
			// keeps the shuffled result identical to the gather
			// implementation. Global group ids are assigned in that fold
			// order, so a key's id IS its first-appearance rank.
			p := &groupPlan{
				buckets:  make([][]int, len(summaries)),
				ordinals: make([][]int32, len(summaries)),
			}
			var exemplars [][]types.Value     // global id → key tuple
			index := make(map[uint64][]int32) // hash → global ids
			bandGlobal := make([][]int32, len(summaries))
			for r, s := range summaries {
				sum := s.(*algebra.GroupKeySummary)
				p.ordinals[r] = sum.Ordinals
				ids := make([]int32, len(sum.Hashes))
				for d, h := range sum.Hashes {
					gid := int32(-1)
					for _, cand := range index[h] {
						if algebra.KeyTuplesEqual(exemplars[cand], sum.Exemplars[d]) {
							gid = cand
							break
						}
					}
					if gid < 0 {
						gid = int32(len(exemplars))
						exemplars = append(exemplars, sum.Exemplars[d])
						index[h] = append(index[h], gid)
					}
					ids[d] = gid
				}
				bandGlobal[r] = ids
			}
			if e.statsOn {
				// Skew-aware planning: the summaries already carry exact
				// per-key row volumes (each band's ordinal table), so cut
				// bucket ranges by row share instead of group count, and
				// flag buckets owning a key above the fair per-band share —
				// their merges split across parallel partial-merge tasks.
				counts := make([]int64, len(exemplars))
				var total int64
				for r := range summaries {
					ids := bandGlobal[r]
					for _, d := range p.ordinals[r] {
						counts[ids[d]]++
						total++
					}
				}
				p.starts = weightedCuts(counts, nb)
				fair := total / int64(nb)
				p.heavy = make([]bool, nb)
				for b := 0; b < nb; b++ {
					for g := p.starts[b]; g < p.starts[b+1]; g++ {
						if counts[g] > fair {
							p.heavy[b] = true
							break
						}
					}
				}
			} else {
				p.starts = bandCuts(len(exemplars), nb)
			}
			// Global rank → bucket, then per band: band-ordinal → bucket.
			rankBucket := make([]int, len(exemplars))
			b := 0
			for rank := range rankBucket {
				for rank >= p.starts[b+1] {
					b++
				}
				rankBucket[rank] = b
			}
			for r, ids := range bandGlobal {
				bb := make([]int, len(ids))
				for d, gid := range ids {
					bb[d] = rankBucket[gid]
				}
				p.buckets[r] = bb
			}
			return p, nil
		},
		Partition: func(band int, df *core.DataFrame, plan any) ([]any, error) {
			p := plan.(*groupPlan)
			ords := p.ordinals[band]
			bucketOf := p.buckets[band]
			assign := make([]int, len(ords))
			for i, d := range ords {
				assign[i] = bucketOf[d]
			}
			views, err := partition.SplitRows(df, assign, nb)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, nb)
			for b, v := range views {
				pieces[b] = v
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, plan any) (*core.DataFrame, error) {
			p := plan.(*groupPlan)
			frames := make([]*core.DataFrame, len(pieces))
			for r, piece := range pieces {
				frames[r] = piece.(*core.DataFrame)
			}
			out, err := e.mergeGroupPieces(frames, spec, p.heavy != nil && p.heavy[bucket])
			if err != nil {
				return nil, err
			}
			lo, hi := p.starts[bucket], p.starts[bucket+1]
			if out.NRows() != hi-lo {
				return nil, fmt.Errorf("modin: groupby bucket %d produced %d groups, plan routed %d", bucket, out.NRows(), hi-lo)
			}
			if spec.AsLabels {
				return out, nil
			}
			// Positional labels are global: bucket b's groups occupy the
			// rank range [lo, hi), so the concatenated bands read 0..n-1.
			return out.WithRowLabels(vector.Range(int64(lo), out.NRows()))
		},
	}
}

// mergeGroupPieces folds one bucket's routed pieces into its grouped frame.
// Dict-coded keys short-circuit to the typed code-indexed kernel
// (algebra.DictGroupFrames — the pieces are views over band slices of one
// shared category table, so the direct-code path applies). A bucket flagged
// heavy splits its pieces into contiguous chunks, builds a group partial per
// chunk in parallel, and recombines in chunk order — GroupPartial.Merge
// appends the right side's new groups after the left's, so the chunked fold
// reproduces the sequential first-appearance group order exactly.
func (e *Engine) mergeGroupPieces(frames []*core.DataFrame, spec expr.GroupBySpec, heavy bool) (*core.DataFrame, error) {
	if out, ok, err := algebra.DictGroupFrames(frames, spec); ok || err != nil {
		return out, err
	}
	if heavy && len(frames) > 1 {
		chunks := e.pool.Workers()
		if chunks > len(frames) {
			chunks = len(frames)
		}
		if chunks < 2 {
			chunks = 2
		}
		cuts := bandCuts(len(frames), chunks)
		partials, err := exec.MapParallel(e.pool, chunks, func(c int) (*algebra.GroupPartial, error) {
			g := algebra.NewGroupPartial(spec)
			for _, f := range frames[cuts[c]:cuts[c+1]] {
				if err := g.AddFrame(f); err != nil {
					return nil, err
				}
			}
			return g, nil
		})
		if err != nil {
			return nil, err
		}
		g := partials[0]
		for _, o := range partials[1:] {
			g.Merge(o)
		}
		return g.Finalize()
	}
	g := algebra.NewGroupPartial(spec)
	for _, f := range frames {
		if err := g.AddFrame(f); err != nil {
			return nil, err
		}
	}
	return g.Finalize()
}

// joinProbeShuffle lowers an inner/left join to an anchored shuffle: the
// probe side's bands pass through unshuffled (preserving left row order
// exactly), while the build side is resolved once by the plan task and
// broadcast to every per-band probe merge. Band b's join lands as soon as
// band b's input and the build side exist — other probe bands may still be
// computing.
func (e *Engine) joinProbeShuffle(node *algebra.Join) *physical.Shuffle {
	return &physical.Shuffle{
		Name: "join",
		Plan: func(_ []any, sides []*partition.Frame) (any, error) {
			return sides[0].ToFrame()
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			return algebra.JoinFrames(pieces[0].(*core.DataFrame), plan.(*core.DataFrame),
				node.Kind, node.On, node.OnLabels)
		},
	}
}

// renumberShuffle resets row labels to one global positional sequence. It
// is an anchored shuffle with a PREFIX plan: band b's offset is the sum of
// the row counts of bands [0, b), so band b's relabel waits only on
// earlier bands — band 0 relabels the moment its own probe lands, and a
// data-column join keeps streaming through the relabel instead of
// barriering on its slowest band.
func (e *Engine) renumberShuffle() *physical.Shuffle {
	return &physical.Shuffle{
		Name: "renumber",
		Summarize: func(_ int, band *core.DataFrame) (any, error) {
			return band.NRows(), nil
		},
		PrefixPlan: func(prefix []any) (any, error) {
			off := 0
			for _, s := range prefix {
				off += s.(int)
			}
			return off, nil
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			df := pieces[0].(*core.DataFrame)
			return df.WithRowLabels(vector.Range(int64(plan.(int)), df.NRows()))
		},
	}
}

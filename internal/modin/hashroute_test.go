package modin

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vector"
)

// TestShuffleRoutingUnderForcedCollisions narrows every row-key hash to a
// single bit, so the groupby shuffle's plan task sees constant hash
// collisions between distinct keys across bands: the exemplar verification
// must still assign every key its own global rank and both engines must
// agree exactly (group order, aggregates, row labels).
func TestShuffleRoutingUnderForcedCollisions(t *testing.T) {
	restore := algebra.SetRowHashMaskForTesting(0x1)
	defer restore()
	df := testFrame(200)
	bothEngines(t, &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Keys: []string{"dept", "val"},
			Aggs: []expr.AggSpec{
				{Col: "score", Agg: expr.AggSum, As: "total"},
				{Col: "score", Agg: expr.AggCount, As: "n"},
			},
		},
	})
	bothEngines(t, &algebra.Join{
		Left:  &algebra.Source{DF: df},
		Right: &algebra.Source{DF: testFrame(40).SliceRows(0, 9)},
		Kind:  expr.JoinInner,
		On:    []string{"dept"},
	})
}

// TestShuffleGroupByNullVsNAKey routes a band-spanning frame whose key
// column holds both nulls and the literal string "NA" through the shuffled
// groupby: the hash summaries must keep them distinct and agree with the
// baseline engine.
func TestShuffleGroupByNullVsNAKey(t *testing.T) {
	const rows = 120
	data := make([]string, rows)
	nulls := make([]bool, rows)
	vals := make([]int64, rows)
	for i := range data {
		switch i % 4 {
		case 0:
			data[i] = "x"
		case 1:
			data[i] = "NA"
			nulls[i] = true // a true null
		case 2:
			data[i] = "NA" // the literal string
		case 3:
			data[i] = "y"
		}
		vals[i] = int64(i)
	}
	// Declare the key column Object: lazy induction at this cardinality
	// would pick Category, whose parse re-reads the literal "NA" as null —
	// a (pre-existing) parse-layer conflation this test is not about. With
	// the domain pinned, the cells flow to every task unchanged and group
	// identity is decided purely by the hash kernels.
	df := core.MustBuild(
		[]vector.Vector{vector.NewObject(data, nulls), vector.NewInt(vals, nil)},
		nil,
		[]types.Value{types.String("k"), types.String("v")},
		[]types.Domain{types.Object, types.Int},
		nil,
	)
	out := bothEngines(t, &algebra.GroupBy{
		Input: &algebra.Source{DF: df},
		Spec: expr.GroupBySpec{
			Keys: []string{"k"},
			Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggCount, As: "n"}},
		},
	})
	if out.NRows() != 4 {
		t.Fatalf("want 4 groups (x, null, \"NA\", y), got %d", out.NRows())
	}
	if !out.Value(1, 0).IsNull() {
		t.Error("second group key should be the null")
	}
	if got := out.Value(2, 0); !got.Equal(types.String("NA")) {
		t.Errorf("third group key should be the literal \"NA\", got %#v", got)
	}
}

// TestEnginesAgreeSelectionWhere runs the structured-predicate SELECTION on
// both engines (the kernel path fuses into MODIN band tasks).
func TestEnginesAgreeSelectionWhere(t *testing.T) {
	df := testFrame(100)
	w := expr.WhereNotNull("val").And("score", vector.CmpGt, types.FloatValue(2))
	out := bothEngines(t, &algebra.Selection{
		Input: &algebra.Source{DF: df},
		Where: w,
		Pred:  w.Predicate(),
	})
	want := algebra.SelectRows(df, w.Predicate())
	if out.NRows() != want.NRows() {
		t.Errorf("Where rows = %d, predicate fallback rows = %d", out.NRows(), want.NRows())
	}
}

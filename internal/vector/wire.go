package vector

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Columnar wire format: typed storage serialized as length-prefixed raw
// little-endian buffers, straight from the vectors' backing arrays — no
// per-cell boxing anywhere. This is the block encoding the cluster layer
// ships between the coordinator and dfworker processes.
//
// Layout per vector:
//
//	u8  kind           (wireObject..wireDict)
//	u32 n              (row count)
//	u8  hasNulls       followed, when 1, by ceil(n/8) bitmap bytes
//	payload            (kind-specific, see below)
//
// Payloads: Int/Datetime are n×8 bytes of little-endian int64; Float is
// n×8 bytes of IEEE-754 bits; Bool is n bytes; Object is a string table
// (u32 total byte length, n×u32 cell lengths, concatenated bytes); Dict is
// n×4 little-endian int32 codes followed by the category table encoded as
// a string table. Views are materialized before encoding, so decoded
// vectors always own flat storage.

const (
	wireObject = iota
	wireInt
	wireFloat
	wireBool
	wireDatetime
	wireDict
)

// AppendWire serializes v onto buf and returns the extended buffer.
// Composite (Any) vectors have no raw representation and are rejected —
// callers keep such frames on the in-process backend.
func AppendWire(buf []byte, v Vector) ([]byte, error) {
	v = Materialize(v)
	n := v.Len()
	switch t := v.(type) {
	case *Object:
		buf = wireHeader(buf, wireObject, n, t.nulls)
		return appendStringTable(buf, t.data), nil
	case *Int:
		buf = wireHeader(buf, wireInt, n, t.nulls)
		return appendInt64s(buf, t.data), nil
	case *Datetime:
		buf = wireHeader(buf, wireDatetime, n, t.nulls)
		return appendInt64s(buf, t.data), nil
	case *Float:
		buf = wireHeader(buf, wireFloat, n, t.nulls)
		for _, f := range t.data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case *Bool:
		buf = wireHeader(buf, wireBool, n, t.nulls)
		for _, b := range t.data {
			buf = append(buf, boolByte(b))
		}
		return buf, nil
	case *Dict:
		buf = wireHeader(buf, wireDict, n, t.nulls)
		for _, c := range t.codes {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
		}
		return appendStringTable(buf, t.dict), nil
	default:
		return nil, fmt.Errorf("vector: no wire form for %T (domain %v)", v, v.Domain())
	}
}

// DecodeWire decodes one vector off buf, returning it and the remaining
// bytes. Decoded vectors own their storage (nothing aliases buf except
// string bytes, which are immutable copies).
func DecodeWire(buf []byte) (Vector, []byte, error) {
	if len(buf) < 6 {
		return nil, nil, fmt.Errorf("vector: wire truncated (header)")
	}
	kind := buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	hasNulls := buf[5] == 1
	buf = buf[6:]
	var nulls []bool
	if hasNulls {
		nb := (n + 7) / 8
		if len(buf) < nb {
			return nil, nil, fmt.Errorf("vector: wire truncated (null bitmap)")
		}
		nulls = make([]bool, n)
		for i := 0; i < n; i++ {
			nulls[i] = buf[i/8]&(1<<(i%8)) != 0
		}
		buf = buf[nb:]
	}
	switch kind {
	case wireObject:
		data, rest, err := decodeStringTable(buf, n)
		if err != nil {
			return nil, nil, err
		}
		return &Object{data: data, nulls: nulls}, rest, nil
	case wireInt, wireDatetime:
		data, rest, err := decodeInt64s(buf, n)
		if err != nil {
			return nil, nil, err
		}
		if kind == wireInt {
			return &Int{data: data, nulls: nulls}, rest, nil
		}
		return &Datetime{data: data, nulls: nulls}, rest, nil
	case wireFloat:
		if len(buf) < n*8 {
			return nil, nil, fmt.Errorf("vector: wire truncated (float data)")
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		return &Float{data: data, nulls: nulls}, buf[n*8:], nil
	case wireBool:
		if len(buf) < n {
			return nil, nil, fmt.Errorf("vector: wire truncated (bool data)")
		}
		data := make([]bool, n)
		for i := range data {
			data[i] = buf[i] == 1
		}
		return &Bool{data: data, nulls: nulls}, buf[n:], nil
	case wireDict:
		if len(buf) < n*4 {
			return nil, nil, fmt.Errorf("vector: wire truncated (dict codes)")
		}
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		dict, rest, err := decodeStringTable(buf[n*4:], -1)
		if err != nil {
			return nil, nil, err
		}
		return &Dict{codes: codes, dict: dict, nulls: nulls}, rest, nil
	default:
		return nil, nil, fmt.Errorf("vector: unknown wire kind %d", kind)
	}
}

// wireHeader appends the kind byte, row count, and null bitmap.
func wireHeader(buf []byte, kind byte, n int, nulls []bool) []byte {
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	if nulls == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	nb := (n + 7) / 8
	start := len(buf)
	buf = append(buf, make([]byte, nb)...)
	for i, isNull := range nulls {
		if isNull {
			buf[start+i/8] |= 1 << (i % 8)
		}
	}
	return buf
}

func appendInt64s(buf []byte, data []int64) []byte {
	for _, x := range data {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
	}
	return buf
}

func decodeInt64s(buf []byte, n int) ([]int64, []byte, error) {
	if len(buf) < n*8 {
		return nil, nil, fmt.Errorf("vector: wire truncated (int data)")
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return data, buf[n*8:], nil
}

// appendStringTable encodes a string slice: u32 count, u32 total bytes,
// n×u32 lengths, concatenated bytes.
func appendStringTable(buf []byte, data []string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	total := 0
	for _, s := range data {
		total += len(s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	for _, s := range data {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	}
	for _, s := range data {
		buf = append(buf, s...)
	}
	return buf
}

// decodeStringTable decodes a string table; want >= 0 additionally checks
// the declared count.
func decodeStringTable(buf []byte, want int) ([]string, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("vector: wire truncated (string table header)")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	total := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if want >= 0 && n != want {
		return nil, nil, fmt.Errorf("vector: string table has %d cells, want %d", n, want)
	}
	if len(buf) < n*4+total {
		return nil, nil, fmt.Errorf("vector: wire truncated (string table)")
	}
	lens := make([]int, n)
	sum := 0
	for i := range lens {
		lens[i] = int(binary.LittleEndian.Uint32(buf[i*4:]))
		sum += lens[i]
	}
	if sum != total {
		return nil, nil, fmt.Errorf("vector: string table lengths sum %d, declared %d", sum, total)
	}
	buf = buf[n*4:]
	// One copy detaches every cell from the wire buffer.
	blob := string(buf[:total])
	data := make([]string, n)
	off := 0
	for i, l := range lens {
		data[i] = blob[off : off+l]
		off += l
	}
	return data, buf[total:], nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Clone deep-copies v's storage so the result shares nothing with v's
// backing arrays. Views are materialized (already a copy); flat vectors
// copy data and null masks. Dict clones share the immutable category
// table. Spill-aware shuffles clone routed slice pieces so a piece stops
// pinning the band it was sliced from.
func Clone(v Vector) Vector {
	m := Materialize(v)
	if m != v {
		return m // materialization already produced owned storage
	}
	switch t := v.(type) {
	case *Object:
		return &Object{data: append([]string(nil), t.data...), nulls: cloneMask(t.nulls)}
	case *Int:
		return &Int{data: append([]int64(nil), t.data...), nulls: cloneMask(t.nulls)}
	case *Float:
		return &Float{data: append([]float64(nil), t.data...), nulls: cloneMask(t.nulls)}
	case *Bool:
		return &Bool{data: append([]bool(nil), t.data...), nulls: cloneMask(t.nulls)}
	case *Datetime:
		return &Datetime{data: append([]int64(nil), t.data...), nulls: cloneMask(t.nulls)}
	case *Dict:
		return &Dict{codes: append([]int32(nil), t.codes...), dict: t.dict, nulls: cloneMask(t.nulls)}
	case *Any:
		return &Any{data: append([]types.Value(nil), t.data...)}
	default:
		return v
	}
}

func cloneMask(nulls []bool) []bool {
	if nulls == nil {
		return nil
	}
	return append([]bool(nil), nulls...)
}

package vector

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randNulls draws a null mask: nil (no nulls), sparse, or all-null — the
// three shapes the codec treats differently.
func randNulls(r *rand.Rand, n int) []bool {
	switch r.Intn(3) {
	case 0:
		return nil
	case 1:
		nulls := make([]bool, n)
		for i := range nulls {
			nulls[i] = r.Intn(4) == 0
		}
		return nulls
	default:
		nulls := make([]bool, n)
		for i := range nulls {
			nulls[i] = true
		}
		return nulls
	}
}

// randVector draws one random vector of any wire-encodable kind, including
// empty vectors and values at the domain edges.
func randVector(r *rand.Rand, n int) Vector {
	nulls := randNulls(r, n)
	switch r.Intn(6) {
	case 0:
		data := make([]string, n)
		for i := range data {
			data[i] = randString(r)
		}
		return NewObject(data, nulls)
	case 1:
		data := make([]int64, n)
		for i := range data {
			data[i] = randInt64(r)
		}
		return NewInt(data, nulls)
	case 2:
		data := make([]float64, n)
		for i := range data {
			switch r.Intn(5) {
			case 0:
				data[i] = math.Inf(1 - 2*r.Intn(2))
			case 1:
				data[i] = 0
			default:
				data[i] = r.NormFloat64() * 1e6
			}
		}
		return NewFloat(data, nulls)
	case 3:
		data := make([]bool, n)
		for i := range data {
			data[i] = r.Intn(2) == 0
		}
		return NewBool(data, nulls)
	case 4:
		data := make([]int64, n)
		for i := range data {
			data[i] = randInt64(r)
		}
		return NewDatetime(data, nulls)
	default:
		ncat := r.Intn(5) + 1
		dict := make([]string, ncat)
		for i := range dict {
			dict[i] = fmt.Sprintf("cat-%d-%s", i, randString(r))
		}
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(r.Intn(ncat))
		}
		return NewDict(codes, dict, nulls)
	}
}

func randInt64(r *rand.Rand) int64 {
	switch r.Intn(4) {
	case 0:
		return math.MaxInt64
	case 1:
		return math.MinInt64
	default:
		return r.Int63() - r.Int63()
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte(r.Intn(256)) // arbitrary bytes, not just printable
	}
	return string(b)
}

// TestWireRoundTripProperty drives AppendWire/DecodeWire over hundreds of
// random vectors of every kind (with empty, all-null, and no-null masks)
// and checks the three codec invariants: decode(encode(v)) is Equal to v
// in the same domain, the decoder consumes exactly what the encoder wrote,
// and re-encoding a decoded vector is byte-identical (the stability the
// shuffle relies on when a re-submitted band's blocks are compared against
// kept ones).
func TestWireRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := r.Intn(40)
		if iter%10 == 0 {
			n = 0 // force the empty case often
		}
		v := randVector(r, n)
		enc, err := AppendWire(nil, v)
		if err != nil {
			t.Fatalf("iter %d: encode %T: %v", iter, v, err)
		}
		dec, rest, err := DecodeWire(enc)
		if err != nil {
			t.Fatalf("iter %d: decode %T: %v", iter, v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d trailing bytes after decoding %T", iter, len(rest), v)
		}
		if dec.Domain() != v.Domain() {
			t.Fatalf("iter %d: domain %v → %v", iter, v.Domain(), dec.Domain())
		}
		if !Equal(v, dec) {
			t.Fatalf("iter %d: %T not Equal after round trip", iter, v)
		}
		re, err := AppendWire(nil, dec)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", iter, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("iter %d: %T encoding not byte-stable", iter, v)
		}
	}
}

// TestWireSlicedDictSharedTable covers the subtle Dict case: two slice
// windows over one vector share a category table in memory; each window
// must encode self-contained (full table, windowed codes) and decode Equal
// to the window, not the parent.
func TestWireSlicedDictSharedTable(t *testing.T) {
	parent := NewDict(
		[]int32{0, 1, 2, 1, 0, 2, 2, 1},
		[]string{"red", "green", "blue"},
		[]bool{false, false, true, false, false, false, true, false},
	)
	a, b := parent.Slice(0, 4), parent.Slice(4, 8)
	for i, w := range []Vector{a, b} {
		enc, err := AppendWire(nil, w)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		dec, rest, err := DecodeWire(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("window %d: decode err=%v rest=%d", i, err, len(rest))
		}
		if !Equal(w, dec) {
			t.Fatalf("window %d not Equal after round trip", i)
		}
		if got := dec.(*Dict).Categories(); len(got) != 3 {
			t.Fatalf("window %d decoded %d categories, want the full shared table", i, len(got))
		}
	}
}

// TestWireConcatBytes appends several vectors to one buffer and decodes
// them back in order — the shape EncodeFrame produces.
func TestWireConcatBytes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vs := make([]Vector, 6)
	var buf []byte
	var err error
	for i := range vs {
		vs[i] = randVector(r, r.Intn(20))
		buf, err = AppendWire(buf, vs[i])
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	rest := buf
	for i, want := range vs {
		var dec Vector
		dec, rest, err = DecodeWire(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !Equal(want, dec) {
			t.Fatalf("vector %d not Equal in concatenated buffer", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

// FuzzDecodeWire feeds arbitrary bytes to the decoder: it must reject or
// decode, never panic, and anything it accepts must be byte-stable —
// enc(dec(x)) must itself decode to the same encoding. (Byte equality
// rather than Equal so NaN float payloads, where x != x, still count as
// stable: the bit pattern survives even though value comparison cannot.)
func FuzzDecodeWire(f *testing.F) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		enc, err := AppendWire(nil, randVector(r, r.Intn(16)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{wireDict, 0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := DecodeWire(data)
		if err != nil {
			return
		}
		enc, err := AppendWire(nil, v)
		if err != nil {
			t.Fatalf("decoded vector %T does not re-encode: %v", v, err)
		}
		dec, rest, err := DecodeWire(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-encoded vector does not decode cleanly: err=%v rest=%d", err, len(rest))
		}
		re, err := AppendWire(nil, dec)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatal("accepted vector not byte-stable under encode/decode")
		}
	})
}

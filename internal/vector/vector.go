// Package vector provides the columnar storage layer beneath the dataframe
// data model: typed, immutable vectors with null bitmaps, builders, and the
// bulk kernels (slice, take, concat) the algebra operators are built on.
//
// A dataframe column is one vector; the paper's raw Σ* array Amn corresponds
// to Object vectors, and the parsed form produced by a parsing function p_i
// corresponds to the typed vectors here.
package vector

import (
	"fmt"

	"repro/internal/types"
)

// Vector is an immutable, typed column of values with a null mask.
//
// Implementations are append-only via Builder; operators produce new vectors
// rather than mutating, which is what lets partitions be shared between
// dataframes without copies.
type Vector interface {
	// Len returns the number of entries.
	Len() int
	// Domain returns the domain of the vector's entries.
	Domain() types.Domain
	// Value returns the i'th entry (possibly the domain's null).
	Value(i int) types.Value
	// IsNull reports whether the i'th entry is null.
	IsNull(i int) bool
	// Slice returns the subvector [lo, hi). The result may share storage
	// with the receiver.
	Slice(lo, hi int) Vector
	// Take returns a new vector with the entries at the given positions,
	// in the given order. Positions of -1 produce nulls (used by outer
	// joins and reindexing).
	Take(idx []int) Vector
}

// nullCounter is implemented by vectors that can report their null count
// directly from storage (O(1) for null-free vectors, one mask scan
// otherwise) instead of an interface call per entry.
type nullCounter interface{ NullCount() int }

// NullCount returns the number of null entries in v, using the vector's
// direct count when available.
func NullCount(v Vector) int {
	if c, ok := v.(nullCounter); ok {
		return c.NullCount()
	}
	n := 0
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			n++
		}
	}
	return n
}

// countMask counts set entries of a null mask (nil masks count zero).
func countMask(nulls []bool) int {
	n := 0
	for _, b := range nulls {
		if b {
			n++
		}
	}
	return n
}

// Values materializes the vector as a slice of Values.
func Values(v Vector) []types.Value {
	out := make([]types.Value, v.Len())
	for i := range out {
		out[i] = v.Value(i)
	}
	return out
}

// Strings renders every entry of v as its string form (nulls as "NA").
func Strings(v Vector) []string {
	out := make([]string, v.Len())
	for i := range out {
		out[i] = v.Value(i).String()
	}
	return out
}

// FromValues builds a vector in domain d from the given values, coercing
// each value through the domain when necessary.
func FromValues(d types.Domain, vals []types.Value) Vector {
	b := NewBuilder(d, len(vals))
	for _, v := range vals {
		b.Append(v)
	}
	return b.Build()
}

// Concat concatenates the vectors in order. All inputs must share a domain
// unless one of them is Object, in which case the result falls back to
// Object. Concat of zero vectors returns an empty Object vector.
func Concat(vs ...Vector) Vector {
	if len(vs) == 0 {
		return NewObjectBuilder(0).Build()
	}
	dom := vs[0].Domain()
	total := 0
	for _, v := range vs {
		total += v.Len()
		if v.Domain() != dom {
			dom = types.Object
		}
	}
	if out, ok := concatTyped(vs, total); ok {
		return out
	}
	b := NewBuilder(dom, total)
	for _, v := range vs {
		for i := 0; i < v.Len(); i++ {
			b.Append(v.Value(i))
		}
	}
	return b.Build()
}

// concatTyped concatenates same-representation inputs by copying storage
// slices — no boxing. It covers the homogeneous cases the shuffle merge and
// gather paths produce (including Dict inputs sharing one category table);
// anything mixed, viewed, or composite reports !ok and takes the builder
// path.
func concatTyped(vs []Vector, total int) (Vector, bool) {
	switch vs[0].(type) {
	case *Int:
		data := make([]int64, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Int)
			if !ok {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(data), c.Len())
			data = append(data, c.data...)
		}
		return NewInt(data, padMask(nulls, total)), true
	case *Float:
		data := make([]float64, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Float)
			if !ok {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(data), c.Len())
			data = append(data, c.data...)
		}
		return NewFloat(data, padMask(nulls, total)), true
	case *Bool:
		data := make([]bool, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Bool)
			if !ok {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(data), c.Len())
			data = append(data, c.data...)
		}
		return NewBool(data, padMask(nulls, total)), true
	case *Datetime:
		data := make([]int64, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Datetime)
			if !ok {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(data), c.Len())
			data = append(data, c.data...)
		}
		return NewDatetime(data, padMask(nulls, total)), true
	case *Object:
		data := make([]string, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Object)
			if !ok {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(data), c.Len())
			data = append(data, c.data...)
		}
		return NewObject(data, padMask(nulls, total)), true
	case *Dict:
		first := vs[0].(*Dict)
		codes := make([]int32, 0, total)
		var nulls []bool
		for _, v := range vs {
			c, ok := v.(*Dict)
			if !ok || !SameDict(first.dict, c.dict) {
				return nil, false
			}
			nulls = appendMask(nulls, c.nulls, len(codes), c.Len())
			codes = append(codes, c.codes...)
		}
		return NewDict(codes, first.dict, padMask(nulls, total)), true
	}
	return nil, false
}

// appendMask accumulates a concatenated null mask lazily: nil until the
// first non-nil input mask, then padded to stay aligned with the data.
func appendMask(acc, mask []bool, off, n int) []bool {
	if mask == nil {
		if acc != nil {
			acc = append(acc, make([]bool, n)...)
		}
		return acc
	}
	if acc == nil {
		acc = make([]bool, off, off+n)
	}
	return append(acc, mask...)
}

// padMask extends a partial mask to the full length (nil stays nil: no
// nulls anywhere).
func padMask(mask []bool, total int) []bool {
	if mask == nil {
		return nil
	}
	for len(mask) < total {
		mask = append(mask, false)
	}
	return mask
}

// Equal reports whether two vectors have the same length, and pairwise-equal
// entries (domains may differ if the values compare equal across domains).
func Equal(a, b Vector) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Value(i).Equal(b.Value(i)) {
			return false
		}
	}
	return true
}

// Repeat returns a vector of n copies of v.
func Repeat(v types.Value, n int) Vector {
	b := NewBuilder(v.Domain(), n)
	for i := 0; i < n; i++ {
		b.Append(v)
	}
	return b.Build()
}

// Nulls returns a vector of n nulls in domain d.
func Nulls(d types.Domain, n int) Vector {
	b := NewBuilder(d, n)
	for i := 0; i < n; i++ {
		b.AppendNull()
	}
	return b.Build()
}

// Range returns an Int vector [start, start+n).
func Range(start int64, n int) Vector {
	data := make([]int64, n)
	for i := range data {
		data[i] = start + int64(i)
	}
	return NewInt(data, nil)
}

func checkSlice(length, lo, hi int) {
	if lo < 0 || hi > length || lo > hi {
		panic(fmt.Sprintf("vector: slice [%d:%d) out of range for length %d", lo, hi, length))
	}
}

// takeNulls computes the null mask for a Take over the given mask, treating
// index -1 as null.
func takeNulls(nulls []bool, idx []int) []bool {
	var out []bool
	for j, i := range idx {
		if i == -1 || (nulls != nil && nulls[i]) {
			if out == nil {
				out = make([]bool, len(idx))
			}
			out[j] = true
		}
	}
	return out
}

func sliceNulls(nulls []bool, lo, hi int) []bool {
	if nulls == nil {
		return nil
	}
	return nulls[lo:hi]
}

package vector

import (
	"strings"

	"repro/internal/types"
)

// Comparison kernels for SORT, TOPK and range-shuffle routing: ordering two
// cells without boxing them into types.Value. All three functions implement
// exactly the ordering of types.Value.Compare — nulls first, numerics by
// magnitude across domains, strings lexicographically — so switching a sort
// from Value(i).Compare to these kernels cannot reorder anything.

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}

// CompareRows orders entry i of a against entry j of b: -1, 0 or +1. The
// common same-representation cases compare on the storage slices; everything
// else falls back to the boxed comparison.
func CompareRows(a Vector, i int, b Vector, j int) int {
	an, bn := a.IsNull(i), b.IsNull(j)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	switch ca := a.(type) {
	case *Int:
		switch cb := b.(type) {
		case *Int:
			return cmpInt64(ca.data[i], cb.data[j])
		case *Float:
			return cmpFloat64(float64(ca.data[i]), cb.data[j])
		}
	case *Float:
		switch cb := b.(type) {
		case *Float:
			return cmpFloat64(ca.data[i], cb.data[j])
		case *Int:
			return cmpFloat64(ca.data[i], float64(cb.data[j]))
		}
	case *Bool:
		if cb, ok := b.(*Bool); ok {
			return cmpBool(ca.data[i], cb.data[j])
		}
	case *Datetime:
		if cb, ok := b.(*Datetime); ok {
			return cmpInt64(ca.data[i], cb.data[j])
		}
	case *Object:
		switch cb := b.(type) {
		case *Object:
			return strings.Compare(ca.data[i], cb.data[j])
		case *Dict:
			return strings.Compare(ca.data[i], cb.dict[cb.codes[j]])
		}
	case *Dict:
		switch cb := b.(type) {
		case *Dict:
			return strings.Compare(ca.dict[ca.codes[i]], cb.dict[cb.codes[j]])
		case *Object:
			return strings.Compare(ca.dict[ca.codes[i]], cb.data[j])
		}
	}
	return a.Value(i).Compare(b.Value(j))
}

// CompareRowValue orders entry i of v against the boxed value val. It is
// the mixed form used when one side is already boxed (range bounds, sort
// samples) and the other side is a storage row.
func CompareRowValue(v Vector, i int, val types.Value) int {
	vn, on := v.IsNull(i), val.IsNull()
	switch {
	case vn && on:
		return 0
	case vn:
		return -1
	case on:
		return 1
	}
	switch c := v.(type) {
	case *Int:
		switch val.Domain() {
		case types.Int:
			return cmpInt64(c.data[i], val.Int())
		case types.Float, types.Bool:
			return cmpFloat64(float64(c.data[i]), val.Float())
		}
	case *Float:
		if val.Domain().Numeric() {
			return cmpFloat64(c.data[i], val.Float())
		}
	case *Bool:
		if val.Domain() == types.Bool {
			return cmpBool(c.data[i], val.Bool())
		}
		if val.Domain().Numeric() {
			f := 0.0
			if c.data[i] {
				f = 1
			}
			return cmpFloat64(f, val.Float())
		}
	case *Datetime:
		if val.Domain() == types.Datetime {
			return cmpInt64(c.data[i], val.Int())
		}
	case *Object:
		if d := val.Domain(); d == types.Object || d == types.Category {
			return strings.Compare(c.data[i], val.Str())
		}
	case *Dict:
		if d := val.Domain(); d == types.Object || d == types.Category {
			return strings.Compare(c.dict[c.codes[i]], val.Str())
		}
	}
	return v.Value(i).Compare(val)
}

// CompareAsc writes sign(compare(a[i], b[i])) into dst for every position:
// the bulk elementwise comparison kernel. dst must have the vectors' shared
// length.
func CompareAsc(dst []int8, a, b Vector) {
	for i := range dst {
		dst[i] = int8(CompareRows(a, i, b, i))
	}
}

package vector

import (
	"math"
	"strings"

	"repro/internal/types"
)

// Typed filter kernels for SELECTION: column-op-constant predicates applied
// directly to the storage slices, producing the surviving row positions
// without constructing a types.Value per cell. The expr layer compiles
// structured predicates down to these; opaque func(Row) predicates keep the
// row-at-a-time path.
//
// Null semantics (shared with expr.Where and its opaque fallback): a null
// cell matches CmpEq only when the operand is itself null, matches CmpNe
// never, and never satisfies an ordering comparison. A null operand matches
// nulls under CmpEq, non-nulls under CmpNe, and nothing under orderings.

// CmpOp is a comparison operator of a structured predicate.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Accept reports whether a three-way comparison result (-1, 0, +1)
// satisfies the operator.
func (op CmpOp) Accept(c int) bool { return op.take(c) }

// take reports whether a three-way comparison result satisfies the operator.
func (op CmpOp) take(c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// forEach iterates the candidate positions: sel when non-nil, else [0, n).
func forEach(n int, sel []int, fn func(i int)) {
	if sel != nil {
		for _, i := range sel {
			fn(i)
		}
		return
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func selCap(n int, sel []int) int {
	if sel != nil {
		return len(sel)
	}
	return n
}

// FilterInt applies op against an int64 operand over raw Int (or Datetime
// nanosecond) storage, appending surviving positions from sel (nil = every
// position) to a fresh selection.
func FilterInt(data []int64, nulls []bool, op CmpOp, operand int64, sel []int) []int {
	out := make([]int, 0, selCap(len(data), sel))
	forEach(len(data), sel, func(i int) {
		if nulls != nil && nulls[i] {
			return
		}
		if op.take(cmpInt64(data[i], operand)) {
			out = append(out, i)
		}
	})
	return out
}

// FilterFloat applies op against a float64 operand over raw Float storage.
// NaN payloads read as null (Float.Value's canonicalization) and never
// match.
func FilterFloat(data []float64, nulls []bool, op CmpOp, operand float64, sel []int) []int {
	out := make([]int, 0, selCap(len(data), sel))
	forEach(len(data), sel, func(i int) {
		if (nulls != nil && nulls[i]) || math.IsNaN(data[i]) {
			return
		}
		if op.take(cmpFloat64(data[i], operand)) {
			out = append(out, i)
		}
	})
	return out
}

// FilterIntAsFloat compares int64 storage against a non-integral operand
// (fare < 2.5 over an int column) in float space.
func FilterIntAsFloat(data []int64, nulls []bool, op CmpOp, operand float64, sel []int) []int {
	out := make([]int, 0, selCap(len(data), sel))
	forEach(len(data), sel, func(i int) {
		if nulls != nil && nulls[i] {
			return
		}
		if op.take(cmpFloat64(float64(data[i]), operand)) {
			out = append(out, i)
		}
	})
	return out
}

// FilterBool applies op against a bool operand over raw Bool storage
// (false < true).
func FilterBool(data []bool, nulls []bool, op CmpOp, operand bool, sel []int) []int {
	out := make([]int, 0, selCap(len(data), sel))
	forEach(len(data), sel, func(i int) {
		if nulls != nil && nulls[i] {
			return
		}
		if op.take(cmpBool(data[i], operand)) {
			out = append(out, i)
		}
	})
	return out
}

// FilterString applies op against a string operand over raw Object storage.
func FilterString(data []string, nulls []bool, op CmpOp, operand string, sel []int) []int {
	out := make([]int, 0, selCap(len(data), sel))
	forEach(len(data), sel, func(i int) {
		if nulls != nil && nulls[i] {
			return
		}
		if op.take(strings.Compare(data[i], operand)) {
			out = append(out, i)
		}
	})
	return out
}

// FilterDict applies op over dictionary codes: the operand is compared once
// per distinct dictionary entry, then every row is a table lookup — the
// dictionary-encoding fast path.
func FilterDict(codes []int32, dict []string, nulls []bool, op CmpOp, operand string, sel []int) []int {
	match := make([]bool, len(dict))
	for c, s := range dict {
		match[c] = op.take(strings.Compare(s, operand))
	}
	out := make([]int, 0, selCap(len(codes), sel))
	forEach(len(codes), sel, func(i int) {
		if nulls != nil && nulls[i] {
			return
		}
		if match[codes[i]] {
			out = append(out, i)
		}
	})
	return out
}

// nullMask returns the raw null mask of a typed vector (nil when the vector
// has no nulls), and whether the vector exposes one. Float is excluded: an
// unmasked NaN payload also reads as null there, so its null-ness is not
// fully described by the mask — Float callers go through IsNull.
func nullMask(v Vector) ([]bool, bool) {
	switch c := v.(type) {
	case *Object:
		return c.nulls, true
	case *Int:
		return c.nulls, true
	case *Bool:
		return c.nulls, true
	case *Datetime:
		return c.nulls, true
	case *Dict:
		return c.nulls, true
	}
	return nil, false
}

// FilterNotNull returns the non-null positions among sel (nil = all).
func FilterNotNull(v Vector, sel []int) []int {
	if nulls, ok := nullMask(v); ok {
		if nulls == nil {
			if sel != nil {
				return sel
			}
			out := make([]int, v.Len())
			for i := range out {
				out[i] = i
			}
			return out
		}
		out := make([]int, 0, selCap(len(nulls), sel))
		forEach(len(nulls), sel, func(i int) {
			if !nulls[i] {
				out = append(out, i)
			}
		})
		return out
	}
	out := make([]int, 0, selCap(v.Len(), sel))
	forEach(v.Len(), sel, func(i int) {
		if !v.IsNull(i) {
			out = append(out, i)
		}
	})
	return out
}

// FilterNull returns the null positions among sel (nil = all).
func FilterNull(v Vector, sel []int) []int {
	out := make([]int, 0, selCap(v.Len(), sel))
	if nulls, ok := nullMask(v); ok {
		if nulls == nil {
			return out
		}
		forEach(len(nulls), sel, func(i int) {
			if nulls[i] {
				out = append(out, i)
			}
		})
		return out
	}
	forEach(v.Len(), sel, func(i int) {
		if v.IsNull(i) {
			out = append(out, i)
		}
	})
	return out
}

// Filter applies a column-op-constant comparison over v, returning the
// surviving positions among sel (nil = all) and whether a typed kernel
// applied. ok=false means the caller must use the boxed fallback — the
// semantics are unusual enough (cross-representation operand, Composite
// column) that no storage kernel exists.
func Filter(v Vector, op CmpOp, operand types.Value, sel []int) ([]int, bool) {
	if operand.IsNull() {
		switch op {
		case CmpEq:
			return FilterNull(v, sel), true
		case CmpNe:
			return FilterNotNull(v, sel), true
		default:
			return make([]int, 0), true
		}
	}
	switch c := v.(type) {
	case *Int:
		switch operand.Domain() {
		case types.Int:
			return FilterInt(c.data, c.nulls, op, operand.Int(), sel), true
		case types.Float, types.Bool:
			return FilterIntAsFloat(c.data, c.nulls, op, operand.Float(), sel), true
		}
	case *Float:
		if operand.Domain().Numeric() {
			return FilterFloat(c.data, c.nulls, op, operand.Float(), sel), true
		}
	case *Bool:
		switch operand.Domain() {
		case types.Bool:
			return FilterBool(c.data, c.nulls, op, operand.Bool(), sel), true
		}
	case *Datetime:
		if operand.Domain() == types.Datetime {
			return FilterInt(c.data, c.nulls, op, operand.Int(), sel), true
		}
	case *Object:
		if d := operand.Domain(); d == types.Object || d == types.Category {
			return FilterString(c.data, c.nulls, op, operand.Str(), sel), true
		}
	case *Dict:
		if d := operand.Domain(); d == types.Object || d == types.Category {
			return FilterDict(c.codes, c.dict, c.nulls, op, operand.Str(), sel), true
		}
	}
	return nil, false
}

package vector

import (
	"math"

	"repro/internal/types"
)

// This file exposes typed storage through at most one level of selection
// view. The shuffle partition phase routes rows with zero-copy views
// (TakeView), which hides the concrete column type from downstream typed
// kernels — dictionary-aware grouping and the statistics collector need the
// raw slices back without materializing. Each accessor returns the base
// storage plus an optional selection index: idx == nil means entry i reads
// storage position i; otherwise entry i reads position idx[i], and idx[i] < 0
// means null (mirroring Take).

// IntData returns the int64 storage behind v when v is an *Int or a view of
// one. The nulls mask (may be nil) indexes the base storage, not the view.
func IntData(v Vector) (data []int64, nulls []bool, idx []int, ok bool) {
	switch c := v.(type) {
	case *Int:
		return c.data, c.nulls, nil, true
	case *view:
		if b, bok := c.base.(*Int); bok {
			return b.data, b.nulls, c.idx, true
		}
	}
	return nil, nil, nil, false
}

// FloatData returns the float64 storage behind v when v is a *Float or a
// view of one. Callers must treat NaN entries as null, like Float.Value.
func FloatData(v Vector) (data []float64, nulls []bool, idx []int, ok bool) {
	switch c := v.(type) {
	case *Float:
		return c.data, c.nulls, nil, true
	case *view:
		if b, bok := c.base.(*Float); bok {
			return b.data, b.nulls, c.idx, true
		}
	}
	return nil, nil, nil, false
}

// DictData returns the code and dictionary storage behind v when v is a
// *Dict or a view of one. The returned dict slice is the shared category
// table itself — SameDict on two results detects columns that can be grouped
// or joined directly on int32 codes.
func DictData(v Vector) (codes []int32, dict []string, nulls []bool, idx []int, ok bool) {
	switch c := v.(type) {
	case *Dict:
		return c.codes, c.dict, c.nulls, nil, true
	case *view:
		if b, bok := c.base.(*Dict); bok {
			return b.codes, b.dict, b.nulls, c.idx, true
		}
	}
	return nil, nil, nil, nil, false
}

// SameDict reports whether two category tables are the same backing array,
// the precondition for grouping on raw codes across columns.
func SameDict(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// MinMax scans v once and returns its minimum and maximum non-null values
// under types.Value.Compare. Both are null when v has no non-null entries.
// Typed vectors compare on the storage slices; views and Composite fall back
// to boxed comparison.
func MinMax(v Vector) (types.Value, types.Value) {
	switch c := v.(type) {
	case *Int:
		return minMaxInt64(c.data, c.nulls, types.Int, types.IntValue)
	case *Datetime:
		return minMaxInt64(c.data, c.nulls, types.Datetime, types.DatetimeFromNanos)
	case *Float:
		lo, hi := math.Inf(1), math.Inf(-1)
		seen := false
		for i, x := range c.data {
			if (c.nulls != nil && c.nulls[i]) || math.IsNaN(x) {
				continue
			}
			if !seen || x < lo {
				lo = x
			}
			if !seen || x > hi {
				hi = x
			}
			seen = true
		}
		if !seen {
			return types.NullValue(types.Float), types.NullValue(types.Float)
		}
		return types.FloatValue(lo), types.FloatValue(hi)
	case *Object:
		return minMaxStrings(c.data, c.nulls, types.Object)
	case *Dict:
		lo, hi := "", ""
		seen := false
		for i, code := range c.codes {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			s := c.dict[code]
			if !seen || s < lo {
				lo = s
			}
			if !seen || s > hi {
				hi = s
			}
			seen = true
		}
		if !seen {
			return types.NullValue(types.Category), types.NullValue(types.Category)
		}
		return types.CategoryValue(lo), types.CategoryValue(hi)
	default:
		lo, hi := types.NullValue(v.Domain()), types.NullValue(v.Domain())
		for i := 0; i < v.Len(); i++ {
			if v.IsNull(i) {
				continue
			}
			val := v.Value(i)
			if lo.IsNull() || val.Less(lo) {
				lo = val
			}
			if hi.IsNull() || hi.Less(val) {
				hi = val
			}
		}
		return lo, hi
	}
}

func minMaxInt64(data []int64, nulls []bool, d types.Domain, box func(int64) types.Value) (types.Value, types.Value) {
	var lo, hi int64
	seen := false
	for i, x := range data {
		if nulls != nil && nulls[i] {
			continue
		}
		if !seen || x < lo {
			lo = x
		}
		if !seen || x > hi {
			hi = x
		}
		seen = true
	}
	if !seen {
		return types.NullValue(d), types.NullValue(d)
	}
	return box(lo), box(hi)
}

func minMaxStrings(data []string, nulls []bool, d types.Domain) (types.Value, types.Value) {
	lo, hi := "", ""
	seen := false
	for i, s := range data {
		if nulls != nil && nulls[i] {
			continue
		}
		if !seen || s < lo {
			lo = s
		}
		if !seen || s > hi {
			hi = s
		}
		seen = true
	}
	if !seen {
		return types.NullValue(d), types.NullValue(d)
	}
	if d == types.Category {
		return types.CategoryValue(lo), types.CategoryValue(hi)
	}
	return types.String(lo), types.String(hi)
}

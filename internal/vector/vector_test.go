package vector

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestObjectVectorBasics(t *testing.T) {
	v := NewObjectFromStrings([]string{"a", "NA", "c"})
	if v.Len() != 3 || v.Domain() != types.Object {
		t.Fatalf("len/domain wrong: %d %v", v.Len(), v.Domain())
	}
	if !v.IsNull(1) || v.IsNull(0) {
		t.Error("null literal detection wrong")
	}
	if v.Value(0).Str() != "a" || !v.Value(1).IsNull() {
		t.Error("values wrong")
	}
}

func TestEveryVectorKindSliceTake(t *testing.T) {
	vectors := map[string]Vector{
		"object":   NewObjectFromStrings([]string{"a", "b", "NA", "d", "e"}),
		"int":      NewInt([]int64{1, 2, 3, 4, 5}, []bool{false, false, true, false, false}),
		"float":    NewFloat([]float64{1, 2, 3, 4, 5}, []bool{false, false, true, false, false}),
		"bool":     NewBool([]bool{true, false, true, false, true}, []bool{false, false, true, false, false}),
		"datetime": NewDatetime([]int64{10, 20, 30, 40, 50}, []bool{false, false, true, false, false}),
		"dict":     NewDictFromStrings([]string{"x", "y", "NA", "x", "y"}),
		"any": NewAny([]types.Value{
			types.IntValue(1), types.String("b"), types.NullValue(types.Composite),
			types.BoolValue(true), types.FloatValue(5),
		}),
	}
	for name, v := range vectors {
		t.Run(name, func(t *testing.T) {
			if v.Len() != 5 {
				t.Fatalf("len = %d", v.Len())
			}
			if !v.IsNull(2) {
				t.Fatal("index 2 should be null")
			}
			s := v.Slice(1, 4)
			if s.Len() != 3 {
				t.Fatalf("slice len = %d", s.Len())
			}
			if !s.Value(0).Equal(v.Value(1)) || !s.Value(2).Equal(v.Value(3)) {
				t.Error("slice values wrong")
			}
			if !s.IsNull(1) {
				t.Error("slice should preserve nulls")
			}
			tk := v.Take([]int{4, 0, -1, 2})
			if tk.Len() != 4 {
				t.Fatalf("take len = %d", tk.Len())
			}
			if !tk.Value(0).Equal(v.Value(4)) || !tk.Value(1).Equal(v.Value(0)) {
				t.Error("take values wrong")
			}
			if !tk.IsNull(2) {
				t.Error("take -1 should be null")
			}
			if !tk.IsNull(3) {
				t.Error("take of null entry should stay null")
			}
		})
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewInt([]int64{1, 2}, nil).Slice(0, 3)
}

func TestBuilderPerDomain(t *testing.T) {
	cases := []struct {
		dom  types.Domain
		vals []types.Value
	}{
		{types.Object, []types.Value{types.String("a"), types.Null(), types.String("b")}},
		{types.Int, []types.Value{types.IntValue(1), types.NullValue(types.Int), types.IntValue(-2)}},
		{types.Float, []types.Value{types.FloatValue(1.5), types.NullValue(types.Float), types.FloatValue(0)}},
		{types.Bool, []types.Value{types.BoolValue(true), types.NullValue(types.Bool), types.BoolValue(false)}},
		{types.Category, []types.Value{types.CategoryValue("x"), types.NullValue(types.Category), types.CategoryValue("x")}},
	}
	for _, c := range cases {
		t.Run(c.dom.String(), func(t *testing.T) {
			got := FromValues(c.dom, c.vals)
			if got.Domain() != c.dom {
				t.Fatalf("domain = %v, want %v", got.Domain(), c.dom)
			}
			for i, want := range c.vals {
				if want.IsNull() != got.IsNull(i) {
					t.Errorf("null[%d] mismatch", i)
				}
				if !want.IsNull() && !got.Value(i).Equal(want) {
					t.Errorf("value[%d] = %v, want %v", i, got.Value(i), want)
				}
			}
		})
	}
}

func TestBuilderCoercion(t *testing.T) {
	// Int builder accepts floats, bools and numeric strings.
	b := NewBuilder(types.Int, 0)
	b.Append(types.FloatValue(3.0))
	b.Append(types.BoolValue(true))
	b.Append(types.String("7"))
	b.Append(types.String("junk")) // unparseable → null
	v := b.Build()
	want := []int64{3, 1, 7}
	for i, w := range want {
		if v.Value(i).Int() != w {
			t.Errorf("value[%d] = %v, want %d", i, v.Value(i), w)
		}
	}
	if !v.IsNull(3) {
		t.Error("unparseable should become null")
	}
}

func TestBuilderAppendString(t *testing.T) {
	b := NewBuilder(types.Float, 0)
	b.AppendString("2.5")
	b.AppendString("NA")
	b.AppendString("bad")
	v := b.Build()
	if v.Value(0).Float() != 2.5 || !v.IsNull(1) || !v.IsNull(2) {
		t.Errorf("AppendString results wrong: %v %v %v", v.Value(0), v.Value(1), v.Value(2))
	}
}

func TestConcatMixedDomainsFallsBackToObject(t *testing.T) {
	a := NewInt([]int64{1, 2}, nil)
	b := NewObjectFromStrings([]string{"x"})
	c := Concat(a, b)
	if c.Domain() != types.Object || c.Len() != 3 {
		t.Fatalf("concat = %v len %d", c.Domain(), c.Len())
	}
	if c.Value(0).Str() != "1" || c.Value(2).Str() != "x" {
		t.Error("concat values wrong")
	}
}

func TestConcatSameDomain(t *testing.T) {
	a := NewInt([]int64{1}, nil)
	b := NewInt([]int64{2}, []bool{true})
	c := Concat(a, b)
	if c.Domain() != types.Int || c.Len() != 2 {
		t.Fatal("concat same domain wrong")
	}
	if c.Value(0).Int() != 1 || !c.IsNull(1) {
		t.Error("concat values wrong")
	}
	if Concat().Len() != 0 {
		t.Error("empty concat")
	}
}

func TestDictEncoding(t *testing.T) {
	d := NewDictFromStrings([]string{"a", "b", "a", "a", "b"})
	if len(d.Categories()) != 2 {
		t.Fatalf("categories = %v", d.Categories())
	}
	if d.Value(0).Str() != "a" || d.Value(4).Str() != "b" {
		t.Error("dict values wrong")
	}
}

func TestRepeatNullsRange(t *testing.T) {
	r := Repeat(types.IntValue(7), 3)
	if r.Len() != 3 || r.Value(2).Int() != 7 {
		t.Error("repeat wrong")
	}
	n := Nulls(types.Float, 2)
	if n.Len() != 2 || !n.IsNull(0) || n.Domain() != types.Float {
		t.Error("nulls wrong")
	}
	rg := Range(5, 3)
	if rg.Value(0).Int() != 5 || rg.Value(2).Int() != 7 {
		t.Error("range wrong")
	}
}

func TestEqualAndHelpers(t *testing.T) {
	a := NewInt([]int64{1, 2, 3}, nil)
	b := NewFloat([]float64{1, 2, 3}, nil)
	if !Equal(a, b) {
		t.Error("cross-domain numeric vectors should be Equal")
	}
	if Equal(a, NewInt([]int64{1, 2}, nil)) {
		t.Error("length mismatch should not be Equal")
	}
	if NullCount(NewInt([]int64{1, 2}, []bool{true, false})) != 1 {
		t.Error("NullCount wrong")
	}
	if got := Strings(a); got[0] != "1" || len(got) != 3 {
		t.Error("Strings wrong")
	}
	if got := Values(a); !got[2].Equal(types.IntValue(3)) {
		t.Error("Values wrong")
	}
}

func TestTakeSliceCompositionProperty(t *testing.T) {
	// Slice(lo,hi).Value(i) == Value(lo+i), and Take(idx).Value(j) ==
	// Value(idx[j]) for all vector kinds, property-checked on ints.
	prop := func(data []int64, loRaw, hiRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		v := NewInt(data, nil)
		lo := int(loRaw) % len(data)
		hi := lo + int(hiRaw)%(len(data)-lo+1)
		s := v.Slice(lo, hi)
		for i := 0; i < s.Len(); i++ {
			if !s.Value(i).Equal(v.Value(lo + i)) {
				return false
			}
		}
		idx := make([]int, 0, len(data))
		for i := range data {
			idx = append(idx, len(data)-1-i)
		}
		tk := v.Take(idx)
		for j, i := range idx {
			if !tk.Value(j).Equal(v.Value(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuilderRoundTripProperty(t *testing.T) {
	// Building from Values(v) reproduces v for any int data + null mask.
	prop := func(data []int64, nullSeed []bool) bool {
		nulls := make([]bool, len(data))
		for i := range nulls {
			if i < len(nullSeed) {
				nulls[i] = nullSeed[i]
			}
		}
		v := NewInt(data, nulls)
		rebuilt := FromValues(types.Int, Values(v))
		return Equal(v, rebuilt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTakeViewSharesStorage(t *testing.T) {
	base := NewInt([]int64{10, 20, 30, 40}, []bool{false, true, false, false})
	v := TakeView(base, []int{3, 1, 0, -1})
	if v.Len() != 4 || v.Domain() != types.Int {
		t.Fatalf("view shape wrong: len=%d dom=%v", v.Len(), v.Domain())
	}
	if v.Value(0).Int() != 40 {
		t.Error("view value wrong")
	}
	if !v.IsNull(1) || !v.IsNull(3) {
		t.Error("view must surface base nulls and -1 as null")
	}
	sliced := v.Slice(1, 3)
	if sliced.Len() != 2 || sliced.Value(1).Int() != 10 {
		t.Error("view slice wrong")
	}
	taken := v.Take([]int{2, -1, 0})
	if taken.Value(0).Int() != 10 || !taken.IsNull(1) || taken.Value(2).Int() != 40 {
		t.Error("view take should compose selection vectors")
	}
}

package vector

import (
	"math"
	"testing"
	"time"

	"repro/internal/types"
)

// mixedVectors returns one vector per representation, all length 4 with a
// null at position 2.
func mixedVectors() map[string]Vector {
	nulls := []bool{false, false, true, false}
	return map[string]Vector{
		"int":      NewInt([]int64{5, -1, 0, 5}, nulls),
		"float":    NewFloat([]float64{5, -1.5, 0, 5}, nulls),
		"bool":     NewBool([]bool{true, false, false, true}, nulls),
		"datetime": NewDatetime([]int64{5, 1, 0, 5}, nulls),
		"object":   NewObject([]string{"a", "b", "", "a"}, nulls),
		"dict":     NewDict([]int32{0, 1, 0, 0}, []string{"a", "b"}, nulls),
	}
}

func TestHashMatchesHashValue(t *testing.T) {
	const seed = 42
	for name, v := range mixedVectors() {
		dst := make([]uint64, v.Len())
		Hash(v, seed, dst)
		for i := range dst {
			if want := HashValue(v.Value(i), seed); dst[i] != want {
				t.Errorf("%s[%d]: bulk hash %x != scalar hash %x", name, i, dst[i], want)
			}
		}
	}
}

func TestHashCanonicalAcrossDomains(t *testing.T) {
	const seed = 7
	// Equal values must hash equal regardless of representation: the
	// invariant that lets hash tables replace rendered keys.
	pairs := [][2]types.Value{
		{types.IntValue(5), types.FloatValue(5)},
		{types.BoolValue(true), types.IntValue(1)},
		{types.BoolValue(false), types.FloatValue(0)},
		{types.String("x"), types.CategoryValue("x")},
		{types.Null(), types.NullValue(types.Int)},
		{types.NullValue(types.Float), types.NullValue(types.Category)},
	}
	for _, p := range pairs {
		if HashValue(p[0], seed) != HashValue(p[1], seed) {
			t.Errorf("%#v and %#v should hash equal", p[0], p[1])
		}
	}
	// And distinguishable kinds must (here) hash apart.
	if HashValue(types.IntValue(5), seed) == HashValue(types.DatetimeFromNanos(5), seed) {
		t.Error("int 5 and datetime 5ns should hash apart")
	}
	if HashValue(types.String("5"), seed) == HashValue(types.IntValue(5), seed) {
		t.Error(`string "5" and int 5 should hash apart`)
	}
}

func TestHashRowsOrderSensitive(t *testing.T) {
	a := NewObject([]string{"a"}, nil)
	b := NewObject([]string{"b"}, nil)
	h1 := make([]uint64, 1)
	h2 := make([]uint64, 1)
	HashRows([]Vector{a, b}, 1, h1)
	HashRows([]Vector{b, a}, 1, h2)
	if h1[0] == h2[0] {
		t.Error(`("a","b") and ("b","a") should hash apart`)
	}
	if want := HashRowValues([]types.Value{types.String("a"), types.String("b")}, 1); h1[0] != want {
		t.Errorf("HashRows %x != HashRowValues %x", h1[0], want)
	}
}

func TestEqualRowsAgreesWithValueEqual(t *testing.T) {
	vs := mixedVectors()
	for an, a := range vs {
		for bn, b := range vs {
			for i := 0; i < a.Len(); i++ {
				for j := 0; j < b.Len(); j++ {
					got := EqualRows(a, i, b, j)
					want := a.Value(i).Equal(b.Value(j))
					if got != want {
						t.Errorf("EqualRows(%s[%d], %s[%d]) = %v, Value.Equal = %v", an, i, bn, j, got, want)
					}
				}
			}
		}
	}
}

func TestEqualRowValueAgreesWithValueEqual(t *testing.T) {
	operands := []types.Value{
		types.IntValue(5), types.FloatValue(5), types.FloatValue(-1.5),
		types.BoolValue(true), types.String("a"), types.CategoryValue("a"),
		types.DatetimeFromNanos(5), types.Null(),
	}
	for name, v := range mixedVectors() {
		for i := 0; i < v.Len(); i++ {
			for _, o := range operands {
				if got, want := EqualRowValue(v, i, o), v.Value(i).Equal(o); got != want {
					t.Errorf("EqualRowValue(%s[%d], %#v) = %v, want %v", name, i, o, got, want)
				}
			}
		}
	}
}

func TestCompareRowsAgreesWithValueCompare(t *testing.T) {
	vs := mixedVectors()
	for an, a := range vs {
		for bn, b := range vs {
			for i := 0; i < a.Len(); i++ {
				for j := 0; j < b.Len(); j++ {
					got := CompareRows(a, i, b, j)
					want := a.Value(i).Compare(b.Value(j))
					if got != want {
						t.Errorf("CompareRows(%s[%d], %s[%d]) = %d, Value.Compare = %d", an, i, bn, j, got, want)
					}
				}
			}
		}
	}
}

func TestCompareRowValueAgreesWithValueCompare(t *testing.T) {
	operands := []types.Value{
		types.IntValue(2), types.FloatValue(2.5), types.BoolValue(false),
		types.String("b"), types.CategoryValue("b"),
		types.DatetimeFromNanos(3), types.Null(),
		types.DatetimeValue(time.Unix(0, 5)),
	}
	for name, v := range mixedVectors() {
		for i := 0; i < v.Len(); i++ {
			for _, o := range operands {
				if got, want := CompareRowValue(v, i, o), v.Value(i).Compare(o); got != want {
					t.Errorf("CompareRowValue(%s[%d], %#v) = %d, want %d", name, i, o, got, want)
				}
			}
		}
	}
}

func TestCompareAsc(t *testing.T) {
	a := NewInt([]int64{1, 5, 3, 0}, []bool{false, false, false, true})
	b := NewFloat([]float64{2, 5, 1, 9}, nil)
	dst := make([]int8, 4)
	CompareAsc(dst, a, b)
	want := []int8{-1, 0, 1, -1} // null sorts first
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestFilterKernelsAgainstBoxedCompare(t *testing.T) {
	operands := map[string]types.Value{
		"int":      types.IntValue(0),
		"float":    types.FloatValue(0),
		"bool":     types.BoolValue(true),
		"datetime": types.DatetimeFromNanos(1),
		"object":   types.String("a"),
		"dict":     types.CategoryValue("a"),
	}
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	for name, v := range mixedVectors() {
		o := operands[name]
		for _, op := range ops {
			got, ok := Filter(v, op, o, nil)
			if !ok {
				t.Fatalf("Filter(%s, %v): no kernel", name, op)
			}
			var want []int
			for i := 0; i < v.Len(); i++ {
				if !v.IsNull(i) && op.Accept(v.Value(i).Compare(o)) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("Filter(%s, %v) = %v, want %v", name, op, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Filter(%s, %v) = %v, want %v", name, op, got, want)
				}
			}
		}
	}
}

func TestFilterNullOperandAndSelChaining(t *testing.T) {
	v := NewInt([]int64{1, 2, 3, 4}, []bool{false, true, false, true})
	if got, ok := Filter(v, CmpEq, types.Null(), nil); !ok || len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Eq null = %v (%v), want null positions [1 3]", got, ok)
	}
	if got, ok := Filter(v, CmpNe, types.Null(), nil); !ok || len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Ne null = %v (%v), want non-null positions [0 2]", got, ok)
	}
	if got, ok := Filter(v, CmpLt, types.Null(), nil); !ok || len(got) != 0 {
		t.Errorf("Lt null = %v (%v), want empty", got, ok)
	}
	// sel narrows candidates: only position 2 among [2,3] is non-null > 1.
	if got, ok := Filter(v, CmpGt, types.IntValue(1), []int{2, 3}); !ok || len(got) != 1 || got[0] != 2 {
		t.Errorf("Gt 1 over sel [2 3] = %v (%v), want [2]", got, ok)
	}
	// Non-integral operand over int storage.
	if got, ok := Filter(v, CmpLt, types.FloatValue(2.5), nil); !ok || len(got) != 1 || got[0] != 0 {
		t.Errorf("int < 2.5 = %v (%v), want [0]", got, ok)
	}
	// No kernel for incomparable operand: caller must fall back.
	if _, ok := Filter(v, CmpEq, types.String("x"), nil); ok {
		t.Error("int vs string operand should report no kernel")
	}
}

func TestFilterDictComparesPerDictionaryEntry(t *testing.T) {
	v := NewDict([]int32{0, 1, 2, 1, 0}, []string{"b", "a", "c"}, []bool{false, false, false, true, false})
	got := FilterDict([]int32{0, 1, 2, 1, 0}, []string{"b", "a", "c"}, []bool{false, false, false, true, false}, CmpLe, "b", nil)
	// "b"<=b, "a"<=b, "c">b, null skipped, "b"<=b.
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("FilterDict = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterDict = %v, want %v", got, want)
		}
	}
	_ = v
}

// TestKeyEqualExactAboveFloatPrecision locks the hash/verify consistency
// invariant at the float64 precision boundary: types.Value.Equal compares
// cross-domain numerics in float64 space, where 2^53+1 (int) "equals"
// 2^53.0 (float) — but they must NOT be the same grouping key, because
// their canonical hashes differ. KeyEqual (and the typed EqualRows /
// EqualRowValue paths) use exact comparison, so KeyEqual ⇒ hash-equal
// always holds.
func TestKeyEqualExactAboveFloatPrecision(t *testing.T) {
	const seed = 11
	bigInt := types.IntValue(1<<53 + 1)
	bigFloat := types.FloatValue(1 << 53)
	if !bigInt.Equal(bigFloat) {
		t.Skip("Value.Equal no longer conflates these; KeyEqual divergence moot")
	}
	if KeyEqual(bigInt, bigFloat) {
		t.Error("KeyEqual must compare cross-domain numerics exactly")
	}
	if HashValue(bigInt, seed) == HashValue(bigFloat, seed) {
		t.Error("2^53+1 and 2^53.0 canonicalize to different int64s and must hash apart")
	}
	// The representable pair still matches, hash and verify alike.
	sameInt := types.IntValue(1 << 53)
	if !KeyEqual(sameInt, bigFloat) || HashValue(sameInt, seed) != HashValue(bigFloat, seed) {
		t.Error("2^53 (int) and 2^53.0 (float) are the same key")
	}
	// Typed rows agree with the boxed predicate.
	iv := NewInt([]int64{1<<53 + 1, 1 << 53}, nil)
	fv := NewFloat([]float64{1 << 53, 1 << 53}, nil)
	if EqualRows(iv, 0, fv, 0) {
		t.Error("EqualRows must use the exact canonical comparison")
	}
	if !EqualRows(iv, 1, fv, 1) {
		t.Error("representable pair must stay equal")
	}
	if EqualRowValue(iv, 0, bigFloat) || !EqualRowValue(iv, 1, bigFloat) {
		t.Error("EqualRowValue must match KeyEqual")
	}
	// Huge integral floats beyond int64 fall back to bit hashing; equal
	// payloads still share hash and key.
	huge := types.FloatValue(1e300)
	if !KeyEqual(huge, types.FloatValue(1e300)) || HashValue(huge, seed) != HashValue(types.FloatValue(1e300), seed) {
		t.Error("identical out-of-int64-range floats must stay one key")
	}
	if KeyEqual(types.IntValue(1<<62), huge) {
		t.Error("out-of-range float equals no int64")
	}
}

// TestUnmaskedNaNReadsAsNull locks the canonicalization boxed values
// already had: a NaN payload without a mask bit is null (Float.Value maps
// NaN to the Float null), and the kernels must agree — IsNull, NullCount,
// Hash, EqualRows, and the filter kernels.
func TestUnmaskedNaNReadsAsNull(t *testing.T) {
	nan := math.NaN()
	v := NewFloat([]float64{nan, 5, nan}, nil)
	if !v.IsNull(0) || v.IsNull(1) {
		t.Fatal("IsNull must treat unmasked NaN as null")
	}
	if NullCount(v) != 2 {
		t.Errorf("NullCount = %d, want 2", NullCount(v))
	}
	dst := make([]uint64, 3)
	Hash(v, 9, dst)
	for i := range dst {
		if want := HashValue(v.Value(i), 9); dst[i] != want {
			t.Errorf("Hash[%d] = %x, HashValue = %x", i, dst[i], want)
		}
	}
	if dst[0] != HashValue(types.Null(), 9) {
		t.Error("NaN must hash as null")
	}
	if !EqualRows(v, 0, v, 2) {
		t.Error("two NaN cells are both null and must compare equal")
	}
	if EqualRows(v, 0, v, 1) {
		t.Error("NaN (null) must not equal 5")
	}
	if got, ok := Filter(v, CmpEq, types.FloatValue(5), nil); !ok || len(got) != 1 || got[0] != 1 {
		t.Errorf("Eq 5 over [NaN 5 NaN] = %v (%v), want [1]", got, ok)
	}
	if got := FilterNotNull(v, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("FilterNotNull = %v, want [1]", got)
	}
	if got := FilterNull(v, nil); len(got) != 2 {
		t.Errorf("FilterNull = %v, want the two NaN positions", got)
	}
	if CompareRows(v, 0, v, 1) != -1 {
		t.Error("NaN (null) must sort before 5")
	}
}

func TestNullCountDirect(t *testing.T) {
	for name, v := range mixedVectors() {
		if got := NullCount(v); got != 1 {
			t.Errorf("NullCount(%s) = %d, want 1", name, got)
		}
	}
	if NullCount(NewInt([]int64{1, 2}, nil)) != 0 {
		t.Error("null-free vector should count 0")
	}
	// The generic fallback (a view has no direct count) must agree.
	view := TakeView(NewInt([]int64{1, 2, 3}, []bool{true, false, false}), []int{0, -1, 2})
	if NullCount(view) != 2 {
		t.Error("view null count should include -1 positions and base nulls")
	}
}

// TestTakeAllNegative locks the edge case the kernel rewrite must preserve:
// Take over only -1 positions yields an all-null vector of the same domain
// (Composite for Any), regardless of representation.
func TestTakeAllNegative(t *testing.T) {
	vectors := map[string]Vector{
		"int":      NewInt([]int64{1, 2}, nil),
		"float":    NewFloat([]float64{1, 2}, nil),
		"bool":     NewBool([]bool{true, false}, nil),
		"datetime": NewDatetime([]int64{1, 2}, nil),
		"object":   NewObject([]string{"a", "b"}, nil),
		"dict":     NewDictFromStrings([]string{"a", "b"}),
		"any":      NewAny([]types.Value{types.IntValue(1), types.String("x")}),
		"view":     TakeView(NewInt([]int64{1, 2}, nil), []int{0, 1}),
	}
	for name, v := range vectors {
		got := v.Take([]int{-1, -1, -1})
		if got.Len() != 3 {
			t.Fatalf("%s: Take len = %d, want 3", name, got.Len())
		}
		for i := 0; i < 3; i++ {
			if !got.IsNull(i) {
				t.Errorf("%s: Take(-1)[%d] should be null", name, i)
			}
			if !got.Value(i).IsNull() {
				t.Errorf("%s: Take(-1)[%d].Value should be null", name, i)
			}
		}
	}
}

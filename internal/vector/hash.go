package vector

import (
	"math"

	"repro/internal/types"
)

// This file holds the bulk hash and equality kernels beneath the hash-keyed
// operators (GROUPBY, JOIN, DROP-DUPLICATES, DIFFERENCE, shuffle routing).
// Row identity used to be a rendered string key per row; these kernels
// replace it with a 64-bit hash computed directly over the typed storage
// slices, with equality verification on hash collisions.
//
// Hashes are canonical across domains exactly where types.Value.Key is:
// nulls of every domain share one hash, Int/Bool/integral-Float values of
// equal magnitude share one hash, and Object/Category share the string
// hash. The matching verification predicate is KeyEqual (and its typed
// forms EqualRows/EqualRowValue): KeyEqual(a, b) implies equal hashes, so
// a hash-plus-verify table reproduces the rendered-key grouping semantics.
// KeyEqual is types.Value.Equal except that cross-representation numeric
// comparison is exact rather than in float64 space — see intFloatKeyEqual.

// Mixing constants (splitmix64 finalizer).
const (
	mixA = 0xbf58476d1ce4e5b9
	mixB = 0x94d049bb133111eb
)

// Per-kind tags keep e.g. Datetime(5ns) distinct from Int(5), mirroring the
// "t:" vs "i:" prefixes of types.Value.Key.
const (
	tagNull uint64 = 0x9ae16a3b2f90404f
	tagInt  uint64 = 0xc2b2ae3d27d4eb4f
	tagFlt  uint64 = 0x165667b19e3779f9
	tagTime uint64 = 0x27d4eb2f165667c5
	tagStr  uint64 = 0x85ebca77c2b2ae63
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixA
	x ^= x >> 27
	x *= mixB
	x ^= x >> 31
	return x
}

func hashWord(seed, tag, x uint64) uint64 {
	return mix64(seed ^ tag ^ mix64(x))
}

// hashString is FNV-1a folded with the seed and string tag; deterministic
// across processes so shuffle plans can compare hashes from any task.
func hashString(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ seed ^ tagStr
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// intRepresentable reports whether the float is integral and inside the
// int64 range, i.e. int64(f) is exact and well-defined.
func intRepresentable(f float64) bool {
	return f == math.Trunc(f) && f >= -9.223372036854776e18 && f < 9.223372036854776e18
}

// hashFloat canonicalizes int64-representable integral floats to the Int
// hash so cross-domain equal values (5 and 5.0) collide on purpose, as
// Value.Key does; everything else hashes its bit pattern.
func hashFloat(seed uint64, f float64) uint64 {
	if intRepresentable(f) {
		return hashWord(seed, tagInt, uint64(int64(f)))
	}
	return hashWord(seed, tagFlt, math.Float64bits(f))
}

// intFloatKeyEqual is the exact cross-representation numeric key equality
// matching hashFloat's canonicalization: an int64 equals a float64 only
// when the float is integral and converts to the same int64. (Boxed
// Value.Equal compares in float64 space, which conflates distinct integers
// above 2^53 with their float neighbors — under that relation equal keys
// could hash apart, making group/join results depend on whether the hash
// probe or the verifier saw the pair first.)
func intFloatKeyEqual(i int64, f float64) bool {
	return intRepresentable(f) && int64(f) == i
}

// KeyEqual reports whether two boxed values are the same grouping key:
// types.Value.Equal, except cross-representation numeric comparisons use
// the exact intFloatKeyEqual canonicalization, so KeyEqual(a, b) implies
// HashValue(a) == HashValue(b). It is the one verification predicate
// behind every hash-probe in the grouping, join and dedup kernels.
func KeyEqual(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	da, db := a.Domain(), b.Domain()
	if da != db && da.Numeric() && db.Numeric() {
		if da == types.Float && db != types.Float {
			return intFloatKeyEqual(numericInt(b), a.Float())
		}
		if db == types.Float && da != types.Float {
			return intFloatKeyEqual(numericInt(a), b.Float())
		}
	}
	return a.Equal(b)
}

// numericInt reads an Int or Bool value as int64.
func numericInt(v types.Value) int64 {
	if v.Domain() == types.Bool {
		if v.Bool() {
			return 1
		}
		return 0
	}
	return v.Int()
}

func hashBool(seed uint64, b bool) uint64 {
	if b {
		return hashWord(seed, tagInt, 1)
	}
	return hashWord(seed, tagInt, 0)
}

// HashValue hashes one boxed value under the canonicalization above. It is
// the scalar companion of Hash, used for group exemplars and plan-side
// verification.
func HashValue(v types.Value, seed uint64) uint64 {
	if v.IsNull() {
		return hashWord(seed, tagNull, 0)
	}
	switch v.Domain() {
	case types.Int:
		return hashWord(seed, tagInt, uint64(v.Int()))
	case types.Float:
		return hashFloat(seed, v.Float())
	case types.Bool:
		return hashBool(seed, v.Bool())
	case types.Datetime:
		return hashWord(seed, tagTime, uint64(v.Int()))
	case types.Object, types.Category:
		return hashString(seed, v.Str())
	default:
		return hashString(seed, v.Key())
	}
}

// Hash writes the canonical hash of every entry of v into dst (which must
// have length v.Len()), null-aware and without constructing types.Value. The
// typed vectors hash their storage slices directly; Dict vectors hash each
// dictionary entry once and route codes through the precomputed table.
func Hash(v Vector, seed uint64, dst []uint64) {
	nullH := hashWord(seed, tagNull, 0)
	switch c := v.(type) {
	case *Int:
		for i, x := range c.data {
			if c.nulls != nil && c.nulls[i] {
				dst[i] = nullH
			} else {
				dst[i] = hashWord(seed, tagInt, uint64(x))
			}
		}
	case *Float:
		for i, x := range c.data {
			if (c.nulls != nil && c.nulls[i]) || math.IsNaN(x) {
				// Unmasked NaN reads as null, like Float.Value.
				dst[i] = nullH
			} else {
				dst[i] = hashFloat(seed, x)
			}
		}
	case *Bool:
		for i, x := range c.data {
			if c.nulls != nil && c.nulls[i] {
				dst[i] = nullH
			} else {
				dst[i] = hashBool(seed, x)
			}
		}
	case *Datetime:
		for i, x := range c.data {
			if c.nulls != nil && c.nulls[i] {
				dst[i] = nullH
			} else {
				dst[i] = hashWord(seed, tagTime, uint64(x))
			}
		}
	case *Object:
		for i, s := range c.data {
			if c.nulls != nil && c.nulls[i] {
				dst[i] = nullH
			} else {
				dst[i] = hashString(seed, s)
			}
		}
	case *Dict:
		table := make([]uint64, len(c.dict))
		for k, s := range c.dict {
			table[k] = hashString(seed, s)
		}
		for i, code := range c.codes {
			if c.nulls != nil && c.nulls[i] {
				dst[i] = nullH
			} else {
				dst[i] = table[code]
			}
		}
	default:
		for i := 0; i < v.Len(); i++ {
			dst[i] = HashValue(v.Value(i), seed)
		}
	}
}

// HashRows combines the column hashes of cols into one row hash per entry:
// the multi-key analog of Hash, replacing the rendered composite row key.
// dst must have the columns' shared length; zero columns hash every row to
// the same constant (the whole-frame group). The combination is
// order-sensitive, so ("a","b") and ("b","a") key rows differently.
func HashRows(cols []Vector, seed uint64, dst []uint64) {
	if len(cols) == 0 {
		base := mix64(seed ^ tagNull)
		for i := range dst {
			dst[i] = base
		}
		return
	}
	Hash(cols[0], seed, dst)
	if len(cols) == 1 {
		return
	}
	tmp := make([]uint64, len(dst))
	for _, c := range cols[1:] {
		Hash(c, seed, tmp)
		for i := range dst {
			dst[i] = mix64(dst[i]*mixA ^ tmp[i])
		}
	}
}

// HashRowValues is HashRows for one boxed key tuple: it produces the same
// hash a row with these column values gets, letting plan-side code compare
// exemplar tuples against storage-side row hashes.
func HashRowValues(vals []types.Value, seed uint64) uint64 {
	if len(vals) == 0 {
		return mix64(seed ^ tagNull)
	}
	h := HashValue(vals[0], seed)
	for _, v := range vals[1:] {
		h = mix64(h*mixA ^ HashValue(v, seed))
	}
	return h
}

// EqualRows reports whether entry i of a and entry j of b are the same group
// key, under the equivalence of types.Value.Equal (nulls equal each other,
// numerics compare across domains, Object and Category compare by content).
// Same-representation pairs compare on the storage slices without boxing.
func EqualRows(a Vector, i int, b Vector, j int) bool {
	an, bn := a.IsNull(i), b.IsNull(j)
	if an || bn {
		return an && bn
	}
	switch ca := a.(type) {
	case *Int:
		switch cb := b.(type) {
		case *Int:
			return ca.data[i] == cb.data[j]
		case *Float:
			return intFloatKeyEqual(ca.data[i], cb.data[j])
		}
	case *Float:
		switch cb := b.(type) {
		case *Float:
			return ca.data[i] == cb.data[j]
		case *Int:
			return intFloatKeyEqual(cb.data[j], ca.data[i])
		}
	case *Bool:
		if cb, ok := b.(*Bool); ok {
			return ca.data[i] == cb.data[j]
		}
	case *Datetime:
		if cb, ok := b.(*Datetime); ok {
			return ca.data[i] == cb.data[j]
		}
	case *Object:
		switch cb := b.(type) {
		case *Object:
			return ca.data[i] == cb.data[j]
		case *Dict:
			return ca.data[i] == cb.dict[cb.codes[j]]
		}
	case *Dict:
		switch cb := b.(type) {
		case *Dict:
			return ca.dict[ca.codes[i]] == cb.dict[cb.codes[j]]
		case *Object:
			return ca.dict[ca.codes[i]] == cb.data[j]
		}
	}
	return KeyEqual(a.Value(i), b.Value(j))
}

// EqualRowValue reports whether entry i of v equals the boxed value val
// under the same equivalence as EqualRows. It is the verification step of
// hash-table probes whose entries keep boxed exemplars.
func EqualRowValue(v Vector, i int, val types.Value) bool {
	vn := v.IsNull(i)
	if vn || val.IsNull() {
		return vn && val.IsNull()
	}
	switch c := v.(type) {
	case *Int:
		switch val.Domain() {
		case types.Int:
			return c.data[i] == val.Int()
		case types.Float:
			return intFloatKeyEqual(c.data[i], val.Float())
		}
	case *Float:
		switch val.Domain() {
		case types.Float:
			return c.data[i] == val.Float()
		case types.Int:
			return intFloatKeyEqual(val.Int(), c.data[i])
		}
	case *Bool:
		if val.Domain() == types.Bool {
			return c.data[i] == val.Bool()
		}
	case *Datetime:
		if val.Domain() == types.Datetime {
			return c.data[i] == val.Int()
		}
	case *Object:
		if d := val.Domain(); d == types.Object || d == types.Category {
			return c.data[i] == val.Str()
		}
	case *Dict:
		if d := val.Domain(); d == types.Object || d == types.Category {
			return c.dict[c.codes[i]] == val.Str()
		}
	}
	return KeyEqual(v.Value(i), val)
}

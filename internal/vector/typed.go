package vector

import (
	"math"
	"time"

	"repro/internal/types"
)

// Object is a vector over Σ*: raw, uninterpreted strings. It is the storage
// form of the paper's Amn array before any parsing function is applied.
type Object struct {
	data  []string
	nulls []bool // nil means no nulls
}

// NewObject wraps the given data (and optional null mask) as an Object
// vector. The slices are not copied.
func NewObject(data []string, nulls []bool) *Object { return &Object{data: data, nulls: nulls} }

// NewObjectFromStrings builds an Object vector, treating null literals
// ("", "NA", ...) as nulls.
func NewObjectFromStrings(data []string) *Object {
	var nulls []bool
	for i, s := range data {
		if types.IsNullLiteral(s) {
			if nulls == nil {
				nulls = make([]bool, len(data))
			}
			nulls[i] = true
		}
	}
	return &Object{data: data, nulls: nulls}
}

// Len returns the number of entries.
func (v *Object) Len() int { return len(v.data) }

// Domain returns types.Object.
func (v *Object) Domain() types.Domain { return types.Object }

// IsNull reports whether entry i is null.
func (v *Object) IsNull(i int) bool { return v.nulls != nil && v.nulls[i] }

// Value returns entry i.
func (v *Object) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Object)
	}
	return types.String(v.data[i])
}

// Raw returns the raw string payload of entry i, even when null.
func (v *Object) Raw(i int) string { return v.data[i] }

// RawData exposes the backing string slice for bulk scans (schema induction,
// parsing). Callers must not mutate it.
func (v *Object) RawData() []string { return v.data }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Object) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Object{data: v.data[lo:hi], nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Object) Take(idx []int) Vector {
	data := make([]string, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		}
	}
	return &Object{data: data, nulls: takeNulls(v.nulls, idx)}
}

// Int is a vector in the int domain.
type Int struct {
	data  []int64
	nulls []bool
}

// NewInt wraps data (and optional null mask) as an Int vector.
func NewInt(data []int64, nulls []bool) *Int { return &Int{data: data, nulls: nulls} }

// Len returns the number of entries.
func (v *Int) Len() int { return len(v.data) }

// Domain returns types.Int.
func (v *Int) Domain() types.Domain { return types.Int }

// IsNull reports whether entry i is null.
func (v *Int) IsNull(i int) bool { return v.nulls != nil && v.nulls[i] }

// Value returns entry i.
func (v *Int) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Int)
	}
	return types.IntValue(v.data[i])
}

// RawData exposes the backing slice for bulk kernels. Callers must not
// mutate it.
func (v *Int) RawData() []int64 { return v.data }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Int) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Int{data: v.data[lo:hi], nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Int) Take(idx []int) Vector {
	data := make([]int64, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		}
	}
	return &Int{data: data, nulls: takeNulls(v.nulls, idx)}
}

// Float is a vector in the float domain.
type Float struct {
	data  []float64
	nulls []bool
}

// NewFloat wraps data (and optional null mask) as a Float vector.
func NewFloat(data []float64, nulls []bool) *Float { return &Float{data: data, nulls: nulls} }

// Len returns the number of entries.
func (v *Float) Len() int { return len(v.data) }

// Domain returns types.Float.
func (v *Float) Domain() types.Domain { return types.Float }

// IsNull reports whether entry i is null. A NaN payload reads as null even
// without a mask bit, matching Value's canonicalization (types.FloatValue
// maps NaN to the Float null) so IsNull(i) always agrees with
// Value(i).IsNull().
func (v *Float) IsNull(i int) bool {
	return (v.nulls != nil && v.nulls[i]) || math.IsNaN(v.data[i])
}

// Value returns entry i.
func (v *Float) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Float)
	}
	return types.FloatValue(v.data[i])
}

// RawData exposes the backing slice for bulk kernels. Callers must not
// mutate it.
func (v *Float) RawData() []float64 { return v.data }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Float) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Float{data: v.data[lo:hi], nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Float) Take(idx []int) Vector {
	data := make([]float64, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		}
	}
	return &Float{data: data, nulls: takeNulls(v.nulls, idx)}
}

// Bool is a vector in the bool domain.
type Bool struct {
	data  []bool
	nulls []bool
}

// NewBool wraps data (and optional null mask) as a Bool vector.
func NewBool(data []bool, nulls []bool) *Bool { return &Bool{data: data, nulls: nulls} }

// Len returns the number of entries.
func (v *Bool) Len() int { return len(v.data) }

// Domain returns types.Bool.
func (v *Bool) Domain() types.Domain { return types.Bool }

// IsNull reports whether entry i is null.
func (v *Bool) IsNull(i int) bool { return v.nulls != nil && v.nulls[i] }

// Value returns entry i.
func (v *Bool) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Bool)
	}
	return types.BoolValue(v.data[i])
}

// RawData exposes the backing slice for bulk kernels. Callers must not
// mutate it.
func (v *Bool) RawData() []bool { return v.data }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Bool) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Bool{data: v.data[lo:hi], nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Bool) Take(idx []int) Vector {
	data := make([]bool, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		}
	}
	return &Bool{data: data, nulls: takeNulls(v.nulls, idx)}
}

// Datetime is a vector of timestamps stored as Unix nanoseconds.
type Datetime struct {
	data  []int64
	nulls []bool
}

// NewDatetime wraps Unix-nanosecond data (and optional null mask) as a
// Datetime vector.
func NewDatetime(data []int64, nulls []bool) *Datetime { return &Datetime{data: data, nulls: nulls} }

// NewDatetimeFromTimes builds a Datetime vector from time.Time values.
func NewDatetimeFromTimes(ts []time.Time) *Datetime {
	data := make([]int64, len(ts))
	for i, t := range ts {
		data[i] = t.UnixNano()
	}
	return &Datetime{data: data}
}

// Len returns the number of entries.
func (v *Datetime) Len() int { return len(v.data) }

// Domain returns types.Datetime.
func (v *Datetime) Domain() types.Domain { return types.Datetime }

// IsNull reports whether entry i is null.
func (v *Datetime) IsNull(i int) bool { return v.nulls != nil && v.nulls[i] }

// Value returns entry i.
func (v *Datetime) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Datetime)
	}
	return types.DatetimeFromNanos(v.data[i])
}

// RawData exposes the backing slice for bulk kernels. Callers must not
// mutate it.
func (v *Datetime) RawData() []int64 { return v.data }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Datetime) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Datetime{data: v.data[lo:hi], nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Datetime) Take(idx []int) Vector {
	data := make([]int64, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		}
	}
	return &Datetime{data: data, nulls: takeNulls(v.nulls, idx)}
}

// Dict is a dictionary-encoded vector in the category domain: each entry is
// a code into a shared dictionary of distinct strings.
type Dict struct {
	codes []int32
	dict  []string
	nulls []bool
}

// NewDict wraps codes (indices into dict) and a dictionary as a category
// vector.
func NewDict(codes []int32, dict []string, nulls []bool) *Dict {
	return &Dict{codes: codes, dict: dict, nulls: nulls}
}

// NewDictFromStrings dictionary-encodes the given strings.
func NewDictFromStrings(data []string) *Dict {
	codes := make([]int32, len(data))
	index := make(map[string]int32)
	var dict []string
	var nulls []bool
	for i, s := range data {
		if types.IsNullLiteral(s) {
			if nulls == nil {
				nulls = make([]bool, len(data))
			}
			nulls[i] = true
			continue
		}
		c, ok := index[s]
		if !ok {
			c = int32(len(dict))
			dict = append(dict, s)
			index[s] = c
		}
		codes[i] = c
	}
	return &Dict{codes: codes, dict: dict, nulls: nulls}
}

// Len returns the number of entries.
func (v *Dict) Len() int { return len(v.codes) }

// Domain returns types.Category.
func (v *Dict) Domain() types.Domain { return types.Category }

// IsNull reports whether entry i is null.
func (v *Dict) IsNull(i int) bool { return v.nulls != nil && v.nulls[i] }

// Value returns entry i.
func (v *Dict) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(types.Category)
	}
	return types.CategoryValue(v.dict[v.codes[i]])
}

// Categories returns the dictionary of distinct category labels.
func (v *Dict) Categories() []string { return v.dict }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Dict) Slice(lo, hi int) Vector {
	checkSlice(len(v.codes), lo, hi)
	return &Dict{codes: v.codes[lo:hi], dict: v.dict, nulls: sliceNulls(v.nulls, lo, hi)}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Dict) Take(idx []int) Vector {
	codes := make([]int32, len(idx))
	for j, i := range idx {
		if i >= 0 {
			codes[j] = v.codes[i]
		}
	}
	return &Dict{codes: codes, dict: v.dict, nulls: takeNulls(v.nulls, idx)}
}

// NullCount returns the number of null entries, scanning only the null
// mask (zero when the vector has none).
func (v *Object) NullCount() int { return countMask(v.nulls) }

// NullCount returns the number of null entries, scanning only the null
// mask (zero when the vector has none).
func (v *Int) NullCount() int { return countMask(v.nulls) }

// NullCount returns the number of null entries directly from storage
// (mask bits plus unmasked NaN payloads, which read as null).
func (v *Float) NullCount() int {
	n := 0
	for i, x := range v.data {
		if (v.nulls != nil && v.nulls[i]) || math.IsNaN(x) {
			n++
		}
	}
	return n
}

// NullCount returns the number of null entries, scanning only the null
// mask (zero when the vector has none).
func (v *Bool) NullCount() int { return countMask(v.nulls) }

// NullCount returns the number of null entries, scanning only the null
// mask (zero when the vector has none).
func (v *Datetime) NullCount() int { return countMask(v.nulls) }

// NullCount returns the number of null entries, scanning only the null
// mask (zero when the vector has none).
func (v *Dict) NullCount() int { return countMask(v.nulls) }

package vector

import "repro/internal/types"

// Any is a vector of arbitrary Values, used for Composite-domain columns
// (collect aggregates) and other transient heterogeneous columns. It trades
// the columnar layout for generality; operators consume Any columns promptly
// (e.g. the MAP-flatten step of a pivot).
type Any struct {
	data []types.Value
}

// NewAny wraps the given values as an Any vector. The slice is not copied.
func NewAny(data []types.Value) *Any { return &Any{data: data} }

// Len returns the number of entries.
func (v *Any) Len() int { return len(v.data) }

// Domain returns types.Composite.
func (v *Any) Domain() types.Domain { return types.Composite }

// IsNull reports whether entry i is null.
func (v *Any) IsNull(i int) bool { return v.data[i].IsNull() }

// Value returns entry i.
func (v *Any) Value(i int) types.Value { return v.data[i] }

// Slice returns the subvector [lo, hi), sharing storage.
func (v *Any) Slice(lo, hi int) Vector {
	checkSlice(len(v.data), lo, hi)
	return &Any{data: v.data[lo:hi]}
}

// Take returns the entries at idx, with -1 yielding null.
func (v *Any) Take(idx []int) Vector {
	data := make([]types.Value, len(idx))
	for j, i := range idx {
		if i >= 0 {
			data[j] = v.data[i]
		} else {
			data[j] = types.NullValue(types.Composite)
		}
	}
	return &Any{data: data}
}

package vector

import (
	"repro/internal/types"
)

// view is a lazily-indexed projection of a base vector: entry i reads base
// entry idx[i]. It is the zero-copy selection-vector primitive the shuffle
// partition phase routes rows with — bucket views share the base column's
// storage, so splitting a band into B buckets allocates only the per-bucket
// index slices, never cell data.
type view struct {
	base Vector
	idx  []int
}

// TakeView returns a view of base at the given positions without copying
// entries; index -1 yields null, mirroring Take. The view pins base for its
// lifetime — use Take when the result must outlive a much larger base.
func TakeView(base Vector, idx []int) Vector {
	return &view{base: base, idx: idx}
}

// Len returns the number of selected entries.
func (v *view) Len() int { return len(v.idx) }

// Domain returns the base vector's domain.
func (v *view) Domain() types.Domain { return v.base.Domain() }

// IsNull reports whether selected entry i is null.
func (v *view) IsNull(i int) bool {
	if v.idx[i] < 0 {
		return true
	}
	return v.base.IsNull(v.idx[i])
}

// Value returns selected entry i.
func (v *view) Value(i int) types.Value {
	if v.idx[i] < 0 {
		return types.NullValue(v.base.Domain())
	}
	return v.base.Value(v.idx[i])
}

// Slice returns the subview [lo, hi), sharing the index slice.
func (v *view) Slice(lo, hi int) Vector {
	checkSlice(len(v.idx), lo, hi)
	return &view{base: v.base, idx: v.idx[lo:hi]}
}

// ViewParts exposes a view's base vector and selection indices, reporting
// ok=false for any other vector kind. Fused selection chains use this to
// compose a new selection over the original storage instead of stacking
// views on views.
func ViewParts(v Vector) (base Vector, idx []int, ok bool) {
	vw, ok := v.(*view)
	if !ok {
		return nil, nil, false
	}
	return vw.base, vw.idx, true
}

// Materialize flattens a view into typed storage via its base's Take;
// non-view vectors are returned unchanged. This is the single coalescing
// copy a fused stage pays at exit after chaining selections as views.
func Materialize(v Vector) Vector {
	vw, ok := v.(*view)
	if !ok {
		return v
	}
	return vw.base.Take(vw.idx)
}

// Take composes the selection vectors and materializes through the base
// (views are for transient routing; a take of a take flattens the chain).
func (v *view) Take(idx []int) Vector {
	composed := make([]int, len(idx))
	for j, i := range idx {
		if i < 0 || v.idx[i] < 0 {
			composed[j] = -1
		} else {
			composed[j] = v.idx[i]
		}
	}
	return v.base.Take(composed)
}

package vector

import (
	"repro/internal/types"
)

// Builder accumulates values and produces an immutable Vector in a fixed
// domain. Appending a value outside the domain coerces it through the
// domain's rendered form; this mirrors the paper's convention that the cell
// array is over Σ* and typed views are parses of it.
type Builder struct {
	dom types.Domain

	strs   []string
	ints   []int64
	floats []float64
	bools  []bool

	codes     []int32
	dict      []string
	dictIndex map[string]int32

	anys []types.Value // Composite domain

	nulls   []bool
	anyNull bool
	n       int
}

// NewBuilder returns a builder for domain d with capacity hint capHint.
// Unspecified builds an Object vector.
func NewBuilder(d types.Domain, capHint int) *Builder {
	if d == types.Unspecified {
		d = types.Object
	}
	b := &Builder{dom: d}
	switch d {
	case types.Object:
		b.strs = make([]string, 0, capHint)
	case types.Int:
		b.ints = make([]int64, 0, capHint)
	case types.Float:
		b.floats = make([]float64, 0, capHint)
	case types.Bool:
		b.bools = make([]bool, 0, capHint)
	case types.Datetime:
		b.ints = make([]int64, 0, capHint)
	case types.Category:
		b.codes = make([]int32, 0, capHint)
		b.dictIndex = make(map[string]int32)
	case types.Composite:
		b.anys = make([]types.Value, 0, capHint)
	}
	b.nulls = make([]bool, 0, capHint)
	return b
}

// NewObjectBuilder returns a builder for the Object domain.
func NewObjectBuilder(capHint int) *Builder { return NewBuilder(types.Object, capHint) }

// Domain returns the domain the builder produces.
func (b *Builder) Domain() types.Domain { return b.dom }

// Len returns the number of values appended so far.
func (b *Builder) Len() int { return b.n }

// AppendNull appends the domain's null.
func (b *Builder) AppendNull() {
	b.anyNull = true
	b.nulls = append(b.nulls, true)
	b.n++
	switch b.dom {
	case types.Object:
		b.strs = append(b.strs, "")
	case types.Int, types.Datetime:
		b.ints = append(b.ints, 0)
	case types.Float:
		b.floats = append(b.floats, 0)
	case types.Bool:
		b.bools = append(b.bools, false)
	case types.Category:
		b.codes = append(b.codes, 0)
	case types.Composite:
		b.anys = append(b.anys, types.NullValue(types.Composite))
	}
}

// Append appends v, coercing across domains where a faithful coercion
// exists (numeric widening, anything → Object via rendering) and appending
// null when none does.
func (b *Builder) Append(v types.Value) {
	if b.dom == types.Composite {
		b.anys = append(b.anys, v)
		b.nulls = append(b.nulls, v.IsNull())
		if v.IsNull() {
			b.anyNull = true
		}
		b.n++
		return
	}
	if v.IsNull() {
		b.AppendNull()
		return
	}
	switch b.dom {
	case types.Object:
		b.appendStr(v.Str())
	case types.Category:
		b.appendCategory(v.Str())
	case types.Int:
		switch v.Domain() {
		case types.Int, types.Datetime:
			b.appendInt(v.Int())
		case types.Float:
			b.appendInt(int64(v.Float()))
		case types.Bool:
			if v.Bool() {
				b.appendInt(1)
			} else {
				b.appendInt(0)
			}
		default:
			if parsed, err := types.Int.Parse(v.Str()); err == nil && !parsed.IsNull() {
				b.appendInt(parsed.Int())
			} else {
				b.AppendNull()
			}
		}
	case types.Float:
		switch v.Domain() {
		case types.Int, types.Float, types.Bool:
			b.appendFloat(v.Float())
		default:
			if parsed, err := types.Float.Parse(v.Str()); err == nil && !parsed.IsNull() {
				b.appendFloat(parsed.Float())
			} else {
				b.AppendNull()
			}
		}
	case types.Bool:
		switch v.Domain() {
		case types.Bool:
			b.appendBool(v.Bool())
		case types.Int:
			b.appendBool(v.Int() != 0)
		case types.Float:
			b.appendBool(v.Float() != 0)
		default:
			if parsed, err := types.Bool.Parse(v.Str()); err == nil && !parsed.IsNull() {
				b.appendBool(parsed.Bool())
			} else {
				b.AppendNull()
			}
		}
	case types.Datetime:
		switch v.Domain() {
		case types.Datetime:
			b.appendInt(v.Int())
		default:
			if parsed, err := types.Datetime.Parse(v.Str()); err == nil && !parsed.IsNull() {
				b.appendInt(parsed.Int())
			} else {
				b.AppendNull()
			}
		}
	}
}

// AppendString appends a raw string, treating null literals as null. For
// Object builders this is the zero-parse fast path used during ingest.
func (b *Builder) AppendString(s string) {
	if types.IsNullLiteral(s) {
		b.AppendNull()
		return
	}
	switch b.dom {
	case types.Object:
		b.appendStr(s)
	case types.Category:
		b.appendCategory(s)
	default:
		v, err := b.dom.Parse(s)
		if err != nil {
			b.AppendNull()
			return
		}
		b.Append(v)
	}
}

// AppendInt appends an int64 directly (Int and Datetime builders).
func (b *Builder) AppendInt(i int64) { b.appendInt(i) }

// AppendFloat appends a float64 directly (Float builders).
func (b *Builder) AppendFloat(f float64) { b.appendFloat(f) }

// AppendBool appends a bool directly (Bool builders).
func (b *Builder) AppendBool(v bool) { b.appendBool(v) }

func (b *Builder) appendStr(s string) {
	b.strs = append(b.strs, s)
	b.nulls = append(b.nulls, false)
	b.n++
}

func (b *Builder) appendCategory(s string) {
	c, ok := b.dictIndex[s]
	if !ok {
		c = int32(len(b.dict))
		b.dict = append(b.dict, s)
		b.dictIndex[s] = c
	}
	b.codes = append(b.codes, c)
	b.nulls = append(b.nulls, false)
	b.n++
}

func (b *Builder) appendInt(i int64) {
	b.ints = append(b.ints, i)
	b.nulls = append(b.nulls, false)
	b.n++
}

func (b *Builder) appendFloat(f float64) {
	b.floats = append(b.floats, f)
	b.nulls = append(b.nulls, false)
	b.n++
}

func (b *Builder) appendBool(v bool) {
	b.bools = append(b.bools, v)
	b.nulls = append(b.nulls, false)
	b.n++
}

// Build finalizes the builder into an immutable Vector. The builder must
// not be used afterwards.
func (b *Builder) Build() Vector {
	var nulls []bool
	if b.anyNull {
		nulls = b.nulls
	}
	switch b.dom {
	case types.Object:
		return &Object{data: b.strs, nulls: nulls}
	case types.Int:
		return &Int{data: b.ints, nulls: nulls}
	case types.Float:
		return &Float{data: b.floats, nulls: nulls}
	case types.Bool:
		return &Bool{data: b.bools, nulls: nulls}
	case types.Datetime:
		return &Datetime{data: b.ints, nulls: nulls}
	case types.Category:
		return &Dict{codes: b.codes, dict: b.dict, nulls: nulls}
	case types.Composite:
		return &Any{data: b.anys}
	}
	return &Object{data: b.strs, nulls: nulls}
}

package session

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// Spilling connects the session's materialized-intermediate cache to the
// storage layer (Section 3.3 + the eviction discussion of Section 6.2.2):
// when more results are resident than the configured budget allows, the
// least recently materialized ones move to the store (which itself spills
// to disk beyond its own cell budget) and reload transparently on reuse.

// EnableSpilling attaches a store and a resident-result budget to the
// session. Must be called before issuing statements.
func (s *Session) EnableSpilling(store *storage.Store, maxResident int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adoptStoreLocked(store, false)
	s.maxResident = maxResident
}

// adoptStoreLocked swaps the session's spill store. Results spilled into
// the outgoing store are reloaded first so they survive the handoff, and an
// outgoing store the session owned is closed — re-enabling spilling must
// not leak the previous store's temp directory.
func (s *Session) adoptStoreLocked(store *storage.Store, owned bool) {
	if s.store != nil {
		for plan := range s.spilled {
			s.reloadLocked(plan)
		}
		if s.ownedStore {
			s.store.Close()
		}
	}
	s.store = store
	s.ownedStore = owned
}

// EnableSpillingBudget attaches a session-owned spill store with a
// resident-cell budget: whenever the materialized intermediates exceed
// maxCells cells, the coldest (least recently materialized) resolved
// results move to disk and reload transparently on reuse. The store is
// removed by Close. This is the per-tenant memory-governance hook the
// server's admission control drives.
func (s *Session) EnableSpillingBudget(maxCells int) error {
	store, err := storage.New(1) // store budget 1: spilled results go straight to disk
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		store.Close()
		return errClosed()
	}
	s.adoptStoreLocked(store, true)
	s.maxCells = maxCells
	// Re-enforce immediately: results reloaded from a previous store (or
	// already resident) spill down to the new budget now, not at the next
	// statement.
	s.maybeSpillLocked()
	return nil
}

// frameCells is the memory-accounting unit, matching the storage layer's:
// one cell per value plus one for the frame itself.
func frameCells(df *core.DataFrame) int { return df.NRows()*df.NCols() + 1 }

// residentCellsLocked sums the cells of resolved, successful
// materializations currently held in memory.
func (s *Session) residentCellsLocked() int {
	cells := 0
	for _, fut := range s.materialized {
		if !fut.Ready() {
			continue
		}
		if v, err := fut.Wait(); err == nil {
			cells += frameCells(v.(*core.DataFrame))
		}
	}
	return cells
}

// ResidentCells reports the cells of materialized results currently held in
// memory (excluding the spill store's own transient residency).
func (s *Session) ResidentCells() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentCellsLocked()
}

// MemoryCells reports the session's total accountable memory: resident
// materialized results plus whatever the spill store still holds in memory.
// Tenant budget enforcement sums this across a tenant's sessions.
func (s *Session) MemoryCells() int {
	s.mu.Lock()
	store := s.store
	cells := s.residentCellsLocked()
	s.mu.Unlock()
	if store != nil {
		resident, _, _ := store.Stats()
		cells += resident
	}
	return cells
}

// SpillToFit spills cold resolved results (oldest first) until at most
// maxCells cells remain resident, reporting how many results were spilled.
// It is a no-op without a store. Unresolved (in-flight) results are never
// touched.
func (s *Session) SpillToFit(maxCells int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.Stats.Spills.Load()
	s.spillToCellsLocked(maxCells)
	return int(s.Stats.Spills.Load() - before)
}

// maybeSpillLocked evicts the oldest completed materializations beyond the
// configured budgets (result count and/or cells) into the store.
func (s *Session) maybeSpillLocked() {
	if s.store == nil {
		return
	}
	if s.maxCells > 0 {
		s.spillToCellsLocked(s.maxCells)
	}
	if s.maxResident <= 0 {
		return
	}
	resident := 0
	for _, plan := range s.residentOrder {
		if fut, ok := s.materialized[plan]; ok && fut.Ready() {
			resident++
		}
	}
	for i := 0; resident > s.maxResident && i < len(s.residentOrder); i++ {
		if s.spillPlanLocked(s.residentOrder[i]) {
			resident--
		}
	}
}

// spillToCellsLocked moves cold resolved results to the store until the
// resident cells fit maxCells.
func (s *Session) spillToCellsLocked(maxCells int) {
	if s.store == nil {
		return
	}
	resident := s.residentCellsLocked()
	for i := 0; resident > maxCells && i < len(s.residentOrder); i++ {
		victim := s.residentOrder[i]
		fut, ok := s.materialized[victim]
		if !ok || !fut.Ready() {
			continue
		}
		v, err := fut.Wait()
		if err != nil {
			continue
		}
		if s.spillPlanLocked(victim) {
			resident -= frameCells(v.(*core.DataFrame))
		}
	}
}

// spillPlanLocked moves one resolved result into the store, reporting
// whether it was spilled.
func (s *Session) spillPlanLocked(victim algebra.Node) bool {
	fut, ok := s.materialized[victim]
	if !ok || !fut.Ready() {
		return false
	}
	v, err := fut.Wait()
	if err != nil {
		return false
	}
	key := spillKey(victim)
	if err := s.store.Put(key, v.(*core.DataFrame)); err != nil {
		return false // spill failure: keep resident
	}
	s.store.Release(key)
	delete(s.materialized, victim)
	s.spilled[victim] = key
	s.Stats.Spills.Add(1)
	return true
}

// reloadLocked brings a spilled result back as a resolved future.
func (s *Session) reloadLocked(plan algebra.Node) (*exec.Future, bool) {
	key, ok := s.spilled[plan]
	if !ok {
		return nil, false
	}
	df, err := s.store.Get(key)
	if err != nil {
		return nil, false
	}
	fut := exec.Resolved(df)
	s.materialized[plan] = fut
	delete(s.spilled, plan)
	s.residentOrder = append(s.residentOrder, plan)
	s.Stats.SpillReloads.Add(1)
	return fut, true
}

func spillKey(plan algebra.Node) string {
	return fmt.Sprintf("stmt-%p", plan)
}

package session

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// Spilling connects the session's materialized-intermediate cache to the
// storage layer (Section 3.3 + the eviction discussion of Section 6.2.2):
// when more results are resident than the configured budget allows, the
// least recently materialized ones move to the store (which itself spills
// to disk beyond its own cell budget) and reload transparently on reuse.

// EnableSpilling attaches a store and a resident-result budget to the
// session. Must be called before issuing statements.
func (s *Session) EnableSpilling(store *storage.Store, maxResident int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = store
	s.maxResident = maxResident
}

// maybeSpillLocked evicts the oldest completed materializations beyond the
// budget into the store.
func (s *Session) maybeSpillLocked() {
	if s.store == nil || s.maxResident <= 0 {
		return
	}
	resident := 0
	for _, plan := range s.residentOrder {
		if fut, ok := s.materialized[plan]; ok && fut.Ready() {
			resident++
		}
	}
	for i := 0; resident > s.maxResident && i < len(s.residentOrder); i++ {
		victim := s.residentOrder[i]
		fut, ok := s.materialized[victim]
		if !ok || !fut.Ready() {
			continue
		}
		v, err := fut.Wait()
		if err != nil {
			continue
		}
		key := spillKey(victim)
		if err := s.store.Put(key, v.(*core.DataFrame)); err != nil {
			return // spill failure: keep resident
		}
		delete(s.materialized, victim)
		s.spilled[victim] = key
		s.Stats.Spills.Add(1)
		resident--
	}
}

// reloadLocked brings a spilled result back as a resolved future.
func (s *Session) reloadLocked(plan algebra.Node) (*exec.Future, bool) {
	key, ok := s.spilled[plan]
	if !ok {
		return nil, false
	}
	df, err := s.store.Get(key)
	if err != nil {
		return nil, false
	}
	fut := exec.Resolved(df)
	s.materialized[plan] = fut
	delete(s.spilled, plan)
	s.residentOrder = append(s.residentOrder, plan)
	s.Stats.SpillReloads.Add(1)
	return fut, true
}

func spillKey(plan algebra.Node) string {
	return fmt.Sprintf("stmt-%p", plan)
}

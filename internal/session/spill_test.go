package session

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algebra"
	"repro/internal/eager"
	"repro/internal/storage"
)

// storeDirs counts the storage layer's temp directories under the
// test-private TMPDIR.
func storeDirs(t *testing.T) int {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join(os.TempDir(), "dfstore-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(dirs)
}

// TestSpillingBudgetReenableClosesOldStore is the store-lifecycle
// regression test: enabling the budget twice must not leak the first
// session-owned store's temp directory, results spilled into the outgoing
// store must survive the handoff, and Close must remove the last one.
func TestSpillingBudgetReenableClosesOldStore(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // isolate the dfstore-* count from other tests

	s := New(eager.New(), Eager, nil)
	if err := s.EnableSpillingBudget(10); err != nil {
		t.Fatal(err)
	}
	if got := storeDirs(t); got != 1 {
		t.Fatalf("store dirs after first enable = %d, want 1", got)
	}

	// Push several results past the tiny cell budget so the first store
	// actually holds spilled frames when it is replaced.
	base := s.Bind("df", frame(100))
	handles := []*Handle{base}
	for i := 0; i < 3; i++ {
		n := 10 + i
		handles = append(handles, base.Apply("limit", func(in algebra.Node) algebra.Node {
			return &algebra.Limit{Input: in, N: n}
		}))
	}
	if s.Stats.Spills.Load() == 0 {
		t.Fatal("expected spills beyond the 10-cell budget")
	}

	if err := s.EnableSpillingBudget(10); err != nil {
		t.Fatal(err)
	}
	if got := storeDirs(t); got != 1 {
		t.Fatalf("store dirs after re-enable = %d, want 1 (old owned store must be closed)", got)
	}

	// Results spilled into the replaced store reloaded across the handoff
	// and still collect.
	for i, h := range handles {
		out, err := h.Collect()
		if err != nil {
			t.Fatalf("handle %d after re-enable: %v", i, err)
		}
		if out.NRows() == 0 {
			t.Fatalf("handle %d empty after re-enable", i)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := storeDirs(t); got != 0 {
		t.Fatalf("store dirs after Close = %d, want 0", got)
	}
}

// TestEnableSpillingDoesNotCloseCallerStore: a caller-provided store (the
// non-owned path) must stay usable after being replaced — the session never
// closes what it does not own.
func TestEnableSpillingDoesNotCloseCallerStore(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())

	store, err := storage.New(0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	s := New(eager.New(), Eager, nil)
	s.EnableSpilling(store, 1)
	// Swapping to a session-owned store must leave the caller's store open.
	if err := s.EnableSpillingBudget(10); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("probe", frame(5)); err != nil {
		t.Fatalf("caller store unusable after swap: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the caller's store directory remains; the owned one is gone.
	if got := storeDirs(t); got != 1 {
		t.Fatalf("store dirs after Close = %d, want 1 (the caller-owned store)", got)
	}
}

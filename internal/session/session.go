// Package session implements the user-model layer of Section 6: statements
// composed incrementally into queries over a session, evaluated under one
// of three regimes — eager (pandas-style, block on every statement), lazy
// (defer until a result is requested), or opportunistic (return control
// immediately and compute in the background during think time), with
// prefix/suffix-prioritized inspection (head/tail) and reuse of
// materialized intermediates.
package session

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/exec"
	"repro/internal/storage"
)

// Mode selects the evaluation regime of Section 6.1.1.
type Mode int

const (
	// Eager evaluates every statement fully before returning control:
	// the pandas behaviour.
	Eager Mode = iota
	// Lazy defers all computation until the user requests a result.
	Lazy
	// Opportunistic returns control immediately and evaluates in the
	// background during think time; inspection requests are served from
	// completed background work or prioritized partial evaluation.
	Opportunistic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Eager:
		return "eager"
	case Lazy:
		return "lazy"
	case Opportunistic:
		return "opportunistic"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Stats counts session activity for the evaluation-mode experiments.
type Stats struct {
	// Statements is the number of statements issued.
	Statements atomic.Int64
	// FullEvaluations counts complete plan executions.
	FullEvaluations atomic.Int64
	// PartialEvaluations counts prioritized head/tail executions that
	// avoided materializing the full result.
	PartialEvaluations atomic.Int64
	// ReuseHits counts statements served from materialized intermediates.
	ReuseHits atomic.Int64
	// BackgroundTasks counts opportunistic background executions started.
	BackgroundTasks atomic.Int64
	// Spills counts materialized results evicted to the storage layer.
	Spills atomic.Int64
	// SpillReloads counts results reloaded from the storage layer.
	SpillReloads atomic.Int64
}

// Session is one interactive analysis session: a sequence of statements
// sharing an engine, an evaluation mode, and a cache of materialized
// intermediate results.
type Session struct {
	engine algebra.Engine
	mode   Mode
	pool   *exec.Pool

	mu           sync.Mutex
	closed       bool
	materialized map[algebra.Node]*exec.Future // completed or in-flight plan results
	// Spilling state (see spill.go): order of materialization, spilled
	// plan → store key, the store itself, and the resident budgets (result
	// count and/or cells; zero disables the respective limit).
	residentOrder []algebra.Node
	spilled       map[algebra.Node]string
	store         *storage.Store
	ownedStore    bool
	maxResident   int
	maxCells      int

	// lastActive is the wall-clock time of the last statement or
	// inspection, for idle detection by think-time schedulers (unix nanos).
	lastActive atomic.Int64

	// Stats is exported for experiment harnesses.
	Stats Stats
}

// New starts a session on the given engine and mode. The pool carries
// opportunistic background work; nil uses the shared default.
func New(engine algebra.Engine, mode Mode, pool *exec.Pool) *Session {
	if pool == nil {
		pool = exec.Default
	}
	return &Session{
		engine:       engine,
		mode:         mode,
		pool:         pool,
		materialized: make(map[algebra.Node]*exec.Future),
		spilled:      make(map[algebra.Node]string),
	}
}

// Mode returns the session's evaluation mode.
func (s *Session) Mode() Mode { return s.mode }

// Engine returns the session's engine.
func (s *Session) Engine() algebra.Engine { return s.engine }

// Close ends the session: subsequent statements and result requests fail
// with dferrors.ErrSessionClosed, the materialized-intermediate cache is
// released, and a session-owned spill store is removed. In-flight
// background work is left to finish (its results are dropped). Closing an
// already-closed session is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.materialized = make(map[algebra.Node]*exec.Future)
	s.spilled = make(map[algebra.Node]string)
	s.residentOrder = nil
	store, owned := s.store, s.ownedStore
	s.store = nil
	s.mu.Unlock()
	if store != nil && owned {
		return store.Close()
	}
	return nil
}

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// errClosed wraps the sentinel with session context.
func errClosed() error { return fmt.Errorf("session: %w", dferrors.ErrSessionClosed) }

// touch records session activity for idle detection.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// LastActive returns the time of the session's last statement or
// inspection (zero before any activity).
func (s *Session) LastActive() time.Time {
	ns := s.lastActive.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// PendingBackground counts in-flight (not yet resolved) materializations:
// the opportunistic DAGs a think-time scheduler drains for idle sessions.
func (s *Session) PendingBackground() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.materialized {
		if !f.Ready() {
			n++
		}
	}
	return n
}

// Handle is the value a statement returns to the user: a named reference to
// an eventually-computed dataframe. Under eager evaluation it is already
// materialized; under lazy it is a plan; under opportunistic it is a future
// being computed during think time.
type Handle struct {
	s    *Session
	plan algebra.Node
	name string
}

// Bind introduces a source dataframe into the session (e.g. the result of
// read_csv).
func (s *Session) Bind(name string, df *core.DataFrame) *Handle {
	return s.Statement(name, &algebra.Source{DF: df, Name: name})
}

// Statement issues one statement: a plan extending earlier handles' plans.
// Per the session's mode it evaluates now, never, or in the background.
func (s *Session) Statement(name string, plan algebra.Node) *Handle {
	s.Stats.Statements.Add(1)
	s.touch()
	h := &Handle{s: s, plan: plan, name: name}
	switch s.mode {
	case Eager:
		fut := s.futureFor(plan, true)
		fut.Wait()
	case Opportunistic:
		s.futureFor(plan, true)
	case Lazy:
		// Nothing: computation waits for Collect/Head/Tail.
	}
	return h
}

// Apply composes a new statement from this handle's plan.
func (h *Handle) Apply(name string, build func(algebra.Node) algebra.Node) *Handle {
	return h.s.Statement(name, build(h.plan))
}

// Plan exposes the handle's logical plan.
func (h *Handle) Plan() algebra.Node { return h.plan }

// Name returns the handle's statement name.
func (h *Handle) Name() string { return h.name }

// AsyncEngine is implemented by engines (MODIN) that can schedule a plan's
// task DAG and hand back a future without blocking. Sessions prefer it for
// background work: the statement's tasks pipeline on the engine's pool
// instead of occupying a worker for the whole evaluation, and the
// opportunistic regime hands back a genuinely unresolved handle.
type AsyncEngine interface {
	algebra.Engine
	// ExecuteAsync schedules the plan and returns a future resolving to
	// the gathered *core.DataFrame.
	ExecuteAsync(algebra.Node) *exec.Future
}

// futureFor returns the materialization future for plan, starting one if
// needed. Reuse: a plan already materialized (or in flight) — including as
// a sub-plan of this one — is never recomputed.
func (s *Session) futureFor(plan algebra.Node, background bool) *exec.Future {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return exec.Failed(errClosed())
	}
	if fut, ok := s.materialized[plan]; ok {
		s.mu.Unlock()
		s.Stats.ReuseHits.Add(1)
		return fut
	}
	if fut, ok := s.reloadLocked(plan); ok {
		s.mu.Unlock()
		s.Stats.ReuseHits.Add(1)
		return fut
	}
	rewritten := s.substituteMaterializedLocked(plan)
	record := func(out any, err error) (any, error) {
		s.Stats.FullEvaluations.Add(1)
		if err == nil {
			s.mu.Lock()
			if !s.closed {
				s.residentOrder = append(s.residentOrder, plan)
				s.maybeSpillLocked()
			}
			s.mu.Unlock()
		}
		return out, err
	}
	if background {
		s.Stats.BackgroundTasks.Add(1)
		// Register a promise under the lock (so concurrent statements
		// reuse this evaluation), but schedule outside it: Pool.Submit
		// may run the task inline when its queue is full, and the task's
		// bookkeeping re-enters the session lock.
		fut, resolve := exec.NewPromise()
		s.materialized[plan] = fut
		s.mu.Unlock()
		var inner *exec.Future
		if ae, ok := s.engine.(AsyncEngine); ok {
			// Deferred execution: the engine schedules the plan's task
			// DAG now; the bookkeeping chains on its future instead of
			// occupying a pool worker for the whole evaluation.
			inner = ae.ExecuteAsync(rewritten)
		} else {
			inner = s.pool.Submit(func() (any, error) {
				return s.engine.Execute(rewritten)
			})
		}
		go func() { resolve(record(inner.Wait())) }()
		return fut
	}
	// Synchronous evaluation runs outside the lock: record re-enters the
	// session for spill bookkeeping.
	s.mu.Unlock()
	var fut *exec.Future
	if v, err := record(s.engine.Execute(rewritten)); err != nil {
		fut = exec.Failed(err)
	} else {
		fut = exec.Resolved(v)
	}
	s.mu.Lock()
	if !s.closed {
		s.materialized[plan] = fut
	}
	s.mu.Unlock()
	return fut
}

// substituteMaterializedLocked rewrites the plan, replacing any sub-plan
// whose result is already materialized with a Source over that result —
// the intermediate-reuse mechanism of Section 6.2.2.
func (s *Session) substituteMaterializedLocked(plan algebra.Node) algebra.Node {
	children := plan.Children()
	if len(children) == 0 {
		return plan
	}
	newChildren := make([]algebra.Node, len(children))
	changed := false
	for i, c := range children {
		if fut, ok := s.materialized[c]; ok && fut.Ready() {
			if v, err := fut.Wait(); err == nil {
				s.Stats.ReuseHits.Add(1)
				newChildren[i] = &algebra.Source{DF: v.(*core.DataFrame), Name: "materialized"}
				changed = true
				continue
			}
		}
		nc := s.substituteMaterializedLocked(c)
		if nc != c {
			changed = true
		}
		newChildren[i] = nc
	}
	if !changed {
		return plan
	}
	return cloneWithChildren(plan, newChildren)
}

// Collect materializes the handle's full result, waiting for background
// work when it is already in flight.
func (h *Handle) Collect() (*core.DataFrame, error) {
	fut := h.s.futureFor(h.plan, false)
	v, err := fut.Wait()
	if err != nil {
		return nil, err
	}
	return v.(*core.DataFrame), nil
}

// Head returns the ordered k-prefix of the handle's result. If the full
// result is not yet materialized, only the prefix is computed (LIMIT plan),
// prioritizing what the user actually inspects (Section 6.1.2); the full
// computation continues (or will be scheduled) separately under
// opportunistic evaluation.
func (h *Handle) Head(k int) (*core.DataFrame, error) { return h.view(k) }

// Tail returns the ordered k-suffix, with the same prioritization as Head.
func (h *Handle) Tail(k int) (*core.DataFrame, error) { return h.view(-k) }

func (h *Handle) view(n int) (*core.DataFrame, error) {
	s := h.s
	s.touch()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed()
	}
	fut, inFlight := s.materialized[h.plan]
	s.mu.Unlock()
	if inFlight && fut.Ready() {
		v, err := fut.Wait()
		if err != nil {
			return nil, err
		}
		return algebra.LimitFrame(v.(*core.DataFrame), n), nil
	}
	// Not (yet) materialized: evaluate only the prefix/suffix now.
	s.Stats.PartialEvaluations.Add(1)
	limited := &algebra.Limit{Input: h.plan, N: n}
	s.mu.Lock()
	rewritten := s.substituteMaterializedLocked(limited)
	s.mu.Unlock()
	return s.engine.Execute(rewritten)
}

// Ready reports whether the handle's full result is materialized.
func (h *Handle) Ready() bool {
	h.s.mu.Lock()
	fut, ok := h.s.materialized[h.plan]
	h.s.mu.Unlock()
	return ok && fut.Ready()
}

// Wait blocks until any background materialization of this handle finishes
// (no-op if none was scheduled).
func (h *Handle) Wait() {
	h.s.mu.Lock()
	fut, ok := h.s.materialized[h.plan]
	h.s.mu.Unlock()
	if ok {
		fut.Wait()
	}
}

// ThinkTime lets the harness model user think time: it blocks until all
// in-flight background work completes, as a user pause would allow.
func (s *Session) ThinkTime() {
	s.mu.Lock()
	futs := make([]*exec.Future, 0, len(s.materialized))
	for _, f := range s.materialized {
		futs = append(futs, f)
	}
	s.mu.Unlock()
	for _, f := range futs {
		f.Wait()
	}
}

// Forget drops the handle's materialized result (the eviction decision of
// Section 6.2.2's materialization-management discussion).
func (h *Handle) Forget() {
	h.s.mu.Lock()
	delete(h.s.materialized, h.plan)
	h.s.mu.Unlock()
}

// cloneWithChildren mirrors optimizer.WithChildren without importing it (to
// keep the session layer independent of the optimizer).
func cloneWithChildren(n algebra.Node, kids []algebra.Node) algebra.Node {
	switch node := n.(type) {
	case *algebra.Selection:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Projection:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Union:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.Difference:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.Join:
		c := *node
		c.Left, c.Right = kids[0], kids[1]
		return &c
	case *algebra.DropDuplicates:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.GroupBy:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Sort:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Rename:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Window:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Transpose:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Map:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.ToLabels:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.FromLabels:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Induce:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Limit:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.TopK:
		c := *node
		c.Input = kids[0]
		return &c
	case *algebra.Source:
		return node
	case *algebra.Scan:
		return node
	}
	panic(fmt.Sprintf("session: unknown node %T", n))
}

package session

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/storage"
	"repro/internal/types"
)

func frame(rows int) *core.DataFrame {
	records := make([][]any, rows)
	for i := range records {
		records[i] = []any{i, []string{"x", "y", "z"}[i%3], float64(i) * 0.5}
	}
	return core.MustFromRecords([]string{"id", "tag", "val"}, records)
}

func filterPlan(in algebra.Node) algebra.Node {
	return &algebra.Selection{
		Input: in,
		Pred:  expr.ColEquals("tag", types.String("x")),
		Desc:  "tag==x",
	}
}

func TestModeNames(t *testing.T) {
	if Eager.String() != "eager" || Lazy.String() != "lazy" || Opportunistic.String() != "opportunistic" {
		t.Error("mode names wrong")
	}
}

func TestEagerEvaluatesImmediately(t *testing.T) {
	s := New(eager.New(), Eager, nil)
	h := s.Bind("df", frame(50)).Apply("filtered", filterPlan)
	if !h.Ready() {
		t.Error("eager statements should be materialized on issue")
	}
	out, err := h.Collect()
	if err != nil || out.NRows() != 17 {
		t.Errorf("collect: %v rows=%d", err, out.NRows())
	}
	if s.Stats.FullEvaluations.Load() == 0 {
		t.Error("eager should have evaluated")
	}
}

func TestLazyDefersUntilCollect(t *testing.T) {
	s := New(eager.New(), Lazy, nil)
	h := s.Bind("df", frame(50)).Apply("filtered", filterPlan)
	if h.Ready() {
		t.Error("lazy statements must not evaluate on issue")
	}
	if s.Stats.FullEvaluations.Load() != 0 {
		t.Error("no evaluation should have happened yet")
	}
	out, err := h.Collect()
	if err != nil || out.NRows() != 17 {
		t.Errorf("collect: %v", err)
	}
}

func TestOpportunisticBackgroundsWork(t *testing.T) {
	s := New(modin.New(), Opportunistic, nil)
	h := s.Bind("df", frame(2000)).Apply("filtered", filterPlan)
	// Control returned immediately; background work proceeds.
	s.ThinkTime()
	if !h.Ready() {
		t.Error("think time should let background work finish")
	}
	out, err := h.Collect()
	if err != nil || out.NRows() != 667 {
		t.Errorf("collect: %v rows=%d", err, out.NRows())
	}
	if s.Stats.BackgroundTasks.Load() == 0 {
		t.Error("background tasks should have been scheduled")
	}
}

func TestLazyHeadComputesOnlyPrefix(t *testing.T) {
	s := New(eager.New(), Lazy, nil)
	h := s.Bind("df", frame(1000)).Apply("filtered", filterPlan)
	head, err := h.Head(5)
	if err != nil {
		t.Fatal(err)
	}
	if head.NRows() != 5 {
		t.Errorf("head rows = %d", head.NRows())
	}
	if head.Value(0, 0).Int() != 0 || head.Value(4, 0).Int() != 12 {
		t.Errorf("head content wrong:\n%s", head)
	}
	if s.Stats.PartialEvaluations.Load() != 1 {
		t.Error("head should be a partial evaluation")
	}
	if s.Stats.FullEvaluations.Load() != 0 {
		// The prefix runs as a LIMIT plan outside the materialization
		// path: the un-limited plan must not have been evaluated.
		t.Errorf("full evals = %d, want 0", s.Stats.FullEvaluations.Load())
	}
	if h.Ready() {
		t.Error("head must not materialize the full result")
	}
}

func TestTailView(t *testing.T) {
	s := New(eager.New(), Lazy, nil)
	h := s.Bind("df", frame(100))
	tail, err := h.Tail(3)
	if err != nil || tail.NRows() != 3 {
		t.Fatal(err)
	}
	if tail.Value(2, 0).Int() != 99 {
		t.Error("tail content wrong")
	}
}

func TestHeadServedFromMaterialized(t *testing.T) {
	s := New(eager.New(), Eager, nil)
	h := s.Bind("df", frame(100)).Apply("filtered", filterPlan)
	partialBefore := s.Stats.PartialEvaluations.Load()
	head, err := h.Head(4)
	if err != nil || head.NRows() != 4 {
		t.Fatal(err)
	}
	if s.Stats.PartialEvaluations.Load() != partialBefore {
		t.Error("head over a materialized result should not re-evaluate")
	}
}

func TestIntermediateReuse(t *testing.T) {
	s := New(eager.New(), Eager, nil)
	base := s.Bind("df", frame(500))
	filtered := base.Apply("filtered", filterPlan)
	evalsAfterFilter := s.Stats.FullEvaluations.Load()

	// Two downstream statements both build on "filtered": its
	// materialized result must be reused, not recomputed.
	a := filtered.Apply("proj-a", func(in algebra.Node) algebra.Node {
		return &algebra.Projection{Input: in, Cols: []string{"id"}}
	})
	b := filtered.Apply("proj-b", func(in algebra.Node) algebra.Node {
		return &algebra.Projection{Input: in, Cols: []string{"val"}}
	})
	if _, err := a.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Collect(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.ReuseHits.Load() < 2 {
		t.Errorf("reuse hits = %d, want >= 2", s.Stats.ReuseHits.Load())
	}
	// Each downstream evaluation is a projection over the materialized
	// source, so evaluations grew by exactly two.
	if got := s.Stats.FullEvaluations.Load() - evalsAfterFilter; got != 2 {
		t.Errorf("extra evaluations = %d, want 2", got)
	}
}

func TestCollectIsIdempotent(t *testing.T) {
	s := New(eager.New(), Lazy, nil)
	h := s.Bind("df", frame(100)).Apply("filtered", filterPlan)
	first, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	evals := s.Stats.FullEvaluations.Load()
	second, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Error("collect results differ")
	}
	if s.Stats.FullEvaluations.Load() != evals {
		t.Error("second collect should be served from cache")
	}
}

func TestForgetDropsMaterialization(t *testing.T) {
	s := New(eager.New(), Eager, nil)
	h := s.Bind("df", frame(50)).Apply("filtered", filterPlan)
	if !h.Ready() {
		t.Fatal("should be ready")
	}
	h.Forget()
	if h.Ready() {
		t.Error("forget should drop the result")
	}
	if _, err := h.Collect(); err != nil {
		t.Error("collect after forget should recompute")
	}
}

func TestOpportunisticTimeToFirstView(t *testing.T) {
	// The Section 6 claim at test scale: under opportunistic evaluation,
	// issuing a statement returns control before the work finishes.
	slow := &slowEngine{inner: eager.New(), delay: 50 * time.Millisecond}
	s := New(slow, Opportunistic, nil)
	start := time.Now()
	h := s.Bind("df", frame(100)).Apply("filtered", filterPlan)
	issueLatency := time.Since(start)
	if issueLatency > 25*time.Millisecond {
		t.Errorf("statement blocked for %v; opportunistic must return immediately", issueLatency)
	}
	h.Wait()
	if !h.Ready() {
		t.Error("background work should complete")
	}
	if slow.calls.Load() == 0 {
		t.Error("engine should have run")
	}
}

// slowEngine delays every execution to make blocking observable.
type slowEngine struct {
	inner algebra.Engine
	delay time.Duration
	calls atomic.Int64
}

func (s *slowEngine) Name() string { return "slow" }

func (s *slowEngine) Execute(n algebra.Node) (*core.DataFrame, error) {
	s.calls.Add(1)
	time.Sleep(s.delay)
	return s.inner.Execute(n)
}

func TestStatementCountsAndNames(t *testing.T) {
	s := New(eager.New(), Eager, nil)
	h := s.Bind("df", frame(10))
	if h.Name() != "df" {
		t.Error("name wrong")
	}
	h2 := h.Apply("f", filterPlan)
	if s.Stats.Statements.Load() != 2 {
		t.Error("statement count wrong")
	}
	if algebra.CountNodes(h2.Plan()) != 2 {
		t.Error("plan should chain")
	}
	if s.Mode() != Eager || s.Engine().Name() != "pandas-baseline" {
		t.Error("accessors wrong")
	}
}

func TestSpillingEvictsAndReloads(t *testing.T) {
	store, err := storage.New(0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	s := New(eager.New(), Eager, nil)
	s.EnableSpilling(store, 2) // keep at most 2 results resident

	base := s.Bind("df", frame(200))
	handles := []*Handle{base}
	for i := 0; i < 4; i++ {
		handles = append(handles, base.Apply("stmt", func(in algebra.Node) algebra.Node {
			return &algebra.Limit{Input: in, N: 10 + i}
		}))
	}
	if s.Stats.Spills.Load() == 0 {
		t.Fatal("expected spills beyond the resident budget")
	}
	// Every handle still collects correctly — spilled ones reload.
	for i, h := range handles {
		out, err := h.Collect()
		if err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
		if out.NRows() == 0 {
			t.Fatalf("handle %d empty", i)
		}
	}
	if s.Stats.SpillReloads.Load() == 0 {
		t.Error("expected at least one reload from the store")
	}
}

func TestSpillingPreservesResults(t *testing.T) {
	store, err := storage.New(0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	plain := New(eager.New(), Eager, nil)
	spilling := New(eager.New(), Eager, nil)
	spilling.EnableSpilling(store, 1)

	build := func(s *Session) *core.DataFrame {
		h := s.Bind("df", frame(300)).Apply("filtered", filterPlan)
		s.Bind("other", frame(50)) // displaces the filtered result
		out, err := h.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(plain), build(spilling)
	if !a.Equal(b) {
		t.Error("spilled session result differs from plain session")
	}
}

func TestAsyncEngineBackgroundStatementIsDeferred(t *testing.T) {
	// The MODIN engine implements AsyncEngine: an opportunistic statement
	// hands back an unresolved handle whose task DAG is already scheduled,
	// without occupying a pool worker for the whole evaluation.
	var _ AsyncEngine = modin.New() // compile-time wiring check

	gate := make(chan struct{})
	slow := expr.MapFn{
		Name:    "gated",
		OutCols: []types.Value{types.String("pos")},
		Fn: func(r expr.Row) []types.Value {
			<-gate
			return []types.Value{types.IntValue(int64(r.Position()))}
		},
	}
	s := New(modin.New(), Opportunistic, nil)
	h := s.Bind("df", frame(40)).Apply("mapped", func(in algebra.Node) algebra.Node {
		return &algebra.Map{Input: in, Fn: slow}
	})
	if h.Ready() {
		t.Fatal("gated opportunistic statement should be unresolved")
	}
	close(gate)
	out, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 40 {
		t.Errorf("rows = %d", out.NRows())
	}
	s.ThinkTime()                                        // drain the Bind statement's background evaluation too
	if got := s.Stats.FullEvaluations.Load(); got != 2 { // source bind + map
		t.Errorf("full evaluations = %d, want 2", got)
	}
	if s.Stats.BackgroundTasks.Load() == 0 {
		t.Error("statement should have been scheduled in the background")
	}
}

func TestAsyncEngineErrorSurfacesOnCollect(t *testing.T) {
	bad := expr.MapFn{
		Name:    "boom",
		OutCols: []types.Value{types.String("x")},
		Fn:      func(r expr.Row) []types.Value { panic("udf kaboom") },
	}
	s := New(modin.New(), Opportunistic, nil)
	h := s.Bind("df", frame(20)).Apply("bad", func(in algebra.Node) algebra.Node {
		return &algebra.Map{Input: in, Fn: bad}
	})
	if _, err := h.Collect(); err == nil {
		t.Error("failing background statement should surface on Collect")
	}
}

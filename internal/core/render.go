package core

import (
	"fmt"
	"strings"
)

// RenderOptions controls the tabular view of a dataframe — the partial
// prefix/suffix display of Section 6.1.2 that users rely on for debugging
// and validation.
type RenderOptions struct {
	// MaxRows bounds the rows shown; when exceeded, the view shows the
	// first MaxRows/2 and last MaxRows/2 with an ellipsis row between.
	MaxRows int
	// MaxCols bounds the columns shown the same way.
	MaxCols int
	// MaxWidth truncates individual cell renderings.
	MaxWidth int
	// ShowDomains appends a dtype footer like pandas' df.dtypes summary.
	ShowDomains bool
}

// DefaultRenderOptions mirrors the pandas display defaults at small scale.
func DefaultRenderOptions() RenderOptions {
	return RenderOptions{MaxRows: 10, MaxCols: 8, MaxWidth: 24, ShowDomains: false}
}

// String renders the dataframe with default options.
func (df *DataFrame) String() string { return df.Render(DefaultRenderOptions()) }

// Render renders the tabular view: row labels on the left, column labels on
// top, prefix and suffix rows/columns with ellipses in between.
func (df *DataFrame) Render(opts RenderOptions) string {
	if opts.MaxRows <= 0 {
		opts.MaxRows = 10
	}
	if opts.MaxCols <= 0 {
		opts.MaxCols = 8
	}
	if opts.MaxWidth <= 0 {
		opts.MaxWidth = 24
	}

	rowIdx, rowGap := windowIndices(df.NRows(), opts.MaxRows)
	colIdx, colGap := windowIndices(df.NCols(), opts.MaxCols)

	clip := func(s string) string {
		if len(s) > opts.MaxWidth {
			return s[:opts.MaxWidth-1] + "…"
		}
		return s
	}

	header := make([]string, 0, len(colIdx)+1)
	header = append(header, "")
	for k, j := range colIdx {
		if colGap >= 0 && k == colGap {
			header = append(header, "...")
		}
		header = append(header, clip(df.ColName(j)))
	}
	if colGap == len(colIdx) {
		header = append(header, "...")
	}

	rows := [][]string{header}
	for k, i := range rowIdx {
		if rowGap >= 0 && k == rowGap {
			rows = append(rows, ellipsisRow(len(header)))
		}
		row := make([]string, 0, len(header))
		row = append(row, clip(df.rowLab.Value(i).String()))
		for kk, j := range colIdx {
			if colGap >= 0 && kk == colGap {
				row = append(row, "...")
			}
			row = append(row, clip(df.Value(i, j).String()))
		}
		if colGap == len(colIdx) {
			row = append(row, "...")
		}
		rows = append(rows, row)
	}
	if rowGap == len(rowIdx) {
		rows = append(rows, ellipsisRow(len(header)))
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}

	var b strings.Builder
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "[%d rows x %d columns]\n", df.NRows(), df.NCols())
	if opts.ShowDomains {
		b.WriteString("domains:")
		for j := 0; j < df.NCols(); j++ {
			fmt.Fprintf(&b, " %s=%s", df.ColName(j), df.Domain(j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// windowIndices picks the indices shown for a prefix/suffix window over n
// items with a budget of max. gap is the position within the returned slice
// before which an ellipsis belongs, or -1 when nothing is elided.
func windowIndices(n, max int) (idx []int, gap int) {
	if n <= max {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx, -1
	}
	head := (max + 1) / 2
	tail := max - head
	idx = make([]int, 0, max)
	for i := 0; i < head; i++ {
		idx = append(idx, i)
	}
	for i := n - tail; i < n; i++ {
		idx = append(idx, i)
	}
	return idx, head
}

func ellipsisRow(n int) []string {
	row := make([]string, n)
	for i := range row {
		row[i] = "..."
	}
	return row
}

package core

import (
	"sync/atomic"

	"repro/internal/vector"
)

// Detach deep-copies the frame's column and label storage so the result
// shares no backing arrays with df. Compact only materializes view
// (selection-vector) columns; a frame built from Slice windows — a sort
// shuffle's routed runs in particular — still aliases the arrays of the
// frame it was sliced from, pinning that frame in memory for as long as
// the slice lives. Spill-aware shuffles detach routed pieces so a streamed
// band is actually freed once it has been routed.
func (df *DataFrame) Detach() *DataFrame {
	cols := make([]vector.Vector, len(df.cols))
	for j, c := range df.cols {
		cols[j] = vector.Clone(c)
	}
	out := *df
	out.cols = cols
	out.rowLab = vector.Clone(df.rowLab)
	out.domains = make([]int64, len(df.domains))
	for j := range df.domains {
		out.domains[j] = atomic.LoadInt64(&df.domains[j])
	}
	return &out
}

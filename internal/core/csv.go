package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// CSVOptions configures CSV ingest.
type CSVOptions struct {
	// Comma is the field delimiter (default ',').
	Comma rune
	// Header indicates the first record carries column labels.
	Header bool
	// InduceNow runs schema induction eagerly at ingest; the default is
	// the paper's lazy typing, deferring S until a column is operated on.
	InduceNow bool
}

// DefaultCSVOptions reads comma-separated data with a header row and lazy
// typing.
func DefaultCSVOptions() CSVOptions { return CSVOptions{Comma: ',', Header: true} }

// ReadCSV ingests CSV data as a dataframe. Per Section 5.2.1, the frame's
// row and column order is the file's order, and — matching the untyped
// reality of csv files — every column starts as raw Σ* with an unspecified
// domain unless InduceNow is set.
func ReadCSV(r io.Reader, opts CSVOptions) (*DataFrame, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: read csv: %w", err)
	}
	if len(records) == 0 {
		return Empty(), nil
	}
	var names []string
	if opts.Header {
		names = records[0]
		records = records[1:]
	} else {
		names = make([]string, len(records[0]))
		for j := range names {
			names[j] = fmt.Sprintf("%d", j)
		}
	}
	n := len(names)
	colData := make([][]string, n)
	for j := range colData {
		colData[j] = make([]string, len(records))
	}
	for i, rec := range records {
		if len(rec) != n {
			return nil, fmt.Errorf("core: csv row %d has %d fields, want %d", i, len(rec), n)
		}
		for j, cell := range rec {
			colData[j][i] = cell
		}
	}
	cols := make([]vector.Vector, n)
	for j := range cols {
		cols[j] = vector.NewObjectFromStrings(colData[j])
	}
	df, err := New(names, cols)
	if err != nil {
		return nil, err
	}
	if opts.InduceNow {
		for j := 0; j < df.NCols(); j++ {
			typed := df.TypedCol(j)
			df.cols[j] = typed
		}
	}
	return df, nil
}

// ReadCSVString ingests CSV text.
func ReadCSVString(s string, opts CSVOptions) (*DataFrame, error) {
	return ReadCSV(strings.NewReader(s), opts)
}

// ReadCSVFile ingests a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*DataFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

// WriteCSV writes the frame as CSV with a header row. Row labels are not
// written (matching pandas' to_csv(index=False)); use FROMLABELS first to
// keep them.
func (df *DataFrame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(df.ColNames()); err != nil {
		return err
	}
	rec := make([]string, df.NCols())
	for i := 0; i < df.NRows(); i++ {
		for j := range rec {
			v := df.RawValue(i, j)
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FromRecords builds a dataframe from row-oriented records of native Go
// values, inducing each cell through types.FromGo.
func FromRecords(names []string, records [][]any) (*DataFrame, error) {
	builders := make([]*vector.Builder, len(names))
	for j := range builders {
		builders[j] = vector.NewObjectBuilder(len(records))
	}
	typed := make([][]types.Value, len(names))
	for j := range typed {
		typed[j] = make([]types.Value, 0, len(records))
	}
	for i, rec := range records {
		if len(rec) != len(names) {
			return nil, fmt.Errorf("core: record %d has %d fields, want %d", i, len(rec), len(names))
		}
		for j, cell := range rec {
			typed[j] = append(typed[j], types.FromGo(cell))
		}
	}
	cols := make([]vector.Vector, len(names))
	for j := range cols {
		cols[j] = columnFromValues(typed[j])
	}
	return New(names, cols)
}

// MustFromRecords is FromRecords, panicking on error.
func MustFromRecords(names []string, records [][]any) *DataFrame {
	df, err := FromRecords(names, records)
	if err != nil {
		panic(err)
	}
	return df
}

// columnFromValues picks the narrowest domain covering all the values
// (treating nulls as wildcards) and builds a typed vector; mixed-domain
// columns fall back to Object.
func columnFromValues(vals []types.Value) vector.Vector {
	dom := types.Unspecified
	mixed := false
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		d := v.Domain()
		switch {
		case dom == types.Unspecified:
			dom = d
		case dom == d:
		case dom == types.Int && d == types.Float, dom == types.Float && d == types.Int:
			dom = types.Float
		default:
			mixed = true
		}
	}
	if mixed || dom == types.Unspecified {
		dom = types.Object
	}
	return vector.FromValues(dom, vals)
}

// Package core implements the dataframe data model of Definition 4.1 in
// "Towards Scalable Dataframe Systems": a dataframe is a tuple
// (Amn, Rm, Cn, Dn) where Amn is an m×n array of entries, Rm a vector of m
// row labels, Cn a vector of n column labels, and Dn a vector of n domains
// (the schema), each of which may be left unspecified and lazily induced by
// the schema-induction function S.
//
// Rows and columns are symmetric: both are referenceable positionally and by
// label, and labels come from the same set of domains as the data — which is
// what makes TOLABELS/FROMLABELS/TRANSPOSE definable.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dferrors"
	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/vector"
)

// DataFrame is the tuple (Amn, Rm, Cn, Dn). It is immutable: every
// operation returns a new DataFrame, sharing column storage where possible.
//
// The one exception to immutability is Dn: lazy schema induction memoizes
// the induced domain in place (Domain), and parallel kernel tasks may share
// one frame, so the domain slots are stored as atomically-accessed int64s
// (zero = types.Unspecified). All access goes through atomic loads/stores.
type DataFrame struct {
	cols    []vector.Vector // Amn column-wise; all vectors share length m
	rowLab  vector.Vector   // Rm, length m; labels are values from Dom
	colLab  []types.Value   // Cn, length n; labels are values from Dom
	domains []int64         // Dn as types.Domain values; see doc above
	cache   *schema.Cache   // shared schema-induction cache (may be nil)
}

// New constructs a dataframe from columns and column names, with default
// positional row labels Pm = (0, ..., m-1) and every domain unspecified
// (induced lazily). All columns must share a length.
func New(names []string, cols []vector.Vector) (*DataFrame, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("core: %d names for %d columns", len(names), len(cols))
	}
	m := 0
	if len(cols) > 0 {
		m = cols[0].Len()
	}
	labels := make([]types.Value, len(names))
	for j, c := range cols {
		if c.Len() != m {
			return nil, fmt.Errorf("core: column %q has %d rows, want %d", names[j], c.Len(), m)
		}
		labels[j] = types.String(names[j])
	}
	return &DataFrame{
		cols:    cols,
		rowLab:  vector.Range(0, m),
		colLab:  labels,
		domains: make([]int64, len(cols)), // zero slots = Unspecified
	}, nil
}

// MustNew is New, panicking on error; for tests and literals.
func MustNew(names []string, cols []vector.Vector) *DataFrame {
	df, err := New(names, cols)
	if err != nil {
		panic(err)
	}
	return df
}

// Build assembles a dataframe from fully-specified parts. It is the
// constructor used by operators; it validates shape invariants.
func Build(cols []vector.Vector, rowLab vector.Vector, colLab []types.Value, domains []types.Domain, cache *schema.Cache) (*DataFrame, error) {
	m := 0
	if len(cols) > 0 {
		m = cols[0].Len()
	} else if rowLab != nil {
		m = rowLab.Len()
	}
	if len(colLab) != len(cols) {
		return nil, fmt.Errorf("core: %d column labels for %d columns", len(colLab), len(cols))
	}
	if domains != nil && len(domains) != len(cols) {
		return nil, fmt.Errorf("core: %d domains for %d columns", len(domains), len(cols))
	}
	for j, c := range cols {
		if c.Len() != m {
			return nil, fmt.Errorf("core: column %d has %d rows, want %d", j, c.Len(), m)
		}
	}
	if rowLab == nil {
		rowLab = vector.Range(0, m)
	}
	if rowLab.Len() != m {
		return nil, fmt.Errorf("core: %d row labels for %d rows", rowLab.Len(), m)
	}
	slots := make([]int64, len(cols))
	for j, d := range domains {
		slots[j] = int64(d)
	}
	return &DataFrame{cols: cols, rowLab: rowLab, colLab: colLab, domains: slots, cache: cache}, nil
}

// MustBuild is Build, panicking on error.
func MustBuild(cols []vector.Vector, rowLab vector.Vector, colLab []types.Value, domains []types.Domain, cache *schema.Cache) *DataFrame {
	df, err := Build(cols, rowLab, colLab, domains, cache)
	if err != nil {
		panic(err)
	}
	return df
}

// Empty returns the 0×0 dataframe.
func Empty() *DataFrame {
	return &DataFrame{rowLab: vector.Range(0, 0)}
}

// Compact materializes any view (selection-vector) columns into typed
// storage, returning df itself when nothing is a view. Fused kernel chains
// pass selections along as views and pay this one coalescing copy at stage
// exit, so downstream stages always see flat storage.
func (df *DataFrame) Compact() *DataFrame {
	changed := false
	cols := df.cols
	for j, c := range df.cols {
		m := vector.Materialize(c)
		if m != c {
			if !changed {
				cols = append([]vector.Vector(nil), df.cols...)
				changed = true
			}
			cols[j] = m
		}
	}
	rowLab := vector.Materialize(df.rowLab)
	if !changed && rowLab == df.rowLab {
		return df
	}
	out := *df
	out.cols = cols
	out.rowLab = rowLab
	return &out
}

// NRows returns m, the number of rows.
func (df *DataFrame) NRows() int { return df.rowLab.Len() }

// NCols returns n, the number of columns.
func (df *DataFrame) NCols() int { return len(df.cols) }

// Col returns the j'th column's storage vector (which may be raw Σ* if the
// column's domain has not been induced).
func (df *DataFrame) Col(j int) vector.Vector { return df.cols[j] }

// Columns returns the column storage slice. Callers must not mutate it.
func (df *DataFrame) Columns() []vector.Vector { return df.cols }

// RowLabels returns Rm.
func (df *DataFrame) RowLabels() vector.Vector { return df.rowLab }

// ColLabels returns Cn. Callers must not mutate it.
func (df *DataFrame) ColLabels() []types.Value { return df.colLab }

// ColName returns the j'th column label rendered as a string.
func (df *DataFrame) ColName(j int) string { return df.colLab[j].String() }

// ColNames returns every column label rendered as a string.
func (df *DataFrame) ColNames() []string {
	out := make([]string, len(df.colLab))
	for j := range df.colLab {
		out[j] = df.colLab[j].String()
	}
	return out
}

// ColIndex returns the position of the first column whose label renders as
// name, or -1. Labels can duplicate; named notation resolves to the first.
func (df *DataFrame) ColIndex(name string) int {
	for j := range df.colLab {
		if df.colLab[j].String() == name {
			return j
		}
	}
	return -1
}

// ColByName returns the column with the given label.
func (df *DataFrame) ColByName(name string) (vector.Vector, error) {
	j := df.ColIndex(name)
	if j < 0 {
		return nil, fmt.Errorf("core: no %w %q", dferrors.ErrUnknownColumn, name)
	}
	return df.cols[j], nil
}

// DeclaredDomain returns the j'th entry of Dn as stored, without inducing.
func (df *DataFrame) DeclaredDomain(j int) types.Domain {
	return types.Domain(atomic.LoadInt64(&df.domains[j]))
}

// Domains returns a snapshot of Dn as stored; entries a sibling task
// induces after the call are not reflected.
func (df *DataFrame) Domains() []types.Domain {
	out := make([]types.Domain, len(df.domains))
	for j := range df.domains {
		out[j] = types.Domain(atomic.LoadInt64(&df.domains[j]))
	}
	return out
}

// Cache returns the schema-induction cache attached to the frame (may be
// nil).
func (df *DataFrame) Cache() *schema.Cache { return df.cache }

// WithCache returns a frame sharing all state but using the given induction
// cache.
func (df *DataFrame) WithCache(c *schema.Cache) *DataFrame {
	out := *df
	out.cache = c
	return &out
}

// Domain returns the j'th column's domain, applying the schema-induction
// function S if Dn[j] is unspecified. The induced result is memoized on the
// frame (and in the shared cache when present): this is the lazy typing of
// Section 5.1. The memo slot is accessed atomically: parallel kernel tasks
// sharing one frame may race to induce the same column, and induction is
// deterministic, so the duplicated work is benign and both store the same
// value.
func (df *DataFrame) Domain(j int) types.Domain {
	if d := types.Domain(atomic.LoadInt64(&df.domains[j])); d != types.Unspecified {
		return d
	}
	var d types.Domain
	if df.cache != nil {
		d = df.cache.Induce(df.cols[j])
	} else {
		d = schema.Induce(df.cols[j])
	}
	atomic.StoreInt64(&df.domains[j], int64(d))
	return d
}

// TypedCol returns the j'th column parsed into its (induced) domain.
func (df *DataFrame) TypedCol(j int) vector.Vector {
	d := df.Domain(j)
	if df.cols[j].Domain() == d {
		return df.cols[j]
	}
	var parsed vector.Vector
	if df.cache != nil {
		parsed = df.cache.Parse(df.cols[j], d)
	} else {
		parsed = schema.Parse(df.cols[j], d)
	}
	return parsed
}

// Value returns the cell at row i, column j, parsed per the column's
// domain. This is the unique cell interpretation the data model guarantees:
// cells are parsed by their column's schema.
func (df *DataFrame) Value(i, j int) types.Value {
	return df.TypedCol(j).Value(i)
}

// RawValue returns the cell at row i, column j from the stored
// representation without forcing schema induction.
func (df *DataFrame) RawValue(i, j int) types.Value {
	return df.cols[j].Value(i)
}

// Row materializes row i as a slice of parsed values.
func (df *DataFrame) Row(i int) []types.Value {
	out := make([]types.Value, df.NCols())
	for j := range out {
		out[j] = df.Value(i, j)
	}
	return out
}

// TakeRows returns a frame with the rows at idx, in order (index -1 yields
// a null row). Row labels follow the rows.
func (df *DataFrame) TakeRows(idx []int) *DataFrame {
	cols := make([]vector.Vector, len(df.cols))
	for j, c := range df.cols {
		cols[j] = c.Take(idx)
	}
	return &DataFrame{
		cols:    cols,
		rowLab:  df.rowLab.Take(idx),
		colLab:  df.colLab,
		domains: cloneDomains(df.domains),
		cache:   df.cache,
	}
}

// SliceRows returns the frame restricted to rows [lo, hi), sharing storage.
func (df *DataFrame) SliceRows(lo, hi int) *DataFrame {
	cols := make([]vector.Vector, len(df.cols))
	for j, c := range df.cols {
		cols[j] = c.Slice(lo, hi)
	}
	return &DataFrame{
		cols:    cols,
		rowLab:  df.rowLab.Slice(lo, hi),
		colLab:  df.colLab,
		domains: cloneDomains(df.domains),
		cache:   df.cache,
	}
}

// SelectCols returns the frame restricted to the columns at the given
// positions, in order.
func (df *DataFrame) SelectCols(idx []int) *DataFrame {
	cols := make([]vector.Vector, len(idx))
	labels := make([]types.Value, len(idx))
	domains := make([]int64, len(idx))
	for k, j := range idx {
		cols[k] = df.cols[j]
		labels[k] = df.colLab[j]
		domains[k] = atomic.LoadInt64(&df.domains[j])
	}
	return &DataFrame{cols: cols, rowLab: df.rowLab, colLab: labels, domains: domains, cache: df.cache}
}

// WithRowLabels returns the frame with Rm replaced.
func (df *DataFrame) WithRowLabels(labels vector.Vector) (*DataFrame, error) {
	if labels.Len() != df.NRows() {
		return nil, fmt.Errorf("core: %d row labels for %d rows", labels.Len(), df.NRows())
	}
	out := *df
	out.rowLab = labels
	return &out, nil
}

// WithColLabels returns the frame with Cn replaced.
func (df *DataFrame) WithColLabels(labels []types.Value) (*DataFrame, error) {
	if len(labels) != df.NCols() {
		return nil, fmt.Errorf("core: %d column labels for %d columns", len(labels), df.NCols())
	}
	out := *df
	out.colLab = labels
	return &out, nil
}

// WithColumn returns the frame with column j replaced by col (domain resets
// to unspecified unless declared).
func (df *DataFrame) WithColumn(j int, col vector.Vector, d types.Domain) (*DataFrame, error) {
	if col.Len() != df.NRows() {
		return nil, fmt.Errorf("core: replacement column has %d rows, want %d", col.Len(), df.NRows())
	}
	cols := append([]vector.Vector(nil), df.cols...)
	domains := cloneDomains(df.domains)
	cols[j] = col
	domains[j] = int64(d)
	out := *df
	out.cols = cols
	out.domains = domains
	return &out, nil
}

// AppendColumn returns the frame with a new rightmost column. Schema
// mutations are first-class in the dataframe algebra (Section 5.1), so this
// is a core primitive rather than DDL.
func (df *DataFrame) AppendColumn(label types.Value, col vector.Vector, d types.Domain) (*DataFrame, error) {
	if df.NCols() > 0 && col.Len() != df.NRows() {
		return nil, fmt.Errorf("core: new column has %d rows, want %d", col.Len(), df.NRows())
	}
	out := *df
	out.cols = append(append([]vector.Vector(nil), df.cols...), col)
	out.colLab = append(append([]types.Value(nil), df.colLab...), label)
	out.domains = append(cloneDomains(df.domains), int64(d))
	if df.NCols() == 0 {
		out.rowLab = vector.Range(0, col.Len())
	}
	return &out, nil
}

// DropColumn returns the frame without column j.
func (df *DataFrame) DropColumn(j int) *DataFrame {
	idx := make([]int, 0, df.NCols()-1)
	for k := range df.cols {
		if k != j {
			idx = append(idx, k)
		}
	}
	return df.SelectCols(idx)
}

// Equal reports whether two frames agree on shape, labels, and parsed cell
// values. Domains are compared post-induction, so a lazily-typed frame
// equals its explicitly-typed counterpart.
func (df *DataFrame) Equal(o *DataFrame) bool {
	if df.NRows() != o.NRows() || df.NCols() != o.NCols() {
		return false
	}
	if !vector.Equal(df.rowLab, o.rowLab) {
		return false
	}
	for j := range df.colLab {
		if !df.colLab[j].Equal(o.colLab[j]) {
			return false
		}
		if !vector.Equal(df.TypedCol(j), o.TypedCol(j)) {
			return false
		}
	}
	return true
}

// Homogeneous reports whether every column shares one domain (after
// induction); such frames support the matrix view of Section 4.2.
func (df *DataFrame) Homogeneous() bool {
	if df.NCols() == 0 {
		return true
	}
	d := df.Domain(0)
	for j := 1; j < df.NCols(); j++ {
		if df.Domain(j) != d {
			return false
		}
	}
	return true
}

// IsMatrix reports whether the frame is a matrix dataframe: homogeneous
// with a field-like numeric domain (int or float), so it can participate in
// linear-algebra operations.
func (df *DataFrame) IsMatrix() bool {
	if df.NCols() == 0 {
		return false
	}
	if !df.Homogeneous() {
		return false
	}
	d := df.Domain(0)
	return d == types.Int || d == types.Float || d == types.Bool
}

// cloneDomains snapshots a frame's domain slots. Loads are atomic so
// cloning is safe while a sibling task induces a column of the source.
func cloneDomains(ds []int64) []int64 {
	out := make([]int64, len(ds))
	for j := range ds {
		out[j] = atomic.LoadInt64(&ds[j])
	}
	return out
}

// CompositeLabel combines multiple label values into the single composite
// value used for hierarchical (multi-level) labels, per Section 4.5.
func CompositeLabel(parts ...types.Value) types.Value {
	if len(parts) == 1 {
		return parts[0]
	}
	s := "("
	for i, p := range parts {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return types.String(s + ")")
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/vector"
)

func sampleDF(t *testing.T) *DataFrame {
	t.Helper()
	df, err := New(
		[]string{"name", "age", "score"},
		[]vector.Vector{
			vector.NewObjectFromStrings([]string{"ann", "bob", "cat", "dan"}),
			vector.NewObjectFromStrings([]string{"30", "NA", "25", "41"}),
			vector.NewObjectFromStrings([]string{"1.5", "2.5", "3.5", "4.5"}),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestNewShapeAndDefaults(t *testing.T) {
	df := sampleDF(t)
	if df.NRows() != 4 || df.NCols() != 3 {
		t.Fatalf("shape = %dx%d", df.NRows(), df.NCols())
	}
	// Default row labels are positional.
	for i := 0; i < 4; i++ {
		if df.RowLabels().Value(i).Int() != int64(i) {
			t.Errorf("row label %d wrong", i)
		}
	}
	// Domains start unspecified.
	for j := 0; j < 3; j++ {
		if df.DeclaredDomain(j) != types.Unspecified {
			t.Errorf("column %d should start unspecified", j)
		}
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	_, err := New([]string{"a"}, []vector.Vector{
		vector.NewInt([]int64{1}, nil),
		vector.NewInt([]int64{2}, nil),
	})
	if err == nil {
		t.Error("name/column count mismatch should fail")
	}
	_, err = New([]string{"a", "b"}, []vector.Vector{
		vector.NewInt([]int64{1, 2}, nil),
		vector.NewInt([]int64{3}, nil),
	})
	if err == nil {
		t.Error("ragged columns should fail")
	}
}

func TestLazyInduction(t *testing.T) {
	df := sampleDF(t)
	if got := df.Domain(1); got != types.Int {
		t.Errorf("age domain = %v", got)
	}
	if got := df.Domain(2); got != types.Float {
		t.Errorf("score domain = %v", got)
	}
	if got := df.Domain(0); got != types.Object {
		t.Errorf("name domain = %v", got)
	}
	// Induction memoizes onto Dn.
	if df.DeclaredDomain(1) != types.Int {
		t.Error("induced domain should be memoized")
	}
}

func TestValueParsesPerColumnDomain(t *testing.T) {
	df := sampleDF(t)
	if df.Value(0, 1).Int() != 30 {
		t.Error("parsed int wrong")
	}
	if !df.Value(1, 1).IsNull() {
		t.Error("NA should parse to null")
	}
	if df.Value(2, 2).Float() != 3.5 {
		t.Error("parsed float wrong")
	}
}

func TestColIndexAndByName(t *testing.T) {
	df := sampleDF(t)
	if df.ColIndex("age") != 1 || df.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
	if _, err := df.ColByName("nope"); err == nil {
		t.Error("missing column should error")
	}
	v, err := df.ColByName("name")
	if err != nil || v.Len() != 4 {
		t.Error("ColByName wrong")
	}
	names := df.ColNames()
	if len(names) != 3 || names[2] != "score" {
		t.Error("ColNames wrong")
	}
}

func TestTakeAndSliceRows(t *testing.T) {
	df := sampleDF(t)
	tk := df.TakeRows([]int{3, 0})
	if tk.NRows() != 2 || tk.Value(0, 0).Str() != "dan" || tk.Value(1, 0).Str() != "ann" {
		t.Error("TakeRows wrong")
	}
	// Row labels travel with the rows.
	if tk.RowLabels().Value(0).Int() != 3 {
		t.Error("labels should follow rows")
	}
	sl := df.SliceRows(1, 3)
	if sl.NRows() != 2 || sl.Value(0, 0).Str() != "bob" {
		t.Error("SliceRows wrong")
	}
}

func TestSelectDropAppendColumns(t *testing.T) {
	df := sampleDF(t)
	sel := df.SelectCols([]int{2, 0})
	if sel.NCols() != 2 || sel.ColName(0) != "score" {
		t.Error("SelectCols wrong")
	}
	dropped := df.DropColumn(1)
	if dropped.NCols() != 2 || dropped.ColIndex("age") != -1 {
		t.Error("DropColumn wrong")
	}
	added, err := df.AppendColumn(types.String("flag"), vector.NewBool([]bool{true, false, true, false}, nil), types.Bool)
	if err != nil || added.NCols() != 4 || added.Domain(3) != types.Bool {
		t.Errorf("AppendColumn wrong: %v", err)
	}
	if _, err := df.AppendColumn(types.String("bad"), vector.NewBool([]bool{true}, nil), types.Bool); err == nil {
		t.Error("short column should fail")
	}
}

func TestWithColumnAndLabels(t *testing.T) {
	df := sampleDF(t)
	repl, err := df.WithColumn(1, vector.NewInt([]int64{1, 2, 3, 4}, nil), types.Int)
	if err != nil || repl.Value(0, 1).Int() != 1 {
		t.Errorf("WithColumn wrong: %v", err)
	}
	_, err = df.WithRowLabels(vector.Range(0, 2))
	if err == nil {
		t.Error("wrong label count should fail")
	}
	lab, err := df.WithColLabels([]types.Value{types.String("a"), types.String("b"), types.String("c")})
	if err != nil || lab.ColName(0) != "a" {
		t.Error("WithColLabels wrong")
	}
}

func TestEqualPostInduction(t *testing.T) {
	a := sampleDF(t)
	b := sampleDF(t)
	if !a.Equal(b) {
		t.Error("identical frames should be Equal")
	}
	// An explicitly typed twin equals the lazily typed one.
	typed, err := New([]string{"name", "age", "score"}, []vector.Vector{
		vector.NewObjectFromStrings([]string{"ann", "bob", "cat", "dan"}),
		vector.NewInt([]int64{30, 0, 25, 41}, []bool{false, true, false, false}),
		vector.NewFloat([]float64{1.5, 2.5, 3.5, 4.5}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(typed) {
		t.Error("lazy and explicit typing should compare equal")
	}
	if a.Equal(a.SliceRows(0, 3)) {
		t.Error("different shapes should not be equal")
	}
}

func TestHomogeneousAndMatrix(t *testing.T) {
	df := sampleDF(t)
	if df.Homogeneous() {
		t.Error("mixed frame is not homogeneous")
	}
	m := MustNew([]string{"a", "b"}, []vector.Vector{
		vector.NewFloat([]float64{1, 2}, nil),
		vector.NewFloat([]float64{3, 4}, nil),
	})
	if !m.Homogeneous() || !m.IsMatrix() {
		t.Error("float frame should be a matrix dataframe")
	}
	if Empty().IsMatrix() {
		t.Error("empty frame is not a matrix")
	}
}

func TestSharedCache(t *testing.T) {
	c := schema.NewCache()
	df := sampleDF(t).WithCache(c)
	df.Domain(1)
	df.TypedCol(1)
	_, misses := c.Stats()
	if misses == 0 {
		t.Error("cache should have been consulted")
	}
	if df.Cache() != c {
		t.Error("cache accessor wrong")
	}
}

func TestCompositeLabel(t *testing.T) {
	l := CompositeLabel(types.IntValue(2017), types.String("Q1"))
	if l.String() != "(2017, Q1)" {
		t.Errorf("composite label = %q", l.String())
	}
	single := CompositeLabel(types.String("x"))
	if single.String() != "x" {
		t.Error("single-part label should pass through")
	}
}

func TestReadCSVLazyTyping(t *testing.T) {
	csv := "city,pop,ratio\nparis,100,0.5\nrome,NA,0.25\n"
	df, err := ReadCSVString(csv, DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if df.NRows() != 2 || df.NCols() != 3 {
		t.Fatalf("shape = %dx%d", df.NRows(), df.NCols())
	}
	for j := 0; j < 3; j++ {
		if df.DeclaredDomain(j) != types.Unspecified {
			t.Error("csv ingest should defer typing")
		}
	}
	if df.Domain(1) != types.Int || df.Domain(2) != types.Float {
		t.Error("induced domains wrong")
	}
	if !df.Value(1, 1).IsNull() {
		t.Error("NA cell should be null")
	}
}

func TestReadCSVEagerAndNoHeader(t *testing.T) {
	df, err := ReadCSVString("1,2\n3,4\n", CSVOptions{Comma: ',', Header: false, InduceNow: true})
	if err != nil {
		t.Fatal(err)
	}
	if df.NRows() != 2 || df.ColName(0) != "0" {
		t.Error("headerless read wrong")
	}
	if df.DeclaredDomain(0) != types.Int {
		t.Error("InduceNow should type eagerly")
	}
}

func TestReadCSVRagged(t *testing.T) {
	if _, err := ReadCSVString("a,b\n1\n", DefaultCSVOptions()); err == nil {
		t.Error("ragged csv should fail")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	df := sampleDF(t)
	var buf bytes.Buffer
	if err := df.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVString(buf.String(), DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", df, back)
	}
}

func TestFromRecords(t *testing.T) {
	df, err := FromRecords([]string{"x", "y"}, [][]any{
		{1, "a"},
		{2, nil},
		{3, "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if df.Domain(0) != types.Int || df.Domain(1) != types.Object {
		t.Errorf("domains = %v %v", df.Domain(0), df.Domain(1))
	}
	if !df.Value(1, 1).IsNull() {
		t.Error("nil record cell should be null")
	}
	if _, err := FromRecords([]string{"x"}, [][]any{{1, 2}}); err == nil {
		t.Error("ragged records should fail")
	}
	// Mixed int/float widens to float.
	mixed := MustFromRecords([]string{"v"}, [][]any{{1}, {2.5}})
	if mixed.Domain(0) != types.Float {
		t.Errorf("mixed numeric domain = %v", mixed.Domain(0))
	}
}

func TestRenderPrefixSuffix(t *testing.T) {
	records := make([][]any, 100)
	for i := range records {
		records[i] = []any{i, i * 2}
	}
	df := MustFromRecords([]string{"a", "b"}, records)
	out := df.Render(RenderOptions{MaxRows: 6, MaxCols: 4, MaxWidth: 10})
	if !strings.Contains(out, "...") {
		t.Error("long frame should render with ellipsis")
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "99") {
		t.Error("render should show prefix and suffix rows")
	}
	if !strings.Contains(out, "[100 rows x 2 columns]") {
		t.Error("render should show shape")
	}
	withDoms := df.Render(RenderOptions{ShowDomains: true})
	if !strings.Contains(withDoms, "a=int") {
		t.Error("domain footer missing")
	}
}

func TestRenderSmall(t *testing.T) {
	df := sampleDF(t)
	out := df.String()
	if !strings.Contains(out, "ann") || !strings.Contains(out, "score") {
		t.Errorf("render missing content:\n%s", out)
	}
	if strings.Contains(out, "...") {
		t.Error("small frame should not be elided")
	}
}

package core

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func nextBandOK(t *testing.T, c *CSVCursor, maxRows int) *DataFrame {
	t.Helper()
	df, err := c.NextBand(maxRows)
	if err != nil {
		t.Fatalf("NextBand: %v", err)
	}
	return df
}

func TestCSVCursorEmptyInput(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader(""), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	if c.Columns() != nil {
		t.Errorf("columns = %v, want nil", c.Columns())
	}
	if _, err := c.NextBand(4); !errors.Is(err, io.EOF) {
		t.Errorf("NextBand err = %v, want io.EOF", err)
	}
	if e := c.Empty(); e.NRows() != 0 || e.NCols() != 0 {
		t.Errorf("Empty() = %dx%d, want 0x0", e.NRows(), e.NCols())
	}
}

func TestCSVCursorHeaderOnly(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("a,b,c\n"), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	if got := c.Columns(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("columns = %v", got)
	}
	if _, err := c.NextBand(4); !errors.Is(err, io.EOF) {
		t.Errorf("NextBand err = %v, want io.EOF", err)
	}
	e := c.Empty()
	if e.NRows() != 0 || e.NCols() != 3 || e.ColName(1) != "b" {
		t.Errorf("Empty() = %dx%d cols %v", e.NRows(), e.NCols(), e.ColNames())
	}
}

func TestCSVCursorQuotedRecordAcrossBandBoundary(t *testing.T) {
	// Record 1's quoted field embeds a newline and record 3's a comma; with
	// one-row bands both land entirely inside their own band, exactly as a
	// whole-file read parses them.
	text := "a,b\n1,\"x\ny\"\n2,z\n3,\"p,q\"\n"
	c, err := NewCSVCursor(strings.NewReader(text), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		band := nextBandOK(t, c, 1)
		if band.NRows() != 1 {
			t.Fatalf("band %d rows = %d", i, band.NRows())
		}
		got = append(got, band.RawValue(0, 1).String())
	}
	if _, err := c.NextBand(1); !errors.Is(err, io.EOF) {
		t.Errorf("after last band, err = %v, want io.EOF", err)
	}
	want := []string{"x\ny", "z", "p,q"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("band %d value = %q, want %q", i, got[i], want[i])
		}
	}

	// The banded read must cell-match the whole-file read.
	whole, err := ReadCSVString(text, DefaultCSVOptions())
	if err != nil {
		t.Fatalf("ReadCSVString: %v", err)
	}
	c2, _ := NewCSVCursor(strings.NewReader(text), DefaultCSVOptions())
	banded := nextBandOK(t, c2, 100)
	if !whole.Equal(banded) {
		t.Errorf("banded read differs from whole read:\n%s\nvs\n%s", banded, whole)
	}
}

func TestCSVCursorPartialFinalBand(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("a\n1\n2\n3\n4\n5\n"), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	sizes := []int{2, 2, 1}
	for i, want := range sizes {
		band := nextBandOK(t, c, 2)
		if band.NRows() != want {
			t.Errorf("band %d rows = %d, want %d", i, band.NRows(), want)
		}
	}
	if _, err := c.NextBand(2); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestCSVCursorRaggedRow(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("a,b\n1,2\n3\n"), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	if _, err := c.NextBand(1); err != nil {
		t.Fatalf("first band: %v", err)
	}
	if _, err := c.NextBand(1); err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Errorf("ragged row err = %v, want row-positioned error", err)
	}
}

func TestCSVCursorHeaderless(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("1,2\n3,4\n"), CSVOptions{Comma: ','})
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	band := nextBandOK(t, c, 10)
	if band.NRows() != 2 || band.ColName(0) != "0" || band.ColName(1) != "1" {
		t.Errorf("headerless band = %dx%d cols %v", band.NRows(), band.NCols(), band.ColNames())
	}
}

func TestCSVCursorBadBandSize(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("a\n1\n"), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	if _, err := c.NextBand(0); err == nil {
		t.Error("NextBand(0) should error")
	}
}

func TestCSVCursorCloseIdempotent(t *testing.T) {
	c, err := NewCSVCursor(strings.NewReader("a\n1\n"), DefaultCSVOptions())
	if err != nil {
		t.Fatalf("NewCSVCursor: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.NextBand(1); !errors.Is(err, io.EOF) {
		t.Errorf("NextBand after Close err = %v, want io.EOF", err)
	}
}

package core

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/vector"
)

// CSVCursor parses CSV input morsel-by-morsel: NextBand returns up to
// maxRows records as a dataframe band, so a scan of a bigger-than-RAM file
// never holds more than one raw band of cells at a time. Records are read
// through encoding/csv one at a time, so a quoted record spanning a band
// boundary (embedded newlines, commas) parses exactly as it would in a
// whole-file read — banding is a property of the cursor, not the grammar.
//
// Schema stays per Section 5.2.1: every band's columns are raw Σ* with
// unspecified domains, induced lazily by whichever operator touches them.
type CSVCursor struct {
	rc     io.Closer // closes the underlying source; may be nil
	r      *csv.Reader
	names  []string
	row    int // data rows read so far (for error positions)
	eof    bool
	closed bool
}

// NewCSVCursor opens a cursor over r. When opts.Header is set the header
// record is consumed immediately, so Columns is known before any band is
// read; headerless input names columns positionally from the first record's
// width at first read. If r is an io.Closer, Close closes it.
func NewCSVCursor(r io.Reader, opts CSVOptions) (*CSVCursor, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	c := &CSVCursor{r: cr}
	if rc, ok := r.(io.Closer); ok {
		c.rc = rc
	}
	if opts.Header {
		rec, err := cr.Read()
		switch {
		case err == io.EOF:
			c.eof = true
		case err != nil:
			return nil, fmt.Errorf("core: read csv: %w", err)
		default:
			c.names = rec
		}
	}
	return c, nil
}

// Columns returns the column names, nil until known (headerless input
// before the first record, or an empty file).
func (c *CSVCursor) Columns() []string { return c.names }

// BytesRead returns the input offset consumed so far; scan scheduling uses
// the first band's byte footprint to estimate the band count of the rest of
// the file.
func (c *CSVCursor) BytesRead() int64 { return c.r.InputOffset() }

// Empty returns a zero-row band with the cursor's columns — the shape every
// band of this scan shares. Before the header is known it is the 0×0 frame.
func (c *CSVCursor) Empty() *DataFrame {
	if len(c.names) == 0 {
		return Empty()
	}
	cols := make([]vector.Vector, len(c.names))
	for j := range cols {
		cols[j] = vector.NewObjectFromStrings(nil)
	}
	return MustNew(c.names, cols)
}

// NextBand reads up to maxRows records and returns them as a band. It
// returns io.EOF (and no band) once the input is exhausted; a band holding
// the final records is returned with a nil error first.
func (c *CSVCursor) NextBand(maxRows int) (*DataFrame, error) {
	if c.eof {
		return nil, io.EOF
	}
	if maxRows <= 0 {
		return nil, fmt.Errorf("core: csv band size %d, want > 0", maxRows)
	}
	var records [][]string
	for len(records) < maxRows {
		rec, err := c.r.Read()
		if err == io.EOF {
			c.eof = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: read csv: %w", err)
		}
		if c.names == nil {
			// Headerless input: columns are named positionally from the
			// first record, exactly as ReadCSV names them.
			c.names = make([]string, len(rec))
			for j := range c.names {
				c.names[j] = fmt.Sprintf("%d", j)
			}
		}
		if len(rec) != len(c.names) {
			return nil, fmt.Errorf("core: csv row %d has %d fields, want %d", c.row, len(rec), len(c.names))
		}
		records = append(records, rec)
		c.row++
	}
	if len(records) == 0 {
		return nil, io.EOF
	}
	n := len(c.names)
	colData := make([][]string, n)
	for j := range colData {
		colData[j] = make([]string, len(records))
	}
	for i, rec := range records {
		for j, cell := range rec {
			colData[j][i] = cell
		}
	}
	cols := make([]vector.Vector, n)
	for j := range cols {
		cols[j] = vector.NewObjectFromStrings(colData[j])
	}
	return New(c.names, cols)
}

// Close releases the underlying source. It is idempotent.
func (c *CSVCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.eof = true
	if c.rc != nil {
		return c.rc.Close()
	}
	return nil
}

// Package sparse implements the alternative physical representation
// Section 5.2.1 proposes for dataframes with row/column equivalence: a
// collection of ((row, col) → value) pairs. Null cells are simply omitted,
// so sparse dataframes pay storage proportional to the non-null count, and
// TRANSPOSE is a metadata bit flip — the representation conceptually swaps
// the roles of the row and column coordinates with no data movement at all.
//
// The trade-off the paper calls out is real here too: reconstructing a row
// for a MAP costs a lookup per column (a join-like access pattern), which
// the conversion benches in the root suite quantify against the columnar
// layout.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/vector"
)

// coord addresses one cell in logical (pre-transpose) coordinates.
type coord struct{ row, col int32 }

// Frame is a sparse dataframe: non-null cells keyed by coordinate, plus the
// axis metadata. transposed flips the interpretation of coordinates — the
// O(1) logical TRANSPOSE.
type Frame struct {
	cells      map[coord]types.Value
	rowLabels  []types.Value
	colLabels  []types.Value
	domains    []types.Domain // per logical column (pre-transpose axis)
	transposed bool
}

// FromDense converts a columnar dataframe, dropping null cells.
func FromDense(df *core.DataFrame) *Frame {
	f := &Frame{
		cells:     make(map[coord]types.Value),
		rowLabels: make([]types.Value, df.NRows()),
		colLabels: append([]types.Value(nil), df.ColLabels()...),
		domains:   make([]types.Domain, df.NCols()),
	}
	labels := df.RowLabels()
	for i := 0; i < df.NRows(); i++ {
		f.rowLabels[i] = labels.Value(i)
	}
	for j := 0; j < df.NCols(); j++ {
		f.domains[j] = df.Domain(j)
		col := df.TypedCol(j)
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			f.cells[coord{int32(i), int32(j)}] = col.Value(i)
		}
	}
	return f
}

// NRows returns the current (post-transpose) row count.
func (f *Frame) NRows() int {
	if f.transposed {
		return len(f.colLabels)
	}
	return len(f.rowLabels)
}

// NCols returns the current column count.
func (f *Frame) NCols() int {
	if f.transposed {
		return len(f.rowLabels)
	}
	return len(f.colLabels)
}

// NNZ returns the number of stored (non-null) cells.
func (f *Frame) NNZ() int { return len(f.cells) }

// Sparsity returns the fraction of cells that are null.
func (f *Frame) Sparsity() float64 {
	total := f.NRows() * f.NCols()
	if total == 0 {
		return 0
	}
	return 1 - float64(len(f.cells))/float64(total)
}

// Value returns the cell at (i, j) in current coordinates; missing cells
// are null.
func (f *Frame) Value(i, j int) types.Value {
	c := coord{int32(i), int32(j)}
	if f.transposed {
		c = coord{int32(j), int32(i)}
	}
	if v, ok := f.cells[c]; ok {
		return v
	}
	return types.Null()
}

// Set writes a cell in current coordinates; null deletes.
func (f *Frame) Set(i, j int, v types.Value) {
	c := coord{int32(i), int32(j)}
	if f.transposed {
		c = coord{int32(j), int32(i)}
	}
	if v.IsNull() {
		delete(f.cells, c)
		return
	}
	f.cells[c] = v
}

// Transpose flips the axes in O(1): coordinates, labels, and schema swap
// interpretation. This is the "record the transpose in metadata" strategy
// of Section 5.2.1.
func (f *Frame) Transpose() *Frame {
	return &Frame{
		cells:      f.cells,
		rowLabels:  f.rowLabels,
		colLabels:  f.colLabels,
		domains:    f.domains,
		transposed: !f.transposed,
	}
}

// Transposed reports whether the logical axes are currently flipped
// relative to storage.
func (f *Frame) Transposed() bool { return f.transposed }

// RowLabel returns the label of current row i.
func (f *Frame) RowLabel(i int) types.Value {
	if f.transposed {
		return f.colLabels[i]
	}
	return f.rowLabels[i]
}

// ColLabel returns the label of current column j.
func (f *Frame) ColLabel(j int) types.Value {
	if f.transposed {
		return f.rowLabels[j]
	}
	return f.colLabels[j]
}

// MapValues applies fn to every stored cell, returning a new sparse frame.
// Elementwise MAPs stay cheap under the sparse layout; only whole-row
// functions pay the reconstruction cost.
func (f *Frame) MapValues(fn func(types.Value) types.Value) *Frame {
	out := &Frame{
		cells:      make(map[coord]types.Value, len(f.cells)),
		rowLabels:  f.rowLabels,
		colLabels:  f.colLabels,
		domains:    f.domains,
		transposed: f.transposed,
	}
	for c, v := range f.cells {
		nv := fn(v)
		if !nv.IsNull() {
			out.cells[c] = nv
		}
	}
	return out
}

// Row reconstructs current row i — the join-like access the paper warns
// about: one map lookup per column.
func (f *Frame) Row(i int) []types.Value {
	out := make([]types.Value, f.NCols())
	for j := range out {
		out[j] = f.Value(i, j)
	}
	return out
}

// ToDense materializes back into the columnar representation, honoring any
// pending logical transpose.
func (f *Frame) ToDense() (*core.DataFrame, error) {
	rows, cols := f.NRows(), f.NCols()
	colLabels := make([]types.Value, cols)
	for j := range colLabels {
		colLabels[j] = f.ColLabel(j)
	}
	rowLabels := make([]types.Value, rows)
	for i := range rowLabels {
		rowLabels[i] = f.RowLabel(i)
	}

	// Bucket cells by current column, then build typed vectors.
	buckets := make(map[int32][]coord, cols)
	for c := range f.cells {
		key := c.col
		if f.transposed {
			key = c.row
		}
		buckets[key] = append(buckets[key], c)
	}
	vecs := make([]vector.Vector, cols)
	doms := make([]types.Domain, cols)
	for j := 0; j < cols; j++ {
		dom := types.Unspecified
		if !f.transposed {
			dom = f.domains[j]
		}
		vals := make([]types.Value, rows)
		for i := range vals {
			vals[i] = types.NullValue(types.Object)
		}
		bucket := buckets[int32(j)]
		sort.Slice(bucket, func(a, b int) bool {
			if f.transposed {
				return bucket[a].col < bucket[b].col
			}
			return bucket[a].row < bucket[b].row
		})
		for _, c := range bucket {
			pos := c.row
			if f.transposed {
				pos = c.col
			}
			vals[pos] = f.cells[c]
		}
		if dom == types.Unspecified {
			dom = narrowDomain(vals)
		}
		vecs[j] = vector.FromValues(dom, vals)
		doms[j] = dom
	}
	labelVec := vector.FromValues(labelDomain(rowLabels), rowLabels)
	return core.Build(vecs, labelVec, colLabels, doms, nil)
}

func narrowDomain(vals []types.Value) types.Domain {
	dom := types.Unspecified
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		d := v.Domain()
		switch {
		case dom == types.Unspecified:
			dom = d
		case dom == d:
		case dom == types.Int && d == types.Float, dom == types.Float && d == types.Int:
			dom = types.Float
		default:
			return types.Object
		}
	}
	if dom == types.Unspecified {
		return types.Object
	}
	return dom
}

func labelDomain(vals []types.Value) types.Domain {
	d := narrowDomain(vals)
	if d == types.Unspecified {
		return types.Object
	}
	return d
}

// String summarizes the frame.
func (f *Frame) String() string {
	return fmt.Sprintf("sparse.Frame{%dx%d, nnz=%d, transposed=%v}", f.NRows(), f.NCols(), f.NNZ(), f.transposed)
}

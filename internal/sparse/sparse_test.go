package sparse

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/types"
)

func dense(t *testing.T) *core.DataFrame {
	t.Helper()
	return core.MustFromRecords(
		[]string{"a", "b", "c"},
		[][]any{
			{1, nil, "x"},
			{nil, 2.5, nil},
			{3, nil, "z"},
		},
	)
}

func TestRoundTrip(t *testing.T) {
	df := dense(t)
	sp := FromDense(df)
	if sp.NRows() != 3 || sp.NCols() != 3 {
		t.Fatalf("shape = %dx%d", sp.NRows(), sp.NCols())
	}
	if sp.NNZ() != 5 {
		t.Errorf("nnz = %d, want 5 (nulls omitted)", sp.NNZ())
	}
	if sp.Sparsity() < 0.4 || sp.Sparsity() > 0.5 {
		t.Errorf("sparsity = %v", sp.Sparsity())
	}
	back, err := sp.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(df) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", df, back)
	}
}

func TestValueAndSet(t *testing.T) {
	sp := FromDense(dense(t))
	if sp.Value(0, 0).Int() != 1 {
		t.Error("value wrong")
	}
	if !sp.Value(1, 0).IsNull() {
		t.Error("missing cell should be null")
	}
	sp.Set(1, 0, types.IntValue(9))
	if sp.Value(1, 0).Int() != 9 {
		t.Error("set failed")
	}
	sp.Set(1, 0, types.Null())
	if !sp.Value(1, 0).IsNull() || sp.NNZ() != 5 {
		t.Error("null set should delete")
	}
}

func TestLogicalTransposeIsFreeAndCorrect(t *testing.T) {
	df := dense(t)
	sp := FromDense(df)
	tr := sp.Transpose()
	if !tr.Transposed() || sp.Transposed() {
		t.Error("transpose flag wrong")
	}
	// No data moved: both views share the cell map.
	if tr.NNZ() != sp.NNZ() {
		t.Error("transpose must not change nnz")
	}
	// The transposed view agrees with the algebra's physical transpose.
	want, err := algebra.TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.NRows(); i++ {
		for j := 0; j < tr.NCols(); j++ {
			got := tr.Value(i, j)
			exp := want.Value(i, j)
			if got.IsNull() != exp.IsNull() {
				t.Fatalf("null mismatch at (%d,%d)", i, j)
			}
			if !got.IsNull() && got.String() != exp.String() {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, got, exp)
			}
		}
	}
	// Labels swapped.
	if tr.RowLabel(0).String() != "a" || tr.ColLabel(1).String() != "1" {
		t.Errorf("labels = %v / %v", tr.RowLabel(0), tr.ColLabel(1))
	}
	// Double transpose restores the original view.
	back, err := tr.Transpose().ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(df) {
		t.Error("T∘T should round trip")
	}
}

func TestTransposedToDense(t *testing.T) {
	df := dense(t)
	tr := FromDense(df).Transpose()
	mat, err := tr.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.TransposeFrame(df, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NRows() != want.NRows() || mat.NCols() != want.NCols() {
		t.Fatalf("shape %dx%d vs %dx%d", mat.NRows(), mat.NCols(), want.NRows(), want.NCols())
	}
	for i := 0; i < mat.NRows(); i++ {
		for j := 0; j < mat.NCols(); j++ {
			a, b := mat.Value(i, j), want.Value(i, j)
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.String() != b.String()) {
				t.Fatalf("cell (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestMapValues(t *testing.T) {
	sp := FromDense(core.MustFromRecords([]string{"x"}, [][]any{{1}, {2}, {nil}}))
	doubled := sp.MapValues(func(v types.Value) types.Value {
		return types.IntValue(v.Int() * 2)
	})
	if doubled.Value(1, 0).Int() != 4 {
		t.Error("map wrong")
	}
	if !doubled.Value(2, 0).IsNull() {
		t.Error("null stays null")
	}
	// Mapping to null drops cells.
	dropped := sp.MapValues(func(types.Value) types.Value { return types.Null() })
	if dropped.NNZ() != 0 {
		t.Error("null-producing map should empty the frame")
	}
}

func TestRowReconstruction(t *testing.T) {
	sp := FromDense(dense(t))
	row := sp.Row(0)
	if len(row) != 3 || row[0].Int() != 1 || !row[1].IsNull() || row[2].Str() != "x" {
		t.Errorf("row = %v", row)
	}
}

func TestStringSummary(t *testing.T) {
	s := FromDense(dense(t)).String()
	if !strings.Contains(s, "nnz=5") {
		t.Errorf("summary = %s", s)
	}
}

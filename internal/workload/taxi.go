// Package workload generates the synthetic datasets the experiment harness
// sweeps over. The taxi generator stands in for the NYC taxicab dataset of
// Section 3.2 (replicated to 20–250 GB in the paper): it reproduces the
// column profile the four benchmark queries depend on — a
// "passenger_count" key column with nulls for groupby(n), scattered nulls
// across the frame for the map query, and a tall shape for transpose —
// at laptop-tractable row counts.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/vector"
)

// TaxiOptions parameterizes the generator.
type TaxiOptions struct {
	// Rows is the number of trips to generate.
	Rows int
	// Seed fixes the PRNG so sweeps are reproducible.
	Seed int64
	// NullFraction is the probability a nullable cell is null (the map
	// query of Figure 2 scans for exactly these).
	NullFraction float64
	// Raw emits untyped Σ* columns, as a CSV ingest would; otherwise
	// columns are typed at generation. Raw exercises schema induction.
	Raw bool
}

// DefaultTaxiOptions mirrors the dataset profile used in Section 3.2 at a
// given scale.
func DefaultTaxiOptions(rows int) TaxiOptions {
	return TaxiOptions{Rows: rows, Seed: 2020, NullFraction: 0.06}
}

// TaxiColumns is the generated schema, a subset of the NYC TLC trip record
// layout.
var TaxiColumns = []string{
	"vendor_id",
	"pickup_datetime",
	"passenger_count",
	"trip_distance",
	"payment_type",
	"fare_amount",
	"tip_amount",
	"total_amount",
	"store_and_fwd_flag",
}

// Taxi generates the synthetic trip table.
func Taxi(opts TaxiOptions) *core.DataFrame {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Rows

	vendors := []string{"CMT", "VTS", "DDS"}
	payments := []string{"card", "cash", "dispute", "no charge"}

	vendor := make([]string, n)
	pickup := make([]int64, n)
	passengers := make([]int64, n)
	passengersNull := make([]bool, n)
	distance := make([]float64, n)
	distanceNull := make([]bool, n)
	payment := make([]string, n)
	fare := make([]float64, n)
	tip := make([]float64, n)
	tipNull := make([]bool, n)
	total := make([]float64, n)
	flag := make([]string, n)

	const baseTime = int64(1262304000) // 2010-01-01 UTC, seconds
	for i := 0; i < n; i++ {
		vendor[i] = vendors[rng.Intn(len(vendors))]
		pickup[i] = (baseTime + int64(rng.Intn(365*24*3600))) * 1e9
		if rng.Float64() < opts.NullFraction {
			passengersNull[i] = true
		} else {
			passengers[i] = 1 + int64(rng.Intn(6))
		}
		if rng.Float64() < opts.NullFraction {
			distanceNull[i] = true
		} else {
			distance[i] = rng.Float64() * 20
		}
		payment[i] = payments[rng.Intn(len(payments))]
		fare[i] = 2.5 + distance[i]*2.1 + rng.Float64()*3
		if rng.Float64() < opts.NullFraction {
			tipNull[i] = true
		} else {
			tip[i] = fare[i] * rng.Float64() * 0.3
		}
		total[i] = fare[i] + tip[i]
		switch rng.Intn(10) {
		case 0:
			flag[i] = "Y"
		case 1:
			flag[i] = "" // null literal
		default:
			flag[i] = "N"
		}
	}

	cols := []vector.Vector{
		vector.NewDictFromStrings(vendor),
		vector.NewDatetime(pickup, nil),
		vector.NewInt(passengers, passengersNull),
		vector.NewFloat(distance, distanceNull),
		vector.NewDictFromStrings(payment),
		vector.NewFloat(fare, nil),
		vector.NewFloat(tip, tipNull),
		vector.NewFloat(total, nil),
		vector.NewObjectFromStrings(flag),
	}
	df := core.MustNew(TaxiColumns, cols)
	if !opts.Raw {
		return df
	}
	// Raw mode: re-render every column through Σ*, as a CSV read would
	// deliver it, leaving all typing to schema induction.
	raw := make([]vector.Vector, len(cols))
	for j, c := range cols {
		data := make([]string, c.Len())
		nulls := make([]bool, c.Len())
		for i := 0; i < c.Len(); i++ {
			if c.IsNull(i) {
				nulls[i] = true
				continue
			}
			data[i] = c.Value(i).String()
		}
		raw[j] = vector.NewObject(data, nulls)
	}
	return core.MustNew(TaxiColumns, raw)
}

// Sales generates a scaled-up version of the Figure 5 SALES table for the
// pivot experiments: years×months rows of (Year, Month, Sales), ordered by
// Year then Month — the sortedness the Figure 8(b) rewrite exploits.
func Sales(years, months int, seed int64) *core.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	n := years * months
	year := make([]int64, 0, n)
	month := make([]string, 0, n)
	sales := make([]int64, 0, n)
	for y := 0; y < years; y++ {
		for m := 0; m < months; m++ {
			year = append(year, int64(2000+y))
			month = append(month, fmt.Sprintf("M%02d", m+1))
			sales = append(sales, int64(rng.Intn(1000)))
		}
	}
	return core.MustNew(
		[]string{"Year", "Month", "Sales"},
		[]vector.Vector{
			vector.NewInt(year, nil),
			vector.NewObject(month, nil),
			vector.NewInt(sales, nil),
		},
	)
}

// Matrix generates an n×k float matrix dataframe for covariance and
// transpose experiments.
func Matrix(rows, cols int, seed int64) *core.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, cols)
	vecs := make([]vector.Vector, cols)
	for j := 0; j < cols; j++ {
		names[j] = fmt.Sprintf("c%d", j)
		data := make([]float64, rows)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		vecs[j] = vector.NewFloat(data, nil)
	}
	return core.MustNew(names, vecs)
}

// WideUntyped generates a frame of numeric data rendered as strings with
// occasional nulls: the schema-induction workload of experiment E8.
func WideUntyped(rows, cols int, seed int64) *core.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, cols)
	vecs := make([]vector.Vector, cols)
	for j := 0; j < cols; j++ {
		names[j] = fmt.Sprintf("u%d", j)
		data := make([]string, rows)
		for i := range data {
			if rng.Intn(50) == 0 {
				data[i] = "NA"
			} else if j%3 == 0 {
				data[i] = fmt.Sprintf("%d", rng.Intn(100000))
			} else if j%3 == 1 {
				data[i] = fmt.Sprintf("%.4f", rng.Float64()*100)
			} else {
				data[i] = fmt.Sprintf("item-%d", rng.Intn(1000))
			}
		}
		vecs[j] = vector.NewObjectFromStrings(data)
	}
	return core.MustNew(names, vecs)
}

package workload

import (
	"testing"

	"repro/internal/types"
)

func TestTaxiShapeAndDeterminism(t *testing.T) {
	opts := DefaultTaxiOptions(500)
	a := Taxi(opts)
	b := Taxi(opts)
	if a.NRows() != 500 || a.NCols() != len(TaxiColumns) {
		t.Fatalf("shape = %dx%d", a.NRows(), a.NCols())
	}
	if !a.Equal(b) {
		t.Error("same seed must reproduce the dataset")
	}
	other := Taxi(TaxiOptions{Rows: 500, Seed: 99, NullFraction: 0.06})
	if a.Equal(other) {
		t.Error("different seed should differ")
	}
}

func TestTaxiNullDensity(t *testing.T) {
	df := Taxi(DefaultTaxiOptions(2000))
	j := df.ColIndex("passenger_count")
	nulls := 0
	col := df.Col(j)
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			nulls++
		}
	}
	frac := float64(nulls) / 2000
	if frac < 0.03 || frac > 0.10 {
		t.Errorf("passenger_count null fraction = %v, want ~0.06", frac)
	}
	// Non-null passenger counts are 1..6, the groupby(n) key profile.
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			continue
		}
		v := col.Value(i).Int()
		if v < 1 || v > 6 {
			t.Fatalf("passenger_count = %d out of range", v)
		}
	}
}

func TestTaxiRawModeIsUntyped(t *testing.T) {
	raw := Taxi(TaxiOptions{Rows: 100, Seed: 1, NullFraction: 0.05, Raw: true})
	for j := 0; j < raw.NCols(); j++ {
		if raw.Col(j).Domain() != types.Object {
			t.Errorf("raw column %d stored as %v", j, raw.Col(j).Domain())
		}
	}
	// Induction recovers sensible domains from the rendered strings.
	if raw.Domain(raw.ColIndex("passenger_count")) != types.Int {
		t.Errorf("induced passenger_count = %v", raw.Domain(raw.ColIndex("passenger_count")))
	}
	if raw.Domain(raw.ColIndex("fare_amount")) != types.Float {
		t.Errorf("induced fare_amount = %v", raw.Domain(raw.ColIndex("fare_amount")))
	}
}

func TestSalesSortedByYear(t *testing.T) {
	df := Sales(5, 12, 1)
	if df.NRows() != 60 {
		t.Fatalf("rows = %d", df.NRows())
	}
	j := df.ColIndex("Year")
	prev := int64(0)
	for i := 0; i < df.NRows(); i++ {
		y := df.Value(i, j).Int()
		if y < prev {
			t.Fatal("sales must be ordered by Year")
		}
		prev = y
	}
}

func TestMatrixAndWideUntyped(t *testing.T) {
	m := Matrix(10, 4, 3)
	if m.NRows() != 10 || m.NCols() != 4 || !m.IsMatrix() {
		t.Error("matrix generator wrong")
	}
	w := WideUntyped(50, 9, 5)
	if w.NRows() != 50 || w.NCols() != 9 {
		t.Error("wide untyped shape wrong")
	}
	if w.Domain(0) != types.Int || w.Domain(1) != types.Float {
		t.Errorf("induced domains = %v %v", w.Domain(0), w.Domain(1))
	}
}

package server

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dferrors"
)

// tokenBucket is a classic leaky token bucket: capacity `burst` tokens,
// refilled continuously at `rate` tokens per second. Each admitted query
// costs one token; an empty bucket reports how long until the next token
// accrues so callers can surface a Retry-After hint instead of making
// clients guess a backoff.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <=0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return &tokenBucket{}
	}
	if burst <= 0 {
		// Default burst: one second's worth of rate, at least one query.
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), now: time.Now}
	b.tokens = b.burst // start full: a fresh tenant gets its whole burst
	b.last = b.now()
	return b
}

// take spends one token. When the bucket is empty it reports ok=false and
// the wait until one full token will have accrued.
func (b *tokenBucket) take() (retryAfter time.Duration, ok bool) {
	if b.rate <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second)), false
}

// RateLimitError is the typed rejection of the per-tenant request-rate
// limiter. It wraps dferrors.ErrRateLimited (so errors.Is dispatch works
// across layers) and carries the Retry-After hint the HTTP handler turns
// into a response header.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("server: tenant %q over request rate limit, retry in %v: %v",
		e.Tenant, e.RetryAfter.Round(time.Millisecond), dferrors.ErrRateLimited)
}

func (e *RateLimitError) Unwrap() error { return dferrors.ErrRateLimited }

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up and at least 1 — HTTP Retry-After has no sub-second form.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

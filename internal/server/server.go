package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/df"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dferrors"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Config carries the server knobs; the zero value is usable.
type Config struct {
	// CacheMaxCells caps the plan cache's resident result cells
	// (rows×cols+1 per result). 0 picks a default; negative disables the
	// bound.
	CacheMaxCells int
	// CacheOff disables the plan cache entirely (for A/B latency runs).
	CacheOff bool
	// TenantBudgetCells is each tenant's memory ceiling in cells; <=0
	// means unlimited (no admission control).
	TenantBudgetCells int
	// QueueWait is how long an over-budget query may queue for capacity
	// before failing with ErrBudgetExceeded. 0 picks a default.
	QueueWait time.Duration
	// IdleAfter is how long a session must be quiet before the think-time
	// scheduler drains its background work. 0 picks a default.
	IdleAfter time.Duration
	// RatePerSec caps each tenant's sustained /query request rate (token
	// bucket, refilled continuously); <=0 disables rate limiting.
	RatePerSec float64
	// RateBurst is the token bucket's capacity — how many queries a tenant
	// may issue back-to-back before the sustained rate applies. <=0 picks
	// one second's worth of RatePerSec (at least 1).
	RateBurst int
	// PreviewRows is how many result rows query responses inline.
	PreviewRows int
}

func (c Config) withDefaults() Config {
	if c.CacheMaxCells == 0 {
		c.CacheMaxCells = 4 << 20
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.IdleAfter == 0 {
		c.IdleAfter = 50 * time.Millisecond
	}
	if c.PreviewRows == 0 {
		c.PreviewRows = 5
	}
	return c
}

// Server multiplexes tenant sessions over shared engines behind an HTTP
// API. Datasets are registered server-side and bound into sessions by
// reference, so fingerprint-equal plans from different sessions (or
// tenants) resolve to the same cache entries; re-registering a dataset
// produces a new frame version and implicitly invalidates them.
type Server struct {
	cfg   Config
	cache *PlanCache

	mu       sync.Mutex
	datasets map[string]*df.DataFrame
	tenants  map[string]*Tenant
	sessions map[string]*tenantSession
	nextID   atomic.Int64

	queries, uncacheable atomic.Int64

	stop chan struct{}
	done sync.WaitGroup
}

// New builds a server with the given knobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		cache:    NewPlanCache(cfg.CacheMaxCells),
		datasets: make(map[string]*df.DataFrame),
		tenants:  make(map[string]*Tenant),
		sessions: make(map[string]*tenantSession),
		stop:     make(chan struct{}),
	}
}

// Start launches the think-time scheduler loop.
func (s *Server) Start() {
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(s.cfg.IdleAfter)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				for _, t := range s.tenantList() {
					t.DrainIdle(s.cfg.IdleAfter)
				}
			}
		}
	}()
}

// Shutdown stops the scheduler loop and closes every session.
func (s *Server) Shutdown() {
	close(s.stop)
	s.done.Wait()
	s.mu.Lock()
	sessions := make([]*tenantSession, 0, len(s.sessions))
	for _, ts := range s.sessions {
		sessions = append(sessions, ts)
	}
	s.sessions = make(map[string]*tenantSession)
	for _, t := range s.tenants {
		t.mu.Lock()
		t.sessions = make(map[string]*tenantSession)
		t.mu.Unlock()
	}
	s.mu.Unlock()
	for _, ts := range sessions {
		ts.sess.Close()
	}
}

func (s *Server) tenantList() []*Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}

// RegisterDataset installs (or replaces) a named base frame. Replacing is a
// rebind: the new frame is a new version, so every cached plan over the old
// frame silently stops matching.
func (s *Server) RegisterDataset(name string, d *df.DataFrame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = d
}

// Tenant returns (creating on first use) the named tenant.
func (s *Server) Tenant(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = newTenant(name, s.cfg.TenantBudgetCells, s.cfg.QueueWait)
		t.limiter = newTokenBucket(s.cfg.RatePerSec, s.cfg.RateBurst)
		s.tenants[name] = t
	}
	return t
}

// OpenSession creates a session for the tenant under the given mode and
// returns its id.
func (s *Server) OpenSession(tenantName string, mode df.Mode) string {
	t := s.Tenant(tenantName)
	sess := df.NewSession(t.engine, mode)
	if s.cfg.TenantBudgetCells > 0 {
		sess.EnableSpillingBudget(s.cfg.TenantBudgetCells)
	}
	id := fmt.Sprintf("%s-%d", tenantName, s.nextID.Add(1))
	ts := &tenantSession{id: id, tenant: t, sess: sess}
	s.mu.Lock()
	s.sessions[id] = ts
	s.mu.Unlock()
	t.mu.Lock()
	t.sessions[id] = ts
	t.mu.Unlock()
	return id
}

// CloseSession closes and forgets the session.
func (s *Server) CloseSession(id string) error {
	s.mu.Lock()
	ts, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no session %q: %w", id, dferrors.ErrSessionClosed)
	}
	t := ts.tenant
	t.mu.Lock()
	delete(t.sessions, id)
	t.mu.Unlock()
	err := ts.sess.Close()
	t.cond.Broadcast() // freed memory: wake queued admissions
	return err
}

func (s *Server) session(id string) (*tenantSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("server: no session %q: %w", id, dferrors.ErrSessionClosed)
	}
	return ts, nil
}

func (s *Server) dataset(name string) (*df.DataFrame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("server: no dataset %q", name)
	}
	return d, nil
}

// QueryResult is the outcome of one query: its shape, how the cache served
// it, and a small row preview.
type QueryResult struct {
	Rows    int        `json:"rows"`
	Cols    []string   `json:"cols"`
	Cache   string     `json:"cache"` // "hit", "compiled", "miss", "uncacheable", "off"
	Elapsed float64    `json:"elapsed_us"`
	Preview [][]string `json:"preview,omitempty"`
}

// RunQuery executes a wire query in the session, going through the plan
// cache and the tenant's admission control.
func (s *Server) RunQuery(sessionID string, spec QuerySpec) (*QueryResult, error) {
	ts, err := s.session(sessionID)
	if err != nil {
		return nil, err
	}
	if err := ts.tenant.allow(); err != nil {
		return nil, err
	}
	base, err := s.dataset(spec.Dataset)
	if err != nil {
		return nil, err
	}
	q, err := BuildQuery(base, spec.Ops)
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	start := time.Now()

	// Canonicalize after the optimizer: rewrites (predicate pushdown,
	// projection folding, ...) normalize away plan-shape differences that
	// fingerprinting alone would treat as distinct.
	plan, _ := optimizer.Optimize(q.Plan(), optimizer.Default())
	fingerprint, sources, cacheable := optimizer.Fingerprint(plan)
	t := ts.tenant

	if cacheable && !s.cfg.CacheOff {
		version := optimizer.SourceVersion(sources)
		if cached, compiled := s.cache.Lookup(fingerprint, version); cached != nil {
			return s.result(cached, "hit", start), nil
		} else if compiled != nil {
			// Compiled-DAG hit: skip compilation, pay only execution.
			release, err := t.admit(planEstimate(plan))
			if err != nil {
				return nil, err
			}
			defer release()
			out, err := t.engine.ExecuteCompiled(compiled)
			if err != nil {
				return nil, err
			}
			s.cache.StoreResult(fingerprint, version, out)
			return s.result(out, "compiled", start), nil
		}
		release, err := t.admit(planEstimate(plan))
		if err != nil {
			return nil, err
		}
		defer release()
		compiled, err := t.engine.Compile(plan)
		if err != nil {
			return nil, err
		}
		s.cache.StoreCompiled(fingerprint, version, compiled)
		out, err := t.engine.ExecuteCompiled(compiled)
		if err != nil {
			return nil, err
		}
		s.cache.StoreResult(fingerprint, version, out)
		return s.result(out, "miss", start), nil
	}

	// Uncacheable (or cache off): run as an ordinary session statement —
	// the session's own materialized-intermediate reuse still applies.
	s.uncacheable.Add(1)
	release, err := t.admit(planEstimate(plan))
	if err != nil {
		return nil, err
	}
	defer release()
	h, err := ts.sess.Query(spec.Name, q)
	if err != nil {
		return nil, err
	}
	out, err := h.Collect()
	if err != nil {
		return nil, err
	}
	kind := "uncacheable"
	if s.cfg.CacheOff {
		kind = "off"
	}
	return s.result(out.Frame(), kind, start), nil
}

// planEstimate is the admission-control cost of a plan: its estimated
// output cells (at least 1, so reservations are never free).
func planEstimate(plan algebra.Node) int {
	cells := int(optimizer.EstimateNode(plan).Cells())
	if cells < 1 {
		cells = 1
	}
	return cells
}

func (s *Server) result(out *core.DataFrame, kind string, start time.Time) *QueryResult {
	res := &QueryResult{
		Rows:    out.NRows(),
		Cols:    out.ColNames(),
		Cache:   kind,
		Elapsed: float64(time.Since(start).Microseconds()),
	}
	n := s.cfg.PreviewRows
	if n > out.NRows() {
		n = out.NRows()
	}
	for i := 0; i < n; i++ {
		row := make([]string, out.NCols())
		for j := 0; j < out.NCols(); j++ {
			row[j] = out.Col(j).Value(i).String()
		}
		res.Preview = append(res.Preview, row)
	}
	return res
}

// ServerStats aggregates the server's observability counters.
type ServerStats struct {
	Queries     int64                  `json:"queries"`
	Uncacheable int64                  `json:"uncacheable"`
	Cache       CacheStats             `json:"cache"`
	Tenants     map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the server.
func (s *Server) Stats() ServerStats {
	out := ServerStats{
		Queries:     s.queries.Load(),
		Uncacheable: s.uncacheable.Load(),
		Cache:       s.cache.Stats(),
		Tenants:     make(map[string]TenantStats),
	}
	s.mu.Lock()
	tenants := make(map[string]*Tenant, len(s.tenants))
	for name, t := range s.tenants {
		tenants[name] = t
	}
	s.mu.Unlock()
	for name, t := range tenants {
		out.Tenants[name] = t.Stats()
	}
	return out
}

// --- HTTP surface ---------------------------------------------------------

// Handler returns the server's HTTP API:
//
//	POST   /datasets            {"name": "taxi", "taxi_rows": 100000} | {"name": ..., "csv": "..."}
//	POST   /sessions            {"tenant": "alice", "mode": "opportunistic"} → {"id": ...}
//	DELETE /sessions/{id}
//	POST   /sessions/{id}/query QuerySpec → QueryResult
//	GET    /stats               → ServerStats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/datasets", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		var req struct {
			Name     string `json:"name"`
			TaxiRows int    `json:"taxi_rows"`
			CSV      string `json:"csv"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad dataset request: %v", err))
			return
		}
		var d *df.DataFrame
		switch {
		case req.CSV != "":
			got, err := df.ScanCSVString(req.CSV).Collect()
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			d = got
		case req.TaxiRows > 0:
			d = df.FromFrame(workload.Taxi(workload.DefaultTaxiOptions(req.TaxiRows)))
		default:
			httpError(w, http.StatusBadRequest, errors.New("dataset needs csv or taxi_rows"))
			return
		}
		s.RegisterDataset(req.Name, d)
		writeJSON(w, map[string]any{"name": req.Name, "rows": d.Len(), "cols": d.Columns()})
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		var req struct {
			Tenant string `json:"tenant"`
			Mode   string `json:"mode"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Tenant == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad session request: %v", err))
			return
		}
		if req.Mode == "" {
			req.Mode = "opportunistic"
		}
		mode, err := df.ParseMode(req.Mode)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]string{"id": s.OpenSession(req.Tenant, mode)})
	})
	mux.HandleFunc("/sessions/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
		id, verb, _ := strings.Cut(rest, "/")
		switch {
		case r.Method == http.MethodDelete && verb == "":
			if err := s.CloseSession(id); err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			writeJSON(w, map[string]string{"closed": id})
		case r.Method == http.MethodPost && verb == "query":
			var spec QuerySpec
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad query: %v", err))
				return
			}
			res, err := s.RunQuery(id, spec)
			if err != nil {
				var rl *RateLimitError
				if errors.As(err, &rl) {
					w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rl.RetryAfter)))
				}
				httpError(w, statusFor(err), err)
				return
			}
			writeJSON(w, res)
		default:
			httpError(w, http.StatusNotFound, fmt.Errorf("no route %s %s", r.Method, r.URL.Path))
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

// statusFor maps the typed sentinel errors onto HTTP statuses — the errors.Is
// dispatch the sentinels exist for.
func statusFor(err error) int {
	switch {
	case errors.Is(err, dferrors.ErrBudgetExceeded),
		errors.Is(err, dferrors.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, dferrors.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, dferrors.ErrUnknownColumn),
		errors.Is(err, dferrors.ErrUnknownAggregate),
		errors.Is(err, dferrors.ErrUnknownJoinKind),
		errors.Is(err, dferrors.ErrUnknownMode):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

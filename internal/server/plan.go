package server

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/df"
)

// The wire form of a query: a dataset name plus a chain of operator specs
// applied in order. Every op is a typed, serializable plan step — by
// construction a wire query can never carry an opaque closure, which is
// what keeps server queries fingerprintable and cacheable.
//
//	{"dataset": "taxi", "ops": [
//	  {"op": "where", "col": "total_amount", "cmp": ">", "value": 20},
//	  {"op": "groupby", "keys": ["vendor_id"],
//	   "aggs": [{"col": "total_amount", "agg": "mean", "as": "avg"}]},
//	  {"op": "sort", "keys": [{"col": "avg", "desc": true}]},
//	  {"op": "head", "n": 5}
//	]}

// OpSpec is one operator of a wire query. Fields are a union across ops;
// each op reads only its own.
type OpSpec struct {
	Op string `json:"op"`

	Cols    []string          `json:"cols,omitempty"`    // select, drop, dropdup
	Col     string            `json:"col,omitempty"`     // where
	Cmp     string            `json:"cmp,omitempty"`     // where: == != < <= > >=
	Value   json.RawMessage   `json:"value,omitempty"`   // where: JSON literal
	Keys    []SortKeySpec     `json:"keys,omitempty"`    // sort
	By      []string          `json:"by,omitempty"`      // groupby keys
	Aggs    []AggSpec         `json:"aggs,omitempty"`    // groupby
	Mapping map[string]string `json:"mapping,omitempty"` // rename
	N       int               `json:"n,omitempty"`       // head, tail
}

// SortKeySpec is one sort key.
type SortKeySpec struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// AggSpec is one aggregate of a groupby.
type AggSpec struct {
	Col string `json:"col"`
	Agg string `json:"agg"`
	As  string `json:"as,omitempty"`
}

// QuerySpec is the wire query.
type QuerySpec struct {
	// Name labels the statement; optional, cosmetic only (names are
	// canonicalized out of plan fingerprints).
	Name string `json:"name,omitempty"`
	// Dataset is the bound base frame the plan starts from.
	Dataset string `json:"dataset"`
	// Ops are applied in order.
	Ops []OpSpec `json:"ops"`
}

// BuildQuery translates the wire ops into a builder query over the base
// frame. Errors report the offending op by index.
func BuildQuery(base *df.DataFrame, ops []OpSpec) (*df.Query, error) {
	q := base.Lazy()
	for i, op := range ops {
		next, err := applyOp(q, op)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		q = next
	}
	if err := q.Err(); err != nil {
		return nil, err
	}
	return q, nil
}

func applyOp(q *df.Query, op OpSpec) (*df.Query, error) {
	switch op.Op {
	case "select":
		return q.Select(op.Cols...), nil
	case "drop":
		return q.Drop(op.Cols...), nil
	case "where":
		cond, err := buildCond(op)
		if err != nil {
			return nil, err
		}
		return q.Where(cond), nil
	case "sort":
		keys := make([]df.SortKey, len(op.Keys))
		for i, k := range op.Keys {
			keys[i] = df.SortKey{Col: k.Col, Desc: k.Desc}
		}
		return q.SortValuesBy(keys), nil
	case "groupby":
		g := q.GroupBy(op.By...)
		aggs := make([]df.AggSpec, len(op.Aggs))
		for i, a := range op.Aggs {
			aggs[i] = df.AggSpec{Col: a.Col, Agg: a.Agg, As: a.As}
		}
		return g.Agg(aggs...), nil
	case "rename":
		return q.Rename(op.Mapping), nil
	case "dropdup":
		return q.DropDuplicates(op.Cols...), nil
	case "head":
		return q.Head(op.N), nil
	case "tail":
		return q.Tail(op.N), nil
	}
	return nil, fmt.Errorf("unknown op %q", op.Op)
}

func buildCond(op OpSpec) (df.Cond, error) {
	v, err := parseLiteral(op.Value)
	if err != nil {
		return df.Cond{}, err
	}
	switch op.Cmp {
	case "==":
		return df.Eq(op.Col, v), nil
	case "!=":
		return df.Ne(op.Col, v), nil
	case "<":
		return df.Lt(op.Col, v), nil
	case "<=":
		return df.Le(op.Col, v), nil
	case ">":
		return df.Gt(op.Col, v), nil
	case ">=":
		return df.Ge(op.Col, v), nil
	}
	return df.Cond{}, fmt.Errorf("unknown comparison %q", op.Cmp)
}

// parseLiteral maps a JSON literal to a typed value: integral numbers
// become Int, other numbers Float, and strings/bools their own domains.
func parseLiteral(raw json.RawMessage) (df.Value, error) {
	if len(raw) == 0 {
		return df.Value{}, fmt.Errorf("missing value")
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return df.Value{}, err
	}
	switch x := v.(type) {
	case string:
		return df.Str(x), nil
	case bool:
		return df.Bool(x), nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return df.Int(int64(x)), nil
		}
		return df.Float(x), nil
	case nil:
		return df.Value{}, nil // null literal: is-null / not-null tests
	}
	return df.Value{}, fmt.Errorf("unsupported literal %s", raw)
}

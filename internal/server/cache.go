// Package server is the multi-tenant dataframe service: it multiplexes many
// concurrent df.Session users over shared engines behind a JSON-over-HTTP
// API, adding the three things a single-user session does not need — a
// query-plan cache keyed on canonicalized plans, per-tenant memory budgets
// with admission control, and think-time scheduling that drains idle
// sessions' opportunistic work before admitting new heavy queries.
package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/physical"
)

// PlanCache caches work across sessions at two levels, keyed on the
// canonical plan fingerprint (optimizer.Fingerprint) plus the bound source
// frames' version (optimizer.SourceVersion):
//
//   - compiled physical DAGs, skipping logical optimization and physical
//     compilation on every repeat of a plan shape;
//   - materialized results, skipping execution entirely when the same
//     normalized plan runs again over version-identical base frames.
//
// Because the version is part of the key, rebinding a base frame (a new
// *core.DataFrame pointer) invalidates implicitly: the stale entry simply
// stops being reachable and ages out of the LRU. Eviction is by resident
// result cells against a configurable ceiling, least recently used first.
type PlanCache struct {
	mu       sync.Mutex
	maxCells int
	entries  map[string]*cacheEntry
	lru      []string // keys, least recently used first
	resident int      // cells held by cached results

	hits, misses, compiledHits atomic.Int64
}

type cacheEntry struct {
	compiled *physical.Node
	result   *core.DataFrame // nil until a result lands
	cells    int
}

// NewPlanCache returns a cache holding at most maxCells result cells
// (rows×cols+1 per result); <=0 means unlimited.
func NewPlanCache(maxCells int) *PlanCache {
	return &PlanCache{maxCells: maxCells, entries: make(map[string]*cacheEntry)}
}

func cacheKey(fingerprint, version string) string { return version + "\x00" + fingerprint }

// Lookup returns the cached result and/or compiled DAG for the plan. A
// non-nil result counts as a cache hit; a compiled DAG alone counts as a
// compiled-plan hit (the result must still be computed); neither is a miss.
func (c *PlanCache) Lookup(fingerprint, version string) (*core.DataFrame, *physical.Node) {
	key := cacheKey(fingerprint, version)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, nil
	}
	c.touchLocked(key)
	if e.result != nil {
		c.hits.Add(1)
		return e.result, e.compiled
	}
	if e.compiled != nil {
		c.compiledHits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return nil, e.compiled
}

// StoreCompiled records the plan's compiled physical DAG.
func (c *PlanCache) StoreCompiled(fingerprint, version string, plan *physical.Node) {
	key := cacheKey(fingerprint, version)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entryLocked(key)
	e.compiled = plan
	c.touchLocked(key)
}

// StoreResult records the plan's materialized result, evicting the least
// recently used results beyond the cell ceiling.
func (c *PlanCache) StoreResult(fingerprint, version string, df *core.DataFrame) {
	key := cacheKey(fingerprint, version)
	cells := df.NRows()*df.NCols() + 1
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entryLocked(key)
	if e.result != nil {
		c.resident -= e.cells
	}
	e.result = df
	e.cells = cells
	c.resident += cells
	c.touchLocked(key)
	c.evictLocked(key)
}

func (c *PlanCache) entryLocked(key string) *cacheEntry {
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	return e
}

func (c *PlanCache) touchLocked(key string) {
	for i, k := range c.lru {
		if k == key {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.lru = append(c.lru, key)
}

// evictLocked drops whole entries (coldest first, sparing keep) until the
// resident results fit the ceiling.
func (c *PlanCache) evictLocked(keep string) {
	if c.maxCells <= 0 {
		return
	}
	for c.resident > c.maxCells && len(c.lru) > 0 {
		victim := ""
		for _, k := range c.lru {
			if k != keep {
				victim = k
				break
			}
		}
		if victim == "" {
			return // only the just-stored entry remains; allow overshoot
		}
		if e := c.entries[victim]; e.result != nil {
			c.resident -= e.cells
		}
		delete(c.entries, victim)
		c.touchLocked(victim)
		c.lru = c.lru[:len(c.lru)-1]
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits          int64 `json:"hits"`          // served a materialized result
	CompiledHits  int64 `json:"compiled_hits"` // reused a compiled DAG, re-executed
	Misses        int64 `json:"misses"`
	Entries       int   `json:"entries"`
	ResidentCells int   `json:"resident_cells"`
}

// HitRate is hits over all lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.CompiledHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	entries, resident := len(c.entries), c.resident
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		CompiledHits:  c.compiledHits.Load(),
		Misses:        c.misses.Load(),
		Entries:       entries,
		ResidentCells: resident,
	}
}

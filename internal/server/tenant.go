package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/df"
	"repro/internal/dferrors"
	"repro/internal/modin"
)

// Tenant groups a user's sessions behind one shared engine and one memory
// budget. Sharing the engine shares its statistics memoization: NDV and
// row-count sketches computed for one session's plans steer the physical
// planning of every other session of the tenant. The budget is enforced by
// admission control — a query whose estimated output cannot ever fit is
// rejected with dferrors.ErrBudgetExceeded; one that merely doesn't fit
// *now* first triggers spilling of the tenant's coldest resolved session
// blocks, then queues until capacity frees or the queue wait expires. The
// server never lets a tenant run the process out of memory.
type Tenant struct {
	name        string
	engine      *modin.Engine
	budgetCells int           // <=0: unlimited
	queueWait   time.Duration // how long an over-budget query may queue
	limiter     *tokenBucket  // request-rate bucket; nil: unlimited

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[string]*tenantSession
	reserved int // cells promised to admitted, still-running queries

	rejected, queuedTotal, spillRounds, throttled atomic.Int64
}

// allow spends one request-rate token, or reports how long until the
// tenant should retry. Memory admission (admit) is orthogonal: the rate
// bucket bounds how often a tenant may ask, the budget bounds how much the
// admitted queries may hold.
func (t *Tenant) allow() error {
	if t.limiter == nil {
		return nil
	}
	retry, ok := t.limiter.take()
	if ok {
		return nil
	}
	t.throttled.Add(1)
	return &RateLimitError{Tenant: t.name, RetryAfter: retry}
}

func newTenant(name string, budgetCells int, queueWait time.Duration) *Tenant {
	t := &Tenant{
		name:        name,
		engine:      modin.New(),
		budgetCells: budgetCells,
		queueWait:   queueWait,
		sessions:    make(map[string]*tenantSession),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// tenantSession is one live session of a tenant.
type tenantSession struct {
	id     string
	tenant *Tenant
	sess   *df.Session
}

// usageLocked sums the tenant's accountable memory: every session's
// resident materializations plus cells reserved by in-flight queries.
func (t *Tenant) usageLocked() int {
	cells := t.reserved
	for _, ts := range t.sessions {
		cells += ts.sess.MemoryCells()
	}
	return cells
}

// Usage reports the tenant's current accountable cells.
func (t *Tenant) Usage() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usageLocked()
}

// admit reserves estimate cells against the tenant budget, returning a
// release function the caller must invoke when the query finishes. The
// admission ladder: fit now → run; never fits → reject; doesn't fit now →
// drain idle sessions' background work, spill cold blocks, then queue.
func (t *Tenant) admit(estimate int) (release func(), err error) {
	if t.budgetCells <= 0 {
		return func() {}, nil
	}
	if estimate > t.budgetCells {
		t.rejected.Add(1)
		return nil, fmt.Errorf("server: query needs ~%d cells, over tenant %q budget of %d: %w",
			estimate, t.name, t.budgetCells, dferrors.ErrBudgetExceeded)
	}

	// New heavy work yields to the opportunistic DAGs of idle sessions
	// first (think-time scheduling): their results are about to be asked
	// for, and finishing them settles the memory picture before we decide
	// whether this query fits.
	t.DrainIdle(0)

	deadline := time.Now().Add(t.queueWait)
	queued := false
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.usageLocked()+estimate <= t.budgetCells {
			t.reserved += estimate
			return t.releaseFunc(estimate), nil
		}
		// Over budget: push the coldest resolved blocks to disk, coldest
		// session first, until the query fits or nothing is left to spill.
		if t.spillLocked(estimate) {
			continue
		}
		if !queued {
			queued = true
			t.queuedTotal.Add(1)
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			t.rejected.Add(1)
			return nil, fmt.Errorf("server: tenant %q over budget after %v queue wait: %w",
				t.name, t.queueWait, dferrors.ErrBudgetExceeded)
		}
		t.waitLocked(remaining)
	}
}

func (t *Tenant) releaseFunc(estimate int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.reserved -= estimate
			t.mu.Unlock()
			t.cond.Broadcast()
		})
	}
}

// spillLocked pushes resolved session blocks to disk, least recently active
// session first, until the pending estimate fits. Reports whether anything
// was spilled (progress ⇒ the admission loop re-checks instead of queuing).
func (t *Tenant) spillLocked(estimate int) bool {
	order := make([]*tenantSession, 0, len(t.sessions))
	for _, ts := range t.sessions {
		order = append(order, ts)
	}
	sort.Slice(order, func(i, j int) bool {
		return order[i].sess.LastActive().Before(order[j].sess.LastActive())
	})
	spilled := 0
	for _, ts := range order {
		if t.usageLocked()+estimate <= t.budgetCells {
			break
		}
		spilled += ts.sess.SpillToFit(0)
	}
	if spilled > 0 {
		t.spillRounds.Add(1)
		return true
	}
	return false
}

// waitLocked blocks on the tenant condition for at most d. A timer-driven
// broadcast bounds the wait; spurious wakeups only cost a loop iteration.
func (t *Tenant) waitLocked(d time.Duration) {
	timer := time.AfterFunc(d, t.cond.Broadcast)
	defer timer.Stop()
	t.cond.Wait()
}

// DrainIdle waits out the pending background (opportunistic) work of every
// session idle for at least idleFor. The server's scheduler loop calls this
// periodically, and admission calls it with idleFor=0 before queuing new
// heavy work.
func (t *Tenant) DrainIdle(idleFor time.Duration) {
	t.mu.Lock()
	idle := make([]*tenantSession, 0, len(t.sessions))
	for _, ts := range t.sessions {
		last := ts.sess.LastActive()
		if ts.sess.PendingBackground() > 0 && (idleFor <= 0 || time.Since(last) >= idleFor) {
			idle = append(idle, ts)
		}
	}
	t.mu.Unlock()
	for _, ts := range idle {
		ts.sess.ThinkTime()
	}
	if len(idle) > 0 {
		t.cond.Broadcast()
	}
}

// TenantStats is a point-in-time snapshot of one tenant.
type TenantStats struct {
	Sessions    int   `json:"sessions"`
	UsageCells  int   `json:"usage_cells"`
	BudgetCells int   `json:"budget_cells"`
	Rejected    int64 `json:"rejected"`
	Queued      int64 `json:"queued"`
	SpillRounds int64 `json:"spill_rounds"`
	Throttled   int64 `json:"throttled"`
}

// Stats snapshots the tenant counters.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	sessions, usage := len(t.sessions), t.usageLocked()
	t.mu.Unlock()
	return TenantStats{
		Sessions:    sessions,
		UsageCells:  usage,
		BudgetCells: t.budgetCells,
		Rejected:    t.rejected.Load(),
		Queued:      t.queuedTotal.Load(),
		SpillRounds: t.spillRounds.Load(),
		Throttled:   t.throttled.Load(),
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/df"
	"repro/internal/dferrors"
)

// TestTokenBucketRefill drives the bucket with a fake clock: burst drains
// back-to-back, an empty bucket reports the exact wait, and elapsed time
// refills at the configured rate up to the cap.
func TestTokenBucketRefill(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newTokenBucket(2, 2) // 2 qps, burst 2
	b.now = func() time.Time { return clock }
	b.tokens, b.last = b.burst, clock

	for i := 0; i < 2; i++ {
		if retry, ok := b.take(); !ok {
			t.Fatalf("take %d denied (retry %v), want burst to pass", i, retry)
		}
	}
	retry, ok := b.take()
	if ok {
		t.Fatal("third immediate take passed an empty bucket")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry = %v, want 500ms (1 token at 2 qps)", retry)
	}

	clock = clock.Add(500 * time.Millisecond) // exactly one token accrues
	if _, ok := b.take(); !ok {
		t.Fatal("take denied after a full token refilled")
	}
	if _, ok := b.take(); ok {
		t.Fatal("bucket refilled above elapsed×rate")
	}

	clock = clock.Add(time.Hour) // refill clamps at burst, not rate×hour
	for i := 0; i < 2; i++ {
		if _, ok := b.take(); !ok {
			t.Fatalf("take %d denied after long idle, want full burst", i)
		}
	}
	if _, ok := b.take(); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestRateLimitPerTenant exercises the server path: each tenant has its
// own bucket, denials are typed (dferrors.ErrRateLimited) and counted, and
// another tenant is unaffected.
func TestRateLimitPerTenant(t *testing.T) {
	s := New(Config{RatePerSec: 0.001, RateBurst: 2})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	alice := s.OpenSession("alice", df.ModeEager)
	bob := s.OpenSession("bob", df.ModeEager)

	for i := 0; i < 2; i++ {
		if _, err := s.RunQuery(alice, aggSpec("d")); err != nil {
			t.Fatalf("alice query %d: %v", i, err)
		}
	}
	_, err := s.RunQuery(alice, aggSpec("d"))
	if !errors.Is(err, dferrors.ErrRateLimited) {
		t.Fatalf("third alice query err = %v, want ErrRateLimited", err)
	}
	var rl *RateLimitError
	if !errors.As(err, &rl) || rl.RetryAfter <= 0 {
		t.Fatalf("err = %#v, want *RateLimitError with positive RetryAfter", err)
	}
	if _, err := s.RunQuery(bob, aggSpec("d")); err != nil {
		t.Fatalf("bob blocked by alice's bucket: %v", err)
	}
	if got := s.Stats().Tenants["alice"].Throttled; got != 1 {
		t.Errorf("alice throttled = %d, want 1", got)
	}
	if got := s.Stats().Tenants["bob"].Throttled; got != 0 {
		t.Errorf("bob throttled = %d, want 0", got)
	}
}

// TestRateLimitHTTP asserts the wire contract: 429 with a whole-second
// Retry-After header once the bucket drains.
func TestRateLimitHTTP(t *testing.T) {
	s := New(Config{RatePerSec: 0.001, RateBurst: 1})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func() *http.Response {
		body, _ := json.Marshal(aggSpec("d"))
		resp, err := http.Post(srv.URL+"/sessions/"+id+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status = %d, want 200", resp.StatusCode)
	}
	resp = post()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Fatalf("429 body = %v, %v; want JSON error", body, err)
	}
}

// TestRateLimitDisabledByDefault: the zero config imposes no rate limit.
func TestRateLimitDisabledByDefault(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)
	for i := 0; i < 20; i++ {
		if _, err := s.RunQuery(id, aggSpec("d")); err != nil {
			t.Fatalf("query %d with no limit configured: %v", i, err)
		}
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/df"
	"repro/internal/dferrors"
)

func testFrame(t *testing.T, salt int) *df.DataFrame {
	t.Helper()
	records := make([][]any, 0, 60)
	for i := 0; i < 60; i++ {
		records = append(records, []any{fmt.Sprintf("g%d", i%4), i + salt, float64(i) * 1.5})
	}
	d, err := df.New([]string{"k", "v", "x"}, records)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func aggSpec(dataset string) QuerySpec {
	return QuerySpec{
		Name:    "agg",
		Dataset: dataset,
		Ops: []OpSpec{
			{Op: "where", Col: "v", Cmp: ">", Value: json.RawMessage("10")},
			{Op: "groupby", By: []string{"k"}, Aggs: []AggSpec{{Col: "x", Agg: "mean", As: "avg_x"}}},
			{Op: "sort", Keys: []SortKeySpec{{Col: "avg_x", Desc: true}}},
		},
	}
}

// Fingerprint-equal queries from different sessions — even different
// tenants — share one cache entry: the second run is a result hit.
func TestCacheHitAcrossSessions(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	alice := s.OpenSession("alice", df.ModeEager)
	bob := s.OpenSession("bob", df.ModeEager)

	first, err := s.RunQuery(alice, aggSpec("d"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" {
		t.Errorf("first run cache = %q, want miss", first.Cache)
	}
	second, err := s.RunQuery(bob, aggSpec("d"))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Errorf("second run cache = %q, want hit", second.Cache)
	}
	if first.Rows != second.Rows || len(first.Preview) != len(second.Preview) {
		t.Errorf("cached result differs: %+v vs %+v", first, second)
	}
	stats := s.Stats()
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", stats.Cache)
	}
}

// A different literal or shape must not share the entry.
func TestCacheDistinguishesPlans(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)

	if _, err := s.RunQuery(id, aggSpec("d")); err != nil {
		t.Fatal(err)
	}
	other := aggSpec("d")
	other.Ops[0].Value = json.RawMessage("11") // different literal
	res, err := s.RunQuery(id, other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache == "hit" {
		t.Error("different literal must not hit the cache")
	}
}

// Re-registering a dataset is a rebind: cached results over the old frame
// stop matching and the fresh data is served.
func TestCacheInvalidationOnRebind(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)

	spec := QuerySpec{Dataset: "d", Ops: []OpSpec{
		{Op: "where", Col: "v", Cmp: ">=", Value: json.RawMessage("1000")},
	}}
	before, err := s.RunQuery(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if before.Rows != 0 {
		t.Fatalf("want 0 rows before rebind, got %d", before.Rows)
	}
	if res, _ := s.RunQuery(id, spec); res.Cache != "hit" {
		t.Fatalf("repeat should hit, got %q", res.Cache)
	}

	s.RegisterDataset("d", testFrame(t, 1000)) // rebind: v now starts at 1000
	after, err := s.RunQuery(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache == "hit" {
		t.Error("rebind must invalidate the cached result")
	}
	if after.Rows == 0 {
		t.Error("rebound data should match the predicate")
	}
}

// A query whose estimated output can never fit the tenant budget fails with
// the typed sentinel, and the HTTP layer maps it to 429.
func TestBudgetRejection(t *testing.T) {
	s := New(Config{TenantBudgetCells: 20, QueueWait: 1})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)

	_, err := s.RunQuery(id, QuerySpec{Dataset: "d", Ops: []OpSpec{
		{Op: "select", Cols: []string{"k", "v", "x"}},
	}})
	if !errors.Is(err, dferrors.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if got := statusFor(err); got != http.StatusTooManyRequests {
		t.Errorf("statusFor = %d, want 429", got)
	}
	if s.Tenant("alice").Stats().Rejected == 0 {
		t.Error("rejection should be counted")
	}
}

// With the cache off, queries run as session statements; admission control
// spills cold session blocks to keep the tenant under budget rather than
// accumulating every materialized result.
func TestBudgetSpillsColdBlocks(t *testing.T) {
	s := New(Config{CacheOff: true, TenantBudgetCells: 400})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)

	for i := 10; i < 50; i += 10 {
		spec := QuerySpec{Dataset: "d", Ops: []OpSpec{
			{Op: "where", Col: "v", Cmp: ">", Value: json.RawMessage(fmt.Sprint(i))},
		}}
		if _, err := s.RunQuery(id, spec); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if usage := s.Tenant("alice").Usage(); usage > 400 {
			t.Fatalf("tenant usage %d exceeds budget after query %d", usage, i)
		}
	}
	if s.Tenant("alice").Stats().SpillRounds == 0 {
		t.Error("staying under budget should have required spilling")
	}
}

// Many sessions across many tenants issuing fingerprint-equal queries
// concurrently: exercised under -race in CI.
func TestConcurrentMultiTenant(t *testing.T) {
	s := New(Config{TenantBudgetCells: 50_000})
	defer s.Shutdown()
	s.Start()
	s.RegisterDataset("d", testFrame(t, 0))

	const tenants, perTenant = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		for si := 0; si < perTenant; si++ {
			wg.Add(1)
			go func(tenant string, salt int) {
				defer wg.Done()
				id := s.OpenSession(tenant, df.ModeOpportunistic)
				defer s.CloseSession(id)
				for q := 0; q < 5; q++ {
					spec := aggSpec("d")
					if salt%2 == 0 {
						spec.Ops[0].Value = json.RawMessage(fmt.Sprint(10 + q))
					}
					if _, err := s.RunQuery(id, spec); err != nil {
						errs <- err
						return
					}
				}
			}(tenant, si)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Cache.Hits == 0 {
		t.Error("concurrent identical queries should produce cache hits")
	}
}

// Closed sessions answer with the sentinel and HTTP 410.
func TestClosedSession(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	s.RegisterDataset("d", testFrame(t, 0))
	id := s.OpenSession("alice", df.ModeEager)
	if err := s.CloseSession(id); err != nil {
		t.Fatal(err)
	}
	_, err := s.RunQuery(id, aggSpec("d"))
	if !errors.Is(err, dferrors.ErrSessionClosed) {
		t.Fatalf("want ErrSessionClosed, got %v", err)
	}
	if statusFor(err) != http.StatusGone {
		t.Errorf("closed session should map to 410")
	}
}

// Full HTTP round trip: register a dataset, open a session, run the same
// query twice, check the cache indicator and the stats endpoint.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body any, out any) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp
	}

	post("/datasets", map[string]any{"name": "taxi", "taxi_rows": 500}, nil)
	var sess struct {
		ID string `json:"id"`
	}
	post("/sessions", map[string]string{"tenant": "alice", "mode": "eager"}, &sess)
	if sess.ID == "" {
		t.Fatal("no session id")
	}

	spec := QuerySpec{Dataset: "taxi", Ops: []OpSpec{
		{Op: "where", Col: "passenger_count", Cmp: ">=", Value: json.RawMessage("2")},
		{Op: "groupby", By: []string{"payment_type"}, Aggs: []AggSpec{{Col: "total_amount", Agg: "mean"}}},
	}}
	var r1, r2 QueryResult
	post("/sessions/"+sess.ID+"/query", spec, &r1)
	post("/sessions/"+sess.ID+"/query", spec, &r2)
	if r1.Cache != "miss" || r2.Cache != "hit" {
		t.Errorf("cache sequence = %q, %q; want miss, hit", r1.Cache, r2.Cache)
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache.Hits == 0 || stats.Queries != 2 {
		t.Errorf("stats = %+v", stats)
	}

	// Unknown column surfaces as 400 through the sentinel mapping.
	bad := QuerySpec{Dataset: "taxi", Ops: []OpSpec{{Op: "select", Cols: []string{"nope"}}}}
	resp = post("/sessions/"+sess.ID+"/query", bad, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown column status = %d, want 400", resp.StatusCode)
	}
}

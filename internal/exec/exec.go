// Package exec is the execution layer of the MODIN architecture (Section
// 3.3): a task-parallel asynchronous engine in the style of Ray and Dask.
// Callers define tasks (functions plus the data they run on) and receive
// futures; tasks may declare dependencies on other futures, forming a task
// DAG that the worker pool drains.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Future is the asynchronously-computed result of a task. It is the handle
// the opportunistic evaluation layer hands back to users (Section 6.1.1).
type Future struct {
	done chan struct{}
	val  any
	err  error
}

// newResolved returns an already-completed future.
func newResolved(val any, err error) *Future {
	f := &Future{done: make(chan struct{}), val: val, err: err}
	close(f.done)
	return f
}

// Wait blocks until the task completes and returns its result.
func (f *Future) Wait() (any, error) {
	<-f.done
	return f.val, f.err
}

// Ready reports whether the task has completed without blocking.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Done exposes the completion channel for select-based waiting.
func (f *Future) Done() <-chan struct{} { return f.done }

// Pool is a fixed-size worker pool executing submitted tasks.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int
	closed  atomic.Bool

	// Scheduled and Completed count tasks for instrumentation.
	scheduled atomic.Int64
	completed atomic.Int64
}

// NewPool starts a pool with the given number of workers; workers <= 0
// defaults to runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{
		tasks:   make(chan func(), workers*4),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Default is a process-wide pool sized to the machine, mirroring how a Ray
// or Dask cluster is shared by every dataframe in a session.
var Default = NewPool(0)

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Stats returns scheduled and completed task counts.
func (p *Pool) Stats() (scheduled, completed int64) {
	return p.scheduled.Load(), p.completed.Load()
}

// Close stops the workers after draining queued tasks. Submitting to a
// closed pool runs the task synchronously.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
		p.wg.Wait()
	}
}

// Submit schedules fn after all deps complete and returns its future. If
// any dependency failed, fn is skipped and the future carries the first
// dependency error.
func (p *Pool) Submit(fn func() (any, error), deps ...*Future) *Future {
	p.scheduled.Add(1)
	f := &Future{done: make(chan struct{})}
	run := func() {
		defer close(f.done)
		defer p.completed.Add(1)
		for _, d := range deps {
			if _, err := d.Wait(); err != nil {
				f.err = fmt.Errorf("exec: dependency failed: %w", err)
				return
			}
		}
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("exec: task panic: %v", r)
			}
		}()
		f.val, f.err = fn()
	}
	if p.closed.Load() {
		run()
		return f
	}
	select {
	case p.tasks <- run:
	default:
		// Queue full: run inline rather than deadlock; this also bounds
		// memory under bursty submission.
		run()
	}
	return f
}

// ForEach runs fn(i) for i in [0, n) across the pool and waits for all,
// returning the first error.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(0)
	}
	futures := make([]*Future, n)
	for i := 0; i < n; i++ {
		i := i
		futures[i] = p.Submit(func() (any, error) { return nil, fn(i) })
	}
	var first error
	for _, f := range futures {
		if _, err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MapParallel applies fn to every index and collects the results in order.
func MapParallel[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Resolved wraps a value in a completed future.
func Resolved(val any) *Future { return newResolved(val, nil) }

// Failed wraps an error in a completed future.
func Failed(err error) *Future { return newResolved(nil, err) }

// Package exec is the execution layer of the MODIN architecture (Section
// 3.3): a task-parallel asynchronous engine in the style of Ray and Dask.
// Callers define tasks (functions plus the data they run on) and receive
// futures; tasks may declare dependencies on other futures, forming a task
// DAG that the worker pool drains.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Future is the asynchronously-computed result of a task. It is the handle
// the opportunistic evaluation layer hands back to users (Section 6.1.1).
type Future struct {
	done chan struct{}
	mu   sync.Mutex // guards val after done closes (Forget may drop it)
	val  any
	err  error
}

// newResolved returns an already-completed future.
func newResolved(val any, err error) *Future {
	f := &Future{done: make(chan struct{}), val: val, err: err}
	close(f.done)
	return f
}

// Wait blocks until the task completes and returns its result.
func (f *Future) Wait() (any, error) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.err
}

// Forget drops a resolved future's value so the scheduler can release
// single-consumer partition blocks once every downstream task has read them
// (streaming scans would otherwise retain every parsed band for the life of
// the query). Unresolved futures are left alone; the error, if any, is kept
// so late waiters still observe failure. After Forget, Wait returns a nil
// value — callers releasing a block promise no one reads it again.
func (f *Future) Forget() {
	select {
	case <-f.done:
	default:
		return
	}
	f.mu.Lock()
	f.val = nil
	f.mu.Unlock()
}

// Ready reports whether the task has completed without blocking.
func (f *Future) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Done exposes the completion channel for select-based waiting.
func (f *Future) Done() <-chan struct{} { return f.done }

// Pool is a fixed-size worker pool executing submitted tasks.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int

	// closeMu makes task submission and Close mutually exclusive: watcher
	// goroutines (SubmitIn) enqueue dependency-gated tasks at arbitrary
	// times, and a send racing the channel close would panic.
	closeMu sync.RWMutex
	closed  bool // guarded by closeMu

	// Scheduled and Completed count tasks for instrumentation.
	scheduled atomic.Int64
	completed atomic.Int64
}

// NewPool starts a pool with the given number of workers; workers <= 0
// defaults to runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{
		tasks:   make(chan func(), workers*4),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Default is a process-wide pool sized to the machine, mirroring how a Ray
// or Dask cluster is shared by every dataframe in a session.
var Default = NewPool(0)

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Stats returns scheduled and completed task counts.
func (p *Pool) Stats() (scheduled, completed int64) {
	return p.scheduled.Load(), p.completed.Load()
}

// Close stops the workers after draining queued tasks. Submitting to a
// closed pool runs the task synchronously.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.closeMu.Unlock()
	p.wg.Wait()
}

// Group is a cancellation scope for a DAG of related tasks: the first task
// that fails cancels the group, and every not-yet-started task submitted in
// the group is skipped with the group's error instead of running. Physical
// plan runs use one group per query so a failed partition task stops the
// rest of the query's work promptly.
type Group struct {
	mu   sync.Mutex
	err  error
	done chan struct{}

	// tasks counts submitted-but-unfinished tasks so Quiesce can wait for
	// the group's in-flight work to drain (a cancelled group still has tasks
	// running or parked on watcher goroutines; releasing resources they
	// touch — spill stores, shared buffers — must wait for them). A plain
	// WaitGroup would race Add against Wait across reuse, so the counter
	// shares the group mutex with a condition variable.
	tasks int
	idle  *sync.Cond
}

// NewGroup returns an empty, uncancelled group.
func NewGroup() *Group {
	g := &Group{done: make(chan struct{})}
	g.idle = sync.NewCond(&g.mu)
	return g
}

// addTask records one submitted task.
func (g *Group) addTask() {
	g.mu.Lock()
	g.tasks++
	g.mu.Unlock()
}

// taskDone records one finished (or skipped) task.
func (g *Group) taskDone() {
	g.mu.Lock()
	g.tasks--
	if g.tasks == 0 {
		g.idle.Broadcast()
	}
	g.mu.Unlock()
}

// Quiesce blocks until every task submitted in the group has finished
// running or been skipped. Cancellation does not imply quiescence: tasks
// already on workers keep running after Cancel, and parked tasks still pass
// through their (skipping) run path. Quiesce is the fence resource teardown
// needs before reclaiming anything those stragglers might touch.
func (g *Group) Quiesce() {
	g.mu.Lock()
	for g.tasks != 0 {
		g.idle.Wait()
	}
	g.mu.Unlock()
}

// Cancel cancels the group with err (the first cancellation wins). A nil
// err cancels with a generic error.
func (g *Group) Cancel(err error) {
	if err == nil {
		err = fmt.Errorf("exec: group cancelled")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = err
		close(g.done)
	}
}

// Err returns the cancellation cause, or nil while the group is live.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Done exposes the cancellation channel for select-based waiting.
func (g *Group) Done() <-chan struct{} { return g.done }

// Submit schedules fn after all deps complete and returns its future. If
// any dependency failed, fn is skipped and the future carries the first
// dependency error.
func (p *Pool) Submit(fn func() (any, error), deps ...*Future) *Future {
	return p.SubmitIn(nil, fn, deps...)
}

// SubmitIn schedules fn in a cancellation group (nil behaves like Submit).
// A task whose group was cancelled before it starts is skipped, and a task
// that fails cancels its group, skipping the group's remaining tasks.
//
// A task with unsettled dependencies does NOT occupy a worker while it
// waits: it is parked on a watcher goroutine and enters the run queue only
// once every dependency has resolved (or its group cancelled). Workers
// therefore only ever execute ready tasks — without this, a pool whose
// workers all blocked on futures of still-queued tasks would deadlock
// (one-core machines hit this immediately with streaming scans: summarize
// tasks waiting on scan bands starve the band tasks they wait for).
func (p *Pool) SubmitIn(g *Group, fn func() (any, error), deps ...*Future) *Future {
	p.scheduled.Add(1)
	f := &Future{done: make(chan struct{})}
	if g != nil {
		g.addTask()
	}
	run := func() {
		defer close(f.done)
		defer p.completed.Add(1)
		if g != nil {
			defer g.taskDone()
		}
		if g != nil {
			if err := g.Err(); err != nil {
				f.err = fmt.Errorf("exec: group cancelled: %w", err)
				return
			}
		}
		for _, d := range deps {
			if g != nil {
				// Watch the group while waiting: a failure anywhere in the
				// DAG — not just in a direct dependency — skips this task
				// mid-wait. Shuffle merge tasks depend on many producers;
				// without this, a merge whose own deps succeed would still
				// run after a sibling bucket's producer failed.
				select {
				case <-g.Done():
					f.err = fmt.Errorf("exec: group cancelled: %w", g.Err())
					return
				case <-d.Done():
				}
			}
			if _, err := d.Wait(); err != nil {
				f.err = fmt.Errorf("exec: dependency failed: %w", err)
				if g != nil {
					g.Cancel(err)
				}
				return
			}
		}
		if g != nil {
			// Re-check after the waits: the group may have cancelled while
			// every direct dependency was completing successfully.
			if err := g.Err(); err != nil {
				f.err = fmt.Errorf("exec: group cancelled: %w", err)
				return
			}
		}
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("exec: task panic: %v", r)
			}
			if g != nil && f.err != nil {
				g.Cancel(f.err)
			}
		}()
		f.val, f.err = fn()
	}
	enqueue := func() {
		if !p.trySubmit(run) {
			// Closed pool or full queue: run inline rather than deadlock;
			// inline execution also bounds memory under bursty submission.
			run()
		}
	}
	for _, d := range deps {
		if !d.Ready() {
			// Park on a watcher until the DAG settles; run's own dependency
			// pass re-checks errors and group state once on a worker.
			go func() {
				for _, d := range deps {
					if g != nil {
						select {
						case <-g.Done():
							// Cancelled: enqueue now; run sees the group
							// error and skips without touching the
							// never-resolving dependencies.
							enqueue()
							return
						case <-d.Done():
						}
					} else {
						<-d.Done()
					}
				}
				enqueue()
			}()
			return f
		}
	}
	enqueue()
	return f
}

// ForEach runs fn(i) for i in [0, n) across the pool and waits for all,
// returning the first error. The calling goroutine participates in the
// work: tasks running on pool workers (exchange stages of the physical
// layer) may call ForEach without risking deadlock when every worker is
// occupied — the caller drains the iteration space itself if no worker is
// free.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	record := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	wg.Add(n)
	runOne := func(i int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				record(fmt.Errorf("exec: task panic: %v", r))
			}
		}()
		if err := fn(i); err != nil {
			record(err)
		}
	}
	runner := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runOne(i)
		}
	}
	helpers := p.workers
	if helpers > n-1 {
		helpers = n - 1
	}
	for j := 0; j < helpers; j++ {
		// Best-effort: a full queue skips the helper rather than running
		// it inline (which would drain the whole iteration space serially
		// before the caller's own runner started).
		if !p.trySubmit(func() { runner() }) {
			break
		}
	}
	runner() // the caller always participates: progress needs no free worker
	wg.Wait()
	return first
}

// trySubmit enqueues fn without blocking, reporting whether it was queued.
// Closed pools and full queues decline. The read lock excludes Close, so
// the send can never hit a closed channel.
func (p *Pool) trySubmit(fn func()) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// MapParallel applies fn to every index and collects the results in order.
func MapParallel[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NewPromise returns an unresolved future and the function that completes
// it (first completion wins). It bridges externally-produced results into
// the future graph without occupying a pool worker.
func NewPromise() (*Future, func(val any, err error)) {
	f := &Future{done: make(chan struct{})}
	var once sync.Once
	return f, func(val any, err error) {
		once.Do(func() {
			f.val, f.err = val, err
			close(f.done)
		})
	}
}

// Resolved wraps a value in a completed future.
func Resolved(val any) *Future { return newResolved(val, nil) }

// Failed wraps an error in a completed future.
func Failed(err error) *Future { return newResolved(nil, err) }

package exec

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := p.Submit(func() (any, error) { return 42, nil })
	v, err := f.Wait()
	if err != nil || v.(int) != 42 {
		t.Fatalf("wait = %v, %v", v, err)
	}
	if !f.Ready() {
		t.Error("completed future should be ready")
	}
}

func TestSubmitError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sentinel := errors.New("boom")
	f := p.Submit(func() (any, error) { return nil, sentinel })
	if _, err := f.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	f := p.Submit(func() (any, error) { panic("kaboom") })
	if _, err := f.Wait(); err == nil {
		t.Error("panic should surface as error")
	}
}

func TestDependencies(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var order atomic.Int32
	a := p.Submit(func() (any, error) {
		time.Sleep(10 * time.Millisecond)
		order.CompareAndSwap(0, 1)
		return "a", nil
	})
	b := p.Submit(func() (any, error) {
		if order.Load() != 1 {
			return nil, errors.New("dependency ran after dependent")
		}
		return "b", nil
	}, a)
	if _, err := b.Wait(); err != nil {
		t.Error(err)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	bad := p.Submit(func() (any, error) { return nil, errors.New("upstream") })
	ran := false
	dep := p.Submit(func() (any, error) { ran = true; return nil, nil }, bad)
	if _, err := dep.Wait(); err == nil {
		t.Error("dependent should fail")
	}
	if ran {
		t.Error("dependent body should be skipped")
	}
}

func TestForEachAndMapParallel(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	if err := p.ForEach(100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d", sum.Load())
	}

	out, err := MapParallel(p, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != 49 {
		t.Error("MapParallel order wrong")
	}

	wantErr := errors.New("third")
	if err := p.ForEach(5, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("ForEach error = %v", err)
	}
	if _, err := MapParallel(p, 3, func(i int) (int, error) { return 0, wantErr }); err == nil {
		t.Error("MapParallel should propagate errors")
	}
	if err := p.ForEach(0, func(int) error { return nil }); err != nil {
		t.Error("empty ForEach should be nil")
	}
}

func TestClosedPoolRunsInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	f := p.Submit(func() (any, error) { return "inline", nil })
	v, err := f.Wait()
	if err != nil || v.(string) != "inline" {
		t.Error("closed pool should run inline")
	}
	p.Close() // double close is safe
}

func TestResolvedFailed(t *testing.T) {
	if v, err := Resolved(5).Wait(); err != nil || v.(int) != 5 {
		t.Error("Resolved wrong")
	}
	if _, err := Failed(errors.New("x")).Wait(); err == nil {
		t.Error("Failed wrong")
	}
}

func TestStatsAndWorkers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Workers() != 3 {
		t.Error("workers wrong")
	}
	p.Submit(func() (any, error) { return nil, nil }).Wait()
	sched, done := p.Stats()
	if sched != 1 || done != 1 {
		t.Errorf("stats = %d/%d", sched, done)
	}
}

func TestDefaultPoolSized(t *testing.T) {
	if Default.Workers() < 1 {
		t.Error("default pool should have workers")
	}
}

func TestGroupCancelOnFirstError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := NewGroup()
	sentinel := errors.New("first failure")
	gate := make(chan struct{})
	var skipped atomic.Int64
	bad := p.SubmitIn(g, func() (any, error) { <-gate; return nil, sentinel })
	// Queued behind bad on a 1-worker pool: by the time they start, the
	// group is cancelled and their bodies must be skipped.
	var later []*Future
	for i := 0; i < 3; i++ {
		later = append(later, p.SubmitIn(g, func() (any, error) {
			skipped.Add(1)
			return nil, nil
		}))
	}
	close(gate)
	if _, err := bad.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("bad err = %v", err)
	}
	for _, f := range later {
		if _, err := f.Wait(); err == nil {
			t.Error("task in cancelled group should fail")
		}
	}
	if skipped.Load() != 0 {
		t.Errorf("%d task bodies ran after cancellation", skipped.Load())
	}
	if !errors.Is(g.Err(), sentinel) {
		t.Errorf("group err = %v", g.Err())
	}
}

func TestGroupExplicitCancel(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGroup()
	g.Cancel(nil)
	if g.Err() == nil {
		t.Fatal("nil cancel should still set an error")
	}
	select {
	case <-g.Done():
	default:
		t.Error("Done should be closed after cancel")
	}
	if _, err := p.SubmitIn(g, func() (any, error) { return 1, nil }).Wait(); err == nil {
		t.Error("submit into cancelled group should fail")
	}
	g.Cancel(errors.New("second")) // first cancellation wins
	if g.Err().Error() == "second" {
		t.Error("second cancel should not override")
	}
}

// TestGroupCancellationSkipsTaskWaitingOnDeps is the regression test for
// shuffle-merge skipping: a task already mid-wait on its (eventually
// successful) dependencies must be skipped as soon as the group cancels.
// Before the group-aware dependency wait, only direct dependents of the
// failed task were skipped — a merge whose own bucket producers all
// succeeded would still run after a sibling bucket's producer failed.
func TestGroupCancellationSkipsTaskWaitingOnDeps(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGroup()
	dep, resolve := NewPromise()
	var ran atomic.Bool
	merge := p.SubmitIn(g, func() (any, error) {
		ran.Store(true)
		return nil, nil
	}, dep)
	// Let the task start and block on its unresolved dependency, then
	// cancel the group from elsewhere in the DAG.
	time.Sleep(20 * time.Millisecond)
	sentinel := errors.New("sibling bucket producer failed")
	g.Cancel(sentinel)
	// The task must resolve (skipped) without its dependency ever
	// completing.
	if _, err := merge.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the group cancellation cause", err)
	}
	if ran.Load() {
		t.Error("task body ran after group cancellation")
	}
	resolve("late", nil) // the dependency succeeding later must not resurrect it
	time.Sleep(10 * time.Millisecond)
	if ran.Load() {
		t.Error("task body ran after its dependency resolved")
	}
}

// TestGroupCancellationAfterDependenciesSucceed covers the re-check between
// the dependency waits and the task body: every direct dependency succeeds,
// but the group is already cancelled by the time the waits finish.
func TestGroupCancellationAfterDependenciesSucceed(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := NewGroup()
	dep, resolve := NewPromise()
	var ran atomic.Bool
	f := p.SubmitIn(g, func() (any, error) {
		ran.Store(true)
		return nil, nil
	}, dep)
	time.Sleep(20 * time.Millisecond) // task is now waiting on dep
	g.Cancel(errors.New("unrelated failure"))
	resolve(1, nil) // dependency succeeds after the cancellation
	if _, err := f.Wait(); err == nil {
		t.Fatal("task in cancelled group should fail even with successful deps")
	}
	if ran.Load() {
		t.Error("task body ran in a cancelled group")
	}
}

func TestNilGroupBehavesLikeSubmit(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if v, err := p.SubmitIn(nil, func() (any, error) { return 7, nil }).Wait(); err != nil || v.(int) != 7 {
		t.Error("nil group submit wrong")
	}
}

func TestNewPromise(t *testing.T) {
	f, resolve := NewPromise()
	if f.Ready() {
		t.Fatal("fresh promise should be unresolved")
	}
	resolve(20, nil)
	resolve(99, errors.New("late")) // first completion wins
	if v, err := f.Wait(); err != nil || v.(int) != 20 {
		t.Errorf("promise = %v, %v", v, err)
	}
}

func TestForEachFromInsideWorkerDoesNotDeadlock(t *testing.T) {
	// Every worker runs a task that itself fans out via ForEach: the old
	// submit-and-wait ForEach deadlocked here (all workers blocked, inner
	// tasks never picked). The caller-participates ForEach must finish.
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	outer := make([]*Future, 2)
	for i := range outer {
		outer[i] = p.Submit(func() (any, error) {
			return nil, p.ForEach(8, func(int) error {
				time.Sleep(time.Millisecond)
				total.Add(1)
				return nil
			})
		})
	}
	done := make(chan struct{})
	go func() {
		for _, f := range outer {
			f.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested ForEach deadlocked")
	}
	if total.Load() != 16 {
		t.Errorf("iterations = %d", total.Load())
	}
}

func TestForEachPanicSurfacesAsError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if err := p.ForEach(4, func(i int) error {
		if i == 2 {
			panic("iteration kaboom")
		}
		return nil
	}); err == nil {
		t.Error("iteration panic should surface as error")
	}
}

package exec

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := p.Submit(func() (any, error) { return 42, nil })
	v, err := f.Wait()
	if err != nil || v.(int) != 42 {
		t.Fatalf("wait = %v, %v", v, err)
	}
	if !f.Ready() {
		t.Error("completed future should be ready")
	}
}

func TestSubmitError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sentinel := errors.New("boom")
	f := p.Submit(func() (any, error) { return nil, sentinel })
	if _, err := f.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	f := p.Submit(func() (any, error) { panic("kaboom") })
	if _, err := f.Wait(); err == nil {
		t.Error("panic should surface as error")
	}
}

func TestDependencies(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var order atomic.Int32
	a := p.Submit(func() (any, error) {
		time.Sleep(10 * time.Millisecond)
		order.CompareAndSwap(0, 1)
		return "a", nil
	})
	b := p.Submit(func() (any, error) {
		if order.Load() != 1 {
			return nil, errors.New("dependency ran after dependent")
		}
		return "b", nil
	}, a)
	if _, err := b.Wait(); err != nil {
		t.Error(err)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	bad := p.Submit(func() (any, error) { return nil, errors.New("upstream") })
	ran := false
	dep := p.Submit(func() (any, error) { ran = true; return nil, nil }, bad)
	if _, err := dep.Wait(); err == nil {
		t.Error("dependent should fail")
	}
	if ran {
		t.Error("dependent body should be skipped")
	}
}

func TestForEachAndMapParallel(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	if err := p.ForEach(100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d", sum.Load())
	}

	out, err := MapParallel(p, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[7] != 49 {
		t.Error("MapParallel order wrong")
	}

	wantErr := errors.New("third")
	if err := p.ForEach(5, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("ForEach error = %v", err)
	}
	if _, err := MapParallel(p, 3, func(i int) (int, error) { return 0, wantErr }); err == nil {
		t.Error("MapParallel should propagate errors")
	}
	if err := p.ForEach(0, func(int) error { return nil }); err != nil {
		t.Error("empty ForEach should be nil")
	}
}

func TestClosedPoolRunsInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	f := p.Submit(func() (any, error) { return "inline", nil })
	v, err := f.Wait()
	if err != nil || v.(string) != "inline" {
		t.Error("closed pool should run inline")
	}
	p.Close() // double close is safe
}

func TestResolvedFailed(t *testing.T) {
	if v, err := Resolved(5).Wait(); err != nil || v.(int) != 5 {
		t.Error("Resolved wrong")
	}
	if _, err := Failed(errors.New("x")).Wait(); err == nil {
		t.Error("Failed wrong")
	}
}

func TestStatsAndWorkers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Workers() != 3 {
		t.Error("workers wrong")
	}
	p.Submit(func() (any, error) { return nil, nil }).Wait()
	sched, done := p.Stats()
	if sched != 1 || done != 1 {
		t.Errorf("stats = %d/%d", sched, done)
	}
}

func TestDefaultPoolSized(t *testing.T) {
	if Default.Workers() < 1 {
		t.Error("default pool should have workers")
	}
}

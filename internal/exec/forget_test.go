package exec

import (
	"errors"
	"sync"
	"testing"
)

func TestForgetDropsValueKeepsError(t *testing.T) {
	ok := Resolved(42)
	ok.Forget()
	if v, err := ok.Wait(); v != nil || err != nil {
		t.Errorf("after Forget: val=%v err=%v, want nil/nil", v, err)
	}

	boom := errors.New("boom")
	bad := Failed(boom)
	bad.Forget()
	if _, err := bad.Wait(); !errors.Is(err, boom) {
		t.Errorf("Forget dropped the error: %v", err)
	}
}

func TestForgetUnresolvedIsNoop(t *testing.T) {
	fut, resolve := NewPromise()
	fut.Forget() // must not touch a pending promise
	resolve("late", nil)
	if v, err := fut.Wait(); v != "late" || err != nil {
		t.Errorf("val=%v err=%v, want late/nil", v, err)
	}
}

func TestForgetConcurrentWithWait(t *testing.T) {
	// -race check: Forget racing Wait on a resolved future must be safe;
	// each Wait sees either the value or nil, never a torn read.
	fut, resolve := NewPromise()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := fut.Wait()
			if err != nil || (v != nil && v != "x") {
				t.Errorf("val=%v err=%v", v, err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			fut.Forget()
		}()
	}
	resolve("x", nil)
	wg.Wait()
}

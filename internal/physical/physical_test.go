package physical

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
)

func testDF(rows int) *core.DataFrame {
	records := make([][]any, rows)
	for i := range records {
		records[i] = []any{i, i % 5}
	}
	return core.MustFromRecords([]string{"id", "grp"}, records)
}

func selectEven() Kernel {
	return Kernel{
		Name: "selection",
		Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
			return algebra.SelectRows(b, func(r expr.Row) bool { return r.Value(0).Int()%2 == 0 }), nil
		},
	}
}

func isNull() Kernel {
	return Kernel{
		Name:        "map",
		Elementwise: true,
		Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
			return algebra.MapFrame(b, algebra.IsNullFn())
		},
	}
}

// TestFusedChainOneTaskPerBand is the acceptance test for fusion: a
// filter→map chain over a 4-band frame must schedule exactly 4 tasks — one
// per band running the whole kernel chain — not 8 (one per operator per
// band) and no barrier in between.
func TestFusedChainOneTaskPerBand(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(40)
	src := NewSource(partition.New(df, partition.Rows, 4))
	plan := NewFused(src, selectEven(), isNull())

	s := NewScheduler(pool)
	res, err := s.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.FusedTasks.Load(); got != 4 {
		t.Errorf("fused tasks = %d, want 4 (one per band)", got)
	}
	if got := s.Stats.FusedStages.Load(); got != 1 {
		t.Errorf("fused stages = %d, want 1", got)
	}
	if got := s.Stats.ExchangeTasks.Load(); got != 0 {
		t.Errorf("exchange tasks = %d, want 0", got)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := frame.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 20 {
		t.Errorf("rows = %d, want 20", out.NRows())
	}
}

// TestFusedStageIsPipelined proves there is no inter-operator barrier: the
// chain over band 0 completes even while band 1's input block is still
// being computed.
func TestFusedStageIsPipelined(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(20)
	halves := partition.New(df, partition.Rows, 2)

	gate := make(chan struct{})
	blk0 := exec.Resolved(halves.Block(0, 0))
	blk1 := pool.Submit(func() (any, error) {
		<-gate // band 1 stalls until released
		return halves.Block(1, 0), nil
	})
	src, err := partition.Deferred([][]*exec.Future{{blk0}, {blk1}})
	if err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(pool)
	res, err := s.Run(NewFused(NewSource(src), selectEven(), isNull()))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	// Band 0's fused chain must complete while band 1 is stalled.
	deadline := time.After(5 * time.Second)
	for !frame.BlockFuture(0, 0).Ready() {
		select {
		case <-deadline:
			t.Fatal("band 0 never completed while band 1 stalled: barrier between operators")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if frame.BlockFuture(1, 0).Ready() {
		t.Fatal("band 1 finished while its input was stalled")
	}
	close(gate)
	out, err := frame.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 10 {
		t.Errorf("rows = %d", out.NRows())
	}
}

func TestExchangeBarrierSeesAllInputs(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(30)
	src := NewSource(partition.New(df, partition.Rows, 3))
	fused := NewFused(src, selectEven())
	var sawRows atomic.Int64
	ex := NewExchange("count", func(in []*partition.Frame) (*partition.Frame, error) {
		sawRows.Store(int64(in[0].NRows()))
		return in[0], nil
	}, fused)

	s := NewScheduler(pool)
	res, err := s.Run(ex)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if sawRows.Load() != 15 {
		t.Errorf("exchange saw %d rows, want all 15", sawRows.Load())
	}
	if frame.NRows() != 15 {
		t.Errorf("frame rows = %d", frame.NRows())
	}
	if got := s.Stats.ExchangeStages.Load(); got != 1 {
		t.Errorf("exchange stages = %d", got)
	}
}

func TestFusedAfterExchangeRuns(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(24)
	src := NewSource(partition.New(df, partition.Rows, 3))
	identity := NewExchange("identity", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, src)
	plan := NewFused(identity, isNull())

	s := NewScheduler(pool)
	res, err := s.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Gather(res).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.(*core.DataFrame).NRows() != 24 {
		t.Error("post-exchange fused stage wrong")
	}
}

func TestKernelErrorCancelsRun(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(40)
	src := NewSource(partition.New(df, partition.Rows, 4))
	sentinel := errors.New("kernel boom")
	bad := Kernel{Name: "bad", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		if b.Value(0, 0).Int() == 0 {
			return nil, sentinel
		}
		return b, nil
	}}
	s := NewScheduler(pool)
	res, err := s.Run(NewFused(src, bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gather(res).Wait(); !errors.Is(err, sentinel) {
		t.Errorf("gather err = %v, want %v", err, sentinel)
	}
	if s.Group().Err() == nil {
		t.Error("failing kernel should cancel the run's group")
	}
}

func TestSharedStageScheduledOnce(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(20)
	var runs atomic.Int64
	counting := Kernel{Name: "count", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		runs.Add(1)
		return b, nil
	}}
	shared := NewFused(NewSource(partition.New(df, partition.Rows, 2)), counting)
	union := NewExchange("pair", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, shared, shared)

	s := NewScheduler(pool)
	res, err := s.Run(union)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gather(res).Wait(); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 { // one per band, NOT doubled for the second consumer
		t.Errorf("shared stage kernels ran %d times, want 2", runs.Load())
	}
}

func TestRenderAndStages(t *testing.T) {
	df := testDF(10)
	src := NewSource(partition.New(df, partition.Rows, 2))
	plan := NewExchange("groupby", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, NewFused(src, selectEven(), isNull()))
	text := Render(plan)
	for _, want := range []string{"EXCHANGE[groupby]", "FUSED[selection→map]", "SOURCE"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	fused, exchanges := Stages(plan)
	if fused != 1 || exchanges != 1 {
		t.Errorf("stages = %d fused, %d exchanges", fused, exchanges)
	}
	if (&Node{}).Describe() != "EMPTY" {
		t.Error("empty node describe")
	}
}

func TestEmptyStageErrors(t *testing.T) {
	pool := exec.NewPool(1)
	defer pool.Close()
	s := NewScheduler(pool)
	if _, err := s.Run(&Node{}); err == nil {
		t.Error("empty stage should error")
	}
}

func TestResultDeferredReporting(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	gate := make(chan struct{})
	slow := Kernel{Name: "slow", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		<-gate
		return b, nil
	}}
	s := NewScheduler(pool)
	res, err := s.Run(NewFused(NewSource(partition.New(testDF(8), partition.Rows, 2)), slow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deferred() {
		t.Error("result should be deferred while kernels are gated")
	}
	close(gate)
	if _, err := s.Gather(res).Wait(); err != nil {
		t.Fatal(err)
	}
	if res.Deferred() {
		t.Error("result should not be deferred after completion")
	}
}

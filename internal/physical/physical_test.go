package physical

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/partition"
)

func testDF(rows int) *core.DataFrame {
	records := make([][]any, rows)
	for i := range records {
		records[i] = []any{i, i % 5}
	}
	return core.MustFromRecords([]string{"id", "grp"}, records)
}

func selectEven() Kernel {
	return Kernel{
		Name: "selection",
		Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
			return algebra.SelectRows(b, func(r expr.Row) bool { return r.Value(0).Int()%2 == 0 }), nil
		},
	}
}

func isNull() Kernel {
	return Kernel{
		Name:        "map",
		Elementwise: true,
		Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
			return algebra.MapFrame(b, algebra.IsNullFn())
		},
	}
}

// TestFusedChainOneTaskPerBand is the acceptance test for fusion: a
// filter→map chain over a 4-band frame must schedule exactly 4 tasks — one
// per band running the whole kernel chain — not 8 (one per operator per
// band) and no barrier in between.
func TestFusedChainOneTaskPerBand(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(40)
	src := NewSource(partition.New(df, partition.Rows, 4))
	plan := NewFused(src, selectEven(), isNull())

	s := NewScheduler(pool)
	res, err := s.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.FusedTasks.Load(); got != 4 {
		t.Errorf("fused tasks = %d, want 4 (one per band)", got)
	}
	if got := s.Stats.FusedStages.Load(); got != 1 {
		t.Errorf("fused stages = %d, want 1", got)
	}
	if got := s.Stats.ExchangeTasks.Load(); got != 0 {
		t.Errorf("exchange tasks = %d, want 0", got)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := frame.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 20 {
		t.Errorf("rows = %d, want 20", out.NRows())
	}
}

// TestFusedStageIsPipelined proves there is no inter-operator barrier: the
// chain over band 0 completes even while band 1's input block is still
// being computed.
func TestFusedStageIsPipelined(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(20)
	halves := partition.New(df, partition.Rows, 2)

	gate := make(chan struct{})
	blk0 := exec.Resolved(halves.Block(0, 0))
	blk1 := pool.Submit(func() (any, error) {
		<-gate // band 1 stalls until released
		return halves.Block(1, 0), nil
	})
	src, err := partition.Deferred([][]*exec.Future{{blk0}, {blk1}})
	if err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(pool)
	res, err := s.Run(NewFused(NewSource(src), selectEven(), isNull()))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	// Band 0's fused chain must complete while band 1 is stalled.
	deadline := time.After(5 * time.Second)
	for !frame.BlockFuture(0, 0).Ready() {
		select {
		case <-deadline:
			t.Fatal("band 0 never completed while band 1 stalled: barrier between operators")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if frame.BlockFuture(1, 0).Ready() {
		t.Fatal("band 1 finished while its input was stalled")
	}
	close(gate)
	out, err := frame.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 10 {
		t.Errorf("rows = %d", out.NRows())
	}
}

func TestExchangeBarrierSeesAllInputs(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(30)
	src := NewSource(partition.New(df, partition.Rows, 3))
	fused := NewFused(src, selectEven())
	var sawRows atomic.Int64
	ex := NewExchange("count", func(in []*partition.Frame) (*partition.Frame, error) {
		sawRows.Store(int64(in[0].NRows()))
		return in[0], nil
	}, fused)

	s := NewScheduler(pool)
	res, err := s.Run(ex)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if sawRows.Load() != 15 {
		t.Errorf("exchange saw %d rows, want all 15", sawRows.Load())
	}
	if frame.NRows() != 15 {
		t.Errorf("frame rows = %d", frame.NRows())
	}
	if got := s.Stats.ExchangeStages.Load(); got != 1 {
		t.Errorf("exchange stages = %d", got)
	}
}

func TestFusedAfterExchangeRuns(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(24)
	src := NewSource(partition.New(df, partition.Rows, 3))
	identity := NewExchange("identity", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, src)
	plan := NewFused(identity, isNull())

	s := NewScheduler(pool)
	res, err := s.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Gather(res).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.(*core.DataFrame).NRows() != 24 {
		t.Error("post-exchange fused stage wrong")
	}
}

func TestKernelErrorCancelsRun(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(40)
	src := NewSource(partition.New(df, partition.Rows, 4))
	sentinel := errors.New("kernel boom")
	bad := Kernel{Name: "bad", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		if b.Value(0, 0).Int() == 0 {
			return nil, sentinel
		}
		return b, nil
	}}
	s := NewScheduler(pool)
	res, err := s.Run(NewFused(src, bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gather(res).Wait(); !errors.Is(err, sentinel) {
		t.Errorf("gather err = %v, want %v", err, sentinel)
	}
	if s.Group().Err() == nil {
		t.Error("failing kernel should cancel the run's group")
	}
}

func TestSharedStageScheduledOnce(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	df := testDF(20)
	var runs atomic.Int64
	counting := Kernel{Name: "count", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		runs.Add(1)
		return b, nil
	}}
	shared := NewFused(NewSource(partition.New(df, partition.Rows, 2)), counting)
	union := NewExchange("pair", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, shared, shared)

	s := NewScheduler(pool)
	res, err := s.Run(union)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gather(res).Wait(); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 { // one per band, NOT doubled for the second consumer
		t.Errorf("shared stage kernels ran %d times, want 2", runs.Load())
	}
}

func TestRenderAndStages(t *testing.T) {
	df := testDF(10)
	src := NewSource(partition.New(df, partition.Rows, 2))
	plan := NewExchange("groupby", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, NewFused(src, selectEven(), isNull()))
	text := Render(plan)
	for _, want := range []string{"EXCHANGE[groupby]", "FUSED[selection→map]", "SOURCE"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	fused, exchanges := Stages(plan)
	if fused != 1 || exchanges != 1 {
		t.Errorf("stages = %d fused, %d exchanges", fused, exchanges)
	}
	if (&Node{}).Describe() != "EMPTY" {
		t.Error("empty node describe")
	}
}

func TestEmptyStageErrors(t *testing.T) {
	pool := exec.NewPool(1)
	defer pool.Close()
	s := NewScheduler(pool)
	if _, err := s.Run(&Node{}); err == nil {
		t.Error("empty stage should error")
	}
}

// modShuffle routes rows to buckets by id % buckets and vstacks each
// bucket's routed pieces — a minimal but real row shuffle for the tests.
func modShuffle(buckets int, mergeHook func(bucket int)) *Shuffle {
	return &Shuffle{
		Name:    "mod",
		Buckets: buckets,
		Partition: func(_ int, df *core.DataFrame, _ any) ([]any, error) {
			assign := make([]int, df.NRows())
			for i := range assign {
				assign[i] = int(df.Value(i, 0).Int()) % buckets
			}
			views, err := partition.SplitRows(df, assign, buckets)
			if err != nil {
				return nil, err
			}
			pieces := make([]any, buckets)
			for b, v := range views {
				pieces[b] = v
			}
			return pieces, nil
		},
		Merge: func(bucket int, pieces []any, _ any) (*core.DataFrame, error) {
			if mergeHook != nil {
				mergeHook(bucket)
			}
			frames := make([]*core.DataFrame, len(pieces))
			for r, piece := range pieces {
				frames[r] = piece.(*core.DataFrame)
			}
			return algebra.VStackFrames(frames...)
		},
	}
}

// TestShuffleSchedulesPerBandTasks is the tentpole acceptance test: a
// shuffle over a 4-band input with 3 buckets schedules 4 partition tasks
// and 3 merge tasks — one per OUTPUT band — and its result is a
// shape-known deferred frame with one independent future per bucket.
func TestShuffleSchedulesPerBandTasks(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	src := NewSource(partition.New(testDF(60), partition.Rows, 4))
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(modShuffle(3, nil), src))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if frame.RowBands() != 3 || frame.ColBands() != 1 {
		t.Errorf("shuffle output grid = %dx%d, want 3x1 (one band per bucket)", frame.RowBands(), frame.ColBands())
	}
	if got := s.Stats.ShuffleStages.Load(); got != 1 {
		t.Errorf("shuffle stages = %d", got)
	}
	if got := s.Stats.ShufflePartitionTasks.Load(); got != 4 {
		t.Errorf("partition tasks = %d, want 4 (one per input band)", got)
	}
	if got := s.Stats.ShuffleMergeTasks.Load(); got != 3 {
		t.Errorf("merge tasks = %d, want 3 (one per output band)", got)
	}
	if err := frame.Resolve(); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		blk, err := frame.BlockErr(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if blk.NRows() != 20 {
			t.Errorf("bucket %d rows = %d, want 20", b, blk.NRows())
		}
		for i := 0; i < blk.NRows(); i++ {
			if int(blk.Value(i, 0).Int())%3 != b {
				t.Fatalf("row %d of bucket %d routed wrong: id=%v", i, b, blk.Value(i, 0))
			}
		}
	}
}

// TestShuffleDownstreamStartsBeforeShuffleCompletes proves the streaming
// property the gather exchange lacked: a fused kernel chained on bucket 0
// completes while bucket 1's merge is still gated — downstream work starts
// when ITS band lands, not when the whole shuffle does.
func TestShuffleDownstreamStartsBeforeShuffleCompletes(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	gate := make(chan struct{})
	sh := modShuffle(2, func(bucket int) {
		if bucket == 1 {
			<-gate
		}
	})
	src := NewSource(partition.New(testDF(40), partition.Rows, 4))
	s := NewScheduler(pool)
	res, err := s.Run(NewFused(NewShuffle(sh, src), isNull()))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame() // shape-known: one block per bucket
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !frame.BlockFuture(0, 0).Ready() {
		select {
		case <-deadline:
			t.Fatal("downstream band 0 never completed while bucket 1's merge was gated: the shuffle is still a barrier")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if frame.BlockFuture(1, 0).Ready() {
		t.Fatal("bucket 1 finished while its merge was gated")
	}
	close(gate)
	out, err := frame.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if out.NRows() != 40 {
		t.Errorf("rows = %d", out.NRows())
	}
}

// TestAnchoredShuffleSummarizePlan exercises the anchored (pass-through)
// form plus the summarize→plan pre-phase: band row counts become prefix
// offsets, and each merge sees the shared plan.
func TestAnchoredShuffleSummarizePlan(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	sh := &Shuffle{
		Name: "offsets",
		Summarize: func(_ int, df *core.DataFrame) (any, error) {
			return df.NRows(), nil
		},
		Plan: func(summaries []any, _ []*partition.Frame) (any, error) {
			offsets := make([]int, len(summaries)+1)
			for r, s := range summaries {
				offsets[r+1] = offsets[r] + s.(int)
			}
			return offsets, nil
		},
		Merge: func(band int, pieces []any, plan any) (*core.DataFrame, error) {
			df := pieces[0].(*core.DataFrame)
			if plan.([]int)[band] != band*10 {
				return nil, errors.New("plan offsets wrong")
			}
			return df, nil
		},
	}
	src := NewSource(partition.New(testDF(30), partition.Rows, 3))
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(sh, src))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if err := frame.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.ShuffleSummaryTasks.Load(); got != 3 {
		t.Errorf("summary tasks = %d, want 3", got)
	}
	if got := s.Stats.ShufflePlanTasks.Load(); got != 1 {
		t.Errorf("plan tasks = %d, want 1", got)
	}
	if got := s.Stats.ShuffleMergeTasks.Load(); got != 3 {
		t.Errorf("anchored merge tasks = %d, want 3 (one per input band)", got)
	}
	if frame.NRows() != 30 {
		t.Errorf("rows = %d", frame.NRows())
	}
}

// TestShuffleOverOpaqueInputFallsBack: a shuffle whose input shape is
// unknown at schedule time (downstream of a gather exchange) degrades to
// one coordinating task but still produces the right rows.
func TestShuffleOverOpaqueInputFallsBack(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	src := NewSource(partition.New(testDF(30), partition.Rows, 3))
	identity := NewExchange("identity", func(in []*partition.Frame) (*partition.Frame, error) {
		return in[0], nil
	}, src)
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(modShuffle(2, nil), identity))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.ShuffleFallbacks.Load(); got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	if got := s.Stats.ShuffleMergeTasks.Load(); got != 0 {
		t.Errorf("merge tasks = %d, want 0 on the fallback path", got)
	}
	if frame.NRows() != 30 {
		t.Errorf("rows = %d", frame.NRows())
	}
}

// TestShuffleSiblingFailureSkipsIndependentMerges: in an anchored shuffle
// no merge depends on another band's input, yet when band 1's input task
// fails, band 0's merge — still waiting on its gated input — must be
// skipped via the run's cancellation group rather than run (or hang).
func TestShuffleSiblingFailureSkipsIndependentMerges(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(20)
	halves := partition.New(df, partition.Rows, 2)
	gate := make(chan struct{})
	defer close(gate)
	sentinel := errors.New("band 1 input failed")
	blk0 := pool.Submit(func() (any, error) {
		<-gate // band 0's input never resolves during the test window
		return halves.Block(0, 0), nil
	})
	blk1 := pool.Submit(func() (any, error) { return nil, sentinel })
	src, err := partition.Deferred([][]*exec.Future{{blk0}, {blk1}})
	if err != nil {
		t.Fatal(err)
	}
	var merges atomic.Int64
	sh := &Shuffle{
		Name: "anchored",
		Merge: func(_ int, pieces []any, _ any) (*core.DataFrame, error) {
			merges.Add(1)
			return pieces[0].(*core.DataFrame), nil
		},
	}
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(sh, NewSource(src)))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	// Band 0's merge must resolve (skipped) even though its own input is
	// still gated: the group cancellation from band 1 reaches it mid-wait.
	if _, err := frame.BlockErr(0, 0); !errors.Is(err, sentinel) {
		t.Fatalf("band 0 merge err = %v, want the sibling failure", err)
	}
	if merges.Load() != 0 {
		t.Errorf("%d merge bodies ran after the sibling failure", merges.Load())
	}
	if s.Group().Err() == nil {
		t.Error("run group should be cancelled")
	}
}

// TestPrefixPlanShuffleStreamsBandByBand: a prefix-planned anchored
// shuffle (the join renumber pass) must complete band 0 while band 1's
// input is still gated — band b depends on earlier bands' summaries only,
// never on later ones.
func TestPrefixPlanShuffleStreamsBandByBand(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	df := testDF(20)
	halves := partition.New(df, partition.Rows, 2)
	gate := make(chan struct{})
	blk0 := exec.Resolved(halves.Block(0, 0))
	blk1 := pool.Submit(func() (any, error) {
		<-gate
		return halves.Block(1, 0), nil
	})
	src, err := partition.Deferred([][]*exec.Future{{blk0}, {blk1}})
	if err != nil {
		t.Fatal(err)
	}
	sh := &Shuffle{
		Name: "renumber",
		Summarize: func(_ int, df *core.DataFrame) (any, error) {
			return df.NRows(), nil
		},
		PrefixPlan: func(prefix []any) (any, error) {
			off := 0
			for _, s := range prefix {
				off += s.(int)
			}
			return off, nil
		},
		Merge: func(_ int, pieces []any, plan any) (*core.DataFrame, error) {
			if plan.(int) < 0 {
				return nil, errors.New("bad offset")
			}
			return pieces[0].(*core.DataFrame), nil
		},
	}
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(sh, NewSource(src)))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !frame.BlockFuture(0, 0).Ready() {
		select {
		case <-deadline:
			t.Fatal("band 0 never completed while band 1 was gated: prefix plan barriers on later bands")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if frame.BlockFuture(1, 0).Ready() {
		t.Fatal("band 1 finished while its input was gated")
	}
	close(gate)
	if err := frame.Resolve(); err != nil {
		t.Fatal(err)
	}
	if frame.NRows() != 20 {
		t.Errorf("rows = %d", frame.NRows())
	}
}

// TestShuffleValidation covers the construction error paths.
func TestShuffleValidation(t *testing.T) {
	pool := exec.NewPool(1)
	defer pool.Close()
	src := NewSource(partition.New(testDF(4), partition.Rows, 1))
	for name, sh := range map[string]*Shuffle{
		"no merge":           {Name: "bad"},
		"no buckets":         {Name: "bad", Partition: func(int, *core.DataFrame, any) ([]any, error) { return nil, nil }, Merge: func(int, []any, any) (*core.DataFrame, error) { return nil, nil }},
		"sides without plan": {Name: "bad", Merge: func(int, []any, any) (*core.DataFrame, error) { return nil, nil }},
	} {
		n := NewShuffle(sh, src)
		if name == "sides without plan" {
			n = NewShuffle(sh, src, src)
		}
		if _, err := NewScheduler(pool).Run(n); err == nil {
			t.Errorf("%s: schedule should fail", name)
		}
	}
	// A partition hook returning the wrong piece count fails the run.
	bad := &Shuffle{
		Name:    "bad-pieces",
		Buckets: 2,
		Partition: func(int, *core.DataFrame, any) ([]any, error) {
			return []any{nil}, nil
		},
		Merge: func(_ int, pieces []any, _ any) (*core.DataFrame, error) {
			return core.Empty(), nil
		},
	}
	s := NewScheduler(pool)
	res, err := s.Run(NewShuffle(bad, src))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := res.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := frame.BlockErr(0, 0); err == nil {
		t.Error("wrong piece count should fail the merge")
	}
}

func TestResultDeferredReporting(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	gate := make(chan struct{})
	slow := Kernel{Name: "slow", Fn: func(b *core.DataFrame) (*core.DataFrame, error) {
		<-gate
		return b, nil
	}}
	s := NewScheduler(pool)
	res, err := s.Run(NewFused(NewSource(partition.New(testDF(8), partition.Rows, 2)), slow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deferred() {
		t.Error("result should be deferred while kernels are gated")
	}
	close(gate)
	if _, err := s.Gather(res).Wait(); err != nil {
		t.Fatal(err)
	}
	if res.Deferred() {
		t.Error("result should not be deferred after completion")
	}
}

// Package physical is the physical-plan layer between the dataframe algebra
// and the task-parallel execution engine: logical plans are *compiled* into
// a DAG of physical stages, and the scheduler lowers those stages onto
// per-block tasks on an exec.Pool.
//
// Two stage shapes exist, mirroring the two communication regimes of the
// MODIN architecture (Petersohn et al., Section 3):
//
//   - Fused stages chain embarrassingly-parallel per-band kernels
//     (selection, projection, map, rename, ...) into ONE task per band: a
//     filter→map chain over an 8-band frame schedules 8 tasks total, with
//     no inter-operator barrier — band 3's map may run while band 7's
//     filter is still queued.
//
//   - Shuffle stages are the streaming repartition points (groupby, sort,
//     join): a two-phase partition→route→merge lowering where each OUTPUT
//     band is its own task — downstream fused chains start as soon as the
//     band that feeds them lands, not when the whole shuffle does.
//
//   - Exchange stages are the gather barriers kept for shape-opaque
//     operators (transpose, window, union, ...): they depend on every input
//     block and run as a single coordinating task that may itself fan out.
//
// The scheduler returns deferred partition.Frames (future blocks) without
// waiting, so callers — the opportunistic session regime in particular —
// hold unresolved handles and only block at gather/render time. A failing
// task cancels the plan's exec.Group, skipping the query's remaining tasks.
package physical

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/partition"
)

// Kernel is one embarrassingly-parallel operator lowered into a fused
// stage: a pure per-band (or per-block) dataframe transform.
type Kernel struct {
	// Name labels the kernel in plan renderings ("selection", "map", ...).
	Name string
	// Elementwise marks kernels that are partitioning-agnostic (pure
	// cell-level transforms): they may run per block under any scheme. A
	// non-elementwise kernel needs full-width row bands.
	Elementwise bool
	// Fn transforms one band (or block).
	Fn func(*core.DataFrame) (*core.DataFrame, error)
}

// Exchange is a repartition point: a stage that must observe all of its
// inputs' blocks before producing output. Run receives the materialized
// input frames in input order.
type Exchange struct {
	// Name labels the exchange in plan renderings ("groupby", "sort", ...).
	Name string
	// Run produces the stage's (materialized) output frame.
	Run func(inputs []*partition.Frame) (*partition.Frame, error)
}

// Shuffle is a two-phase repartition stage (partition → route → merge): a
// per-input-band partition task splits its band into per-bucket pieces, and
// a per-output-band merge task combines only the pieces routed to it. Each
// output band is therefore its own future — downstream fused stages chain
// on the band that feeds them and start as soon as *its* merge lands, not
// when the whole shuffle does. (Contrast Exchange, which funnels everything
// through one coordinating task: the fallback for shape-opaque operators.)
//
// An optional summarize→plan pre-phase computes shared routing state from
// small per-band summaries (sampled range bounds for SORT, the global
// first-appearance key order for GROUPBY, band row counts for relabeling);
// side inputs (e.g. a join's build side) are resolved whole and handed to
// Plan.
type Shuffle struct {
	// Name labels the stage in plan renderings ("groupby", "sort", ...).
	Name string
	// Buckets is the number of output bands when Partition is set. When
	// Partition is nil the shuffle is *anchored*: output band b is produced
	// from input band b alone (no rows cross bands) and Buckets is ignored.
	Buckets int
	// Summarize (optional) extracts a small per-band summary for Plan.
	Summarize func(band int, df *core.DataFrame) (any, error)
	// Plan (optional) folds the band summaries — indexed by input band —
	// and the materialized side inputs into routing state passed to every
	// Partition and Merge call. Required when the stage has side inputs.
	Plan func(summaries []any, sides []*partition.Frame) (any, error)
	// PrefixPlan (optional; anchored shuffles only, mutually exclusive
	// with Plan, requires Summarize) computes band b's routing state from
	// the summaries of bands [0, b) ONLY — prefix state such as label
	// offsets. Band b's merge then depends on earlier bands but never on
	// later ones, so prefix-planned passes keep streaming band by band
	// instead of barriering on the slowest band.
	PrefixPlan func(prefix []any) (any, error)
	// BandRouting (partitioned shuffles only, requires Summarize, Plan and
	// Partition; mutually exclusive with PrefixPlan) routes each band from
	// its OWN summary instead of the global plan: band r's Partition call
	// receives summaries[r] as its plan argument and depends only on band r
	// plus its summary — NOT on the all-band plan fold. The global Plan
	// still runs, but gates only the merges. This is the keyed analogue of
	// PrefixPlan: routing must then be a pure function of the band itself
	// (e.g. stable key hashes), with Plan repairing any global ordering at
	// merge time. It removes the one barrier that made streamed inputs
	// accumulate every routed-but-unplanned band.
	BandRouting bool
	// Partition splits input band `band` into exactly Buckets pieces;
	// piece b is routed to output band b. Nil marks an anchored shuffle.
	Partition func(band int, df *core.DataFrame, plan any) ([]any, error)
	// Merge combines the pieces routed to output band `bucket` (one per
	// input band, in band order) into that band's block. Anchored shuffles
	// receive the input band itself as the only piece.
	Merge func(bucket int, pieces []any, plan any) (*core.DataFrame, error)
	// ReleaseBands drops each input band's block future once that band has
	// been routed (partitioned, or merged for anchored shuffles), so a
	// streamed input's raw bands do not accumulate behind the shuffle. Only
	// honored when the input frame is transient (single-consumer, e.g. a
	// SingleUse stream stage); the Partition/Merge hooks must then copy or
	// spill whatever outlives the call instead of retaining views into the
	// band.
	ReleaseBands bool
}

// Node is one stage of a physical plan DAG. Exactly one of Source, Kernels,
// Shuffle and Exchange is set.
type Node struct {
	// Source is a leaf: an already-partitioned frame.
	Source *partition.Frame
	// Stream is a morsel-driven leaf: bands parse incrementally and flow
	// through the stage's own fused kernel chain as they arrive.
	Stream *StreamSource
	// Kernels is a fused chain applied per band over Inputs[0].
	Kernels []Kernel
	// Shuffle is a streaming repartition stage over Inputs[0], with
	// Inputs[1:] as whole-frame side inputs to its plan phase.
	Shuffle *Shuffle
	// Exchange is a barrier stage over Inputs.
	Exchange *Exchange
	// Inputs are the stage's input stages.
	Inputs []*Node
}

// NewSource wraps a partitioned frame as a leaf stage.
func NewSource(f *partition.Frame) *Node { return &Node{Source: f} }

// NewFused chains kernels over an input stage as one fused stage.
func NewFused(in *Node, kernels ...Kernel) *Node {
	return &Node{Kernels: kernels, Inputs: []*Node{in}}
}

// Fuse appends kernels to a fused stage, returning the extended stage. The
// receiver must be a fused stage.
func (n *Node) Fuse(kernels ...Kernel) *Node {
	return &Node{Kernels: append(append([]Kernel(nil), n.Kernels...), kernels...), Inputs: n.Inputs}
}

// NewExchange builds a barrier stage over the inputs.
func NewExchange(name string, run func([]*partition.Frame) (*partition.Frame, error), inputs ...*Node) *Node {
	return &Node{Exchange: &Exchange{Name: name, Run: run}, Inputs: inputs}
}

// NewShuffle builds a two-phase repartition stage over input, with optional
// whole-frame side inputs consumed by the shuffle's plan phase.
func NewShuffle(sh *Shuffle, input *Node, sides ...*Node) *Node {
	return &Node{Shuffle: sh, Inputs: append([]*Node{input}, sides...)}
}

// Describe renders the stage (without inputs).
func (n *Node) Describe() string {
	switch {
	case n.Source != nil:
		return fmt.Sprintf("SOURCE[%dx%d bands]", n.Source.RowBands(), n.Source.ColBands())
	case n.Stream != nil:
		names := make([]string, 0, len(n.Stream.Kernels)+1)
		names = append(names, n.Stream.Name)
		for _, k := range n.Stream.Kernels {
			names = append(names, k.Name)
		}
		return "STREAM[" + strings.Join(names, "→") + "]"
	case len(n.Kernels) > 0:
		names := make([]string, len(n.Kernels))
		for i, k := range n.Kernels {
			names[i] = k.Name
		}
		return "FUSED[" + strings.Join(names, "→") + "]"
	case n.Shuffle != nil:
		return "SHUFFLE[" + n.Shuffle.Name + "]"
	case n.Exchange != nil:
		return "EXCHANGE[" + n.Exchange.Name + "]"
	}
	return "EMPTY"
}

// Render pretty-prints the physical plan, one stage per line, inputs
// indented.
func Render(n *Node) string {
	var b strings.Builder
	render(&b, n, 0)
	return b.String()
}

func render(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, in := range n.Inputs {
		render(b, in, depth+1)
	}
}

// Stages counts fused and repartition (shuffle or exchange) stages in the
// plan (shared sub-stages count once).
func Stages(n *Node) (fused, exchanges int) {
	seen := make(map[*Node]bool)
	var walk func(*Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		switch {
		case n.Stream != nil && len(n.Stream.Kernels) > 0:
			fused++
		case len(n.Kernels) > 0:
			fused++
		case n.Shuffle != nil, n.Exchange != nil:
			exchanges++
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(n)
	return fused, exchanges
}

// Stats counts scheduler activity for instrumentation and tests.
type Stats struct {
	// FusedTasks counts per-band tasks scheduled for fused stages.
	FusedTasks atomic.Int64
	// ExchangeTasks counts barrier coordinating tasks scheduled.
	ExchangeTasks atomic.Int64
	// FusedStages and ExchangeStages count stages scheduled.
	FusedStages    atomic.Int64
	ExchangeStages atomic.Int64

	// ShuffleStages counts shuffle stages scheduled. The per-phase task
	// counters below record the streaming lowering: one summary/partition
	// task per input band, one plan task per planned shuffle, and one merge
	// task per OUTPUT band — each merge backs its own block future.
	ShuffleStages         atomic.Int64
	ShuffleSummaryTasks   atomic.Int64
	ShufflePlanTasks      atomic.Int64
	ShufflePartitionTasks atomic.Int64
	ShuffleMergeTasks     atomic.Int64
	// ShuffleFallbacks counts shuffles over shape-opaque inputs that
	// degraded to a single coordinating task (band-parallel internally but
	// one output future, like an exchange).
	ShuffleFallbacks atomic.Int64

	// StreamStages counts morsel-driven source stages scheduled;
	// StreamBands counts the bands their output grids were sized to.
	// StreamReleasedBands counts input bands a shuffle released after
	// routing them (Shuffle.ReleaseBands over a transient frame).
	StreamStages        atomic.Int64
	StreamBands         atomic.Int64
	StreamReleasedBands atomic.Int64
}

// Scheduler lowers physical plans onto a worker pool as a task DAG.
type Scheduler struct {
	pool  *exec.Pool
	group *exec.Group
	memo  map[*Node]*Result

	// Stats is exported for instrumentation (per-scheduler, i.e. per-run).
	Stats Stats

	// OnBandRelease, when set before Run, is called each time a shuffle
	// releases a consumed transient input band. Unlike every other counter
	// — incremented while Run wires the DAG — band releases happen inside
	// partition tasks that typically outlive Run, so a cumulative-stats
	// owner mirrors them through this hook instead of snapshotting
	// Stats.StreamReleasedBands at schedule time.
	OnBandRelease func()
}

// NewScheduler returns a scheduler for one plan run. Each run has its own
// cancellation group: the first failing task skips the rest of the run.
func NewScheduler(pool *exec.Pool) *Scheduler {
	return &Scheduler{
		pool:  pool,
		group: exec.NewGroup(),
		memo:  make(map[*Node]*Result),
	}
}

// Group exposes the run's cancellation scope.
func (s *Scheduler) Group() *exec.Group { return s.group }

// Result is a scheduled stage's output handle. Stages whose output grid
// shape is known at schedule time (sources, fused chains over them) carry a
// deferred frame with one future per block; exchange outputs, whose shape
// depends on the data, carry a single future resolving to the whole frame.
type Result struct {
	frame *partition.Frame // non-nil when the block grid shape is known
	fut   *exec.Future     // otherwise: resolves to *partition.Frame
}

// Deferred reports whether the result still has in-flight work.
func (r *Result) Deferred() bool {
	if r.frame != nil {
		return !r.frame.Ready()
	}
	return !r.fut.Ready()
}

// Frame waits for the stage's output frame. For shape-known results this
// returns immediately with the deferred frame (its blocks may still be
// computing); for exchange results it blocks until the exchange ran.
func (r *Result) Frame() (*partition.Frame, error) {
	if r.frame != nil {
		return r.frame, nil
	}
	v, err := r.fut.Wait()
	if err != nil {
		return nil, err
	}
	return v.(*partition.Frame), nil
}

// blockDeps lists the futures downstream tasks must wait on.
func (r *Result) blockDeps() []*exec.Future {
	if r.frame == nil {
		return []*exec.Future{r.fut}
	}
	var deps []*exec.Future
	for br := 0; br < r.frame.RowBands(); br++ {
		for bc := 0; bc < r.frame.ColBands(); bc++ {
			deps = append(deps, r.frame.BlockFuture(br, bc))
		}
	}
	return deps
}

// Run schedules the plan's task DAG and returns the root's handle without
// waiting for any task. Shared sub-stages are scheduled once.
func (s *Scheduler) Run(n *Node) (*Result, error) {
	if res, ok := s.memo[n]; ok {
		return res, nil
	}
	res, err := s.schedule(n)
	if err != nil {
		return nil, err
	}
	s.memo[n] = res
	return res, nil
}

func (s *Scheduler) schedule(n *Node) (*Result, error) {
	switch {
	case n.Source != nil:
		return &Result{frame: n.Source}, nil

	case n.Stream != nil:
		return s.scheduleStream(n)

	case len(n.Kernels) > 0:
		in, err := s.Run(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return s.scheduleFused(in, n.Kernels), nil

	case n.Shuffle != nil:
		in, err := s.Run(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		sides := make([]*Result, len(n.Inputs)-1)
		for i, child := range n.Inputs[1:] {
			r, err := s.Run(child)
			if err != nil {
				return nil, err
			}
			sides[i] = r
		}
		return s.scheduleShuffle(n.Shuffle, in, sides)

	case n.Exchange != nil:
		inputs := make([]*Result, len(n.Inputs))
		var deps []*exec.Future
		for i, child := range n.Inputs {
			r, err := s.Run(child)
			if err != nil {
				return nil, err
			}
			inputs[i] = r
			deps = append(deps, r.blockDeps()...)
		}
		s.Stats.ExchangeStages.Add(1)
		s.Stats.ExchangeTasks.Add(1)
		ex := n.Exchange
		fut := s.pool.SubmitIn(s.group, func() (any, error) {
			frames := make([]*partition.Frame, len(inputs))
			for i, r := range inputs {
				f, err := r.Frame()
				if err != nil {
					return nil, err
				}
				frames[i] = f
			}
			out, err := ex.Run(frames)
			if err != nil {
				return nil, fmt.Errorf("physical: exchange %s: %w", ex.Name, err)
			}
			return out, nil
		}, deps...)
		return &Result{fut: fut}, nil
	}
	return nil, fmt.Errorf("physical: empty stage")
}

// scheduleFused chains the kernels over the input. When the input's grid
// shape is known, each band gets exactly one task running the whole kernel
// chain, chained on the band's block future — the no-barrier fast path.
// When the input is an exchange (shape unknown until it runs), one
// continuation task applies the chain band-parallel after the exchange.
func (s *Scheduler) scheduleFused(in *Result, kernels []Kernel) *Result {
	s.Stats.FusedStages.Add(1)
	chain := func(df *core.DataFrame) (*core.DataFrame, error) {
		var err error
		for _, k := range kernels {
			df, err = k.Fn(df)
			if err != nil {
				return nil, fmt.Errorf("physical: kernel %s: %w", k.Name, err)
			}
		}
		// Stage exit is the one coalescing point for view-producing kernels
		// (zero-copy selection chains): materialize once here instead of
		// per kernel.
		return df.Compact(), nil
	}
	elementwise := true
	for _, k := range kernels {
		if !k.Elementwise {
			elementwise = false
			break
		}
	}

	if in.frame != nil && (elementwise || in.frame.ColBands() == 1) {
		// Shape known and compatible: one task per block, no barrier.
		f := in.frame
		s.Stats.FusedTasks.Add(int64(f.RowBands() * f.ColBands()))
		return &Result{frame: f.MapBlocksAsync(s.pool, s.group, chain)}
	}

	// Shape unknown (downstream of an exchange) or needs re-banding: one
	// continuation task that fans out band-parallel once the input exists.
	s.Stats.FusedTasks.Add(1)
	fut := s.pool.SubmitIn(s.group, func() (any, error) {
		f, err := in.Frame()
		if err != nil {
			return nil, err
		}
		if elementwise {
			return f.MapBlocks(s.pool, chain)
		}
		full, err := f.EnsureSingleColBand()
		if err != nil {
			return nil, err
		}
		return full.MapRowBands(s.pool, chain)
	}, in.blockDeps()...)
	return &Result{fut: fut}
}

// scheduleShuffle lowers a shuffle onto the task DAG:
//
//	summaries[r] ──┐
//	input band r ──┼→ plan ──→ partition[r] ──→ merge[b] (one per OUTPUT band)
//	side inputs  ──┘
//
// Every output band's merge is its own task and its own block future, so
// the result is a shape-known deferred frame (Buckets×1): downstream fused
// stages chain per band on the merge that feeds them — the no-barrier fast
// path — instead of waiting for the whole repartition like an exchange.
func (s *Scheduler) scheduleShuffle(sh *Shuffle, in *Result, sides []*Result) (*Result, error) {
	if sh.Merge == nil {
		return nil, fmt.Errorf("physical: shuffle %s has no merge", sh.Name)
	}
	if len(sides) > 0 && sh.Plan == nil {
		return nil, fmt.Errorf("physical: shuffle %s has side inputs but no plan", sh.Name)
	}
	if sh.Partition != nil && sh.Buckets < 1 {
		return nil, fmt.Errorf("physical: shuffle %s needs at least one bucket", sh.Name)
	}
	if sh.PrefixPlan != nil && (sh.Plan != nil || sh.Partition != nil || sh.Summarize == nil) {
		return nil, fmt.Errorf("physical: shuffle %s prefix plan requires an anchored shuffle with summaries and no global plan", sh.Name)
	}
	if sh.BandRouting && (sh.Summarize == nil || sh.Plan == nil || sh.Partition == nil || sh.PrefixPlan != nil) {
		return nil, fmt.Errorf("physical: shuffle %s band routing requires a partitioned shuffle with summaries and a global plan", sh.Name)
	}
	s.Stats.ShuffleStages.Add(1)
	if in.frame == nil {
		return s.scheduleShuffleFallback(sh, in, sides), nil
	}
	f := in.frame
	rb := f.RowBands()
	if sh.ReleaseBands && f.Transient() {
		// Every routed band will be released, so the stream producer may
		// hold its parse-ahead window against release instead of mere
		// resolution — backpressure that spans the whole route-and-spill
		// path, not just the parse.
		f.MarkReleasing()
	}
	release := func(r int) {
		if sh.ReleaseBands && f.Transient() {
			f.ReleaseBand(r)
			s.Stats.StreamReleasedBands.Add(1)
			if s.OnBandRelease != nil {
				s.OnBandRelease()
			}
		}
	}
	bandDeps := func(r int) []*exec.Future {
		deps := make([]*exec.Future, f.ColBands())
		for c := range deps {
			deps[c] = f.BlockFuture(r, c)
		}
		return deps
	}

	var sums []*exec.Future
	if sh.Summarize != nil && (sh.Plan != nil || sh.PrefixPlan != nil) {
		sums = make([]*exec.Future, rb)
		s.Stats.ShuffleSummaryTasks.Add(int64(rb))
		for r := 0; r < rb; r++ {
			r := r
			sums[r] = s.pool.SubmitIn(s.group, func() (any, error) {
				band, err := f.RowBand(r)
				if err != nil {
					return nil, err
				}
				return sh.Summarize(r, band)
			}, bandDeps(r)...)
		}
	}

	var planFut *exec.Future
	if sh.Plan != nil {
		var planDeps []*exec.Future
		for _, sf := range sums {
			planDeps = append(planDeps, sf)
		}
		for _, side := range sides {
			planDeps = append(planDeps, side.blockDeps()...)
		}
		s.Stats.ShufflePlanTasks.Add(1)
		planFut = s.pool.SubmitIn(s.group, func() (any, error) {
			summaries := make([]any, rb)
			for r, sf := range sums {
				if sf == nil {
					continue
				}
				v, err := sf.Wait()
				if err != nil {
					return nil, err
				}
				summaries[r] = v
			}
			sideFrames := make([]*partition.Frame, len(sides))
			for i, side := range sides {
				pf, err := side.Frame()
				if err != nil {
					return nil, err
				}
				sideFrames[i] = pf
			}
			out, err := sh.Plan(summaries, sideFrames)
			if err != nil {
				return nil, fmt.Errorf("physical: shuffle %s plan: %w", sh.Name, err)
			}
			return out, nil
		}, planDeps...)
	}
	planVal := func() (any, error) {
		if planFut == nil {
			return nil, nil
		}
		return planFut.Wait()
	}
	withPlan := func(deps []*exec.Future) []*exec.Future {
		if planFut != nil {
			deps = append(deps, planFut)
		}
		return deps
	}

	var mergeFuts []*exec.Future
	switch {
	case sh.PrefixPlan != nil:
		// Anchored with prefix routing state: band b's merge waits on its
		// own input plus the summaries of EARLIER bands only, so the pass
		// streams band by band (band 0 needs nothing but itself).
		mergeFuts = make([]*exec.Future, rb)
		s.Stats.ShuffleMergeTasks.Add(int64(rb))
		for b := 0; b < rb; b++ {
			b := b
			deps := append(bandDeps(b), sums[:b]...)
			mergeFuts[b] = s.pool.SubmitIn(s.group, func() (any, error) {
				band, err := f.RowBand(b)
				if err != nil {
					return nil, err
				}
				prefix := make([]any, b)
				for r := 0; r < b; r++ {
					v, err := sums[r].Wait()
					if err != nil {
						return nil, err
					}
					prefix[r] = v
				}
				plan, err := sh.PrefixPlan(prefix)
				if err != nil {
					return nil, fmt.Errorf("physical: shuffle %s prefix plan band %d: %w", sh.Name, b, err)
				}
				// No release(b) here: band b's own summary feeds LATER
				// bands' prefix plans and may not have run yet.
				return s.runMerge(sh, b, []any{band}, plan)
			}, deps...)
		}
	case sh.Partition == nil:
		// Anchored: output band b depends only on input band b (plus the
		// plan) — no rows cross bands, so band b's merge can land while
		// other bands are still computing their inputs.
		mergeFuts = make([]*exec.Future, rb)
		s.Stats.ShuffleMergeTasks.Add(int64(rb))
		for b := 0; b < rb; b++ {
			b := b
			mergeFuts[b] = s.pool.SubmitIn(s.group, func() (any, error) {
				band, err := f.RowBand(b)
				if err != nil {
					return nil, err
				}
				plan, err := planVal()
				if err != nil {
					return nil, err
				}
				out, err := s.runMerge(sh, b, []any{band}, plan)
				if err == nil {
					release(b)
				}
				return out, err
			}, withPlan(bandDeps(b))...)
		}
	default:
		nb := sh.Buckets
		parts := make([]*exec.Future, rb)
		s.Stats.ShufflePartitionTasks.Add(int64(rb))
		for r := 0; r < rb; r++ {
			r := r
			partDeps := withPlan(bandDeps(r))
			partPlan := planVal
			if sh.BandRouting {
				// Band routing: band r partitions from its OWN summary the
				// moment both exist — no dependency on the global plan fold,
				// so a streamed band routes (and releases) as soon as it
				// parses instead of accumulating behind the slowest band.
				partDeps = append(bandDeps(r), sums[r])
				partPlan = sums[r].Wait
			}
			parts[r] = s.pool.SubmitIn(s.group, func() (any, error) {
				band, err := f.RowBand(r)
				if err != nil {
					return nil, err
				}
				plan, err := partPlan()
				if err != nil {
					return nil, err
				}
				pieces, err := s.runPartition(sh, r, band, plan)
				if err == nil {
					// This band's summary already ran: it is a dependency of
					// this partition task, either directly (band routing) or
					// through the plan task (which waits on all summaries).
					release(r)
				}
				return pieces, err
			}, partDeps...)
		}
		mergeFuts = make([]*exec.Future, nb)
		s.Stats.ShuffleMergeTasks.Add(int64(nb))
		// Under band routing the partition tasks no longer imply the plan,
		// so the merges must gate on it explicitly.
		mergeDeps := withPlan(parts)
		for b := 0; b < nb; b++ {
			b := b
			mergeFuts[b] = s.pool.SubmitIn(s.group, func() (any, error) {
				pieces := make([]any, rb)
				for r, pf := range parts {
					v, err := pf.Wait()
					if err != nil {
						return nil, err
					}
					pieces[r] = v.([]any)[b]
				}
				plan, err := planVal()
				if err != nil {
					return nil, err
				}
				return s.runMerge(sh, b, pieces, plan)
			}, mergeDeps...)
		}
	}
	grid := make([][]*exec.Future, len(mergeFuts))
	for b, mf := range mergeFuts {
		grid[b] = []*exec.Future{mf}
	}
	out, err := partition.Deferred(grid)
	if err != nil {
		return nil, err
	}
	return &Result{frame: out}, nil
}

// scheduleShuffleFallback degrades a shuffle over a shape-opaque input
// (downstream of a gather exchange) to one coordinating task that runs the
// phases band-parallel internally once the input frame exists.
func (s *Scheduler) scheduleShuffleFallback(sh *Shuffle, in *Result, sides []*Result) *Result {
	s.Stats.ShuffleFallbacks.Add(1)
	deps := in.blockDeps()
	for _, side := range sides {
		deps = append(deps, side.blockDeps()...)
	}
	fut := s.pool.SubmitIn(s.group, func() (any, error) {
		f, err := in.Frame()
		if err != nil {
			return nil, err
		}
		sideFrames := make([]*partition.Frame, len(sides))
		for i, side := range sides {
			pf, err := side.Frame()
			if err != nil {
				return nil, err
			}
			sideFrames[i] = pf
		}
		return s.runShuffleSync(sh, f, sideFrames)
	}, deps...)
	return &Result{fut: fut}
}

// runShuffleSync executes the shuffle phases synchronously (band-parallel
// via the pool) over a materialized input frame.
func (s *Scheduler) runShuffleSync(sh *Shuffle, f *partition.Frame, sides []*partition.Frame) (*partition.Frame, error) {
	rb := f.RowBands()
	bands, err := exec.MapParallel(s.pool, rb, func(r int) (*core.DataFrame, error) {
		return f.RowBand(r)
	})
	if err != nil {
		return nil, err
	}
	summaries := make([]any, rb)
	if sh.Summarize != nil && (sh.Plan != nil || sh.PrefixPlan != nil) {
		summaries, err = exec.MapParallel(s.pool, rb, func(r int) (any, error) {
			return sh.Summarize(r, bands[r])
		})
		if err != nil {
			return nil, err
		}
	}
	var plan any
	if sh.Plan != nil {
		plan, err = sh.Plan(summaries, sides)
		if err != nil {
			return nil, fmt.Errorf("physical: shuffle %s plan: %w", sh.Name, err)
		}
	}
	var blocks []*core.DataFrame
	if sh.Partition == nil {
		blocks, err = exec.MapParallel(s.pool, rb, func(b int) (*core.DataFrame, error) {
			bandPlan := plan
			if sh.PrefixPlan != nil {
				var perr error
				bandPlan, perr = sh.PrefixPlan(summaries[:b])
				if perr != nil {
					return nil, fmt.Errorf("physical: shuffle %s prefix plan band %d: %w", sh.Name, b, perr)
				}
			}
			return s.runMerge(sh, b, []any{bands[b]}, bandPlan)
		})
	} else {
		var parts [][]any
		parts, err = exec.MapParallel(s.pool, rb, func(r int) ([]any, error) {
			bandPlan := plan
			if sh.BandRouting {
				bandPlan = summaries[r]
			}
			return s.runPartition(sh, r, bands[r], bandPlan)
		})
		if err != nil {
			return nil, err
		}
		blocks, err = exec.MapParallel(s.pool, sh.Buckets, func(b int) (*core.DataFrame, error) {
			pieces := make([]any, rb)
			for r := range parts {
				pieces[r] = parts[r][b]
			}
			return s.runMerge(sh, b, pieces, plan)
		})
	}
	if err != nil {
		return nil, err
	}
	grid := make([][]*core.DataFrame, len(blocks))
	for b, blk := range blocks {
		grid[b] = []*core.DataFrame{blk}
	}
	return partition.FromGrid(grid)
}

// runPartition invokes the shuffle's partition hook with error context and
// piece-count validation.
func (s *Scheduler) runPartition(sh *Shuffle, r int, band *core.DataFrame, plan any) ([]any, error) {
	pieces, err := sh.Partition(r, band, plan)
	if err != nil {
		return nil, fmt.Errorf("physical: shuffle %s partition band %d: %w", sh.Name, r, err)
	}
	if len(pieces) != sh.Buckets {
		return nil, fmt.Errorf("physical: shuffle %s partition band %d returned %d pieces, want %d", sh.Name, r, len(pieces), sh.Buckets)
	}
	return pieces, nil
}

// runMerge invokes the shuffle's merge hook with error context.
func (s *Scheduler) runMerge(sh *Shuffle, b int, pieces []any, plan any) (*core.DataFrame, error) {
	out, err := sh.Merge(b, pieces, plan)
	if err != nil {
		return nil, fmt.Errorf("physical: shuffle %s merge band %d: %w", sh.Name, b, err)
	}
	return out, nil
}

// Gather schedules a final task that resolves the root result into one
// dataframe, returning its future without blocking. This is the handle the
// opportunistic session regime hands back to users.
func (s *Scheduler) Gather(r *Result) *exec.Future {
	return s.pool.SubmitIn(s.group, func() (any, error) {
		f, err := r.Frame()
		if err != nil {
			return nil, err
		}
		return f.ToFrame()
	}, r.blockDeps()...)
}

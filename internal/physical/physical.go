// Package physical is the physical-plan layer between the dataframe algebra
// and the task-parallel execution engine: logical plans are *compiled* into
// a DAG of physical stages, and the scheduler lowers those stages onto
// per-block tasks on an exec.Pool.
//
// Two stage shapes exist, mirroring the two communication regimes of the
// MODIN architecture (Petersohn et al., Section 3):
//
//   - Fused stages chain embarrassingly-parallel per-band kernels
//     (selection, projection, map, rename, ...) into ONE task per band: a
//     filter→map chain over an 8-band frame schedules 8 tasks total, with
//     no inter-operator barrier — band 3's map may run while band 7's
//     filter is still queued.
//
//   - Exchange stages are the repartition points (groupby shuffle, sort
//     merge, join build, transpose): they depend on every input block and
//     run as a single coordinating task that may itself fan out.
//
// The scheduler returns deferred partition.Frames (future blocks) without
// waiting, so callers — the opportunistic session regime in particular —
// hold unresolved handles and only block at gather/render time. A failing
// task cancels the plan's exec.Group, skipping the query's remaining tasks.
package physical

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/partition"
)

// Kernel is one embarrassingly-parallel operator lowered into a fused
// stage: a pure per-band (or per-block) dataframe transform.
type Kernel struct {
	// Name labels the kernel in plan renderings ("selection", "map", ...).
	Name string
	// Elementwise marks kernels that are partitioning-agnostic (pure
	// cell-level transforms): they may run per block under any scheme. A
	// non-elementwise kernel needs full-width row bands.
	Elementwise bool
	// Fn transforms one band (or block).
	Fn func(*core.DataFrame) (*core.DataFrame, error)
}

// Exchange is a repartition point: a stage that must observe all of its
// inputs' blocks before producing output. Run receives the materialized
// input frames in input order.
type Exchange struct {
	// Name labels the exchange in plan renderings ("groupby", "sort", ...).
	Name string
	// Run produces the stage's (materialized) output frame.
	Run func(inputs []*partition.Frame) (*partition.Frame, error)
}

// Node is one stage of a physical plan DAG. Exactly one of Source, Kernels
// and Exchange is set.
type Node struct {
	// Source is a leaf: an already-partitioned frame.
	Source *partition.Frame
	// Kernels is a fused chain applied per band over Inputs[0].
	Kernels []Kernel
	// Exchange is a barrier stage over Inputs.
	Exchange *Exchange
	// Inputs are the stage's input stages.
	Inputs []*Node
}

// NewSource wraps a partitioned frame as a leaf stage.
func NewSource(f *partition.Frame) *Node { return &Node{Source: f} }

// NewFused chains kernels over an input stage as one fused stage.
func NewFused(in *Node, kernels ...Kernel) *Node {
	return &Node{Kernels: kernels, Inputs: []*Node{in}}
}

// Fuse appends kernels to a fused stage, returning the extended stage. The
// receiver must be a fused stage.
func (n *Node) Fuse(kernels ...Kernel) *Node {
	return &Node{Kernels: append(append([]Kernel(nil), n.Kernels...), kernels...), Inputs: n.Inputs}
}

// NewExchange builds a barrier stage over the inputs.
func NewExchange(name string, run func([]*partition.Frame) (*partition.Frame, error), inputs ...*Node) *Node {
	return &Node{Exchange: &Exchange{Name: name, Run: run}, Inputs: inputs}
}

// Describe renders the stage (without inputs).
func (n *Node) Describe() string {
	switch {
	case n.Source != nil:
		return fmt.Sprintf("SOURCE[%dx%d bands]", n.Source.RowBands(), n.Source.ColBands())
	case len(n.Kernels) > 0:
		names := make([]string, len(n.Kernels))
		for i, k := range n.Kernels {
			names[i] = k.Name
		}
		return "FUSED[" + strings.Join(names, "→") + "]"
	case n.Exchange != nil:
		return "EXCHANGE[" + n.Exchange.Name + "]"
	}
	return "EMPTY"
}

// Render pretty-prints the physical plan, one stage per line, inputs
// indented.
func Render(n *Node) string {
	var b strings.Builder
	render(&b, n, 0)
	return b.String()
}

func render(b *strings.Builder, n *Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, in := range n.Inputs {
		render(b, in, depth+1)
	}
}

// Stages counts fused and exchange stages in the plan (shared sub-stages
// count once).
func Stages(n *Node) (fused, exchanges int) {
	seen := make(map[*Node]bool)
	var walk func(*Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		switch {
		case len(n.Kernels) > 0:
			fused++
		case n.Exchange != nil:
			exchanges++
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(n)
	return fused, exchanges
}

// Stats counts scheduler activity for instrumentation and tests.
type Stats struct {
	// FusedTasks counts per-band tasks scheduled for fused stages.
	FusedTasks atomic.Int64
	// ExchangeTasks counts barrier coordinating tasks scheduled.
	ExchangeTasks atomic.Int64
	// FusedStages and ExchangeStages count stages scheduled.
	FusedStages    atomic.Int64
	ExchangeStages atomic.Int64
}

// Scheduler lowers physical plans onto a worker pool as a task DAG.
type Scheduler struct {
	pool  *exec.Pool
	group *exec.Group
	memo  map[*Node]*Result

	// Stats is exported for instrumentation (per-scheduler, i.e. per-run).
	Stats Stats
}

// NewScheduler returns a scheduler for one plan run. Each run has its own
// cancellation group: the first failing task skips the rest of the run.
func NewScheduler(pool *exec.Pool) *Scheduler {
	return &Scheduler{
		pool:  pool,
		group: exec.NewGroup(),
		memo:  make(map[*Node]*Result),
	}
}

// Group exposes the run's cancellation scope.
func (s *Scheduler) Group() *exec.Group { return s.group }

// Result is a scheduled stage's output handle. Stages whose output grid
// shape is known at schedule time (sources, fused chains over them) carry a
// deferred frame with one future per block; exchange outputs, whose shape
// depends on the data, carry a single future resolving to the whole frame.
type Result struct {
	frame *partition.Frame // non-nil when the block grid shape is known
	fut   *exec.Future     // otherwise: resolves to *partition.Frame
}

// Deferred reports whether the result still has in-flight work.
func (r *Result) Deferred() bool {
	if r.frame != nil {
		return !r.frame.Ready()
	}
	return !r.fut.Ready()
}

// Frame waits for the stage's output frame. For shape-known results this
// returns immediately with the deferred frame (its blocks may still be
// computing); for exchange results it blocks until the exchange ran.
func (r *Result) Frame() (*partition.Frame, error) {
	if r.frame != nil {
		return r.frame, nil
	}
	v, err := r.fut.Wait()
	if err != nil {
		return nil, err
	}
	return v.(*partition.Frame), nil
}

// blockDeps lists the futures downstream tasks must wait on.
func (r *Result) blockDeps() []*exec.Future {
	if r.frame == nil {
		return []*exec.Future{r.fut}
	}
	var deps []*exec.Future
	for br := 0; br < r.frame.RowBands(); br++ {
		for bc := 0; bc < r.frame.ColBands(); bc++ {
			deps = append(deps, r.frame.BlockFuture(br, bc))
		}
	}
	return deps
}

// Run schedules the plan's task DAG and returns the root's handle without
// waiting for any task. Shared sub-stages are scheduled once.
func (s *Scheduler) Run(n *Node) (*Result, error) {
	if res, ok := s.memo[n]; ok {
		return res, nil
	}
	res, err := s.schedule(n)
	if err != nil {
		return nil, err
	}
	s.memo[n] = res
	return res, nil
}

func (s *Scheduler) schedule(n *Node) (*Result, error) {
	switch {
	case n.Source != nil:
		return &Result{frame: n.Source}, nil

	case len(n.Kernels) > 0:
		in, err := s.Run(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return s.scheduleFused(in, n.Kernels), nil

	case n.Exchange != nil:
		inputs := make([]*Result, len(n.Inputs))
		var deps []*exec.Future
		for i, child := range n.Inputs {
			r, err := s.Run(child)
			if err != nil {
				return nil, err
			}
			inputs[i] = r
			deps = append(deps, r.blockDeps()...)
		}
		s.Stats.ExchangeStages.Add(1)
		s.Stats.ExchangeTasks.Add(1)
		ex := n.Exchange
		fut := s.pool.SubmitIn(s.group, func() (any, error) {
			frames := make([]*partition.Frame, len(inputs))
			for i, r := range inputs {
				f, err := r.Frame()
				if err != nil {
					return nil, err
				}
				frames[i] = f
			}
			out, err := ex.Run(frames)
			if err != nil {
				return nil, fmt.Errorf("physical: exchange %s: %w", ex.Name, err)
			}
			return out, nil
		}, deps...)
		return &Result{fut: fut}, nil
	}
	return nil, fmt.Errorf("physical: empty stage")
}

// scheduleFused chains the kernels over the input. When the input's grid
// shape is known, each band gets exactly one task running the whole kernel
// chain, chained on the band's block future — the no-barrier fast path.
// When the input is an exchange (shape unknown until it runs), one
// continuation task applies the chain band-parallel after the exchange.
func (s *Scheduler) scheduleFused(in *Result, kernels []Kernel) *Result {
	s.Stats.FusedStages.Add(1)
	chain := func(df *core.DataFrame) (*core.DataFrame, error) {
		var err error
		for _, k := range kernels {
			df, err = k.Fn(df)
			if err != nil {
				return nil, fmt.Errorf("physical: kernel %s: %w", k.Name, err)
			}
		}
		return df, nil
	}
	elementwise := true
	for _, k := range kernels {
		if !k.Elementwise {
			elementwise = false
			break
		}
	}

	if in.frame != nil && (elementwise || in.frame.ColBands() == 1) {
		// Shape known and compatible: one task per block, no barrier.
		f := in.frame
		s.Stats.FusedTasks.Add(int64(f.RowBands() * f.ColBands()))
		return &Result{frame: f.MapBlocksAsync(s.pool, s.group, chain)}
	}

	// Shape unknown (downstream of an exchange) or needs re-banding: one
	// continuation task that fans out band-parallel once the input exists.
	s.Stats.FusedTasks.Add(1)
	fut := s.pool.SubmitIn(s.group, func() (any, error) {
		f, err := in.Frame()
		if err != nil {
			return nil, err
		}
		if elementwise {
			return f.MapBlocks(s.pool, chain)
		}
		full, err := f.EnsureSingleColBand()
		if err != nil {
			return nil, err
		}
		return full.MapRowBands(s.pool, chain)
	}, in.blockDeps()...)
	return &Result{fut: fut}
}

// Gather schedules a final task that resolves the root result into one
// dataframe, returning its future without blocking. This is the handle the
// opportunistic session regime hands back to users.
func (s *Scheduler) Gather(r *Result) *exec.Future {
	return s.pool.SubmitIn(s.group, func() (any, error) {
		f, err := r.Frame()
		if err != nil {
			return nil, err
		}
		return f.ToFrame()
	}, r.blockDeps()...)
}

package physical

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
)

// fakeCursor serves pre-split bands, optionally failing at a given band —
// a StreamCursor with fully controlled pacing and error injection.
type fakeCursor struct {
	bands        []*core.DataFrame
	names        []string
	i            int
	bytesPerBand int64
	failAt       int // NextBand errors when asked for this band; -1 = never
	closed       atomic.Bool
}

func (c *fakeCursor) NextBand(maxRows int) (*core.DataFrame, error) {
	if maxRows <= 0 {
		return nil, fmt.Errorf("bad band size %d", maxRows)
	}
	if c.i == c.failAt {
		return nil, errors.New("synthetic parse failure")
	}
	if c.i >= len(c.bands) {
		return nil, io.EOF
	}
	b := c.bands[c.i]
	c.i++
	return b, nil
}

func (c *fakeCursor) BytesRead() int64 { return int64(c.i) * c.bytesPerBand }

func (c *fakeCursor) Empty() *core.DataFrame {
	cols := make([]string, len(c.names))
	copy(cols, c.names)
	e, err := core.FromRecords(cols, nil)
	if err != nil {
		panic(err)
	}
	return e
}

func (c *fakeCursor) Close() error {
	c.closed.Store(true)
	return nil
}

// waitClosed waits out the producer goroutine's deferred Close — the gather
// error can surface a beat before the producer unwinds.
func (c *fakeCursor) waitClosed() bool {
	for i := 0; i < 100; i++ {
		if c.closed.Load() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// splitDF slices df into rows-sized raw bands (no labels: the stream stage
// assigns global labels itself).
func splitDF(df *core.DataFrame, rows int) []*core.DataFrame {
	var bands []*core.DataFrame
	for lo := 0; lo < df.NRows(); lo += rows {
		hi := lo + rows
		if hi > df.NRows() {
			hi = df.NRows()
		}
		bands = append(bands, df.SliceRows(lo, hi))
	}
	return bands
}

func streamNode(cur *fakeCursor, sizeHint int64, kernels ...Kernel) *Node {
	return NewStreamSource(&StreamSource{
		Name:     "fake",
		Open:     func() (StreamCursor, error) { return cur, nil },
		BandRows: 10,
		SizeHint: sizeHint,
		Kernels:  kernels,
	})
}

func runStream(t *testing.T, n *Node) (*core.DataFrame, *Scheduler, error) {
	t.Helper()
	pool := exec.NewPool(2)
	defer pool.Close()
	s := NewScheduler(pool)
	res, err := s.Run(n)
	if err != nil {
		return nil, s, err
	}
	frame, err := res.Frame()
	if err != nil {
		return nil, s, err
	}
	out, err := frame.ToFrame()
	return out, s, err
}

// TestStreamMatchesWholeRead: an accurately-hinted stream gathers to the
// exact source frame — bands, labels and all.
func TestStreamMatchesWholeRead(t *testing.T) {
	df := testDF(100)
	cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: -1}
	out, s, err := runStream(t, streamNode(cur, 100*10))
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(out) {
		t.Fatalf("streamed gather differs from source:\n%s\nvs\n%s", out, df)
	}
	if !cur.waitClosed() {
		t.Error("cursor not closed after drain")
	}
	if got := s.Stats.StreamStages.Load(); got != 1 {
		t.Errorf("stream stages = %d", got)
	}
	if got := s.Stats.StreamBands.Load(); got < 2 {
		t.Errorf("stream bands = %d, want >= 2", got)
	}
}

// TestStreamFusedKernels: the fused chain runs per band and the gathered
// result equals the kernel applied to the whole frame.
func TestStreamFusedKernels(t *testing.T) {
	df := testDF(100)
	cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: -1}
	out, _, err := runStream(t, streamNode(cur, 100*10, selectEven()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := selectEven().Fn(df)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(out) {
		t.Fatalf("fused stream differs:\n%s\nvs\n%s", out, want)
	}
}

// TestStreamOverflowWhenSizeHintLies: a hint 10x too small still gathers the
// full input — excess morsels concatenate into the final band.
func TestStreamOverflowWhenSizeHintLies(t *testing.T) {
	df := testDF(200)
	cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: -1}
	out, s, err := runStream(t, streamNode(cur, 200)) // ~2 bands' worth of hint for 20 bands
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(out) {
		t.Fatal("overflow path lost or reordered rows")
	}
	if got := s.Stats.StreamBands.Load(); got >= 20 {
		t.Errorf("band grid = %d, want < 20 (overflow should have absorbed the tail)", got)
	}
}

// TestStreamUnknownSize: with no hint the grid is worker-derived and unused
// tail bands resolve empty.
func TestStreamUnknownSize(t *testing.T) {
	df := testDF(30)
	cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: -1}
	out, s, err := runStream(t, streamNode(cur, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(out) {
		t.Fatal("unknown-size stream differs from source")
	}
	if got := s.Stats.StreamBands.Load(); got < 3 {
		t.Errorf("band grid = %d, want >= 3 (4x workers)", got)
	}
}

// TestStreamMidErrorPropagates: a parse failure after the first band turns
// into a query error on gather (never a hang), carrying the stream name.
func TestStreamMidErrorPropagates(t *testing.T) {
	df := testDF(100)
	cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: 4}
	_, _, err := runStream(t, streamNode(cur, 100*10))
	if err == nil {
		t.Fatal("expected a mid-stream error")
	}
	if !strings.Contains(err.Error(), "fake") {
		t.Errorf("error should name the stream: %v", err)
	}
	if !cur.waitClosed() {
		t.Error("cursor not closed after failure")
	}
}

// TestStreamFirstBandErrorIsSynchronous: a failure on the very first band
// surfaces from Run itself, before any tasks are scheduled.
func TestStreamFirstBandErrorIsSynchronous(t *testing.T) {
	cur := &fakeCursor{names: []string{"id"}, failAt: 0}
	pool := exec.NewPool(2)
	defer pool.Close()
	s := NewScheduler(pool)
	if _, err := s.Run(streamNode(cur, 0)); err == nil {
		t.Fatal("expected a synchronous first-band error")
	}
}

// TestStreamOpenErrorIsSynchronous: Open failures surface from Run.
func TestStreamOpenErrorIsSynchronous(t *testing.T) {
	n := NewStreamSource(&StreamSource{
		Name: "broken",
		Open: func() (StreamCursor, error) { return nil, errors.New("no such file") },
	})
	pool := exec.NewPool(2)
	defer pool.Close()
	s := NewScheduler(pool)
	_, err := s.Run(n)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("want open error naming the stream, got %v", err)
	}
}

// TestStreamSingleUseMarksTransient: SingleUse streams hand downstream
// stages a transient frame (release-after-route eligible).
func TestStreamSingleUseMarksTransient(t *testing.T) {
	df := testDF(20)
	for _, single := range []bool{true, false} {
		cur := &fakeCursor{bands: splitDF(df, 10), names: df.ColNames(), bytesPerBand: 100, failAt: -1}
		n := streamNode(cur, 0)
		n.Stream.SingleUse = single
		pool := exec.NewPool(2)
		s := NewScheduler(pool)
		res, err := s.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := res.Frame()
		if err != nil {
			t.Fatal(err)
		}
		if frame.Transient() != single {
			t.Errorf("SingleUse=%v: transient = %v", single, frame.Transient())
		}
		if err := frame.Resolve(); err != nil {
			t.Fatal(err)
		}
		pool.Close()
	}
}

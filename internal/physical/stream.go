package physical

import (
	"fmt"
	"io"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/vector"
)

// DefaultStreamBandRows is the morsel size of a streaming scan when the
// plan does not choose one.
const DefaultStreamBandRows = 32768

// maxStreamBands caps the scheduled band grid of one stream: estimation
// slack past the cap concatenates into the final band instead of growing
// the task count without bound.
const maxStreamBands = 1024

// StreamCursor produces a source's bands one morsel at a time. NextBand
// returns io.EOF once the input is exhausted; BytesRead lets the scheduler
// extrapolate a band-count estimate from the first band's byte footprint;
// Empty is the zero-row band sharing the stream's column shape.
type StreamCursor interface {
	NextBand(maxRows int) (*core.DataFrame, error)
	BytesRead() int64
	Empty() *core.DataFrame
	Close() error
}

// StreamSource is a morsel-driven leaf stage: the input is parsed
// band-by-band on a dedicated producer goroutine, each band is pushed
// through the stage's fused kernel chain as its own pool task, and the
// stage's output frame holds one promise-backed block future per band — so
// a downstream shuffle consumes band 0 while band N is still being parsed,
// and no point in the pipeline ever holds the whole input.
type StreamSource struct {
	// Name labels the stream in plan renderings and error messages.
	Name string
	// Open starts a fresh cursor over the input; called once per run.
	Open func() (StreamCursor, error)
	// BandRows caps rows per morsel (0 = DefaultStreamBandRows).
	BandRows int
	// SizeHint is the total input size in bytes, 0 when unknown; with the
	// first band's byte footprint it sizes the band grid.
	SizeHint int64
	// SingleUse marks the stage's output as consumed by exactly one
	// downstream stage: its bands may then be released once routed
	// (partition.Frame.ReleaseBand), bounding resident memory.
	SingleUse bool
	// Kernels is the fused chain applied to every band, scan included —
	// filter morsels as they are parsed, not after they accumulate.
	Kernels []Kernel
}

// NewStreamSource wraps a stream source as a leaf stage.
func NewStreamSource(st *StreamSource) *Node { return &Node{Stream: st} }

// FuseStream returns a stream stage with extra kernels appended to its
// fused chain. The receiver must be a stream stage; it is not mutated.
func FuseStream(n *Node, kernels ...Kernel) *Node {
	st := *n.Stream
	st.Kernels = append(append([]Kernel(nil), n.Stream.Kernels...), kernels...)
	return &Node{Stream: &st}
}

// streamBandCount sizes the band grid from the first band's byte footprint.
func streamBandCount(sizeHint, firstBandBytes int64, workers int) int {
	b := 1
	switch {
	case sizeHint > 0 && firstBandBytes > 0:
		est := int(sizeHint / firstBandBytes)
		// Slack: CSV rows vary in width, so leave headroom before the
		// overflow-into-last-band fallback kicks in.
		b = est + est/8 + 2
	case sizeHint == 0:
		// Unknown input size: give the pool something to chew on and let
		// the final band absorb the rest.
		b = 4 * workers
	}
	if b > maxStreamBands {
		b = maxStreamBands
	}
	if b < 1 {
		b = 1
	}
	return b
}

// scheduleStream lowers a stream stage: the first band parses synchronously
// (so first-band latency depends on the band size, never the file size),
// the rest on a producer goroutine that keeps a bounded parse-ahead window.
func (s *Scheduler) scheduleStream(n *Node) (*Result, error) {
	st := n.Stream
	bandRows := st.BandRows
	if bandRows <= 0 {
		bandRows = DefaultStreamBandRows
	}
	chain := func(df *core.DataFrame) (*core.DataFrame, error) {
		var err error
		for _, k := range st.Kernels {
			df, err = k.Fn(df)
			if err != nil {
				return nil, fmt.Errorf("physical: kernel %s: %w", k.Name, err)
			}
		}
		out := df.Compact()
		// Detach any band-local induction cache at stage exit: its memo is
		// keyed by the raw band's vectors (and holds their full typed
		// parses), so a surviving reference would pin every parsed morsel
		// for the life of the query — the retention the morsel window
		// exists to prevent.
		if out.Cache() != nil {
			out = out.WithCache(nil)
		}
		return out, nil
	}
	cur, err := st.Open()
	if err != nil {
		return nil, fmt.Errorf("physical: stream %s: %w", st.Name, err)
	}
	first, ferr := cur.NextBand(bandRows)
	eof := false
	switch {
	case ferr == io.EOF:
		eof = true
	case ferr != nil:
		cur.Close()
		return nil, fmt.Errorf("physical: stream %s: %w", st.Name, ferr)
	}

	b := 1
	if !eof {
		b = streamBandCount(st.SizeHint, cur.BytesRead(), s.pool.Workers())
	}
	s.Stats.StreamStages.Add(1)
	s.Stats.StreamBands.Add(int64(b))

	futs := make([]*exec.Future, b)
	resolve := make([]func(any, error), b)
	grid := make([][]*exec.Future, b)
	for i := range futs {
		futs[i], resolve[i] = exec.NewPromise()
		grid[i] = []*exec.Future{futs[i]}
	}
	frame, err := partition.Deferred(grid)
	if err != nil {
		cur.Close()
		return nil, err
	}
	if st.SingleUse {
		frame.MarkTransient()
	}
	go s.produceStream(st, cur, chain, first, eof, bandRows, frame, futs, resolve)
	return &Result{frame: frame}, nil
}

// produceStream parses morsels sequentially and fans each out as one kernel
// task. Invariants that bound memory: at most parse-ahead-window raw bands
// exist at once (each owned by its task's closure, dropped after the
// chain); the final band absorbs any morsels past the estimated grid as
// already-chained (filtered) outputs; tail bands that never arrive resolve
// to the chained empty band so every promise resolves exactly once.
func (s *Scheduler) produceStream(st *StreamSource, cur StreamCursor, chain func(*core.DataFrame) (*core.DataFrame, error), first *core.DataFrame, eof bool, bandRows int, frame *partition.Frame, futs []*exec.Future, resolve []func(any, error)) {
	defer cur.Close()
	b := len(futs)
	window := 2 * s.pool.Workers()
	if window < 2 {
		window = 2
	}
	wrap := func(err error) error { return fmt.Errorf("physical: stream %s: %w", st.Name, err) }
	fail := func(err error) {
		for _, res := range resolve {
			res(nil, err) // idempotent: already-resolved bands keep their value
		}
		s.group.Cancel(err)
	}

	var overflow []*core.DataFrame
	i, offset := 0, int64(0)
	raw := first
	for raw != nil {
		if err := s.group.Err(); err != nil {
			fail(err)
			return
		}
		// Bands carry global row labels so the streamed result is
		// cell-identical to a whole-file read split after the fact.
		labeled, err := raw.WithRowLabels(vector.Range(offset, raw.NRows()))
		if err != nil {
			fail(wrap(err))
			return
		}
		offset += int64(raw.NRows())
		if i < b-1 {
			if i >= window {
				// Parse-ahead window: wait for an older band's task before
				// parsing further, so raw morsels in flight stay bounded.
				select {
				case <-futs[i-window].Done():
				case <-s.group.Done():
					fail(s.group.Err())
					return
				}
				if frame.Releasing() {
					// The consumer releases every band it routes, so hold
					// the window against RELEASE — parsed, routed, and
					// (past the spill budget) on disk. Without this the
					// window only bounds raw morsels: when routing is
					// slower than parsing (spill admission serializes on
					// rendering and disk writes), resolved-but-unrouted
					// bands accumulate without bound, and the streamed
					// pass-through ceiling grows with the file instead of
					// the window.
					select {
					case <-frame.BandReleased(i - window):
					case <-s.group.Done():
						fail(s.group.Err())
						return
					}
				}
			}
			band, res := labeled, resolve[i]
			s.pool.SubmitIn(s.group, func() (any, error) {
				out, err := chain(band)
				res(out, err)
				return out, err
			})
		} else {
			// Past the estimated grid: run the chain inline and collect the
			// (already filtered/compacted) outputs for the final band.
			out, err := chain(labeled)
			if err != nil {
				fail(err)
				return
			}
			overflow = append(overflow, out)
		}
		i++
		raw = nil
		if !eof {
			nb, err := cur.NextBand(bandRows)
			switch {
			case err == io.EOF:
				eof = true
			case err != nil:
				fail(wrap(err))
				return
			default:
				raw = nb
			}
		}
	}

	if i < b-1 || len(overflow) == 0 {
		emptyOut, err := chain(cur.Empty())
		if err != nil {
			fail(err)
			return
		}
		for j := i; j < b-1; j++ {
			resolve[j](emptyOut, nil)
		}
		if len(overflow) == 0 {
			resolve[b-1](emptyOut, nil)
		}
	}
	switch len(overflow) {
	case 0:
	case 1:
		resolve[b-1](overflow[0], nil)
	default:
		cat, err := algebra.VStackFrames(overflow...)
		if err != nil {
			fail(wrap(err))
			return
		}
		resolve[b-1](cat, nil)
	}
	// Sweep: a band task skipped by group cancellation never ran its
	// resolver; fail() below settles every promise so no waiter hangs.
	for j := 0; j < b; j++ {
		select {
		case <-futs[j].Done():
		case <-s.group.Done():
			fail(s.group.Err())
			return
		}
	}
}

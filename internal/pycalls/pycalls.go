// Package pycalls extracts method-invocation names from Python-like source
// text. It is the analysis substrate for reproducing the usage study of
// Section 4.6 / Figure 7, standing in for the nbconvert + ast pipeline the
// paper ran over 1M GitHub notebooks: a tokenizer plus attribute-call
// scanner that records `x.method(...)` invocations, attribute accesses of
// known pandas properties (`df.shape`), and bare calls (`read_csv(...)`).
package pycalls

import (
	"unicode"
)

// Call is one extracted invocation.
type Call struct {
	// Name is the method or function name.
	Name string
	// Line is the 1-based source line.
	Line int
	// Attribute reports whether the name was accessed as an attribute
	// (x.name) rather than a bare function.
	Attribute bool
}

// propertyNames are pandas attributes commonly used without a call, which
// the paper's counts include (shape, columns, index, values, T, iloc, loc).
var propertyNames = map[string]bool{
	"shape": true, "columns": true, "index": true, "values": true,
	"T": true, "iloc": true, "loc": true, "ix": true, "dtypes": true,
	"str": true, "at": true, "iat": true,
}

// Extract scans source text and returns every method invocation, in order.
// The scanner understands comments, string literals (including triple
// quotes), and chained attribute access (df.groupby("x").mean() yields
// groupby and mean).
func Extract(src string) []Call {
	var calls []Call
	line := 1
	i := 0
	n := len(src)

	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"' || c == '\'':
			i = skipString(src, i, &line)
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			name := src[start:i]
			attr := start > 0 && src[start-1] == '.'
			// Lookahead: call, subscript of an indexer, or known
			// property access.
			j := i
			for j < n && (src[j] == ' ' || src[j] == '\t') {
				j++
			}
			switch {
			case j < n && src[j] == '(':
				calls = append(calls, Call{Name: name, Line: line, Attribute: attr})
			case attr && j < n && src[j] == '[' && propertyNames[name]:
				calls = append(calls, Call{Name: name, Line: line, Attribute: true})
			case attr && propertyNames[name]:
				calls = append(calls, Call{Name: name, Line: line, Attribute: true})
			}
		default:
			i++
		}
	}
	return calls
}

// skipString advances past a Python string literal starting at i, handling
// escapes and triple quotes, and counts newlines into line.
func skipString(src string, i int, line *int) int {
	n := len(src)
	q := src[i]
	triple := i+2 < n && src[i+1] == q && src[i+2] == q
	if triple {
		i += 3
		for i+2 < n {
			if src[i] == '\n' {
				*line++
			}
			if src[i] == q && src[i+1] == q && src[i+2] == q {
				return i + 3
			}
			i++
		}
		return n
	}
	i++
	for i < n {
		switch src[i] {
		case '\\':
			i += 2
			continue
		case '\n':
			*line++
			return i + 1 // unterminated single-line string
		case q:
			return i + 1
		}
		i++
	}
	return n
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Counts aggregates extraction results the way Section 4.6 reports them.
type Counts struct {
	// Total is occurrences per function across the corpus.
	Total map[string]int
	// Files is the number of files each function occurs in.
	Files map[string]int
	// CoOccur counts pairs of functions invoked on the same line
	// (chained or parallel invocation), keyed "a+b" with a ≤ b.
	CoOccur map[string]int
}

// NewCounts returns empty counters.
func NewCounts() *Counts {
	return &Counts{
		Total:   make(map[string]int),
		Files:   make(map[string]int),
		CoOccur: make(map[string]int),
	}
}

// AddFile folds one file's calls into the counts, filtering to the given
// vocabulary (nil keeps everything).
func (c *Counts) AddFile(calls []Call, vocabulary map[string]bool) {
	seen := make(map[string]bool)
	byLine := make(map[int][]string)
	for _, call := range calls {
		if vocabulary != nil && !vocabulary[call.Name] {
			continue
		}
		c.Total[call.Name]++
		seen[call.Name] = true
		byLine[call.Line] = append(byLine[call.Line], call.Name)
	}
	for name := range seen {
		c.Files[name]++
	}
	for _, names := range byLine {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				a, b := names[i], names[j]
				if a > b {
					a, b = b, a
				}
				if a != b {
					c.CoOccur[a+"+"+b]++
				}
			}
		}
	}
}

// PandasVocabulary is the function set tracked for Figure 7, drawn from the
// names the paper highlights.
func PandasVocabulary() map[string]bool {
	names := []string{
		"read_csv", "head", "loc", "plot", "shape", "groupby", "merge",
		"DataFrame", "mean", "sum", "max", "min", "iloc", "drop", "append",
		"apply", "join", "describe", "dropna", "fillna", "isnull", "astype",
		"columns", "index", "values", "set_index", "reset_index", "sort_values",
		"read_excel", "read_html", "get_dummies", "concat", "cov", "count",
		"transpose", "T", "pivot", "tail", "unique", "kurtosis",
	}
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

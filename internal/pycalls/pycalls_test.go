package pycalls

import (
	"testing"
)

func names(calls []Call) []string {
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = c.Name
	}
	return out
}

func TestExtractSimpleCalls(t *testing.T) {
	src := "df = pd.read_csv('x.csv')\ndf.head()\n"
	got := names(Extract(src))
	want := []string{"read_csv", "head"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("extract = %v", got)
	}
}

func TestExtractChainedCalls(t *testing.T) {
	calls := Extract("df.groupby('k').mean()\n")
	if len(calls) != 2 || calls[0].Name != "groupby" || calls[1].Name != "mean" {
		t.Errorf("chained = %v", names(calls))
	}
	// Both on the same line: co-occurrence is countable.
	if calls[0].Line != 1 || calls[1].Line != 1 {
		t.Error("line numbers wrong")
	}
}

func TestExtractPropertiesAndIndexers(t *testing.T) {
	calls := Extract("df.shape\ndf.iloc[2, 0] = '12MP'\ndf.columns\n")
	got := names(calls)
	want := map[string]bool{"shape": true, "iloc": true, "columns": true}
	if len(got) != 3 {
		t.Fatalf("extract = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected %q", n)
		}
	}
}

func TestExtractIgnoresCommentsAndStrings(t *testing.T) {
	src := "# df.head()\nx = 'df.plot()'\ny = \"call()\"\nreal()\n"
	calls := Extract(src)
	if len(calls) != 1 || calls[0].Name != "real" {
		t.Errorf("extract = %v", names(calls))
	}
}

func TestExtractTripleQuotedStrings(t *testing.T) {
	src := "s = '''\ndf.head()\nmore()\n'''\nafter()\n"
	calls := Extract(src)
	if len(calls) != 1 || calls[0].Name != "after" {
		t.Errorf("extract = %v", names(calls))
	}
	if calls[0].Line != 5 {
		t.Errorf("line = %d, want 5 (newlines inside strings counted)", calls[0].Line)
	}
}

func TestExtractEscapesInStrings(t *testing.T) {
	src := `x = 'it\'s df.head()'` + "\nreal()\n"
	calls := Extract(src)
	if len(calls) != 1 || calls[0].Name != "real" {
		t.Errorf("extract = %v", names(calls))
	}
}

func TestExtractBareIdentifiersNotCounted(t *testing.T) {
	calls := Extract("result = something\nvalue + other\n")
	if len(calls) != 0 {
		t.Errorf("bare identifiers should not count: %v", names(calls))
	}
}

func TestAttributeFlag(t *testing.T) {
	calls := Extract("plain()\nobj.method()\n")
	if calls[0].Attribute || !calls[1].Attribute {
		t.Error("attribute flags wrong")
	}
}

func TestCountsAggregation(t *testing.T) {
	c := NewCounts()
	c.AddFile(Extract("df.head()\ndf.head()\ndf.dropna().describe()\n"), nil)
	c.AddFile(Extract("df.head()\n"), nil)
	if c.Total["head"] != 3 {
		t.Errorf("total head = %d", c.Total["head"])
	}
	if c.Files["head"] != 2 {
		t.Errorf("files head = %d", c.Files["head"])
	}
	if c.CoOccur["describe+dropna"] != 1 {
		t.Errorf("co-occur = %v", c.CoOccur)
	}
}

func TestCountsVocabularyFilter(t *testing.T) {
	c := NewCounts()
	c.AddFile(Extract("df.head()\nnp.zeros(3)\n"), PandasVocabulary())
	if c.Total["zeros"] != 0 || c.Total["head"] != 1 {
		t.Errorf("vocabulary filter wrong: %v", c.Total)
	}
}

func TestVocabularyHasFigure7Anchors(t *testing.T) {
	v := PandasVocabulary()
	// Figure 7's axis runs from read_csv (densest) to kurtosis.
	for _, anchor := range []string{"read_csv", "head", "loc", "groupby", "kurtosis"} {
		if !v[anchor] {
			t.Errorf("vocabulary missing %q", anchor)
		}
	}
}

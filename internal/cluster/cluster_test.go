package cluster

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/modin"
	"repro/internal/types"
	"repro/internal/vector"
)

// csvScan builds a buffer-backed scan node over text, probing the header
// the way df.ScanCSVString does.
func csvScan(t *testing.T, text string, bandRows int) *algebra.Scan {
	t.Helper()
	data := []byte(text)
	s := &algebra.Scan{
		Name: "csv",
		Data: data,
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		Options:  core.DefaultCSVOptions(),
		SizeHint: int64(len(data)),
		BandRows: bandRows,
	}
	cur, err := s.Cursor()
	if err != nil {
		t.Fatalf("cursor: %v", err)
	}
	s.Columns = cur.Columns()
	cur.Close()
	return s
}

// genCSV builds a deterministic mixed-type CSV with nRows data rows.
func genCSV(nRows int) string {
	var b strings.Builder
	b.WriteString("k,v,name\n")
	for i := 0; i < nRows; i++ {
		fmt.Fprintf(&b, "%d,%d,item-%d\n", i%7, i*3%101, i%13)
	}
	return b.String()
}

// startCluster returns a scheduler over n in-process workers, cleaned up
// with the test.
func startCluster(t *testing.T, n int) (*Scheduler, []*Worker) {
	t.Helper()
	s, workers, err := StartInProcess(n, WithHeartbeat(0))
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return s, workers
}

// checkSame runs the plan on both backends and requires cell-identical
// frames and a distributed (not fallen-back) cluster run.
func checkSame(t *testing.T, s *Scheduler, plan algebra.Node) {
	t.Helper()
	before := s.ClusterStats().Distributed
	got, err := s.Execute(plan)
	if err != nil {
		t.Fatalf("cluster execute: %v", err)
	}
	want, err := modin.New().Execute(plan)
	if err != nil {
		t.Fatalf("local execute: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("distributed result differs from local:\n got %dx%d\nwant %dx%d",
			got.NRows(), got.NCols(), want.NRows(), want.NCols())
	}
	if s.ClusterStats().Distributed != before+1 {
		t.Fatalf("plan did not distribute (stats %+v)", s.ClusterStats())
	}
}

func whereGE(col string, v int64) *algebra.Selection {
	return &algebra.Selection{Where: expr.WhereCompare(col, vector.CmpGe, types.IntValue(v))}
}

func TestDistributedChainMatchesLocal(t *testing.T) {
	s, _ := startCluster(t, 2)
	scan := csvScan(t, genCSV(900), 128)
	sel := whereGE("v", 20)
	sel.Input = scan
	plan := algebra.Node(&algebra.Projection{Input: sel, Cols: []string{"k", "v"}})
	checkSame(t, s, plan)
}

func TestDistributedGroupByMatchesLocal(t *testing.T) {
	s, _ := startCluster(t, 3)
	scan := csvScan(t, genCSV(1100), 97)
	sel := whereGE("v", 5)
	sel.Input = scan
	gb := &algebra.GroupBy{Input: sel, Spec: expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}, {Col: "v", Agg: expr.AggMean, As: "avg"}},
	}}
	plan := algebra.Node(&algebra.Selection{Input: gb, Where: expr.WhereCompare("v_sum", vector.CmpGt, types.IntValue(0))})
	checkSame(t, s, plan)
}

func TestDistributedGroupByAsLabels(t *testing.T) {
	s, _ := startCluster(t, 2)
	scan := csvScan(t, genCSV(400), 64)
	plan := &algebra.GroupBy{Input: scan, Spec: expr.GroupBySpec{
		Keys:     []string{"name"},
		Aggs:     []expr.AggSpec{{Col: "v", Agg: expr.AggMax}},
		AsLabels: true,
	}}
	checkSame(t, s, plan)
}

func TestDistributedSortMatchesLocal(t *testing.T) {
	s, _ := startCluster(t, 3)
	scan := csvScan(t, genCSV(800), 110)
	sort := &algebra.Sort{Input: scan, Order: expr.SortOrder{{Col: "v", Desc: true}, {Col: "name"}}}
	plan := algebra.Node(&algebra.Projection{Input: sort, Cols: []string{"v", "name"}})
	checkSame(t, s, plan)
}

func TestDistributedSourceFrameGroupBy(t *testing.T) {
	s, _ := startCluster(t, 2)
	n := 500
	keys := make([]string, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("g%d", i%11)
		vals[i] = int64(i % 29)
	}
	df := core.MustNew([]string{"k", "v"}, []vector.Vector{
		vector.NewObjectFromStrings(keys), vector.NewInt(vals, nil),
	})
	plan := &algebra.GroupBy{Input: &algebra.Source{DF: df}, Spec: expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}, {Col: "v", Agg: expr.AggCount}},
	}}
	checkSame(t, s, plan)
}

func TestDistributedRenameChain(t *testing.T) {
	s, _ := startCluster(t, 2)
	scan := csvScan(t, genCSV(300), 50)
	ren := &algebra.Rename{Input: scan, Mapping: map[string]string{"v": "value", "k": "key"}}
	sel := whereGE("value", 10)
	sel.Input = ren
	checkSame(t, s, sel)
}

// Opaque predicates and unsupported operators must fall back to the local
// engine, transparently.
func TestFallbackForOpaquePlans(t *testing.T) {
	s, _ := startCluster(t, 2)
	scan := csvScan(t, genCSV(100), 40)
	plan := &algebra.Selection{
		Input: scan,
		Pred:  func(r expr.Row) bool { return true },
		Desc:  "opaque",
	}
	before := s.ClusterStats()
	got, err := s.Execute(plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	want, err := modin.New().Execute(plan)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("fallback result differs from local")
	}
	after := s.ClusterStats()
	if after.Fallback != before.Fallback+1 || after.Distributed != before.Distributed {
		t.Fatalf("expected fallback, stats %+v", after)
	}
}

// A remote application error (unknown sort column reaches execution) must
// re-run locally so the caller sees the local engine's error identity.
func TestRemoteErrorRerunsLocally(t *testing.T) {
	s, _ := startCluster(t, 2)
	scan := csvScan(t, genCSV(100), 40)
	plan := &algebra.Sort{Input: scan, Order: expr.SortOrder{{Col: "nope"}}}
	_, errCluster := s.Execute(plan)
	_, errLocal := modin.New().Execute(plan)
	if errCluster == nil || errLocal == nil {
		t.Fatalf("expected errors, got cluster=%v local=%v", errCluster, errLocal)
	}
	if errCluster.Error() != errLocal.Error() {
		t.Fatalf("error identity differs:\ncluster: %v\nlocal:   %v", errCluster, errLocal)
	}
	if s.ClusterStats().LocalReruns == 0 {
		t.Fatal("expected a local re-run to be counted")
	}
}

// Killing a worker between the band stage and partition must re-submit the
// lost bands' lineage and still produce the local result.
func TestWorkerLossAfterBands(t *testing.T) {
	s, workers := startCluster(t, 2)
	scan := csvScan(t, genCSV(1000), 90)
	plan := &algebra.GroupBy{Input: scan, Spec: expr.GroupBySpec{
		Keys: []string{"k"},
		Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}},
	}}
	killed := false
	s.OnPhase = func(phase string) {
		if phase == "bands" && !killed {
			killed = true
			workers[0].Close()
		}
	}
	checkSame(t, s, plan)
	st := s.ClusterStats()
	if st.ResubmittedBands == 0 {
		t.Fatalf("expected resubmitted bands, stats %+v", st)
	}
	if st.DeadWorkers == 0 {
		t.Fatalf("expected a dead worker, stats %+v", st)
	}
}

// Killing a worker after partition (pieces routed, merges not yet run)
// exercises the fetch-failure attribution path.
func TestWorkerLossAfterPartition(t *testing.T) {
	s, workers := startCluster(t, 2)
	scan := csvScan(t, genCSV(1200), 80)
	plan := &algebra.Sort{Input: scan, Order: expr.SortOrder{{Col: "v"}, {Col: "k", Desc: true}}}
	killed := false
	s.OnPhase = func(phase string) {
		if phase == "partitioned" && !killed {
			killed = true
			workers[1].Close()
		}
	}
	checkSame(t, s, plan)
	if s.ClusterStats().ResubmittedBands == 0 {
		t.Fatalf("expected resubmitted bands, stats %+v", s.ClusterStats())
	}
}

// Losing every worker exhausts the cluster and falls back to a local
// re-run, still returning the right answer.
func TestAllWorkersLostFallsBack(t *testing.T) {
	s, workers := startCluster(t, 2)
	scan := csvScan(t, genCSV(600), 70)
	plan := &algebra.GroupBy{Input: scan, Spec: expr.GroupBySpec{
		Keys: []string{"k"}, Aggs: []expr.AggSpec{{Col: "v", Agg: expr.AggSum}},
	}}
	killed := false
	s.OnPhase = func(phase string) {
		if !killed {
			killed = true
			for _, w := range workers {
				w.Close()
			}
		}
	}
	got, err := s.Execute(plan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	want, err := modin.New().Execute(plan)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("fallback result differs from local")
	}
	if s.ClusterStats().LocalReruns == 0 {
		t.Fatalf("expected local re-run, stats %+v", s.ClusterStats())
	}
}

// Merge placement must follow the reported piece bytes: the worker holding
// the most bytes of a bucket hosts its merge.
func TestMergePlacementFollowsBytes(t *testing.T) {
	wa := &workerRef{addr: "a"}
	wb := &workerRef{addr: "b"}
	r := &run{
		workers: []*workerRef{wa, wb},
		bands: []bandState{
			{owner: wa}, {owner: wb}, {owner: wa},
		},
		sizes: [][]int64{
			{100, 5},  // band 0 on a
			{10, 900}, // band 1 on b
			{50, 10},  // band 2 on a
		},
	}
	if got := r.placeMerge(0); got != wa {
		t.Fatalf("bucket 0 placed on %s, want a (150 bytes vs 10)", got.addr)
	}
	if got := r.placeMerge(1); got != wb {
		t.Fatalf("bucket 1 placed on %s, want b (900 bytes vs 15)", got.addr)
	}
}

// splitCSV must cut bands exactly at the record boundaries encoding/csv
// sees — quoted newlines, escaped quotes, blank lines, \r\n — so that
// re-parsing the concatenated ranges reproduces the whole-file parse.
func TestSplitCSVMatchesEncodingCSV(t *testing.T) {
	cases := []string{
		"a,b\n1,2\n3,4\n5,6\n",
		"a,b\n\"x\ny\",2\n\"he said \"\"hi\"\"\",4\n",
		"a,b\r\n1,2\r\n\r\n3,4\r\n",
		"a,b\n1,2\n\n\n3,4\n5,6", // blank lines + unterminated final record
		"a,b\n\"q,uo\",\"\"\n,\n",
	}
	for ci, text := range cases {
		for _, bandRows := range []int{1, 2, 100} {
			ranges, err := splitCSV(strings.NewReader(text), ',', true, bandRows)
			if err != nil {
				t.Fatalf("case %d: split: %v", ci, err)
			}
			whole, err := core.ReadCSVString(text, core.DefaultCSVOptions())
			if err != nil {
				t.Fatalf("case %d: read: %v", ci, err)
			}
			total := 0
			for _, rng := range ranges {
				sub := text[rng.Offset : rng.Offset+rng.Length]
				cur, err := core.NewCSVCursor(strings.NewReader(sub), core.CSVOptions{Comma: ',', Header: false})
				if err != nil {
					t.Fatalf("case %d: cursor: %v", ci, err)
				}
				band, err := cur.NextBand(rng.Rows + 1)
				if err != nil {
					t.Fatalf("case %d: parse range: %v", ci, err)
				}
				if band.NRows() != rng.Rows {
					t.Fatalf("case %d: range parsed %d rows, split planned %d", ci, band.NRows(), rng.Rows)
				}
				if int64(total) != rng.Row {
					t.Fatalf("case %d: range starts at row %d, want %d", ci, rng.Row, total)
				}
				total += rng.Rows
			}
			if total != whole.NRows() {
				t.Fatalf("case %d bandRows=%d: split covers %d rows, file has %d", ci, bandRows, total, whole.NRows())
			}
		}
	}
}

func TestLocalSchedulerDegenerates(t *testing.T) {
	s := Local()
	scan := csvScan(t, genCSV(50), 10)
	got, err := s.Execute(scan)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	want, err := modin.New().Execute(scan)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("Local() scheduler differs from modin")
	}
	if s.ClusterStats().Fallback != 1 || s.ClusterStats().Distributed != 0 {
		t.Fatalf("Local() should always fall back, stats %+v", s.ClusterStats())
	}
}

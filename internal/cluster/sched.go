package cluster

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/modin"
	"repro/internal/physical"
	"repro/internal/types"
)

// Scheduler is the coordinator-side engine: it implements the same
// exec-facing surface as the in-process MODIN engine (algebra.Engine plus
// the async/spill/explain extensions the df layer probes), so df code
// compiles once and runs unchanged on either backend. Distributable plans
// ship to the workers; everything else — and every distributed run that
// fails — executes on the embedded local engine, which keeps results (and
// errors) cell-identical to a local run by construction.
type Scheduler struct {
	local      *modin.Engine
	retries    int
	rpcTimeout time.Duration
	hbEvery    time.Duration
	hbStop     chan struct{}
	qseq       atomic.Int64

	mu      sync.Mutex
	workers []*workerRef

	stats clusterStats

	// OnPhase, when set, is called at run phase boundaries ("bands",
	// "partitioned", "merged") — the deterministic hook fault-injection
	// tests use to kill a worker mid-query.
	OnPhase func(phase string)
}

// clusterStats counts scheduler outcomes.
type clusterStats struct {
	distributed, fallback, reruns atomic.Int64
	resubmitted, deadWorkers      atomic.Int64

	mu      sync.Mutex
	reasons map[string]int64
}

// recordFallback counts one local fallback under its reason.
func (c *clusterStats) recordFallback(reason string) {
	c.fallback.Add(1)
	c.mu.Lock()
	if c.reasons == nil {
		c.reasons = make(map[string]int64)
	}
	c.reasons[reason]++
	c.mu.Unlock()
}

// Stats reports cumulative scheduler counters.
type Stats struct {
	// Distributed counts queries answered by the workers.
	Distributed int64
	// Fallback counts queries outside the shippable subset (or with no
	// live workers) that ran on the local engine directly.
	Fallback int64
	// FallbackReasons breaks Fallback down by the disqualifying operator
	// ("join", "window", "opaque closure", "double-shuffle", ...), so a
	// cluster deployment can see WHY plans stayed local, not just how many.
	FallbackReasons map[string]int64
	// LocalReruns counts distributed attempts that failed past the retry
	// budget and were re-run locally.
	LocalReruns int64
	// ResubmittedBands counts band lineages re-submitted after a worker
	// loss.
	ResubmittedBands int64
	// DeadWorkers counts workers declared lost.
	DeadWorkers int64
}

// ClusterStats returns a snapshot of the scheduler's counters.
func (s *Scheduler) ClusterStats() Stats {
	st := Stats{
		Distributed:      s.stats.distributed.Load(),
		Fallback:         s.stats.fallback.Load(),
		LocalReruns:      s.stats.reruns.Load(),
		ResubmittedBands: s.stats.resubmitted.Load(),
		DeadWorkers:      s.stats.deadWorkers.Load(),
	}
	s.stats.mu.Lock()
	if len(s.stats.reasons) > 0 {
		st.FallbackReasons = make(map[string]int64, len(s.stats.reasons))
		for k, v := range s.stats.reasons {
			st.FallbackReasons[k] = v
		}
	}
	s.stats.mu.Unlock()
	return st
}

// workerRef is the coordinator's handle on one worker: its address, a lazy
// serial connection, and a liveness flag.
type workerRef struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	dead atomic.Bool
}

// call performs one RPC on the worker's serial connection, dialing lazily.
// Transport failures drop the connection and return the raw error; the run
// layer maps those to worker failures.
func (w *workerRef) call(timeout time.Duration, kind byte, req, resp any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		c, err := net.Dial("tcp", w.addr)
		if err != nil {
			return err
		}
		w.conn = c
	}
	err := call(w.conn, timeout, kind, req, resp)
	if err != nil {
		if _, app := err.(*remoteError); !app {
			w.conn.Close()
			w.conn = nil
		}
	}
	return err
}

func (w *workerRef) close() {
	w.mu.Lock()
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.mu.Unlock()
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithRetryBudget bounds lineage re-submission rounds per query (default 2).
func WithRetryBudget(n int) Option { return func(s *Scheduler) { s.retries = n } }

// WithRPCTimeout bounds each worker RPC (default 120s — shuffle merges over
// big buckets are one RPC).
func WithRPCTimeout(d time.Duration) Option { return func(s *Scheduler) { s.rpcTimeout = d } }

// WithHeartbeat sets the liveness probe interval (default 2s; 0 disables).
func WithHeartbeat(d time.Duration) Option { return func(s *Scheduler) { s.hbEvery = d } }

// WithLocalEngine sets the embedded fallback engine.
func WithLocalEngine(e *modin.Engine) Option { return func(s *Scheduler) { s.local = e } }

// Local returns the degenerate backend: a Scheduler with no workers, whose
// every query runs on the in-process engine. It exists so call sites can
// hold one engine type regardless of deployment.
func Local(opts ...Option) *Scheduler { return newScheduler(nil, opts) }

// Connect returns a Scheduler coordinating the workers at addrs, probing
// each once; at least one must answer.
func Connect(addrs []string, opts ...Option) (*Scheduler, error) {
	s := newScheduler(addrs, opts)
	live := 0
	for _, w := range s.workers {
		if err := w.call(5*time.Second, mPing, &emptyResp{OK: true}, &emptyResp{}); err != nil {
			w.dead.Store(true)
			s.stats.deadWorkers.Add(1)
		} else {
			live++
		}
	}
	if len(addrs) > 0 && live == 0 {
		s.Close()
		return nil, fmt.Errorf("cluster: no worker reachable among %v", addrs)
	}
	return s, nil
}

// StartInProcess starts n workers inside this process and a Scheduler
// connected to them — the single-binary deployment (and the test harness).
func StartInProcess(n int, opts ...Option) (*Scheduler, []*Worker, error) {
	workers := make([]*Worker, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			for _, prev := range workers {
				prev.Close()
			}
			return nil, nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	s, err := Connect(addrs, opts...)
	if err != nil {
		for _, w := range workers {
			w.Close()
		}
		return nil, nil, err
	}
	return s, workers, nil
}

func newScheduler(addrs []string, opts []Option) *Scheduler {
	s := &Scheduler{
		retries:    2,
		rpcTimeout: 120 * time.Second,
		hbEvery:    2 * time.Second,
	}
	for _, addr := range addrs {
		s.workers = append(s.workers, &workerRef{addr: addr})
	}
	for _, o := range opts {
		o(s)
	}
	if s.local == nil {
		s.local = modin.New()
	}
	if len(s.workers) > 0 && s.hbEvery > 0 {
		s.hbStop = make(chan struct{})
		go s.heartbeat()
	}
	return s
}

// Close stops the heartbeat and drops worker connections (the workers
// themselves keep running).
func (s *Scheduler) Close() error {
	if s.hbStop != nil {
		close(s.hbStop)
		s.hbStop = nil
	}
	for _, w := range s.workers {
		w.close()
	}
	return nil
}

// heartbeat probes each live worker on a fresh short-lived connection —
// independent of the serial RPC conn, so a long merge doesn't read as
// death — and declares a worker dead after two consecutive failures.
func (s *Scheduler) heartbeat() {
	misses := make(map[string]int)
	t := time.NewTicker(s.hbEvery)
	defer t.Stop()
	stop := s.hbStop
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		for _, w := range s.workers {
			if w.dead.Load() {
				continue
			}
			if pingOnce(w.addr, s.hbEvery) {
				misses[w.addr] = 0
				continue
			}
			misses[w.addr]++
			if misses[w.addr] >= 2 && !w.dead.Swap(true) {
				s.stats.deadWorkers.Add(1)
			}
		}
	}
}

func pingOnce(addr string, timeout time.Duration) bool {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	return call(conn, timeout, mPing, &emptyResp{OK: true}, &emptyResp{}) == nil
}

// liveWorkers snapshots the current live worker set.
func (s *Scheduler) liveWorkers() []*workerRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*workerRef
	for _, w := range s.workers {
		if !w.dead.Load() {
			out = append(out, w)
		}
	}
	return out
}

// Name identifies the engine.
func (s *Scheduler) Name() string { return "cluster" }

// Pool exposes the local engine's execution pool.
func (s *Scheduler) Pool() *exec.Pool { return s.local.Pool() }

// ReleaseSpill delegates to the local engine (spill state only exists for
// locally-executed queries).
func (s *Scheduler) ReleaseSpill() error { return s.local.ReleaseSpill() }

// DescribePhysical renders the local engine's physical plan — the
// distributed phases mirror the local shuffle phases one-to-one, so the
// local rendering describes both backends — then appends the scheduler's
// own placement decision: distribute, or fall back locally and why.
func (s *Scheduler) DescribePhysical(n algebra.Node) string {
	desc := s.local.DescribePhysical(n)
	if _, reason := extractPlan(n); reason != "" {
		return desc + fmt.Sprintf("cluster: local fallback (%s)\n", reason)
	}
	if live := len(s.liveWorkers()); live > 0 {
		return desc + fmt.Sprintf("cluster: distribute (%d workers)\n", live)
	}
	return desc + "cluster: local fallback (no live workers)\n"
}

// Distributes reports whether the plan is inside the shippable family and
// a live worker exists to take it.
func (s *Scheduler) Distributes(n algebra.Node) bool {
	_, reason := extractPlan(n)
	return reason == "" && len(s.liveWorkers()) > 0
}

// ExecuteAsync evaluates the plan in the background.
func (s *Scheduler) ExecuteAsync(n algebra.Node) *exec.Future {
	fut, resolve := exec.NewPromise()
	go func() {
		df, err := s.Execute(n)
		resolve(df, err)
	}()
	return fut
}

// Execute evaluates the plan: distributable plans ship to the workers, the
// rest run locally (recording WHY under the fallback stats). A distributed
// attempt that fails — worker loss past the retry budget, or any remote
// application error — re-runs locally, so the caller always sees exactly
// the local engine's result and error identity.
func (s *Scheduler) Execute(n algebra.Node) (*core.DataFrame, error) {
	info, reason := extractPlan(n)
	if reason == "" {
		workers := s.liveWorkers()
		switch {
		case len(workers) == 0:
			reason = "no live workers"
		default:
			df, ok, err := s.tryDistribute(info, workers)
			if ok && err == nil {
				s.stats.distributed.Add(1)
				return df, nil
			}
			if ok {
				s.stats.reruns.Add(1)
				return s.local.Execute(n)
			}
			reason = "unshippable source"
		}
	}
	s.stats.recordFallback(reason)
	return s.local.Execute(n)
}

// tryDistribute attempts a distributed run. ok=false means the plan's
// source could not be banded and nothing ran; ok=true with err means a
// distributed attempt failed.
func (s *Scheduler) tryDistribute(info *planInfo, workers []*workerRef) (*core.DataFrame, bool, error) {
	bands, ok, err := s.planBands(info, len(workers))
	if err != nil || !ok {
		return nil, false, nil
	}
	// The shuffle's bucket count rides inside the shipped plan: group bands
	// need it to route themselves at band time, before any coordinator fold.
	info.spec.Buckets = len(workers)
	r := &run{
		s:       s,
		qid:     fmt.Sprintf("q%d-%d", os.Getpid(), s.qseq.Add(1)),
		info:    info,
		buckets: len(workers),
		bands:   bands,
		workers: workers,
	}
	// Round-robin initial assignment: band i on worker i mod n.
	for i := range r.bands {
		r.bands[i].owner = r.workers[i%len(r.workers)]
	}
	r.partitioned = make([]bool, len(bands))
	r.blocks = make([]*core.DataFrame, len(bands))
	r.merged = make([]*core.DataFrame, r.buckets)
	r.sizes = make([][]int64, len(bands))
	if info.group != nil {
		r.stats = make([]*modin.GroupBandStat, len(bands))
		r.samples = nil
	} else if info.sortN != nil {
		r.samples = make([][][]types.Value, len(bands))
	}
	df, err := r.drive()
	return df, true, err
}

// planBands renders the plan's source into band tasks: deterministic scan
// byte ranges (the lineage), or inline blocks cut from the source frame.
func (s *Scheduler) planBands(info *planInfo, workers int) ([]bandState, bool, error) {
	if info.scan != nil {
		rows := info.spec.Source.BandRows
		if rows <= 0 {
			rows = physical.DefaultStreamBandRows
		}
		rc, err := info.scan.Open()
		if err != nil {
			return nil, false, err
		}
		ranges, err := splitCSV(rc, info.spec.Source.Comma, true, rows)
		rc.Close()
		if err != nil || len(ranges) == 0 {
			return nil, false, err
		}
		bands := make([]bandState, len(ranges))
		for i, rng := range ranges {
			bands[i].task = BandTask{Band: i, Range: rng}
		}
		return bands, true, nil
	}
	df := info.source
	n := df.NRows()
	if n == 0 {
		return nil, false, nil
	}
	nb := workers
	if n < nb {
		nb = n
	}
	bands := make([]bandState, nb)
	for b := 0; b < nb; b++ {
		lo, hi := b*n/nb, (b+1)*n/nb
		block, err := EncodeFrame(nil, df.SliceRows(lo, hi))
		if err != nil {
			return nil, false, nil // e.g. composite cells: not shippable
		}
		bands[b] = bandState{task: BandTask{Band: b, Block: block}}
	}
	return bands, true, nil
}

// bandState tracks one band through the run.
type bandState struct {
	task    BandTask
	owner   *workerRef
	ran     bool
	stat    *modin.GroupBandStat
	samples [][]types.Value
}

// workerFailure marks an RPC outcome attributable to a worker's death
// rather than the query.
type workerFailure struct {
	w     *workerRef
	cause error
}

func (e *workerFailure) Error() string {
	return fmt.Sprintf("cluster: worker %s failed: %v", e.w.addr, e.cause)
}

// run is one distributed query execution: an idempotent phase state machine
// whose recovery loop re-submits lost lineage and re-runs only what died.
type run struct {
	s       *Scheduler
	qid     string
	info    *planInfo
	buckets int
	bands   []bandState
	workers []*workerRef
	rr      int // round-robin cursor for reassignment

	prepared    map[*workerRef]bool
	foldDone    bool
	routing     *modin.GroupRouting
	stats       []*modin.GroupBandStat
	samples     [][][]types.Value
	bounds      [][]types.Value
	partitioned []bool
	sizes       [][]int64
	merged      []*core.DataFrame
	blocks      []*core.DataFrame
	attempts    int
}

// drive loops phases until the query completes, recovering from worker
// failures by re-submitting the lost bands' lineage — bounded by the retry
// budget.
func (r *run) drive() (*core.DataFrame, error) {
	r.prepared = make(map[*workerRef]bool)
	for {
		df, err := r.runPhases()
		if err == nil {
			r.release()
			return df, nil
		}
		var wf *workerFailure
		if !asWorkerFailure(err, &wf) {
			r.release()
			return nil, err
		}
		if rerr := r.recover(wf.w); rerr != nil {
			r.release()
			return nil, fmt.Errorf("%w (after %v)", rerr, wf.cause)
		}
	}
}

func asWorkerFailure(err error, out **workerFailure) bool {
	for err != nil {
		if wf, ok := err.(*workerFailure); ok {
			*out = wf
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// hook fires the test phase hook.
func (r *run) hook(phase string) {
	if r.s.OnPhase != nil {
		r.s.OnPhase(phase)
	}
}

// runPhases advances every phase, skipping completed units.
func (r *run) runPhases() (*core.DataFrame, error) {
	if err := r.runBands(); err != nil {
		return nil, err
	}
	r.hook("bands")
	if r.info.group == nil && r.info.sortN == nil {
		return r.assembleBlocks()
	}
	r.fold()
	if err := r.partition(); err != nil {
		return nil, err
	}
	r.hook("partitioned")
	if err := r.merge(); err != nil {
		return nil, err
	}
	r.hook("merged")
	if r.info.group != nil {
		// Repair global first-appearance order across the hash buckets (the
		// same k-way rank merge the local restore exchange runs), then apply
		// the post-shuffle chain the workers deferred — it may drop rows, so
		// it must run after rows and ranks stop needing to align.
		out, err := modin.RestoreGroupOrder(r.merged, r.routing.Ranks, r.info.group.AsLabels)
		if err != nil {
			return nil, err
		}
		return applyOps(out, r.info.spec.Post)
	}
	return algebra.VStackFrames(r.merged...)
}

// eachOwner groups the listed band indices by owner and runs fn per owner
// in parallel, returning the highest-priority failure (worker failures
// first — they are recoverable).
func (r *run) eachOwner(bandIdx []int, fn func(w *workerRef, bands []int) error) error {
	byOwner := make(map[*workerRef][]int)
	for _, i := range bandIdx {
		byOwner[r.bands[i].owner] = append(byOwner[r.bands[i].owner], i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var wfErr, appErr error
	for w, bands := range byOwner {
		wg.Add(1)
		go func(w *workerRef, bands []int) {
			defer wg.Done()
			err := fn(w, bands)
			if err == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			var wf *workerFailure
			if asWorkerFailure(err, &wf) {
				if wfErr == nil {
					wfErr = err
				}
			} else if appErr == nil {
				appErr = err
			}
		}(w, bands)
	}
	wg.Wait()
	if wfErr != nil {
		return wfErr
	}
	return appErr
}

// classify maps an RPC error to a worker failure unless it is an in-band
// application error. Fetch errors indict the piece holder, not the callee.
func (r *run) classify(w *workerRef, err error) error {
	if err == nil {
		return nil
	}
	if fe, ok := err.(*fetchError); ok {
		for _, cand := range r.workers {
			if cand.addr == fe.addr {
				return &workerFailure{w: cand, cause: err}
			}
		}
		return &workerFailure{w: w, cause: err}
	}
	if _, ok := err.(*remoteError); ok {
		return err
	}
	return &workerFailure{w: w, cause: err}
}

// ensurePrepared installs the plan on a worker once.
func (r *run) ensurePrepared(w *workerRef) error {
	if r.prepared[w] {
		return nil
	}
	err := w.call(r.s.rpcTimeout, mPrepare, &PrepareReq{QID: r.qid, Plan: r.info.spec}, &emptyResp{})
	if err != nil {
		return r.classify(w, err)
	}
	r.prepared[w] = true
	return nil
}

// runBands executes the pre-shuffle stage for every band not yet run.
func (r *run) runBands() error {
	var todo []int
	for i := range r.bands {
		if !r.bands[i].ran {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	var mu sync.Mutex
	return r.eachOwner(todo, func(w *workerRef, bands []int) error {
		mu.Lock()
		err := r.ensurePrepared(w)
		mu.Unlock()
		if err != nil {
			return err
		}
		req := &RunBandsReq{QID: r.qid}
		for _, i := range bands {
			req.Bands = append(req.Bands, r.bands[i].task)
		}
		var resp RunBandsResp
		if err := w.call(r.s.rpcTimeout, mRunBands, req, &resp); err != nil {
			return r.classify(w, err)
		}
		if len(resp.Results) != len(bands) {
			return fmt.Errorf("cluster: worker %s returned %d band results, want %d", w.addr, len(resp.Results), len(bands))
		}
		for _, res := range resp.Results {
			if err := r.recordBand(res); err != nil {
				return err
			}
		}
		return nil
	})
}

// recordBand stores one band's stage output coordinator-side.
func (r *run) recordBand(res BandResult) error {
	b := &r.bands[res.Band]
	switch {
	case r.info.group != nil:
		if res.Group == nil {
			return fmt.Errorf("cluster: band %d returned no group stat", res.Band)
		}
		stat := &modin.GroupBandStat{
			Hashes:    res.Group.Hashes,
			Exemplars: wireToTuples(res.Group.Exemplars),
			Counts:    res.Group.Counts,
		}
		// After a re-submission the fold is already done; the lineage
		// re-run reproduces the same summary, so keep the original.
		if r.stats[res.Band] == nil {
			r.stats[res.Band] = stat
		}
		// The band routed itself on its worker (hash % Buckets) and reported
		// the per-bucket piece sizes; there is no partition phase to wait
		// for. A re-run after worker loss re-creates identical pieces — the
		// routing is a pure function of the keys — so overwriting sizes is
		// idempotent.
		if len(res.Sizes) != r.buckets {
			return fmt.Errorf("cluster: band %d reported %d piece sizes, want %d buckets", res.Band, len(res.Sizes), r.buckets)
		}
		r.sizes[res.Band] = res.Sizes
		r.partitioned[res.Band] = true
	case r.info.sortN != nil:
		if r.samples[res.Band] == nil {
			r.samples[res.Band] = wireToTuples(res.Sort)
		}
	default:
		df, rest, err := DecodeFrame(res.Block)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("cluster: %d trailing bytes after band block", len(rest))
		}
		r.blocks[res.Band] = df
	}
	b.ran = true
	return nil
}

// fold computes the shuffle routing once, after all band summaries exist —
// the same PlanGroupRouting/PlanSortBounds fold the local engine runs, over
// the same band-ordered stats, which is what makes the distributed result
// cell-identical.
func (r *run) fold() {
	if r.foldDone {
		return
	}
	if r.info.group != nil {
		r.routing = modin.PlanGroupRouting(r.stats, r.buckets, true)
	} else {
		var all [][]types.Value
		for _, s := range r.samples {
			all = append(all, s...)
		}
		r.bounds = modin.PlanSortBounds(all, r.buckets, r.info.sortN)
	}
	r.foldDone = true
}

// partition routes every sort band not yet partitioned on its owner. Group
// bands partitioned themselves at band time (recordBand observed their
// sizes), so the phase is a no-op for keyed shuffles.
func (r *run) partition() error {
	if r.info.group != nil {
		return nil
	}
	var todo []int
	for i := range r.bands {
		if !r.partitioned[i] {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	boundsWire, err := tuplesToWire(r.bounds)
	if err != nil {
		return err
	}
	return r.eachOwner(todo, func(w *workerRef, bands []int) error {
		req := &PartitionReq{QID: r.qid, Bands: bands, Buckets: r.buckets, Bounds: boundsWire}
		var resp PartitionResp
		if err := w.call(r.s.rpcTimeout, mPartition, req, &resp); err != nil {
			return r.classify(w, err)
		}
		for _, i := range bands {
			bandSizes, ok := resp.Sizes[i]
			if !ok {
				return fmt.Errorf("cluster: worker %s reported no sizes for band %d", w.addr, i)
			}
			sizes := make([]int64, r.buckets)
			for b, n := range bandSizes {
				if b >= 0 && b < r.buckets {
					sizes[b] = n
				}
			}
			r.sizes[i] = sizes
			r.partitioned[i] = true
		}
		return nil
	})
}

// placeMerge picks the worker holding the most bytes of the bucket's routed
// pieces (ties to the earlier worker in the run's ordering, so placement is
// deterministic).
func (r *run) placeMerge(bucket int) *workerRef {
	held := make(map[*workerRef]int64)
	for i := range r.bands {
		held[r.bands[i].owner] += r.sizes[i][bucket]
	}
	best := r.workers[bucket%len(r.workers)] // default spreads empty buckets
	var bestBytes int64 = -1
	for _, w := range r.workers {
		if held[w] > bestBytes {
			best, bestBytes = w, held[w]
		}
	}
	return best
}

// merge runs every bucket not yet merged on its placed worker, in parallel.
func (r *run) merge() error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var wfErr, appErr error
	for b := 0; b < r.buckets; b++ {
		if r.merged[b] != nil {
			continue
		}
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			df, err := r.mergeBucket(b)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var wf *workerFailure
				if asWorkerFailure(err, &wf) {
					if wfErr == nil {
						wfErr = err
					}
				} else if appErr == nil {
					appErr = err
				}
				return
			}
			r.merged[b] = df
		}(b)
	}
	wg.Wait()
	if wfErr != nil {
		return wfErr
	}
	return appErr
}

func (r *run) mergeBucket(b int) (*core.DataFrame, error) {
	target := r.placeMerge(b)
	req := &MergeReq{QID: r.qid, Bucket: b}
	for i := range r.bands {
		addr := r.bands[i].owner.addr
		if r.bands[i].owner == target {
			addr = ""
		}
		req.Pieces = append(req.Pieces, PieceRef{Band: i, Addr: addr})
	}
	if r.routing != nil {
		req.Ranks = r.routing.Ranks[b]
		req.Heavy = r.routing.Heavy != nil && r.routing.Heavy[b]
	}
	var resp MergeResp
	if err := target.call(r.s.rpcTimeout, mMerge, req, &resp); err != nil {
		return nil, r.classify(target, err)
	}
	df, rest, err := DecodeFrame(resp.Block)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after bucket block", len(rest))
	}
	return df, nil
}

// assembleBlocks concatenates the no-shuffle band results in band order —
// the distributed analog of the local gather.
func (r *run) assembleBlocks() (*core.DataFrame, error) {
	return algebra.VStackFrames(r.blocks...)
}

// recover handles one worker's death: reassign its bands to survivors and
// re-submit their lineage (scan ranges or inline blocks are still at the
// coordinator; summaries are kept so the routing fold never re-runs).
func (r *run) recover(dead *workerRef) error {
	if !dead.dead.Swap(true) {
		r.s.stats.deadWorkers.Add(1)
	}
	delete(r.prepared, dead)
	live := r.workers[:0:0]
	for _, w := range r.workers {
		if w != dead && !w.dead.Load() {
			live = append(live, w)
		}
	}
	r.workers = live
	if len(r.workers) == 0 {
		return fmt.Errorf("cluster: all workers lost")
	}
	r.attempts++
	if r.attempts > r.s.retries {
		return fmt.Errorf("cluster: retry budget (%d) exhausted", r.s.retries)
	}
	shuffle := r.info.group != nil || r.info.sortN != nil
	for i := range r.bands {
		b := &r.bands[i]
		if b.owner != dead && !b.owner.dead.Load() {
			continue
		}
		b.owner = r.workers[r.rr%len(r.workers)]
		r.rr++
		// A no-shuffle band whose block already landed is safe at the
		// coordinator; shuffle bands lost their worker-side frame, ordinals
		// and pieces, so their lineage re-runs (the kept summary makes the
		// re-run's stat a no-op).
		if shuffle {
			if b.ran {
				r.s.stats.resubmitted.Add(1)
			}
			b.ran = false
			r.partitioned[i] = false
		} else if r.blocks[i] == nil {
			if b.ran {
				r.s.stats.resubmitted.Add(1)
			}
			b.ran = false
		}
	}
	return nil
}

// release drops the query's state on every live worker, best-effort.
func (r *run) release() {
	for _, w := range r.workers {
		if w.dead.Load() {
			continue
		}
		w.call(5*time.Second, mRelease, &ReleaseReq{QID: r.qid}, &emptyResp{})
	}
}

package cluster

import (
	"bufio"
	"fmt"
	"io"
)

// Quote-aware CSV byte-range splitting: the coordinator makes one cheap
// byte pass over the input (no field materialization, no record building)
// and cuts it into bands of bandRows records, each starting exactly at a
// record boundary — quoted fields may contain embedded newlines, commas
// and "" escapes, so the scanner tracks quote state the way encoding/csv
// does instead of cutting at raw newlines. The resulting BandRange list is
// deterministic for a given (input, options, bandRows), which is what
// makes a band's lineage re-submittable: any worker handed the same range
// re-parses the same rows with the same global row labels.

// BandRange describes one scan band's lineage: a byte range of the input
// and its global row interval.
type BandRange struct {
	Offset int64 // byte offset of the band's first record
	Length int64 // byte length of the band
	Row    int64 // global row index of the band's first record
	Rows   int   // record count
}

// splitCSV scans r (the whole input, including any header) and returns the
// data-record band ranges. comma is the field delimiter; header consumes
// one leading record outside the banding. bandRows is the morsel size
// (must be positive).
func splitCSV(r io.Reader, comma byte, header bool, bandRows int) ([]BandRange, error) {
	if bandRows <= 0 {
		return nil, fmt.Errorf("cluster: band rows %d, want > 0", bandRows)
	}
	s := &csvScanner{r: bufio.NewReaderSize(r, 1<<16), comma: comma}
	if header {
		if _, err := s.nextRecord(); err != nil && err != io.EOF {
			return nil, err
		}
	}
	var bands []BandRange
	var row int64
	for {
		start := s.offset
		rows := 0
		for rows < bandRows {
			ok, err := s.nextRecord()
			if err != nil && err != io.EOF {
				return nil, err
			}
			if ok {
				rows++
			}
			if err == io.EOF {
				break
			}
		}
		if rows == 0 {
			break
		}
		bands = append(bands, BandRange{Offset: start, Length: s.offset - start, Row: row, Rows: rows})
		row += int64(rows)
		if s.eof {
			break
		}
	}
	return bands, nil
}

// csvScanner advances record-by-record, tracking byte offsets and quote
// state without building fields.
type csvScanner struct {
	r      *bufio.Reader
	comma  byte
	offset int64
	eof    bool
}

// nextRecord consumes one line-level record, reporting whether it held any
// content (encoding/csv skips blank lines, so an empty line advances the
// offset but counts no row). Returns io.EOF once the input is exhausted;
// a final unterminated record reports ok first with err == io.EOF.
func (s *csvScanner) nextRecord() (ok bool, err error) {
	if s.eof {
		return false, io.EOF
	}
	inQuotes := false
	atFieldStart := true
	content := false
	for {
		c, rerr := s.r.ReadByte()
		if rerr != nil {
			s.eof = true
			if inQuotes {
				return false, fmt.Errorf("cluster: csv input ends inside a quoted field")
			}
			return content, io.EOF
		}
		s.offset++
		if inQuotes {
			if c == '"' {
				// "" is an escaped quote; a lone quote closes the field.
				peek, perr := s.r.Peek(1)
				if perr == nil && peek[0] == '"' {
					s.r.ReadByte()
					s.offset++
				} else {
					inQuotes = false
				}
			}
			continue
		}
		switch c {
		case '"':
			if atFieldStart {
				inQuotes = true
			}
			content = true
			atFieldStart = false
		case s.comma:
			content = true
			atFieldStart = true
		case '\n':
			return content, nil
		case '\r':
			// Part of a \r\n terminator: not content by itself.
			atFieldStart = false
		default:
			content = true
			atFieldStart = false
		}
	}
}

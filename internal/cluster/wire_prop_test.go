package cluster

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/vector"
)

// randColumn draws one random column of n rows in a random wire-encodable
// kind, with nil / sparse / all-null masks.
func randColumn(r *rand.Rand, n int) vector.Vector {
	var nulls []bool
	switch r.Intn(3) {
	case 1:
		nulls = make([]bool, n)
		for i := range nulls {
			nulls[i] = r.Intn(4) == 0
		}
	case 2:
		nulls = make([]bool, n)
		for i := range nulls {
			nulls[i] = true
		}
	}
	switch r.Intn(6) {
	case 0:
		data := make([]string, n)
		for i := range data {
			data[i] = fmt.Sprintf("s%d-%d", r.Intn(1000), i)
		}
		return vector.NewObject(data, nulls)
	case 1:
		data := make([]int64, n)
		for i := range data {
			data[i] = r.Int63() - r.Int63()
		}
		return vector.NewInt(data, nulls)
	case 2:
		data := make([]float64, n)
		for i := range data {
			if r.Intn(8) == 0 {
				data[i] = math.Inf(1)
			} else {
				data[i] = r.NormFloat64()
			}
		}
		return vector.NewFloat(data, nulls)
	case 3:
		data := make([]bool, n)
		for i := range data {
			data[i] = r.Intn(2) == 0
		}
		return vector.NewBool(data, nulls)
	case 4:
		data := make([]int64, n)
		for i := range data {
			data[i] = r.Int63n(1 << 40)
		}
		return vector.NewDatetime(data, nulls)
	default:
		ncat := r.Intn(4) + 1
		dict := make([]string, ncat)
		for i := range dict {
			dict[i] = fmt.Sprintf("cat%d", i)
		}
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(r.Intn(ncat))
		}
		return vector.NewDict(codes, dict, nulls)
	}
}

// randFrame draws a random frame: 1–5 columns of mixed kinds, 0–30 rows,
// and (sometimes) non-default row labels — the block shapes the shuffle
// ships. Generation can't fail on valid inputs, so errors panic (callers
// are tests and fuzz seeding).
func randFrame(r *rand.Rand, nrows int) *core.DataFrame {
	ncols := r.Intn(5) + 1
	names := make([]string, ncols)
	cols := make([]vector.Vector, ncols)
	for j := range cols {
		names[j] = fmt.Sprintf("c%d", j)
		cols[j] = randColumn(r, nrows)
	}
	df, err := core.New(names, cols)
	if err != nil {
		panic(err)
	}
	if r.Intn(2) == 0 {
		df, err = df.WithRowLabels(vector.Range(int64(r.Intn(1000)), nrows))
		if err != nil {
			panic(err)
		}
	}
	return df
}

// TestFrameWireRoundTripProperty checks the block codec's invariants over
// random frames: Equal after a round trip (labels and cells), exact buffer
// consumption, and byte-stable re-encoding — the property the coordinator
// leans on when a re-submitted band's block replaces a lost worker's.
func TestFrameWireRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for iter := 0; iter < 200; iter++ {
		nrows := r.Intn(30)
		if iter%10 == 0 {
			nrows = 0 // empty bands are legal blocks
		}
		want := randFrame(r, nrows)
		enc, err := EncodeFrame(nil, want)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}
		got, rest, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d trailing bytes", iter, len(rest))
		}
		// Byte-stability first: Equal induces the lazy schema, which fills
		// in declared domains — legitimate frame state, but not what the
		// encoder saw. Stability is a property of the frame as decoded.
		re, err := EncodeFrame(nil, got)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", iter, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("iter %d: frame encoding not byte-stable", iter)
		}
		if !want.Equal(got) {
			t.Fatalf("iter %d: frame not Equal after round trip:\nwant:\n%s\ngot:\n%s", iter, want, got)
		}
	}
}

// FuzzDecodeFrame: arbitrary bytes must be rejected or decoded, never
// panic, and accepted frames must be byte-stable.
func FuzzDecodeFrame(f *testing.F) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 6; i++ {
		enc, err := EncodeFrame(nil, randFrame(r, r.Intn(10)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		df, _, err := DecodeFrame(data)
		if err != nil {
			return
		}
		enc, err := EncodeFrame(nil, df)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		df2, rest, err := DecodeFrame(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-encoded frame does not decode cleanly: err=%v rest=%d", err, len(rest))
		}
		re, err := EncodeFrame(nil, df2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatal("accepted frame not byte-stable under encode/decode")
		}
	})
}
